// Package repro's benchmark harness regenerates every table and figure
// of the paper's evaluation (run `go test -bench=. -benchmem`):
//
//	BenchmarkTable2/*      — Table II TCP bandwidth rows (Mbit/s metric)
//	BenchmarkFig3*         — the capability-violation experiment
//	BenchmarkFig4*         — ff_write(): Scenario 1 vs Baseline
//	BenchmarkFig5*         — ff_write(): Scenario 2 (uncontended) vs Baseline
//	BenchmarkFig6*         — ff_write(): Scenario 2 uncontended vs contended
//	BenchmarkAblation*     — design-choice ablations from DESIGN.md
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cheri"
	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/intravisor"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// --- Table II ---

// benchTable2Block runs one scenario/direction pair per iteration and
// reports the local goodput.
func benchTable2Block(b *testing.B, spec int, dir core.Direction) {
	b.ReportAllocs()
	var last []core.BWResult
	for i := 0; i < b.N; i++ {
		s, err := core.Table2Spec[spec].Build(sim.NewVClock())
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.BandwidthPair(s, dir)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for i, r := range last {
		b.ReportMetric(r.Mbps, fmt.Sprintf("Mbit/s:ep%d", i))
	}
}

func BenchmarkTable2(b *testing.B) {
	names := []string{"BaselineDual", "Scenario1", "BaselineSingle", "Scenario2Uncontended", "Scenario2Contended"}
	for i, name := range names {
		i := i
		for _, dir := range []core.Direction{core.LocalIsServer, core.LocalIsClient} {
			dir := dir
			b.Run(fmt.Sprintf("%s/%v", name, dir), func(b *testing.B) {
				benchTable2Block(b, i, dir)
			})
		}
	}
}

// --- Fig. 3 ---

func BenchmarkFig3CapViolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := core.RunFig3()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Fault == nil || !rep.VictimUnaffected {
			b.Fatal("compartmentalization did not hold")
		}
	}
}

// --- Figs. 4-6 (ff_write latency) ---

// benchCfg derives a measurement size from b.N so `-benchtime` scales
// the experiment, with a floor for stable quartiles.
func benchCfg(b *testing.B) core.FFWriteConfig {
	cfg := core.DefaultFFWriteConfig()
	cfg.Iterations = max(b.N, 2000)
	return cfg
}

func reportSets(b *testing.B, sets []core.LatencySet) {
	for _, s := range sets {
		box := stats.CleanBox(s.Samples)
		b.ReportMetric(box.Mean, "ns-mean:"+shortLabel(s.Label))
		b.ReportMetric(box.Median, "ns-med:"+shortLabel(s.Label))
	}
}

func shortLabel(l string) string {
	out := make([]rune, 0, len(l))
	for _, r := range l {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		}
	}
	return string(out)
}

func BenchmarkFig4FFWriteS1VsBaseline(b *testing.B) {
	sets, err := core.MeasureFig4(benchCfg(b))
	if err != nil {
		b.Fatal(err)
	}
	reportSets(b, sets)
}

func BenchmarkFig5FFWriteS2VsBaseline(b *testing.B) {
	sets, err := core.MeasureFig5(benchCfg(b))
	if err != nil {
		b.Fatal(err)
	}
	reportSets(b, sets)
}

func BenchmarkFig6FFWriteContention(b *testing.B) {
	sets, err := core.MeasureFig6(benchCfg(b))
	if err != nil {
		b.Fatal(err)
	}
	reportSets(b, sets)
}

// --- Table I ---

func BenchmarkTable1LoCCount(b *testing.B) {
	var row core.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		row, err = core.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(row.CapLines), "cap-lines")
	b.ReportMetric(row.Percent, "pct")
}

// BenchmarkScenario3Bandwidth measures the future-work layout (§VI:
// DPDK separated from F-Stack into its own cVM) — per-burst gate
// crossings on the datapath, still expected at line rate.
func BenchmarkScenario3Bandwidth(b *testing.B) {
	var last []core.BWResult
	for i := 0; i < b.N; i++ {
		s, err := core.NewScenario3(sim.NewVClock())
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.BandwidthPair(s, core.LocalIsClient)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last[0].Mbps, "Mbit/s")
}

// BenchmarkScenario4Scaling measures the multi-core layout: aggregate
// goodput of 8 concurrent flows over a sharded stack, per shard count.
// The Mbit/s metric should scale near-linearly until the 4 Gbit/s port
// (not any lock) limits it.
func BenchmarkScenario4Scaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			var last core.Scenario4Result
			for i := 0; i < b.N; i++ {
				r, err := core.RunScenario4(core.Scenario4Config{Shards: shards},
					core.LocalIsClient, 8, core.DefaultScenario4Duration)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.Mbps, "Mbit/s")
		})
	}
}

// BenchmarkScenario5 measures the lossy high-BDP WAN layout: one flow
// through a 100 Mbit/s, 20 ms RTT netem link with ~1% bursty loss,
// with the paper's stack (go-back-N, 64 KiB windows) vs the modern
// tuning (SACK + window scaling). The Mbit/s metric should show the
// modern stack at least doubling the paper stack's goodput.
func BenchmarkScenario5(b *testing.B) {
	link := netem.Config{GEBadProb: 0.00033, GERecoverProb: 0.033, DelayNS: 10e6, RateBps: 100e6}
	for _, modern := range []bool{false, true} {
		modern := modern
		name := "go-back-N"
		if modern {
			name = "SACK"
		}
		b.Run(name, func(b *testing.B) {
			var last core.Scenario5Result
			for i := 0; i < b.N; i++ {
				r, err := core.RunScenario5(core.Scenario5Config{Modern: modern, Link: link},
					core.DefaultScenario5Duration)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.Mbps, "Mbit/s")
			b.ReportMetric(float64(last.Stats.Retransmit), "retx")
		})
	}
}

// BenchmarkScenario6 measures the composed layout: 8 upload flows
// from a sharded stack through a 2 Gbit/s, 10 ms RTT bottleneck with
// ~0.5% bursty loss — the paper configuration (1 shard, go-back-N)
// against the composed one (4 shards, SACK + window scaling) on the
// identical seeded link. The Mbit/s metric should show the composed
// stack at least doubling the paper configuration.
func BenchmarkScenario6(b *testing.B) {
	type cfg struct {
		name   string
		shards int
		modern bool
	}
	for _, c := range []cfg{
		{"1shard-go-back-N", 1, false},
		{"4shard-SACK", 4, true},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var last core.Scenario6Result
			for i := 0; i < b.N; i++ {
				r, err := core.RunScenario6(core.Scenario6Config{Shards: c.shards, Modern: c.modern},
					8, core.DefaultScenario6Duration)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.Mbps, "Mbit/s")
			b.ReportMetric(float64(last.Stats.Retransmit), "retx")
		})
	}
}

// BenchmarkScenario7 measures the congestion-control comparison on the
// gated WAN point: one flow through the seeded 100 Mbit/s × 100 ms RTT
// deep-queue link with sparse fades, Reno vs CUBIC over the fstack CC
// seam. The Mbit/s metric should show CUBIC at least doubling Reno and
// clearing 70% of the bottleneck.
func BenchmarkScenario7(b *testing.B) {
	for _, cc := range []string{"reno", "cubic"} {
		cc := cc
		b.Run(cc, func(b *testing.B) {
			var last core.Scenario7Result
			for i := 0; i < b.N; i++ {
				r, err := core.RunScenario7(core.Scenario7Config{Congestion: cc},
					core.DefaultScenario7Duration)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.Mbps, "Mbit/s")
			b.ReportMetric(last.Utilization()*100, "util-pct")
			b.ReportMetric(float64(last.Stats.Retransmit), "retx")
		})
	}
}

// BenchmarkScenario9 measures the request/response plane at the
// moderate-load point: open-loop HTTP keep-alive and DNS-shaped UDP
// traffic over two shards, reporting the merged per-request tail. The
// p99 metric is the figure of merit; done/s confirms the offered rate
// was absorbed.
func BenchmarkScenario9(b *testing.B) {
	for _, proto := range []string{"http", "dns"} {
		proto := proto
		b.Run(proto, func(b *testing.B) {
			var last core.Scenario9Result
			for i := 0; i < b.N; i++ {
				r, err := core.RunScenario9(core.Scenario9Config{
					Proto: proto, Shards: 2, Rate: 8000, Conns: 16,
					DurationNS: 200e6,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.CompletedPerSec(), "done/s")
			b.ReportMetric(float64(last.P99NS)/1e3, "p99-µs")
			b.ReportMetric(float64(last.Timeouts), "timeouts")
		})
	}
}

// BenchmarkScenario10 measures the fault-storm point in both modes:
// a sharded HTTP service under two injected capability faults with the
// supervisor restarting trapped compartments. Done/s is throughput
// under the storm; blast-min is the worst surviving shard's
// completions (in capability mode it should match the clean run) and
// mttr-ms the mean fault-to-recovery time.
func BenchmarkScenario10(b *testing.B) {
	for _, capMode := range []bool{false, true} {
		capMode := capMode
		name := "baseline"
		if capMode {
			name = "cheri"
		}
		b.Run(name, func(b *testing.B) {
			var last core.Scenario10Result
			for i := 0; i < b.N; i++ {
				r, err := core.RunScenario10(core.Scenario10Config{
					Shards: 3, CapMode: capMode, Faults: 2, MTBFNS: 40e6,
					Conns: 2, DurationNS: 300e6,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.CompletedPerSec(), "done/s")
			b.ReportMetric(float64(last.OtherMinDone), "blast-min")
			b.ReportMetric(float64(last.MTTRMeanNS)/1e6, "mttr-ms")
		})
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationCapChecks compares the datapath memory access with
// and without capability checking — the raw cost CHERI adds per copy.
func BenchmarkAblationCapChecks(b *testing.B) {
	mem := cheri.NewTMem(1 << 20)
	capa, err := mem.Root().SetAddr(0x1000).SetBounds(64 * 1024)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]byte, 1448)
	b.Run("checked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := mem.CheckedSliceRO(capa, 0x1000, len(dst))
			if err != nil {
				b.Fatal(err)
			}
			copy(dst, s)
		}
	})
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := mem.RawSlice(0x1000, len(dst))
			if err != nil {
				b.Fatal(err)
			}
			copy(dst, s)
		}
	})
}

// BenchmarkAblationTrampoline compares the clock read through the
// Intravisor trampoline (save frame, scrub, CInvoke, proxy, restore)
// with a direct host syscall — the ~125 ns of Fig. 4.
func BenchmarkAblationTrampoline(b *testing.B) {
	k, err := hostos.NewKernel(16 << 20)
	if err != nil {
		b.Fatal(err)
	}
	s1, err := core.NewScenario1(hostos.NewRealClock())
	if err != nil {
		b.Fatal(err)
	}
	cvm := s1.Envs[0].CVM
	b.Run("trampoline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if cvm.NowNS() < 0 {
				b.Fatal("clock failed")
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, errno := k.Syscall(hostos.SysClockGettime, hostos.Args{hostos.ClockMonotonicRaw}); errno != hostos.OK {
				b.Fatal(errno)
			}
		}
	})
}

// BenchmarkAblationGateCall isolates the cross-compartment call cost of
// Scenario 2 (no mutex contention, no payload).
func BenchmarkAblationGateCall(b *testing.B) {
	s, err := core.NewScenario2(hostos.NewRealClock(), 1)
	if err != nil {
		b.Fatal(err)
	}
	gate, err := s.Local.IV.NewGate(s.Envs[0].CVM,
		func(_ *intravisor.CVM, a hostos.Args, _ cheri.Cap) (uint64, hostos.Errno) {
			return a[0] + 1, hostos.OK
		})
	if err != nil {
		b.Fatal(err)
	}
	app := s.AppCVM(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r, errno := gate.Call(app, hostos.Args{uint64(i)}, cheri.NullCap); errno != hostos.OK || r != uint64(i)+1 {
			b.Fatal("gate call failed")
		}
	}
}

// BenchmarkAblationLock compares serialization strategies for the
// F-Stack API (the paper's future-work question): the mutex the paper
// uses vs a channel-based hand-off.
func BenchmarkAblationLock(b *testing.B) {
	b.Run("mutex", func(b *testing.B) {
		var mu sync.Mutex
		x := 0
		for i := 0; i < b.N; i++ {
			mu.Lock()
			x++
			mu.Unlock()
		}
		_ = x
	})
	b.Run("channel", func(b *testing.B) {
		req := make(chan struct{})
		done := make(chan struct{})
		go func() {
			for range req {
				done <- struct{}{}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req <- struct{}{}
			<-done
		}
		close(req)
	})
}
