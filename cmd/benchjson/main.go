// Command benchjson converts `go test -bench` text output into a JSON
// document, one record per benchmark result line, so CI can archive a
// run as a machine-readable BENCH_*.json artifact and the performance
// trajectory can be diffed across commits.
//
// Usage:
//
//	go test -run xxx -bench Scenario -benchtime 1x . | benchjson -out BENCH_scenarios.json
//	benchjson -compare old.json new.json [-threshold 10]
//
// A benchmark line like
//
//	BenchmarkScenario7/cubic-8   1   5123 ns/op   87.8 Mbit/s   88 util-pct
//
// becomes
//
//	{"name":"Scenario7/cubic","procs":8,"n":1,"metrics":{"ns/op":5123,"Mbit/s":87.8,"util-pct":88}}
//
// Compare mode diffs two archived documents: it prints a markdown
// table of per-benchmark metric deltas (suitable for a CI job
// summary) and exits non-zero when any directional metric regressed
// by more than the threshold percentage — which is what turns the
// per-commit artifacts into an actionable trajectory instead of a
// write-only archive.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix go test appends to the name.
	Procs int `json:"procs,omitempty"`
	// N is the iteration count of the run.
	N int64 `json:"n"`
	// Metrics maps unit -> value for every "value unit" pair on the
	// line (ns/op, MB/s, B/op, allocs/op and custom ReportMetric
	// units alike).
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the archived document.
type Doc struct {
	// Goos/Goarch/Pkg echo the `go test` banner lines when present.
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	Benches []Result `json:"benches"`
}

// parseLine decodes one "Benchmark..." result line; ok is false for
// anything else (PASS, ok, banners, failures).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Procs: procs, N: n, Metrics: map[string]float64{}}
	// The rest alternates value unit [value unit ...].
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// parse consumes go test -bench output and builds the document.
func parse(in io.Reader) (Doc, error) {
	var doc Doc
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			if r, ok := parseLine(line); ok {
				doc.Benches = append(doc.Benches, r)
			}
		}
	}
	return doc, sc.Err()
}

// metricDirection classifies a metric unit: +1 when larger values are
// better (rates, utilization), -1 when smaller values are better
// (times, allocations, retransmissions), 0 when the metric carries no
// quality direction (counts like cap-lines) and is reported only.
func metricDirection(unit string) int {
	switch unit {
	case "Mbit/s", "MB/s", "util-pct":
		return +1
	case "ns/op", "B/op", "allocs/op", "retx", "ns-mean", "ns-med":
		return -1
	}
	// Custom ReportMetric units with a known prefix (ns-mean:label).
	switch {
	case strings.HasPrefix(unit, "ns-mean:"), strings.HasPrefix(unit, "ns-med:"):
		return -1
	case strings.HasPrefix(unit, "Mbit/s:"):
		return +1
	}
	return 0
}

// delta is one compared metric.
type delta struct {
	bench, unit string
	old, new    float64
	pct         float64 // signed percent change, new vs old
	regressed   bool
	gone        bool // metric present in old, absent from new
	added       bool // metric present in new, absent from old
}

// compareDocs diffs two archived documents benchmark-by-benchmark.
// thresholdPct is how many percent a directional metric may move in
// the "worse" direction before it counts as a regression.
func compareDocs(old, new Doc, thresholdPct float64) (deltas []delta, onlyOld, onlyNew []string) {
	oldBy := map[string]Result{}
	for _, b := range old.Benches {
		oldBy[b.Name] = b
	}
	seen := map[string]bool{}
	for _, nb := range new.Benches {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			onlyNew = append(onlyNew, nb.Name)
			continue
		}
		units := make([]string, 0, len(nb.Metrics))
		for unit := range nb.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			nv := nb.Metrics[unit]
			ov, ok := ob.Metrics[unit]
			if !ok {
				// Symmetric to the "metric removed" rows below: a new
				// metric's first appearance is visible, not silent.
				deltas = append(deltas, delta{bench: nb.Name, unit: unit, new: nv, added: true})
				continue
			}
			d := delta{bench: nb.Name, unit: unit, old: ov, new: nv}
			if ov != 0 {
				d.pct = (nv - ov) / ov * 100
			}
			switch metricDirection(unit) {
			case +1:
				d.regressed = ov != 0 && d.pct < -thresholdPct
			case -1:
				// A zero baseline growing to anything is a regression
				// no percentage can express — exactly the case a
				// zero-alloc guarantee regressing must not slip
				// through.
				d.regressed = (ov != 0 && d.pct > thresholdPct) || (ov == 0 && nv > 0)
			}
			deltas = append(deltas, d)
		}
		// A metric that vanished (a dropped ReportAllocs, a renamed
		// unit) must show up, or a guarded baseline could silently
		// leave the trajectory.
		oldUnits := make([]string, 0, len(ob.Metrics))
		for unit := range ob.Metrics {
			if _, ok := nb.Metrics[unit]; !ok {
				oldUnits = append(oldUnits, unit)
			}
		}
		sort.Strings(oldUnits)
		for _, unit := range oldUnits {
			deltas = append(deltas, delta{bench: nb.Name, unit: unit, old: ob.Metrics[unit], gone: true})
		}
	}
	for _, ob := range old.Benches {
		if !seen[ob.Name] {
			onlyOld = append(onlyOld, ob.Name)
		}
	}
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

// formatCompare renders the diff as a markdown table (CI job
// summaries render it directly; it reads fine as plain text too).
func formatCompare(deltas []delta, onlyOld, onlyNew []string, thresholdPct float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| benchmark | metric | old | new | delta | |\n")
	fmt.Fprintf(&b, "|---|---|---:|---:|---:|---|\n")
	for _, d := range deltas {
		if d.gone {
			fmt.Fprintf(&b, "| %s | %s | %.4g | | | metric removed |\n", d.bench, d.unit, d.old)
			continue
		}
		if d.added {
			fmt.Fprintf(&b, "| %s | %s | | %.4g | | metric added |\n", d.bench, d.unit, d.new)
			continue
		}
		flag := ""
		if d.regressed {
			flag = fmt.Sprintf("REGRESSION (>%.0f%%)", thresholdPct)
		}
		pct := fmt.Sprintf("%+.1f%%", d.pct)
		if d.old == 0 && d.new != 0 {
			pct = "new nonzero"
		}
		fmt.Fprintf(&b, "| %s | %s | %.4g | %.4g | %s | %s |\n",
			d.bench, d.unit, d.old, d.new, pct, flag)
	}
	for _, name := range onlyOld {
		fmt.Fprintf(&b, "| %s | | | | | removed |\n", name)
	}
	for _, name := range onlyNew {
		fmt.Fprintf(&b, "| %s | | | | | new |\n", name)
	}
	return b.String()
}

// loadDoc reads one archived document.
func loadDoc(path string) (Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return Doc{}, err
	}
	defer f.Close()
	var doc Doc
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return Doc{}, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare two archived JSON documents: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 10, "regression threshold in percent (compare mode)")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		oldDoc, err := loadDoc(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		newDoc, err := loadDoc(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		deltas, onlyOld, onlyNew := compareDocs(oldDoc, newDoc, *threshold)
		fmt.Print(formatCompare(deltas, onlyOld, onlyNew, *threshold))
		failed := false
		for _, d := range deltas {
			if d.regressed {
				failed = true
				fmt.Fprintf(os.Stderr, "benchjson: %s %s regressed %.1f%% (%.4g -> %.4g)\n",
					d.bench, d.unit, d.pct, d.old, d.new)
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
