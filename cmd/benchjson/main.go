// Command benchjson converts `go test -bench` text output into a JSON
// document, one record per benchmark result line, so CI can archive a
// run as a machine-readable BENCH_*.json artifact and the performance
// trajectory can be diffed across commits.
//
// Usage:
//
//	go test -run xxx -bench Scenario -benchtime 1x . | benchjson -out BENCH_scenarios.json
//
// A benchmark line like
//
//	BenchmarkScenario7/cubic-8   1   5123 ns/op   87.8 Mbit/s   88 util-pct
//
// becomes
//
//	{"name":"Scenario7/cubic","procs":8,"n":1,"metrics":{"ns/op":5123,"Mbit/s":87.8,"util-pct":88}}
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix go test appends to the name.
	Procs int `json:"procs,omitempty"`
	// N is the iteration count of the run.
	N int64 `json:"n"`
	// Metrics maps unit -> value for every "value unit" pair on the
	// line (ns/op, MB/s, B/op, allocs/op and custom ReportMetric
	// units alike).
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the archived document.
type Doc struct {
	// Goos/Goarch/Pkg echo the `go test` banner lines when present.
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	Benches []Result `json:"benches"`
}

// parseLine decodes one "Benchmark..." result line; ok is false for
// anything else (PASS, ok, banners, failures).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Procs: procs, N: n, Metrics: map[string]float64{}}
	// The rest alternates value unit [value unit ...].
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// parse consumes go test -bench output and builds the document.
func parse(in io.Reader) (Doc, error) {
	var doc Doc
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			if r, ok := parseLine(line); ok {
				doc.Benches = append(doc.Benches, r)
			}
		}
	}
	return doc, sc.Err()
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
