// Command benchjson converts `go test -bench` text output into a JSON
// document, one record per benchmark result line, so CI can archive a
// run as a machine-readable BENCH_*.json artifact and the performance
// trajectory can be diffed across commits.
//
// Usage:
//
//	go test -run xxx -bench Scenario -benchtime 1x -count 3 . | benchjson -agg min -out BENCH_scenarios.json
//	benchjson -compare old.json new.json [-threshold 10] [-thresholds 'Scenario5/*=25,DatapathFrame=5']
//
// A benchmark line like
//
//	BenchmarkScenario7/cubic-8   1   5123 ns/op   87.8 Mbit/s   88 util-pct
//
// becomes
//
//	{"name":"Scenario7/cubic","procs":8,"n":1,"metrics":{"ns/op":5123,"Mbit/s":87.8,"util-pct":88}}
//
// With `go test -count N` the output repeats each benchmark N times;
// -agg collapses the repeats into one record per benchmark before
// archiving, either `min` (the direction-aware best run per metric —
// the classic min-of-N that strips scheduler noise) or `median` (the
// middle run per metric, robust to a single outlier in either
// direction). Comparing aggregated documents is what makes a hard
// regression gate viable: single-run smoke numbers are too noisy to
// fail a build on.
//
// Compare mode diffs two archived documents: it prints a markdown
// table of per-benchmark metric deltas (suitable for a CI job
// summary) and exits non-zero when any directional metric regressed
// by more than the threshold percentage — which is what turns the
// per-commit artifacts into an actionable trajectory instead of a
// write-only archive. -thresholds overrides the default threshold for
// benchmarks matching a glob (first match wins), so tight bounds on
// stable microbenchmarks can coexist with looser ones on noisy
// end-to-end scenarios.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix go test appends to the name.
	Procs int `json:"procs,omitempty"`
	// N is the iteration count of the run.
	N int64 `json:"n"`
	// Runs counts the -count repeats folded into this record by -agg
	// (0 or absent = a raw single-run record).
	Runs int `json:"runs,omitempty"`
	// Metrics maps unit -> value for every "value unit" pair on the
	// line (ns/op, MB/s, B/op, allocs/op and custom ReportMetric
	// units alike).
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the archived document.
type Doc struct {
	// Goos/Goarch/Pkg echo the `go test` banner lines when present.
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	Benches []Result `json:"benches"`
}

// parseLine decodes one "Benchmark..." result line; ok is false for
// anything else (PASS, ok, banners, failures).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Procs: procs, N: n, Metrics: map[string]float64{}}
	// The rest alternates value unit [value unit ...].
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// parse consumes go test -bench output and builds the document.
func parse(in io.Reader) (Doc, error) {
	var doc Doc
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			if r, ok := parseLine(line); ok {
				doc.Benches = append(doc.Benches, r)
			}
		}
	}
	return doc, sc.Err()
}

// aggregate folds -count repeats of the same benchmark into one
// record per (name, procs), preserving first-appearance order. mode
// is "min" or "median":
//
//   - min keeps, per metric, the value of the best run in that
//     metric's quality direction (smallest ns/op, largest Mbit/s;
//     neutral metrics take the smallest). One slow run — a scheduler
//     hiccup, a cold cache — cannot then masquerade as a regression.
//   - median keeps the middle value per metric (even counts take the
//     lower middle so the result is always a real measured value),
//     robust to one outlier in either direction.
func aggregate(doc Doc, mode string) (Doc, error) {
	if mode != "min" && mode != "median" {
		return Doc{}, fmt.Errorf("unknown -agg mode %q (want min or median)", mode)
	}
	type key struct {
		name  string
		procs int
	}
	byKey := map[key][]Result{}
	var order []key
	for _, b := range doc.Benches {
		k := key{b.Name, b.Procs}
		if _, seen := byKey[k]; !seen {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], b)
	}
	out := doc
	out.Benches = nil
	for _, k := range order {
		runs := byKey[k]
		agg := Result{Name: k.name, Procs: k.procs, N: runs[0].N, Runs: len(runs), Metrics: map[string]float64{}}
		units := map[string]bool{}
		for _, r := range runs {
			for unit := range r.Metrics {
				units[unit] = true
			}
		}
		for unit := range units {
			var vals []float64
			for _, r := range runs {
				if v, ok := r.Metrics[unit]; ok {
					vals = append(vals, v)
				}
			}
			sort.Float64s(vals)
			switch {
			case mode == "median":
				agg.Metrics[unit] = vals[(len(vals)-1)/2]
			case metricDirection(unit) > 0:
				agg.Metrics[unit] = vals[len(vals)-1]
			default:
				agg.Metrics[unit] = vals[0]
			}
		}
		out.Benches = append(out.Benches, agg)
	}
	return out, nil
}

// thresholds resolves the regression threshold for a benchmark: the
// first -thresholds rule whose glob matches the name wins, else the
// -threshold default.
type thresholds struct {
	def   float64
	rules []thresholdRule
}

type thresholdRule struct {
	glob string
	pct  float64
}

// parseThresholds decodes a "glob=pct,glob=pct" spec.
func parseThresholds(def float64, spec string) (thresholds, error) {
	th := thresholds{def: def}
	if spec == "" {
		return th, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		glob, pctStr, ok := strings.Cut(part, "=")
		if !ok {
			return th, fmt.Errorf("threshold rule %q is not glob=pct", part)
		}
		if _, err := path.Match(glob, ""); err != nil {
			return th, fmt.Errorf("threshold rule %q: bad glob: %v", part, err)
		}
		pct, err := strconv.ParseFloat(pctStr, 64)
		if err != nil {
			return th, fmt.Errorf("threshold rule %q: bad percent: %v", part, err)
		}
		th.rules = append(th.rules, thresholdRule{glob: glob, pct: pct})
	}
	return th, nil
}

// for_ returns the threshold applying to the named benchmark.
func (t thresholds) for_(bench string) float64 {
	for _, r := range t.rules {
		if ok, _ := path.Match(r.glob, bench); ok {
			return r.pct
		}
	}
	return t.def
}

// metricDirection classifies a metric unit: +1 when larger values are
// better (rates, utilization), -1 when smaller values are better
// (times, allocations, retransmissions), 0 when the metric carries no
// quality direction (counts like cap-lines) and is reported only.
func metricDirection(unit string) int {
	switch unit {
	case "Mbit/s", "MB/s", "util-pct", "done/s", "blast-min":
		return +1
	case "ns/op", "B/op", "allocs/op", "retx", "ns-mean", "ns-med",
		"p99-µs", "timeouts", "mttr-ms":
		return -1
	}
	// Custom ReportMetric units with a known prefix (ns-mean:label).
	switch {
	case strings.HasPrefix(unit, "ns-mean:"), strings.HasPrefix(unit, "ns-med:"):
		return -1
	case strings.HasPrefix(unit, "Mbit/s:"):
		return +1
	}
	return 0
}

// delta is one compared metric.
type delta struct {
	bench, unit string
	old, new    float64
	pct         float64 // signed percent change, new vs old
	threshold   float64 // the threshold that applied to this benchmark
	regressed   bool
	gone        bool // metric present in old, absent from new
	added       bool // metric present in new, absent from old
}

// compareDocs diffs two archived documents benchmark-by-benchmark.
// th resolves, per benchmark, how many percent a directional metric
// may move in the "worse" direction before it counts as a regression.
func compareDocs(old, new Doc, th thresholds) (deltas []delta, onlyOld, onlyNew []string) {
	oldBy := map[string]Result{}
	for _, b := range old.Benches {
		oldBy[b.Name] = b
	}
	seen := map[string]bool{}
	for _, nb := range new.Benches {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			onlyNew = append(onlyNew, nb.Name)
			continue
		}
		thresholdPct := th.for_(nb.Name)
		units := make([]string, 0, len(nb.Metrics))
		for unit := range nb.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			nv := nb.Metrics[unit]
			ov, ok := ob.Metrics[unit]
			if !ok {
				// Symmetric to the "metric removed" rows below: a new
				// metric's first appearance is visible, not silent.
				deltas = append(deltas, delta{bench: nb.Name, unit: unit, new: nv, added: true})
				continue
			}
			d := delta{bench: nb.Name, unit: unit, old: ov, new: nv, threshold: thresholdPct}
			if ov != 0 {
				d.pct = (nv - ov) / ov * 100
			}
			switch metricDirection(unit) {
			case +1:
				d.regressed = ov != 0 && d.pct < -thresholdPct
			case -1:
				// A zero baseline growing to anything is a regression
				// no percentage can express — exactly the case a
				// zero-alloc guarantee regressing must not slip
				// through.
				d.regressed = (ov != 0 && d.pct > thresholdPct) || (ov == 0 && nv > 0)
			}
			deltas = append(deltas, d)
		}
		// A metric that vanished (a dropped ReportAllocs, a renamed
		// unit) must show up, or a guarded baseline could silently
		// leave the trajectory.
		oldUnits := make([]string, 0, len(ob.Metrics))
		for unit := range ob.Metrics {
			if _, ok := nb.Metrics[unit]; !ok {
				oldUnits = append(oldUnits, unit)
			}
		}
		sort.Strings(oldUnits)
		for _, unit := range oldUnits {
			deltas = append(deltas, delta{bench: nb.Name, unit: unit, old: ob.Metrics[unit], gone: true})
		}
	}
	for _, ob := range old.Benches {
		if !seen[ob.Name] {
			onlyOld = append(onlyOld, ob.Name)
		}
	}
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

// formatCompare renders the diff as a markdown table (CI job
// summaries render it directly; it reads fine as plain text too).
// Each regression row names the threshold that applied to its
// benchmark, since -thresholds can vary it per benchmark.
func formatCompare(deltas []delta, onlyOld, onlyNew []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| benchmark | metric | old | new | delta | |\n")
	fmt.Fprintf(&b, "|---|---|---:|---:|---:|---|\n")
	for _, d := range deltas {
		if d.gone {
			fmt.Fprintf(&b, "| %s | %s | %.4g | | | metric removed |\n", d.bench, d.unit, d.old)
			continue
		}
		if d.added {
			fmt.Fprintf(&b, "| %s | %s | | %.4g | | metric added |\n", d.bench, d.unit, d.new)
			continue
		}
		flag := ""
		if d.regressed {
			flag = fmt.Sprintf("REGRESSION (>%.0f%%)", d.threshold)
		}
		pct := fmt.Sprintf("%+.1f%%", d.pct)
		if d.old == 0 && d.new != 0 {
			pct = "new nonzero"
		}
		fmt.Fprintf(&b, "| %s | %s | %.4g | %.4g | %s | %s |\n",
			d.bench, d.unit, d.old, d.new, pct, flag)
	}
	for _, name := range onlyOld {
		fmt.Fprintf(&b, "| %s | | | | | removed |\n", name)
	}
	for _, name := range onlyNew {
		fmt.Fprintf(&b, "| %s | | | | | new |\n", name)
	}
	return b.String()
}

// loadDoc reads one archived document.
func loadDoc(path string) (Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return Doc{}, err
	}
	defer f.Close()
	var doc Doc
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return Doc{}, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare two archived JSON documents: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 10, "default regression threshold in percent (compare mode)")
	thresholdSpec := flag.String("thresholds", "", "per-benchmark threshold overrides, glob=pct comma-separated (compare mode); first matching glob wins")
	agg := flag.String("agg", "", "fold -count repeats of each benchmark before archiving: min (direction-aware best run) or median")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		th, err := parseThresholds(*threshold, *thresholdSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		oldDoc, err := loadDoc(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		newDoc, err := loadDoc(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		deltas, onlyOld, onlyNew := compareDocs(oldDoc, newDoc, th)
		fmt.Print(formatCompare(deltas, onlyOld, onlyNew))
		failed := false
		for _, d := range deltas {
			if d.regressed {
				failed = true
				fmt.Fprintf(os.Stderr, "benchjson: %s %s regressed %.1f%% (%.4g -> %.4g)\n",
					d.bench, d.unit, d.pct, d.old, d.new)
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	if *agg != "" {
		if doc, err = aggregate(doc, *agg); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
