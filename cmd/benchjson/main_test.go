package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
BenchmarkScenario7/reno-8         	       1	5123456789 ns/op	        38.10 Mbit/s	       971.0 retx	        38.00 util-pct
BenchmarkScenario7/cubic-8        	       1	5234567890 ns/op	        87.80 Mbit/s	      1973.0 retx	        88.00 util-pct
BenchmarkTable1LoCCount           	     100	  10000000 ns/op	       123.0 cap-lines	         0.9900 pct
PASS
ok  	repro	12.345s
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "repro" {
		t.Fatalf("banner not parsed: %+v", doc)
	}
	if len(doc.Benches) != 3 {
		t.Fatalf("parsed %d benches, want 3", len(doc.Benches))
	}
	b := doc.Benches[1]
	if b.Name != "Scenario7/cubic" || b.Procs != 8 || b.N != 1 {
		t.Fatalf("bench header wrong: %+v", b)
	}
	if b.Metrics["Mbit/s"] != 87.8 || b.Metrics["util-pct"] != 88 {
		t.Fatalf("metrics wrong: %+v", b.Metrics)
	}
	// The unsuffixed name keeps its zero procs.
	if doc.Benches[2].Name != "Table1LoCCount" || doc.Benches[2].Procs != 0 {
		t.Fatalf("unsuffixed bench wrong: %+v", doc.Benches[2])
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	repro	12.3s",
		"--- FAIL: TestX",
		"Benchmark", // no fields
		"BenchmarkBroken 	notanumber	 5 ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("line %q parsed as a benchmark", line)
		}
	}
}
