package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
BenchmarkScenario7/reno-8         	       1	5123456789 ns/op	        38.10 Mbit/s	       971.0 retx	        38.00 util-pct
BenchmarkScenario7/cubic-8        	       1	5234567890 ns/op	        87.80 Mbit/s	      1973.0 retx	        88.00 util-pct
BenchmarkTable1LoCCount           	     100	  10000000 ns/op	       123.0 cap-lines	         0.9900 pct
PASS
ok  	repro	12.345s
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "repro" {
		t.Fatalf("banner not parsed: %+v", doc)
	}
	if len(doc.Benches) != 3 {
		t.Fatalf("parsed %d benches, want 3", len(doc.Benches))
	}
	b := doc.Benches[1]
	if b.Name != "Scenario7/cubic" || b.Procs != 8 || b.N != 1 {
		t.Fatalf("bench header wrong: %+v", b)
	}
	if b.Metrics["Mbit/s"] != 87.8 || b.Metrics["util-pct"] != 88 {
		t.Fatalf("metrics wrong: %+v", b.Metrics)
	}
	// The unsuffixed name keeps its zero procs.
	if doc.Benches[2].Name != "Table1LoCCount" || doc.Benches[2].Procs != 0 {
		t.Fatalf("unsuffixed bench wrong: %+v", doc.Benches[2])
	}
}

func TestCompareDocsFlagsRegressions(t *testing.T) {
	old := Doc{Benches: []Result{
		{Name: "Scenario5/SACK", Metrics: map[string]float64{"Mbit/s": 80, "ns/op": 1000, "retx": 400}},
		{Name: "Removed", Metrics: map[string]float64{"ns/op": 5}},
	}}
	new := Doc{Benches: []Result{
		// Mbit/s fell 25% (regression at 10%), ns/op improved, retx
		// within threshold.
		{Name: "Scenario5/SACK", Metrics: map[string]float64{"Mbit/s": 60, "ns/op": 900, "retx": 430}},
		{Name: "Added", Metrics: map[string]float64{"ns/op": 7}},
	}}
	deltas, onlyOld, onlyNew := compareDocs(old, new, thresholds{def: 10})
	byUnit := map[string]delta{}
	for _, d := range deltas {
		if d.bench == "Scenario5/SACK" {
			byUnit[d.unit] = d
		}
	}
	if d := byUnit["Mbit/s"]; !d.regressed || d.pct != -25 {
		t.Fatalf("Mbit/s drop not flagged: %+v", d)
	}
	if d := byUnit["ns/op"]; d.regressed {
		t.Fatalf("ns/op improvement flagged as regression: %+v", d)
	}
	if d := byUnit["retx"]; d.regressed {
		t.Fatalf("retx within threshold flagged: %+v", d)
	}
	if len(onlyOld) != 1 || onlyOld[0] != "Removed" {
		t.Fatalf("removed benches wrong: %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "Added" {
		t.Fatalf("added benches wrong: %v", onlyNew)
	}
}

func TestCompareDocsThresholdAndNeutralMetrics(t *testing.T) {
	old := Doc{Benches: []Result{{Name: "X", Metrics: map[string]float64{"ns/op": 100, "cap-lines": 10}}}}
	new := Doc{Benches: []Result{{Name: "X", Metrics: map[string]float64{"ns/op": 109, "cap-lines": 99}}}}
	deltas, _, _ := compareDocs(old, new, thresholds{def: 10})
	for _, d := range deltas {
		if d.regressed {
			t.Fatalf("nothing should regress (9%% ns/op, neutral cap-lines): %+v", d)
		}
	}
	// Past the threshold it flags.
	new.Benches[0].Metrics["ns/op"] = 120
	deltas, _, _ = compareDocs(old, new, thresholds{def: 10})
	found := false
	for _, d := range deltas {
		if d.unit == "ns/op" && d.regressed {
			found = true
		}
	}
	if !found {
		t.Fatal("20% ns/op growth not flagged at 10% threshold")
	}
}

func TestCompareDocsZeroBaselineRegression(t *testing.T) {
	// allocs/op going 0 -> anything must flag even though no percent
	// change is computable (the zero-alloc guarantee regressing).
	old := Doc{Benches: []Result{{Name: "DatapathFrame", Metrics: map[string]float64{"allocs/op": 0}}}}
	new := Doc{Benches: []Result{{Name: "DatapathFrame", Metrics: map[string]float64{"allocs/op": 214}}}}
	deltas, _, _ := compareDocs(old, new, thresholds{def: 10})
	if len(deltas) != 1 || !deltas[0].regressed {
		t.Fatalf("0 -> 214 allocs/op not flagged: %+v", deltas)
	}
	out := formatCompare(deltas, nil, nil)
	if !strings.Contains(out, "new nonzero") || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("zero-baseline delta rendered wrong:\n%s", out)
	}
	// Staying at zero is clean.
	new.Benches[0].Metrics["allocs/op"] = 0
	deltas, _, _ = compareDocs(old, new, thresholds{def: 10})
	if deltas[0].regressed {
		t.Fatalf("0 -> 0 flagged as regression: %+v", deltas[0])
	}
	// A metric disappearing entirely (dropped ReportAllocs) must
	// still leave a visible row.
	delete(new.Benches[0].Metrics, "allocs/op")
	deltas, _, _ = compareDocs(old, new, thresholds{def: 10})
	if len(deltas) != 1 || !deltas[0].gone {
		t.Fatalf("vanished metric not reported: %+v", deltas)
	}
	if out := formatCompare(deltas, nil, nil); !strings.Contains(out, "metric removed") {
		t.Fatalf("vanished metric row missing:\n%s", out)
	}
}

func TestFormatCompareIsMarkdown(t *testing.T) {
	deltas := []delta{{bench: "A", unit: "Mbit/s", old: 10, new: 5, pct: -50, threshold: 10, regressed: true}}
	out := formatCompare(deltas, []string{"Gone"}, []string{"New"})
	for _, want := range []string{"| benchmark |", "| A | Mbit/s |", "REGRESSION", "| Gone |", "removed", "| New |", "new"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAggregateMinOfN(t *testing.T) {
	// Three -count repeats: min keeps the best run per metric in its
	// quality direction — smallest ns/op, largest Mbit/s, smallest
	// neutral metric — so one slow outlier cannot fake a regression.
	in := `BenchmarkScenario5/SACK-8	1	300 ns/op	75.0 Mbit/s	12.0 cap-lines
BenchmarkScenario5/SACK-8	1	100 ns/op	80.0 Mbit/s	10.0 cap-lines
BenchmarkScenario5/SACK-8	1	200 ns/op	60.0 Mbit/s	11.0 cap-lines
BenchmarkOther-8	1	50 ns/op
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := aggregate(doc, "min")
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Benches) != 2 {
		t.Fatalf("aggregated to %d benches, want 2", len(agg.Benches))
	}
	b := agg.Benches[0]
	if b.Name != "Scenario5/SACK" || b.Runs != 3 {
		t.Fatalf("first bench wrong: %+v", b)
	}
	if b.Metrics["ns/op"] != 100 || b.Metrics["Mbit/s"] != 80 || b.Metrics["cap-lines"] != 10 {
		t.Fatalf("min aggregation wrong: %+v", b.Metrics)
	}
	if agg.Benches[1].Name != "Other" || agg.Benches[1].Runs != 1 {
		t.Fatalf("singleton bench wrong: %+v", agg.Benches[1])
	}
}

func TestAggregateMedian(t *testing.T) {
	in := `BenchmarkX-8	1	300 ns/op	75.0 Mbit/s
BenchmarkX-8	1	100 ns/op	80.0 Mbit/s
BenchmarkX-8	1	200 ns/op	60.0 Mbit/s
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := aggregate(doc, "median")
	if err != nil {
		t.Fatal(err)
	}
	m := agg.Benches[0].Metrics
	if m["ns/op"] != 200 || m["Mbit/s"] != 75 {
		t.Fatalf("median aggregation wrong: %+v", m)
	}
	// Even run counts take the lower middle — always a real
	// measurement, never an interpolated value.
	doc.Benches = doc.Benches[:2]
	agg, err = aggregate(doc, "median")
	if err != nil {
		t.Fatal(err)
	}
	if agg.Benches[0].Metrics["ns/op"] != 100 {
		t.Fatalf("even-count median wrong: %+v", agg.Benches[0].Metrics)
	}
	if _, err := aggregate(doc, "mean"); err == nil {
		t.Fatal("unknown agg mode accepted")
	}
}

func TestPerBenchmarkThresholds(t *testing.T) {
	th, err := parseThresholds(20, "Scenario5/*=50, DatapathFrame=5")
	if err != nil {
		t.Fatal(err)
	}
	if got := th.for_("Scenario5/SACK"); got != 50 {
		t.Fatalf("glob rule not applied: got %v", got)
	}
	if got := th.for_("DatapathFrame"); got != 5 {
		t.Fatalf("exact rule not applied: got %v", got)
	}
	if got := th.for_("Scenario7/cubic"); got != 20 {
		t.Fatalf("default not applied: got %v", got)
	}

	// The same 30% ns/op growth passes the loose benchmark and fails
	// the tight one, and each row reports its own threshold.
	old := Doc{Benches: []Result{
		{Name: "Scenario5/SACK", Metrics: map[string]float64{"ns/op": 100}},
		{Name: "DatapathFrame", Metrics: map[string]float64{"ns/op": 100}},
	}}
	new := Doc{Benches: []Result{
		{Name: "Scenario5/SACK", Metrics: map[string]float64{"ns/op": 130}},
		{Name: "DatapathFrame", Metrics: map[string]float64{"ns/op": 130}},
	}}
	deltas, _, _ := compareDocs(old, new, th)
	byBench := map[string]delta{}
	for _, d := range deltas {
		byBench[d.bench] = d
	}
	if d := byBench["Scenario5/SACK"]; d.regressed || d.threshold != 50 {
		t.Fatalf("loose benchmark flagged: %+v", d)
	}
	if d := byBench["DatapathFrame"]; !d.regressed || d.threshold != 5 {
		t.Fatalf("tight benchmark not flagged: %+v", d)
	}
	out := formatCompare(deltas, nil, nil)
	if !strings.Contains(out, "REGRESSION (>5%)") {
		t.Fatalf("per-benchmark threshold not rendered:\n%s", out)
	}

	for _, bad := range []string{"nopct", "x=notanumber", "[=5"} {
		if _, err := parseThresholds(10, bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	repro	12.3s",
		"--- FAIL: TestX",
		"Benchmark", // no fields
		"BenchmarkBroken 	notanumber	 5 ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("line %q parsed as a benchmark", line)
		}
	}
}

func TestParseBenchmemLine(t *testing.T) {
	// -benchmem appends B/op and allocs/op columns; both must land in
	// the archive and diff in the smaller-is-better direction, so the
	// memory trajectory rides the same comparison as ns/op.
	in := "BenchmarkDatapathFrame-8   \t   16384\t     72886 ns/op\t       0 B/op\t       0 allocs/op\n"
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benches) != 1 {
		t.Fatalf("parsed %d benches, want 1", len(doc.Benches))
	}
	m := doc.Benches[0].Metrics
	for _, unit := range []string{"ns/op", "B/op", "allocs/op"} {
		if _, ok := m[unit]; !ok {
			t.Fatalf("metric %s not captured: %+v", unit, m)
		}
		if metricDirection(unit) != -1 {
			t.Fatalf("metric %s not smaller-is-better", unit)
		}
	}

	// A B/op growth past the threshold must flag alongside ns/op.
	old := Doc{Benches: []Result{{Name: "DatapathFrame", Metrics: map[string]float64{"B/op": 64, "allocs/op": 1}}}}
	new := Doc{Benches: []Result{{Name: "DatapathFrame", Metrics: map[string]float64{"B/op": 96, "allocs/op": 1}}}}
	deltas, _, _ := compareDocs(old, new, thresholds{def: 10})
	flagged := false
	for _, d := range deltas {
		if d.unit == "B/op" && d.regressed {
			flagged = true
		}
		if d.unit == "allocs/op" && d.regressed {
			t.Fatalf("unchanged allocs/op flagged: %+v", d)
		}
	}
	if !flagged {
		t.Fatal("50% B/op growth not flagged at 10% threshold")
	}
}
