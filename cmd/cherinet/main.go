// Command cherinet regenerates the tables and figures of "Enabling
// Security on the Edge: A CHERI Compartmentalized Network Stack"
// (DATE 2025) on the simulated Morello/CheriBSD testbed, plus the
// post-paper scenarios built on the declarative testbed layer.
//
// Usage:
//
//	cherinet list              # print the experiment registry
//	cherinet <name> [flags]    # run one experiment (see `cherinet list`)
//	cherinet all               # run every registered experiment
//
// Experiments and their flags come from internal/core's scenario
// registry; an unknown name suggests the nearest registered ones.
//
// The -parallel flag (default GOMAXPROCS) sets how many host workers a
// scenario's sweep cells — and, inside a sharded bed, its stack shards
// — run on. Every report is byte-identical at any value; -parallel 1
// restores fully sequential execution.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/fstack"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: cherinet {list|all|%s} [flags]\n",
		strings.Join(core.ScenarioNames(), "|"))
	fmt.Fprintf(os.Stderr, "run `cherinet list` for descriptions and per-experiment flags\n")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	if cmd == "list" {
		fmt.Print(core.FormatScenarioList())
		return
	}

	def := core.DefaultRunOptions()
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	iters := fs.Int("iters", def.FFWrite.Iterations, "timed ff_write iterations (paper: 1e6)")
	interval := fs.Int64("interval", def.FFWrite.IntervalNS, "ns between timed writes")
	payload := fs.Int("payload", def.FFWrite.Payload, "ff_write payload bytes")
	shards := fs.Int("shards", def.Shards, "max stack shards for scenarios 4 and 6 (swept in powers of two)")
	flows := fs.Int("flows", def.Flows, "concurrent iperf flows for scenarios 4 and 6")
	duration := fs.Int64("duration", def.DurationNS, "scenario4 traffic time (virtual ns)")
	loss := fs.Float64("loss", def.Loss, "scenario5 max random loss rate (swept from 0)")
	delay := fs.Int64("delay", def.DelayNS, "scenario5 one-way delay for the loss sweep (ns)")
	rate := fs.Float64("rate", def.RateBps, "scenario5 bottleneck rate (bits/s); for scenario8, the churn rate (flows/s)")
	s5dur := fs.Int64("s5duration", def.S5DurationNS, "scenario5 traffic time per point (virtual ns)")
	ackrate := fs.Float64("ackrate", 0, "scenario6 reverse (ACK) channel bottleneck (bits/s; 0 = clean)")
	s6dur := fs.Int64("s6duration", def.S6DurationNS, "scenario6 traffic time per point (virtual ns)")
	mode := fs.String("mode", def.Mode, "scenario6 traffic direction: upload (sharded box sends) or download (peer sends into the cloned listeners)")
	cc := fs.String("cc", "", fmt.Sprintf("congestion control %v: modern stacks of scenarios 5-6, restricts the scenario7 sweep (empty = reno / both)", fstack.CongestionAlgos()))
	s7dur := fs.Int64("s7duration", def.S7DurationNS, "scenario7 traffic time per point (virtual ns)")
	conns := fs.Int("conns", def.Conns, "scenario8 idle connection population held across the churn; for scenario9, the connection/concurrency count")
	s8dur := fs.Int64("s8duration", def.S8DurationNS, "scenario8 churn time per point (virtual ns)")
	proto := fs.String("proto", "", "scenario9 protocol: http or dns (empty = both)")
	s9dur := fs.Int64("s9duration", def.S9DurationNS, "scenario9 measured time per point (virtual ns)")
	faults := fs.Int("faults", def.Faults, "scenario10 injected capability-fault count")
	mtbf := fs.Int64("mtbf", def.MTBFNS, "scenario10 mean time between faults (virtual ns)")
	s10dur := fs.Int64("s10duration", def.S10DurationNS, "scenario10 measured time (virtual ns)")
	traceDir := fs.String("trace", "", "scenario5: write per-point Chrome trace-event JSON into this directory")
	metricsDir := fs.String("metrics", "", "scenario5: write per-point metrics timeseries (CSV+JSON) into this directory")
	pcapDir := fs.String("pcap", "", "scenario5: write per-point per-peer libpcap captures under this directory")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "host workers for sweep cells and shard stepping (1 = sequential; output is identical at any value)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		usage()
	}
	core.SetParallelism(*parallel)
	if !fstack.ValidCongestion(*cc) {
		fmt.Fprintf(os.Stderr, "cherinet: -cc %q is not a registered algorithm (have %v)\n",
			*cc, fstack.CongestionAlgos())
		os.Exit(2)
	}
	opts := core.RunOptions{
		FFWrite:       core.FFWriteConfig{Iterations: *iters, IntervalNS: *interval, Payload: *payload},
		Shards:        *shards,
		Flows:         *flows,
		DurationNS:    *duration,
		Loss:          *loss,
		DelayNS:       *delay,
		RateBps:       *rate,
		S5DurationNS:  *s5dur,
		AckRateBps:    *ackrate,
		S6DurationNS:  *s6dur,
		Mode:          *mode,
		Congestion:    *cc,
		S7DurationNS:  *s7dur,
		Conns:         *conns,
		ConnRate:      def.ConnRate,
		S8DurationNS:  *s8dur,
		Proto:         *proto,
		S9Rate:        def.S9Rate,
		S9Conns:       def.S9Conns,
		S9DurationNS:  *s9dur,
		Faults:        *faults,
		MTBFNS:        *mtbf,
		S10Conns:      def.S10Conns,
		S10DurationNS: *s10dur,
		TraceDir:      *traceDir,
		MetricsDir:    *metricsDir,
		PcapDir:       *pcapDir,
	}
	// -rate and -conns are overloaded: -rate is bits/s for scenario5's
	// bottleneck, flows/s for scenario8's churn, requests/s for
	// scenario9; -conns is scenario8's idle population or scenario9's
	// connection count. Only explicit flags move a ladder off its
	// default.
	fs.Visit(func(f *flag.Flag) {
		switch {
		case cmd == "scenario8" && f.Name == "rate":
			opts.ConnRate = *rate
		case cmd == "scenario9" && f.Name == "rate":
			opts.S9Rate = *rate
		case cmd == "scenario9" && f.Name == "conns":
			opts.S9Conns = *conns
		case cmd == "scenario10" && f.Name == "conns":
			opts.S10Conns = *conns
		}
	})

	var entries []core.ScenarioEntry
	if cmd == "all" {
		entries = core.Registry
	} else {
		e, ok := core.LookupScenario(cmd)
		if !ok {
			fmt.Fprintf(os.Stderr, "cherinet: unknown experiment %q\n", cmd)
			if sugg := core.SuggestScenarios(cmd); len(sugg) > 0 {
				fmt.Fprintf(os.Stderr, "did you mean: %s?\n", strings.Join(sugg, ", "))
			}
			fmt.Fprintf(os.Stderr, "run `cherinet list` for the registry\n")
			os.Exit(2)
		}
		entries = []core.ScenarioEntry{e}
	}
	for _, e := range entries {
		if err := e.Run(opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "cherinet %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
