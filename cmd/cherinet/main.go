// Command cherinet regenerates the tables and figures of "Enabling
// Security on the Edge: A CHERI Compartmentalized Network Stack"
// (DATE 2025) on the simulated Morello/CheriBSD testbed.
//
// Usage:
//
//	cherinet table2            # TCP bandwidth, all scenarios (virtual time)
//	cherinet fig3              # capability out-of-bounds demonstration
//	cherinet fig4 [-iters N]   # ff_write(): Scenario 1 vs Baseline
//	cherinet fig5 [-iters N]   # ff_write(): Scenario 2 (uncontended) vs Baseline
//	cherinet fig6 [-iters N]   # ff_write(): Scenario 2 uncontended vs contended
//	cherinet table1            # capability-integration LoC of the F-Stack port
//	cherinet scenario4 [-shards K -flows M]
//	                           # multi-core scaling: sharded stack over RSS queues
//	cherinet scenario5 [-loss F -delay NS -rate BPS]
//	                           # lossy high-BDP WAN: goodput vs loss and vs BDP
//	                           # over an impaired link, go-back-N vs SACK+WS
//	cherinet all               # everything above
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/stats"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: cherinet {table1|table2|fig3|fig4|fig5|fig6|scenario4|scenario5|all} [-iters N] [-interval NS] [-payload B] [-shards K] [-flows M] [-duration NS] [-loss F] [-delay NS] [-rate BPS] [-s5duration NS]\n")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	iters := fs.Int("iters", 100_000, "timed ff_write iterations (paper: 1e6)")
	interval := fs.Int64("interval", 20_000, "ns between timed writes")
	payload := fs.Int("payload", 1448, "ff_write payload bytes")
	shards := fs.Int("shards", 4, "max stack shards for scenario4 (swept in powers of two)")
	flows := fs.Int("flows", 8, "concurrent iperf flows for scenario4")
	duration := fs.Int64("duration", core.DefaultScenario4Duration, "scenario4 traffic time (virtual ns)")
	loss := fs.Float64("loss", 0.01, "scenario5 max random loss rate (swept from 0)")
	delay := fs.Int64("delay", 10e6, "scenario5 one-way delay for the loss sweep (ns)")
	rate := fs.Float64("rate", 100e6, "scenario5 bottleneck rate (bits/s)")
	s5dur := fs.Int64("s5duration", core.DefaultScenario5Duration, "scenario5 traffic time per point (virtual ns)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		usage()
	}
	cfg := core.FFWriteConfig{Iterations: *iters, IntervalNS: *interval, Payload: *payload}

	run := func(name string) error {
		switch name {
		case "table1":
			row, err := core.RunTable1()
			if err != nil {
				return err
			}
			fmt.Println("TABLE I — capability-integration lines in the TCP/IP library")
			fmt.Println(" ", row)
		case "table2":
			blocks, err := core.RunTable2()
			if err != nil {
				return err
			}
			fmt.Print(core.FormatTable2(blocks))
		case "fig3":
			rep, err := core.RunFig3()
			if err != nil {
				return err
			}
			fmt.Println("FIG 3 — applications accessing memory outside their boundaries")
			fmt.Println(" ", rep)
		case "fig4":
			sets, err := core.MeasureFig4(cfg)
			if err != nil {
				return err
			}
			printBoxes("FIG 4 — ff_write() execution time: Scenario 1 vs Baseline (ns)", sets)
		case "fig5":
			sets, err := core.MeasureFig5(cfg)
			if err != nil {
				return err
			}
			printBoxes("FIG 5 — ff_write() execution time: Scenario 2 (uncontended) vs Baseline (ns)", sets)
		case "fig6":
			sets, err := core.MeasureFig6(cfg)
			if err != nil {
				return err
			}
			printBoxes("FIG 6 — ff_write() execution time: Scenario 2 uncontended vs contended (ns)", sets)
		case "scenario4":
			if *shards < 1 {
				return fmt.Errorf("-shards must be at least 1")
			}
			var counts []int
			for k := 1; k <= *shards; k *= 2 {
				counts = append(counts, k)
			}
			results, err := core.RunScenario4Sweep(counts, *flows, *duration)
			if err != nil {
				return err
			}
			fmt.Print(core.FormatScenario4(results))
		case "scenario5":
			losses := []float64{0, *loss / 4, *loss / 2, *loss}
			lossResults, err := core.RunScenario5LossSweep(losses, *delay, *rate, *s5dur)
			if err != nil {
				return err
			}
			fmt.Print(core.FormatScenario5(
				fmt.Sprintf("goodput vs random loss (%.0f Mbit/s bottleneck, %.0f ms RTT)",
					*rate/1e6, float64(2**delay)/1e6), lossResults))
			fmt.Println()
			bdpResults, err := core.RunScenario5BDPSweep(
				[]int64{1e6, 5e6, 20e6, 50e6}, *loss/4, *rate, *s5dur)
			if err != nil {
				return err
			}
			fmt.Print(core.FormatScenario5(
				fmt.Sprintf("goodput vs path BDP (%.0f Mbit/s bottleneck, %.2f%% loss)",
					*rate/1e6, *loss/4*100), bdpResults))
		default:
			usage()
		}
		return nil
	}

	names := []string{cmd}
	if cmd == "all" {
		names = []string{"fig3", "table1", "table2", "fig4", "fig5", "fig6", "scenario4", "scenario5"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "cherinet %s: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func printBoxes(title string, sets []core.LatencySet) {
	fmt.Println(title)
	for _, s := range sets {
		b := stats.CleanBox(s.Samples)
		fmt.Printf("  %-26s %v\n", s.Label, b)
	}
}
