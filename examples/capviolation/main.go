// Capviolation reproduces the paper's Fig. 3 live: an application
// compartment dereferences memory outside its DDC bounds and CHERI
// answers with a capability out-of-bounds exception, while the victim
// compartment keeps running untouched.
//
// Run with: go run ./examples/capviolation
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	rep, err := core.RunFig3()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== CHERI compartmentalization violation demo (paper Fig. 3) ===")
	fmt.Println()
	fmt.Println("cVM2's application was modified to read cVM1's memory:")
	fmt.Printf("  exception : %v\n", rep.Fault)
	fmt.Printf("  attacker  : %v\n", rep.AttackerState)
	fmt.Printf("  leaked    : %d bytes\n", len(rep.Leaked))
	fmt.Printf("  victim ok : %v\n", rep.VictimUnaffected)
	if rep.Fault == nil || len(rep.Leaked) != 0 || !rep.VictimUnaffected {
		log.Fatal("compartmentalization FAILED")
	}
	fmt.Println()
	fmt.Println("As expected, CHERI triggers a CAP-out-of-bound exception (§IV).")
}
