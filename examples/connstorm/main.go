// Connstorm demonstrates the connection-scale subsystem: a sharded
// server box holds a large idle connection population (SYN cache
// handshakes, lazily-backed socket buffers, arena-recycled conns on
// the timing wheel) while a paced client churns short flows against
// it — connect, one 64-byte request, close. It prints the achieved
// accept rate, connect-latency quantiles, the per-idle-conn memory
// bill, and the per-shard accept split.
//
// Run with: go run ./examples/connstorm [-conns N] [-rate F] [-shards K] [-cheri]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	conns := flag.Int("conns", 100_000, "idle connections held across the churn")
	rate := flag.Float64("rate", 50_000, "offered churn rate (short flows per second)")
	shards := flag.Int("shards", 4, "server stack shards / NIC queue pairs")
	durMS := flag.Int64("duration", 1000, "churn time (virtual ms)")
	cheri := flag.Bool("cheri", false, "run the server stack in a cVM with capability DMA")
	flag.Parse()

	cfg := core.Scenario8Config{
		Shards: *shards, CapMode: *cheri, Conns: *conns,
		Rate: *rate, DurationNS: *durMS * 1e6,
	}
	bed, err := core.NewScenario8(sim.NewVClock(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Scenario8Churn(bed, cfg)
	if err != nil {
		log.Fatal(err)
	}

	mode := "baseline process"
	if *cheri {
		mode = "cVM + capability DMA"
	}
	fmt.Printf("connection churn storm — %d shards, %s\n", *shards, mode)
	fmt.Printf("  idle population   %d conns held (%.1f B segment, %.0f B heap per conn)\n",
		res.Conns, res.SegPerConn, res.HeapPerConn)
	fmt.Printf("  churn             offered %.0f flows/s for %d ms → %d completed (%.0f accepts/s)\n",
		res.Rate, *durMS, res.Completed, res.AcceptsPerSec())
	if res.Deferred > 0 {
		fmt.Printf("                    client deferred %d opens (handshake concurrency cap)\n", res.Deferred)
	}
	fmt.Printf("  connect latency   p50 %.1f µs, p99 %.1f µs\n",
		float64(res.ConnectP50NS)/1e3, float64(res.ConnectP99NS)/1e3)
	fmt.Printf("  server counters   accepts %d, SYN drops %d, accept-queue overflows %d, TIME_WAIT reuses %d\n",
		res.Stats.Accepts, res.Stats.SynDrops, res.Stats.AcceptOverflows, res.Stats.TimeWaitReuses)

	fmt.Println("  per-shard accepts:")
	for i := 0; i < bed.Sharded.NumShards(); i++ {
		st := bed.Sharded.ShardStats(i)
		fmt.Printf("    shard %d: %6d accepts, %8d rx frames\n", i, st.Accepts, st.RxFrames)
	}
	fmt.Printf("  residual state: %d conns, accept-queue depth %d, %d half-open\n",
		bed.Sharded.ConnCount(), bed.Sharded.AcceptQueueDepth(), halfOpen(bed))
}

// halfOpen sums the shards' SYN-cache occupancy.
func halfOpen(bed *core.Setup) int {
	n := 0
	for i := 0; i < bed.Sharded.NumShards(); i++ {
		n += bed.Sharded.Shard(i).HalfOpenCount()
	}
	return n
}
