// Cubicwan demonstrates the pluggable congestion-control layer: one
// bulk transfer through Scenario 7's WAN path — a 100 Mbit/s
// bottleneck with a deep queue, 50 ms of one-way delay and sparse
// seeded loss fades — driven once per congestion controller. Both
// runs use the identical modern stack (SACK + window scaling + big
// buffers) over the identical seeded link; only fstack's
// CongestionController implementation differs, selected through
// TCPTuning.Congestion. Reno's one-MSS-per-RTT climb strands most of
// the bottleneck after every loss event; CUBIC's cubic-in-time growth
// (RFC 8312) recovers it.
//
// Run with: go run ./examples/cubicwan [-delay NS] [-rate BPS] [-cheri]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fstack"
	"repro/internal/netem"
	"repro/internal/sim"
)

func main() {
	delay := flag.Int64("delay", 50e6, "one-way propagation delay (ns)")
	rate := flag.Float64("rate", 100e6, "bottleneck rate (bits/s)")
	dur := flag.Int64("duration", core.DefaultScenario7Duration, "traffic time (virtual ns)")
	cheri := flag.Bool("cheri", false, "run the local stack in a cVM with capability DMA")
	flag.Parse()

	link := netem.Config{DelayNS: *delay, RateBps: *rate}
	fmt.Printf("WAN link: %.0f Mbit/s bottleneck, %.0f ms RTT, deep queue, sparse seeded fades (BDP %.0f KiB)\n",
		*rate/1e6, float64(2**delay)/1e6, *rate/8*float64(2**delay)/1e9/1024)

	var mbps []float64
	for _, cc := range fstack.CongestionAlgos() {
		s, err := core.NewScenario7(sim.NewVClock(), core.Scenario7Config{
			CapMode: *cheri, Congestion: cc, Link: link,
		})
		if err != nil {
			log.Fatal(err)
		}
		r, err := core.Scenario7Bandwidth(s, *dur)
		if err != nil {
			log.Fatal(err)
		}
		mbps = append(mbps, r.Mbps)
		fmt.Printf("  %-6s %7.1f Mbit/s (%3.0f%% of the bottleneck)   [%s]\n",
			cc, r.Mbps, r.Utilization()*100, r.Stats.RecoverySummary())
	}
	if len(mbps) == 2 && mbps[0] > 0 {
		fmt.Printf("cubic recovers %.2fx reno's goodput at this BDP\n", mbps[1]/mbps[0])
	}
}
