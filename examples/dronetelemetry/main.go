// Dronetelemetry is the workload the paper's introduction motivates: a
// drone's software stack (NuttX/PX4-style) where telemetry, the network
// stack and the drivers would traditionally share one address space.
// Here the flight application runs in its own cVM (Scenario 2 layout)
// and streams MAVLink-like telemetry over UDP through the
// compartmentalized F-Stack/DPDK stack to a ground station — and a
// compromised telemetry app cannot touch the stack compartment.
//
// Run with: go run ./examples/dronetelemetry
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/sim"
)

// mavHeartbeat builds a MAVLink-1-shaped HEARTBEAT frame (6-byte
// header + payload + crc placeholder); the protocol content is
// illustrative.
func mavHeartbeat(seq byte) []byte {
	msg := make([]byte, 6+9+2)
	msg[0] = 0xFE // STX
	msg[1] = 9    // payload length
	msg[2] = seq
	msg[3] = 1 // system id
	msg[4] = 1 // component id
	msg[5] = 0 // HEARTBEAT
	binary.LittleEndian.PutUint32(msg[6:], 0)
	msg[10] = 2 // MAV_TYPE_QUADROTOR
	return msg
}

func main() {
	clk := sim.NewVClock()
	setup, err := core.NewScenario2(clk, 1)
	if err != nil {
		log.Fatal(err)
	}
	stackEnv := setup.Envs[0]
	ground := setup.Peers[0].Env

	// Ground station: UDP listener on the MAVLink port.
	gapi := ground.Loop.Locked()
	gfd, _ := gapi.Socket(fstack.SockDgram)
	gapi.Bind(gfd, fstack.IPv4Addr{}, 14550)
	var received [][]byte
	ground.Loop.OnLoop = func(now int64) bool {
		buf := make([]byte, 512)
		for {
			n, _, _, errno := gapi.RecvFrom(gfd, buf)
			if errno != hostos.OK {
				return true
			}
			received = append(received, append([]byte{}, buf[:n]...))
		}
	}

	// The flight app uses the stack only through its compartment view.
	// UDP send/recv go through the stack's own API here; the app's data
	// lives in its cVM window.
	app := setup.AppCVM(0)
	fmt.Printf("drone app compartment: [%#x,+%#x); stack compartment: [%#x,+%#x)\n",
		app.Base(), app.Size(), stackEnv.CVM.Base(), stackEnv.CVM.Size())

	sapi := stackEnv.Loop.Locked()
	ufd, _ := sapi.Socket(fstack.SockDgram)

	const wanted = 25
	seq := byte(0)
	nextSend := int64(0)
	stackEnv.Loop.OnLoop = func(now int64) bool {
		if now >= nextSend && int(seq) < wanted {
			hb := mavHeartbeat(seq)
			if _, errno := sapi.SendTo(ufd, hb, fstack.IP4(10, 0, 0, 2), 14550); errno == hostos.OK {
				seq++
			}
			nextSend = now + 1_000_000 // 1 kHz telemetry
		}
		return true
	}

	loops := setup.Loops()
	for i := 0; i < 200000 && len(received) < wanted; i++ {
		for _, l := range loops {
			l.RunOnce()
		}
		clk.Advance(5000)
	}
	if len(received) < wanted {
		log.Fatalf("ground station got %d of %d heartbeats", len(received), wanted)
	}
	fmt.Printf("ground station received %d heartbeats (%.1f ms virtual)\n",
		len(received), float64(clk.Now())/1e6)

	// Now the "compromise": the telemetry app tries to scribble over the
	// network stack's compartment (e.g. to hijack the driver rings).
	err = app.Store(stackEnv.CVM.Base()+0x100, []byte("own the driver"))
	fmt.Printf("attack on the stack compartment: %v\n", err)
	if err == nil {
		log.Fatal("attack SUCCEEDED — compartmentalization failed")
	}
	fmt.Printf("attacker state: %v; telemetry stack unaffected.\n", app.State())
}
