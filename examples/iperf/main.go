// Iperf runs the paper's bandwidth benchmark on any scenario from the
// command line, printing Table II-style rows.
//
// Run with: go run ./examples/iperf [-scenario baseline1|baseline2|s1|s2|s2c] [-dir server|client]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	scenario := flag.String("scenario", "s1", "baseline1 | baseline2 | s1 | s2 | s2c | s3")
	dir := flag.String("dir", "client", "server (local receives) | client (local sends)")
	flag.Parse()

	clk := sim.NewVClock()
	var (
		setup *core.Setup
		err   error
	)
	switch *scenario {
	case "baseline1":
		setup, err = core.NewBaselineSingle(clk)
	case "baseline2":
		setup, err = core.NewBaselineDual(clk)
	case "s1":
		setup, err = core.NewScenario1(clk)
	case "s2":
		setup, err = core.NewScenario2(clk, 1)
	case "s2c":
		setup, err = core.NewScenario2(clk, 2)
	case "s3":
		setup, err = core.NewScenario3(clk) // future work: DPDK in its own cVM
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}
	if err != nil {
		log.Fatal(err)
	}
	d := core.LocalIsClient
	if *dir == "server" {
		d = core.LocalIsServer
	}
	fmt.Printf("running iperf, scenario=%s, local side=%v ...\n", *scenario, d)
	res, err := core.BandwidthPair(setup, d)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res {
		fmt.Println(" ", r)
	}
}
