// Multicore demonstrates the sharded stack: one multi-queue NIC with
// symmetric-RSS flow steering, one independent F-Stack shard per queue
// pair, and M concurrent iperf flows spread across the shards. It
// prints where every flow landed and the per-shard goodput split —
// the horizontal-scaling answer to the single stack mutex the paper's
// Scenario 2 measures.
//
// Run with: go run ./examples/multicore [-shards K] [-flows M] [-server] [-cheri]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	shards := flag.Int("shards", 4, "stack shards / NIC queue pairs")
	flows := flag.Int("flows", 8, "concurrent iperf flows")
	server := flag.Bool("server", false, "local side receives (default: sends)")
	cheri := flag.Bool("cheri", false, "run the stack in a cVM with capability DMA")
	flag.Parse()

	clk := sim.NewVClock()
	setup, err := core.NewScenario4(clk, core.Scenario4Config{Shards: *shards, CapMode: *cheri})
	if err != nil {
		log.Fatal(err)
	}
	dir := core.LocalIsClient
	if *server {
		dir = core.LocalIsServer
	}
	res, err := core.Scenario4Bandwidth(setup, dir, *flows, core.DefaultScenario4Duration)
	if err != nil {
		log.Fatal(err)
	}

	mode := "baseline"
	if *cheri {
		mode = "cheri"
	}
	fmt.Printf("%d flows (%s) over %d shard(s), %s mode: %.0f Mbit/s aggregate\n",
		res.Flows, dir, res.Shards, mode, res.Mbps)
	for f, mbps := range res.PerFlow {
		fmt.Printf("  flow %d: %6.0f Mbit/s\n", f, mbps)
	}
	for i := 0; i < setup.Sharded.NumShards(); i++ {
		st := setup.Sharded.ShardStats(i)
		qs := setup.Dev.QueueStats(i)
		fmt.Printf("  shard %d: %7d frames in, %7d frames out (queue: %d rx / %d tx)\n",
			i, st.RxFrames, st.TxFrames, qs.IPackets, qs.OPackets)
	}
}
