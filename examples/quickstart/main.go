// Quickstart: bring up one compartmentalized network stack (DPDK +
// F-Stack inside a CHERI cVM) on a simulated Morello box, connect to
// the link partner, and bounce a message over TCP.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/sim"
)

func main() {
	// A virtual clock makes the run deterministic and instant.
	clk := sim.NewVClock()

	// Scenario 1 layout, but we only use cVM1/eth0: the whole network
	// stack runs inside a capability compartment.
	setup, err := core.NewScenario1(clk)
	if err != nil {
		log.Fatal(err)
	}
	cvm1 := setup.Envs[0]
	peer := setup.Peers[0].Env
	fmt.Printf("booted %s: stack in compartment [%#x,+%#x), capability mode %v\n",
		cvm1.Name, cvm1.CVM.Base(), cvm1.CVM.Size(), cvm1.CapMode())

	// The peer machine runs a TCP echo service in its main loop.
	var echoFDs []int
	papi := peer.Loop.Locked()
	lfd, _ := papi.Socket(fstack.SockStream)
	papi.Bind(lfd, fstack.IPv4Addr{}, 7)
	papi.Listen(lfd, 4)
	peer.Loop.OnLoop = func(now int64) bool {
		if fd, _, _, errno := papi.Accept(lfd); errno == hostos.OK {
			echoFDs = append(echoFDs, fd)
		}
		buf := make([]byte, 2048)
		for _, fd := range echoFDs {
			for {
				n, errno := papi.Read(fd, buf)
				if errno != hostos.OK || n == 0 {
					break
				}
				papi.Write(fd, buf[:n])
			}
		}
		return true
	}

	// The cVM application: connect, send, await the echo.
	api := cvm1.Loop.Locked()
	fd, _ := api.Socket(fstack.SockStream)
	if errno := api.Connect(fd, fstack.IP4(10, 0, 0, 2), 7); errno != hostos.EINPROGRESS {
		log.Fatalf("connect: %v", errno)
	}
	msg := []byte("hello from a CHERI compartment")
	var got []byte
	sent := false
	cvm1.Loop.OnLoop = func(now int64) bool {
		if !sent {
			if n, errno := api.Write(fd, msg); errno == hostos.OK && n == len(msg) {
				sent = true
			}
			return true
		}
		buf := make([]byte, 256)
		if n, errno := api.Read(fd, buf); errno == hostos.OK && n > 0 {
			got = append(got, buf[:n]...)
		}
		return len(got) < len(msg)
	}

	// Drive both machines in lockstep virtual time.
	loops := setup.Loops()
	for i := 0; i < 100000 && len(got) < len(msg); i++ {
		for _, l := range loops {
			l.RunOnce()
		}
		clk.Advance(5000)
	}
	if string(got) != string(msg) {
		log.Fatalf("echo mismatch: %q", got)
	}
	fmt.Printf("echo round trip OK: %q (%.3f ms virtual)\n", got, float64(clk.Now())/1e6)
	st := cvm1.Stk.Stats()
	fmt.Printf("stack stats: %d frames out, %d frames in\n", st.TxFrames, st.RxFrames)
}
