// Rpc demonstrates the request/response application plane: a sharded
// server box answers HTTP/1.1-style keep-alive GETs (TCP) or
// DNS-shaped queries (UDP) while a per-shard client fleet drives load
// either open-loop (rate-paced, queueing shows up in the tail) or
// closed-loop (a fixed concurrency, back-to-back). It prints the
// achieved completion rate, the per-request latency quantiles merged
// across shards, and the server-side refusal counters — the figure of
// merit is p99, not goodput.
//
// Run with: go run ./examples/rpc [-proto http|dns] [-rate F] [-conns N]
// [-shards K] [-loss P] [-delay NS] [-cheri]
// A -rate of 0 switches to closed-loop, where -conns is the concurrency.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netem"
)

func main() {
	proto := flag.String("proto", "http", "protocol pair: http (TCP keep-alive) or dns (UDP query/answer)")
	rate := flag.Float64("rate", 20_000, "open-loop offered rate (requests/s); 0 = closed-loop")
	conns := flag.Int("conns", 32, "keep-alive connections (http) or outstanding queries (dns, closed-loop)")
	shards := flag.Int("shards", 4, "server stack shards / NIC queue pairs (and client workers)")
	loss := flag.Float64("loss", 0, "link loss probability")
	delay := flag.Int64("delay", 0, "link one-way delay (virtual ns)")
	durMS := flag.Int64("duration", 500, "measured time (virtual ms)")
	cheri := flag.Bool("cheri", false, "run the server stack in a cVM with capability DMA")
	flag.Parse()

	cfg := core.Scenario9Config{
		Proto: *proto, Shards: *shards, CapMode: *cheri,
		Rate: *rate, Conns: *conns, DurationNS: *durMS * 1e6,
	}
	if *loss > 0 || *delay > 0 {
		cfg.Link = netem.Config{LossRate: *loss, DelayNS: *delay}
	}
	res, err := core.RunScenario9(cfg)
	if err != nil {
		log.Fatal(err)
	}

	mode := "baseline process"
	if *cheri {
		mode = "cVM + capability DMA"
	}
	load := fmt.Sprintf("closed-loop ×%d", res.Conns)
	if res.Rate > 0 {
		load = fmt.Sprintf("open-loop %.0f req/s", res.Rate)
	}
	fmt.Printf("request/response plane — %s, %d shards, %s\n", res.Proto, res.Shards, mode)
	fmt.Printf("  load              %s for %d ms → %d/%d completed (%.0f req/s)\n",
		load, *durMS, res.Completed, res.Issued, res.CompletedPerSec())
	fmt.Printf("  request latency   p50 %.1f µs, p99 %.1f µs, p999 %.1f µs (merged across %d workers)\n",
		float64(res.P50NS)/1e3, float64(res.P99NS)/1e3, float64(res.P999NS)/1e3, res.Shards)
	if res.Timeouts > 0 || res.Failed > 0 {
		fmt.Printf("  retries           %d timeouts, %d queries abandoned after the try budget\n",
			res.Timeouts, res.Failed)
	}
	if res.Deferred > 0 {
		fmt.Printf("                    client deferred %d pace slots (outstanding cap)\n", res.Deferred)
	}
	fmt.Printf("  server counters   SYN drops %d, accept-queue overflows %d, UDP queue drops %d, retransmits %d\n",
		res.Stats.SynDrops, res.Stats.AcceptOverflows, res.Stats.UdpQueueDrops, res.Stats.Retransmit)
}
