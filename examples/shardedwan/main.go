// Shardedwan demonstrates the composed testbed that the declarative
// spec layer makes a one-struct affair: Scenario 4's multi-queue RSS
// stack (K CPU-budgeted shards) pushing M concurrent uploads through
// Scenario 5's seeded lossy, rate-limited WAN bottleneck — with
// independent per-direction impairments, so the ACK channel can be
// squeezed separately from the data path. It runs the paper's stack
// (1 shard, go-back-N) against the composed one (K shards, SACK +
// window scaling) on the identical link and prints the goodput split,
// per-shard load and the link's per-direction accounting.
//
// Run with: go run ./examples/shardedwan [-shards K] [-flows M]
// [-loss F] [-burst SLOTS] [-rate BPS] [-delay NS] [-ackrate BPS]
// [-cheri]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sim"
)

func main() {
	shards := flag.Int("shards", 4, "stack shards / NIC queue pairs in the composed run")
	flows := flag.Int("flows", 8, "concurrent iperf upload flows")
	loss := flag.Float64("loss", 0.005, "stationary loss rate on the data path")
	burst := flag.Float64("burst", 30, "mean loss-fade length in frame slots (0 = i.i.d. loss)")
	rate := flag.Float64("rate", 2e9, "bottleneck rate (bits/s)")
	delay := flag.Int64("delay", 5e6, "one-way propagation delay (ns)")
	ackrate := flag.Float64("ackrate", 0, "reverse (ACK) channel bottleneck (bits/s; 0 = clean)")
	cheri := flag.Bool("cheri", false, "run the sharded stack in a cVM with capability DMA")
	flag.Parse()

	fwd := netem.Config{DelayNS: *delay, RateBps: *rate}
	kind := "i.i.d."
	if *burst > 0 && *loss > 0 {
		fwd.GEBadProb, fwd.GERecoverProb = netem.GEFromStationary(*loss, *burst)
		kind = fmt.Sprintf("bursty (~%.0f-frame fades)", *burst)
	} else {
		fwd.LossRate = *loss
	}
	var rev *netem.Config
	ackNote := "clean"
	if *ackrate > 0 {
		rev = &netem.Config{DelayNS: *delay, RateBps: *ackrate}
		ackNote = fmt.Sprintf("%.1f Mbit/s bottleneck", *ackrate/1e6)
	}
	fmt.Printf("WAN link: %.1f Gbit/s bottleneck, %.0f ms RTT, %.2f%% %s loss; ACK path %s\n",
		*rate/1e9, float64(2**delay)/1e6, *loss*100, kind, ackNote)

	type run struct {
		label  string
		shards int
		modern bool
	}
	for _, r := range []run{
		{"paper stack (1 shard, go-back-N)", 1, false},
		{fmt.Sprintf("composed (%d shards, SACK+WS)", *shards), *shards, true},
	} {
		s, err := core.NewScenario6(sim.NewVClock(), core.Scenario6Config{
			Shards: r.shards, CapMode: *cheri, Modern: r.modern, Fwd: fwd, Rev: rev,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Scenario6Bandwidth(s, *flows, core.DefaultScenario6Duration)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %.0f Mbit/s aggregate over %d flows\n", r.label, res.Mbps, res.Flows)
		for f, mbps := range res.PerFlow {
			fmt.Printf("  flow %d: %6.0f Mbit/s\n", f, mbps)
		}
		for i := 0; i < s.Sharded.NumShards(); i++ {
			st := s.Sharded.ShardStats(i)
			qs := s.Dev.QueueStats(i)
			fmt.Printf("  shard %d: %7d frames in, %7d frames out (queue: %d rx / %d tx)\n",
				i, st.RxFrames, st.TxFrames, qs.IPackets, qs.OPackets)
		}
		fmt.Printf("  recovery: %s\n", res.Stats.RecoverySummary())
		fmt.Printf("  link fwd: %v\n", res.FwdStats)
		fmt.Printf("  link rev: %v\n", res.RevStats)
	}
}
