// Wan demonstrates the link-impairment subsystem: two stacks joined by
// a netem.Link shaped like a WAN path — a 100 Mbit/s bottleneck with
// 50 ms of one-way delay and 0.5 % random loss — and one bulk transfer
// driven across it twice: once with the paper's stack (no SACK, 64 KiB
// windows) and once with SACK + window scaling, printing the goodput
// and the retransmit breakdown of each. The A/B rides on
// fstack.Stack's TCP tuning knob; the link is identical in both runs.
//
// Run with: go run ./examples/wan [-loss F] [-delay NS] [-rate BPS] [-cheri]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sim"
)

func main() {
	loss := flag.Float64("loss", 0.005, "stationary loss rate")
	burst := flag.Float64("burst", 33, "mean loss-fade length in frame slots (0 = i.i.d. loss)")
	delay := flag.Int64("delay", 50e6, "one-way propagation delay (ns)")
	rate := flag.Float64("rate", 100e6, "bottleneck rate (bits/s)")
	cheri := flag.Bool("cheri", false, "run the local stack in a cVM with capability DMA")
	flag.Parse()

	link := netem.Config{DelayNS: *delay, RateBps: *rate}
	kind := "i.i.d."
	if *burst > 0 && *loss > 0 {
		// Gilbert–Elliott with the requested stationary rate and mean
		// fade length — the millisecond-fade pattern real WANs show.
		link.GERecoverProb = 1 / *burst
		link.GEBadProb = link.GERecoverProb * *loss / (1 - *loss)
		kind = fmt.Sprintf("bursty (~%.0f-frame fades)", *burst)
	} else {
		link.LossRate = *loss
	}
	fmt.Printf("WAN link: %.0f Mbit/s bottleneck, %.0f ms RTT, %.2f%% %s loss (BDP %.0f KiB)\n",
		*rate/1e6, float64(2**delay)/1e6, *loss*100, kind,
		*rate/8*float64(2**delay)/1e9/1024)

	for _, modern := range []bool{false, true} {
		s, err := core.NewScenario5(sim.NewVClock(), core.Scenario5Config{
			CapMode: *cheri, Modern: modern, Link: link,
		})
		if err != nil {
			log.Fatal(err)
		}
		r, err := core.Scenario5Bandwidth(s, core.DefaultScenario5Duration)
		if err != nil {
			log.Fatal(err)
		}
		name := "go-back-N, 64 KiB windows  "
		if modern {
			name = "SACK + window scaling      "
		}
		fmt.Printf("  %s %7.1f Mbit/s   [%s]\n", name, r.Mbps, r.Stats.RecoverySummary())
		fmt.Printf("  %s          link: %v\n", "", r.Fwd)
	}
}
