package app

import (
	"repro/internal/fstack"
	"repro/internal/hostos"
)

// API is the slice of the ff_* surface the application plane needs:
// churn.API plus the datagram calls. Stack.*, Loop.Locked() and
// ShardedStack.API() all satisfy it, so the same workload runs on
// every compartment layout.
type API interface {
	Socket(typ int) (int, hostos.Errno)
	Bind(fd int, ip fstack.IPv4Addr, port uint16) hostos.Errno
	Listen(fd, backlog int) hostos.Errno
	Accept(fd int) (int, fstack.IPv4Addr, uint16, hostos.Errno)
	Connect(fd int, ip fstack.IPv4Addr, port uint16) hostos.Errno
	Read(fd int, dst []byte) (int, hostos.Errno)
	Write(fd int, src []byte) (int, hostos.Errno)
	SendTo(fd int, data []byte, ip fstack.IPv4Addr, port uint16) (int, hostos.Errno)
	RecvFrom(fd int, dst []byte) (int, fstack.IPv4Addr, uint16, hostos.Errno)
	Close(fd int) hostos.Errno
	EpollCreate() int
	EpollCtl(epfd, op, fd int, events uint32) hostos.Errno
	EpollWait(epfd int, evs []fstack.Event) (int, hostos.Errno)
}

const (
	// evBuf is sized past any reachable ready-set so EpollWait never
	// truncates: a truncated wait returns a map-ordered (random) subset
	// and the run stops being deterministic.
	evBuf = 4096
	// maxOutstanding bounds an open-loop client's in-flight requests.
	// Past it, pace slots are counted as deferred instead of issued, so
	// an overloaded point reports honest backpressure instead of
	// growing queues without bound.
	maxOutstanding = 4096
)
