package app

import (
	"bytes"
	"testing"

	"repro/internal/fstack"
	"repro/internal/hostos"
)

// --- DNS codec ---

func TestDNSCodecRoundTrip(t *testing.T) {
	buf := make([]byte, 512)
	n := putDNSQuery(buf, 0xBEEF)
	if n != dnsQueryLen {
		t.Fatalf("query length %d, want %d", n, dnsQueryLen)
	}
	if id, ok := dnsID(buf[:n]); !ok || id != 0xBEEF {
		t.Fatalf("query id %#x ok=%v", id, ok)
	}
	n = putDNSAnswer(buf, 0x1234)
	if n != dnsAnswerLen {
		t.Fatalf("answer length %d, want %d", n, dnsAnswerLen)
	}
	if id, ok := dnsID(buf[:n]); !ok || id != 0x1234 {
		t.Fatalf("answer id %#x ok=%v", id, ok)
	}
	// The answer embeds the question and ends in the A record's RDATA.
	if !bytes.Contains(buf[:n], dnsQuestion) {
		t.Fatal("answer does not echo the question")
	}
	if !bytes.HasSuffix(buf[:n], []byte{10, 0, 0, 2}) {
		t.Fatal("answer does not end in the A record address")
	}
}

func TestDNSIDRejectsShortMessages(t *testing.T) {
	if _, ok := dnsID(make([]byte, dnsHeaderLen-1)); ok {
		t.Fatal("truncated header accepted")
	}
}

// --- HTTP client incremental parser ---

// newParserClient builds a client whose parser can be fed directly.
func newParserClient(t *testing.T) (*HTTPClient, *httpCliConn) {
	t.Helper()
	c, err := NewHTTPClient(fstack.IPv4Addr{}, 80, 1, nil, 0, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	return c, &httpCliConn{need: -1}
}

// pend registers an outstanding request issued at t0 without a stack.
func pend(c *HTTPClient, cc *httpCliConn, t0 int64) {
	cc.t0 = append(cc.t0, t0)
	c.inflight++
	c.issued++
}

func TestHTTPParserSplitHead(t *testing.T) {
	c, cc := newParserClient(t)
	pend(c, cc, 100)
	// The head arrives in three fragments, the last carrying body bytes.
	for _, frag := range []string{"HTTP/1.1 200 OK\r\nContent-L", "ength: 4\r\n", "\r\nab"} {
		if !c.feed(cc, []byte(frag), 500) {
			t.Fatalf("parser failed on %q: %v", frag, c.failure)
		}
	}
	if c.completed != 0 || cc.need != 2 {
		t.Fatalf("after partial body: completed=%d need=%d", c.completed, cc.need)
	}
	if !c.feed(cc, []byte("cd"), 900) {
		t.Fatal(c.failure)
	}
	if c.completed != 1 || c.inflight != 0 {
		t.Fatalf("completed=%d inflight=%d", c.completed, c.inflight)
	}
	if got := c.Hist.Quantile(0.5); got <= 0 || got > 800 {
		t.Fatalf("recorded latency %d, want ~800", got)
	}
}

func TestHTTPParserPipelinedResponses(t *testing.T) {
	c, cc := newParserClient(t)
	pend(c, cc, 0)
	pend(c, cc, 0)
	pend(c, cc, 0)
	// Three responses in one segment: sized body, empty body, sized
	// body — each must complete exactly one outstanding request.
	seg := []byte("HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nxyz" +
		"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n" +
		"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
	if !c.feed(cc, seg, 50) {
		t.Fatal(c.failure)
	}
	if c.completed != 3 || c.inflight != 0 || cc.outstanding() != 0 {
		t.Fatalf("completed=%d inflight=%d outstanding=%d", c.completed, c.inflight, cc.outstanding())
	}
}

func TestHTTPParserRejectsMissingContentLength(t *testing.T) {
	c, cc := newParserClient(t)
	pend(c, cc, 0)
	if c.feed(cc, []byte("HTTP/1.1 200 OK\r\nServer: x\r\n\r\n"), 1) {
		t.Fatal("headless response accepted")
	}
	if c.Err() != hostos.EINVAL {
		t.Fatalf("failure %v, want EINVAL", c.Err())
	}
}

func TestHTTPParserRejectsBadContentLength(t *testing.T) {
	c, cc := newParserClient(t)
	pend(c, cc, 0)
	if c.feed(cc, []byte("HTTP/1.1 200 OK\r\nContent-Length: ten\r\n\r\n"), 1) {
		t.Fatal("unparseable length accepted")
	}
	if c.Err() != hostos.EINVAL {
		t.Fatalf("failure %v, want EINVAL", c.Err())
	}
}

// --- HTTP server over a scripted API ---

// fakeAPI scripts the socket surface: queued accepts, per-fd read
// chunks, captured writes, queued epoll ready sets. Everything else
// succeeds.
type fakeAPI struct {
	nextFD  int
	accepts []int
	reads   map[int][][]byte
	writes  map[int][]byte
	events  [][]fstack.Event
	closed  map[int]bool
}

func newFakeAPI() *fakeAPI {
	return &fakeAPI{
		nextFD: 10,
		reads:  make(map[int][][]byte),
		writes: make(map[int][]byte),
		closed: make(map[int]bool),
	}
}

func (f *fakeAPI) Socket(typ int) (int, hostos.Errno) {
	fd := f.nextFD
	f.nextFD++
	return fd, hostos.OK
}
func (f *fakeAPI) Bind(fd int, ip fstack.IPv4Addr, port uint16) hostos.Errno { return hostos.OK }
func (f *fakeAPI) Listen(fd, backlog int) hostos.Errno                       { return hostos.OK }
func (f *fakeAPI) Connect(fd int, ip fstack.IPv4Addr, port uint16) hostos.Errno {
	return hostos.EINPROGRESS
}
func (f *fakeAPI) Accept(fd int) (int, fstack.IPv4Addr, uint16, hostos.Errno) {
	if len(f.accepts) == 0 {
		return -1, fstack.IPv4Addr{}, 0, hostos.EAGAIN
	}
	cfd := f.accepts[0]
	f.accepts = f.accepts[1:]
	return cfd, fstack.IPv4Addr{}, 0, hostos.OK
}
func (f *fakeAPI) Read(fd int, dst []byte) (int, hostos.Errno) {
	q := f.reads[fd]
	if len(q) == 0 {
		return 0, hostos.EAGAIN
	}
	chunk := q[0]
	f.reads[fd] = q[1:]
	return copy(dst, chunk), hostos.OK
}
func (f *fakeAPI) Write(fd int, src []byte) (int, hostos.Errno) {
	f.writes[fd] = append(f.writes[fd], src...)
	return len(src), hostos.OK
}
func (f *fakeAPI) SendTo(fd int, data []byte, ip fstack.IPv4Addr, port uint16) (int, hostos.Errno) {
	return len(data), hostos.OK
}
func (f *fakeAPI) RecvFrom(fd int, dst []byte) (int, fstack.IPv4Addr, uint16, hostos.Errno) {
	return 0, fstack.IPv4Addr{}, 0, hostos.EAGAIN
}
func (f *fakeAPI) Close(fd int) hostos.Errno {
	f.closed[fd] = true
	return hostos.OK
}
func (f *fakeAPI) EpollCreate() int                                      { return 1 }
func (f *fakeAPI) EpollCtl(epfd, op, fd int, events uint32) hostos.Errno { return hostos.OK }
func (f *fakeAPI) EpollWait(epfd int, evs []fstack.Event) (int, hostos.Errno) {
	if len(f.events) == 0 {
		return 0, hostos.OK
	}
	n := copy(evs, f.events[0])
	f.events = f.events[1:]
	return n, hostos.OK
}

// TestHTTPServerPipelinedRequests drives the server over the scripted
// API: a request head split across reads, then two pipelined heads in
// one segment, must produce exactly three responses on the wire, and a
// non-GET head must close the connection.
func TestHTTPServerPipelinedRequests(t *testing.T) {
	api := newFakeAPI()
	srv := NewHTTPServer(fstack.IPv4Addr{}, 80, 8, 5)
	srv.Step(api, 0) // setup: listener + epoll registration

	const cfd = 100
	api.accepts = []int{cfd}
	api.reads[cfd] = [][]byte{
		[]byte("GET / HT"),
		[]byte("TP/1.1\r\nHost: x\r\n\r\nGET / HTTP/1.1\r\n\r\nGET / HTTP/1.1\r\n\r\n"),
	}
	lfd := srv.lfd
	api.events = [][]fstack.Event{
		{{FD: lfd, Events: fstack.EPOLLIN}},
		{{FD: cfd, Events: fstack.EPOLLIN}},
	}
	srv.Step(api, 1) // accept
	srv.Step(api, 2) // read + answer
	if srv.Served() != 3 || srv.Err() != hostos.OK {
		t.Fatalf("served=%d err=%v", srv.Served(), srv.Err())
	}
	want := bytes.Repeat(srv.resp, 3)
	if !bytes.Equal(api.writes[cfd], want) {
		t.Fatalf("wire bytes:\n%q\nwant:\n%q", api.writes[cfd], want)
	}

	// A non-GET head drops the connection and counts as bad.
	api.reads[cfd] = [][]byte{[]byte("PUT / HTTP/1.1\r\n\r\n")}
	api.events = [][]fstack.Event{{{FD: cfd, Events: fstack.EPOLLIN}}}
	srv.Step(api, 3)
	if srv.Bad() != 1 || !api.closed[cfd] {
		t.Fatalf("bad=%d closed=%v", srv.Bad(), api.closed[cfd])
	}
}
