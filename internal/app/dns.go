package app

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/obs"
	"repro/internal/stats"
)

// The DNS-shaped wire format: a real 12-byte header (ID, flags,
// counts) and one fixed A-record question, answered by echoing the
// question and appending one compressed-name A record. The only field
// the state machines key on is the 16-bit ID.
const dnsHeaderLen = 12

// dnsQuestion is QNAME "cherinet.test." + QTYPE A + QCLASS IN.
var dnsQuestion = []byte("\x08cherinet\x04test\x00\x00\x01\x00\x01")

// dnsAnswerRR is the answer record: a name pointer to the question
// (0xC00C), type A, class IN, TTL 60, RDLENGTH 4, RDATA 10.0.0.2.
var dnsAnswerRR = []byte{
	0xC0, 0x0C, 0x00, 0x01, 0x00, 0x01,
	0x00, 0x00, 0x00, 0x3C, 0x00, 0x04, 10, 0, 0, 2,
}

// dnsQueryLen / dnsAnswerLen are the fixed message sizes.
var (
	dnsQueryLen  = dnsHeaderLen + len(dnsQuestion)
	dnsAnswerLen = dnsHeaderLen + len(dnsQuestion) + len(dnsAnswerRR)
)

// putDNSQuery writes a query with the given ID; buf needs dnsQueryLen
// bytes. Flags 0x0100 (RD), QDCOUNT 1.
func putDNSQuery(buf []byte, id uint16) int {
	for i := 0; i < dnsHeaderLen; i++ {
		buf[i] = 0
	}
	binary.BigEndian.PutUint16(buf[0:], id)
	binary.BigEndian.PutUint16(buf[2:], 0x0100)
	binary.BigEndian.PutUint16(buf[4:], 1) // QDCOUNT
	copy(buf[dnsHeaderLen:], dnsQuestion)
	return dnsQueryLen
}

// putDNSAnswer writes the answer to a query: same ID, flags 0x8180
// (QR|RD|RA), the question echoed, one answer record appended.
func putDNSAnswer(buf []byte, id uint16) int {
	for i := 0; i < dnsHeaderLen; i++ {
		buf[i] = 0
	}
	binary.BigEndian.PutUint16(buf[0:], id)
	binary.BigEndian.PutUint16(buf[2:], 0x8180)
	binary.BigEndian.PutUint16(buf[4:], 1) // QDCOUNT
	binary.BigEndian.PutUint16(buf[6:], 1) // ANCOUNT
	n := dnsHeaderLen
	n += copy(buf[n:], dnsQuestion)
	n += copy(buf[n:], dnsAnswerRR)
	return n
}

// dnsID extracts the message ID; false if the message is too short to
// carry a header.
func dnsID(msg []byte) (uint16, bool) {
	if len(msg) < dnsHeaderLen {
		return 0, false
	}
	return binary.BigEndian.Uint16(msg), true
}

// --- server ---

// DNSServer answers every well-formed query on its port with a fixed
// A-record response carrying the query's ID. It is epoll-driven: one
// bound datagram socket, drained to EAGAIN whenever it is readable.
type DNSServer struct {
	ListenIP fstack.IPv4Addr
	Port     uint16

	started   bool
	epfd      int
	fd        int
	buf       []byte
	out       []byte
	evs       []fstack.Event
	served    uint64
	malformed uint64
	txBusy    uint64
	failure   hostos.Errno
	wantStep  bool
}

// NewDNSServer prepares the responder.
func NewDNSServer(ip fstack.IPv4Addr, port uint16) *DNSServer {
	return &DNSServer{
		ListenIP: ip, Port: port,
		buf: make([]byte, 2048),
		out: make([]byte, 2048),
		evs: make([]fstack.Event, evBuf),
	}
}

// Served reports answered queries.
func (s *DNSServer) Served() uint64 { return s.served }

// Malformed reports datagrams too short to carry a DNS header.
func (s *DNSServer) Malformed() uint64 { return s.malformed }

// TxBusy reports answers dropped because the transmit path was full;
// the client's retry machinery recovers them.
func (s *DNSServer) TxBusy() uint64 { return s.txBusy }

// Err returns the sticky failure, if any.
func (s *DNSServer) Err() hostos.Errno { return s.failure }

// NextDeadline: the server is purely event-driven past its setup step.
func (s *DNSServer) NextDeadline(now int64) int64 {
	if s.wantStep {
		return now
	}
	return math.MaxInt64
}

func (s *DNSServer) fail(errno hostos.Errno) { s.failure = errno }

// Step advances the server; call once per loop iteration.
func (s *DNSServer) Step(api API, now int64) {
	if s.failure != hostos.OK {
		return
	}
	if !s.started {
		s.started = true
		s.wantStep = false
		s.epfd = api.EpollCreate()
		fd, errno := api.Socket(fstack.SockDgram)
		if errno != hostos.OK {
			s.fail(errno)
			return
		}
		s.fd = fd
		if errno := api.Bind(fd, s.ListenIP, s.Port); errno != hostos.OK {
			s.fail(errno)
			return
		}
		if errno := api.EpollCtl(s.epfd, fstack.EpollCtlAdd, fd, fstack.EPOLLIN); errno != hostos.OK {
			s.fail(errno)
		}
		return
	}
	n, errno := api.EpollWait(s.epfd, s.evs)
	if errno != hostos.OK {
		s.fail(errno)
		return
	}
	slices.SortFunc(s.evs[:n], func(a, b fstack.Event) int { return a.FD - b.FD })
	for _, ev := range s.evs[:n] {
		if ev.FD != s.fd || ev.Events&fstack.EPOLLIN == 0 {
			continue
		}
		for {
			n, ip, port, errno := api.RecvFrom(s.fd, s.buf)
			if errno == hostos.EAGAIN {
				break
			}
			if errno != hostos.OK {
				s.fail(errno)
				return
			}
			id, ok := dnsID(s.buf[:n])
			if !ok {
				s.malformed++
				continue
			}
			m := putDNSAnswer(s.out, id)
			if _, errno := api.SendTo(s.fd, s.out[:m], ip, port); errno != hostos.OK {
				if errno == hostos.EAGAIN {
					// TX ring full: drop the answer, the client retries.
					s.txBusy++
					continue
				}
				s.fail(errno)
				return
			}
			s.served++
		}
	}
}

// --- client ---

// dnsFlight is the live state of one query: t0 is the first-send
// instant (the latency clock start, unchanged by retries), tries the
// attempts made, attempt a generation counter matching the newest
// timeout-queue entry (older entries for the same ID are stale).
type dnsFlight struct {
	t0      int64
	tries   int
	attempt int
}

// dnsTimeout is one timeout-queue entry. The queue is a head-indexed
// FIFO: the timeout is a constant, so send order is deadline order.
type dnsTimeout struct {
	id       uint16
	attempt  int
	deadline int64
}

type dnsCliState int

const (
	dnsCliInit dnsCliState = iota
	dnsCliRunning
	dnsCliDone
)

// DNSClient drives queries at the responder. With Rate > 0 it is
// open-loop (paced at Rate per second for DurationNS); with Rate == 0
// it is closed-loop, holding Concurrency queries outstanding. A query
// unanswered for TimeoutNS is retransmitted, up to MaxTries total
// attempts, then abandoned; Timeouts counts every expiration and
// Failed the abandonments. Latency is recorded first-send to answer.
type DNSClient struct {
	ServerIP    fstack.IPv4Addr
	Port        uint16
	Sport       uint16 // local port; 0 lets the stack pick
	Rate        float64
	Concurrency int
	DurationNS  int64
	TimeoutNS   int64
	MaxTries    int
	Hist        stats.Histogram
	Trace       *obs.Trace // optional per-request trace events
	Src         uint16     // trace source id (worker index)

	state     dnsCliState
	fd        int
	buf       []byte
	qbuf      []byte
	flights   map[uint16]*dnsFlight
	queue     []dnsTimeout
	qHead     int
	nextID    uint16
	startNS   int64
	endNS     int64
	issued    uint64
	completed uint64
	timeouts  uint64
	failed    uint64
	deferred  uint64
	failure   hostos.Errno
	wantStep  bool
}

// NewDNSClient prepares the query driver.
func NewDNSClient(ip fstack.IPv4Addr, port, sport uint16, rate float64, concurrency int, durationNS, timeoutNS int64, maxTries int) (*DNSClient, error) {
	if rate <= 0 && concurrency < 1 {
		return nil, fmt.Errorf("app: closed-loop dns client needs a concurrency")
	}
	if timeoutNS <= 0 || maxTries < 1 {
		return nil, fmt.Errorf("app: dns client needs a positive timeout and try budget")
	}
	return &DNSClient{
		ServerIP: ip, Port: port, Sport: sport,
		Rate: rate, Concurrency: concurrency,
		DurationNS: durationNS, TimeoutNS: timeoutNS, MaxTries: maxTries,
		buf:     make([]byte, 2048),
		qbuf:    make([]byte, 2048),
		flights: make(map[uint16]*dnsFlight),
		nextID:  1,
	}, nil
}

// Done reports that the run is complete: duration elapsed and every
// outstanding query answered or abandoned.
func (c *DNSClient) Done() bool { return c.state == dnsCliDone }

// Issued / Completed report queries sent (retries not counted) and
// answered.
func (c *DNSClient) Issued() uint64    { return c.issued }
func (c *DNSClient) Completed() uint64 { return c.completed }

// Timeouts counts timeout expirations (each triggering a retry or an
// abandonment); Failed counts queries abandoned after MaxTries.
func (c *DNSClient) Timeouts() uint64 { return c.timeouts }
func (c *DNSClient) Failed() uint64   { return c.failed }

// Deferred reports pace slots skipped at the outstanding cap.
func (c *DNSClient) Deferred() uint64 { return c.deferred }

// RunNS returns the measured phase's virtual length (valid once Done).
func (c *DNSClient) RunNS() int64 { return c.endNS - c.startNS }

// Err returns the sticky failure, if any.
func (c *DNSClient) Err() hostos.Errno { return c.failure }

// NextDeadline: the earliest of the next pace slot, the oldest
// outstanding query's timeout, and the duration edge.
func (c *DNSClient) NextDeadline(now int64) int64 {
	if c.wantStep {
		return now
	}
	if c.state != dnsCliRunning {
		return math.MaxInt64
	}
	d := int64(math.MaxInt64)
	if c.qHead < len(c.queue) {
		d = c.queue[c.qHead].deadline
	}
	end := c.startNS + c.DurationNS
	if now < end {
		if end < d {
			d = end
		}
		if c.Rate > 0 && len(c.flights) < maxOutstanding {
			at := c.startNS + int64(float64(c.issued+1)/c.Rate*1e9)
			if at < d {
				d = at
			}
		}
	}
	return d
}

func (c *DNSClient) fail(errno hostos.Errno) {
	c.failure = errno
	c.state = dnsCliDone
}

// Step advances the client; call once per loop iteration.
func (c *DNSClient) Step(api API, now int64) {
	switch c.state {
	case dnsCliInit:
		fd, errno := api.Socket(fstack.SockDgram)
		if errno != hostos.OK {
			c.fail(errno)
			return
		}
		c.fd = fd
		if c.Sport != 0 {
			if errno := api.Bind(fd, fstack.IPv4Addr{}, c.Sport); errno != hostos.OK {
				c.fail(errno)
				return
			}
		}
		c.startNS = now
		c.state = dnsCliRunning
		c.wantStep = true

	case dnsCliRunning:
		c.wantStep = false
		if !c.drainAnswers(api, now) {
			return
		}
		if !c.expire(api, now) {
			return
		}
		elapsed := now - c.startNS
		if elapsed < c.DurationNS {
			if c.Rate > 0 {
				target := uint64(float64(elapsed) * c.Rate / 1e9)
				for c.issued < target {
					if len(c.flights) >= maxOutstanding {
						c.deferred += target - c.issued
						break
					}
					if !c.query(api, now) {
						return
					}
				}
			} else {
				for len(c.flights) < c.Concurrency {
					if !c.query(api, now) {
						return
					}
				}
			}
		} else if len(c.flights) == 0 {
			c.endNS = now
			api.Close(c.fd)
			c.state = dnsCliDone
		}
	}
}

// query issues a fresh query: the latency clock starts here.
func (c *DNSClient) query(api API, now int64) bool {
	id := c.allocID()
	c.flights[id] = &dnsFlight{t0: now, tries: 1}
	c.queue = append(c.queue, dnsTimeout{id: id, deadline: now + c.TimeoutNS})
	c.issued++
	return c.send(api, id)
}

// allocID picks the next 16-bit ID not currently in flight.
func (c *DNSClient) allocID() uint16 {
	for {
		id := c.nextID
		c.nextID++
		if c.nextID == 0 {
			c.nextID = 1
		}
		if _, busy := c.flights[id]; !busy {
			return id
		}
	}
}

// send transmits the query datagram for an ID. A full TX path is not
// fatal: the timeout machinery re-offers the query.
func (c *DNSClient) send(api API, id uint16) bool {
	m := putDNSQuery(c.qbuf, id)
	if _, errno := api.SendTo(c.fd, c.qbuf[:m], c.ServerIP, c.Port); errno != hostos.OK && errno != hostos.EAGAIN {
		c.fail(errno)
		return false
	}
	return true
}

// popTimeout removes the oldest queue entry; ok is false when empty or
// the head is still in the future.
func (c *DNSClient) popTimeout(now int64) (dnsTimeout, bool) {
	if c.qHead >= len(c.queue) || c.queue[c.qHead].deadline > now {
		return dnsTimeout{}, false
	}
	e := c.queue[c.qHead]
	c.qHead++
	if c.qHead == len(c.queue) {
		c.queue, c.qHead = c.queue[:0], 0
	}
	return e, true
}

// expire handles due timeouts: stale entries (answered, or superseded
// by a retry) are discarded, live ones retry or abandon.
func (c *DNSClient) expire(api API, now int64) bool {
	for {
		e, ok := c.popTimeout(now)
		if !ok {
			return true
		}
		fl, live := c.flights[e.id]
		if !live || fl.attempt != e.attempt {
			continue
		}
		c.timeouts++
		if fl.tries < c.MaxTries {
			fl.tries++
			fl.attempt++
			c.queue = append(c.queue, dnsTimeout{id: e.id, attempt: fl.attempt, deadline: now + c.TimeoutNS})
			if !c.send(api, e.id) {
				return false
			}
			continue
		}
		delete(c.flights, e.id)
		c.failed++
		if c.Trace != nil {
			c.Trace.Record(now, obs.EvAppRequest, c.Src, now-fl.t0, 0, obs.ReqTimeout)
		}
	}
}

// drainAnswers consumes arrived answers; false means the run failed.
func (c *DNSClient) drainAnswers(api API, now int64) bool {
	for {
		n, _, _, errno := api.RecvFrom(c.fd, c.buf)
		if errno == hostos.EAGAIN {
			return true
		}
		if errno == hostos.EINVAL && c.Sport == 0 && c.issued == 0 {
			return true // not yet auto-bound: nothing can have arrived
		}
		if errno != hostos.OK {
			c.fail(errno)
			return false
		}
		id, ok := dnsID(c.buf[:n])
		if !ok {
			continue
		}
		fl, live := c.flights[id]
		if !live {
			continue // duplicate answer after a retry resolved it
		}
		delete(c.flights, id)
		c.completed++
		c.Hist.Record(now - fl.t0)
		if c.Trace != nil {
			c.Trace.Record(now, obs.EvAppRequest, c.Src, now-fl.t0, int64(n), obs.ReqDNS)
		}
	}
}
