// Package app is the request/response application plane: workloads
// that generate and measure many small exchanges over the fstack
// socket API, where per-request tail latency — not goodput — is the
// figure of merit. It is the laitos-style multi-protocol daemon shape
// (httpd/dnsd) cut down to what the testbed measures, and the workload
// behind Scenario 9.
//
// Two protocol pairs, both non-blocking Step state machines in the
// iperf/churn mold (they run against a plain stack, the gated API, or
// the sharded API, under the event-driven virtual clock):
//
//   - HTTPServer/HTTPClient: an HTTP/1.1-style keep-alive exchange.
//     The server parses pipelined GETs incrementally over Read and
//     answers each with a fixed-size response, buffering what Write
//     does not accept and re-arming EPOLLOUT until it drains. The
//     client holds a set of persistent connections and issues requests
//     either open-loop (rate-paced, round-robin over the connections,
//     pipelining onto busy ones — queueing delay shows up in the tail)
//     or closed-loop (each connection issues back-to-back, one
//     outstanding request per connection).
//
//   - DNSServer/DNSClient: a DNS-shaped UDP query/answer exchange over
//     SendTo/RecvFrom. Queries carry a 16-bit ID the answer echoes;
//     the client paces queries (open-loop) or holds a fixed number
//     outstanding (closed-loop), retransmits on timeout up to a retry
//     budget, and counts expirations and abandoned queries.
//
// The latency clock starts the instant a request is issued (the pace
// slot's Step, before any Write — so send-side queueing is part of the
// measurement) and stops when the last byte of its response is read
// (the answer datagram, for DNS). Latencies are recorded into a
// stats.Histogram per client, mergeable across workers/shards, and
// optionally traced per request (obs.EvAppRequest).
package app
