package app

import (
	"bytes"
	"fmt"
	"math"
	"slices"
	"strconv"

	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/obs"
	"repro/internal/stats"
)

// The exchange on the wire. The request is a fixed pipelineable GET;
// the response is a minimal 200 with an exact Content-Length, which is
// all the client's incremental parser keys on.
var (
	httpRequest = []byte("GET / HTTP/1.1\r\nHost: cherinet\r\n\r\n")
	crlfcrlf    = []byte("\r\n\r\n")
	clPrefix    = []byte("Content-Length: ")
)

// --- server ---

// httpSrvConn is one accepted keep-alive connection's parse/flush
// state. rx holds a partial request head; tx is the head-indexed queue
// of response bytes Write has not yet accepted.
type httpSrvConn struct {
	rx      []byte
	tx      []byte
	txHead  int
	wantOut bool
}

// HTTPServer accepts keep-alive connections and answers every GET with
// a fixed-size response. Requests are parsed incrementally — a head
// split across segments is buffered, and several pipelined heads in
// one segment are each answered, in order.
type HTTPServer struct {
	ListenIP  fstack.IPv4Addr
	Port      uint16
	Backlog   int
	RespBytes int // response body size

	started  bool
	epfd     int
	lfd      int
	conns    map[int]*httpSrvConn
	resp     []byte // precomputed header + body
	buf      []byte
	evs      []fstack.Event
	served   uint64
	bad      uint64
	failure  hostos.Errno
	wantStep bool
}

// NewHTTPServer prepares the accept side.
func NewHTTPServer(ip fstack.IPv4Addr, port uint16, backlog, respBytes int) *HTTPServer {
	head := fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n", respBytes)
	resp := make([]byte, 0, len(head)+respBytes)
	resp = append(resp, head...)
	for i := 0; i < respBytes; i++ {
		resp = append(resp, byte('a'+i%26))
	}
	return &HTTPServer{
		ListenIP: ip, Port: port, Backlog: backlog, RespBytes: respBytes,
		conns: make(map[int]*httpSrvConn),
		resp:  resp,
		buf:   make([]byte, 16<<10),
		evs:   make([]fstack.Event, evBuf),
	}
}

// Restart resets the server after its stack crashed: close the stale
// descriptors (which is what hands the crashed connections' memory back
// to the arena) and re-run the listen/bind setup on the next Step. The
// supervisor's restart hook calls this — it is the compartment's main()
// starting over.
func (s *HTTPServer) Restart(api API) {
	fds := make([]int, 0, len(s.conns))
	for fd := range s.conns {
		fds = append(fds, fd)
	}
	slices.Sort(fds)
	for _, fd := range fds {
		api.Close(fd)
		delete(s.conns, fd)
	}
	if s.started {
		api.Close(s.lfd)
	}
	s.started = false
	s.failure = hostos.OK
	s.wantStep = true
}

// Served reports completed request/response exchanges (response fully
// handed to the stack).
func (s *HTTPServer) Served() uint64 { return s.served }

// Bad reports malformed request heads (the connection is closed).
func (s *HTTPServer) Bad() uint64 { return s.bad }

// Err returns the sticky failure, if any.
func (s *HTTPServer) Err() hostos.Errno { return s.failure }

// NextDeadline: the server is purely event-driven past its setup step.
func (s *HTTPServer) NextDeadline(now int64) int64 {
	if s.wantStep {
		return now
	}
	return math.MaxInt64
}

func (s *HTTPServer) fail(errno hostos.Errno) { s.failure = errno }

// Step advances the server; call once per loop iteration.
func (s *HTTPServer) Step(api API, now int64) {
	if s.failure != hostos.OK {
		return
	}
	if !s.started {
		s.started = true
		s.wantStep = false
		if s.epfd == 0 {
			// The epoll descriptor survives a stack crash (only its
			// interest set is dropped), so a restarted server reuses it.
			s.epfd = api.EpollCreate()
		}
		fd, errno := api.Socket(fstack.SockStream)
		if errno != hostos.OK {
			s.fail(errno)
			return
		}
		s.lfd = fd
		if errno := api.Bind(fd, s.ListenIP, s.Port); errno != hostos.OK {
			s.fail(errno)
			return
		}
		if errno := api.Listen(fd, s.Backlog); errno != hostos.OK {
			s.fail(errno)
			return
		}
		if errno := api.EpollCtl(s.epfd, fstack.EpollCtlAdd, fd, fstack.EPOLLIN); errno != hostos.OK {
			s.fail(errno)
		}
		return
	}
	n, errno := api.EpollWait(s.epfd, s.evs)
	if errno != hostos.OK {
		s.fail(errno)
		return
	}
	// EpollWait ranges a map: sort so equal runs process equal orders.
	slices.SortFunc(s.evs[:n], func(a, b fstack.Event) int { return a.FD - b.FD })
	for _, ev := range s.evs[:n] {
		if ev.FD == s.lfd {
			s.acceptAll(api)
			continue
		}
		c, ok := s.conns[ev.FD]
		if !ok {
			continue
		}
		if ev.Events&(fstack.EPOLLERR|fstack.EPOLLHUP) != 0 {
			s.drop(api, ev.FD)
			continue
		}
		if ev.Events&fstack.EPOLLOUT != 0 && c.wantOut {
			if !s.flush(api, ev.FD, c) {
				continue
			}
		}
		if ev.Events&fstack.EPOLLIN != 0 {
			s.read(api, ev.FD, c)
		}
	}
}

func (s *HTTPServer) acceptAll(api API) {
	for {
		cfd, _, _, errno := api.Accept(s.lfd)
		if errno == hostos.EAGAIN {
			return
		}
		if errno != hostos.OK {
			s.fail(errno)
			return
		}
		if errno := api.EpollCtl(s.epfd, fstack.EpollCtlAdd, cfd, fstack.EPOLLIN); errno != hostos.OK {
			s.fail(errno)
			return
		}
		s.conns[cfd] = &httpSrvConn{}
	}
}

// drop closes a connection and forgets its state.
func (s *HTTPServer) drop(api API, fd int) {
	api.Close(fd)
	delete(s.conns, fd)
}

// read consumes arrived bytes, answering every complete request head.
func (s *HTTPServer) read(api API, fd int, c *httpSrvConn) {
	for {
		n, errno := api.Read(fd, s.buf)
		if errno == hostos.EAGAIN {
			return
		}
		if errno != hostos.OK {
			s.drop(api, fd)
			return
		}
		if n == 0 { // EOF: client is done with this connection
			s.drop(api, fd)
			return
		}
		c.rx = append(c.rx, s.buf[:n]...)
		for {
			i := bytes.Index(c.rx, crlfcrlf)
			if i < 0 {
				break
			}
			head := c.rx[:i+len(crlfcrlf)]
			if !bytes.HasPrefix(head, []byte("GET ")) {
				s.bad++
				s.drop(api, fd)
				return
			}
			c.rx = c.rx[:copy(c.rx, c.rx[i+len(crlfcrlf):])]
			c.tx = append(c.tx, s.resp...)
			s.served++
		}
		if len(c.tx) > c.txHead {
			if !s.flush(api, fd, c) {
				return
			}
		}
	}
}

// flush pushes pending response bytes; on EAGAIN it arms EPOLLOUT and
// resumes from the writability event. Returns false if the connection
// was dropped.
func (s *HTTPServer) flush(api API, fd int, c *httpSrvConn) bool {
	for c.txHead < len(c.tx) {
		n, errno := api.Write(fd, c.tx[c.txHead:])
		if errno == hostos.EAGAIN {
			break
		}
		if errno != hostos.OK {
			s.drop(api, fd)
			return false
		}
		c.txHead += n
	}
	if c.txHead == len(c.tx) {
		c.tx, c.txHead = c.tx[:0], 0
		if c.wantOut {
			c.wantOut = false
			if errno := api.EpollCtl(s.epfd, fstack.EpollCtlMod, fd, fstack.EPOLLIN); errno != hostos.OK {
				s.fail(errno)
				return false
			}
		}
		return true
	}
	if !c.wantOut {
		c.wantOut = true
		if errno := api.EpollCtl(s.epfd, fstack.EpollCtlMod, fd, fstack.EPOLLIN|fstack.EPOLLOUT); errno != hostos.OK {
			s.fail(errno)
			return false
		}
	}
	return true
}

// --- client ---

// httpCliConn is one persistent connection's request pipeline: t0 is
// the head-indexed FIFO of outstanding requests' issue instants, hdr
// accumulates a partial response head, need counts the body bytes
// still expected (-1 while parsing the head), tx buffers request bytes
// the stack has not accepted.
type httpCliConn struct {
	fd      int
	up      bool
	t0      []int64
	t0Head  int
	hdr     []byte
	need    int
	bodyLen int // current response's Content-Length (trace argument)
	tx      []byte
	txHead  int
	wantOut bool
}

func (c *httpCliConn) outstanding() int { return len(c.t0) - c.t0Head }

type httpCliState int

const (
	httpCliInit httpCliState = iota
	httpCliConnecting
	httpCliRunning
	httpCliDone
)

// HTTPClient drives Conns keep-alive connections at the server. With
// Rate > 0 it is open-loop: requests are paced at Rate per second for
// DurationNS and assigned round-robin, pipelining onto connections
// that are still waiting. With Rate == 0 it is closed-loop: every
// connection issues back-to-back with one request outstanding, so
// Conns is the concurrency. Per-request latency (issue to last
// response byte) is recorded into Hist.
type HTTPClient struct {
	ServerIP   fstack.IPv4Addr
	Port       uint16
	Conns      int
	Sports     []uint16 // optional managed source ports, len == Conns
	Rate       float64  // requests/s; 0 = closed-loop
	DurationNS int64
	Hist       stats.Histogram
	Trace      *obs.Trace // optional per-request trace events
	Src        uint16     // trace source id (worker index)
	// Resilient survives server death: a reset connection counts its
	// outstanding requests as lost and reconnects instead of failing
	// the run. The reconnect needs no backoff — the reset itself only
	// arrives once the restarted stack answers a retransmit, so the
	// server is already back up when the client learns of the crash.
	Resilient bool
	// OnComplete, when set, observes every completed request: when it
	// finished and when it was issued (the time-to-recovery probe: the
	// first completion of a request issued after a fault bounds the
	// outage — completions alone do not, since responses already in
	// flight at the crash still land moments later).
	OnComplete func(now, issued int64)
	// TimeoutNS, with Resilient, bounds how long a request may stay
	// outstanding before the connection is presumed dead and replaced.
	// A crashed stack is silent — if the request was fully ACKed before
	// the crash, nothing is in flight to retransmit and no reset ever
	// arrives, so liveness needs an application clock. 0 disables it.
	TimeoutNS int64

	state     httpCliState
	epfd      int
	conns     []*httpCliConn
	byFD      map[int]int
	evs       []fstack.Event
	buf       []byte
	startNS   int64
	endNS     int64
	issued    uint64
	completed uint64
	deferred  uint64
	lost      uint64
	resets    uint64
	inflight  int
	rr        int
	failure   hostos.Errno
	wantStep  bool
}

// NewHTTPClient prepares the request driver.
func NewHTTPClient(ip fstack.IPv4Addr, port uint16, conns int, sports []uint16, rate float64, durationNS int64) (*HTTPClient, error) {
	if conns < 1 {
		return nil, fmt.Errorf("app: http client needs at least one connection")
	}
	if sports != nil && len(sports) != conns {
		return nil, fmt.Errorf("app: %d source ports for %d connections", len(sports), conns)
	}
	return &HTTPClient{
		ServerIP: ip, Port: port, Conns: conns, Sports: sports,
		Rate: rate, DurationNS: durationNS,
		byFD: make(map[int]int),
		evs:  make([]fstack.Event, evBuf),
		buf:  make([]byte, 16<<10),
	}, nil
}

// Done reports that the run is complete: duration elapsed and every
// outstanding response drained.
func (c *HTTPClient) Done() bool { return c.state == httpCliDone }

// Issued / Completed / Deferred report requests sent, responses fully
// received, and pace slots skipped because maxOutstanding was reached.
func (c *HTTPClient) Issued() uint64    { return c.issued }
func (c *HTTPClient) Completed() uint64 { return c.completed }
func (c *HTTPClient) Deferred() uint64  { return c.deferred }

// Lost / Resets report requests abandoned on reset connections and
// connection re-establishments (Resilient mode).
func (c *HTTPClient) Lost() uint64   { return c.lost }
func (c *HTTPClient) Resets() uint64 { return c.resets }

// RunNS returns the measured phase's virtual length (valid once Done).
func (c *HTTPClient) RunNS() int64 { return c.endNS - c.startNS }

// Err returns the sticky failure, if any.
func (c *HTTPClient) Err() hostos.Errno { return c.failure }

// NextDeadline: open-loop pacing self-clocks; the duration edge gets
// its own instant so closed-loop runs end crisply; drains are
// event-driven.
func (c *HTTPClient) NextDeadline(now int64) int64 {
	if c.wantStep {
		return now
	}
	if c.state != httpCliRunning {
		return math.MaxInt64
	}
	d := c.expiry()
	end := c.startNS + c.DurationNS
	if now >= end {
		return d // draining: completions are event-driven, timeouts are not
	}
	if c.Rate <= 0 || c.inflight >= maxOutstanding {
		return min(d, end)
	}
	at := c.startNS + int64(float64(c.issued+1)/c.Rate*1e9)
	if at > end {
		at = end
	}
	return min(d, at)
}

// expiry is the earliest instant an outstanding request times out
// (MaxInt64 with no request timeout configured or nothing outstanding).
func (c *HTTPClient) expiry() int64 {
	if !c.Resilient || c.TimeoutNS <= 0 {
		return math.MaxInt64
	}
	d := int64(math.MaxInt64)
	for _, cc := range c.conns {
		if cc.up && cc.outstanding() > 0 {
			if at := cc.t0[cc.t0Head] + c.TimeoutNS; at < d {
				d = at
			}
		}
	}
	return d
}

func (c *HTTPClient) fail(errno hostos.Errno) {
	c.failure = errno
	c.state = httpCliDone
}

// Step advances the client; call once per loop iteration.
func (c *HTTPClient) Step(api API, now int64) {
	switch c.state {
	case httpCliInit:
		c.epfd = api.EpollCreate()
		for i := 0; i < c.Conns; i++ {
			fd, errno := api.Socket(fstack.SockStream)
			if errno != hostos.OK {
				c.fail(errno)
				return
			}
			if c.Sports != nil && c.Sports[i] != 0 {
				if errno := api.Bind(fd, fstack.IPv4Addr{}, c.Sports[i]); errno != hostos.OK {
					c.fail(errno)
					return
				}
			}
			if errno := api.EpollCtl(c.epfd, fstack.EpollCtlAdd, fd, fstack.EPOLLOUT); errno != hostos.OK {
				c.fail(errno)
				return
			}
			if errno := api.Connect(fd, c.ServerIP, c.Port); errno != hostos.EINPROGRESS && errno != hostos.OK {
				c.fail(errno)
				return
			}
			cc := &httpCliConn{fd: fd, need: -1}
			c.conns = append(c.conns, cc)
			c.byFD[fd] = i
		}
		c.state = httpCliConnecting

	case httpCliConnecting:
		if !c.drain(api, now) {
			return
		}
		for _, cc := range c.conns {
			if !cc.up {
				return
			}
		}
		c.startNS = now
		c.state = httpCliRunning
		c.wantStep = true

	case httpCliRunning:
		c.wantStep = false
		if !c.drain(api, now) {
			return
		}
		if c.Resilient && c.TimeoutNS > 0 {
			// Replace connections whose oldest request has sat
			// unanswered past the timeout (a silently dead server).
			for i, cc := range c.conns {
				if cc.up && cc.outstanding() > 0 && now-cc.t0[cc.t0Head] >= c.TimeoutNS {
					if !c.reconnect(api, i) {
						return
					}
				}
			}
		}
		elapsed := now - c.startNS
		if elapsed < c.DurationNS {
			if c.Rate > 0 {
				// Open-loop: issue every due pace slot round-robin.
				target := uint64(float64(elapsed) * c.Rate / 1e9)
				for c.issued < target {
					if c.inflight >= maxOutstanding {
						c.deferred += target - c.issued
						break
					}
					cc := c.pickUp()
					if cc == nil {
						// Every connection is re-establishing; the due
						// slots are honest backpressure.
						c.deferred += target - c.issued
						break
					}
					if !c.issue(api, cc, now) {
						return
					}
				}
			} else {
				// Closed-loop: every idle connection issues immediately.
				for _, cc := range c.conns {
					if cc.up && cc.outstanding() == 0 {
						if !c.issue(api, cc, now) {
							return
						}
					}
				}
			}
		} else if c.inflight == 0 {
			c.endNS = now
			for _, cc := range c.conns {
				api.Close(cc.fd)
			}
			c.state = httpCliDone
		}
	}
}

// reconnect replaces connection i after its server reset it: the
// outstanding requests are counted lost, the stale fd is closed, and a
// fresh connect starts through the same epoll. Any managed source port
// is reused — safe, because the reset already aborted the old
// connection and released its binding.
func (c *HTTPClient) reconnect(api API, i int) bool {
	cc := c.conns[i]
	n := cc.outstanding()
	c.lost += uint64(n)
	c.inflight -= n
	c.resets++
	api.Close(cc.fd)
	delete(c.byFD, cc.fd)
	fd, errno := api.Socket(fstack.SockStream)
	if errno != hostos.OK {
		c.fail(errno)
		return false
	}
	if c.Sports != nil && c.Sports[i] != 0 {
		if errno := api.Bind(fd, fstack.IPv4Addr{}, c.Sports[i]); errno != hostos.OK {
			c.fail(errno)
			return false
		}
	}
	if errno := api.EpollCtl(c.epfd, fstack.EpollCtlAdd, fd, fstack.EPOLLOUT); errno != hostos.OK {
		c.fail(errno)
		return false
	}
	if errno := api.Connect(fd, c.ServerIP, c.Port); errno != hostos.EINPROGRESS && errno != hostos.OK {
		c.fail(errno)
		return false
	}
	*cc = httpCliConn{fd: fd, need: -1, t0: cc.t0[:0], hdr: cc.hdr[:0], tx: cc.tx[:0]}
	c.byFD[fd] = i
	return true
}

// issue starts one request on a connection: the latency clock starts
// here, before any Write, so send-side queueing is measured.
func (c *HTTPClient) issue(api API, cc *httpCliConn, now int64) bool {
	cc.t0 = append(cc.t0, now)
	c.issued++
	c.inflight++
	cc.tx = append(cc.tx, httpRequest...)
	return c.flush(api, cc)
}

// pickUp returns the next round-robin connection that is established,
// or nil when every connection is down (mid-reconnect). With all
// connections up it degenerates to the plain round-robin.
func (c *HTTPClient) pickUp() *httpCliConn {
	for range c.conns {
		cc := c.conns[c.rr%len(c.conns)]
		c.rr++
		if cc.up {
			return cc
		}
	}
	return nil
}

// flush pushes buffered request bytes, arming EPOLLOUT on EAGAIN.
func (c *HTTPClient) flush(api API, cc *httpCliConn) bool {
	for cc.txHead < len(cc.tx) {
		n, errno := api.Write(cc.fd, cc.tx[cc.txHead:])
		if errno == hostos.EAGAIN {
			break
		}
		if errno != hostos.OK {
			if c.Resilient {
				return c.reconnect(api, c.byFD[cc.fd])
			}
			c.fail(errno)
			return false
		}
		cc.txHead += n
	}
	want := fstack.EPOLLIN
	if cc.txHead == len(cc.tx) {
		cc.tx, cc.txHead = cc.tx[:0], 0
	} else {
		want |= fstack.EPOLLOUT
	}
	if (want&fstack.EPOLLOUT != 0) != cc.wantOut {
		cc.wantOut = want&fstack.EPOLLOUT != 0
		if errno := api.EpollCtl(c.epfd, fstack.EpollCtlMod, cc.fd, want); errno != hostos.OK {
			c.fail(errno)
			return false
		}
	}
	return true
}

// drain processes stack events; false means the run failed.
func (c *HTTPClient) drain(api API, now int64) bool {
	n, errno := api.EpollWait(c.epfd, c.evs)
	if errno != hostos.OK {
		c.fail(errno)
		return false
	}
	slices.SortFunc(c.evs[:n], func(a, b fstack.Event) int { return a.FD - b.FD })
	for _, ev := range c.evs[:n] {
		i, ok := c.byFD[ev.FD]
		if !ok {
			continue
		}
		cc := c.conns[i]
		if ev.Events&(fstack.EPOLLERR|fstack.EPOLLHUP) != 0 {
			if c.Resilient {
				if !c.reconnect(api, i) {
					return false
				}
				continue
			}
			c.fail(hostos.ECONNRESET)
			return false
		}
		if !cc.up {
			if ev.Events&fstack.EPOLLOUT != 0 {
				cc.up = true
				if errno := api.EpollCtl(c.epfd, fstack.EpollCtlMod, cc.fd, fstack.EPOLLIN); errno != hostos.OK {
					c.fail(errno)
					return false
				}
			}
			continue
		}
		if ev.Events&fstack.EPOLLOUT != 0 && cc.wantOut {
			if !c.flush(api, cc) {
				return false
			}
		}
		if ev.Events&fstack.EPOLLIN != 0 {
			if !c.read(api, cc, now) {
				return false
			}
		}
	}
	return true
}

// read consumes response bytes, completing requests in FIFO order.
func (c *HTTPClient) read(api API, cc *httpCliConn, now int64) bool {
	for {
		n, errno := api.Read(cc.fd, c.buf)
		if errno == hostos.EAGAIN {
			return true
		}
		if errno != hostos.OK || n == 0 {
			if c.Resilient {
				return c.reconnect(api, c.byFD[cc.fd])
			}
			c.fail(hostos.ECONNRESET)
			return false
		}
		if !c.feed(cc, c.buf[:n], now) {
			return false
		}
	}
}

// feed advances the incremental response parser over arrived bytes.
func (c *HTTPClient) feed(cc *httpCliConn, b []byte, now int64) bool {
	for len(b) > 0 {
		if cc.need < 0 {
			cc.hdr = append(cc.hdr, b...)
			b = b[:0]
			i := bytes.Index(cc.hdr, crlfcrlf)
			if i < 0 {
				continue
			}
			cl := bytes.Index(cc.hdr[:i], clPrefix)
			if cl < 0 {
				c.fail(hostos.EINVAL)
				return false
			}
			rest := cc.hdr[cl+len(clPrefix):]
			e := bytes.IndexByte(rest, '\r')
			if e < 0 {
				c.fail(hostos.EINVAL)
				return false
			}
			v, err := strconv.Atoi(string(rest[:e]))
			if err != nil {
				c.fail(hostos.EINVAL)
				return false
			}
			cc.need, cc.bodyLen = v, v
			// Bytes past the head are body bytes: re-feed them.
			b = append(b[:0], cc.hdr[i+len(crlfcrlf):]...)
			cc.hdr = cc.hdr[:0]
			if cc.need == 0 {
				c.complete(cc, now)
			}
			continue
		}
		take := len(b)
		if take > cc.need {
			take = cc.need
		}
		cc.need -= take
		b = b[take:]
		if cc.need == 0 {
			c.complete(cc, now)
		}
	}
	return true
}

// complete closes out the oldest outstanding request on the
// connection: the latency clock stops at the last response byte.
func (c *HTTPClient) complete(cc *httpCliConn, now int64) {
	t0 := cc.t0[cc.t0Head]
	cc.t0Head++
	if cc.t0Head == len(cc.t0) {
		cc.t0, cc.t0Head = cc.t0[:0], 0
	}
	cc.need = -1
	c.inflight--
	c.completed++
	c.Hist.Record(now - t0)
	if c.Trace != nil {
		c.Trace.Record(now, obs.EvAppRequest, c.Src, now-t0, int64(cc.bodyLen), obs.ReqHTTP)
	}
	if c.OnComplete != nil {
		c.OnComplete(now, t0)
	}
}
