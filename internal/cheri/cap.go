package cheri

import "fmt"

// OType is a capability object type. Unsealed capabilities carry
// OTypeUnsealed; sealing assigns an otype in [OTypeFirst, OTypeLast].
type OType uint32

const (
	// OTypeUnsealed marks an unsealed capability.
	OTypeUnsealed OType = 0xFFFFFFFF
	// OTypeFirst is the smallest otype available for sealing.
	OTypeFirst OType = 1
	// OTypeLast is the largest otype available for sealing.
	OTypeLast OType = 0x00FFFFFF
)

// CapSize is the in-memory size of a capability in bytes (128-bit
// capability plus out-of-band tag). It is also the tag granule size.
const CapSize = 16

// Cap is a CHERI capability: a bounded, permission-carrying, optionally
// sealed reference to a range of tagged memory.
//
// The zero Cap is the null capability: untagged, zero bounds, no
// permissions. Any attempted use faults with FaultTag.
type Cap struct {
	base   uint64
	length uint64
	addr   uint64 // cursor; may sit outside bounds, checked at use
	perms  Perm
	otype  OType
	tag    bool
}

// NullCap is the canonical invalid capability.
var NullCap = Cap{otype: OTypeUnsealed}

// NewRoot constructs a root capability over [base, base+length) with the
// given permissions. Roots are minted only by the architecture (memory
// construction) and by the Intravisor at boot; compartment code derives
// everything else from them.
func NewRoot(base, length uint64, perms Perm) Cap {
	return Cap{
		base:   base,
		length: length,
		addr:   base,
		perms:  perms,
		otype:  OTypeUnsealed,
		tag:    true,
	}
}

// Tag reports whether the capability is valid.
func (c Cap) Tag() bool { return c.tag }

// Base returns the lower bound.
func (c Cap) Base() uint64 { return c.base }

// Len returns the length of the addressable range.
func (c Cap) Len() uint64 { return c.length }

// Top returns the exclusive upper bound.
func (c Cap) Top() uint64 { return c.base + c.length }

// Addr returns the cursor.
func (c Cap) Addr() uint64 { return c.addr }

// Offset returns the cursor relative to base.
func (c Cap) Offset() uint64 { return c.addr - c.base }

// Perms returns the permission set.
func (c Cap) Perms() Perm { return c.perms }

// OType returns the object type; OTypeUnsealed when unsealed.
func (c Cap) OType() OType { return c.otype }

// Sealed reports whether the capability is sealed.
func (c Cap) Sealed() bool { return c.otype != OTypeUnsealed }

// InBounds reports whether an access of size n at addr lies fully inside
// the capability's bounds. n must be > 0.
func (c Cap) InBounds(addr uint64, n int) bool {
	if n <= 0 {
		return false
	}
	end := addr + uint64(n)
	return addr >= c.base && end >= addr && end <= c.Top()
}

// String renders the capability in CheriBSD's %#p-like format.
func (c Cap) String() string {
	t := ""
	if !c.tag {
		t = " (invalid)"
	}
	s := ""
	if c.Sealed() {
		s = fmt.Sprintf(" sealed(otype=%d)", c.otype)
	}
	return fmt.Sprintf("cap[%#x-%#x) addr=%#x perms=%v%s%s",
		c.base, c.Top(), c.addr, c.perms, s, t)
}

// --- derivation (all monotonic) ---

// checkDerivable returns a fault if c cannot be used as a derivation
// source at all.
func (c Cap) checkDerivable(op string) *Fault {
	if !c.tag {
		return newFault(FaultTag, op, c, c.addr, 0)
	}
	if c.Sealed() {
		return newFault(FaultSeal, op, c, c.addr, 0)
	}
	return nil
}

// SetAddr returns a copy of c with the cursor moved to addr. Following
// the architecture, moving the cursor never faults: bounds are enforced
// when the capability is used, not when it is pointed.
func (c Cap) SetAddr(addr uint64) Cap {
	c.addr = addr
	return c
}

// IncAddr advances the cursor by delta (which may be interpreted as
// signed two's-complement, as in pointer arithmetic).
func (c Cap) IncAddr(delta uint64) Cap {
	c.addr += delta
	return c
}

// SetBounds derives a capability whose bounds are [c.Addr(),
// c.Addr()+length). The new range must lie within the parent's bounds;
// otherwise the derivation faults with FaultMonotonicity (length
// increase) or FaultBounds (cursor outside the parent).
func (c Cap) SetBounds(length uint64) (Cap, error) {
	if f := c.checkDerivable("setbounds"); f != nil {
		return NullCap, f
	}
	newBase := c.addr
	newTop := newBase + length
	if newTop < newBase { // wrap-around
		return NullCap, newFault(FaultMonotonicity, "setbounds", c, newBase, int(length))
	}
	if newBase < c.base || newTop > c.Top() {
		return NullCap, newFault(FaultMonotonicity, "setbounds", c, newBase, int(length))
	}
	c.base = newBase
	c.length = length
	c.addr = newBase
	return c, nil
}

// AndPerms derives a capability whose permissions are the intersection of
// the parent's permissions and mask. Permissions can only be removed —
// the operation cannot fault on the mask itself.
func (c Cap) AndPerms(mask Perm) (Cap, error) {
	if f := c.checkDerivable("andperms"); f != nil {
		return NullCap, f
	}
	c.perms &= mask
	return c, nil
}

// ClearTag returns an invalidated copy of c.
func (c Cap) ClearTag() Cap {
	c.tag = false
	return c
}

// Seal returns c sealed with the object type designated by sealer's
// cursor. The sealer must be tagged, unsealed, hold PermSeal, and its
// cursor must be an in-bounds, in-range otype.
func (c Cap) Seal(sealer Cap) (Cap, error) {
	if f := c.checkDerivable("seal"); f != nil {
		return NullCap, f
	}
	if !sealer.tag {
		return NullCap, newFault(FaultTag, "seal", sealer, sealer.addr, 0)
	}
	if sealer.Sealed() {
		return NullCap, newFault(FaultSeal, "seal", sealer, sealer.addr, 0)
	}
	if !sealer.perms.Has(PermSeal) {
		return NullCap, newFault(FaultPermSeal, "seal", sealer, sealer.addr, 0)
	}
	ot := OType(sealer.addr)
	if !sealer.InBounds(sealer.addr, 1) || ot < OTypeFirst || ot > OTypeLast {
		return NullCap, newFault(FaultOType, "seal", sealer, sealer.addr, 0)
	}
	c.otype = ot
	return c, nil
}

// Unseal returns c unsealed. The unsealer must be tagged, unsealed, hold
// PermUnseal, and its cursor must equal c's otype (and be in bounds).
func (c Cap) Unseal(unsealer Cap) (Cap, error) {
	if !c.tag {
		return NullCap, newFault(FaultTag, "unseal", c, c.addr, 0)
	}
	if !c.Sealed() {
		return NullCap, newFault(FaultSeal, "unseal", c, c.addr, 0)
	}
	if !unsealer.tag {
		return NullCap, newFault(FaultTag, "unseal", unsealer, unsealer.addr, 0)
	}
	if unsealer.Sealed() {
		return NullCap, newFault(FaultSeal, "unseal", unsealer, unsealer.addr, 0)
	}
	if !unsealer.perms.Has(PermUnseal) {
		return NullCap, newFault(FaultPermUnseal, "unseal", unsealer, unsealer.addr, 0)
	}
	if !unsealer.InBounds(unsealer.addr, 1) || OType(unsealer.addr) != c.otype {
		return NullCap, newFault(FaultOType, "unseal", unsealer, unsealer.addr, 0)
	}
	c.otype = OTypeUnsealed
	// Unsealing strips Global unless the unsealer is itself global —
	// simplification: keep perms unchanged; CheriBSD's behaviour for the
	// otype ranges used here is identity on permissions.
	return c, nil
}

// BuildCap validates that cand is derivable from auth (bounds within,
// perms a subset) and returns a tagged copy of cand. It mirrors the
// CBuildCap instruction used to re-derive capabilities after swapping.
func BuildCap(auth, cand Cap) (Cap, error) {
	if f := auth.checkDerivable("buildcap"); f != nil {
		return NullCap, f
	}
	if cand.base < auth.base || cand.Top() > auth.Top() || cand.Top() < cand.base {
		return NullCap, newFault(FaultMonotonicity, "buildcap", auth, cand.base, int(cand.length))
	}
	if cand.perms&^auth.perms != 0 {
		return NullCap, newFault(FaultMonotonicity, "buildcap", auth, cand.base, 0)
	}
	cand.tag = true
	cand.otype = OTypeUnsealed
	return cand, nil
}

// --- use checks (called by TMem and Context) ---

// CheckLoad verifies a data load of n bytes at addr through c.
func (c Cap) CheckLoad(addr uint64, n int) error {
	if !c.tag {
		return newFault(FaultTag, "load", c, addr, n)
	}
	if c.Sealed() {
		return newFault(FaultSeal, "load", c, addr, n)
	}
	if !c.perms.Has(PermLoad) {
		return newFault(FaultPermLoad, "load", c, addr, n)
	}
	if !c.InBounds(addr, n) {
		return newFault(FaultBounds, "load", c, addr, n)
	}
	return nil
}

// CheckStore verifies a data store of n bytes at addr through c.
func (c Cap) CheckStore(addr uint64, n int) error {
	if !c.tag {
		return newFault(FaultTag, "store", c, addr, n)
	}
	if c.Sealed() {
		return newFault(FaultSeal, "store", c, addr, n)
	}
	if !c.perms.Has(PermStore) {
		return newFault(FaultPermStore, "store", c, addr, n)
	}
	if !c.InBounds(addr, n) {
		return newFault(FaultBounds, "store", c, addr, n)
	}
	return nil
}

// CheckFetch verifies an instruction fetch at addr through c (PCC use).
func (c Cap) CheckFetch(addr uint64) error {
	if !c.tag {
		return newFault(FaultTag, "fetch", c, addr, 4)
	}
	if c.Sealed() {
		return newFault(FaultSeal, "fetch", c, addr, 4)
	}
	if !c.perms.Has(PermExecute) {
		return newFault(FaultPermExecute, "fetch", c, addr, 4)
	}
	if !c.InBounds(addr, 4) {
		return newFault(FaultBounds, "fetch", c, addr, 4)
	}
	return nil
}
