package cheri

import (
	"strings"
	"testing"
)

func TestNullCapIsInvalid(t *testing.T) {
	if NullCap.Tag() {
		t.Fatal("null capability must be untagged")
	}
	if err := NullCap.CheckLoad(0, 1); !IsFault(err, FaultTag) {
		t.Fatalf("load through null cap: got %v, want tag fault", err)
	}
	if err := NullCap.CheckStore(0, 1); !IsFault(err, FaultTag) {
		t.Fatalf("store through null cap: got %v, want tag fault", err)
	}
}

func TestNewRootProperties(t *testing.T) {
	c := NewRoot(0x1000, 0x2000, PermAll)
	if !c.Tag() {
		t.Fatal("root must be tagged")
	}
	if c.Base() != 0x1000 || c.Len() != 0x2000 || c.Top() != 0x3000 {
		t.Fatalf("bounds wrong: %v", c)
	}
	if c.Addr() != c.Base() {
		t.Fatalf("cursor must start at base: %v", c)
	}
	if c.Sealed() {
		t.Fatal("root must be unsealed")
	}
}

func TestSetBoundsNarrows(t *testing.T) {
	root := NewRoot(0, 0x10000, PermAll)
	sub, err := root.SetAddr(0x100).SetBounds(0x200)
	if err != nil {
		t.Fatalf("SetBounds: %v", err)
	}
	if sub.Base() != 0x100 || sub.Len() != 0x200 || sub.Top() != 0x300 {
		t.Fatalf("derived bounds wrong: %v", sub)
	}
	if sub.Perms() != root.Perms() {
		t.Fatalf("perms must be inherited: %v", sub)
	}
}

func TestSetBoundsRejectsWidening(t *testing.T) {
	root := NewRoot(0x100, 0x100, PermAll)
	if _, err := root.SetBounds(0x200); !IsFault(err, FaultMonotonicity) {
		t.Fatalf("widening length: got %v, want monotonicity fault", err)
	}
	// Cursor below base after SetAddr.
	if _, err := root.SetAddr(0x80).SetBounds(0x10); !IsFault(err, FaultMonotonicity) {
		t.Fatalf("base below parent: got %v, want monotonicity fault", err)
	}
	// Wrap-around length.
	if _, err := root.SetBounds(^uint64(0)); !IsFault(err, FaultMonotonicity) {
		t.Fatalf("wrapping length: got %v, want monotonicity fault", err)
	}
}

func TestAndPermsOnlyRemoves(t *testing.T) {
	root := NewRoot(0, 0x1000, PermLoad|PermStore)
	ro, err := root.AndPerms(PermLoad)
	if err != nil {
		t.Fatalf("AndPerms: %v", err)
	}
	if ro.Perms() != PermLoad {
		t.Fatalf("got perms %v, want r", ro.Perms())
	}
	// Asking for a permission the parent lacks silently yields the
	// intersection (monotone), never a widened set.
	rx, err := root.AndPerms(PermLoad | PermExecute)
	if err != nil {
		t.Fatalf("AndPerms: %v", err)
	}
	if rx.Perms() != PermLoad {
		t.Fatalf("got perms %v, want r only", rx.Perms())
	}
	if err := ro.CheckStore(0, 1); !IsFault(err, FaultPermStore) {
		t.Fatalf("store through r-only cap: got %v, want permit-store fault", err)
	}
}

func TestBoundsChecking(t *testing.T) {
	c := NewRoot(0x100, 0x100, PermData)
	cases := []struct {
		addr uint64
		n    int
		ok   bool
	}{
		{0x100, 1, true},
		{0x100, 0x100, true},
		{0x1ff, 1, true},
		{0x1ff, 2, false},
		{0x200, 1, false},
		{0xff, 1, false},
		{0x100, 0, false},
		{^uint64(0), 2, false}, // overflowing access
	}
	for _, tc := range cases {
		got := c.InBounds(tc.addr, tc.n)
		if got != tc.ok {
			t.Errorf("InBounds(%#x,%d) = %v, want %v", tc.addr, tc.n, got, tc.ok)
		}
	}
}

func TestCheckLoadFaultKinds(t *testing.T) {
	c := NewRoot(0x100, 0x100, PermData)
	if err := c.CheckLoad(0x300, 4); !IsFault(err, FaultBounds) {
		t.Fatalf("oob load: got %v, want bounds fault", err)
	}
	noload, _ := c.AndPerms(PermStore)
	if err := noload.CheckLoad(0x100, 4); !IsFault(err, FaultPermLoad) {
		t.Fatalf("no-perm load: got %v, want permit-load fault", err)
	}
	dead := c.ClearTag()
	if err := dead.CheckLoad(0x100, 4); !IsFault(err, FaultTag) {
		t.Fatalf("untagged load: got %v, want tag fault", err)
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	sealer := NewRoot(10, 100, PermSeal|PermUnseal).SetAddr(42)
	victim := NewRoot(0x1000, 0x100, PermData)

	sealed, err := victim.Seal(sealer)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if !sealed.Sealed() || sealed.OType() != 42 {
		t.Fatalf("sealed cap wrong: %v", sealed)
	}
	// A sealed capability cannot be dereferenced or re-derived.
	if err := sealed.CheckLoad(0x1000, 1); !IsFault(err, FaultSeal) {
		t.Fatalf("load through sealed: got %v, want seal fault", err)
	}
	if _, err := sealed.SetBounds(1); !IsFault(err, FaultSeal) {
		t.Fatalf("setbounds on sealed: got %v, want seal fault", err)
	}

	back, err := sealed.Unseal(sealer)
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	if back.Sealed() {
		t.Fatal("unsealed cap still sealed")
	}
	if back.Base() != victim.Base() || back.Len() != victim.Len() || back.Perms() != victim.Perms() {
		t.Fatalf("round trip changed cap: %v vs %v", back, victim)
	}
}

func TestSealRequiresAuthority(t *testing.T) {
	victim := NewRoot(0, 0x100, PermData)
	noauth := NewRoot(10, 100, PermData).SetAddr(42)
	if _, err := victim.Seal(noauth); !IsFault(err, FaultPermSeal) {
		t.Fatalf("seal without PermSeal: got %v, want permit-seal fault", err)
	}
	oob := NewRoot(10, 10, PermSeal).SetAddr(99)
	if _, err := victim.Seal(oob); !IsFault(err, FaultOType) {
		t.Fatalf("seal with out-of-bounds otype: got %v, want otype fault", err)
	}
}

func TestUnsealWrongOType(t *testing.T) {
	sealer := NewRoot(1, 1000, PermSeal|PermUnseal).SetAddr(42)
	other := NewRoot(1, 1000, PermSeal|PermUnseal).SetAddr(43)
	victim := NewRoot(0, 0x100, PermData)
	sealed, err := victim.Seal(sealer)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, err := sealed.Unseal(other); !IsFault(err, FaultOType) {
		t.Fatalf("unseal with wrong otype: got %v, want otype fault", err)
	}
}

func TestBuildCap(t *testing.T) {
	auth := NewRoot(0x1000, 0x1000, PermData)
	// A candidate within authority is revalidated.
	cand := Cap{base: 0x1100, length: 0x100, addr: 0x1100, perms: PermLoad, otype: OTypeUnsealed}
	got, err := BuildCap(auth, cand)
	if err != nil {
		t.Fatalf("BuildCap: %v", err)
	}
	if !got.Tag() {
		t.Fatal("rebuilt cap must be tagged")
	}
	// A candidate exceeding authority bounds is rejected.
	wide := Cap{base: 0x0800, length: 0x100, otype: OTypeUnsealed}
	if _, err := BuildCap(auth, wide); !IsFault(err, FaultMonotonicity) {
		t.Fatalf("oob candidate: got %v, want monotonicity fault", err)
	}
	// A candidate with extra permissions is rejected.
	priv := Cap{base: 0x1000, length: 0x10, perms: PermSystem, otype: OTypeUnsealed}
	if _, err := BuildCap(auth, priv); !IsFault(err, FaultMonotonicity) {
		t.Fatalf("perm-widening candidate: got %v, want monotonicity fault", err)
	}
}

func TestFaultErrorText(t *testing.T) {
	c := NewRoot(0, 16, PermLoad)
	err := c.CheckStore(0, 4)
	if err == nil {
		t.Fatal("want fault")
	}
	msg := err.Error()
	if !strings.Contains(msg, "permit-store") {
		t.Fatalf("fault text %q lacks cause", msg)
	}
}

func TestPermString(t *testing.T) {
	if got := (PermLoad | PermStore).String(); got != "rw" {
		t.Fatalf("perm string = %q, want rw", got)
	}
	if got := Perm(0).String(); got != "-" {
		t.Fatalf("empty perm string = %q, want -", got)
	}
}

func TestCapStringMentionsState(t *testing.T) {
	c := NewRoot(0x10, 0x10, PermLoad)
	if s := c.String(); !strings.Contains(s, "0x10") {
		t.Fatalf("cap string %q lacks bounds", s)
	}
	if s := c.ClearTag().String(); !strings.Contains(s, "invalid") {
		t.Fatalf("untagged cap string %q lacks invalid marker", s)
	}
	sealer := NewRoot(1, 100, PermSeal).SetAddr(7)
	sc, err := c.Seal(sealer)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if s := sc.String(); !strings.Contains(s, "sealed") {
		t.Fatalf("sealed cap string %q lacks sealed marker", s)
	}
}

func TestIncAddrAndOffset(t *testing.T) {
	c := NewRoot(0x100, 0x100, PermData)
	c = c.IncAddr(0x20)
	if c.Addr() != 0x120 || c.Offset() != 0x20 {
		t.Fatalf("IncAddr wrong: %v", c)
	}
	// Negative delta via two's complement.
	c = c.IncAddr(^uint64(0)) // -1
	if c.Addr() != 0x11f {
		t.Fatalf("negative IncAddr wrong: %v", c)
	}
	// Out-of-bounds cursor is allowed until use.
	far := c.SetAddr(0x9999)
	if far.Addr() != 0x9999 {
		t.Fatalf("SetAddr wrong: %v", far)
	}
	if err := far.CheckLoad(far.Addr(), 1); !IsFault(err, FaultBounds) {
		t.Fatalf("use of oob cursor: got %v, want bounds fault", err)
	}
}
