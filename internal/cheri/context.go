package cheri

// NumRegs is the number of general-purpose capability registers in a
// compartment context (c0..c30 on Morello, plus CSP).
const NumRegs = 32

// Context is a compartment execution context: the Program Counter
// Capability (PCC), the Default Data Capability (DDC) and a register file
// of capability registers. In hybrid-mode code every legacy load/store is
// implicitly checked against the DDC; a compartment therefore cannot
// touch memory outside its DDC bounds (paper §II-A).
type Context struct {
	PCC  Cap
	DDC  Cap
	Regs [NumRegs]Cap
}

// Frame is a saved register state, copied by trampolines on every domain
// crossing. Copying the frame (and re-installing PCC/DDC) is the fixed
// per-crossing cost the paper measures (~125 ns on Morello).
type Frame struct {
	PCC  Cap
	DDC  Cap
	Regs [NumRegs]Cap
}

// Save captures the full register state.
func (ctx *Context) Save() Frame {
	return Frame{PCC: ctx.PCC, DDC: ctx.DDC, Regs: ctx.Regs}
}

// Restore reinstates a previously saved register state.
func (ctx *Context) Restore(f Frame) {
	ctx.PCC = f.PCC
	ctx.DDC = f.DDC
	ctx.Regs = f.Regs
}

// ClearVolatile zeroes the caller-saved registers so no capabilities leak
// across a domain boundary (trampolines call this on entry and exit).
func (ctx *Context) ClearVolatile() {
	for i := range ctx.Regs {
		ctx.Regs[i] = NullCap
	}
}

// Load performs a hybrid-mode (DDC-relative) load into dst.
func (ctx *Context) Load(m *TMem, addr uint64, dst []byte) error {
	return m.Load(ctx.DDC, addr, dst)
}

// Store performs a hybrid-mode (DDC-relative) store from src.
func (ctx *Context) Store(m *TMem, addr uint64, src []byte) error {
	return m.Store(ctx.DDC, addr, src)
}

// EntryPair is a sealed (code, data) capability pair: the only way to
// enter another compartment. Invoking the pair atomically installs the
// unsealed code capability as PCC and the unsealed data capability as
// DDC, so control can only land on the compartment's designated entry
// point with the compartment's designated data view.
type EntryPair struct {
	Code Cap
	Data Cap
}

// SealEntryPair seals code and data with the object type designated by
// sealer and returns the pair. code must be executable; both receive
// PermInvoke before sealing so that CInvoke accepts them.
func SealEntryPair(code, data, sealer Cap) (EntryPair, error) {
	if !code.Perms().Has(PermExecute) {
		return EntryPair{}, newFault(FaultPermExecute, "sealentry", code, code.Addr(), 0)
	}
	if !code.Perms().Has(PermInvoke) {
		return EntryPair{}, newFault(FaultPermInvoke, "sealentry", code, code.Addr(), 0)
	}
	if !data.Perms().Has(PermInvoke) {
		return EntryPair{}, newFault(FaultPermInvoke, "sealentry", data, data.Addr(), 0)
	}
	sc, err := code.Seal(sealer)
	if err != nil {
		return EntryPair{}, err
	}
	sd, err := data.Seal(sealer)
	if err != nil {
		return EntryPair{}, err
	}
	return EntryPair{Code: sc, Data: sd}, nil
}

// CInvoke performs the sealed-pair domain crossing (blrs on Morello):
// it validates the pair and installs the unsealed code capability as PCC
// and the unsealed data capability as DDC. On any violation the context
// is left unchanged and a *Fault is returned.
func (ctx *Context) CInvoke(p EntryPair) error {
	code, data := p.Code, p.Data
	if !code.tag {
		return newFault(FaultTag, "cinvoke", code, code.addr, 0)
	}
	if !data.tag {
		return newFault(FaultTag, "cinvoke", data, data.addr, 0)
	}
	if !code.Sealed() || !data.Sealed() {
		return newFault(FaultSeal, "cinvoke", code, code.addr, 0)
	}
	if code.otype != data.otype {
		return newFault(FaultOType, "cinvoke", code, code.addr, 0)
	}
	if !code.perms.Has(PermInvoke) {
		return newFault(FaultPermInvoke, "cinvoke", code, code.addr, 0)
	}
	if !data.perms.Has(PermInvoke) {
		return newFault(FaultPermInvoke, "cinvoke", data, data.addr, 0)
	}
	if !code.perms.Has(PermExecute) {
		return newFault(FaultPermExecute, "cinvoke", code, code.addr, 0)
	}
	if data.perms.Has(PermExecute) {
		return newFault(FaultPermExecute, "cinvoke", data, data.addr, 0)
	}
	code.otype = OTypeUnsealed
	data.otype = OTypeUnsealed
	if err := code.CheckFetch(code.addr); err != nil {
		return err
	}
	ctx.PCC = code
	ctx.DDC = data
	return nil
}
