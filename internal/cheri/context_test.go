package cheri

import "testing"

// buildPair makes a sealed entry pair over the given code/data windows.
func buildPair(t *testing.T, mem *TMem, codeBase, codeLen, dataBase, dataLen uint64, otype uint64) EntryPair {
	t.Helper()
	root := mem.Root()
	code, err := root.SetAddr(codeBase).SetBounds(codeLen)
	if err != nil {
		t.Fatal(err)
	}
	code, err = code.AndPerms(PermCode | PermInvoke)
	if err != nil {
		t.Fatal(err)
	}
	data, err := root.SetAddr(dataBase).SetBounds(dataLen)
	if err != nil {
		t.Fatal(err)
	}
	data, err = data.AndPerms(PermData | PermInvoke)
	if err != nil {
		t.Fatal(err)
	}
	sealer, err := root.SetAddr(uint64(OTypeFirst)).SetBounds(1<<20 - uint64(OTypeFirst))
	if err != nil {
		t.Fatal(err)
	}
	sealer, err = sealer.AndPerms(PermSeal | PermUnseal)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := SealEntryPair(code, data, sealer.SetAddr(otype))
	if err != nil {
		t.Fatalf("SealEntryPair: %v", err)
	}
	return pair
}

func TestCInvokeInstallsCompartment(t *testing.T) {
	mem := NewTMem(1 << 20)
	pair := buildPair(t, mem, 0x1000, 0x1000, 0x8000, 0x4000, 7)

	var ctx Context
	if err := ctx.CInvoke(pair); err != nil {
		t.Fatalf("CInvoke: %v", err)
	}
	if ctx.PCC.Sealed() || ctx.DDC.Sealed() {
		t.Fatal("installed PCC/DDC must be unsealed")
	}
	if ctx.DDC.Base() != 0x8000 || ctx.DDC.Len() != 0x4000 {
		t.Fatalf("DDC bounds wrong: %v", ctx.DDC)
	}
	// The compartment can touch its own window...
	if err := ctx.Store(mem, 0x8000, []byte{1, 2, 3}); err != nil {
		t.Fatalf("in-bounds store: %v", err)
	}
	// ...and faults outside it (paper Fig. 3).
	err := ctx.Store(mem, 0xC000, []byte{1})
	if !IsFault(err, FaultBounds) {
		t.Fatalf("out-of-DDC store: got %v, want capability out-of-bounds", err)
	}
}

func TestCInvokeRejectsMismatchedOTypes(t *testing.T) {
	mem := NewTMem(1 << 20)
	a := buildPair(t, mem, 0x1000, 0x1000, 0x8000, 0x4000, 7)
	b := buildPair(t, mem, 0x2000, 0x1000, 0xC000, 0x4000, 8)
	mixed := EntryPair{Code: a.Code, Data: b.Data}
	var ctx Context
	if err := ctx.CInvoke(mixed); !IsFault(err, FaultOType) {
		t.Fatalf("mixed pair: got %v, want otype fault", err)
	}
}

func TestCInvokeRejectsUnsealed(t *testing.T) {
	mem := NewTMem(1 << 20)
	root := mem.Root()
	code, _ := root.SetAddr(0x1000).SetBounds(0x100)
	code, _ = code.AndPerms(PermCode | PermInvoke)
	data, _ := root.SetAddr(0x8000).SetBounds(0x100)
	data, _ = data.AndPerms(PermData | PermInvoke)
	var ctx Context
	if err := ctx.CInvoke(EntryPair{Code: code, Data: data}); !IsFault(err, FaultSeal) {
		t.Fatalf("unsealed pair: got %v, want seal fault", err)
	}
}

func TestCInvokeRejectsUntagged(t *testing.T) {
	mem := NewTMem(1 << 20)
	pair := buildPair(t, mem, 0x1000, 0x1000, 0x8000, 0x4000, 7)
	pair.Code = pair.Code.ClearTag()
	var ctx Context
	if err := ctx.CInvoke(pair); !IsFault(err, FaultTag) {
		t.Fatalf("untagged code: got %v, want tag fault", err)
	}
}

func TestCInvokeRejectsExecutableData(t *testing.T) {
	mem := NewTMem(1 << 20)
	root := mem.Root()
	sealer, _ := root.SetAddr(9).SetBounds(16)
	sealer, _ = sealer.AndPerms(PermSeal)
	sealer = sealer.SetAddr(9)
	code, _ := root.SetAddr(0x1000).SetBounds(0x100)
	code, _ = code.AndPerms(PermCode | PermInvoke)
	// Data capability that (wrongly) retains execute rights.
	data, _ := root.SetAddr(0x8000).SetBounds(0x100)
	data, _ = data.AndPerms(PermData | PermInvoke | PermExecute)
	sc, err := code.Seal(sealer)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := data.Seal(sealer)
	if err != nil {
		t.Fatal(err)
	}
	var ctx Context
	if err := ctx.CInvoke(EntryPair{Code: sc, Data: sd}); !IsFault(err, FaultPermExecute) {
		t.Fatalf("executable data cap: got %v, want permit-execute fault", err)
	}
}

func TestSealEntryPairValidation(t *testing.T) {
	mem := NewTMem(1 << 20)
	root := mem.Root()
	sealer, _ := root.SetAddr(5).SetBounds(16)
	sealer, _ = sealer.AndPerms(PermSeal)
	sealer = sealer.SetAddr(5)
	data, _ := root.SetAddr(0x8000).SetBounds(0x100)
	data, _ = data.AndPerms(PermData | PermInvoke)
	// Non-executable code capability is rejected.
	notCode, _ := root.SetAddr(0x1000).SetBounds(0x100)
	notCode, _ = notCode.AndPerms(PermData | PermInvoke)
	if _, err := SealEntryPair(notCode, data, sealer); !IsFault(err, FaultPermExecute) {
		t.Fatalf("non-exec code: got %v, want permit-execute fault", err)
	}
	// Missing PermInvoke is rejected.
	code, _ := root.SetAddr(0x1000).SetBounds(0x100)
	code, _ = code.AndPerms(PermCode)
	if _, err := SealEntryPair(code, data, sealer); !IsFault(err, FaultPermInvoke) {
		t.Fatalf("no-invoke code: got %v, want permit-invoke fault", err)
	}
}

func TestSaveRestoreFrame(t *testing.T) {
	mem := NewTMem(1 << 20)
	root := mem.Root()
	var ctx Context
	ctx.DDC = root
	ctx.Regs[3], _ = root.SetAddr(0x100).SetBounds(0x10)

	f := ctx.Save()
	ctx.ClearVolatile()
	if ctx.Regs[3].Tag() {
		t.Fatal("ClearVolatile left a live capability")
	}
	ctx.DDC = NullCap
	ctx.Restore(f)
	if !ctx.Regs[3].Tag() || ctx.Regs[3].Base() != 0x100 {
		t.Fatalf("restore lost register state: %v", ctx.Regs[3])
	}
	if ctx.DDC.Len() != mem.Size() {
		t.Fatalf("restore lost DDC: %v", ctx.DDC)
	}
}
