// Package cheri implements a software model of the CHERI capability
// architecture sufficient to reproduce the compartmentalization behaviour
// evaluated in "Enabling Security on the Edge: A CHERI Compartmentalized
// Network Stack" (DATE 2025).
//
// The model provides:
//
//   - Cap: a 128-bit-style capability carrying base, length, cursor
//     (address), permissions, an object type for sealing, and a validity
//     tag. Derivation is monotonic: a derived capability can never carry
//     more rights or wider bounds than its parent.
//   - TMem: byte-addressable tagged memory. One tag bit guards each
//     16-byte granule; writing data bytes into a granule clears its tag,
//     so capabilities cannot be forged by writing their bit pattern.
//   - Context: a compartment execution context (PCC, DDC and a register
//     file of capabilities) together with sealed entry pairs and the
//     CInvoke/blrs-style domain-crossing operation used by trampolines.
//
// Faults mirror CHERI exception causes (tag, seal, permission, bounds,
// monotonicity violations) and are reported as *Fault errors rather than
// hardware traps; the scenario layer turns them into compartment
// exceptions (paper Fig. 3).
//
// The model is deliberately uncompressed (no CHERI Concentrate encoding):
// bounds are exact. Tag granularity, alignment rules for capability
// loads/stores, and permission monotonicity match the architectural
// behaviour that the paper's evaluation depends on.
package cheri
