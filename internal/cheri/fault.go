package cheri

import "fmt"

// FaultKind enumerates CHERI exception causes.
type FaultKind int

const (
	// FaultNone is the zero value; it never appears in a returned Fault.
	FaultNone FaultKind = iota
	// FaultTag: the capability's validity tag is clear.
	FaultTag
	// FaultSeal: a sealed capability was used for memory access, or
	// seal/unseal preconditions failed.
	FaultSeal
	// FaultBounds: the access lies outside [base, base+length). This is
	// the "Capability Out-of-Bounds exception" of paper Fig. 3.
	FaultBounds
	// FaultPermLoad: load attempted without PermLoad.
	FaultPermLoad
	// FaultPermStore: store attempted without PermStore.
	FaultPermStore
	// FaultPermExecute: fetch attempted without PermExecute.
	FaultPermExecute
	// FaultPermLoadCap: capability load attempted without PermLoadCap.
	FaultPermLoadCap
	// FaultPermStoreCap: capability store attempted without PermStoreCap.
	FaultPermStoreCap
	// FaultPermSeal: seal attempted without PermSeal on the sealer.
	FaultPermSeal
	// FaultPermUnseal: unseal attempted without PermUnseal on the unsealer.
	FaultPermUnseal
	// FaultPermInvoke: CInvoke attempted on a capability without PermInvoke.
	FaultPermInvoke
	// FaultPermSystem: system-register access without PermSystem.
	FaultPermSystem
	// FaultMonotonicity: a derivation tried to widen bounds or add
	// permissions.
	FaultMonotonicity
	// FaultOType: seal/unseal object-type mismatch or otype out of range.
	FaultOType
	// FaultAlignment: capability load/store at a non-16-byte-aligned
	// address.
	FaultAlignment
)

var faultNames = map[FaultKind]string{
	FaultTag:          "tag violation",
	FaultSeal:         "seal violation",
	FaultBounds:       "capability out-of-bounds",
	FaultPermLoad:     "permit-load violation",
	FaultPermStore:    "permit-store violation",
	FaultPermExecute:  "permit-execute violation",
	FaultPermLoadCap:  "permit-load-capability violation",
	FaultPermStoreCap: "permit-store-capability violation",
	FaultPermSeal:     "permit-seal violation",
	FaultPermUnseal:   "permit-unseal violation",
	FaultPermInvoke:   "permit-invoke violation",
	FaultPermSystem:   "permit-system-registers violation",
	FaultMonotonicity: "monotonicity violation",
	FaultOType:        "object-type violation",
	FaultAlignment:    "capability alignment fault",
}

// String returns the architectural name of the fault kind.
func (k FaultKind) String() string {
	if s, ok := faultNames[k]; ok {
		return s
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is a CHERI capability exception. It satisfies error so the model
// can report violations without panicking; the scenario layer converts
// faults raised inside a compartment into compartment traps.
type Fault struct {
	Kind FaultKind
	// Cap is the offending capability (as it was when the fault occurred).
	Cap Cap
	// Addr is the faulting address, when the fault relates to a memory
	// access; zero otherwise.
	Addr uint64
	// Size is the access size in bytes, when applicable.
	Size int
	// Op names the operation that faulted ("load", "store", "setbounds",
	// "seal", ...).
	Op string
}

// Error renders the fault like a CheriBSD SIGPROT report.
func (f *Fault) Error() string {
	if f.Size > 0 {
		return fmt.Sprintf("CHERI %s: %s addr=%#x size=%d cap=%v",
			f.Kind, f.Op, f.Addr, f.Size, f.Cap)
	}
	return fmt.Sprintf("CHERI %s: %s cap=%v", f.Kind, f.Op, f.Cap)
}

func newFault(kind FaultKind, op string, c Cap, addr uint64, size int) *Fault {
	return &Fault{Kind: kind, Cap: c, Addr: addr, Size: size, Op: op}
}

// IsFault reports whether err is a *Fault of the given kind.
func IsFault(err error, kind FaultKind) bool {
	f, ok := err.(*Fault)
	return ok && f.Kind == kind
}
