package cheri

import "strings"

// Perm is a bit set of capability permissions. The set follows the
// Morello/CHERI ISA permission model (a subset sufficient for the
// network-stack case study).
type Perm uint16

const (
	// PermLoad allows data loads through the capability.
	PermLoad Perm = 1 << iota
	// PermStore allows data stores through the capability.
	PermStore
	// PermExecute allows instruction fetch (PCC-class capabilities).
	PermExecute
	// PermLoadCap allows loading valid capabilities (preserving tags).
	PermLoadCap
	// PermStoreCap allows storing valid capabilities (preserving tags).
	PermStoreCap
	// PermSeal allows sealing other capabilities with this one's otype
	// range.
	PermSeal
	// PermUnseal allows unsealing capabilities sealed within this one's
	// otype range.
	PermUnseal
	// PermInvoke allows the capability to be used with CInvoke (the
	// sealed-entry domain-crossing instruction, blrs on Morello).
	PermInvoke
	// PermGlobal marks a capability that may be stored anywhere; non-global
	// capabilities may only be stored through PermStoreLocalCap.
	PermGlobal
	// PermStoreLocalCap allows storing non-global capabilities.
	PermStoreLocalCap
	// PermSystem grants access to system registers (the Intravisor's
	// privilege; cVMs never hold it — that is why they cannot read the
	// hardware timers directly, §IV of the paper).
	PermSystem
)

// PermAll is every permission bit; only root capabilities carry it.
const PermAll = PermLoad | PermStore | PermExecute | PermLoadCap |
	PermStoreCap | PermSeal | PermUnseal | PermInvoke | PermGlobal |
	PermStoreLocalCap | PermSystem

// PermData is the usual working set for a data capability.
const PermData = PermLoad | PermStore | PermLoadCap | PermStoreCap |
	PermGlobal | PermStoreLocalCap

// PermCode is the usual working set for a code (PCC) capability.
const PermCode = PermLoad | PermExecute | PermGlobal

var permNames = []struct {
	bit  Perm
	name string
}{
	{PermLoad, "r"},
	{PermStore, "w"},
	{PermExecute, "x"},
	{PermLoadCap, "R"},
	{PermStoreCap, "W"},
	{PermSeal, "s"},
	{PermUnseal, "u"},
	{PermInvoke, "i"},
	{PermGlobal, "g"},
	{PermStoreLocalCap, "l"},
	{PermSystem, "S"},
}

// String renders the permission set in a compact rwxRWsuiglS form.
func (p Perm) String() string {
	if p == 0 {
		return "-"
	}
	var b strings.Builder
	for _, pn := range permNames {
		if p&pn.bit != 0 {
			b.WriteString(pn.name)
		}
	}
	return b.String()
}

// Has reports whether every bit in q is present in p.
func (p Perm) Has(q Perm) bool { return p&q == q }
