package cheri

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// capGen produces random—but tagged and unsealed—capabilities inside a
// 1 MiB arena for property tests.
type capGen Cap

func (capGen) Generate(r *rand.Rand, _ int) reflect.Value {
	const arena = 1 << 20
	base := uint64(r.Intn(arena / 2))
	length := uint64(r.Intn(arena/2-1) + 1)
	c := NewRoot(base, length, Perm(r.Intn(int(PermAll+1))))
	c = c.SetAddr(base + uint64(r.Int63())%length)
	return reflect.ValueOf(capGen(c))
}

var quickCfg = &quick.Config{MaxCount: 400}

// Property: SetBounds never widens — every derived capability's range is
// contained in the parent's and its permissions are identical.
func TestQuickSetBoundsMonotone(t *testing.T) {
	f := func(g capGen, lenSeed uint16) bool {
		parent := Cap(g)
		sub, err := parent.SetBounds(uint64(lenSeed))
		if err != nil {
			// Faults are allowed; widening successes are not.
			return true
		}
		return sub.Base() >= parent.Base() &&
			sub.Top() <= parent.Top() &&
			sub.Perms() == parent.Perms() &&
			sub.Tag()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: AndPerms only removes permissions.
func TestQuickAndPermsMonotone(t *testing.T) {
	f := func(g capGen, mask uint16) bool {
		parent := Cap(g)
		sub, err := parent.AndPerms(Perm(mask))
		if err != nil {
			return true
		}
		return sub.Perms()&^parent.Perms() == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: chains of arbitrary derivations never escape the original
// bounds or gain permissions.
func TestQuickDerivationChainsMonotone(t *testing.T) {
	f := func(g capGen, steps []uint32) bool {
		orig := Cap(g)
		c := orig
		for _, s := range steps {
			switch s % 3 {
			case 0:
				if d, err := c.SetAddr(c.Base() + uint64(s)%maxU64(c.Len(), 1)).SetBounds(uint64(s % 4096)); err == nil {
					c = d
				}
			case 1:
				if d, err := c.AndPerms(Perm(s)); err == nil {
					c = d
				}
			case 2:
				c = c.IncAddr(uint64(s % 64))
			}
		}
		return c.Base() >= orig.Base() &&
			c.Top() <= orig.Top() &&
			c.Perms()&^orig.Perms() == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Property: an access either passes CheckLoad or faults — and it passes
// exactly when it is inside bounds with a load permission and a tag.
func TestQuickCheckLoadComplete(t *testing.T) {
	f := func(g capGen, off uint32, n uint8) bool {
		c := Cap(g)
		addr := c.Base() + uint64(off)%(2*c.Len())
		size := int(n%64) + 1
		err := c.CheckLoad(addr, size)
		shouldPass := c.Tag() && !c.Sealed() && c.Perms().Has(PermLoad) && c.InBounds(addr, size)
		return (err == nil) == shouldPass
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: seal/unseal with the same authority is the identity on
// bounds, cursor and permissions.
func TestQuickSealUnsealIdentity(t *testing.T) {
	sealRoot := NewRoot(uint64(OTypeFirst), 1<<16, PermSeal|PermUnseal)
	f := func(g capGen, otSeed uint16) bool {
		c := Cap(g)
		sealer := sealRoot.SetAddr(uint64(OTypeFirst) + uint64(otSeed))
		sealed, err := c.Seal(sealer)
		if err != nil {
			return true
		}
		back, err := sealed.Unseal(sealer)
		if err != nil {
			return false
		}
		return back.Base() == c.Base() && back.Len() == c.Len() &&
			back.Addr() == c.Addr() && back.Perms() == c.Perms() && !back.Sealed()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: memory round-trips arbitrary data through any in-bounds
// capability window.
func TestQuickTMemRoundTrip(t *testing.T) {
	m := NewTMem(1 << 16)
	root := m.Root()
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 || len(data) > 1024 {
			return true
		}
		addr := uint64(off) % (m.Size() - uint64(len(data)))
		c, err := root.SetAddr(addr).SetBounds(uint64(len(data)))
		if err != nil {
			return false
		}
		if err := m.Store(c, addr, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := m.Load(c, addr, got); err != nil {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: any data store over a tagged granule clears its tag.
func TestQuickTagClearing(t *testing.T) {
	m := NewTMem(1 << 16)
	root := m.Root()
	v, err := root.SetAddr(64).SetBounds(64)
	if err != nil {
		t.Fatal(err)
	}
	f := func(slot uint8, off uint8, b byte) bool {
		addr := (uint64(slot) % 64) * CapSize
		if err := m.StoreCap(root, addr, v); err != nil {
			return false
		}
		wr := addr + uint64(off)%CapSize
		if err := m.Store(root, wr, []byte{b}); err != nil {
			return false
		}
		return !m.TagAt(addr)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
