package cheri

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// TMem is tagged memory: a flat byte array plus one validity-tag bit per
// 16-byte granule. Capabilities stored in memory keep their tag only while
// the granule holds exactly the stored capability bits; any data store
// into a granule clears its tag (capability non-forgeability).
//
// A TMem also keeps the out-of-band capability values for tagged granules.
// Real hardware reconstructs capabilities from their 128-bit pattern; this
// model stores the Cap value alongside so that no encoding is needed. The
// data bytes written for a capability are a best-effort rendering of
// (base, addr) so that plain data reads of capability memory see something
// deterministic.
//
// Concurrency: distinct compartments and device queues own disjoint
// ranges, so data copies never overlap (the ownership discipline of real
// memory). The tag structures, however, are shared bookkeeping and are
// guarded by a mutex, so concurrent compartment loops (paper Scenario 1
// runs two) may fault-check and copy in parallel safely.
type TMem struct {
	data []byte
	size uint64

	tagMu sync.Mutex
	tags  []bool         // one per granule
	caps  map[uint64]Cap // granule-aligned address -> stored capability
}

// NewTMem allocates tagged memory of the given size (rounded up to a
// granule multiple).
func NewTMem(size uint64) *TMem {
	size = (size + CapSize - 1) &^ (CapSize - 1)
	return &TMem{
		data: make([]byte, size),
		tags: make([]bool, size/CapSize),
		caps: make(map[uint64]Cap),
		size: size,
	}
}

// Size returns the memory size in bytes.
func (m *TMem) Size() uint64 { return m.size }

// Root returns the architectural root capability over all of memory.
func (m *TMem) Root() Cap { return NewRoot(0, m.size, PermAll) }

// clearTags invalidates every granule overlapping [addr, addr+n).
func (m *TMem) clearTags(addr uint64, n int) {
	if n <= 0 {
		return
	}
	m.tagMu.Lock()
	defer m.tagMu.Unlock()
	first := addr / CapSize
	last := (addr + uint64(n) - 1) / CapSize
	for g := first; g <= last; g++ {
		if m.tags[g] {
			m.tags[g] = false
			delete(m.caps, g*CapSize)
		}
	}
}

// inRange reports whether [addr, addr+n) is inside physical memory.
func (m *TMem) inRange(addr uint64, n int) bool {
	end := addr + uint64(n)
	return n > 0 && end >= addr && end <= m.size
}

// Load copies len(dst) bytes at addr into dst through capability c.
func (m *TMem) Load(c Cap, addr uint64, dst []byte) error {
	if err := c.CheckLoad(addr, len(dst)); err != nil {
		return err
	}
	if !m.inRange(addr, len(dst)) {
		return newFault(FaultBounds, "load", c, addr, len(dst))
	}
	copy(dst, m.data[addr:])
	return nil
}

// Store copies src into memory at addr through capability c, clearing
// the tags of every granule it touches.
func (m *TMem) Store(c Cap, addr uint64, src []byte) error {
	if err := c.CheckStore(addr, len(src)); err != nil {
		return err
	}
	if !m.inRange(addr, len(src)) {
		return newFault(FaultBounds, "store", c, addr, len(src))
	}
	copy(m.data[addr:], src)
	m.clearTags(addr, len(src))
	return nil
}

// LoadU16 loads a little-endian uint16 through c.
func (m *TMem) LoadU16(c Cap, addr uint64) (uint16, error) {
	if err := c.CheckLoad(addr, 2); err != nil {
		return 0, err
	}
	if !m.inRange(addr, 2) {
		return 0, newFault(FaultBounds, "load", c, addr, 2)
	}
	return binary.LittleEndian.Uint16(m.data[addr:]), nil
}

// LoadU32 loads a little-endian uint32 through c.
func (m *TMem) LoadU32(c Cap, addr uint64) (uint32, error) {
	if err := c.CheckLoad(addr, 4); err != nil {
		return 0, err
	}
	if !m.inRange(addr, 4) {
		return 0, newFault(FaultBounds, "load", c, addr, 4)
	}
	return binary.LittleEndian.Uint32(m.data[addr:]), nil
}

// LoadU64 loads a little-endian uint64 through c.
func (m *TMem) LoadU64(c Cap, addr uint64) (uint64, error) {
	if err := c.CheckLoad(addr, 8); err != nil {
		return 0, err
	}
	if !m.inRange(addr, 8) {
		return 0, newFault(FaultBounds, "load", c, addr, 8)
	}
	return binary.LittleEndian.Uint64(m.data[addr:]), nil
}

// StoreU16 stores a little-endian uint16 through c.
func (m *TMem) StoreU16(c Cap, addr uint64, v uint16) error {
	if err := c.CheckStore(addr, 2); err != nil {
		return err
	}
	if !m.inRange(addr, 2) {
		return newFault(FaultBounds, "store", c, addr, 2)
	}
	binary.LittleEndian.PutUint16(m.data[addr:], v)
	m.clearTags(addr, 2)
	return nil
}

// StoreU32 stores a little-endian uint32 through c.
func (m *TMem) StoreU32(c Cap, addr uint64, v uint32) error {
	if err := c.CheckStore(addr, 4); err != nil {
		return err
	}
	if !m.inRange(addr, 4) {
		return newFault(FaultBounds, "store", c, addr, 4)
	}
	binary.LittleEndian.PutUint32(m.data[addr:], v)
	m.clearTags(addr, 4)
	return nil
}

// StoreU64 stores a little-endian uint64 through c.
func (m *TMem) StoreU64(c Cap, addr uint64, v uint64) error {
	if err := c.CheckStore(addr, 8); err != nil {
		return err
	}
	if !m.inRange(addr, 8) {
		return newFault(FaultBounds, "store", c, addr, 8)
	}
	binary.LittleEndian.PutUint64(m.data[addr:], v)
	m.clearTags(addr, 8)
	return nil
}

// StoreCap stores capability v at the granule-aligned address addr
// through c, preserving v's tag.
func (m *TMem) StoreCap(c Cap, addr uint64, v Cap) error {
	if addr%CapSize != 0 {
		return newFault(FaultAlignment, "storecap", c, addr, CapSize)
	}
	if !c.tag {
		return newFault(FaultTag, "storecap", c, addr, CapSize)
	}
	if c.Sealed() {
		return newFault(FaultSeal, "storecap", c, addr, CapSize)
	}
	if !c.perms.Has(PermStore) {
		return newFault(FaultPermStore, "storecap", c, addr, CapSize)
	}
	if v.tag && !c.perms.Has(PermStoreCap) {
		return newFault(FaultPermStoreCap, "storecap", c, addr, CapSize)
	}
	if v.tag && !v.perms.Has(PermGlobal) && !c.perms.Has(PermStoreLocalCap) {
		return newFault(FaultPermStoreCap, "storecap", c, addr, CapSize)
	}
	if !c.InBounds(addr, CapSize) {
		return newFault(FaultBounds, "storecap", c, addr, CapSize)
	}
	if !m.inRange(addr, CapSize) {
		return newFault(FaultBounds, "storecap", c, addr, CapSize)
	}
	// Render a deterministic data view (base, addr) of the capability.
	binary.LittleEndian.PutUint64(m.data[addr:], v.base)
	binary.LittleEndian.PutUint64(m.data[addr+8:], v.addr)
	m.tagMu.Lock()
	defer m.tagMu.Unlock()
	g := addr / CapSize
	if v.tag {
		m.tags[g] = true
		m.caps[addr] = v
	} else {
		m.tags[g] = false
		delete(m.caps, addr)
	}
	return nil
}

// LoadCap loads the capability stored at the granule-aligned address addr
// through c. If the granule's tag is clear the result is an untagged
// capability built from the raw bytes (as on hardware). Loading a tagged
// capability without PermLoadCap yields the value with the tag stripped.
func (m *TMem) LoadCap(c Cap, addr uint64) (Cap, error) {
	if addr%CapSize != 0 {
		return NullCap, newFault(FaultAlignment, "loadcap", c, addr, CapSize)
	}
	if err := c.CheckLoad(addr, CapSize); err != nil {
		f := err.(*Fault)
		f.Op = "loadcap"
		return NullCap, f
	}
	if !m.inRange(addr, CapSize) {
		return NullCap, newFault(FaultBounds, "loadcap", c, addr, CapSize)
	}
	m.tagMu.Lock()
	tagged := m.tags[addr/CapSize]
	v, hasCap := m.caps[addr]
	m.tagMu.Unlock()
	if tagged && hasCap {
		if !c.perms.Has(PermLoadCap) {
			v.tag = false
		}
		return v, nil
	}
	// Untagged granule: reconstruct a null-derived value from raw bytes.
	v = Cap{
		base:  binary.LittleEndian.Uint64(m.data[addr:]),
		addr:  binary.LittleEndian.Uint64(m.data[addr+8:]),
		otype: OTypeUnsealed,
	}
	return v, nil
}

// TagAt reports the tag bit of the granule containing addr.
func (m *TMem) TagAt(addr uint64) bool {
	if addr >= m.size {
		return false
	}
	m.tagMu.Lock()
	defer m.tagMu.Unlock()
	return m.tags[addr/CapSize]
}

// --- unchecked access (device DMA in raw mode, Baseline scenario) ---

// RawSlice returns a direct view of [addr, addr+n) with no capability
// check. It models the unprotected accesses of the non-CHERI Baseline and
// of bus masters that bypass capability checks. Tags are NOT cleared:
// callers that mutate through the slice must call RawInvalidate if the
// range may hold capabilities (device queues never do).
func (m *TMem) RawSlice(addr uint64, n int) ([]byte, error) {
	if !m.inRange(addr, n) {
		return nil, fmt.Errorf("tmem: raw access [%#x,+%d) outside memory of size %#x", addr, n, m.size)
	}
	return m.data[addr : addr+uint64(n) : addr+uint64(n)], nil
}

// RawInvalidate clears capability tags over [addr, addr+n); bus masters
// that write memory without capabilities must invalidate the tags the
// write shadows.
func (m *TMem) RawInvalidate(addr uint64, n int) {
	if m.inRange(addr, n) {
		m.clearTags(addr, n)
	}
}

// CheckedSlice verifies a load+store capability over the whole range and
// returns the backing slice. It models a checked bulk access (the bounds
// and permission checks execute once; the data movement is then performed
// at memcpy speed, as the hardware pipeline does for a sequence of
// in-bounds accesses). Tags in the range are cleared, as any data store
// would.
func (m *TMem) CheckedSlice(c Cap, addr uint64, n int) ([]byte, error) {
	if err := c.CheckLoad(addr, n); err != nil {
		return nil, err
	}
	if err := c.CheckStore(addr, n); err != nil {
		return nil, err
	}
	if !m.inRange(addr, n) {
		return nil, newFault(FaultBounds, "slice", c, addr, n)
	}
	m.clearTags(addr, n)
	return m.data[addr : addr+uint64(n) : addr+uint64(n)], nil
}

// CheckedSliceRO verifies a load capability over the whole range and
// returns the backing slice for reading.
func (m *TMem) CheckedSliceRO(c Cap, addr uint64, n int) ([]byte, error) {
	if err := c.CheckLoad(addr, n); err != nil {
		return nil, err
	}
	if !m.inRange(addr, n) {
		return nil, newFault(FaultBounds, "slice", c, addr, n)
	}
	return m.data[addr : addr+uint64(n) : addr+uint64(n)], nil
}
