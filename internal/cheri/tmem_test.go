package cheri

import (
	"bytes"
	"testing"
)

func TestTMemRoundTrip(t *testing.T) {
	m := NewTMem(4096)
	c := m.Root()
	want := []byte("hello, compartment")
	if err := m.Store(c, 0x100, want); err != nil {
		t.Fatalf("Store: %v", err)
	}
	got := make([]byte, len(want))
	if err := m.Load(c, 0x100, got); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("round trip: got %q want %q", got, want)
	}
}

func TestTMemSizeRoundsToGranule(t *testing.T) {
	m := NewTMem(17)
	if m.Size() != 32 {
		t.Fatalf("size = %d, want 32", m.Size())
	}
}

func TestTMemRejectsOutOfBoundsCapability(t *testing.T) {
	m := NewTMem(4096)
	narrow, err := m.Root().SetAddr(0x100).SetBounds(0x10)
	if err != nil {
		t.Fatalf("SetBounds: %v", err)
	}
	if err := m.Store(narrow, 0x110, []byte{1}); !IsFault(err, FaultBounds) {
		t.Fatalf("oob store: got %v, want bounds fault", err)
	}
	buf := make([]byte, 1)
	if err := m.Load(narrow, 0xff, buf); !IsFault(err, FaultBounds) {
		t.Fatalf("oob load: got %v, want bounds fault", err)
	}
}

func TestTMemPhysicalRange(t *testing.T) {
	m := NewTMem(64)
	// Forged root wider than physical memory: physical check still trips.
	wide := NewRoot(0, 1<<20, PermAll)
	if err := m.Store(wide, 128, []byte{1}); !IsFault(err, FaultBounds) {
		t.Fatalf("beyond-physical store: got %v, want bounds fault", err)
	}
}

func TestScalarHelpers(t *testing.T) {
	m := NewTMem(256)
	c := m.Root()
	if err := m.StoreU16(c, 0, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreU32(c, 4, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreU64(c, 8, 0x0102030405060708); err != nil {
		t.Fatal(err)
	}
	if v, err := m.LoadU16(c, 0); err != nil || v != 0xBEEF {
		t.Fatalf("LoadU16 = %#x, %v", v, err)
	}
	if v, err := m.LoadU32(c, 4); err != nil || v != 0xDEADBEEF {
		t.Fatalf("LoadU32 = %#x, %v", v, err)
	}
	if v, err := m.LoadU64(c, 8); err != nil || v != 0x0102030405060708 {
		t.Fatalf("LoadU64 = %#x, %v", v, err)
	}
	ro, _ := c.AndPerms(PermLoad)
	if err := m.StoreU32(ro, 4, 1); !IsFault(err, FaultPermStore) {
		t.Fatalf("store via ro cap: got %v, want permit-store fault", err)
	}
}

func TestCapStoreLoadPreservesTag(t *testing.T) {
	m := NewTMem(4096)
	root := m.Root()
	v, err := root.SetAddr(0x200).SetBounds(0x40)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StoreCap(root, 0x100, v); err != nil {
		t.Fatalf("StoreCap: %v", err)
	}
	if !m.TagAt(0x100) {
		t.Fatal("granule tag not set after StoreCap")
	}
	got, err := m.LoadCap(root, 0x100)
	if err != nil {
		t.Fatalf("LoadCap: %v", err)
	}
	if !got.Tag() || got.Base() != v.Base() || got.Len() != v.Len() || got.Perms() != v.Perms() {
		t.Fatalf("LoadCap = %v, want %v", got, v)
	}
}

func TestDataStoreClearsCapTag(t *testing.T) {
	m := NewTMem(4096)
	root := m.Root()
	v, _ := root.SetAddr(0x200).SetBounds(0x40)
	if err := m.StoreCap(root, 0x100, v); err != nil {
		t.Fatal(err)
	}
	// Overwrite one byte inside the granule: the tag must clear and the
	// later capability load must yield an untagged value (forgery defeated).
	if err := m.Store(root, 0x105, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	if m.TagAt(0x100) {
		t.Fatal("tag survived a data overwrite")
	}
	got, err := m.LoadCap(root, 0x100)
	if err != nil {
		t.Fatalf("LoadCap: %v", err)
	}
	if got.Tag() {
		t.Fatal("forged capability came back tagged")
	}
	if err := got.CheckLoad(got.Addr(), 1); !IsFault(err, FaultTag) {
		t.Fatalf("use of forged cap: got %v, want tag fault", err)
	}
}

func TestCapStoreAlignment(t *testing.T) {
	m := NewTMem(4096)
	root := m.Root()
	v, _ := root.SetAddr(0x200).SetBounds(0x40)
	if err := m.StoreCap(root, 0x101, v); !IsFault(err, FaultAlignment) {
		t.Fatalf("misaligned StoreCap: got %v, want alignment fault", err)
	}
	if _, err := m.LoadCap(root, 0x101); !IsFault(err, FaultAlignment) {
		t.Fatalf("misaligned LoadCap: got %v, want alignment fault", err)
	}
}

func TestStoreCapPermissions(t *testing.T) {
	m := NewTMem(4096)
	root := m.Root()
	v, _ := root.SetAddr(0x200).SetBounds(0x40)
	// Without PermStoreCap a tagged capability cannot be stored.
	noSC, _ := root.AndPerms(PermLoad | PermStore)
	if err := m.StoreCap(noSC, 0x100, v); !IsFault(err, FaultPermStoreCap) {
		t.Fatalf("StoreCap without W: got %v, want permit-store-cap fault", err)
	}
	// Without PermLoadCap a loaded capability loses its tag.
	if err := m.StoreCap(root, 0x100, v); err != nil {
		t.Fatal(err)
	}
	noLC, _ := root.AndPerms(PermLoad | PermStore)
	got, err := m.LoadCap(noLC, 0x100)
	if err != nil {
		t.Fatalf("LoadCap: %v", err)
	}
	if got.Tag() {
		t.Fatal("tag must be stripped when loading without PermLoadCap")
	}
}

func TestStoreLocalCapability(t *testing.T) {
	m := NewTMem(4096)
	root := m.Root()
	local, err := root.SetAddr(0x200).SetBounds(0x40)
	if err != nil {
		t.Fatal(err)
	}
	local, err = local.AndPerms(PermData &^ PermGlobal)
	if err != nil {
		t.Fatal(err)
	}
	// A store-cap-capable capability without PermStoreLocalCap cannot
	// store a non-global capability.
	noSL, _ := root.AndPerms(PermLoad | PermStore | PermLoadCap | PermStoreCap)
	if err := m.StoreCap(noSL, 0x100, local); !IsFault(err, FaultPermStoreCap) {
		t.Fatalf("local store without l perm: got %v, want fault", err)
	}
	if err := m.StoreCap(root, 0x100, local); err != nil {
		t.Fatalf("local store with l perm: %v", err)
	}
}

func TestRawSliceAndInvalidate(t *testing.T) {
	m := NewTMem(4096)
	root := m.Root()
	v, _ := root.SetAddr(0x200).SetBounds(0x40)
	if err := m.StoreCap(root, 0x100, v); err != nil {
		t.Fatal(err)
	}
	s, err := m.RawSlice(0x100, 16)
	if err != nil {
		t.Fatalf("RawSlice: %v", err)
	}
	s[0] = 0xAA // device write, no capability involved
	m.RawInvalidate(0x100, 16)
	if m.TagAt(0x100) {
		t.Fatal("RawInvalidate did not clear the tag")
	}
	if _, err := m.RawSlice(4090, 16); err == nil {
		t.Fatal("RawSlice beyond memory must fail")
	}
}

func TestCheckedSlice(t *testing.T) {
	m := NewTMem(4096)
	c, err := m.Root().SetAddr(0x100).SetBounds(0x100)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.CheckedSlice(c, 0x100, 0x100)
	if err != nil {
		t.Fatalf("CheckedSlice: %v", err)
	}
	if len(s) != 0x100 {
		t.Fatalf("slice len = %d", len(s))
	}
	if _, err := m.CheckedSlice(c, 0x1c0, 0x80); !IsFault(err, FaultBounds) {
		t.Fatalf("oob CheckedSlice: got %v, want bounds fault", err)
	}
	ro, _ := c.AndPerms(PermLoad)
	if _, err := m.CheckedSlice(ro, 0x100, 8); !IsFault(err, FaultPermStore) {
		t.Fatalf("rw slice via ro cap: got %v, want permit-store fault", err)
	}
	if _, err := m.CheckedSliceRO(ro, 0x100, 8); err != nil {
		t.Fatalf("ro slice via ro cap: %v", err)
	}
}

func TestCheckedSliceClearsTags(t *testing.T) {
	m := NewTMem(4096)
	root := m.Root()
	v, _ := root.SetAddr(0x200).SetBounds(0x40)
	if err := m.StoreCap(root, 0x100, v); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CheckedSlice(root, 0x100, 16); err != nil {
		t.Fatal(err)
	}
	if m.TagAt(0x100) {
		t.Fatal("writable slice over a capability granule must clear its tag")
	}
}
