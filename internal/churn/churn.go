// Package churn is the connection-storm workload behind Scenario 8:
// a client that holds a large population of idle connections and then
// drives rate-paced short flows at a server, and the server that
// accepts them. Both sides are non-blocking Step state machines in the
// iperf mold, so the same code runs against a plain stack, the gated
// API, or the sharded API, under the event-driven virtual clock.
//
// The client manages its own source ports (explicit Bind before
// Connect) instead of leaning on the ephemeral allocator: connection i
// takes sport sportBase+i%sportSpan toward dport base+(i/sportSpan),
// which keeps every concurrently-open tuple distinct without any
// coordination, and — once i wraps the sport space — deliberately
// re-offers tuples whose previous incarnation may still sit in
// TIME_WAIT, exercising the stack's 2MSL-reuse path. The client closes
// first, so TIME_WAIT accumulates on the client stack, exactly as it
// does on real load generators.
package churn

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/stats"
)

// API is the slice of the ff_* surface the workload needs; it matches
// iperf.API, so every compartment layout's API view satisfies it.
type API interface {
	Socket(typ int) (int, hostos.Errno)
	Bind(fd int, ip fstack.IPv4Addr, port uint16) hostos.Errno
	Listen(fd, backlog int) hostos.Errno
	Accept(fd int) (int, fstack.IPv4Addr, uint16, hostos.Errno)
	Connect(fd int, ip fstack.IPv4Addr, port uint16) hostos.Errno
	Read(fd int, dst []byte) (int, hostos.Errno)
	Write(fd int, src []byte) (int, hostos.Errno)
	Close(fd int) hostos.Errno
	EpollCreate() int
	EpollCtl(epfd, op, fd int, events uint32) hostos.Errno
	EpollWait(epfd int, evs []fstack.Event) (int, hostos.Errno)
}

const (
	// sportBase/sportSpan is the client's managed source-port window.
	sportBase = uint16(1024)
	sportSpan = 64000
	// maxInflight bounds concurrent client handshakes, so the accept
	// queues see a storm, not an avalanche.
	maxInflight = 256
	// payloadBytes is one short flow's request size.
	payloadBytes = 64
	// evBuf is sized past any reachable ready-set so EpollWait never
	// truncates: a truncated wait returns a map-ordered (random) subset
	// and the run stops being deterministic.
	evBuf = 4096
)

// connAddr maps flow index i to its managed (sport, dport-offset)
// pair.
func connAddr(i int) (sport uint16, dportOff int) {
	return sportBase + uint16(i%sportSpan), i / sportSpan
}

// --- server ---

// Server accepts the storm. Connections arriving on the preload ports
// [PreloadPort, PreloadPort+Ports) are parked — accepted, then held
// open untouched, the idle-population half of the scenario.
// Connections on the churn ports [ChurnPort, ChurnPort+Ports) are
// served: read to EOF, then closed.
type Server struct {
	ListenIP    fstack.IPv4Addr
	PreloadPort uint16
	ChurnPort   uint16
	Ports       int
	Backlog     int

	started  bool
	epfd     int
	preload  map[int]bool // listener fds for parked conns
	churn    map[int]bool // listener fds for served conns
	buf      []byte
	evs      []fstack.Event
	parked   int
	served   uint64
	failure  hostos.Errno
	wantStep bool
}

// NewServer prepares the accept side: ports listeners parked, ports
// listeners served, each with the given backlog.
func NewServer(ip fstack.IPv4Addr, preloadPort, churnPort uint16, ports, backlog int) *Server {
	return &Server{
		ListenIP: ip, PreloadPort: preloadPort, ChurnPort: churnPort,
		Ports: ports, Backlog: backlog,
		preload: make(map[int]bool), churn: make(map[int]bool),
		buf: make([]byte, 4096), evs: make([]fstack.Event, evBuf),
	}
}

// Parked reports how many idle connections the server holds.
func (s *Server) Parked() int { return s.parked }

// Served reports how many short flows ran to completion (EOF seen,
// connection closed).
func (s *Server) Served() uint64 { return s.served }

// Err returns the sticky failure, if any.
func (s *Server) Err() hostos.Errno { return s.failure }

// NextDeadline: the server is purely event-driven past its setup step.
func (s *Server) NextDeadline(now int64) int64 {
	if s.wantStep {
		return now
	}
	return math.MaxInt64
}

func (s *Server) fail(errno hostos.Errno) { s.failure = errno }

// Step advances the server; call once per loop iteration.
func (s *Server) Step(api API, now int64) {
	if s.failure != hostos.OK {
		return
	}
	if !s.started {
		s.started = true
		s.wantStep = false
		s.epfd = api.EpollCreate()
		listen := func(set map[int]bool, base uint16) {
			for p := 0; p < s.Ports; p++ {
				fd, errno := api.Socket(fstack.SockStream)
				if errno != hostos.OK {
					s.fail(errno)
					return
				}
				if errno := api.Bind(fd, s.ListenIP, base+uint16(p)); errno != hostos.OK {
					s.fail(errno)
					return
				}
				if errno := api.Listen(fd, s.Backlog); errno != hostos.OK {
					s.fail(errno)
					return
				}
				if errno := api.EpollCtl(s.epfd, fstack.EpollCtlAdd, fd, fstack.EPOLLIN); errno != hostos.OK {
					s.fail(errno)
					return
				}
				set[fd] = true
			}
		}
		listen(s.preload, s.PreloadPort)
		if s.failure == hostos.OK {
			listen(s.churn, s.ChurnPort)
		}
		return
	}
	n, errno := api.EpollWait(s.epfd, s.evs)
	if errno != hostos.OK {
		s.fail(errno)
		return
	}
	// EpollWait ranges a map: sort so equal runs process equal orders.
	slices.SortFunc(s.evs[:n], func(a, b fstack.Event) int { return a.FD - b.FD })
	for _, ev := range s.evs[:n] {
		switch {
		case s.preload[ev.FD]:
			for {
				_, _, _, errno := api.Accept(ev.FD)
				if errno == hostos.EAGAIN {
					break
				}
				if errno != hostos.OK {
					s.fail(errno)
					return
				}
				// Parked: held open, never read, never watched — an idle
				// connection must cost its conn state and nothing else.
				s.parked++
			}
		case s.churn[ev.FD]:
			for {
				cfd, _, _, errno := api.Accept(ev.FD)
				if errno == hostos.EAGAIN {
					break
				}
				if errno != hostos.OK {
					s.fail(errno)
					return
				}
				if errno := api.EpollCtl(s.epfd, fstack.EpollCtlAdd, cfd, fstack.EPOLLIN); errno != hostos.OK {
					s.fail(errno)
					return
				}
			}
		default:
			if ev.Events&fstack.EPOLLIN == 0 && ev.Events&(fstack.EPOLLERR|fstack.EPOLLHUP) == 0 {
				continue
			}
			for {
				n, errno := api.Read(ev.FD, s.buf)
				if errno == hostos.EAGAIN {
					break
				}
				if errno != hostos.OK {
					// The storm's short flows may RST under overload;
					// drop the conn, not the run.
					api.Close(ev.FD)
					break
				}
				if n == 0 { // EOF: flow complete
					api.Close(ev.FD)
					s.served++
					break
				}
			}
		}
	}
}

// --- client ---

type clientState int

const (
	clientInit clientState = iota
	clientPreloading
	clientHolding
	clientChurning
	clientDone
)

// flight is one in-progress handshake.
type flight struct {
	t0      int64 // Connect() instant
	preload bool
}

// Client drives the storm: establish Preload idle connections and hold
// them, then — once StartChurn is called — open short flows at Rate
// per second for DurationNS, each flow writing payloadBytes and
// closing.
type Client struct {
	ServerIP    fstack.IPv4Addr
	PreloadPort uint16
	ChurnPort   uint16
	Ports       int
	Preload     int
	Rate        float64
	DurationNS  int64
	// Hist records churn-flow connect latency (Connect to writable),
	// nanoseconds.
	Hist stats.Histogram

	state      clientState
	epfd       int
	inflight   map[int]flight
	evs        []fstack.Event
	payload    []byte
	opened     int // preload conns opened
	held       int // preload conns established
	churnOpen  int // churn flows opened
	completed  uint64
	deferred   uint64 // pace slots missed because maxInflight was hit
	churnStart int64
	churnEnd   int64
	failure    hostos.Errno
	wantStep   bool
}

// NewClient prepares the storm driver.
func NewClient(ip fstack.IPv4Addr, preloadPort, churnPort uint16, ports, preload int, rate float64, durationNS int64) (*Client, error) {
	if preload > ports*sportSpan {
		return nil, fmt.Errorf("churn: %d preload conns need more than %d ports", preload, ports)
	}
	pay := make([]byte, payloadBytes)
	for i := range pay {
		pay[i] = byte(i)
	}
	return &Client{
		ServerIP: ip, PreloadPort: preloadPort, ChurnPort: churnPort,
		Ports: ports, Preload: preload, Rate: rate, DurationNS: durationNS,
		inflight: make(map[int]flight),
		evs:      make([]fstack.Event, evBuf),
		payload:  pay,
	}, nil
}

// PreloadDone reports that every idle connection is established: the
// moment the driver measures the idle-population cost and calls
// StartChurn.
func (c *Client) PreloadDone() bool { return c.state == clientHolding }

// StartChurn begins the rate-paced short-flow phase.
func (c *Client) StartChurn(now int64) {
	c.churnStart = now
	c.state = clientChurning
	c.wantStep = true
}

// Done reports completion of the churn phase.
func (c *Client) Done() bool { return c.state == clientDone }

// Completed reports finished short flows (written and closed).
func (c *Client) Completed() uint64 { return c.completed }

// Deferred reports pace slots that came due while maxInflight
// handshakes were already outstanding — the open-loop load the client
// could not offer. Nonzero means the measured rate understates the
// offered rate.
func (c *Client) Deferred() uint64 { return c.deferred }

// ChurnNS returns the churn phase's virtual duration (valid once Done).
func (c *Client) ChurnNS() int64 { return c.churnEnd - c.churnStart }

// Err returns the sticky failure, if any.
func (c *Client) Err() hostos.Errno { return c.failure }

// NextDeadline: the client self-clocks on its churn pacing (and the
// phase end); everything else is reaction to stack events.
func (c *Client) NextDeadline(now int64) int64 {
	if c.wantStep {
		return now
	}
	if c.state != clientChurning {
		return math.MaxInt64
	}
	end := c.churnStart + c.DurationNS
	if now >= end {
		return math.MaxInt64 // draining: completion is event-driven
	}
	if len(c.inflight) >= maxInflight {
		return end // pacing blocked; a completion event unblocks sooner
	}
	// The next pace slot: the instant flow churnOpen+1 comes due.
	at := c.churnStart + int64(float64(c.churnOpen+1)/c.Rate*1e9)
	if at > end {
		return end
	}
	return at
}

func (c *Client) fail(errno hostos.Errno) {
	c.failure = errno
	c.state = clientDone
}

// open starts handshake i of a phase toward the given base port.
func (c *Client) open(api API, now int64, i int, base uint16, preload bool) bool {
	sport, off := connAddr(i)
	fd, errno := api.Socket(fstack.SockStream)
	if errno != hostos.OK {
		c.fail(errno)
		return false
	}
	if errno := api.Bind(fd, fstack.IPv4Addr{}, sport); errno != hostos.OK {
		c.fail(errno)
		return false
	}
	if errno := api.EpollCtl(c.epfd, fstack.EpollCtlAdd, fd, fstack.EPOLLOUT); errno != hostos.OK {
		c.fail(errno)
		return false
	}
	if errno := api.Connect(fd, c.ServerIP, base+uint16(off)); errno != hostos.EINPROGRESS && errno != hostos.OK {
		c.fail(errno)
		return false
	}
	c.inflight[fd] = flight{t0: now, preload: preload}
	return true
}

// Step advances the client; call once per loop iteration.
func (c *Client) Step(api API, now int64) {
	switch c.state {
	case clientInit:
		c.epfd = api.EpollCreate()
		c.state = clientPreloading
		c.wantStep = true

	case clientPreloading:
		c.wantStep = false
		if !c.drain(api, now) {
			return
		}
		for c.opened < c.Preload && len(c.inflight) < maxInflight {
			if !c.open(api, now, c.opened, c.PreloadPort, true) {
				return
			}
			c.opened++
		}
		if c.held == c.Preload {
			c.state = clientHolding
		}

	case clientChurning:
		c.wantStep = false
		if !c.drain(api, now) {
			return
		}
		elapsed := now - c.churnStart
		if elapsed < c.DurationNS {
			target := int(float64(elapsed) * c.Rate / 1e9)
			for c.churnOpen < target {
				if len(c.inflight) >= maxInflight {
					c.deferred += uint64(target - c.churnOpen)
					break
				}
				if !c.open(api, now, c.churnOpen, c.ChurnPort, false) {
					return
				}
				c.churnOpen++
			}
		} else if len(c.inflight) == 0 {
			c.churnEnd = now
			c.state = clientDone
		}
	}
}

// drain processes handshake completions; false means the run failed.
func (c *Client) drain(api API, now int64) bool {
	n, errno := api.EpollWait(c.epfd, c.evs)
	if errno != hostos.OK {
		c.fail(errno)
		return false
	}
	slices.SortFunc(c.evs[:n], func(a, b fstack.Event) int { return a.FD - b.FD })
	for _, ev := range c.evs[:n] {
		fl, ok := c.inflight[ev.FD]
		if !ok {
			continue
		}
		if ev.Events&(fstack.EPOLLERR|fstack.EPOLLHUP) != 0 {
			c.fail(hostos.ECONNREFUSED)
			return false
		}
		if ev.Events&fstack.EPOLLOUT == 0 {
			continue
		}
		delete(c.inflight, ev.FD)
		if fl.preload {
			// Established and parked: out of the watch set, held open.
			if errno := api.EpollCtl(c.epfd, fstack.EpollCtlDel, ev.FD, 0); errno != hostos.OK {
				c.fail(errno)
				return false
			}
			c.held++
			continue
		}
		c.Hist.Record(now - fl.t0)
		if _, errno := api.Write(ev.FD, c.payload); errno != hostos.OK {
			c.fail(errno)
			return false
		}
		api.Close(ev.FD) // client closes first: TIME_WAIT lands here
		c.completed++
	}
	return true
}
