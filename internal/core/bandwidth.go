package core

import (
	"fmt"

	"repro/internal/fstack"
	"repro/internal/iperf"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Direction selects which side of the link the local box plays, as in
// Table II's "Server" (receiver) and "Client" (sender) columns.
type Direction int

const (
	// LocalIsServer: the Morello box receives; the link partners send.
	LocalIsServer Direction = iota
	// LocalIsClient: the Morello box sends; the link partners receive.
	LocalIsClient
)

// String names the direction Table II-style.
func (d Direction) String() string {
	if d == LocalIsServer {
		return "Server"
	}
	return "Client"
}

// BWResult is one Table II cell pair: the goodput one endpoint achieved.
type BWResult struct {
	Label      string
	Mbps       float64
	Efficiency float64 // vs the 1 Gbit/s port
}

// String formats the row.
func (r BWResult) String() string {
	return fmt.Sprintf("%-24s %5.0f Mbit/s  %5.1f%%", r.Label, r.Mbps, r.Efficiency*100)
}

// bandwidth run parameters.
const (
	bwTick = 5_000 // 5 µs virtual per iteration
	// bwDuration is the per-measurement traffic time. Sender-side
	// accounting includes the residual socket buffer (it is counted when
	// written, as in iperf3), which inflates the client figure by
	// ~sndbuf/duration — 1 s keeps that under ~4 Mbit/s.
	bwDuration = 1_000e6
	bwDeadline = 4_000e6 // hard stop (virtual ns)
	iperfPort  = uint16(5201)
)

// deadliner reports the next virtual instant a component may act of
// its own accord (math.MaxInt64 = never): the hook iperf endpoints and
// the testbed expose for the event-driven driver. A value at or before
// `now` means the component has work right now.
type deadliner interface{ NextDeadline(now int64) int64 }

// leapEnabled gates the event-driven clock: when true (the default),
// runVirtualUntil leaps over tick rounds in which provably nothing is
// due. The quiescence-leap test flips it to compare the event-driven
// run against the tick-stepped reference.
var leapEnabled = true

// visitHook, when non-nil, observes every iteration the driver runs:
// the instant and whether the bed reported due work there. Test-only.
var visitHook func(now int64, active bool)

// runVirtual steps every loop (and the extra app steppers) in lockstep
// virtual time until done() or the deadline.
func runVirtual(clk *sim.VClock, bed *Setup, apps []func(now int64), timed []deadliner, done func() bool) error {
	return runVirtualUntil(clk, bed, apps, timed, done, bwDeadline)
}

// runVirtualUntil is runVirtual with an explicit deadline, for runs
// whose drain time scales with the path RTT (Scenario 5's WAN paths
// retransmit across hundred-ms round trips).
//
// The clock is event-driven: each iteration steps every loop and app
// stepper at the current instant, then asks the bed (Bed.NextDeadline:
// connection timers, RX FIFOs, serializers, netem delay lines) and the
// timed components (iperf duration/interval ends) for the earliest
// future instant anything could happen. When that instant lies beyond
// the next 5 µs tick, the clock leaps directly to the grid point
// containing it — the same instant the tick-stepped loop would first
// have noticed the event at, with every skipped grid point a provable
// no-op — so observable behavior is bit-identical while wall-clock
// cost scales with events rather than virtual duration.
func runVirtualUntil(clk *sim.VClock, bed *Setup, apps []func(now int64), timed []deadliner, done func() bool, deadlineNS int64) error {
	start := clk.Now()
	loops := bed.Loops()
	// Per-instant loop stepping: sequential by default; a bed eligible
	// for parallel shard stepping (see testbed.NewShardStepper) runs its
	// shard loops on Parallelism() host workers instead, with identical
	// observable behavior.
	stepLoops := func() {
		for _, l := range loops {
			l.RunOnce()
		}
	}
	if p := Parallelism(); p > 1 {
		if ps := testbed.NewShardStepper(bed, p); ps != nil {
			defer ps.Close()
			stepLoops = ps.RunOnce
		}
	}
	for clk.Now()-start < deadlineNS {
		if done() {
			return nil
		}
		stepLoops()
		now := clk.Now()
		for _, f := range apps {
			f(now)
		}
		// Metrics sampling rides the same iteration grid; with
		// observability off this is a nil check. Bed.NextDeadline folds
		// the sampler's next instant in, so leaping never skips a sample.
		bed.ObsTick(now)
		step := int64(bwTick)
		if leapEnabled || visitHook != nil {
			next := bed.NextDeadline(now)
			for _, d := range timed {
				if next <= now {
					break
				}
				if at := d.NextDeadline(now); at < next {
					next = at
				}
			}
			if visitHook != nil {
				visitHook(now, next <= now)
			}
			if next > now+bwTick {
				// Land exactly on the tick-grid point containing the
				// deadline (never past the run deadline), so the event
				// is handled at the same instant the tick loop would
				// have handled it.
				if end := start + deadlineNS; next > end {
					next = end
				}
				if k := (next - now + bwTick - 1) / bwTick; k > 1 && leapEnabled {
					step = k * bwTick
				}
			}
		}
		clk.Advance(step)
	}
	// A run can complete into total quiescence: the final step finishes
	// the workload, every deadline goes to infinity, and the leap lands
	// on the budget end — re-check before calling that a timeout.
	if done() {
		return nil
	}
	return fmt.Errorf("core: bandwidth run did not finish within %.0f ms virtual", float64(deadlineNS)/1e6)
}

// timedOf collects the deadline hooks of a run's iperf endpoints (nil
// entries are skipped, so optional endpoints can be passed directly).
func timedOf(clis []*iperf.Client, srvs []*iperf.Server) []deadliner {
	var out []deadliner
	for _, c := range clis {
		if c != nil {
			out = append(out, c)
		}
	}
	for _, s := range srvs {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

// attachInLoop embeds an iperf endpoint in a loop's user callback, the
// Baseline/Scenario 1 layout where the application runs inside the
// stack's compartment.
func attachInLoop(env *Env, step func(api iperf.API, now int64)) {
	api := env.Loop.Locked()
	env.Loop.OnLoop = func(now int64) bool {
		step(api, now)
		return true
	}
}

// BandwidthPair measures one (setup, direction) combination with one
// connection per local environment or app compartment, and returns the
// local-side goodput per endpoint (which is what Table II tabulates).
//
// In LocalIsServer mode the local endpoints run iperf servers and the
// remote partners run clients; in LocalIsClient mode the roles flip.
func BandwidthPair(s *Setup, dir Direction) ([]BWResult, error) {
	clk, ok := s.Clk.(*sim.VClock)
	if !ok {
		return nil, fmt.Errorf("core: bandwidth runs need the virtual clock")
	}
	type endpoint struct {
		label  string
		client *iperf.Client
		server *iperf.Server
	}
	var eps []endpoint
	var appSteppers []func(now int64)

	// Local endpoints: per port-owning env (Baseline, Scenario 1) or per
	// application compartment (Scenario 2).
	if len(s.Apps) == 0 {
		for i, env := range s.Envs {
			port := i // env i owns port i in these layouts
			ep := endpoint{label: env.Name}
			if dir == LocalIsServer {
				srv := iperf.NewServer(fstack.IPv4Addr{}, iperfPort)
				ep.server = srv
				attachInLoop(env, srv.Step)
			} else {
				cli := iperf.NewClient(peerIP(port), iperfPort, int64(bwDuration))
				ep.client = cli
				attachInLoop(env, cli.Step)
			}
			eps = append(eps, ep)
		}
	} else {
		// Scenario 2: all apps share the single stack on port 0; each
		// uses a distinct TCP port.
		for i, api := range s.Apps {
			api := api
			port := iperfPort + uint16(i)
			ep := endpoint{label: api.App.Name}
			if dir == LocalIsServer {
				srv := iperf.NewServer(fstack.IPv4Addr{}, port)
				ep.server = srv
				appSteppers = append(appSteppers, func(now int64) { srv.Step(api, now) })
			} else {
				cli := iperf.NewClient(peerIP(0), port, int64(bwDuration))
				ep.client = cli
				appSteppers = append(appSteppers, func(now int64) { cli.Step(api, now) })
			}
			eps = append(eps, ep)
		}
	}

	// Remote endpoints: the peer for port i talks to local endpoint i —
	// except in Scenario 2 where one peer carries every flow.
	var peerCli []*iperf.Client
	var peerSrv []*iperf.Server
	if len(s.Apps) == 0 {
		for i, p := range s.Peers {
			if dir == LocalIsServer {
				cli := iperf.NewClient(localIP(i), iperfPort, int64(bwDuration))
				peerCli = append(peerCli, cli)
				attachInLoop(p.Env, cli.Step)
			} else {
				srv := iperf.NewServer(fstack.IPv4Addr{}, iperfPort)
				peerSrv = append(peerSrv, srv)
				attachInLoop(p.Env, srv.Step)
			}
		}
	} else {
		p := s.Peers[0]
		n := len(s.Apps)
		if dir == LocalIsServer {
			for i := 0; i < n; i++ {
				cli := iperf.NewClient(localIP(0), iperfPort+uint16(i), int64(bwDuration))
				peerCli = append(peerCli, cli)
			}
			api := p.Env.Loop.Locked()
			p.Env.Loop.OnLoop = func(now int64) bool {
				for _, c := range peerCli {
					c.Step(api, now)
				}
				return true
			}
		} else {
			for i := 0; i < n; i++ {
				srv := iperf.NewServer(fstack.IPv4Addr{}, iperfPort+uint16(i))
				peerSrv = append(peerSrv, srv)
			}
			api := p.Env.Loop.Locked()
			p.Env.Loop.OnLoop = func(now int64) bool {
				for _, sv := range peerSrv {
					sv.Step(api, now)
				}
				return true
			}
		}
	}

	done := func() bool {
		for _, ep := range eps {
			if ep.client != nil && !ep.client.Done() {
				return false
			}
			if ep.server != nil && !ep.server.Done() {
				return false
			}
		}
		for _, c := range peerCli {
			if !c.Done() {
				return false
			}
		}
		for _, sv := range peerSrv {
			if !sv.Done() {
				return false
			}
		}
		return true
	}
	var epCli []*iperf.Client
	var epSrv []*iperf.Server
	for _, ep := range eps {
		epCli = append(epCli, ep.client)
		epSrv = append(epSrv, ep.server)
	}
	timed := append(timedOf(epCli, epSrv), timedOf(peerCli, peerSrv)...)
	if err := runVirtual(clk, s, appSteppers, timed, done); err != nil {
		return nil, err
	}

	var out []BWResult
	for _, ep := range eps {
		var rep iperf.Report
		switch {
		case ep.server != nil:
			if ep.server.Err() != 0 {
				return nil, fmt.Errorf("core: server %s failed: %v", ep.label, ep.server.Err())
			}
			rep = ep.server.Report()
		case ep.client != nil:
			if ep.client.Err() != 0 {
				return nil, fmt.Errorf("core: client %s failed: %v", ep.label, ep.client.Err())
			}
			rep = ep.client.Report()
		}
		out = append(out, BWResult{
			Label:      fmt.Sprintf("%s %s", ep.label, dir),
			Mbps:       rep.Mbps(),
			Efficiency: rep.Efficiency(1000),
		})
	}
	return out, nil
}
