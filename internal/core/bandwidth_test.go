package core

import (
	"testing"

	"repro/internal/sim"
)

func TestBaselineSingleHitsLineGoodput(t *testing.T) {
	clk := sim.NewVClock()
	s, err := NewBaselineSingle(clk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BandwidthPair(s, LocalIsClient)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results: %v", res)
	}
	t.Logf("baseline single client: %v", res[0])
	// Paper Table II: 941 Mbit/s (94.1%); sender-side accounting may sit
	// a few Mbit/s above (socket-buffer residue).
	if res[0].Mbps < 930 || res[0].Mbps > 950 {
		t.Fatalf("single-port goodput %.0f Mbit/s, want ≈941", res[0].Mbps)
	}
}

func TestBaselineSingleServerSide(t *testing.T) {
	clk := sim.NewVClock()
	s, err := NewBaselineSingle(clk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BandwidthPair(s, LocalIsServer)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline single server: %v", res[0])
	if res[0].Mbps < 935 || res[0].Mbps > 945 {
		t.Fatalf("single-port RX goodput %.0f Mbit/s, want ≈941", res[0].Mbps)
	}
}
