// Package core composes the substrates into the paper's systems: the
// simulated Morello box with its dual-port 82576 NIC, the CheriBSD-like
// kernel, the Intravisor with its cVMs, the DPDK+F-Stack userspace
// network stack, and the remote link partners — wired into the three
// evaluation scenarios of §III:
//
//   - Baseline: no CHERI. The stack and application run as ordinary
//     processes (MMU isolation), raw buffers, direct host syscalls.
//   - Scenario 1: full replication. Each of two cVMs contains the whole
//     application + F-Stack + DPDK stack on its own Ethernet port.
//   - Scenario 2: split. cVM1 runs F-Stack + DPDK; one (uncontended) or
//     two (contended) application cVMs call the F-Stack API through
//     cross-compartment gates, serialized by the stack mutex.
//
// Past the paper, three forward-looking layouts ride on the same
// substrates: Scenario 3 (§VI's future work — DPDK separated into its
// own cVM, gates on the datapath), Scenario 4 (multi-core scaling —
// a multi-queue RSS port with one CPU-budgeted stack shard per queue
// pair, scenario4.go), and Scenario 5 (a lossy high-BDP WAN behind a
// netem.Link, comparing go-back-N against SACK + window scaling,
// scenario5.go).
//
// The package also carries the experiment drivers that regenerate every
// table and figure of the evaluation (bandwidth.go, latency.go,
// fig3.go, table1.go).
package core

import (
	"fmt"

	"repro/internal/cheri"
	"repro/internal/dpdk"
	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/intravisor"
	"repro/internal/netem"
	"repro/internal/nic"
)

// Default sizing for the simulated machines.
const (
	machineMem = 64 << 20 // 64 MiB of tagged memory
	cvmMem     = 12 << 20 // per-cVM window
	segSize    = 8 << 20  // DPDK segment inside a process/cVM
	poolBufs   = 2048     // mbufs per pool
	ringSize   = 512      // RX/TX descriptors

	// Fast link partners (Scenario 4) carry many flows at once; their
	// environment is sized up so the peer is never the bottleneck.
	peerFastSegSize  = 24 << 20
	peerFastPoolBufs = 3072
)

// Machine is one simulated computer: tagged memory + kernel + one NIC.
type Machine struct {
	Name string
	K    *hostos.Kernel
	Card *nic.Card
	IV   *intravisor.Intravisor // created lazily by NewCVM
	clk  hostos.Clock
}

// MachineConfig parameterizes NewMachine.
type MachineConfig struct {
	Name string
	Clk  hostos.Clock
	// Ports on the machine's NIC.
	Ports int
	// LineRateBps overrides the per-port line rate; 0 means the paper's
	// 1 GbE. Scenario 4 uses a faster port so a single stack shard (not
	// the line) is the bottleneck.
	LineRateBps float64
	// RxFifoBytes overrides the per-queue RX packet buffer; 0 keeps the
	// 82576's 64 KiB.
	RxFifoBytes int
	// BusLimited installs the calibrated 82576 shared-bus model; false
	// gives an ideal bus (used for the remote link partners, which stand
	// in for "the other end of the cable" and must never be the
	// bottleneck).
	BusLimited bool
	// CapDMA bounds device DMA with capabilities (CHERI scenarios).
	CapDMA bool
	// MACLast seeds the card's MAC addresses.
	MACLast byte
}

// NewMachine boots a machine per the config.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	k, err := hostos.NewKernel(machineMem)
	if err != nil {
		return nil, err
	}
	lineRate := cfg.LineRateBps
	if lineRate <= 0 {
		lineRate = 1e9
	}
	ncfg := nic.Config{
		BDFBase:     fmt.Sprintf("0000:03:%02x", cfg.MACLast),
		Ports:       cfg.Ports,
		LineRateBps: lineRate,
		RxFifoBytes: cfg.RxFifoBytes,
		MAC:         [6]byte{0x02, 0x82, 0x57, 0x60, 0x00, cfg.MACLast},
		Clk:         cfg.Clk,
		Mem:         k.Mem,
		CapDMA:      cfg.CapDMA,
	}
	if cfg.BusLimited {
		ncfg.BusRateBps, ncfg.BusCostTX, ncfg.BusCostRX = nic.DefaultBusConfig()
	}
	card, err := nic.New(ncfg)
	if err != nil {
		return nil, err
	}
	if err := card.RegisterPCI(k.PCI); err != nil {
		return nil, err
	}
	// Boot-time kernel configuration: detach every port from the kernel
	// driver so user space (DPDK) can claim it.
	for i := 0; i < cfg.Ports; i++ {
		if errno := k.PCI.Unbind(card.Port(i).BDF()); errno != hostos.OK {
			return nil, fmt.Errorf("core: unbinding port %d: %v", i, errno)
		}
	}
	return &Machine{Name: cfg.Name, K: k, Card: card, clk: cfg.Clk}, nil
}

// NewCVM creates a cVM on this machine (boots the Intravisor on first
// use).
func (m *Machine) NewCVM(name string) (*intravisor.CVM, error) {
	return m.NewCVMSized(name, cvmMem)
}

// NewCVMSized creates a cVM with a non-default window (Scenario 4's
// sharded stack needs room for many connections' socket buffers).
func (m *Machine) NewCVMSized(name string, size uint64) (*intravisor.CVM, error) {
	if m.IV == nil {
		iv, err := intravisor.New(m.K)
		if err != nil {
			return nil, err
		}
		m.IV = iv
	}
	c, err := m.IV.CreateCVM(name, size)
	if err != nil {
		return nil, err
	}
	c.Start()
	return c, nil
}

// Env is one network environment — the DPDK segment, buffer pool,
// bound ports, stack and main loop of either a Baseline process or a
// cVM.
type Env struct {
	Name string
	CVM  *intravisor.CVM // nil for Baseline processes
	Seg  *dpdk.MemSeg
	Pool *dpdk.Mempool
	Devs []*dpdk.EthDev
	Stk  *fstack.Stack
	Loop *fstack.Loop
}

// CapMode reports whether the environment runs the CHERI port.
func (e *Env) CapMode() bool { return e.Seg.CapMode() }

// NowNS reads the clock the way this environment's code must: directly
// for a Baseline process, through the Intravisor trampoline for a cVM
// ("in cVMs we can't directly access the timers of the system", §IV).
func (e *Env) NowNS(k *hostos.Kernel) int64 {
	if e.CVM != nil {
		return e.CVM.NowNS()
	}
	s, ns, _ := k.Syscall(hostos.SysClockGettime, hostos.Args{hostos.ClockMonotonicRaw})
	return int64(s)*1e9 + int64(ns)
}

// IfCfg binds one NIC port to an interface address.
type IfCfg struct {
	Port int
	Name string
	IP   fstack.IPv4Addr
	Mask fstack.IPv4Addr
}

// NewBaselineEnv builds a non-CHERI process environment: its segment is
// plain kernel memory, accesses are raw, DMA is raw.
func (m *Machine) NewBaselineEnv(name string, ifs []IfCfg) (*Env, error) {
	return m.NewBaselineEnvSized(name, ifs, segSize, poolBufs)
}

// NewBaselineEnvSized is NewBaselineEnv with explicit segment and
// buffer-pool sizing, for workloads with many concurrent connections
// (each costs its socket buffers from the segment).
func (m *Machine) NewBaselineEnvSized(name string, ifs []IfCfg, segBytes uint64, pool int) (*Env, error) {
	base, errno := m.K.Pages.Alloc(segBytes)
	if errno != hostos.OK {
		return nil, fmt.Errorf("core: allocating segment for %s: %v", name, errno)
	}
	seg, err := dpdk.NewMemSeg(m.K.Mem, base, segBytes, cheri.NullCap, false)
	if err != nil {
		return nil, err
	}
	return m.finishEnv(name, nil, seg, ifs, pool)
}

// NewCVMEnv builds a CHERI cVM environment: the segment lives inside
// the cVM's window and every access is capability-checked.
func (m *Machine) NewCVMEnv(name string, ifs []IfCfg) (*Env, error) {
	cvm, err := m.NewCVM(name)
	if err != nil {
		return nil, err
	}
	return m.NewCVMEnvOn(cvm, ifs)
}

// NewCVMEnvOn builds the environment inside an existing cVM.
func (m *Machine) NewCVMEnvOn(cvm *intravisor.CVM, ifs []IfCfg) (*Env, error) {
	return m.NewCVMEnvOnSized(cvm, ifs, segSize, poolBufs)
}

// NewCVMEnvOnSized is NewCVMEnvOn with explicit segment and buffer-pool
// sizing, for workloads whose connections carry multi-MiB socket
// buffers (Scenario 5's window-scaled WAN flows).
func (m *Machine) NewCVMEnvOnSized(cvm *intravisor.CVM, ifs []IfCfg, segBytes uint64, pool int) (*Env, error) {
	// The DPDK segment occupies the upper part of the window (the lower
	// part stays for application data).
	segBase := cvm.Base() + cvm.Size() - segBytes
	segCap, err := cvm.DDC().SetAddr(segBase).SetBounds(segBytes)
	if err != nil {
		return nil, err
	}
	seg, err := dpdk.NewMemSeg(m.K.Mem, segBase, segBytes, segCap, true)
	if err != nil {
		return nil, err
	}
	return m.finishEnv(cvm.Name, cvm, seg, ifs, pool)
}

// finishEnv probes the ports, builds the pool, stack and loop.
func (m *Machine) finishEnv(name string, cvm *intravisor.CVM, seg *dpdk.MemSeg, ifs []IfCfg, poolN int) (*Env, error) {
	pool, err := dpdk.NewMempool(seg, name+"-pkt", poolN, dpdk.DefaultDataroom)
	if err != nil {
		return nil, err
	}
	stk := fstack.NewStack(seg, pool, m.clk)
	env := &Env{Name: name, CVM: cvm, Seg: seg, Pool: pool, Stk: stk}
	for _, ic := range ifs {
		dev, err := dpdk.Probe(m.K.PCI, m.Card.Port(ic.Port).BDF(), seg)
		if err != nil {
			return nil, err
		}
		if err := dev.Configure(ringSize, ringSize, pool); err != nil {
			return nil, err
		}
		if err := dev.Start(); err != nil {
			return nil, err
		}
		stk.AddNetIF(ic.Name, dev, ic.IP, ic.Mask)
		env.Devs = append(env.Devs, dev)
	}
	env.Loop = &fstack.Loop{Stk: stk}
	return env, nil
}

// Peer is a remote link partner: its own machine with an ideal NIC and
// a Baseline environment, wired to one local port.
type Peer struct {
	M   *Machine
	Env *Env
}

// NewPeer builds a link partner for localPort with the given address.
func NewPeer(name string, clk hostos.Clock, localPort *nic.Port, ip, mask fstack.IPv4Addr, macLast byte) (*Peer, error) {
	return NewPeerAtRate(name, clk, localPort, ip, mask, macLast, 0)
}

// NewPeerAtRate is NewPeer with an explicit line rate, for testbeds
// whose local port is faster than the paper's 1 GbE (both ends of a
// cable must serialize at the same rate). Fast peers also get a larger
// environment: they carry many concurrent flows, and each connection's
// socket buffers come out of the segment.
func NewPeerAtRate(name string, clk hostos.Clock, localPort *nic.Port, ip, mask fstack.IPv4Addr, macLast byte, lineRateBps float64) (*Peer, error) {
	p, err := newPeerUnwired(name, clk, ip, mask, macLast, lineRateBps, lineRateBps > 1e9)
	if err != nil {
		return nil, err
	}
	nic.Connect(localPort, p.M.Card.Port(0))
	return p, nil
}

// NewPeerOverLink is NewPeerAtRate with a netem impairment pipeline in
// place of the direct cable — the far end of a WAN path. The peer is
// always sized like a fast one: window-scaled flows buffer multi-MiB
// per connection.
func NewPeerOverLink(name string, clk hostos.Clock, localPort *nic.Port, ip, mask fstack.IPv4Addr, macLast byte, lineRateBps float64, link netem.Config) (*Peer, *netem.Link, error) {
	p, err := newPeerUnwired(name, clk, ip, mask, macLast, lineRateBps, true)
	if err != nil {
		return nil, nil, err
	}
	l := netem.Connect(clk, localPort, p.M.Card.Port(0), link)
	return p, l, nil
}

// newPeerUnwired builds a link partner without attaching its port; big
// sizes the environment for multi-MiB socket buffers or many flows.
func newPeerUnwired(name string, clk hostos.Clock, ip, mask fstack.IPv4Addr, macLast byte, lineRateBps float64, big bool) (*Peer, error) {
	m, err := NewMachine(MachineConfig{
		Name: name, Clk: clk, Ports: 1, BusLimited: false, MACLast: macLast,
		LineRateBps: lineRateBps,
	})
	if err != nil {
		return nil, err
	}
	segBytes, pool := uint64(segSize), poolBufs
	if big {
		segBytes, pool = peerFastSegSize, peerFastPoolBufs
	}
	env, err := m.NewBaselineEnvSized(name, []IfCfg{{Port: 0, Name: "eth0", IP: ip, Mask: mask}}, segBytes, pool)
	if err != nil {
		return nil, err
	}
	return &Peer{M: m, Env: env}, nil
}

// mask24 is the /24 netmask used throughout the testbed.
var mask24 = fstack.IP4(255, 255, 255, 0)

// localIP and peerIP give the addressing plan: port i uses subnet
// 10.0.i.0/24 with .1 local and .2 remote.
func localIP(port int) fstack.IPv4Addr { return fstack.IP4(10, 0, byte(port), 1) }
func peerIP(port int) fstack.IPv4Addr  { return fstack.IP4(10, 0, byte(port), 2) }
