// Package core composes the substrates into the paper's systems and
// carries the experiment drivers. Topology construction is declarative:
// every scenario is a testbed.Spec — one spec struct per layout —
// handed to testbed.Build, which wires the simulated Morello box with
// its dual-port 82576 NIC, the CheriBSD-like kernel, the Intravisor
// with its cVMs, the DPDK+F-Stack userspace network stack, and the
// remote link partners. The three evaluation layouts of §III:
//
//   - Baseline: no CHERI. The stack and application run as ordinary
//     processes (MMU isolation), raw buffers, direct host syscalls.
//   - Scenario 1: full replication. Each of two cVMs contains the whole
//     application + F-Stack + DPDK stack on its own Ethernet port.
//   - Scenario 2: split. cVM1 runs F-Stack + DPDK; one (uncontended) or
//     two (contended) application cVMs call the F-Stack API through
//     cross-compartment gates, serialized by the stack mutex.
//
// Past the paper, four forward-looking layouts ride on the same spec
// model: Scenario 3 (§VI's future work — DPDK separated into its own
// cVM, gates on the datapath), Scenario 4 (multi-core scaling — a
// multi-queue RSS port with one CPU-budgeted stack shard per queue
// pair), Scenario 5 (a lossy high-BDP WAN behind a netem.Link,
// comparing go-back-N against SACK + window scaling), and Scenario 6
// (the composition: the sharded stack of Scenario 4 driving many flows
// through the impaired — and per-direction asymmetric — bottleneck of
// Scenario 5).
//
// The package also carries the experiment drivers that regenerate every
// table and figure of the evaluation (bandwidth.go, latency.go,
// fig3.go, table1.go), and the scenario registry (registry.go) the
// cherinet command consumes.
package core

import (
	"repro/internal/fstack"
	"repro/internal/testbed"
)

// The construction layer lives in internal/testbed; these aliases keep
// the measurement drivers and their callers on the familiar names.
type (
	// Setup is a wired topology (a testbed.Bed).
	Setup = testbed.Bed
	// Env is one network environment of the local box.
	Env = testbed.Env
	// Peer is a remote link partner.
	Peer = testbed.Peer
	// GatedAPI is an application compartment's gated F-Stack API view.
	GatedAPI = testbed.GatedAPI
)

// mask24, localIP and peerIP forward to the testbed addressing plan:
// port i uses subnet 10.0.i.0/24 with .1 local and .2 remote.
var mask24 = testbed.Mask24

func localIP(port int) fstack.IPv4Addr { return testbed.LocalIP(port) }
func peerIP(port int) fstack.IPv4Addr  { return testbed.PeerIP(port) }
