package core

import (
	"fmt"

	"repro/internal/cheri"
	"repro/internal/hostos"
	"repro/internal/intravisor"
)

// Fig3Report is the outcome of the compartmentalization-violation
// experiment (paper Fig. 3): an application modified "to access memory
// ranges outside their valid boundaries".
type Fig3Report struct {
	// Fault is the CHERI exception the attacker received.
	Fault *cheri.Fault
	// AttackerState is the attacker cVM's lifecycle state afterwards.
	AttackerState intravisor.State
	// VictimUnaffected reports that the victim cVM kept running and its
	// memory kept its integrity.
	VictimUnaffected bool
	// Leaked is what the attacker managed to read (must be empty).
	Leaked []byte
}

// String renders the report like the paper's console excerpt.
func (r Fig3Report) String() string {
	return fmt.Sprintf("attacker: %v (state=%v); victim unaffected: %v",
		r.Fault, r.AttackerState, r.VictimUnaffected)
}

// RunFig3 reproduces Fig. 3 on a Scenario 1 layout: cVM2's application
// dereferences addresses inside cVM1's window; CHERI answers with a
// capability out-of-bounds exception and cVM1 is untouched.
func RunFig3() (Fig3Report, error) {
	s, err := NewScenario1(hostos.NewRealClock())
	if err != nil {
		return Fig3Report{}, err
	}
	victim := s.Envs[0].CVM
	attacker := s.Envs[1].CVM

	// The victim stores a secret in its window.
	secret := []byte("flight-plan: do-not-leak")
	if err := victim.Store(victim.Base()+0x40, secret); err != nil {
		return Fig3Report{}, err
	}

	// The attacker tries a direct load of the victim's memory through
	// its own DDC — the modified application of §IV.
	leak := make([]byte, len(secret))
	rep := Fig3Report{}
	err = attacker.Load(victim.Base()+0x40, leak)
	if f, ok := err.(*cheri.Fault); ok {
		rep.Fault = f
	} else if err == nil {
		rep.Leaked = leak
	}
	rep.AttackerState = attacker.State()

	// The attacker also tries to derive a capability that would reach
	// outside its window (monotonicity stops it before any access).
	if _, err := attacker.DeriveBuf(victim.Base(), 16); err == nil {
		rep.Leaked = append(rep.Leaked, '!')
	}

	// The victim must be alive and intact.
	got := make([]byte, len(secret))
	if err := victim.Load(victim.Base()+0x40, got); err == nil &&
		string(got) == string(secret) && victim.State() != intravisor.StateTrapped {
		rep.VictimUnaffected = true
	}
	return rep, nil
}
