package core

import (
	"bytes"
	"testing"

	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// pump advances a Scenario 2 setup in virtual time.
func pumpS2(s *Setup, clk *sim.VClock, ticks int) {
	loops := s.Loops()
	for i := 0; i < ticks; i++ {
		for _, l := range loops {
			l.RunOnce()
		}
		clk.Advance(5000)
	}
}

func TestGatedAPIFullSocketLifecycle(t *testing.T) {
	clk := sim.NewVClock()
	s, err := NewScenario2(clk, 1)
	if err != nil {
		t.Fatal(err)
	}
	api := s.Apps[0]

	// The peer runs a plain echo-ish sink; here we run OUR server in the
	// app cVM and connect from the peer to exercise Accept through the
	// gates.
	lfd, errno := api.Socket(fstack.SockStream)
	if errno != hostos.OK {
		t.Fatal(errno)
	}
	if errno := api.Bind(lfd, fstack.IPv4Addr{}, 7777); errno != hostos.OK {
		t.Fatal(errno)
	}
	if errno := api.Listen(lfd, 4); errno != hostos.OK {
		t.Fatal(errno)
	}
	ep := api.EpollCreate()
	if errno := api.EpollCtl(ep, fstack.EpollCtlAdd, lfd, fstack.EPOLLIN); errno != hostos.OK {
		t.Fatal(errno)
	}

	// Peer connects.
	pstk := s.Peers[0].Env.Stk
	cfd, _ := pstk.Socket(fstack.SockStream)
	if errno := pstk.Connect(cfd, localIP(0), 7777); errno != hostos.EINPROGRESS {
		t.Fatal(errno)
	}
	var afd int = -1
	var peerAddr fstack.IPv4Addr
	for i := 0; i < 4000 && afd < 0; i++ {
		pumpS2(s, clk, 1)
		var evs [4]fstack.Event
		if n, _ := api.EpollWait(ep, evs[:]); n > 0 && evs[0].Events&fstack.EPOLLIN != 0 {
			fd, ip, _, errno := api.Accept(lfd)
			if errno == hostos.OK {
				afd = fd
				peerAddr = ip
			}
		}
	}
	if afd < 0 {
		t.Fatal("accept through gates never completed")
	}
	if peerAddr != peerIP(0) {
		t.Fatalf("peer address %v, want %v", peerAddr, peerIP(0))
	}

	// Peer sends; app reads through the gate.
	msg := bytes.Repeat([]byte("gate-crossing "), 100)
	pstk.Write(cfd, msg)
	var got []byte
	buf := make([]byte, 4096)
	for i := 0; i < 4000 && len(got) < len(msg); i++ {
		pumpS2(s, clk, 1)
		for {
			n, errno := api.Read(afd, buf)
			if errno != hostos.OK || n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("cross-compartment read corrupted: %d of %d bytes", len(got), len(msg))
	}

	// App writes back; peer receives.
	reply := bytes.Repeat([]byte{0xC5}, 3000)
	if n, errno := api.Write(afd, reply); errno != hostos.OK || n != len(reply) {
		t.Fatalf("gated write: n=%d errno=%v", n, errno)
	}
	var back []byte
	for i := 0; i < 4000 && len(back) < len(reply); i++ {
		pumpS2(s, clk, 1)
		for {
			n, errno := pstk.Read(cfd, buf)
			if errno != hostos.OK || n == 0 {
				break
			}
			back = append(back, buf[:n]...)
		}
	}
	if !bytes.Equal(back, reply) {
		t.Fatalf("gated write corrupted: %d of %d", len(back), len(reply))
	}
	if errno := api.Close(afd); errno != hostos.OK {
		t.Fatal(errno)
	}
	if errno := api.Close(lfd); errno != hostos.OK {
		t.Fatal(errno)
	}
	// Crossings were counted.
	if s.Local.IV.Crossings.Load() == 0 {
		t.Fatal("no domain crossings recorded")
	}
}

func TestGatedWriteCachesStagedBuffer(t *testing.T) {
	clk := sim.NewVClock()
	s, err := NewScenario2(clk, 1)
	if err != nil {
		t.Fatal(err)
	}
	api := s.Apps[0]
	// Write to a nonexistent fd: errno path exercises staging anyway.
	buf := make([]byte, 64)
	if _, errno := api.Write(999, buf); errno != hostos.EBADF {
		t.Fatalf("bad fd write: %v", errno)
	}
	// Same buffer again: staged copy is skipped (pointer cache), same
	// errno.
	if _, errno := api.Write(999, buf); errno != hostos.EBADF {
		t.Fatalf("bad fd write (cached): %v", errno)
	}
	// Oversized and empty writes are rejected client-side.
	if _, errno := api.Write(3, make([]byte, testbed.StageWriteSize+1)); errno != hostos.EINVAL {
		t.Fatalf("oversized write: %v", errno)
	}
	if _, errno := api.Write(3, nil); errno != hostos.EINVAL {
		t.Fatalf("empty write: %v", errno)
	}
}

func TestScenario2RequiresValidAppCount(t *testing.T) {
	if _, err := NewScenario2(sim.NewVClock(), 0); err == nil {
		t.Fatal("0 apps accepted")
	}
	if _, err := NewScenario2(sim.NewVClock(), 3); err == nil {
		t.Fatal("3 apps accepted")
	}
}

func TestScenarioTopologies(t *testing.T) {
	clk := sim.NewVClock()
	bd, err := NewBaselineDual(clk)
	if err != nil {
		t.Fatal(err)
	}
	if len(bd.Envs) != 2 || len(bd.Peers) != 2 || bd.Envs[0].CapMode() {
		t.Fatalf("baseline dual: %d envs, %d peers, cap=%v",
			len(bd.Envs), len(bd.Peers), bd.Envs[0].CapMode())
	}
	s1, err := NewScenario1(sim.NewVClock())
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Envs) != 2 || !s1.Envs[0].CapMode() || s1.Envs[0].CVM == nil {
		t.Fatal("scenario 1 must run two capability cVM envs")
	}
	// cVM windows are disjoint compartments.
	a, b := s1.Envs[0].CVM, s1.Envs[1].CVM
	if a.Base() < b.Base()+b.Size() && b.Base() < a.Base()+a.Size() {
		t.Fatal("cVM windows overlap")
	}
	s2, err := NewScenario2(sim.NewVClock(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Envs) != 1 || len(s2.Apps) != 2 || s2.Gates == nil {
		t.Fatal("scenario 2 shape wrong")
	}
	if s2.AppCVM(0) == s2.AppCVM(1) {
		t.Fatal("apps share a cVM")
	}
}

func TestEnvNowNSPaths(t *testing.T) {
	clk := sim.NewVClock()
	clk.Advance(123456789)
	b, err := NewBaselineSingle(clk)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: direct syscall path. The kernel clock is the REAL clock
	// inside the kernel; here we only verify the call works and is
	// monotonic.
	t0 := b.Envs[0].NowNS(b.Local.K)
	t1 := b.Envs[0].NowNS(b.Local.K)
	if t1 < t0 {
		t.Fatal("baseline clock went backwards")
	}
	s1, err := NewScenario1(sim.NewVClock())
	if err != nil {
		t.Fatal(err)
	}
	c0 := s1.Envs[0].NowNS(s1.Local.K)
	c1 := s1.Envs[0].NowNS(s1.Local.K)
	if c1 < c0 {
		t.Fatal("cVM trampoline clock went backwards")
	}
	if s1.Local.IV.Crossings.Load() < 2 {
		t.Fatal("cVM clock reads must cross the trampoline")
	}
}
