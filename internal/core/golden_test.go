package core

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

// The golden files under testdata were captured from the pre-testbed
// constructors (the hand-wired NewBaselineEnv*/NewCVMEnv*/NewPeer*
// family) immediately before the migration to declarative specs. The
// spec-built topologies must reproduce every summary byte-identically:
// the redesign moves wiring, not behavior.

// skipUnderRace skips a golden run when the race detector is active:
// the runs are single-goroutine lockstep and their slowdown under the
// detector pushes the package past the test timeout.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("byte-exact golden run; nothing for the race detector, too slow under it")
	}
}

// assertGolden compares got against testdata/<name>, printing a
// line-anchored diff on mismatch.
func assertGolden(t *testing.T, name, got string) {
	t.Helper()
	want, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		g, w := "", ""
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Errorf("%s line %d differs:\n  got:  %q\n  want: %q", name, i+1, g, w)
		}
	}
	if !t.Failed() {
		t.Fatalf("%s differs only in length: got %d bytes, want %d", name, len(got), len(want))
	}
}

// TestGoldenTable2 pins Table II — Baseline dual/single, Scenario 1,
// Scenario 2 uncontended and contended — against the pre-migration
// capture.
func TestGoldenTable2(t *testing.T) {
	skipUnderRace(t)
	blocks, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	assertGolden(t, "table2.golden", FormatTable2(blocks))
}

// TestGoldenScenario3 pins the device-gate layout's bandwidth summary.
func TestGoldenScenario3(t *testing.T) {
	skipUnderRace(t)
	var b strings.Builder
	for _, dir := range []Direction{LocalIsServer, LocalIsClient} {
		s, err := NewScenario3(sim.NewVClock())
		if err != nil {
			t.Fatal(err)
		}
		res, err := BandwidthPair(s, dir)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "SCENARIO 3 — %s\n", dir)
		for _, r := range res {
			fmt.Fprintf(&b, "  %v\n", r)
		}
	}
	assertGolden(t, "scenario3.golden", b.String())
}

// TestGoldenScenario4 pins a short sharding sweep (1 and 4 shards,
// 8 flows, both modes).
func TestGoldenScenario4(t *testing.T) {
	skipUnderRace(t)
	results, err := RunScenario4Sweep([]int{1, 4}, 8, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	assertGolden(t, "scenario4.golden", FormatScenario4(results))
}

// TestGoldenScenario5 pins a short WAN loss sweep (0 and 0.5 % i.i.d.
// loss, 20 ms RTT, 100 Mbit/s bottleneck, both modes and both stacks).
func TestGoldenScenario5(t *testing.T) {
	skipUnderRace(t)
	results, err := RunScenario5LossSweep([]float64{0, 0.005}, 10e6, 100e6, "", 300e6)
	if err != nil {
		t.Fatal(err)
	}
	assertGolden(t, "scenario5.golden", FormatScenario5("golden loss sweep", results))
}

// TestGoldenScenario9 pins a short request/response sweep: one
// open-loop and one closed-loop point per protocol on a clean link,
// both modes. Per-request quantiles are merged across two shards, so
// any steering, epoll-ordering or histogram-merge drift shows up as a
// byte diff.
func TestGoldenScenario9(t *testing.T) {
	skipUnderRace(t)
	var b strings.Builder
	for _, proto := range []string{"http", "dns"} {
		open, err := RunScenario9RateSweep(proto, 2, 8, []float64{4000}, netem.Config{}, 100e6)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(FormatScenario9(proto+" golden open-loop point", open))
		closed, err := RunScenario9ConcurrencySweep(proto, 2, []int{8}, netem.Config{}, 100e6)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(FormatScenario9(proto+" golden closed-loop point", closed))
	}
	assertGolden(t, "scenario9.golden", b.String())
}

// TestGoldenScenario10 pins the fault-storm grid: {baseline, cheri} x
// {clean, 2-fault storm} on the short test configuration. Any drift in
// crash semantics, restart ordering, reconnect timing or the MTTR
// probe shows up as a byte diff in the dip/blast/MTTR columns.
func TestGoldenScenario10(t *testing.T) {
	skipUnderRace(t)
	results, err := runScenario10Cells(Parallelism(), Scenario10Config{
		Shards: 3, Faults: 2, MTBFNS: 40e6,
		Conns: 2, DurationNS: 300e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertGolden(t, "scenario10.golden", FormatScenario10(results))
}
