package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cheri"
	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/iperf"
)

// FFWriteConfig parameterizes the ff_write() latency experiments of
// Figs. 4-6. The paper measures 1 million iterations; the default here
// is smaller so the full suite stays fast — `cherinet` exposes the full
// count.
type FFWriteConfig struct {
	// Iterations is the number of timed ff_write calls.
	Iterations int
	// IntervalNS spaces consecutive timed writes ("we increased the
	// interval between two consecutive ff_write", §IV).
	IntervalNS int64
	// Payload is the ff_write byte count (one MSS of data by default).
	Payload int
}

// DefaultFFWriteConfig mirrors the evaluation at a CI-friendly scale.
func DefaultFFWriteConfig() FFWriteConfig {
	return FFWriteConfig{Iterations: 20000, IntervalNS: 20_000, Payload: 1448}
}

// LatencySet is one box of the Figs. 4-6 box plots.
type LatencySet struct {
	Label   string
	Samples []int64 // ns per ff_write, unfiltered (IQR happens in stats)
}

// latPort is the TCP port the latency probes connect to.
const latPort = uint16(5301)

// startPeerSinks launches every peer loop with a byte-sink server
// (accept + read + discard) and returns a stop function.
func startPeerSinks(s *Setup, flows int) (stop func()) {
	var wg sync.WaitGroup
	for _, p := range s.Peers {
		sinks := make([]*iperf.Server, flows)
		for i := range sinks {
			sinks[i] = iperf.NewServer(fstack.IPv4Addr{}, latPort+uint16(i))
		}
		api := p.Env.Loop.Locked()
		p.Env.Loop.OnLoop = func(now int64) bool {
			for _, sv := range sinks {
				sv.Step(api, now)
			}
			return true
		}
		p.Env.Loop.Yield = true
		wg.Add(1)
		go func(l *fstack.Loop) {
			defer wg.Done()
			l.Run()
		}(p.Env.Loop)
	}
	return func() {
		for _, p := range s.Peers {
			p.Env.Loop.Stop()
		}
		wg.Wait()
	}
}

// inLoopProbe drives connect-then-measure inside an environment's main
// loop (the Baseline / Scenario 1 layout). The produced samples time
// ff_write through the environment's write path: plain Write for the
// Baseline, capability WriteCap for a cVM — bracketed by the
// environment's clock reads (direct syscall vs Intravisor trampoline).
type inLoopProbe struct {
	env     *Env
	k       *hostos.Kernel
	cfg     FFWriteConfig
	dstIP   fstack.IPv4Addr
	dstPort uint16

	payload []byte
	bufCap  cheri.Cap // cVM variant: capability over the app buffer

	fd, epfd int
	phase    int // 0=init 1=connecting 2=measuring 3=done
	nextAt   int64
	samples  []int64
	err      hostos.Errno
}

// newInLoopProbe prepares the probe and, for cVM environments, stages
// the application buffer inside the compartment window.
func newInLoopProbe(env *Env, k *hostos.Kernel, cfg FFWriteConfig, dst fstack.IPv4Addr, port uint16) (*inLoopProbe, error) {
	p := &inLoopProbe{env: env, k: k, cfg: cfg, dstIP: dst, dstPort: port}
	p.payload = make([]byte, cfg.Payload)
	for i := range p.payload {
		p.payload[i] = byte(i)
	}
	if env.CVM != nil {
		// The buffer is application data in the cVM's own window; the
		// capability derived over it is what ff_write receives.
		addr := env.CVM.Base() + 0x100
		if err := env.CVM.Store(addr, p.payload); err != nil {
			return nil, err
		}
		buf, err := env.CVM.DeriveBuf(addr, uint64(len(p.payload)))
		if err != nil {
			return nil, err
		}
		p.bufCap = buf
	}
	return p, nil
}

// step is the loop callback body; returns false when measurement ends.
func (p *inLoopProbe) step(now int64) bool {
	api := p.env.Loop.Locked()
	switch p.phase {
	case 0:
		fd, errno := api.Socket(fstack.SockStream)
		if errno != hostos.OK {
			p.err = errno
			p.phase = 3
			return false
		}
		p.fd = fd
		p.epfd = api.EpollCreate()
		api.EpollCtl(p.epfd, fstack.EpollCtlAdd, p.fd, fstack.EPOLLOUT)
		if errno := api.Connect(p.fd, p.dstIP, p.dstPort); errno != hostos.EINPROGRESS && errno != hostos.OK {
			p.err = errno
			p.phase = 3
			return false
		}
		p.phase = 1
	case 1:
		var evs [2]fstack.Event
		n, _ := api.EpollWait(p.epfd, evs[:])
		for i := 0; i < n; i++ {
			if evs[i].Events&(fstack.EPOLLERR|fstack.EPOLLHUP) != 0 {
				p.err = hostos.ECONNREFUSED
				p.phase = 3
				return false
			}
			if evs[i].Events&fstack.EPOLLOUT != 0 {
				p.phase = 2
				p.nextAt = now
			}
		}
	case 2:
		if now < p.nextAt {
			return true
		}
		// The measured region: clock read, ff_write, clock read —
		// exactly the probe of §IV. For a cVM both clock reads cross
		// into the Intravisor.
		var t0, t1 int64
		var errno hostos.Errno
		if p.env.CVM != nil {
			t0 = p.env.CVM.NowNS()
			_, errno = api.WriteCap(p.fd, p.env.CVM.Mem(), p.bufCap, len(p.payload))
			t1 = p.env.CVM.NowNS()
		} else {
			t0 = p.directNow()
			_, errno = api.Write(p.fd, p.payload)
			t1 = p.directNow()
		}
		if errno == hostos.OK {
			p.samples = append(p.samples, t1-t0)
		} else if errno != hostos.EAGAIN {
			p.err = errno
			p.phase = 3
			return false
		}
		p.nextAt = now + p.cfg.IntervalNS
		if len(p.samples) >= p.cfg.Iterations {
			api.Close(p.fd)
			p.phase = 3
			return false
		}
	}
	return true
}

// directNow is the Baseline's clock path: an ordinary host syscall.
func (p *inLoopProbe) directNow() int64 {
	s, ns, _ := p.k.Syscall(hostos.SysClockGettime, hostos.Args{hostos.ClockMonotonicRaw})
	return int64(s)*1e9 + int64(ns)
}

// measureInLoop runs one probe per environment of the setup
// concurrently and returns their sample sets.
func measureInLoop(s *Setup, cfg FFWriteConfig) ([]LatencySet, error) {
	stop := startPeerSinks(s, 1)
	defer stop()

	probes := make([]*inLoopProbe, len(s.Envs))
	for i, env := range s.Envs {
		pr, err := newInLoopProbe(env, s.Local.K, cfg, peerIP(i), latPort)
		if err != nil {
			return nil, err
		}
		probes[i] = pr
		env.Loop.OnLoop = pr.step
		env.Loop.Yield = true
	}
	var wg sync.WaitGroup
	for _, env := range s.Envs {
		wg.Add(1)
		go func(l *fstack.Loop) {
			defer wg.Done()
			l.Run()
		}(env.Loop)
	}
	wg.Wait()
	out := make([]LatencySet, len(probes))
	for i, pr := range probes {
		if pr.err != hostos.OK {
			return nil, fmt.Errorf("core: probe %s failed: %v", s.Envs[i].Name, pr.err)
		}
		out[i] = LatencySet{Label: s.Envs[i].Name, Samples: pr.samples}
	}
	return out, nil
}

// gatedProbe measures ff_write from a Scenario 2 application cVM: the
// app runs as its own thread, every API call crosses the gate into the
// stack compartment, and the measured time includes the crossing, the
// F-Stack mutex, and the capability copy (§IV).
func gatedProbe(api *GatedAPI, cfg FFWriteConfig, dst fstack.IPv4Addr, port uint16) ([]int64, hostos.Errno) {
	fd, errno := api.Socket(fstack.SockStream)
	if errno != hostos.OK {
		return nil, errno
	}
	epfd := api.EpollCreate()
	api.EpollCtl(epfd, fstack.EpollCtlAdd, fd, fstack.EPOLLOUT)
	if errno := api.Connect(fd, dst, port); errno != hostos.EINPROGRESS && errno != hostos.OK {
		return nil, errno
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var evs [2]fstack.Event
		n, _ := api.EpollWait(epfd, evs[:])
		ready := false
		for i := 0; i < n; i++ {
			if evs[i].Events&(fstack.EPOLLERR|fstack.EPOLLHUP) != 0 {
				return nil, hostos.ECONNREFUSED
			}
			if evs[i].Events&fstack.EPOLLOUT != 0 {
				ready = true
			}
		}
		if ready {
			break
		}
		if time.Now().After(deadline) {
			return nil, hostos.ETIMEDOUT
		}
		time.Sleep(10 * time.Microsecond)
	}
	payload := make([]byte, cfg.Payload)
	for i := range payload {
		payload[i] = byte(i)
	}
	samples := make([]int64, 0, cfg.Iterations)
	for len(samples) < cfg.Iterations {
		t0 := api.App.NowNS()
		_, errno := api.Write(fd, payload)
		t1 := api.App.NowNS()
		switch errno {
		case hostos.OK:
			samples = append(samples, t1-t0)
		case hostos.EAGAIN:
			// back off, the stack drains at line rate
		default:
			return samples, errno
		}
		if cfg.IntervalNS > 0 {
			time.Sleep(time.Duration(cfg.IntervalNS))
		}
	}
	api.Close(fd)
	return samples, hostos.OK
}

// hammer saturates ff_write from an application cVM until stop closes —
// the second application of the contended Scenario 2.
func hammer(api *GatedAPI, payload int, dst fstack.IPv4Addr, port uint16, stop <-chan struct{}) {
	fd, errno := api.Socket(fstack.SockStream)
	if errno != hostos.OK {
		return
	}
	if errno := api.Connect(fd, dst, port); errno != hostos.EINPROGRESS && errno != hostos.OK {
		return
	}
	buf := make([]byte, payload)
	for {
		select {
		case <-stop:
			api.Close(fd)
			return
		default:
		}
		api.Write(fd, buf)
	}
}

// MeasureFig4 regenerates Fig. 4: ff_write() in Scenario 1 vs the
// two-process Baseline (four boxes).
func MeasureFig4(cfg FFWriteConfig) ([]LatencySet, error) {
	clk := hostos.NewRealClock()
	base, err := NewBaselineDual(clk)
	if err != nil {
		return nil, err
	}
	baseSets, err := measureInLoop(base, cfg)
	if err != nil {
		return nil, err
	}
	for i := range baseSets {
		baseSets[i].Label = fmt.Sprintf("Baseline (cVM%d)", i+1)
	}
	s1, err := NewScenario1(hostos.NewRealClock())
	if err != nil {
		return nil, err
	}
	s1Sets, err := measureInLoop(s1, cfg)
	if err != nil {
		return nil, err
	}
	for i := range s1Sets {
		s1Sets[i].Label = fmt.Sprintf("Scenario 1 (cVM%d)", i+1)
	}
	return append(baseSets, s1Sets...), nil
}

// measureScenario2 runs the gated probe with `apps` application cVMs
// (1 = uncontended, 2 = contended) and returns the measured app's set.
func measureScenario2(cfg FFWriteConfig, apps int) (LatencySet, error) {
	s, err := NewScenario2(hostos.NewRealClock(), apps)
	if err != nil {
		return LatencySet{}, err
	}
	stop := startPeerSinks(s, apps)
	defer stop()
	// The stack cVM's main loop runs with no embedded app.
	s.Envs[0].Loop.Yield = true
	go s.Envs[0].Loop.Run()
	defer s.Envs[0].Loop.Stop()

	var hammerStop chan struct{}
	var hammerDone sync.WaitGroup
	if apps == 2 {
		hammerStop = make(chan struct{})
		hammerDone.Add(1)
		go func() {
			defer hammerDone.Done()
			hammer(s.Apps[1], cfg.Payload, peerIP(0), latPort+1, hammerStop)
		}()
	}
	samples, errno := gatedProbe(s.Apps[0], cfg, peerIP(0), latPort)
	if hammerStop != nil {
		close(hammerStop)
		hammerDone.Wait()
	}
	if errno != hostos.OK {
		return LatencySet{}, fmt.Errorf("core: scenario 2 probe: %v", errno)
	}
	label := "Scenario 2 (uncontended)"
	if apps == 2 {
		label = "Scenario 2 (contended)"
	}
	return LatencySet{Label: label, Samples: samples}, nil
}

// MeasureFig5 regenerates Fig. 5: ff_write() in uncontended Scenario 2
// vs the single-process Baseline.
func MeasureFig5(cfg FFWriteConfig) ([]LatencySet, error) {
	base, err := NewBaselineSingle(hostos.NewRealClock())
	if err != nil {
		return nil, err
	}
	baseSets, err := measureInLoop(base, cfg)
	if err != nil {
		return nil, err
	}
	baseSets[0].Label = "Baseline"
	s2, err := measureScenario2(cfg, 1)
	if err != nil {
		return nil, err
	}
	return append(baseSets, s2), nil
}

// MeasureFig6 regenerates Fig. 6: uncontended vs contended Scenario 2.
func MeasureFig6(cfg FFWriteConfig) ([]LatencySet, error) {
	unc, err := measureScenario2(cfg, 1)
	if err != nil {
		return nil, err
	}
	con, err := measureScenario2(cfg, 2)
	if err != nil {
		return nil, err
	}
	return []LatencySet{unc, con}, nil
}
