package core

import (
	"os"
	"testing"

	"repro/internal/stats"
)

// smallCfg keeps latency tests fast; benches and the CLI use bigger
// counts.
func smallCfg() FFWriteConfig {
	return FFWriteConfig{Iterations: 300, IntervalNS: 20_000, Payload: 1448}
}

// needRealClock gates the wall-clock latency-shape tests: their
// quartile comparisons measure the host's scheduler as much as the
// simulator, and they flake when CI machines run under CPU load. Set
// CHERINET_REALCLOCK=1 to run them (the benchmarks report the same
// figures unconditionally).
func needRealClock(t *testing.T) {
	t.Helper()
	if os.Getenv("CHERINET_REALCLOCK") == "" {
		t.Skip("real-clock latency shapes flake under CI CPU load; set CHERINET_REALCLOCK=1 to run")
	}
}

func TestFig4ShapeS1vsBaseline(t *testing.T) {
	needRealClock(t)
	sets, err := MeasureFig4(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 4 {
		t.Fatalf("want 4 boxes, got %d", len(sets))
	}
	boxes := make([]stats.Box, len(sets))
	for i, s := range sets {
		boxes[i] = stats.CleanBox(s.Samples)
		t.Logf("%-22s %v", s.Label, boxes[i])
	}
	// Shape: Scenario 1 sits above Baseline by a small fixed overhead
	// (paper: ≈125 ns of musl-Intravisor indirection), far under 10x.
	// The fixed offset shows most clearly at the fast end of the
	// distribution (Q1); medians wander with host noise.
	baseQ1 := (boxes[0].Q1 + boxes[1].Q1) / 2
	s1Q1 := (boxes[2].Q1 + boxes[3].Q1) / 2
	if s1Q1 <= baseQ1 {
		t.Errorf("Scenario 1 (q1=%.0f ns) should cost more than Baseline (q1=%.0f ns)", s1Q1, baseQ1)
	}
	if s1Q1 > baseQ1*10 {
		t.Errorf("Scenario 1 overhead too large: %.0f vs %.0f ns", s1Q1, baseQ1)
	}
}

func TestFig5ShapeS2UncontendedVsBaseline(t *testing.T) {
	needRealClock(t)
	sets, err := MeasureFig5(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 {
		t.Fatalf("want 2 boxes, got %d", len(sets))
	}
	base := stats.CleanBox(sets[0].Samples)
	s2 := stats.CleanBox(sets[1].Samples)
	t.Logf("%-26s %v", sets[0].Label, base)
	t.Logf("%-26s %v", sets[1].Label, s2)
	// Shape: the extra cross-cVM jump + mutex cost more than Baseline
	// but stay within the same order of magnitude (paper: ≈+200 ns over
	// Scenario 1's cost).
	if s2.Median <= base.Median {
		t.Errorf("Scenario 2 (%.0f ns) should cost more than Baseline (%.0f ns)",
			s2.Median, base.Median)
	}
	if s2.Median > base.Median*30 {
		t.Errorf("uncontended Scenario 2 overhead out of band: %.0f vs %.0f ns",
			s2.Median, base.Median)
	}
}

func TestFig6ShapeContentionDominates(t *testing.T) {
	needRealClock(t)
	cfg := smallCfg()
	cfg.Iterations = 800 // contention statistics need more samples
	sets, err := MeasureFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	unc := stats.CleanBox(sets[0].Samples)
	con := stats.CleanBox(sets[1].Samples)
	t.Logf("%-26s %v", sets[0].Label, unc)
	t.Logf("%-26s %v", sets[1].Label, con)
	// Shape: mutex contention dominates (paper: ≈152x, ~19 µs). The
	// magnitude is host-dependent; demand a clear (2x) mean blow-up and
	// let the bench report the real figure.
	if con.Mean < unc.Mean*2 {
		t.Errorf("contended mean %.0f ns not clearly above uncontended %.0f ns",
			con.Mean, unc.Mean)
	}
}

func TestFig3CapabilityViolation(t *testing.T) {
	rep, err := RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", rep)
	if rep.Fault == nil {
		t.Fatal("no capability fault raised")
	}
	if rep.Fault.Kind.String() != "capability out-of-bounds" {
		t.Fatalf("fault kind %v, want capability out-of-bounds", rep.Fault.Kind)
	}
	if len(rep.Leaked) != 0 {
		t.Fatalf("attacker leaked %q", rep.Leaked)
	}
	if !rep.VictimUnaffected {
		t.Fatal("victim was affected")
	}
	if rep.AttackerState.String() != "trapped" {
		t.Fatalf("attacker state %v, want trapped", rep.AttackerState)
	}
}

func TestTable1Counts(t *testing.T) {
	row, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", row)
	if row.TotalLines < 1000 {
		t.Fatalf("implausible fstack size: %d lines", row.TotalLines)
	}
	if row.CapLines == 0 {
		t.Fatal("no capability-integration lines found")
	}
	// The port should stay a small fraction of the library, as in the
	// paper (0.99%); allow up to 10%.
	if row.Percent > 10 {
		t.Fatalf("capability lines %.1f%% of library", row.Percent)
	}
}
