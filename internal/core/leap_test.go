package core

import (
	"testing"

	"repro/internal/sim"
)

// The event-driven driver's correctness contract: leaping the clock
// over quiescent tick rounds must be invisible. This file pins it on a
// recorded Scenario 5 run — the seeded lossy WAN exercises every
// deadline source at once (netem delay lines, the bottleneck
// serializer, RTO/delack/persist timers, iperf's duration end) — by
// running the identical configuration under the tick-stepped reference
// driver and the leaping driver and comparing what each did.

// leapRecording is one instrumented run.
type leapRecording struct {
	visited map[int64]bool // grid points the driver iterated at
	active  []int64        // grid points where the bed reported due work
	frames  []string       // the local stack's frame trace (dir, ns, len, hash)
	result  string         // the formatted scenario output
}

// recordScenario5 runs the golden Scenario 5 configuration with the
// given driver mode and records every visited grid point plus the
// local stack's full frame trace.
func recordScenario5(t *testing.T, leap bool) leapRecording {
	t.Helper()
	rec := leapRecording{visited: map[int64]bool{}}
	oldLeap, oldHook := leapEnabled, visitHook
	leapEnabled = leap
	visitHook = func(now int64, active bool) {
		rec.visited[now] = true
		if active {
			rec.active = append(rec.active, now)
		}
	}
	defer func() { leapEnabled, visitHook = oldLeap, oldHook }()

	s, err := NewScenario5(sim.NewVClock(), Scenario5Config{Modern: true, Link: s5TestLossyLink})
	if err != nil {
		t.Fatal(err)
	}
	tap := &traceTap{}
	s.Envs[0].Stk.SetTap(tap)
	r, err := Scenario5Bandwidth(s, 300e6)
	if err != nil {
		t.Fatal(err)
	}
	rec.frames = tap.events
	rec.result = FormatScenario5("leap equivalence", []Scenario5Result{r})
	return rec
}

// TestLeapVisitsSameEventGridPoints asserts the tentpole invariant:
// the leaping driver visits exactly the grid points at which the tick
// loop found work due (every event lands on the same 5 µs instant),
// every point it visits lies on the tick grid, and the measured result
// is byte-identical.
func TestLeapVisitsSameEventGridPoints(t *testing.T) {
	skipUnderRace(t)
	tick := recordScenario5(t, false)
	leap := recordScenario5(t, true)

	if tick.result != leap.result {
		t.Errorf("results differ:\n-- tick driver --\n%s\n-- leap driver --\n%s", tick.result, leap.result)
	}
	// Every frame the stack saw must cross at the same virtual instant
	// with identical bytes — the event history, not just its summary.
	if len(tick.frames) != len(leap.frames) {
		t.Errorf("frame counts differ: tick %d, leap %d", len(tick.frames), len(leap.frames))
	}
	for i := 0; i < len(tick.frames) && i < len(leap.frames); i++ {
		if tick.frames[i] != leap.frames[i] {
			t.Fatalf("frame %d differs:\n  tick: %s\n  leap: %s", i, tick.frames[i], leap.frames[i])
		}
	}
	if len(tick.active) == 0 {
		t.Fatal("tick run recorded no active grid points; the workload is broken")
	}
	if len(tick.active) != len(leap.active) {
		t.Errorf("active grid point counts differ: tick %d, leap %d", len(tick.active), len(leap.active))
	}
	for i := 0; i < len(tick.active) && i < len(leap.active); i++ {
		if tick.active[i] != leap.active[i] {
			t.Fatalf("active grid point %d differs: tick %d ns, leap %d ns", i, tick.active[i], leap.active[i])
		}
	}
	for at := range leap.visited {
		if at%bwTick != 0 {
			t.Fatalf("leap driver visited off-grid instant %d ns", at)
		}
		if !tick.visited[at] {
			t.Fatalf("leap driver visited %d ns, which the tick driver never reached", at)
		}
	}
	saved := 1 - float64(len(leap.visited))/float64(len(tick.visited))
	if len(leap.visited) >= len(tick.visited) {
		t.Errorf("leap driver visited %d grid points, tick driver %d: no iterations were saved",
			len(leap.visited), len(tick.visited))
	}
	t.Logf("tick iterations %d, leap iterations %d (%.1f%% skipped), events %d",
		len(tick.visited), len(leap.visited), saved*100, len(tick.active))
}

// TestLeapLandsOnTickGrid pins the grid-alignment arithmetic in
// isolation: deadlines that fall between grid points must be handled
// at the first grid point past them, exactly where the tick loop
// notices them.
func TestLeapLandsOnTickGrid(t *testing.T) {
	clk := sim.NewVClock()
	clk.Advance(3 * bwTick)
	start := clk.Now()
	// A deadline 12.3 µs past now sits inside the grid cell ending at
	// +15 µs; the tick loop first sees it there.
	next := start + 12_300
	k := (next - start + bwTick - 1) / bwTick
	if got, want := start+k*bwTick, start+int64(3*bwTick); got != want {
		t.Fatalf("leap target %d, want %d", got, want)
	}
	// A deadline exactly on the grid is its own target.
	next = start + 2*bwTick
	k = (next - start + bwTick - 1) / bwTick
	if got, want := start+k*bwTick, next; got != want {
		t.Fatalf("on-grid leap target %d, want %d", got, want)
	}
}
