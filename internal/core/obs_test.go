package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fstack"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// s5ObsConfig is a short lossy WAN point with every instrument on.
func s5ObsConfig(pcapDir string) Scenario5Config {
	return Scenario5Config{
		Modern: true,
		Link:   netem.Config{LossRate: 0.005, DelayNS: 5e6},
		Obs: testbed.ObsSpec{
			TraceEvents: 1 << 16,
			SampleNS:    1e6,
			Latency:     true,
			PcapDir:     pcapDir,
		},
	}
}

// TestScenario5Observability is the tentpole acceptance gate: a traced
// Scenario 5 run must yield a flight-recorder trace spanning at least 4
// event types from at least 3 layers, a valid Chrome trace-event JSON,
// sampled metrics, latency percentiles in the summary, and a non-empty
// link capture with the standard libpcap framing.
func TestScenario5Observability(t *testing.T) {
	dir := t.TempDir()
	r, err := RunScenario5(s5ObsConfig(dir), 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if r.Obs == nil || r.Obs.Trace == nil {
		t.Fatal("traced run returned no observability state")
	}

	// Flight recorder: breadth over event types and layers.
	evs := r.Obs.Trace.Snapshot()
	if len(evs) == 0 {
		t.Fatal("trace recorded no events")
	}
	types := make(map[obs.EventType]bool)
	layers := make(map[string]bool)
	for _, e := range evs {
		types[e.Type] = true
		layers[e.Type.Layer()] = true
	}
	if len(types) < 4 {
		t.Errorf("trace spans %d event types, want >= 4 (%v)", len(types), types)
	}
	if len(layers) < 3 {
		t.Errorf("trace spans %d layers, want >= 3 (%v)", len(layers), layers)
	}

	// Chrome exporter: the output must be one valid JSON object with a
	// traceEvents array covering the recorded events.
	var buf bytes.Buffer
	if err := r.Obs.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if len(decoded.TraceEvents) < len(evs) {
		t.Errorf("Chrome trace has %d events for %d recorded", len(decoded.TraceEvents), len(evs))
	}

	// Metrics sampler: the 100 ms run at a 1 ms interval must have
	// produced a timeseries.
	if n := r.Obs.Metrics.Samples(); n < 50 {
		t.Errorf("metrics sampled %d times, want >= 50", n)
	}

	// Latency percentiles surface in the human summary.
	out := FormatScenario5("traced", []Scenario5Result{r})
	for _, want := range []string{"p50=", "p99=", "p999=", "datapath", "rtt"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if r.Obs.Datapath.Count() == 0 || r.Obs.RTT.Count() == 0 {
		t.Errorf("latency histograms empty: datapath n=%d rtt n=%d",
			r.Obs.Datapath.Count(), r.Obs.RTT.Count())
	}

	// Link capture: standard libpcap magic and at least one record.
	data, err := os.ReadFile(filepath.Join(dir, "peer0.pcap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) <= 24 {
		t.Fatalf("pcap holds no records (%d bytes)", len(data))
	}
	if magic := binary.LittleEndian.Uint32(data); magic != 0xa1b2c3d4 {
		t.Fatalf("pcap magic %#x, want 0xa1b2c3d4", magic)
	}
}

// TestScenario5ObsExport drives one sweep point through the export
// path: per-point Chrome trace, metrics CSV and JSON must land under
// their directories and parse.
func TestScenario5ObsExport(t *testing.T) {
	dir := t.TempDir()
	so := Scenario5Obs{
		TraceDir:   filepath.Join(dir, "trace"),
		MetricsDir: filepath.Join(dir, "metrics"),
		PcapDir:    filepath.Join(dir, "pcap"),
	}
	cfg := Scenario5Config{Modern: true, Link: netem.Config{LossRate: 0.005, DelayNS: 5e6}}
	r, err := runScenario5Point(cfg, 100e6, []Scenario5Obs{so})
	if err != nil {
		t.Fatal(err)
	}
	if r.Obs == nil {
		t.Fatal("export destinations did not switch instruments on")
	}
	label := scenario5Label(cfg)

	raw, err := os.ReadFile(filepath.Join(so.TraceDir, label+".trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Error("exported trace is empty")
	}

	csvRaw, err := os.ReadFile(filepath.Join(so.MetricsDir, label+".metrics.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csvRaw)), "\n")
	if len(lines) < 2 {
		t.Fatalf("metrics CSV has %d lines, want header + samples", len(lines))
	}
	if !strings.HasPrefix(lines[0], "time_ns,") {
		t.Errorf("metrics CSV header %q missing time_ns column", lines[0])
	}
	for _, col := range []string{".conns", ".accept_queue"} {
		if !strings.Contains(lines[0], col) {
			t.Errorf("metrics CSV header %q missing per-env %s gauge", lines[0], col)
		}
	}

	jsonRaw, err := os.ReadFile(filepath.Join(so.MetricsDir, label+".metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	var mj any
	if err := json.Unmarshal(jsonRaw, &mj); err != nil {
		t.Fatalf("exported metrics JSON invalid: %v", err)
	}

	if _, err := os.Stat(filepath.Join(so.PcapDir, label, "peer0.pcap")); err != nil {
		t.Errorf("per-point pcap missing: %v", err)
	}
}

// TestGateCrossingEvents wires the flight recorder into a Scenario 2
// intravisor and checks that gated F-Stack calls leave EvGateCrossing
// events carrying the running crossing count.
func TestGateCrossingEvents(t *testing.T) {
	clk := sim.NewVClock()
	s, err := NewScenario2(clk, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace(1024)
	s.Local.IV.SetTrace(tr, clk.Now)

	api := s.Apps[0]
	before := s.Local.IV.Crossings.Load()
	api.Socket(fstack.SockStream) // one gated call is enough
	crossed := s.Local.IV.Crossings.Load() - before
	if crossed == 0 {
		t.Fatal("gated call did not cross")
	}
	var got int
	for _, e := range tr.Snapshot() {
		if e.Type == obs.EvGateCrossing {
			got++
		}
	}
	if got != int(crossed) {
		t.Fatalf("recorded %d gate-crossing events for %d crossings", got, crossed)
	}
}

// TestScenario4ShardedStatsConsistency is the sharded-stats invariant:
// at many instants mid-run, the aggregate StackStats must equal the sum
// of the per-shard snapshots, every counter must be monotonic, and the
// retransmit total must equal its fast/SACK/RTO breakdown.
func TestScenario4ShardedStatsConsistency(t *testing.T) {
	s, err := NewScenario4(sim.NewVClock(), Scenario4Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ss := s.Sharded

	checks, mismatches := 0, 0
	var prevTotal uint64
	iter := 0
	visitHook = func(now int64, active bool) {
		iter++
		if iter%64 != 0 {
			return
		}
		checks++
		agg := ss.Stats()
		sum := ss.ShardStats(0)
		for i := 1; i < ss.NumShards(); i++ {
			sh := ss.ShardStats(i)
			sum.Add(sh)
		}
		if agg != sum {
			mismatches++
			if mismatches == 1 {
				t.Errorf("at %d ns: aggregate %+v != per-shard sum %+v", now, agg, sum)
			}
		}
		if agg.Retransmit != agg.FastRetransmit+agg.SACKRetransmit+agg.RTORetransmit {
			t.Errorf("at %d ns: retransmit %d != breakdown %d+%d+%d", now,
				agg.Retransmit, agg.FastRetransmit, agg.SACKRetransmit, agg.RTORetransmit)
		}
		total := agg.RxFrames + agg.TxFrames + agg.Retransmit + agg.DupAcks
		if total < prevTotal {
			t.Errorf("at %d ns: counters went backward (%d < %d)", now, total, prevTotal)
		}
		prevTotal = total
	}
	defer func() { visitHook = nil }()

	if _, err := Scenario4Bandwidth(s, LocalIsClient, 8, 100e6); err != nil {
		t.Fatal(err)
	}
	if checks < 10 {
		t.Fatalf("only %d mid-run checks fired; the hook did not observe the run", checks)
	}
	if mismatches > 0 {
		t.Fatalf("%d/%d mid-run aggregate mismatches", mismatches, checks)
	}
}
