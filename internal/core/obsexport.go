package core

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/testbed"
)

// Scenario5Obs configures observability for a Scenario 5 sweep: which
// instruments each point's bed carries, and where the per-point exports
// land. The zero value disables everything (the sweeps' default).
type Scenario5Obs struct {
	// Spec is wired into every sweep point's bed (PcapDir is managed
	// per point — set PcapDir below instead).
	Spec testbed.ObsSpec
	// TraceDir, when non-empty, receives one Chrome trace-event JSON
	// per point (<label>.trace.json), loadable in Perfetto.
	TraceDir string
	// MetricsDir, when non-empty, receives the metrics timeseries per
	// point as <label>.metrics.csv and <label>.metrics.json.
	MetricsDir string
	// PcapDir, when non-empty, receives one subdirectory per point
	// holding that run's per-peer link captures.
	PcapDir string
}

// scenario5DefaultTrace and scenario5DefaultSample size the instruments
// when an export destination is given without explicit knobs.
const (
	scenario5DefaultTrace  = 65536
	scenario5DefaultSample = int64(1e6) // 1 ms virtual
)

// pointSpec resolves the ObsSpec for one labelled sweep point: export
// destinations imply their instruments, and captures go into a
// per-point subdirectory so points do not overwrite each other.
func (o Scenario5Obs) pointSpec(label string) testbed.ObsSpec {
	spec := o.Spec
	if o.TraceDir != "" && spec.TraceEvents == 0 {
		spec.TraceEvents = scenario5DefaultTrace
	}
	if o.MetricsDir != "" && spec.SampleNS == 0 {
		spec.SampleNS = scenario5DefaultSample
	}
	if o.TraceDir != "" || o.MetricsDir != "" {
		spec.Latency = true
	}
	if o.PcapDir != "" {
		spec.PcapDir = filepath.Join(o.PcapDir, label)
	}
	return spec
}

// export writes one point's trace and timeseries to the configured
// directories.
func (o Scenario5Obs) export(r Scenario5Result, label string) error {
	if r.Obs == nil {
		return nil
	}
	if o.TraceDir != "" && r.Obs.Trace != nil {
		if err := writeTo(o.TraceDir, label+".trace.json", func(f *os.File) error {
			return r.Obs.Trace.WriteChromeTrace(f)
		}); err != nil {
			return err
		}
	}
	if o.MetricsDir != "" && r.Obs.Metrics != nil {
		if err := writeTo(o.MetricsDir, label+".metrics.csv", func(f *os.File) error {
			return r.Obs.Metrics.WriteCSV(f)
		}); err != nil {
			return err
		}
		if err := writeTo(o.MetricsDir, label+".metrics.json", func(f *os.File) error {
			return r.Obs.Metrics.WriteJSON(f)
		}); err != nil {
			return err
		}
	}
	return nil
}

// writeTo creates dir/name and streams write into it.
func writeTo(dir, name string, write func(f *os.File) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("core: exporting %s: %w", name, err)
	}
	return f.Close()
}

// scenario5Label names one sweep point for export filenames:
// mode_recovery_loss_rtt, e.g. "baseline_sack_loss0.25_rtt20ms".
func scenario5Label(cfg Scenario5Config) string {
	mode := "baseline"
	if cfg.CapMode {
		mode = "cheri"
	}
	rec := "gbn"
	if cfg.Modern {
		rec = "sack"
	}
	return fmt.Sprintf("%s_%s_loss%.2f_rtt%dms", mode, rec, cfg.Link.LossRate*100, 2*cfg.Link.DelayNS/1e6)
}
