package core

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// Host-side parallelism. Every sweep a scenario runs is a grid of
// independent cells — each cell builds its own testbed.Bed with its own
// virtual clock, machines, links and stacks, and shares nothing with
// its neighbors (the per-bed frame arena in internal/nic closed the
// last global). RunCells exploits that: cells run on a bounded worker
// pool and results are committed by index, so the assembled report is
// byte-identical to the sequential order no matter how the host
// schedules the work.
//
// The knob below also gates the second level — parallel stepping of a
// bed's stack shards between virtual deadlines (testbed.ParallelLoopRunner)
// — so `-parallel 1` restores the fully sequential execution end to end.

// parallelismSetting holds the configured host parallelism: 0 means
// "default" (CHERINET_PARALLEL env override, else GOMAXPROCS).
var parallelismSetting atomic.Int32

// Parallelism reports the host worker count sweeps run cells on. The
// default is GOMAXPROCS (the CHERINET_PARALLEL environment variable
// overrides it, which is how CI pins both sides of its wall-clock
// comparison); SetParallelism overrides both. The result is never
// below 1.
func Parallelism() int {
	if n := int(parallelismSetting.Load()); n > 0 {
		return n
	}
	if s := os.Getenv("CHERINET_PARALLEL"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// SetParallelism sets the host worker count (cherinet's -parallel
// flag). n < 1 restores the default. Safe to call between runs; the
// report text of every scenario is byte-identical at any value.
func SetParallelism(n int) {
	if n < 1 {
		n = 0
	}
	parallelismSetting.Store(int32(n))
}

// RunCells runs n independent sweep cells on at most parallelism
// workers and returns the per-cell results in index order. Cells must
// be independent (each builds its own Bed); run is called with the
// cell index and may be invoked from concurrent goroutines when
// parallelism > 1.
//
// Error semantics: a sequential sweep stops at its first failing cell.
// Under parallelism later cells may already have run, so RunCells runs
// every cell and returns the error of the LOWEST failing index — the
// same error the sequential loop would have surfaced — with a nil
// result slice, keeping the caller-visible outcome deterministic.
func RunCells[T any](parallelism, n int, run func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			r, err := run(i)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = run(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
