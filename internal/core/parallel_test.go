package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/testbed"
)

// This file pins the host-parallelism contract: any -parallel value
// must produce byte-identical reports. Cell-level (RunCells) and
// shard-level (testbed.ShardStepper) parallelism are pinned
// separately, the latter down to the full per-shard frame trace
// against the tick-stepped sequential reference.

// withParallelism runs fn with the package parallelism knob pinned to
// n, restoring the default afterward.
func withParallelism(n int, fn func()) {
	SetParallelism(n)
	defer SetParallelism(0)
	fn()
}

func TestRunCellsMatchesSequentialOrder(t *testing.T) {
	const n = 40
	run := func(i int) (int, error) { return i * i, nil }
	seq, err := RunCells(1, n, run)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCells(8, n, run)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != n || len(par) != n {
		t.Fatalf("lengths: seq %d, par %d, want %d", len(seq), len(par), n)
	}
	for i := range seq {
		if seq[i] != par[i] || seq[i] != i*i {
			t.Fatalf("cell %d: seq %d, par %d, want %d", i, seq[i], par[i], i*i)
		}
	}
}

func TestRunCellsReturnsLowestIndexError(t *testing.T) {
	run := func(i int) (int, error) {
		if i == 7 || i == 23 {
			return 0, fmt.Errorf("cell %d exploded", i)
		}
		return i, nil
	}
	// Parallel runs execute every cell; the reported error must be the
	// lowest-index failure regardless of completion order, matching
	// what a sequential sweep reports first.
	for trial := 0; trial < 8; trial++ {
		out, err := RunCells(8, 40, run)
		if err == nil {
			t.Fatal("want error")
		}
		if !strings.Contains(err.Error(), "cell 7 exploded") {
			t.Fatalf("want lowest-index error, got %v", err)
		}
		if out != nil {
			t.Fatalf("want nil results on error, got %v", out)
		}
	}
	if _, err := RunCells(1, 40, run); err == nil || !strings.Contains(err.Error(), "cell 7 exploded") {
		t.Fatalf("sequential error mismatch: %v", err)
	}
}

// TestParallelSweepUnderRace drives both parallelism levels with real
// scenario work so `go test -race` patrols the worker pool and the
// parallel shard stepper. It deliberately does NOT skip under the race
// detector — that coverage is its whole point — and keeps the
// simulated durations small to stay fast there.
func TestParallelSweepUnderRace(t *testing.T) {
	withParallelism(4, func() {
		// Cell-level: four Scenario 5 cells (cap × modern at one loss
		// point) on four workers, each building and driving its own bed.
		results, err := RunScenario5LossSweep([]float64{0.005}, 5e6, 50e6, "", 50e6)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 4 {
			t.Fatalf("want 4 sweep cells, got %d", len(results))
		}
		// Shard-level: a four-shard bed stepped by four workers between
		// virtual instants (the fork/join schedule under test).
		r, err := RunScenario4(Scenario4Config{Shards: 4}, LocalIsServer, 4, 50e6)
		if err != nil {
			t.Fatal(err)
		}
		if r.Mbps <= 0 {
			t.Fatalf("sharded run moved no data: %+v", r)
		}
	})
}

// TestParallelReportsByteIdentical is the determinism acceptance: the
// formatted sweep report at -parallel 4 equals the -parallel 1 report
// byte for byte, across two impairment seeds.
func TestParallelReportsByteIdentical(t *testing.T) {
	skipUnderRace(t)
	for _, seed := range []int64{1, 7} {
		link := s5TestLossyLink
		link.Seed = seed
		cells := []Scenario5Config{
			{Link: link},
			{Modern: true, Link: link},
			{CapMode: true, Link: link},
			{CapMode: true, Modern: true, Link: link},
		}
		report := func(par int) string {
			var out string
			withParallelism(par, func() {
				results, err := RunCells(Parallelism(), len(cells), func(i int) (Scenario5Result, error) {
					return RunScenario5(cells[i], 200e6)
				})
				if err != nil {
					t.Fatal(err)
				}
				out = FormatScenario5(fmt.Sprintf("seed %d", seed), results)
			})
			return out
		}
		seq := report(1)
		par := report(4)
		if seq != par {
			t.Errorf("seed %d: reports differ\n-- parallel 1 --\n%s\n-- parallel 4 --\n%s", seed, seq, par)
		}
	}
}

// recordScenario4 runs one fixed four-shard Scenario 4 configuration
// and records every shard's full frame trace (direction, instant,
// length, content hash per frame) plus the formatted result. leap
// selects the event-driven or tick-stepped reference driver; par the
// host worker count.
func recordScenario4(t *testing.T, leap bool, par int) (traces [][]string, result string) {
	t.Helper()
	oldLeap := leapEnabled
	leapEnabled = leap
	defer func() { leapEnabled = oldLeap }()
	withParallelism(par, func() {
		clk := sim.NewVClock()
		s, err := NewScenario4(clk, Scenario4Config{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		taps := make([]*traceTap, s.Sharded.NumShards())
		for i := range taps {
			taps[i] = &traceTap{}
			s.Sharded.Shard(i).SetTap(taps[i])
		}
		r, err := Scenario4Bandwidth(s, LocalIsServer, 4, 60e6)
		if err != nil {
			t.Fatal(err)
		}
		for _, tap := range taps {
			traces = append(traces, tap.events)
		}
		result = FormatScenario4([]Scenario4Result{r})
	})
	return traces, result
}

// TestTickVsParallelShardTraceIdentical is the shard-parallelism
// tentpole invariant, in the style of the PR-5 leap test: the
// tick-stepped fully sequential reference and the leaping four-worker
// parallel run must agree on every frame every shard ever saw — same
// bytes, same virtual instant, same per-shard order — and on the
// formatted result.
func TestTickVsParallelShardTraceIdentical(t *testing.T) {
	skipUnderRace(t)
	// The bed must actually be eligible for parallel stepping, or this
	// test would silently compare sequential against sequential.
	probe, err := NewScenario4(sim.NewVClock(), Scenario4Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ps := testbed.NewShardStepper(probe, 4)
	if ps == nil {
		t.Fatal("scenario 4 bed is not eligible for parallel shard stepping")
	}
	ps.Close()

	tick, tickResult := recordScenario4(t, false, 1)
	par, parResult := recordScenario4(t, true, 4)

	if tickResult != parResult {
		t.Errorf("results differ:\n-- tick sequential --\n%s\n-- leap parallel --\n%s", tickResult, parResult)
	}
	if len(tick) != len(par) {
		t.Fatalf("shard counts differ: %d vs %d", len(tick), len(par))
	}
	total := 0
	for sh := range tick {
		if len(tick[sh]) != len(par[sh]) {
			t.Errorf("shard %d frame counts differ: tick %d, parallel %d", sh, len(tick[sh]), len(par[sh]))
		}
		for i := 0; i < len(tick[sh]) && i < len(par[sh]); i++ {
			if tick[sh][i] != par[sh][i] {
				t.Fatalf("shard %d frame %d differs:\n  tick:     %s\n  parallel: %s", sh, i, tick[sh][i], par[sh][i])
			}
		}
		total += len(tick[sh])
	}
	if total == 0 {
		t.Fatal("no frames traced; the workload is broken")
	}
	t.Logf("compared %d frames across %d shards", total, len(tick))
}
