//go:build !race

package core

// raceEnabled reports whether the race detector is active (see
// race_on.go). The byte-exact golden runs skip under it: they drive
// single-goroutine lockstep virtual time, so the detector can find
// nothing there, and their ~10x slowdown pushes the package past the
// test timeout.
const raceEnabled = false
