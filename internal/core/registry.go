package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/fstack"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The scenario registry: one table naming every experiment the
// reproduction can run, with a one-line description and the flags that
// apply. cmd/cherinet consumes it for dispatch, `cherinet list`, and
// near-miss suggestions; anything else (examples, future front ends)
// can iterate it the same way.

// RunOptions carries every flag the registered experiments understand.
// Run uses the values verbatim — zero is meaningful (e.g. Loss 0 is a
// loss-free sweep) — so programmatic callers should start from
// DefaultRunOptions and override fields, exactly as cmd/cherinet's
// flag defaults do.
type RunOptions struct {
	// FFWrite parameterizes the timed ff_write probes (figs 4-6).
	FFWrite FFWriteConfig
	// Shards is the maximum shard count for scenarios 4 and 6 (swept
	// in powers of two); Flows the concurrent iperf flow count.
	Shards int
	Flows  int
	// DurationNS is scenario 4's per-measurement traffic time.
	DurationNS int64
	// Loss, DelayNS, RateBps shape scenarios 5 and 6's links;
	// S5DurationNS is scenario 5's per-point traffic time.
	Loss         float64
	DelayNS      int64
	RateBps      float64
	S5DurationNS int64
	// AckRateBps, when positive, squeezes scenario 6's reverse (ACK)
	// channel — the per-direction link demo. S6DurationNS is scenario
	// 6's per-point traffic time.
	AckRateBps   float64
	S6DurationNS int64
	// Mode selects scenario 6's traffic direction: "upload" (the
	// sharded box sends) or "download" (the peer sends into the
	// RSS-cloned listeners through the impaired link).
	Mode string
	// Congestion picks the congestion-control algorithm for the modern
	// stacks of scenarios 5 and 6, and restricts scenario 7's sweep to
	// one controller ("" sweeps reno and cubic). S7DurationNS is
	// scenario 7's per-point traffic time.
	Congestion   string
	S7DurationNS int64
	// Conns is scenario 8's idle connection population; ConnRate its
	// offered churn rate in flows/s (the sweep ladder tops out there);
	// S8DurationNS its churn time per point.
	Conns        int
	ConnRate     float64
	S8DurationNS int64
	// Proto restricts scenario 9 to one protocol ("" runs http and
	// dns); S9Rate is its open-loop offered rate in requests/s (ladder
	// top), S9Conns the connection/concurrency count (ladder top for
	// the closed-loop sweep), S9DurationNS its measured time per point.
	// Scenario 9 shares -loss and -delay for its link impairment.
	Proto        string
	S9Rate       float64
	S9Conns      int
	S9DurationNS int64
	// Faults caps scenario 10's injected capability-fault count; MTBFNS
	// is its mean time between faults; S10Conns its per-shard closed-
	// loop connection count; S10DurationNS its measured time.
	Faults        int
	MTBFNS        int64
	S10Conns      int
	S10DurationNS int64
	// TraceDir, MetricsDir and PcapDir switch on the observability
	// layer for scenario 5: per-point Chrome trace-event JSON, metrics
	// timeseries (CSV + JSON), and per-peer link captures. Empty (the
	// default) keeps observability off and output byte-identical.
	TraceDir   string
	MetricsDir string
	PcapDir    string
}

// DefaultRunOptions mirrors the cherinet flag defaults.
func DefaultRunOptions() RunOptions {
	return RunOptions{
		FFWrite:       FFWriteConfig{Iterations: 100_000, IntervalNS: 20_000, Payload: 1448},
		Shards:        4,
		Flows:         8,
		DurationNS:    DefaultScenario4Duration,
		Loss:          0.01,
		DelayNS:       10e6,
		RateBps:       100e6,
		S5DurationNS:  DefaultScenario5Duration,
		S6DurationNS:  DefaultScenario6Duration,
		Mode:          "upload",
		S7DurationNS:  DefaultScenario7Duration,
		Conns:         100_000,
		ConnRate:      50_000,
		S8DurationNS:  DefaultScenario8Duration,
		S9Rate:        20_000,
		S9Conns:       32,
		S9DurationNS:  DefaultScenario9Duration,
		Faults:        4,
		MTBFNS:        60e6,
		S10Conns:      4,
		S10DurationNS: DefaultScenario10Duration,
	}
}

// ScenarioEntry is one registered experiment.
type ScenarioEntry struct {
	// Name is the cherinet subcommand.
	Name string
	// Desc is the one-line description `cherinet list` prints.
	Desc string
	// Flags names the flags that affect this experiment (for list).
	Flags string
	// Run executes the experiment and writes its report to w.
	Run func(o RunOptions, w io.Writer) error
}

// Registry lists every runnable experiment, in `cherinet all` order.
var Registry = []ScenarioEntry{
	{
		Name: "fig3",
		Desc: "capability out-of-bounds demonstration (applications escaping their boundaries)",
		Run: func(o RunOptions, w io.Writer) error {
			rep, err := RunFig3()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "FIG 3 — applications accessing memory outside their boundaries")
			fmt.Fprintln(w, " ", rep)
			return nil
		},
	},
	{
		Name: "table1",
		Desc: "capability-integration LoC of the F-Stack port",
		Run: func(o RunOptions, w io.Writer) error {
			row, err := RunTable1()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "TABLE I — capability-integration lines in the TCP/IP library")
			fmt.Fprintln(w, " ", row)
			return nil
		},
	},
	{
		Name: "table2",
		Desc: "TCP bandwidth, Baseline + Scenarios 1-2, both directions (virtual time)",
		Run: func(o RunOptions, w io.Writer) error {
			blocks, err := RunTable2()
			if err != nil {
				return err
			}
			fmt.Fprint(w, FormatTable2(blocks))
			return nil
		},
	},
	{
		Name:  "fig4",
		Desc:  "ff_write() execution time: Scenario 1 vs Baseline",
		Flags: "-iters -interval -payload",
		Run: func(o RunOptions, w io.Writer) error {
			sets, err := MeasureFig4(o.FFWrite)
			if err != nil {
				return err
			}
			printBoxes(w, "FIG 4 — ff_write() execution time: Scenario 1 vs Baseline (ns)", sets)
			return nil
		},
	},
	{
		Name:  "fig5",
		Desc:  "ff_write() execution time: Scenario 2 (uncontended) vs Baseline",
		Flags: "-iters -interval -payload",
		Run: func(o RunOptions, w io.Writer) error {
			sets, err := MeasureFig5(o.FFWrite)
			if err != nil {
				return err
			}
			printBoxes(w, "FIG 5 — ff_write() execution time: Scenario 2 (uncontended) vs Baseline (ns)", sets)
			return nil
		},
	},
	{
		Name:  "fig6",
		Desc:  "ff_write() execution time: Scenario 2 uncontended vs contended",
		Flags: "-iters -interval -payload",
		Run: func(o RunOptions, w io.Writer) error {
			sets, err := MeasureFig6(o.FFWrite)
			if err != nil {
				return err
			}
			printBoxes(w, "FIG 6 — ff_write() execution time: Scenario 2 uncontended vs contended (ns)", sets)
			return nil
		},
	},
	{
		Name: "scenario3",
		Desc: "future-work split: DPDK in its own cVM, gates on the datapath (bandwidth)",
		Run: func(o RunOptions, w io.Writer) error {
			for _, dir := range []Direction{LocalIsServer, LocalIsClient} {
				s, err := NewScenario3(sim.NewVClock())
				if err != nil {
					return err
				}
				res, err := BandwidthPair(s, dir)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "SCENARIO 3 — %s\n", dir)
				for _, r := range res {
					fmt.Fprintf(w, "  %v\n", r)
				}
			}
			return nil
		},
	},
	{
		Name:  "scenario4",
		Desc:  "multi-core scaling: sharded stack over RSS queues, goodput vs shard count",
		Flags: "-shards -flows -duration",
		Run: func(o RunOptions, w io.Writer) error {
			if o.Shards < 1 {
				return fmt.Errorf("-shards must be at least 1")
			}
			results, err := RunScenario4Sweep(powersOfTwo(o.Shards), o.Flows, o.DurationNS)
			if err != nil {
				return err
			}
			fmt.Fprint(w, FormatScenario4(results))
			return nil
		},
	},
	{
		Name:  "scenario5",
		Desc:  "lossy high-BDP WAN: goodput vs loss and vs BDP, go-back-N vs SACK+WS",
		Flags: "-loss -delay -rate -cc -s5duration -trace -metrics -pcap",
		Run: func(o RunOptions, w io.Writer) error {
			so := Scenario5Obs{TraceDir: o.TraceDir, MetricsDir: o.MetricsDir, PcapDir: o.PcapDir}
			losses := []float64{0, o.Loss / 4, o.Loss / 2, o.Loss}
			lossResults, err := RunScenario5LossSweep(losses, o.DelayNS, o.RateBps, o.Congestion, o.S5DurationNS, so)
			if err != nil {
				return err
			}
			fmt.Fprint(w, FormatScenario5(
				fmt.Sprintf("goodput vs random loss (%.0f Mbit/s bottleneck, %.0f ms RTT)",
					o.RateBps/1e6, float64(2*o.DelayNS)/1e6), lossResults))
			fmt.Fprintln(w)
			bdpResults, err := RunScenario5BDPSweep(
				[]int64{1e6, 5e6, 20e6, 50e6}, o.Loss/4, o.RateBps, o.Congestion, o.S5DurationNS, so)
			if err != nil {
				return err
			}
			fmt.Fprint(w, FormatScenario5(
				fmt.Sprintf("goodput vs path BDP (%.0f Mbit/s bottleneck, %.2f%% loss)",
					o.RateBps/1e6, o.Loss/4*100), bdpResults))
			return nil
		},
	},
	{
		Name:  "scenario6",
		Desc:  "composed: sharded stack over an impaired WAN, paper stack vs shards+SACK",
		Flags: "-shards -flows -mode -ackrate -cc -s6duration",
		Run: func(o RunOptions, w io.Writer) error {
			if o.Shards < 1 {
				return fmt.Errorf("-shards must be at least 1")
			}
			base := Scenario6Config{Congestion: o.Congestion}
			switch o.Mode {
			case "", "upload":
			case "download":
				base.Download = true
			default:
				return fmt.Errorf("-mode must be upload or download, not %q", o.Mode)
			}
			if o.AckRateBps > 0 {
				// Squeeze only the ACK channel; propagation stays
				// symmetric.
				base.Rev = &netem.Config{DelayNS: s6DelayNS, RateBps: o.AckRateBps}
			}
			results, err := RunScenario6Sweep(powersOfTwo(o.Shards), o.Flows, o.S6DurationNS, base)
			if err != nil {
				return err
			}
			fmt.Fprint(w, FormatScenario6(results))
			return nil
		},
	},
	{
		Name:  "scenario7",
		Desc:  "WAN utilization vs congestion control: reno vs cubic across the RTT ladder",
		Flags: "-cc -rate -s7duration",
		Run: func(o RunOptions, w io.Writer) error {
			ccs := []string{fstack.CCReno, fstack.CCCubic}
			if o.Congestion != "" {
				if !fstack.ValidCongestion(o.Congestion) {
					return fmt.Errorf("-cc must be one of %v, not %q",
						fstack.CongestionAlgos(), o.Congestion)
				}
				ccs = []string{o.Congestion}
			}
			// The paper's BDP ladder: 10/50/100/200 ms RTT.
			results, err := RunScenario7RTTSweep(
				[]int64{5e6, 25e6, 50e6, 100e6}, ccs, o.RateBps, o.S7DurationNS)
			if err != nil {
				return err
			}
			fmt.Fprint(w, FormatScenario7(results))
			return nil
		},
	},
	{
		Name:  "scenario8",
		Desc:  "connection churn storm: idle 100k-conn population held while rate-paced short flows churn",
		Flags: "-conns -rate -shards -s8duration",
		Run: func(o RunOptions, w io.Writer) error {
			if o.Shards < 1 {
				return fmt.Errorf("-shards must be at least 1")
			}
			if o.Conns < 1 {
				return fmt.Errorf("-conns must be at least 1")
			}
			if o.ConnRate <= 0 {
				return fmt.Errorf("the churn rate must be positive")
			}
			rates := []float64{o.ConnRate / 4, o.ConnRate / 2, o.ConnRate}
			results, err := RunScenario8RateSweep(o.Shards, o.Conns, rates, o.S8DurationNS)
			if err != nil {
				return err
			}
			fmt.Fprint(w, FormatScenario8(results))
			return nil
		},
	},
	{
		Name:  "scenario9",
		Desc:  "request/response tail latency: HTTP/1.1 keep-alive and DNS-shaped UDP, p50/p99/p999 per request",
		Flags: "-proto -rate -conns -loss -delay -shards -s9duration",
		Run: func(o RunOptions, w io.Writer) error {
			protos := []string{"http", "dns"}
			switch o.Proto {
			case "":
			case "http", "dns":
				protos = []string{o.Proto}
			default:
				return fmt.Errorf("-proto must be http or dns, not %q", o.Proto)
			}
			if o.Shards < 1 {
				return fmt.Errorf("-shards must be at least 1")
			}
			if o.S9Conns < 1 {
				return fmt.Errorf("-conns must be at least 1")
			}
			if o.S9Rate <= 0 {
				return fmt.Errorf("the request rate must be positive")
			}
			link := netem.Config{LossRate: o.Loss, DelayNS: o.DelayNS}
			rates := []float64{o.S9Rate / 4, o.S9Rate / 2, o.S9Rate}
			concs := []int{o.S9Conns / 4, o.S9Conns / 2, o.S9Conns}
			for i, c := range concs {
				if c < 1 {
					concs[i] = 1
				}
			}
			for _, proto := range protos {
				open, err := RunScenario9RateSweep(proto, o.Shards, o.S9Conns, rates, link, o.S9DurationNS)
				if err != nil {
					return err
				}
				fmt.Fprint(w, FormatScenario9(
					fmt.Sprintf("%s open-loop rate sweep (%.2f%% loss, %.0f ms RTT)",
						proto, o.Loss*100, float64(2*o.DelayNS)/1e6), open))
				closed, err := RunScenario9ConcurrencySweep(proto, o.Shards, concs, link, o.S9DurationNS)
				if err != nil {
					return err
				}
				fmt.Fprint(w, FormatScenario9(
					fmt.Sprintf("%s closed-loop concurrency sweep (%.2f%% loss, %.0f ms RTT)",
						proto, o.Loss*100, float64(2*o.DelayNS)/1e6), closed))
			}
			return nil
		},
	},
	{
		Name:  "scenario10",
		Desc:  "fault storm: injected capability faults, blast radius and time-to-recovery, baseline vs cheri",
		Flags: "-shards -faults -mtbf -conns -s10duration",
		Run: func(o RunOptions, w io.Writer) error {
			if o.Shards < 1 {
				return fmt.Errorf("-shards must be at least 1")
			}
			if o.Faults < 1 {
				return fmt.Errorf("-faults must be at least 1")
			}
			if o.MTBFNS <= 0 {
				return fmt.Errorf("-mtbf must be positive")
			}
			if o.S10Conns < 1 {
				return fmt.Errorf("-conns must be at least 1")
			}
			results, err := RunScenario10Sweep(Scenario10Config{
				Shards: o.Shards, Faults: o.Faults, MTBFNS: o.MTBFNS,
				Conns: o.S10Conns, DurationNS: o.S10DurationNS,
			})
			if err != nil {
				return err
			}
			fmt.Fprint(w, FormatScenario10(results))
			return nil
		},
	},
}

// LookupScenario resolves a registered name.
func LookupScenario(name string) (ScenarioEntry, bool) {
	for _, e := range Registry {
		if e.Name == name {
			return e, true
		}
	}
	return ScenarioEntry{}, false
}

// ScenarioNames lists the registered names in order.
func ScenarioNames() []string {
	names := make([]string, len(Registry))
	for i, e := range Registry {
		names[i] = e.Name
	}
	return names
}

// FormatScenarioList renders the registry for `cherinet list`.
func FormatScenarioList() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Registered experiments (cherinet <name> [flags], `cherinet all` runs every one):\n")
	for _, e := range Registry {
		flags := e.Flags
		if flags == "" {
			flags = "-"
		}
		fmt.Fprintf(&b, "  %-10s %s\n  %10s   flags: %s\n", e.Name, e.Desc, "", flags)
	}
	return b.String()
}

// SuggestScenarios returns registered names within a small edit
// distance of the (unknown) name, best first — the "did you mean"
// list.
func SuggestScenarios(name string) []string {
	type cand struct {
		name string
		dist int
	}
	var cands []cand
	for _, e := range Registry {
		d := editDistance(strings.ToLower(name), e.Name)
		// Accept near misses and prefix matches ("scenario" → all
		// scenarioN entries).
		if d <= 2 || strings.HasPrefix(e.Name, strings.ToLower(name)) {
			if d > 2 {
				d = 3 // prefix-only matches rank after true near misses
			}
			cands = append(cands, cand{e.Name, d})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	var out []string
	for _, c := range cands {
		out = append(out, c.name)
	}
	return out
}

// editDistance is the Levenshtein distance between two short names.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// powersOfTwo lists 1, 2, 4, ... up to max.
func powersOfTwo(max int) []int {
	var out []int
	for k := 1; k <= max; k *= 2 {
		out = append(out, k)
	}
	return out
}

// printBoxes renders latency sets as IQR-cleaned box summaries.
func printBoxes(w io.Writer, title string, sets []LatencySet) {
	fmt.Fprintln(w, title)
	for _, s := range sets {
		b := stats.CleanBox(s.Samples)
		fmt.Fprintf(w, "  %-26s %v\n", s.Label, b)
	}
}
