package core

import (
	"strings"
	"testing"
)

func TestRegistryLookupAndList(t *testing.T) {
	for _, name := range []string{"table2", "scenario4", "scenario6", "fig3"} {
		e, ok := LookupScenario(name)
		if !ok || e.Name != name || e.Desc == "" || e.Run == nil {
			t.Fatalf("registry entry %q broken: %+v ok=%v", name, e, ok)
		}
	}
	if _, ok := LookupScenario("nope"); ok {
		t.Fatal("unknown name resolved")
	}
	list := FormatScenarioList()
	for _, e := range Registry {
		if !strings.Contains(list, e.Name) || !strings.Contains(list, e.Desc) {
			t.Fatalf("list missing %q:\n%s", e.Name, list)
		}
	}
}

func TestRegistrySuggestNearMisses(t *testing.T) {
	sugg := SuggestScenarios("scenaro5")
	if len(sugg) == 0 || sugg[0] != "scenario5" {
		t.Fatalf("scenaro5 suggestions: %v", sugg)
	}
	// A prefix matches everything it prefixes.
	sugg = SuggestScenarios("fig")
	if len(sugg) < 4 {
		t.Fatalf("fig suggestions: %v", sugg)
	}
	if got := SuggestScenarios("zzzzzz"); len(got) != 0 {
		t.Fatalf("nonsense matched: %v", got)
	}
}
