package core

import (
	"fmt"
	"strings"

	"repro/internal/app"
	"repro/internal/faultplane"
	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// Scenario 10 — fault storm: blast radius and time-to-recovery. The
// paper's isolation argument is spatial (a compartment cannot read its
// neighbor's memory); this scenario measures the temporal half: when a
// compartment faults mid-run, how much of the service dies with it and
// for how long. The layout is a horizontally sharded HTTP service — K
// compartments, each a full stack on its own NIC port with its own
// load-generating peer — under a seeded Poisson schedule of injected
// capability faults aimed at shard 0, with the Intravisor supervisor
// restarting trapped compartments under exponential backoff.
//
// The modes differ exactly where the paper says they should: in
// capability mode each shard is its own cVM, so a fault traps one
// compartment and the supervisor restarts one stack while the siblings
// serve on; in Baseline the stack is one monolithic process, so the
// same fault takes every shard down (RestartSpec.FateSharing) and the
// whole service restarts. The report tabulates the goodput dip, the
// surviving shards' dip (the blast radius), requests lost, connection
// resets, restarts and give-ups, and per-fault time-to-recovery (fault
// instant to the faulted shard's first completed request).

const (
	// The service: one HTTP/1.1 keep-alive server per shard on the
	// scenario-9 request plane, driven closed-loop by resilient clients.
	s10Port      = uint16(8080)
	s10Backlog   = 128
	s10BufBytes  = 32 << 10
	s10SynCache  = 1024
	s10RespBytes = 1200

	// Environment sizing: every shard carries a full stack (and, in
	// capability mode, its own cVM window), so the machine's tagged
	// memory scales with the shard count.
	s10PerShardMem = uint64(20 << 20)
	s10BaseMem     = uint64(24 << 20)

	// s10Seed fixes the fault-arrival draw; the schedule is materialized
	// once, up front, and replayed identically every run.
	s10Seed = 10
	// s10FaultStartNS keeps the storm clear of connection establishment;
	// s10FaultWindow bounds it to the measured phase's first 4/5, so
	// every fault can observe a recovery before the clients drain.
	s10FaultStartNS = int64(60e6)

	// The supervisor policy: fast enough that MTTR is dominated by the
	// modeled recovery work, slow enough that backoff escalation across
	// repeated faults is visible in the per-fault MTTR column.
	s10BackoffNS    = int64(8e6)
	s10MaxBackoffNS = int64(32e6)
	s10MaxRetries   = 32

	// s10TimeoutNS is the clients' request timeout: a crashed stack is
	// silent, so a fully ACKed request needs an application clock to
	// notice the outage (app.HTTPClient.TimeoutNS).
	s10TimeoutNS = int64(50e6)
)

// DefaultScenario10Duration is the measured phase's virtual length.
const DefaultScenario10Duration = int64(600e6)

// Scenario10Config parameterizes one fault-storm point.
type Scenario10Config struct {
	// Shards is the compartment count: one stack + HTTP server per
	// shard, each on its own NIC port with its own peer.
	Shards int
	// CapMode runs every shard in its own cVM (fault contained); false
	// is the Baseline monolith (fault fate-shares across all shards).
	CapMode bool
	// Faults caps the injected capability-fault count; 0 is a clean run.
	Faults int
	// MTBFNS is the mean time between faults (exponential gaps).
	MTBFNS int64
	// Conns is the closed-loop keep-alive connection count per shard.
	Conns int
	// RespBytes is the HTTP response body size (0 = 1200).
	RespBytes int
	// DurationNS is the measured phase's virtual length.
	DurationNS int64
	// Obs selects the observability instruments wired into the bed.
	Obs testbed.ObsSpec
}

func (c *Scenario10Config) applyDefaults() {
	if c.RespBytes == 0 {
		c.RespBytes = 1200
	}
	if c.DurationNS == 0 {
		c.DurationNS = DefaultScenario10Duration
	}
}

// s10FaultTimes materializes the storm: a seeded Poisson arrival
// process, truncated to the configured count and to the window in which
// a recovery is still observable. Pure — NewScenario10 embeds it in the
// spec and Scenario10Run re-derives it for the MTTR probe.
func s10FaultTimes(cfg Scenario10Config) []int64 {
	if cfg.Faults <= 0 || cfg.MTBFNS <= 0 {
		return nil
	}
	end := s10FaultStartNS + cfg.DurationNS*4/5
	times := faultplane.ExpSchedule(s10Seed, cfg.MTBFNS, s10FaultStartNS, end)
	if len(times) > cfg.Faults {
		times = times[:cfg.Faults]
	}
	return times
}

// s10Tuning is the scenario-9 request-plane stack configuration.
func s10Tuning() *fstack.TCPTuning {
	return &fstack.TCPTuning{
		SACK:         true,
		SndBufBytes:  s10BufBytes,
		RcvBufBytes:  s10BufBytes,
		LazyBuffers:  true,
		SynCacheSize: s10SynCache,
	}
}

// NewScenario10 builds the sharded-service layout: K compartments
// ("shard0".."shardK-1"), each a plain single-queue stack on its own
// port, K peers as per-shard load generators, and — when the config
// declares faults — the capability-fault schedule against shard0 plus
// the supervisor's restart policy.
func NewScenario10(clk hostos.Clock, cfg Scenario10Config) (*testbed.Bed, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("core: scenario 10 needs at least one shard")
	}
	if cfg.Conns < 1 {
		return nil, fmt.Errorf("core: scenario 10 needs at least one connection per shard")
	}
	if cfg.Faults > 0 && cfg.MTBFNS <= 0 {
		return nil, fmt.Errorf("core: scenario 10 faults need a positive MTBF")
	}
	cfg.applyDefaults()
	comps := make([]testbed.CompartmentSpec, cfg.Shards)
	peers := make([]testbed.PeerSpec, cfg.Shards)
	for i := range comps {
		comps[i] = testbed.CompartmentSpec{
			Name: fmt.Sprintf("shard%d", i),
			CVM:  cfg.CapMode,
			Ifs:  []testbed.IfSpec{{Port: i}},
			Stack: testbed.StackSpec{
				Tuning: s10Tuning(),
			},
		}
		peers[i] = testbed.PeerSpec{
			Port:  i,
			Stack: testbed.StackSpec{Tuning: s10Tuning()},
		}
	}
	spec := testbed.Spec{
		Clk: clk,
		Machine: testbed.MachineSpec{
			Name:     "morello",
			MemBytes: s10BaseMem + uint64(cfg.Shards)*s10PerShardMem,
			Ports:    cfg.Shards,
			CapDMA:   cfg.CapMode,
		},
		Compartments: comps,
		Peers:        peers,
		Obs:          cfg.Obs,
	}
	if times := s10FaultTimes(cfg); len(times) > 0 {
		spec.Faults = testbed.FaultSpec{
			CapFaults: []testbed.CapFaultSpec{{Env: "shard0", At: times}},
			Restart: testbed.RestartSpec{
				BackoffNS:    s10BackoffNS,
				MaxBackoffNS: s10MaxBackoffNS,
				MaxRetries:   s10MaxRetries,
				// Baseline: one monolithic stack process — any fault
				// takes every shard down with it.
				FateSharing: !cfg.CapMode,
			},
		}
	}
	return testbed.Build(spec)
}

// Scenario10Result is one measured fault-storm point.
type Scenario10Result struct {
	Shards  int
	CapMode bool
	Faults  int // faults actually injected
	MTBFNS  int64
	Conns   int

	// Issued / Completed sum over every shard's client; Lost counts
	// requests abandoned on reset or timed-out connections, Resets the
	// connection re-establishments.
	Issued    uint64
	Completed uint64
	Lost      uint64
	Resets    uint64
	// Restarts / GiveUps are the supervisor's counters.
	Restarts int
	GiveUps  int
	// FaultedDone is the targeted shard's completed requests;
	// OtherMinDone/OtherMaxDone bound the surviving shards' (the blast
	// radius probe — in capability mode they should not dip).
	FaultedDone  uint64
	OtherMinDone uint64
	OtherMaxDone uint64
	// Recovered counts faults with an observed recovery; MTTRMeanNS and
	// MTTRMaxNS summarize fault instant -> first completed request on
	// the faulted shard.
	Recovered  int
	MTTRMeanNS int64
	MTTRMaxNS  int64
	// P50NS / P99NS are per-request latency quantiles merged across
	// every shard's client (outages land in the tail).
	P50NS int64
	P99NS int64
	// RunNS is the longest client's measured phase.
	RunNS int64
}

// CompletedPerSec is the achieved request completion rate.
func (r Scenario10Result) CompletedPerSec() float64 {
	if r.RunNS <= 0 {
		return 0
	}
	return float64(r.Completed) / (float64(r.RunNS) / 1e9)
}

// Scenario10Run drives one point on a built bed.
func Scenario10Run(s *testbed.Bed, cfg Scenario10Config) (res Scenario10Result, err error) {
	clk, ok := s.Clk.(*sim.VClock)
	if !ok {
		return res, fmt.Errorf("core: scenario 10 runs need the virtual clock")
	}
	cfg.applyDefaults()
	times := s10FaultTimes(cfg)
	res = Scenario10Result{
		Shards: cfg.Shards, CapMode: cfg.CapMode,
		Faults: len(times), MTBFNS: cfg.MTBFNS, Conns: cfg.Conns,
	}

	// One HTTP server per shard, stepped inside its compartment's loop.
	// The supervisor's restart hook re-runs the crashed shard's
	// application setup — close stale fds, listen again — exactly what
	// the restarted compartment's main() would do.
	srvs := make([]*app.HTTPServer, len(s.Envs))
	apis := make([]fstack.LockedAPI, len(s.Envs))
	for i, env := range s.Envs {
		srv := app.NewHTTPServer(fstack.IPv4Addr{}, s10Port, s10Backlog, cfg.RespBytes)
		api := env.Loop.Locked()
		srvs[i], apis[i] = srv, api
		env.Loop.OnLoop = func(now int64) bool { srv.Step(api, now); return true }
	}
	s.RestartHook = func(e *Env, now int64) {
		for i, env := range s.Envs {
			if env == e {
				srvs[i].Restart(apis[i])
			}
		}
	}

	// One resilient closed-loop client per shard on that shard's peer:
	// a reset connection counts its outstanding requests lost and
	// reconnects; a silently dead server is caught by the request
	// timeout.
	clis := make([]*app.HTTPClient, len(s.Peers))
	for i, p := range s.Peers {
		cli, cerr := app.NewHTTPClient(localIP(i), s10Port, cfg.Conns, nil, 0, cfg.DurationNS)
		if cerr != nil {
			return res, cerr
		}
		cli.Resilient = true
		cli.TimeoutNS = s10TimeoutNS
		papi := p.Env.Loop.Locked()
		p.Env.Loop.OnLoop = func(now int64) bool { cli.Step(papi, now); return true }
		clis[i] = cli
	}

	// The MTTR probe rides the faulted shard's completion stream: each
	// fault's recovery instant is the first completion of a request
	// issued strictly after it — responses already in flight at the
	// crash still land moments later and prove nothing, but a
	// post-fault request needs the restarted shard to answer. A burst
	// of faults with no such completion between them recovers at one
	// instant: the outage spanned them all.
	var mttr []int64
	if len(times) > 0 {
		k := 0
		clis[0].OnComplete = func(now, issued int64) {
			for k < len(times) && times[k] < issued {
				mttr = append(mttr, now-times[k])
				k++
			}
		}
	}

	steppers := []func(now int64){s.FaultStep}
	var timed []deadliner
	for _, srv := range srvs {
		timed = append(timed, srv)
	}
	for _, cli := range clis {
		timed = append(timed, cli)
	}
	done := func() bool {
		for _, srv := range srvs {
			if srv.Err() != hostos.OK {
				return true
			}
		}
		for _, cli := range clis {
			if !cli.Done() && cli.Err() == hostos.OK {
				return false
			}
		}
		return true
	}
	// Budget: the measured phase plus recovery slack — every fault can
	// cost a timeout plus a capped backoff before its shard serves
	// again, then the drain.
	slack := int64(2_000e6) + int64(len(times))*(s10TimeoutNS+s10MaxBackoffNS)
	if err = runVirtualUntil(clk, s, steppers, timed, done, cfg.DurationNS+slack); err != nil {
		return res, err
	}
	for i, srv := range srvs {
		if errno := srv.Err(); errno != hostos.OK {
			return res, fmt.Errorf("core: scenario 10 shard %d server failed: %v", i, errno)
		}
	}
	var merged stats.Histogram
	for i, cli := range clis {
		if errno := cli.Err(); errno != hostos.OK {
			return res, fmt.Errorf("core: scenario 10 shard %d client failed: %v", i, errno)
		}
		res.Issued += cli.Issued()
		res.Completed += cli.Completed()
		res.Lost += cli.Lost()
		res.Resets += cli.Resets()
		if cli.RunNS() > res.RunNS {
			res.RunNS = cli.RunNS()
		}
		merged.Merge(&cli.Hist)
		done := cli.Completed()
		if i == 0 {
			res.FaultedDone = done
		} else {
			if res.OtherMinDone == 0 || done < res.OtherMinDone {
				res.OtherMinDone = done
			}
			if done > res.OtherMaxDone {
				res.OtherMaxDone = done
			}
		}
	}
	res.P50NS = merged.Quantile(0.50)
	res.P99NS = merged.Quantile(0.99)
	if s.Super != nil {
		res.Restarts = s.Super.Restarts
		res.GiveUps = s.Super.GiveUps
	}
	res.Recovered = len(mttr)
	for _, d := range mttr {
		res.MTTRMeanNS += d
		if d > res.MTTRMaxNS {
			res.MTTRMaxNS = d
		}
	}
	if len(mttr) > 0 {
		res.MTTRMeanNS /= int64(len(mttr))
	}
	if err = s.CloseObs(); err != nil {
		return res, err
	}
	return res, nil
}

// RunScenario10 measures one configuration on a fresh virtual testbed.
func RunScenario10(cfg Scenario10Config) (Scenario10Result, error) {
	s, err := NewScenario10(sim.NewVClock(), cfg)
	if err != nil {
		return Scenario10Result{}, err
	}
	return Scenario10Run(s, cfg)
}

// runScenario10Cells runs the four-cell grid — {baseline, cheri} x
// {clean, storm} — on at most parallelism workers. The clean cells are
// the dip references for the matching storm cells.
func runScenario10Cells(parallelism int, cfg Scenario10Config) ([]Scenario10Result, error) {
	var cells []Scenario10Config
	for _, capMode := range []bool{false, true} {
		for _, faults := range []int{0, cfg.Faults} {
			cell := cfg
			cell.CapMode = capMode
			cell.Faults = faults
			cells = append(cells, cell)
		}
	}
	return RunCells(parallelism, len(cells), func(i int) (Scenario10Result, error) {
		r, err := RunScenario10(cells[i])
		if err != nil {
			return r, fmt.Errorf("cap=%v faults=%d: %w", cells[i].CapMode, cells[i].Faults, err)
		}
		return r, nil
	})
}

// RunScenario10Sweep measures the four-cell grid.
func RunScenario10Sweep(cfg Scenario10Config) ([]Scenario10Result, error) {
	return runScenario10Cells(Parallelism(), cfg)
}

// FormatScenario10 renders the grid: each storm row's dip columns are
// computed against the latest clean row of the same mode — total
// goodput dip, and the worst surviving shard's dip (the blast radius).
func FormatScenario10(results []Scenario10Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SCENARIO 10 — fault storm: blast radius and time-to-recovery\n")
	if len(results) > 0 {
		r := results[0]
		fmt.Fprintf(&b, "(%d shards, one compartment+server per shard, closed-loop ×%d per shard, cap faults at shard0, backoff %d..%d ms)\n",
			r.Shards, r.Conns, s10BackoffNS/1e6, s10MaxBackoffNS/1e6)
	}
	fmt.Fprintf(&b, "  %-9s %-6s %8s %6s %7s %5s %6s %8s %7s %16s %8s\n",
		"Mode", "Storm", "Done/s", "dip%", "blast%", "lost", "resets", "restarts", "giveups", "MTTR(ms) avg/max", "p99(ms)")
	clean := map[bool]Scenario10Result{}
	for _, r := range results {
		mode := "baseline"
		if r.CapMode {
			mode = "cheri"
		}
		storm := "clean"
		if r.Faults > 0 {
			storm = fmt.Sprintf("%dF", r.Faults)
		} else {
			clean[r.CapMode] = r
		}
		dip, blast := "-", "-"
		if ref, ok := clean[r.CapMode]; ok && r.Faults > 0 && ref.Completed > 0 {
			dip = fmt.Sprintf("%.1f", (1-float64(r.Completed)/float64(ref.Completed))*100)
			if ref.OtherMinDone > 0 {
				blast = fmt.Sprintf("%.1f", (1-float64(r.OtherMinDone)/float64(ref.OtherMinDone))*100)
			}
		}
		mttr := "-"
		if r.Recovered > 0 {
			mttr = fmt.Sprintf("%.1f/%.1f", float64(r.MTTRMeanNS)/1e6, float64(r.MTTRMaxNS)/1e6)
		}
		fmt.Fprintf(&b, "  %-9s %-6s %8.0f %6s %7s %5d %6d %8d %7d %16s %8.2f\n",
			mode, storm, r.CompletedPerSec(), dip, blast,
			r.Lost, r.Resets, r.Restarts, r.GiveUps, mttr, float64(r.P99NS)/1e6)
	}
	return b.String()
}
