package core

import (
	"testing"

	"repro/internal/sim"
)

// s10TestConfig is a moderate fault storm: two faults against shard0
// well inside the measured window (seeded arrivals at ~139 ms and
// ~200 ms), light closed-loop load, three shards so the blast-radius
// assertion has two survivors to check.
func s10TestConfig(capMode bool, faults int) Scenario10Config {
	return Scenario10Config{
		Shards: 3, CapMode: capMode,
		Faults: faults, MTBFNS: 40e6,
		Conns: 2, DurationNS: 300e6,
	}
}

// TestScenario10Clean pins the fault-free reference: no faults means no
// supervisor, no losses, no resets — the fault plane must be inert.
func TestScenario10Clean(t *testing.T) {
	for _, capMode := range []bool{false, true} {
		r, err := RunScenario10(s10TestConfig(capMode, 0))
		if err != nil {
			t.Fatal(err)
		}
		if r.Completed == 0 || r.Completed != r.Issued {
			t.Fatalf("cap=%v: issued %d, completed %d", capMode, r.Issued, r.Completed)
		}
		if r.Lost != 0 || r.Resets != 0 || r.Restarts != 0 || r.GiveUps != 0 {
			t.Fatalf("cap=%v: clean run saw faults: %+v", capMode, r)
		}
		if r.FaultedDone == 0 || r.OtherMinDone == 0 {
			t.Fatalf("cap=%v: a shard served nothing: %+v", capMode, r)
		}
	}
}

// TestScenario10BlastRadiusContained is the capability-mode acceptance
// gate: faults aimed at shard0 cost shard0 requests and restarts, while
// every surviving shard's completions stay within 10% of the clean run.
func TestScenario10BlastRadiusContained(t *testing.T) {
	clean, err := RunScenario10(s10TestConfig(true, 0))
	if err != nil {
		t.Fatal(err)
	}
	storm, err := RunScenario10(s10TestConfig(true, 2))
	if err != nil {
		t.Fatal(err)
	}
	if storm.Faults != 2 {
		t.Fatalf("injected %d faults, want 2", storm.Faults)
	}
	// Contained blast radius: one restart per fault, nothing fate-shares.
	if storm.Restarts != storm.Faults || storm.GiveUps != 0 {
		t.Fatalf("restarts %d giveups %d, want %d/0", storm.Restarts, storm.GiveUps, storm.Faults)
	}
	// The faulted shard pays: lost requests, resets, a visible dip.
	if storm.Lost == 0 || storm.Resets == 0 {
		t.Fatalf("faulted shard lost %d / reset %d, want both nonzero", storm.Lost, storm.Resets)
	}
	if storm.FaultedDone >= clean.FaultedDone {
		t.Fatalf("faulted shard completed %d >= clean %d", storm.FaultedDone, clean.FaultedDone)
	}
	// The survivors do not: within 10% of the clean run.
	if 10*storm.OtherMinDone < 9*clean.OtherMinDone {
		t.Fatalf("surviving shard dipped past 10%%: storm %d vs clean %d",
			storm.OtherMinDone, clean.OtherMinDone)
	}
	// Every fault's recovery was observed, and MTTR is sane: positive,
	// bounded by detection (request timeout) + capped backoff + slack.
	if storm.Recovered != storm.Faults {
		t.Fatalf("recovered %d of %d faults", storm.Recovered, storm.Faults)
	}
	if storm.MTTRMeanNS <= 0 || storm.MTTRMaxNS < storm.MTTRMeanNS {
		t.Fatalf("implausible MTTR mean=%d max=%d", storm.MTTRMeanNS, storm.MTTRMaxNS)
	}
	if storm.MTTRMaxNS > s10TimeoutNS+s10MaxBackoffNS+100e6 {
		t.Fatalf("MTTR max %d ns beyond timeout+backoff budget", storm.MTTRMaxNS)
	}
}

// TestScenario10BaselineFateShares is the baseline acceptance gate: the
// monolithic stack restarts whole — every shard traps on every fault,
// so the supervisor restarts shards x faults times and even the
// non-targeted shards lose requests.
func TestScenario10BaselineFateShares(t *testing.T) {
	clean, err := RunScenario10(s10TestConfig(false, 0))
	if err != nil {
		t.Fatal(err)
	}
	storm, err := RunScenario10(s10TestConfig(false, 2))
	if err != nil {
		t.Fatal(err)
	}
	if storm.Faults != 2 {
		t.Fatalf("injected %d faults, want 2", storm.Faults)
	}
	if want := storm.Faults * storm.Shards; storm.Restarts != want {
		t.Fatalf("restarts %d, want %d (every shard, every fault)", storm.Restarts, want)
	}
	// Fate sharing: the whole service dips, survivors included. The
	// per-fault outage is short (restart backoff + reset detection), so
	// the floor is modest — but a contained fault would leave the
	// non-targeted shards bit-identical, not merely close.
	if 50*storm.OtherMinDone >= 49*clean.OtherMinDone {
		t.Fatalf("baseline non-targeted shard only dipped from %d to %d, want > 2%%",
			clean.OtherMinDone, storm.OtherMinDone)
	}
	if storm.Completed >= clean.Completed {
		t.Fatalf("baseline storm completed %d >= clean %d", storm.Completed, clean.Completed)
	}
}

// TestScenario10Deterministic pins run-to-run determinism under the
// full storm machinery: crash, timeout reconnects, supervised restarts.
func TestScenario10Deterministic(t *testing.T) {
	for _, capMode := range []bool{false, true} {
		cfg := s10TestConfig(capMode, 2)
		a, err := RunScenario10(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunScenario10(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("cap=%v: identical configs diverged:\n  a: %+v\n  b: %+v", capMode, a, b)
		}
	}
}

// TestScenario10ParallelIdentical pins the host-parallelism contract on
// the four-cell grid: the formatted report is byte-identical whether
// the cells run sequentially or concurrently.
func TestScenario10ParallelIdentical(t *testing.T) {
	cfg := s10TestConfig(false, 2)
	seq, err := runScenario10Cells(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := runScenario10Cells(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if FormatScenario10(seq) != FormatScenario10(par) {
		t.Fatalf("sequential and parallel grids diverged:\n%s\nvs\n%s",
			FormatScenario10(seq), FormatScenario10(par))
	}
}

func TestScenario10RejectsBadConfig(t *testing.T) {
	cases := []Scenario10Config{
		{Shards: 0, Conns: 2, DurationNS: 1e6},
		{Shards: 2, Conns: 0, DurationNS: 1e6},
		{Shards: 2, Conns: 2, Faults: 1, MTBFNS: 0, DurationNS: 1e6},
	}
	for i, cfg := range cases {
		if _, err := NewScenario10(sim.NewVClock(), cfg); err == nil {
			t.Fatalf("case %d: bad config accepted: %+v", i, cfg)
		}
	}
}
