package core

import (
	"testing"

	"repro/internal/sim"
)

func TestScenario3BandwidthMatchesSinglePort(t *testing.T) {
	// Future-work layout: DPDK split into its own compartment. Like the
	// other CHERI layouts, compartmentalization must cost no bandwidth.
	for _, dir := range []Direction{LocalIsServer, LocalIsClient} {
		s, err := NewScenario3(sim.NewVClock())
		if err != nil {
			t.Fatal(err)
		}
		res, err := BandwidthPair(s, dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%v", res[0])
		if res[0].Mbps < 920 || res[0].Mbps > 950 {
			t.Errorf("scenario 3 %v = %.0f Mbit/s, want ≈941", dir, res[0].Mbps)
		}
	}
}

func TestScenario3DeviceGatesIsolate(t *testing.T) {
	s, err := NewScenario3(sim.NewVClock())
	if err != nil {
		t.Fatal(err)
	}
	stackCVM := s.Envs[0].CVM
	// The stack compartment cannot reach the DPDK compartment's memory
	// (the driver segment lives in cvm1-dpdk's window).
	dpdkCVM := s.Local.IV.CVMs()["cvm1-dpdk"]
	if dpdkCVM == nil {
		t.Fatal("dpdk cVM missing")
	}
	if err := stackCVM.Load(dpdkCVM.Base()+0x10, make([]byte, 8)); err == nil {
		t.Fatal("stack compartment read the driver compartment")
	}
	// And vice versa.
	if err := dpdkCVM.Load(stackCVM.Base()+0x10, make([]byte, 8)); err == nil {
		t.Fatal("driver compartment read the stack compartment")
	}
	// Every stack iteration crosses the device gates.
	before := s.Local.IV.Crossings.Load()
	s.Envs[0].Stk.PollOnce()
	if s.Local.IV.Crossings.Load() <= before {
		t.Fatal("a stack poll did not cross into the DPDK compartment")
	}
}
