package core

import (
	"fmt"
	"strings"

	"repro/internal/cheri"
	"repro/internal/dpdk"
	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/intravisor"
	"repro/internal/iperf"
	"repro/internal/sim"
)

// Scenario 4 — multi-core scaling. The paper's port (and Scenarios
// 1-3) runs one poll loop over one RX/TX queue pair, so a single stack
// mutex serializes all protocol work; Scenario 2 shows that mutex
// becoming the bottleneck under contention. This scenario applies the
// standard DPDK remedy: the NIC is configured with K RX/TX queue pairs
// and symmetric-RSS flow steering, and a fstack.ShardedStack runs one
// independent stack shard (own loop, own mutex, own connection table)
// per queue pair. Each shard models one CPU core with a fixed
// packet-processing budget; the port is faster than one core, so
// aggregate goodput across M concurrent iperf flows scales with the
// shard count until the line, not any lock, is the limit.

const (
	// s4LineRate is the port speed: multi-gigabit, so one shard's core
	// cannot saturate it (a 1 GbE port would cap every shard count at
	// the same 941 Mbit/s and hide the scaling).
	s4LineRate = 4e9
	// s4CPUBps is one shard's packet-processing budget in bits of frame
	// data per second — one simulated core keeps up with roughly the
	// paper's 1 GbE figure, which is what the Morello box measured.
	s4CPUBps = 1e9
	// s4CPUWindow is how far ahead a core may be booked (a few
	// full-size frame times, like the device serializers).
	s4CPUWindow = 3 * 12304
	// s4RxFifoBytes is the per-queue RX packet buffer: multi-gigabit
	// parts ship hundreds of KiB (e.g. 512 KiB on the X550), which is
	// what lets TCP find a fair share when the line outruns the cores
	// instead of collapsing into tail-drop retransmit storms.
	s4RxFifoBytes = 512 << 10

	// Sized up from the default environment: K shards × 256-descriptor
	// rings plus M flows × (512+256) KiB socket buffers.
	s4SegSize  = 16 << 20
	s4CVMMem   = 24 << 20
	s4PoolBufs = 3072
	s4RingSize = 256

	// s4BasePort is the first iperf port; flow f uses s4BasePort+f.
	s4BasePort = uint16(5301)

	// s4RTOMin is the retransmission-timer floor on both ends.
	// Overloaded shards buffer several ms of frames (512 KiB draining
	// at ~1 Gbit/s ≈ 4 ms), so the simulator's default 2 ms floor would
	// make every sender time out spuriously; 20 ms keeps loss recovery
	// on the dup-ACK fast path, as FreeBSD's 30 ms rexmit_min does on
	// real buffered paths.
	s4RTOMin = int64(20e6)
)

// cpuDev models one core's packet-processing budget in front of a
// shard's queue pair: every frame byte moved in or out of the stack is
// charged against a serializer, and when the core is booked out the
// burst returns empty — ring backpressure, exactly how an overloaded
// poll loop behaves. (The existing scenarios model layouts where the
// line or the bus is the bottleneck; here the core must be, or shard
// counts could not matter.)
type cpuDev struct {
	dev fstack.EthDevice
	cpu *sim.Serializer
}

// cpuChunk bounds how many frames are harvested per admission check,
// keeping the overshoot past the booking window small (a booked-out
// core must come back quickly — the stack's ACKs ride the same budget,
// and coarse gating would drop them for hundreds of µs at a time).
const cpuChunk = 4

func (d cpuDev) RxBurst(out []*dpdk.Mbuf) int {
	total := 0
	for total < len(out) {
		if !d.cpu.CanAdmit() {
			break
		}
		k := min(cpuChunk, len(out)-total)
		n := d.dev.RxBurst(out[total : total+k])
		for i := 0; i < n; i++ {
			d.cpu.Book(out[total+i].Len())
		}
		total += n
		if n < k {
			break
		}
	}
	return total
}

// TxBurst charges the core for every byte it transmits but never
// refuses on CPU grounds: by the time the stack hands a frame over, the
// work has been done, and the TX descriptor ring — not a dropped frame
// — is where a busy core's output waits. (Refusing here would silently
// discard bare ACKs, which have no retransmit path; the throttle on the
// send side is that every booked byte delays the core's own RX
// processing, inflating the flow's RTT against its 64 KiB window.)
func (d cpuDev) TxBurst(bufs []*dpdk.Mbuf) int {
	// Capture lengths first: accepted mbufs pass to the driver and may
	// be recycled before we charge for them.
	lens := make([]int, len(bufs))
	for i, m := range bufs {
		lens[i] = m.Len()
	}
	n := d.dev.TxBurst(bufs)
	for i := 0; i < n; i++ {
		d.cpu.Book(lens[i])
	}
	return n
}

func (d cpuDev) Poll()             { d.dev.Poll() }
func (d cpuDev) MAC() [6]byte      { return d.dev.MAC() }
func (d cpuDev) Stats() dpdk.Stats { return d.dev.Stats() }

// Scenario4Config parameterizes the multi-core scaling testbed.
type Scenario4Config struct {
	// Shards is the stack shard / NIC queue-pair count (1 disables RSS
	// and reproduces the single-queue layout over the same hardware).
	Shards int
	// CapMode runs the sharded stack inside a cVM with capability DMA
	// (the CHERI port); false is the Baseline process layout.
	CapMode bool
}

// Setup4 is a wired Scenario 4 topology.
type Setup4 struct {
	Clk     hostos.Clock
	Local   *Machine
	CVM     *intravisor.CVM // non-nil in capability mode
	Seg     *dpdk.MemSeg
	Pool    *dpdk.Mempool
	Dev     *dpdk.EthDev
	Sharded *fstack.ShardedStack
	Peer    *Peer
}

// Loops lists every main loop (shards first, then the peer).
func (s *Setup4) Loops() []*fstack.Loop {
	return append(append([]*fstack.Loop{}, s.Sharded.Loops()...), s.Peer.Env.Loop)
}

// NewScenario4 builds the multi-core layout: one fast port with
// cfg.Shards RSS-steered queue pairs, a ShardedStack with one
// CPU-budgeted shard per pair, and one link partner.
func NewScenario4(clk hostos.Clock, cfg Scenario4Config) (*Setup4, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("core: scenario 4 needs at least one shard")
	}
	local, err := NewMachine(MachineConfig{
		Name: "morello", Clk: clk, Ports: 1, LineRateBps: s4LineRate,
		RxFifoBytes: s4RxFifoBytes, CapDMA: cfg.CapMode, MACLast: 1,
	})
	if err != nil {
		return nil, err
	}
	s := &Setup4{Clk: clk, Local: local}

	if cfg.CapMode {
		cvm, err := local.NewCVMSized("cvm1", s4CVMMem)
		if err != nil {
			return nil, err
		}
		segBase := cvm.Base() + cvm.Size() - s4SegSize
		segCap, err := cvm.DDC().SetAddr(segBase).SetBounds(s4SegSize)
		if err != nil {
			return nil, err
		}
		seg, err := dpdk.NewMemSeg(local.K.Mem, segBase, s4SegSize, segCap, true)
		if err != nil {
			return nil, err
		}
		s.CVM, s.Seg = cvm, seg
	} else {
		base, errno := local.K.Pages.Alloc(s4SegSize)
		if errno != hostos.OK {
			return nil, fmt.Errorf("core: allocating scenario 4 segment: %v", errno)
		}
		seg, err := dpdk.NewMemSeg(local.K.Mem, base, s4SegSize, cheri.NullCap, false)
		if err != nil {
			return nil, err
		}
		s.Seg = seg
	}

	pool, err := dpdk.NewMempool(s.Seg, "s4-pkt", s4PoolBufs, dpdk.DefaultDataroom)
	if err != nil {
		return nil, err
	}
	s.Pool = pool
	dev, err := dpdk.Probe(local.K.PCI, local.Card.Port(0).BDF(), s.Seg)
	if err != nil {
		return nil, err
	}
	if err := dev.ConfigureQueues(cfg.Shards, s4RingSize, s4RingSize, pool); err != nil {
		return nil, err
	}
	if err := dev.Start(); err != nil {
		return nil, err
	}
	s.Dev = dev

	ss, err := fstack.NewShardedStack(cfg.Shards, s.Seg, pool, clk)
	if err != nil {
		return nil, err
	}
	if err := ss.AddNetIF("eth0", dev, localIP(0), mask24, func(shard int, d fstack.EthDevice) fstack.EthDevice {
		return cpuDev{dev: d, cpu: sim.NewSerializer(clk, s4CPUBps, s4CPUWindow)}
	}); err != nil {
		return nil, err
	}
	s.Sharded = ss

	peer, err := NewPeerAtRate("peer0", clk, local.Card.Port(0), peerIP(0), mask24, 0x80, s4LineRate)
	if err != nil {
		return nil, err
	}
	s.Peer = peer
	for i := 0; i < ss.NumShards(); i++ {
		ss.Shard(i).SetRTOMin(s4RTOMin)
	}
	peer.Env.Stk.SetRTOMin(s4RTOMin)
	return s, nil
}

// engineerCport picks a source port for inbound flow f toward dport so
// that its tuple hashes to shard f modulo the shard count.
func (s *Setup4) engineerCport(f int, dport uint16) uint16 {
	want := f % s.Sharded.NumShards()
	p := uint16(42000 + 97*f)
	for try := 0; try < 2048; try++ {
		if s.Dev.RxQueueOf(peerIP(0), localIP(0), fstack.ProtoTCP, p, dport) == want {
			return p
		}
		p++
	}
	return uint16(42000 + 97*f)
}

// Scenario4Result is one measured (shard count, direction) point.
// (Per-shard load shows up in ShardedStack.ShardStats and the device's
// QueueStats, which is what examples/multicore prints.)
type Scenario4Result struct {
	Shards  int
	Flows   int
	CapMode bool
	Dir     Direction
	Mbps    float64   // aggregate goodput over all flows
	PerFlow []float64 // per-flow goodput
	// Stats aggregates the local shards' counters; the retransmit
	// breakdown makes recovery behavior observable in every run.
	Stats fstack.StackStats
}

// Scenario4Bandwidth runs flows concurrent iperf flows for durationNS
// of virtual time and returns the aggregate local goodput. In
// LocalIsClient mode the local shards send (the steering oracle places
// each connection on the shard its ACK stream will hit); in
// LocalIsServer mode the local shards receive on listeners cloned
// across every shard, each SYN accepted wherever RSS lands it.
func Scenario4Bandwidth(s *Setup4, dir Direction, flows int, durationNS int64) (Scenario4Result, error) {
	clk, ok := s.Clk.(*sim.VClock)
	if !ok {
		return Scenario4Result{}, fmt.Errorf("core: scenario 4 runs need the virtual clock")
	}
	if flows < 1 {
		return Scenario4Result{}, fmt.Errorf("core: scenario 4 needs at least one flow")
	}
	res := Scenario4Result{Shards: s.Sharded.NumShards(), Flows: flows, CapMode: s.CVM != nil, Dir: dir}

	api := s.Sharded.API()
	var appSteppers []func(now int64)
	var localCli []*iperf.Client
	var localSrv []*iperf.Server
	for f := 0; f < flows; f++ {
		port := s4BasePort + uint16(f)
		if dir == LocalIsClient {
			cli := iperf.NewClient(peerIP(0), port, durationNS)
			localCli = append(localCli, cli)
			appSteppers = append(appSteppers, func(now int64) { cli.Step(api, now) })
		} else {
			srv := iperf.NewServer(fstack.IPv4Addr{}, port)
			localSrv = append(localSrv, srv)
			appSteppers = append(appSteppers, func(now int64) { srv.Step(api, now) })
		}
	}

	// The peer carries the far end of every flow on its single stack.
	var peerCli []*iperf.Client
	var peerSrv []*iperf.Server
	papi := s.Peer.Env.Loop.Locked()
	for f := 0; f < flows; f++ {
		port := s4BasePort + uint16(f)
		if dir == LocalIsClient {
			peerSrv = append(peerSrv, iperf.NewServer(fstack.IPv4Addr{}, port))
		} else {
			cli := iperf.NewClient(localIP(0), port, durationNS)
			// The load generator engineers its source ports so the
			// flows round-robin the receiver's RSS queues, as hardware
			// traffic generators (and RSS-aware client fleets) do;
			// unengineered ports land wherever the hash scatters them.
			cli.LocalPort = s.engineerCport(f, port)
			peerCli = append(peerCli, cli)
		}
	}
	s.Peer.Env.Loop.OnLoop = func(now int64) bool {
		for _, c := range peerCli {
			c.Step(papi, now)
		}
		for _, sv := range peerSrv {
			sv.Step(papi, now)
		}
		return true
	}

	done := func() bool {
		for _, c := range localCli {
			if !c.Done() {
				return false
			}
		}
		for _, sv := range localSrv {
			if !sv.Done() {
				return false
			}
		}
		for _, c := range peerCli {
			if !c.Done() {
				return false
			}
		}
		for _, sv := range peerSrv {
			if !sv.Done() {
				return false
			}
		}
		return true
	}
	if err := runVirtual(clk, s.Loops(), appSteppers, done); err != nil {
		return res, err
	}

	for f := 0; f < flows; f++ {
		var rep iperf.Report
		if dir == LocalIsClient {
			if localCli[f].Err() != 0 {
				return res, fmt.Errorf("core: scenario 4 client %d failed: %v", f, localCli[f].Err())
			}
			rep = localCli[f].Report()
		} else {
			if localSrv[f].Err() != 0 {
				return res, fmt.Errorf("core: scenario 4 server %d failed: %v", f, localSrv[f].Err())
			}
			rep = localSrv[f].Report()
		}
		res.PerFlow = append(res.PerFlow, rep.Mbps())
		res.Mbps += rep.Mbps()
	}
	res.Stats = s.Sharded.Stats()
	return res, nil
}

// DefaultScenario4Duration is the per-measurement traffic time.
const DefaultScenario4Duration = int64(300e6)

// RunScenario4 measures one configuration end to end on a fresh
// virtual-time testbed.
func RunScenario4(cfg Scenario4Config, dir Direction, flows int, durationNS int64) (Scenario4Result, error) {
	s, err := NewScenario4(sim.NewVClock(), cfg)
	if err != nil {
		return Scenario4Result{}, err
	}
	return Scenario4Bandwidth(s, dir, flows, durationNS)
}

// RunScenario4Sweep measures aggregate goodput for every shard count in
// shardCounts, in both Baseline and capability mode.
func RunScenario4Sweep(shardCounts []int, flows int, durationNS int64) ([]Scenario4Result, error) {
	var out []Scenario4Result
	for _, capMode := range []bool{false, true} {
		for _, k := range shardCounts {
			r, err := RunScenario4(Scenario4Config{Shards: k, CapMode: capMode}, LocalIsClient, flows, durationNS)
			if err != nil {
				return nil, fmt.Errorf("shards=%d cap=%v: %w", k, capMode, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// FormatScenario4 renders a sweep as a scaling table.
func FormatScenario4(results []Scenario4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SCENARIO 4 — multi-core scaling: aggregate goodput vs stack shards\n")
	fmt.Fprintf(&b, "(port %.0f Gbit/s, one core ≈ %.0f Gbit/s of stack work, %s mode flows)\n",
		s4LineRate/1e9, s4CPUBps/1e9, LocalIsClient)
	base := map[bool]float64{}
	for _, r := range results {
		if r.Shards == 1 {
			base[r.CapMode] = r.Mbps
		}
	}
	fmt.Fprintf(&b, "  %-10s %8s %8s %14s %9s  %s\n", "Mode", "Shards", "Flows", "Mbit/s", "Speedup", "recovery")
	for _, r := range results {
		mode := "baseline"
		if r.CapMode {
			mode = "cheri"
		}
		speedup := "-"
		if b1 := base[r.CapMode]; b1 > 0 {
			speedup = fmt.Sprintf("%.2fx", r.Mbps/b1)
		}
		fmt.Fprintf(&b, "  %-10s %8d %8d %14.0f %9s  %s\n",
			mode, r.Shards, r.Flows, r.Mbps, speedup, r.Stats.RecoverySummary())
	}
	return b.String()
}
