package core

import (
	"fmt"
	"strings"

	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/iperf"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Scenario 4 — multi-core scaling. The paper's port (and Scenarios
// 1-3) runs one poll loop over one RX/TX queue pair, so a single stack
// mutex serializes all protocol work; Scenario 2 shows that mutex
// becoming the bottleneck under contention. This scenario applies the
// standard DPDK remedy: the NIC is configured with K RX/TX queue pairs
// and symmetric-RSS flow steering, and a fstack.ShardedStack runs one
// independent stack shard (own loop, own mutex, own connection table)
// per queue pair. Each shard models one CPU core with a fixed
// packet-processing budget; the port is faster than one core, so
// aggregate goodput across M concurrent iperf flows scales with the
// shard count until the line, not any lock, is the limit.

const (
	// s4LineRate is the port speed: multi-gigabit, so one shard's core
	// cannot saturate it (a 1 GbE port would cap every shard count at
	// the same 941 Mbit/s and hide the scaling).
	s4LineRate = 4e9
	// s4CPUBps is one shard's packet-processing budget in bits of frame
	// data per second — one simulated core keeps up with roughly the
	// paper's 1 GbE figure, which is what the Morello box measured.
	s4CPUBps = 1e9
	// s4CPUWindow is how far ahead a core may be booked (a few
	// full-size frame times, like the device serializers).
	s4CPUWindow = 3 * 12304
	// s4RxFifoBytes is the per-queue RX packet buffer: multi-gigabit
	// parts ship hundreds of KiB (e.g. 512 KiB on the X550), which is
	// what lets TCP find a fair share when the line outruns the cores
	// instead of collapsing into tail-drop retransmit storms.
	s4RxFifoBytes = 512 << 10

	// Sized up from the default environment: K shards × 256-descriptor
	// rings plus M flows × (512+256) KiB socket buffers.
	s4SegSize  = 16 << 20
	s4CVMMem   = 24 << 20
	s4PoolBufs = 3072
	s4RingSize = 256

	// s4BasePort is the first iperf port; flow f uses s4BasePort+f.
	s4BasePort = uint16(5301)

	// s4RTOMin is the retransmission-timer floor on both ends.
	// Overloaded shards buffer several ms of frames (512 KiB draining
	// at ~1 Gbit/s ≈ 4 ms), so the simulator's default 2 ms floor would
	// make every sender time out spuriously; 20 ms keeps loss recovery
	// on the dup-ACK fast path, as FreeBSD's 30 ms rexmit_min does on
	// real buffered paths.
	s4RTOMin = int64(20e6)
)

// Scenario4Config parameterizes the multi-core scaling testbed.
type Scenario4Config struct {
	// Shards is the stack shard / NIC queue-pair count (1 disables RSS
	// and reproduces the single-queue layout over the same hardware).
	Shards int
	// CapMode runs the sharded stack inside a cVM with capability DMA
	// (the CHERI port); false is the Baseline process layout.
	CapMode bool
}

// Setup4 is a wired Scenario 4 topology: the bed's Sharded and Dev
// fields carry the sharded stack and its multi-queue device.
type Setup4 = testbed.Bed

// NewScenario4 builds the multi-core layout: one fast port with
// cfg.Shards RSS-steered queue pairs, a ShardedStack with one
// CPU-budgeted shard per pair, and one link partner.
func NewScenario4(clk hostos.Clock, cfg Scenario4Config) (*Setup4, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("core: scenario 4 needs at least one shard")
	}
	return testbed.Build(testbed.Spec{
		Clk: clk,
		Machine: testbed.MachineSpec{
			Name: "morello", Ports: 1, LineRateBps: s4LineRate,
			RxFifoBytes: s4RxFifoBytes, CapDMA: cfg.CapMode,
		},
		Compartments: []testbed.CompartmentSpec{
			{
				Name: "s4", CVM: cfg.CapMode, CVMName: "cvm1",
				CVMBytes: s4CVMMem, SegBytes: s4SegSize,
				PoolBufs: s4PoolBufs, PoolName: "s4-pkt",
				Ifs: []testbed.IfSpec{{Port: 0}},
				Stack: testbed.StackSpec{
					Shards: cfg.Shards, RingSize: s4RingSize,
					CPUBps: s4CPUBps, CPUWindowNS: s4CPUWindow,
					RTOMinNS: s4RTOMin,
				},
			},
		},
		Peers: []testbed.PeerSpec{
			{Port: 0, LineRateBps: s4LineRate, Stack: testbed.StackSpec{RTOMinNS: s4RTOMin}},
		},
	})
}

// engineerCport picks a source port for inbound flow f toward dport so
// that its tuple hashes to shard f modulo the shard count.
func engineerCport(s *Setup4, f int, dport uint16) uint16 {
	want := f % s.Sharded.NumShards()
	p := uint16(42000 + 97*f)
	for try := 0; try < 2048; try++ {
		if s.Dev.RxQueueOf(peerIP(0), localIP(0), fstack.ProtoTCP, p, dport) == want {
			return p
		}
		p++
	}
	return uint16(42000 + 97*f)
}

// Scenario4Result is one measured (shard count, direction) point.
// (Per-shard load shows up in ShardedStack.ShardStats and the device's
// QueueStats, which is what examples/multicore prints.)
type Scenario4Result struct {
	Shards  int
	Flows   int
	CapMode bool
	Dir     Direction
	Mbps    float64   // aggregate goodput over all flows
	PerFlow []float64 // per-flow goodput
	// Stats aggregates the local shards' counters; the retransmit
	// breakdown makes recovery behavior observable in every run.
	Stats fstack.StackStats
}

// Scenario4Bandwidth runs flows concurrent iperf flows for durationNS
// of virtual time and returns the aggregate local goodput. In
// LocalIsClient mode the local shards send (the steering oracle places
// each connection on the shard its ACK stream will hit); in
// LocalIsServer mode the local shards receive on listeners cloned
// across every shard, each SYN accepted wherever RSS lands it.
func Scenario4Bandwidth(s *Setup4, dir Direction, flows int, durationNS int64) (Scenario4Result, error) {
	clk, ok := s.Clk.(*sim.VClock)
	if !ok {
		return Scenario4Result{}, fmt.Errorf("core: scenario 4 runs need the virtual clock")
	}
	if flows < 1 {
		return Scenario4Result{}, fmt.Errorf("core: scenario 4 needs at least one flow")
	}
	res := Scenario4Result{Shards: s.Sharded.NumShards(), Flows: flows, CapMode: s.Envs[0].CVM != nil, Dir: dir}

	api := s.Sharded.API()
	var appSteppers []func(now int64)
	var localCli []*iperf.Client
	var localSrv []*iperf.Server
	for f := 0; f < flows; f++ {
		port := s4BasePort + uint16(f)
		if dir == LocalIsClient {
			cli := iperf.NewClient(peerIP(0), port, durationNS)
			localCli = append(localCli, cli)
			appSteppers = append(appSteppers, func(now int64) { cli.Step(api, now) })
		} else {
			srv := iperf.NewServer(fstack.IPv4Addr{}, port)
			localSrv = append(localSrv, srv)
			appSteppers = append(appSteppers, func(now int64) { srv.Step(api, now) })
		}
	}

	// The peer carries the far end of every flow on its single stack.
	var peerCli []*iperf.Client
	var peerSrv []*iperf.Server
	papi := s.Peers[0].Env.Loop.Locked()
	for f := 0; f < flows; f++ {
		port := s4BasePort + uint16(f)
		if dir == LocalIsClient {
			peerSrv = append(peerSrv, iperf.NewServer(fstack.IPv4Addr{}, port))
		} else {
			cli := iperf.NewClient(localIP(0), port, durationNS)
			// The load generator engineers its source ports so the
			// flows round-robin the receiver's RSS queues, as hardware
			// traffic generators (and RSS-aware client fleets) do;
			// unengineered ports land wherever the hash scatters them.
			cli.LocalPort = engineerCport(s, f, port)
			peerCli = append(peerCli, cli)
		}
	}
	s.Peers[0].Env.Loop.OnLoop = func(now int64) bool {
		for _, c := range peerCli {
			c.Step(papi, now)
		}
		for _, sv := range peerSrv {
			sv.Step(papi, now)
		}
		return true
	}

	done := func() bool {
		for _, c := range localCli {
			if !c.Done() {
				return false
			}
		}
		for _, sv := range localSrv {
			if !sv.Done() {
				return false
			}
		}
		for _, c := range peerCli {
			if !c.Done() {
				return false
			}
		}
		for _, sv := range peerSrv {
			if !sv.Done() {
				return false
			}
		}
		return true
	}
	timed := append(timedOf(localCli, localSrv), timedOf(peerCli, peerSrv)...)
	if err := runVirtual(clk, s, appSteppers, timed, done); err != nil {
		return res, err
	}

	for f := 0; f < flows; f++ {
		var rep iperf.Report
		if dir == LocalIsClient {
			if localCli[f].Err() != 0 {
				return res, fmt.Errorf("core: scenario 4 client %d failed: %v", f, localCli[f].Err())
			}
			rep = localCli[f].Report()
		} else {
			if localSrv[f].Err() != 0 {
				return res, fmt.Errorf("core: scenario 4 server %d failed: %v", f, localSrv[f].Err())
			}
			rep = localSrv[f].Report()
		}
		res.PerFlow = append(res.PerFlow, rep.Mbps())
		res.Mbps += rep.Mbps()
	}
	res.Stats = s.Sharded.Stats()
	return res, nil
}

// DefaultScenario4Duration is the per-measurement traffic time.
const DefaultScenario4Duration = int64(300e6)

// RunScenario4 measures one configuration end to end on a fresh
// virtual-time testbed.
func RunScenario4(cfg Scenario4Config, dir Direction, flows int, durationNS int64) (Scenario4Result, error) {
	s, err := NewScenario4(sim.NewVClock(), cfg)
	if err != nil {
		return Scenario4Result{}, err
	}
	return Scenario4Bandwidth(s, dir, flows, durationNS)
}

// RunScenario4Sweep measures aggregate goodput for every shard count in
// shardCounts, in both Baseline and capability mode.
func RunScenario4Sweep(shardCounts []int, flows int, durationNS int64) ([]Scenario4Result, error) {
	var cells []Scenario4Config
	for _, capMode := range []bool{false, true} {
		for _, k := range shardCounts {
			cells = append(cells, Scenario4Config{Shards: k, CapMode: capMode})
		}
	}
	return RunCells(Parallelism(), len(cells), func(i int) (Scenario4Result, error) {
		cfg := cells[i]
		r, err := RunScenario4(cfg, LocalIsClient, flows, durationNS)
		if err != nil {
			return r, fmt.Errorf("shards=%d cap=%v: %w", cfg.Shards, cfg.CapMode, err)
		}
		return r, nil
	})
}

// FormatScenario4 renders a sweep as a scaling table.
func FormatScenario4(results []Scenario4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SCENARIO 4 — multi-core scaling: aggregate goodput vs stack shards\n")
	fmt.Fprintf(&b, "(port %.0f Gbit/s, one core ≈ %.0f Gbit/s of stack work, %s mode flows)\n",
		s4LineRate/1e9, s4CPUBps/1e9, LocalIsClient)
	base := map[bool]float64{}
	for _, r := range results {
		if r.Shards == 1 {
			base[r.CapMode] = r.Mbps
		}
	}
	fmt.Fprintf(&b, "  %-10s %8s %8s %14s %9s  %s\n", "Mode", "Shards", "Flows", "Mbit/s", "Speedup", "recovery")
	for _, r := range results {
		mode := "baseline"
		if r.CapMode {
			mode = "cheri"
		}
		speedup := "-"
		if b1 := base[r.CapMode]; b1 > 0 {
			speedup = fmt.Sprintf("%.2fx", r.Mbps/b1)
		}
		fmt.Fprintf(&b, "  %-10s %8d %8d %14.0f %9s  %s\n",
			mode, r.Shards, r.Flows, r.Mbps, speedup, r.Stats.RecoverySummary())
	}
	return b.String()
}
