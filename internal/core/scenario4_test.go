package core

import (
	"testing"

	"repro/internal/sim"
)

// s4TestDuration keeps the CI runs short; scaling ratios are already
// stable at this length.
const s4TestDuration = int64(200e6)

// TestScenario4SingleShardBaseline sanity-checks the degenerate layout:
// one shard over the multi-queue device must behave like a single
// stack and reach roughly the one-core budget.
func TestScenario4SingleShardBaseline(t *testing.T) {
	s, err := NewScenario4(sim.NewVClock(), Scenario4Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Scenario4Bandwidth(s, LocalIsClient, 2, s4TestDuration)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mbps < 500 || res.Mbps > 1100 {
		t.Fatalf("single-shard goodput %.0f Mbit/s outside the one-core envelope", res.Mbps)
	}
}

// TestScenario4Scaling is the tentpole acceptance gate: with 4 shards
// and 8 concurrent flows, aggregate goodput must be at least 2.5x the
// 1-shard figure, in both baseline and capability mode.
func TestScenario4Scaling(t *testing.T) {
	for _, capMode := range []bool{false, true} {
		var mbps [2]float64
		for i, shards := range []int{1, 4} {
			res, err := RunScenario4(Scenario4Config{Shards: shards, CapMode: capMode}, LocalIsClient, 8, s4TestDuration)
			if err != nil {
				t.Fatalf("cap=%v shards=%d: %v", capMode, shards, err)
			}
			mbps[i] = res.Mbps
			t.Logf("cap=%v shards=%d flows=8: %.0f Mbit/s (per flow %v)", capMode, shards, res.Mbps, res.PerFlow)
		}
		if mbps[1] < 2.5*mbps[0] {
			t.Fatalf("cap=%v: 4-shard goodput %.0f < 2.5x 1-shard %.0f", capMode, mbps[1], mbps[0])
		}
	}
}

// TestScenario4ServerMode exercises the cloned-listener path: the local
// box receives, each SYN is accepted on whichever shard RSS picked.
func TestScenario4ServerMode(t *testing.T) {
	s, err := NewScenario4(sim.NewVClock(), Scenario4Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Scenario4Bandwidth(s, LocalIsServer, 8, s4TestDuration)
	if err != nil {
		t.Fatal(err)
	}
	one, err := RunScenario4(Scenario4Config{Shards: 1}, LocalIsServer, 8, s4TestDuration)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("server mode: 1 shard %.0f Mbit/s, 4 shards %.0f Mbit/s", one.Mbps, res.Mbps)
	if res.Mbps < 2.5*one.Mbps {
		t.Fatalf("server-mode 4-shard goodput %.0f did not scale over %.0f", res.Mbps, one.Mbps)
	}
}

// TestScenario4ShardStatsSumToAggregate checks the stats invariant on a
// live sharded run: per-shard counters sum to the aggregate, every
// frame is processed by exactly one shard, and the flows really did
// spread over multiple shards.
func TestScenario4ShardStatsSumToAggregate(t *testing.T) {
	s, err := NewScenario4(sim.NewVClock(), Scenario4Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Scenario4Bandwidth(s, LocalIsClient, 8, s4TestDuration); err != nil {
		t.Fatal(err)
	}
	agg := s.Sharded.Stats()
	var rx, tx uint64
	busy := 0
	for i := 0; i < s.Sharded.NumShards(); i++ {
		st := s.Sharded.ShardStats(i)
		rx += st.RxFrames
		tx += st.TxFrames
		if st.TxFrames > 0 {
			busy++
		}
	}
	if rx != agg.RxFrames || tx != agg.TxFrames {
		t.Fatalf("shard stats (%d rx, %d tx) do not sum to aggregate (%d rx, %d tx)",
			rx, tx, agg.RxFrames, agg.TxFrames)
	}
	if busy < 2 {
		t.Fatalf("flows landed on %d shard(s); RSS did not spread the load", busy)
	}
	// Per-queue device counters must likewise sum to the whole-port
	// software totals.
	var qsum uint64
	for q := 0; q < s.Dev.NumRxQueues(); q++ {
		qsum += s.Dev.QueueStats(q).IPackets
	}
	if qsum != s.Dev.QueueStatsSum().IPackets {
		t.Fatalf("per-queue stats %d != aggregate %d", qsum, s.Dev.QueueStatsSum().IPackets)
	}
}
