package core

import (
	"fmt"
	"strings"

	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/iperf"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Scenario 5 — the lossy high-BDP WAN. Every earlier scenario runs over
// a perfect point-to-point cable, so the stack's recovery machinery and
// window limits were never the binding constraint. Here the cable is
// replaced by a netem.Link — a rate-limited bottleneck with delay,
// seeded random or bursty loss and a bounded queue — and the local box
// (Baseline process or capability-mode cVM, as in Table II) drives one
// iperf flow through it. The measurement compares the paper's stack
// ("go-back-N": no SACK, 64 KiB windows) against the modern tuning
// (RFC 2018 SACK + RFC 7323 window scaling) at equal link settings, so
// the recovery upgrade and the capability overhead can be read off the
// same table.

const (
	// s5LineRate is both ports' access-line rate; the netem bottleneck
	// below it is what shapes the path.
	s5LineRate = 1e9
	// s5RateBps is the default WAN bottleneck.
	s5RateBps = 100e6
	// s5DelayNS is the default one-way propagation delay (50 ms: a
	// transcontinental path; RTT 100 ms).
	s5DelayNS = int64(50e6)
	// s5QueueBytes is the bottleneck queue: roughly one BDP at the
	// default rate and delay, the classic router-sizing rule.
	s5QueueBytes = 1 << 20
	// s5Seed makes every impairment stream reproducible.
	s5Seed = 2025

	// s5RTOMin is the retransmission-timer floor on both ends —
	// FreeBSD's 200 ms on WAN-scale RTTs (the simulator default of
	// 2 ms would fire spuriously on every queue-induced RTT bump).
	s5RTOMin = int64(200e6)

	// Modern-tuning knobs: 4 MiB socket buffers cover the default
	// 100 Mbit/s x 100 ms BDP (1.25 MB) with slow-start overshoot to
	// spare; shift 7 advertises up to 4 MiB
	// through the 16-bit window field.
	s5SndBuf = 4 << 20
	s5RcvBuf = 4 << 20
	s5WScale = 7

	// Environment sizing: two 4 MiB buffers per connection plus the
	// mbuf pool must fit the segment.
	s5SegSize  = 24 << 20
	s5CVMMem   = 32 << 20
	s5PoolBufs = 3072

	s5Port = uint16(5401)
)

// Scenario5Config parameterizes the WAN testbed.
type Scenario5Config struct {
	// CapMode runs the local stack inside a cVM with capability DMA;
	// false is the Baseline process layout.
	CapMode bool
	// Modern enables SACK + window scaling (+ BDP-sized buffers) on
	// both ends; false reproduces the paper's stack (the A/B knob).
	Modern bool
	// Congestion selects the modern stack's congestion controller
	// (fstack.CCReno / fstack.CCCubic; "" = reno). Ignored — like the
	// rest of the tuning — when Modern is false.
	Congestion string
	// Link is the impairment pipeline, applied symmetrically. Zero
	// values get the Scenario 5 defaults for rate, queue and seed —
	// pass explicit fields to sweep loss and delay.
	Link netem.Config
	// Obs selects the observability instruments wired into the bed.
	// The zero value keeps everything off and the run's goldens
	// byte-identical.
	Obs testbed.ObsSpec
}

// s5Tuning is the modern (SACK + window scaling) stack configuration.
func s5Tuning(cc string) *fstack.TCPTuning {
	return &fstack.TCPTuning{
		SACK:        true,
		WindowScale: s5WScale,
		SndBufBytes: s5SndBuf,
		RcvBufBytes: s5RcvBuf,
		Congestion:  cc,
	}
}

// Setup5 is a wired Scenario 5 topology.
type Setup5 struct {
	*testbed.Bed
	Cfg Scenario5Config
}

// Link is the WAN impairment pipeline.
func (s *Setup5) Link() *netem.Link { return s.Links[0] }

// NewScenario5 builds the WAN layout: local box (process or cVM) and
// one link partner, joined by the impairment pipeline.
func NewScenario5(clk hostos.Clock, cfg Scenario5Config) (*Setup5, error) {
	if cfg.Link.RateBps == 0 {
		cfg.Link.RateBps = s5RateBps
	}
	if cfg.Link.QueueBytes == 0 {
		cfg.Link.QueueBytes = s5QueueBytes
	}
	if cfg.Link.Seed == 0 {
		cfg.Link.Seed = s5Seed
	}
	stack := testbed.StackSpec{RTOMinNS: s5RTOMin}
	if cfg.Modern {
		stack.Tuning = s5Tuning(cfg.Congestion)
	}
	name := "proc"
	if cfg.CapMode {
		name = "cvm1"
	}
	bed, err := testbed.Build(testbed.Spec{
		Clk: clk,
		Machine: testbed.MachineSpec{
			Name: "morello", Ports: 1, LineRateBps: s5LineRate, CapDMA: cfg.CapMode,
		},
		Compartments: []testbed.CompartmentSpec{
			{
				Name: name, CVM: cfg.CapMode,
				CVMBytes: s5CVMMem, SegBytes: s5SegSize, PoolBufs: s5PoolBufs,
				Ifs:   []testbed.IfSpec{{Port: 0}},
				Stack: stack,
			},
		},
		Peers: []testbed.PeerSpec{
			{
				Port: 0, LineRateBps: s5LineRate,
				Link:  testbed.SymmetricLink(cfg.Link),
				Stack: stack,
			},
		},
		Obs: cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	return &Setup5{Bed: bed, Cfg: cfg}, nil
}

// Scenario5Result is one measured WAN point. Goodput is measured at
// the receiver (the far end of the impaired path), so sender-side
// buffering cannot inflate it.
type Scenario5Result struct {
	CapMode bool
	Modern  bool
	Link    netem.Config
	Mbps    float64
	// Stats are the local (sending) stack's counters — the retransmit
	// breakdown is the recovery story of the run.
	Stats fstack.StackStats
	// Fwd is the data direction's link accounting.
	Fwd netem.DirStats
	// Obs carries the run's observability instruments (flight recorder,
	// metrics timeseries, latency histograms); nil when the config's
	// ObsSpec was zero.
	Obs *obs.Obs
}

// RTTms is the path round-trip time implied by the link config.
func (r Scenario5Result) RTTms() float64 { return float64(2*r.Link.DelayNS) / 1e6 }

// Scenario5Bandwidth sends one flow from the local box through the
// impaired link for durationNS of virtual traffic time.
func Scenario5Bandwidth(s *Setup5, durationNS int64) (Scenario5Result, error) {
	clk, ok := s.Clk.(*sim.VClock)
	if !ok {
		return Scenario5Result{}, fmt.Errorf("core: scenario 5 runs need the virtual clock")
	}
	res := Scenario5Result{CapMode: s.Cfg.CapMode, Modern: s.Cfg.Modern, Link: s.Link().Config()}

	cli := iperf.NewClient(peerIP(0), s5Port, durationNS)
	attachInLoop(s.Envs[0], cli.Step)
	srv := iperf.NewServer(fstack.IPv4Addr{}, s5Port)
	attachInLoop(s.Peers[0].Env, srv.Step)

	done := func() bool { return cli.Done() && srv.Done() }
	// Loss recovery and the final drain ride WAN RTTs: give the run
	// generous headroom beyond the traffic time.
	deadline := durationNS + 8_000e6 + 200*2*s.Link().Config().DelayNS
	if err := runVirtualUntil(clk, s.Bed, nil, timedOf([]*iperf.Client{cli}, []*iperf.Server{srv}), done, deadline); err != nil {
		return res, err
	}
	if cli.Err() != 0 {
		return res, fmt.Errorf("core: scenario 5 client failed: %v", cli.Err())
	}
	if srv.Err() != 0 {
		return res, fmt.Errorf("core: scenario 5 server failed: %v", srv.Err())
	}
	res.Mbps = srv.Report().Mbps()
	s.Envs[0].Stk.Lock()
	res.Stats = s.Envs[0].Stk.Stats()
	s.Envs[0].Stk.Unlock()
	res.Fwd = s.Link().Stats(0)
	res.Obs = s.Obs
	if err := s.CloseObs(); err != nil {
		return res, fmt.Errorf("core: scenario 5 capture: %w", err)
	}
	return res, nil
}

// DefaultScenario5Duration is the per-measurement traffic time.
const DefaultScenario5Duration = int64(1_000e6)

// RunScenario5 measures one configuration on a fresh virtual testbed.
func RunScenario5(cfg Scenario5Config, durationNS int64) (Scenario5Result, error) {
	s, err := NewScenario5(sim.NewVClock(), cfg)
	if err != nil {
		return Scenario5Result{}, err
	}
	return Scenario5Bandwidth(s, durationNS)
}

// RunScenario5LossSweep measures goodput vs loss rate: for every loss
// point, go-back-N vs SACK in both Baseline and capability mode, at
// equal link settings. An optional Scenario5Obs instruments every
// point's bed and exports the traces/timeseries per point. Cells run
// on the host worker pool (Parallelism); results keep sweep order.
func RunScenario5LossSweep(losses []float64, delayNS int64, rateBps float64, cc string, durationNS int64, obsOpt ...Scenario5Obs) ([]Scenario5Result, error) {
	var cells []Scenario5Config
	for _, loss := range losses {
		for _, capMode := range []bool{false, true} {
			for _, modern := range []bool{false, true} {
				cells = append(cells, Scenario5Config{
					CapMode: capMode, Modern: modern, Congestion: cc,
					Link: netem.Config{LossRate: loss, DelayNS: delayNS, RateBps: rateBps},
				})
			}
		}
	}
	return RunCells(Parallelism(), len(cells), func(i int) (Scenario5Result, error) {
		cfg := cells[i]
		r, err := runScenario5Point(cfg, durationNS, obsOpt)
		if err != nil {
			return r, fmt.Errorf("loss=%.2f%% cap=%v modern=%v: %w",
				cfg.Link.LossRate*100, cfg.CapMode, cfg.Modern, err)
		}
		return r, nil
	})
}

// RunScenario5BDPSweep measures goodput vs path BDP (the one-way delay
// swept at a fixed bottleneck rate), go-back-N vs SACK+window-scaling,
// in both Baseline and capability mode.
func RunScenario5BDPSweep(delaysNS []int64, lossRate float64, rateBps float64, cc string, durationNS int64, obsOpt ...Scenario5Obs) ([]Scenario5Result, error) {
	var cells []Scenario5Config
	for _, d := range delaysNS {
		for _, capMode := range []bool{false, true} {
			for _, modern := range []bool{false, true} {
				cells = append(cells, Scenario5Config{
					CapMode: capMode, Modern: modern, Congestion: cc,
					Link: netem.Config{LossRate: lossRate, DelayNS: d, RateBps: rateBps},
				})
			}
		}
	}
	return RunCells(Parallelism(), len(cells), func(i int) (Scenario5Result, error) {
		cfg := cells[i]
		r, err := runScenario5Point(cfg, durationNS, obsOpt)
		if err != nil {
			return r, fmt.Errorf("delay=%dms cap=%v modern=%v: %w",
				cfg.Link.DelayNS/1e6, cfg.CapMode, cfg.Modern, err)
		}
		return r, nil
	})
}

// runScenario5Point runs one sweep point, instrumented and exported
// per the (optional) sweep observability config.
func runScenario5Point(cfg Scenario5Config, durationNS int64, obsOpt []Scenario5Obs) (Scenario5Result, error) {
	var so Scenario5Obs
	if len(obsOpt) > 0 {
		so = obsOpt[0]
	}
	label := scenario5Label(cfg)
	cfg.Obs = so.pointSpec(label)
	r, err := RunScenario5(cfg, durationNS)
	if err != nil {
		return r, err
	}
	if err := so.export(r, label); err != nil {
		return r, err
	}
	return r, nil
}

// FormatScenario5 renders a sweep with the recovery breakdown beside
// every goodput figure.
func FormatScenario5(title string, results []Scenario5Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SCENARIO 5 — %s\n", title)
	fmt.Fprintf(&b, "  %-9s %-9s %7s %8s %9s %9s  %s\n",
		"Mode", "Recovery", "Loss%", "RTT(ms)", "BDP(KiB)", "Mbit/s", "recovery breakdown")
	for _, r := range results {
		mode := "baseline"
		if r.CapMode {
			mode = "cheri"
		}
		rec := "go-back-N"
		if r.Modern {
			rec = "SACK+WS"
		}
		bdpKiB := r.Link.RateBps / 8 * float64(2*r.Link.DelayNS) / 1e9 / 1024
		fmt.Fprintf(&b, "  %-9s %-9s %7.2f %8.0f %9.0f %9.1f  %s\n",
			mode, rec, r.Link.LossRate*100, r.RTTms(), bdpKiB, r.Mbps, r.Stats.RecoverySummary())
		// Latency percentiles ride under the row they belong to — only
		// when the run carried histograms, so un-instrumented sweeps
		// (and the pinned goldens) render byte-identically.
		if r.Obs != nil && r.Obs.Datapath != nil {
			fmt.Fprintf(&b, "  %32s datapath %v | rtt %v\n", "", r.Obs.Datapath, r.Obs.RTT)
		}
	}
	return b.String()
}
