package core

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/fstack"
	"repro/internal/iperf"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// traceTap records a fingerprint of every frame crossing a stack:
// direction, virtual timestamp, length and a content hash.
type traceTap struct {
	events []string
}

func (t *traceTap) Frame(dir fstack.TapDir, tsNS int64, data []byte) {
	h := fnv.New64a()
	h.Write(data)
	t.events = append(t.events, fmt.Sprintf("%d %d %d %x", dir, tsNS, len(data), h.Sum64()))
}

// runTransparencyRig runs one fixed 100 ms iperf transfer over either a
// plain wire or a pristine netem link and returns the local stack's
// frame trace.
func runTransparencyRig(t *testing.T, linked bool) []string {
	t.Helper()
	clk := sim.NewVClock()
	// Pin the peer sizing so both rigs differ ONLY in the conduit (a
	// link implies the big sizing by default).
	peer := testbed.PeerSpec{Port: 0, SegBytes: testbed.DefaultSegBytes, PoolBufs: testbed.DefaultPoolBufs}
	if linked {
		// A pristine netem link in place of the wire.
		peer.Link = &testbed.LinkSpec{}
	}
	bed, err := testbed.Build(testbed.Spec{
		Clk:     clk,
		Machine: testbed.MachineSpec{Name: "morello", Ports: 1},
		Compartments: []testbed.CompartmentSpec{
			{Name: "proc", Ifs: []testbed.IfSpec{{Port: 0}}},
		},
		Peers: []testbed.PeerSpec{peer},
	})
	if err != nil {
		t.Fatal(err)
	}
	env := bed.Envs[0]
	tap := &traceTap{}
	env.Stk.SetTap(tap)

	cli := iperf.NewClient(peerIP(0), iperfPort, 100e6)
	attachInLoop(env, cli.Step)
	srv := iperf.NewServer(fstack.IPv4Addr{}, iperfPort)
	attachInLoop(bed.Peers[0].Env, srv.Step)
	done := func() bool { return cli.Done() && srv.Done() }
	if err := runVirtual(clk, bed, nil, timedOf([]*iperf.Client{cli}, []*iperf.Server{srv}), done); err != nil {
		t.Fatal(err)
	}
	if len(tap.events) == 0 {
		t.Fatal("tap recorded nothing")
	}
	return tap.events
}

// TestNetemPassThroughTransparent is the Scenario 1-4 safety assertion:
// a netem.Link with a zero Config must be indistinguishable from the
// plain wire — every frame byte-identical at the same virtual instant.
func TestNetemPassThroughTransparent(t *testing.T) {
	wire := runTransparencyRig(t, false)
	link := runTransparencyRig(t, true)
	if len(wire) != len(link) {
		t.Fatalf("trace lengths differ: wire %d frames, pristine link %d", len(wire), len(link))
	}
	for i := range wire {
		if wire[i] != link[i] {
			t.Fatalf("frame %d differs:\n  wire: %s\n  link: %s", i, wire[i], link[i])
		}
	}
	t.Logf("traces identical over %d frames", len(wire))
}

// s5TestLossyLink is the acceptance link: 100 Mbit/s bottleneck,
// 20 ms RTT, ~1 % stationary loss arriving in millisecond fades
// (Gilbert–Elliott — the pattern real WAN paths exhibit and the
// regime RFC 2018 was designed for).
var s5TestLossyLink = netem.Config{
	GEBadProb: 0.00033, GERecoverProb: 0.033,
	DelayNS: 10e6, RateBps: 100e6,
}

// TestScenario5SACKBeatsGoBackN is the tentpole acceptance gate: on the
// seeded 1 % loss, 20 ms RTT link, the SACK stack's goodput must be at
// least twice the go-back-N stack's, at equal link settings, in both
// Baseline and capability mode.
func TestScenario5SACKBeatsGoBackN(t *testing.T) {
	for _, capMode := range []bool{false, true} {
		var mbps [2]float64
		for i, modern := range []bool{false, true} {
			r, err := RunScenario5(Scenario5Config{CapMode: capMode, Modern: modern, Link: s5TestLossyLink}, 1000e6)
			if err != nil {
				t.Fatalf("cap=%v modern=%v: %v", capMode, modern, err)
			}
			mbps[i] = r.Mbps
			t.Logf("cap=%v modern=%v: %.1f Mbit/s [%s]", capMode, modern, r.Mbps, r.Stats.RecoverySummary())
		}
		if mbps[1] < 2*mbps[0] {
			t.Fatalf("cap=%v: SACK %.1f Mbit/s < 2x go-back-N %.1f Mbit/s", capMode, mbps[1], mbps[0])
		}
	}
}

// TestScenario5WindowScalingHighBDP asserts the RFC 7323 half of the
// upgrade: on a 100 Mbit/s x 50 ms (one-way) path, the window-scaled
// stack sustains well past the 64 KiB-per-RTT ceiling an unscaled
// window allows, in both Baseline and capability mode — and the
// unscaled stack demonstrably sits under that ceiling.
func TestScenario5WindowScalingHighBDP(t *testing.T) {
	link := netem.Config{DelayNS: 50e6, RateBps: 100e6}
	rttS := float64(2*link.DelayNS) / 1e9
	unscaledCeiling := 65536 * 8 / rttS / 1e6 // Mbit/s at 64 KiB per RTT
	for _, capMode := range []bool{false, true} {
		gbn, err := RunScenario5(Scenario5Config{CapMode: capMode, Link: link}, 1500e6)
		if err != nil {
			t.Fatalf("cap=%v gbn: %v", capMode, err)
		}
		mod, err := RunScenario5(Scenario5Config{CapMode: capMode, Modern: true, Link: link}, 1500e6)
		if err != nil {
			t.Fatalf("cap=%v modern: %v", capMode, err)
		}
		t.Logf("cap=%v: unscaled %.1f, scaled %.1f Mbit/s (64KiB/RTT ceiling %.1f)",
			capMode, gbn.Mbps, mod.Mbps, unscaledCeiling)
		if gbn.Mbps > unscaledCeiling {
			t.Errorf("cap=%v: unscaled stack %.1f Mbit/s exceeds its own 64 KiB/RTT ceiling %.1f",
				capMode, gbn.Mbps, unscaledCeiling)
		}
		if mod.Mbps < 3*unscaledCeiling {
			t.Errorf("cap=%v: window scaling sustains only %.1f Mbit/s, want > 3x the 64 KiB/RTT ceiling %.1f",
				capMode, mod.Mbps, unscaledCeiling)
		}
	}
}

// TestScenario5RecoveryBreakdownVisible pins the observability
// satellite: a lossy run's result must carry a nonzero retransmit
// breakdown, and the formatted summary must include it.
func TestScenario5RecoveryBreakdownVisible(t *testing.T) {
	r, err := RunScenario5(Scenario5Config{Modern: true, Link: s5TestLossyLink}, 500e6)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Retransmit == 0 || r.Stats.SACKRetransmit == 0 || r.Stats.DupAcks == 0 {
		t.Fatalf("lossy run shows no recovery activity: %+v", r.Stats)
	}
	if r.Stats.Retransmit != r.Stats.FastRetransmit+r.Stats.SACKRetransmit+r.Stats.RTORetransmit {
		t.Fatalf("breakdown does not sum to total: %s", r.Stats.RecoverySummary())
	}
	out := FormatScenario5("test", []Scenario5Result{r})
	for _, want := range []string{"retx", "dup-acks", "SACK+WS"} {
		if !containsStr(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if r.Fwd.Lost() == 0 {
		t.Fatal("link accounting recorded no loss on a lossy run")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
