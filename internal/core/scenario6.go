package core

import (
	"fmt"
	"strings"

	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/iperf"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Scenario 6 — the composition the spec model exists for: Scenario 4's
// sharded RSS stack driving many concurrent flows through Scenario 5's
// seeded, rate-limited, lossy netem bottleneck. Before the testbed
// layer, nothing exercised the multi-queue stack and the impaired link
// together — each lived in its own hand-wired constructor; here the
// whole topology is one spec with both knobs set, plus a per-direction
// LinkSpec so the ACK path can be impaired independently of the data
// path (slow ACK channels, asymmetric loss).
//
// The measurement is the edge-gateway story: a K-core box pushing M
// upload flows into a metro/WAN bottleneck with bursty loss. Two axes
// are swept at equal seeded link settings — shard count (CPU scaling)
// and recovery machinery (the paper's go-back-N stack vs SACK + window
// scaling) — in Baseline and capability mode, so the composed win and
// the capability overhead read off one table.

const (
	// s6LineRate is the access port: multi-gigabit, faster than one
	// core, as in Scenario 4.
	s6LineRate = 4e9
	// s6CPUBps / s6CPUWindow: one shard's core budget (Scenario 4's
	// CPU model).
	s6CPUBps    = 1e9
	s6CPUWindow = 3 * 12304
	// s6RxFifoBytes is the per-queue RX buffer of the multi-gigabit
	// part.
	s6RxFifoBytes = 512 << 10

	// The WAN bottleneck: 2 Gbit/s — above one core's budget, below
	// the port and the aggregate core budget, so BOTH axes bind: shard
	// count governs how much the box can push, recovery governs how
	// much survives the loss.
	s6RateBps = 2e9
	// s6DelayNS is the one-way propagation delay (10 ms RTT: a metro
	// WAN path — short enough that the 64 KiB window alone does not
	// decide the comparison, long enough that recovery style does).
	s6DelayNS = int64(5e6)
	// s6QueueBytes keeps the bottleneck queue near one BDP.
	s6QueueBytes = 4 << 20
	// s6Loss / s6FadeSlots: ~0.5 % stationary loss in ~30-frame fades
	// (Gilbert–Elliott), the bursty pattern real WAN paths show.
	s6Loss      = 0.005
	s6FadeSlots = 30
	// s6Seed makes every impairment stream reproducible.
	s6Seed = 2026

	// s6RTOMin: queue spikes add ~16 ms (4 MiB at 2 Gbit/s) to the
	// 10 ms RTT; 100 ms keeps recovery on the dup-ACK path.
	s6RTOMin = int64(100e6)

	// Modern-tuning knobs: per-flow 1 MiB buffers cover a fair share
	// of the 2.5 MB path BDP with headroom; shift 6 advertises up to
	// 4 MiB through the 16-bit window field.
	s6SndBuf = 1 << 20
	s6RcvBuf = 1 << 20
	s6WScale = 6

	// Environment sizing: M flows × (1+1) MiB buffers plus the pool.
	s6MachineMem = 96 << 20
	s6SegSize    = 32 << 20
	s6CVMMem     = 40 << 20
	s6PoolBufs   = 4096
	s6RingSize   = 256

	// s6BasePort is the first iperf port; flow f uses s6BasePort+f.
	s6BasePort = uint16(5501)
)

// Scenario6Config parameterizes the composed testbed.
type Scenario6Config struct {
	// Shards is the stack shard / NIC queue-pair count.
	Shards int
	// CapMode runs the sharded stack inside a cVM with capability DMA.
	CapMode bool
	// Modern enables SACK + window scaling (+ sized buffers) on both
	// ends; false reproduces the paper's go-back-N stack.
	Modern bool
	// Congestion selects the modern stacks' congestion controller
	// (fstack.CCReno / fstack.CCCubic; "" = reno). Ignored — like the
	// rest of the tuning — when Modern is false.
	Congestion string
	// Download flips the traffic direction: the peer uploads M flows
	// through the impaired link into listeners cloned across the local
	// shards, exercising RSS acceptance under loss (each SYN lands
	// wherever the hash steers it). False is the original upload
	// layout. Fwd/Rev keep their meaning — Fwd impairs the data
	// direction, Rev the ACK direction — whichever way data flows.
	Download bool
	// Fwd impairs the data direction (local box toward peer). The
	// zero value gets the full Scenario 6 default link, including the
	// seeded bursty loss; a non-zero config only has its zero
	// rate/queue/seed/delay fields defaulted, so an explicitly
	// loss-free link stays loss-free.
	Fwd netem.Config
	// Rev, when non-nil, impairs the ACK path independently (the
	// per-direction LinkSpec). nil derives a clean reverse channel
	// with the forward delay, so the RTT is symmetric.
	Rev *netem.Config
}

// s6Tuning is the modern stack configuration for this scenario.
func s6Tuning(cc string) *fstack.TCPTuning {
	return &fstack.TCPTuning{
		SACK:        true,
		WindowScale: s6WScale,
		SndBufBytes: s6SndBuf,
		RcvBufBytes: s6RcvBuf,
		Congestion:  cc,
	}
}

// Setup6 is a wired Scenario 6 topology.
type Setup6 struct {
	*testbed.Bed
	Cfg Scenario6Config
}

// Link is the WAN impairment pipeline (direction 0 = data path).
func (s *Setup6) Link() *netem.Link { return s.Links[0] }

// NewScenario6 builds the composed layout: one fast port with
// cfg.Shards RSS-steered queue pairs and CPU-budgeted shards, and one
// link partner behind the per-direction impairment pipeline.
func NewScenario6(clk hostos.Clock, cfg Scenario6Config) (*Setup6, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("core: scenario 6 needs at least one shard")
	}
	fwd := cfg.Fwd
	// Default loss only on the untouched zero config: a caller who
	// shaped the link at all (even just its delay) asked for exactly
	// the loss they set — possibly none.
	if fwd == (netem.Config{}) {
		fwd.GEBadProb, fwd.GERecoverProb = netem.GEFromStationary(s6Loss, s6FadeSlots)
	}
	if fwd.RateBps == 0 {
		fwd.RateBps = s6RateBps
	}
	if fwd.QueueBytes == 0 {
		fwd.QueueBytes = s6QueueBytes
	}
	if fwd.Seed == 0 {
		fwd.Seed = s6Seed
	}
	if fwd.DelayNS == 0 {
		fwd.DelayNS = s6DelayNS
	}
	var rev netem.Config
	if cfg.Rev != nil {
		rev = *cfg.Rev
		if rev.Seed == 0 {
			rev.Seed = fwd.Seed + 1
		}
	} else {
		rev = netem.Config{DelayNS: fwd.DelayNS, Seed: fwd.Seed + 1}
	}
	cfg.Fwd, cfg.Rev = fwd, &rev

	stack := testbed.StackSpec{
		Shards: cfg.Shards, RingSize: s6RingSize,
		CPUBps: s6CPUBps, CPUWindowNS: s6CPUWindow,
		RTOMinNS: s6RTOMin,
	}
	peerStack := testbed.StackSpec{RTOMinNS: s6RTOMin}
	if cfg.Modern {
		stack.Tuning = s6Tuning(cfg.Congestion)
		peerStack.Tuning = s6Tuning(cfg.Congestion)
	}
	// Fwd impairs the data direction: toward the peer for uploads,
	// toward the local box for downloads.
	link := &testbed.LinkSpec{ToPeer: fwd, ToLocal: rev}
	if cfg.Download {
		link = &testbed.LinkSpec{ToPeer: rev, ToLocal: fwd}
	}
	bed, err := testbed.Build(testbed.Spec{
		Clk: clk,
		Machine: testbed.MachineSpec{
			Name: "morello", MemBytes: s6MachineMem, Ports: 1,
			LineRateBps: s6LineRate, RxFifoBytes: s6RxFifoBytes, CapDMA: cfg.CapMode,
		},
		Compartments: []testbed.CompartmentSpec{
			{
				Name: "s6", CVM: cfg.CapMode, CVMName: "cvm1",
				CVMBytes: s6CVMMem, SegBytes: s6SegSize,
				PoolBufs: s6PoolBufs, PoolName: "s6-pkt",
				Ifs:   []testbed.IfSpec{{Port: 0}},
				Stack: stack,
			},
		},
		Peers: []testbed.PeerSpec{
			{
				Port: 0, LineRateBps: s6LineRate,
				SegBytes: s6SegSize, PoolBufs: s6PoolBufs,
				Link:  link,
				Stack: peerStack,
			},
		},
	})
	if err != nil {
		return nil, err
	}
	return &Setup6{Bed: bed, Cfg: cfg}, nil
}

// Scenario6Result is one measured point. Goodput is measured at the
// receivers (the far end of the impaired path), so retransmissions and
// sender-side buffering cannot inflate it.
type Scenario6Result struct {
	Shards   int
	Flows    int
	CapMode  bool
	Modern   bool
	Download bool
	// Fwd is the data direction's link config, whichever way data
	// flows.
	Fwd     netem.Config
	Mbps    float64   // aggregate receiver goodput over all flows
	PerFlow []float64 // per-flow receiver goodput
	// Stats aggregates the local shards' counters (the senders'
	// recovery story).
	Stats fstack.StackStats
	// FwdStats / RevStats are the link's per-direction accounting.
	FwdStats netem.DirStats
	RevStats netem.DirStats
}

// Scenario6Bandwidth drives flows concurrent iperf transfers between
// the sharded local box and the peer through the impaired link for
// durationNS of virtual traffic time. Uploads (the default) send from
// the local shards — the steering oracle places each connection on the
// shard its ACK stream will hit, as in Scenario 4's client mode.
// Downloads (Cfg.Download) send from the peer into listeners cloned
// across every shard, each SYN accepted wherever RSS lands it; the
// load generator engineers its source ports to round-robin the
// receiver's queues, as in Scenario 4's server mode.
func Scenario6Bandwidth(s *Setup6, flows int, durationNS int64) (Scenario6Result, error) {
	clk, ok := s.Clk.(*sim.VClock)
	if !ok {
		return Scenario6Result{}, fmt.Errorf("core: scenario 6 runs need the virtual clock")
	}
	if flows < 1 {
		return Scenario6Result{}, fmt.Errorf("core: scenario 6 needs at least one flow")
	}
	dataDir := 0 // link direction the data crosses
	if s.Cfg.Download {
		dataDir = 1
	}
	res := Scenario6Result{
		Shards: s.Sharded.NumShards(), Flows: flows,
		CapMode: s.Cfg.CapMode, Modern: s.Cfg.Modern, Download: s.Cfg.Download,
		Fwd: s.Link().DirConfig(dataDir),
	}

	api := s.Sharded.API()
	var appSteppers []func(now int64)
	var localCli []*iperf.Client
	var localSrv []*iperf.Server
	var peerCli []*iperf.Client
	var peerSrv []*iperf.Server
	for f := 0; f < flows; f++ {
		port := s6BasePort + uint16(f)
		if s.Cfg.Download {
			srv := iperf.NewServer(fstack.IPv4Addr{}, port)
			localSrv = append(localSrv, srv)
			appSteppers = append(appSteppers, func(now int64) { srv.Step(api, now) })
			cli := iperf.NewClient(localIP(0), port, durationNS)
			cli.LocalPort = engineerCport(s.Bed, f, port)
			peerCli = append(peerCli, cli)
		} else {
			cli := iperf.NewClient(peerIP(0), port, durationNS)
			localCli = append(localCli, cli)
			appSteppers = append(appSteppers, func(now int64) { cli.Step(api, now) })
			peerSrv = append(peerSrv, iperf.NewServer(fstack.IPv4Addr{}, port))
		}
	}
	papi := s.Peers[0].Env.Loop.Locked()
	s.Peers[0].Env.Loop.OnLoop = func(now int64) bool {
		for _, c := range peerCli {
			c.Step(papi, now)
		}
		for _, sv := range peerSrv {
			sv.Step(papi, now)
		}
		return true
	}

	allDone := func(clis []*iperf.Client, srvs []*iperf.Server) bool {
		for _, c := range clis {
			if !c.Done() {
				return false
			}
		}
		for _, sv := range srvs {
			if !sv.Done() {
				return false
			}
		}
		return true
	}
	done := func() bool {
		return allDone(localCli, localSrv) && allDone(peerCli, peerSrv)
	}
	// Recovery and the final drain ride WAN RTTs through a deep queue:
	// generous headroom beyond the traffic time.
	deadline := durationNS + 8_000e6 + 200*2*res.Fwd.DelayNS
	timed := append(timedOf(localCli, localSrv), timedOf(peerCli, peerSrv)...)
	if err := runVirtualUntil(clk, s.Bed, appSteppers, timed, done, deadline); err != nil {
		return res, err
	}

	// Goodput is read at the data receivers, behind the impaired path.
	recv := peerSrv
	if s.Cfg.Download {
		recv = localSrv
	}
	for f := 0; f < flows; f++ {
		var cErr, sErr hostos.Errno
		if s.Cfg.Download {
			cErr, sErr = peerCli[f].Err(), localSrv[f].Err()
		} else {
			cErr, sErr = localCli[f].Err(), peerSrv[f].Err()
		}
		if cErr != 0 {
			return res, fmt.Errorf("core: scenario 6 client %d failed: %v", f, cErr)
		}
		if sErr != 0 {
			return res, fmt.Errorf("core: scenario 6 server %d failed: %v", f, sErr)
		}
		rep := recv[f].Report()
		res.PerFlow = append(res.PerFlow, rep.Mbps())
		res.Mbps += rep.Mbps()
	}
	// Stats carry the data sender's recovery story: the local shards
	// for uploads, the peer stack for downloads.
	if s.Cfg.Download {
		s.Peers[0].Env.Stk.Lock()
		res.Stats = s.Peers[0].Env.Stk.Stats()
		s.Peers[0].Env.Stk.Unlock()
	} else {
		res.Stats = s.Sharded.Stats()
	}
	res.FwdStats = s.Link().Stats(dataDir)
	res.RevStats = s.Link().Stats(1 - dataDir)
	return res, nil
}

// DefaultScenario6Duration is the per-measurement traffic time.
const DefaultScenario6Duration = int64(300e6)

// RunScenario6 measures one configuration on a fresh virtual testbed.
func RunScenario6(cfg Scenario6Config, flows int, durationNS int64) (Scenario6Result, error) {
	s, err := NewScenario6(sim.NewVClock(), cfg)
	if err != nil {
		return Scenario6Result{}, err
	}
	return Scenario6Bandwidth(s, flows, durationNS)
}

// RunScenario6Sweep measures every (shard count × recovery) pair in
// both Baseline and capability mode, at equal seeded link settings.
func RunScenario6Sweep(shardCounts []int, flows int, durationNS int64, base Scenario6Config) ([]Scenario6Result, error) {
	var cells []Scenario6Config
	for _, capMode := range []bool{false, true} {
		for _, modern := range []bool{false, true} {
			for _, k := range shardCounts {
				cfg := base
				cfg.Shards, cfg.CapMode, cfg.Modern = k, capMode, modern
				cells = append(cells, cfg)
			}
		}
	}
	return RunCells(Parallelism(), len(cells), func(i int) (Scenario6Result, error) {
		cfg := cells[i]
		r, err := RunScenario6(cfg, flows, durationNS)
		if err != nil {
			return r, fmt.Errorf("shards=%d cap=%v modern=%v: %w", cfg.Shards, cfg.CapMode, cfg.Modern, err)
		}
		return r, nil
	})
}

// FormatScenario6 renders a sweep. Speedup is against the paper
// configuration — 1 shard, go-back-N — of the same capability mode:
// the composed win of sharding and modern recovery together.
func FormatScenario6(results []Scenario6Result) string {
	var b strings.Builder
	mode := ""
	if len(results) > 0 && results[0].Download {
		mode = " (download: peer into RSS-cloned listeners)"
	}
	fmt.Fprintf(&b, "SCENARIO 6 — sharded stack over an impaired WAN: aggregate goodput%s\n", mode)
	if len(results) > 0 {
		f := results[0].Fwd
		loss := f.LossRate
		kind := "i.i.d."
		if f.GEBadProb > 0 {
			loss = f.GEBadProb / (f.GEBadProb + f.GERecoverProb) * f.GELossBad
			kind = "bursty"
		}
		fmt.Fprintf(&b, "(%.1f Gbit/s bottleneck, %.0f ms RTT, %.2f%% %s loss, clean ACK path unless impaired)\n",
			f.RateBps/1e9, float64(2*f.DelayNS)/1e6, loss*100, kind)
	}
	base := map[bool]float64{}
	for _, r := range results {
		if r.Shards == 1 && !r.Modern {
			base[r.CapMode] = r.Mbps
		}
	}
	fmt.Fprintf(&b, "  %-10s %-9s %7s %6s %10s %9s  %s\n",
		"Mode", "Recovery", "Shards", "Flows", "Mbit/s", "Speedup", "recovery breakdown")
	for _, r := range results {
		mode := "baseline"
		if r.CapMode {
			mode = "cheri"
		}
		rec := "go-back-N"
		if r.Modern {
			rec = "SACK+WS"
		}
		speedup := "-"
		if b1 := base[r.CapMode]; b1 > 0 {
			speedup = fmt.Sprintf("%.2fx", r.Mbps/b1)
		}
		fmt.Fprintf(&b, "  %-10s %-9s %7d %6d %10.0f %9s  %s\n",
			mode, rec, r.Shards, r.Flows, r.Mbps, speedup, r.Stats.RecoverySummary())
	}
	return b.String()
}
