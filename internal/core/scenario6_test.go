package core

import (
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

// s6TestDuration keeps CI runs short; the composed ratio is already
// stable at this length.
const s6TestDuration = int64(300e6)

// TestScenario6ComposedGate is the tentpole acceptance gate: on the
// same seeded lossy rate-limited link, 4 shards + SACK must deliver at
// least twice the aggregate goodput of 1 shard + go-back-N (the
// paper's stack), in both Baseline and capability mode.
func TestScenario6ComposedGate(t *testing.T) {
	for _, capMode := range []bool{false, true} {
		legacy, err := RunScenario6(Scenario6Config{Shards: 1, CapMode: capMode}, 8, s6TestDuration)
		if err != nil {
			t.Fatalf("cap=%v legacy: %v", capMode, err)
		}
		modern, err := RunScenario6(Scenario6Config{Shards: 4, CapMode: capMode, Modern: true}, 8, s6TestDuration)
		if err != nil {
			t.Fatalf("cap=%v modern: %v", capMode, err)
		}
		t.Logf("cap=%v: 1 shard + go-back-N %.0f Mbit/s, 4 shards + SACK %.0f Mbit/s (%.2fx)",
			capMode, legacy.Mbps, modern.Mbps, modern.Mbps/legacy.Mbps)
		if modern.Mbps < 2*legacy.Mbps {
			t.Fatalf("cap=%v: composed stack %.0f Mbit/s < 2x legacy %.0f Mbit/s",
				capMode, modern.Mbps, legacy.Mbps)
		}
		// The win must come from both axes working: flows really spread
		// over shards, and the link really destroyed frames.
		if modern.FwdStats.Lost() == 0 {
			t.Fatal("impaired link recorded no loss")
		}
		busy := 0
		for _, mbps := range modern.PerFlow {
			if mbps > 0 {
				busy++
			}
		}
		if busy != 8 {
			t.Fatalf("only %d of 8 flows moved data", busy)
		}
	}
}

// TestScenario6ReversePathImpairment exercises the per-direction
// LinkSpec end to end: squeezing only the ACK channel (the reverse
// direction) must cost forward goodput, even though the data path is
// untouched.
func TestScenario6ReversePathImpairment(t *testing.T) {
	clean, err := RunScenario6(Scenario6Config{Shards: 2, Modern: true}, 4, s6TestDuration)
	if err != nil {
		t.Fatal(err)
	}
	// A 2 Mbit/s ACK channel with the same propagation delay: the data
	// direction's config is bit-identical (same seed, same impairments).
	squeezed, err := RunScenario6(Scenario6Config{
		Shards: 2, Modern: true,
		Rev: &netem.Config{DelayNS: s6DelayNS, RateBps: 2e6, QueueBytes: 64 << 10},
	}, 4, s6TestDuration)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clean ACK path %.0f Mbit/s, 2 Mbit/s ACK path %.0f Mbit/s", clean.Mbps, squeezed.Mbps)
	if squeezed.Mbps > 0.7*clean.Mbps {
		t.Fatalf("reverse-path squeeze did not bite: %.0f vs %.0f Mbit/s", squeezed.Mbps, clean.Mbps)
	}
	if squeezed.FwdStats.Sent == 0 || squeezed.RevStats.Sent == 0 {
		t.Fatal("per-direction link accounting missing")
	}
}

// TestScenario6DownloadMode exercises the server-mode sweep: M
// download flows land in the listeners cloned across the shards
// through the impaired link, so RSS acceptance is exercised under
// loss. The flows must spread over the shards, the data must cross
// the impaired direction, and the sender stats must come from the
// peer (the data sender in this mode).
func TestScenario6DownloadMode(t *testing.T) {
	s, err := NewScenario6(sim.NewVClock(), Scenario6Config{Shards: 4, Modern: true, Download: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Scenario6Bandwidth(s, 8, s6TestDuration)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("download: %.0f Mbit/s aggregate over %d shards [%s]", r.Mbps, r.Shards, r.Stats.RecoverySummary())
	if !r.Download {
		t.Fatal("result not marked as download mode")
	}
	busy := 0
	for _, mbps := range r.PerFlow {
		if mbps > 0 {
			busy++
		}
	}
	if busy != 8 {
		t.Fatalf("only %d of 8 download flows moved data", busy)
	}
	// The data direction (peer -> local) is the impaired one.
	if r.FwdStats.Lost() == 0 {
		t.Fatal("impaired data direction recorded no loss")
	}
	if r.FwdStats.Delivered < r.RevStats.Delivered {
		t.Fatalf("data direction carried fewer frames (%d) than the ACK path (%d)",
			r.FwdStats.Delivered, r.RevStats.Delivered)
	}
	// RSS acceptance really spread the SYNs: more than one shard took
	// traffic.
	active := 0
	for i := 0; i < s.Sharded.NumShards(); i++ {
		if st := s.Sharded.ShardStats(i); st.RxFrames > 0 {
			active++
		}
	}
	if active < 2 {
		t.Fatalf("downloads landed on %d shard(s); RSS acceptance not exercised", active)
	}
	// The recovery story belongs to the data sender — the peer.
	if r.Stats.Retransmit == 0 {
		t.Fatal("peer (sender) stats show no retransmissions on a lossy path")
	}
}

// TestScenario6Validation pins the constructor's error paths.
func TestScenario6Validation(t *testing.T) {
	if _, err := NewScenario6(sim.NewVClock(), Scenario6Config{Shards: 0}); err == nil {
		t.Fatal("0 shards accepted")
	}
	s, err := NewScenario6(sim.NewVClock(), Scenario6Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Scenario6Bandwidth(s, 0, s6TestDuration); err == nil {
		t.Fatal("0 flows accepted")
	}
	// Defaults are filled into the effective config.
	if s.Cfg.Fwd.RateBps != s6RateBps || s.Cfg.Fwd.GEBadProb == 0 || s.Cfg.Rev == nil {
		t.Fatalf("defaults not filled: %+v", s.Cfg)
	}
	// The reverse channel matches the forward delay but draws from its
	// own seed stream.
	if s.Cfg.Rev.DelayNS != s.Cfg.Fwd.DelayNS || s.Cfg.Rev.Seed == s.Cfg.Fwd.Seed {
		t.Fatalf("reverse defaults wrong: %+v", s.Cfg.Rev)
	}
}
