package core

import (
	"fmt"
	"strings"

	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/iperf"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Scenario 7 — WAN utilization vs congestion control. Scenario 5
// showed that with SACK and window scaling in place the recovery
// machinery is no longer the bottleneck on high-BDP paths: on the
// 100 Mbit/s × 100 ms RTT link the modern stack still idles at ~40%
// of the bottleneck, because Reno grows the window one MSS per RTT —
// at 100 ms that is ~12 KB/s² of acceleration, and every loss event
// throws away tens of seconds of climbing. This scenario swaps the
// congestion controller (the fstack CC seam) while holding everything
// else fixed: one flow, modern tuning on both ends, a seeded
// 100 Mbit/s bottleneck with a deep queue and sparse short loss
// fades, the one-way delay swept across the paper's BDP ladder
// (10/50/100/200 ms RTT). CUBIC's cubic-in-time growth (RFC 8312) is
// RTT-independent, and its 0.7× decrease plus the queue's headroom
// keeps the pipe covered across fades Reno's halvings cannot absorb —
// the table reads off exactly what Reno leaves on the table and CUBIC
// recovers, in Baseline and capability mode.

const (
	// s7LineRate is both ports' access-line rate; the netem bottleneck
	// below it shapes the path.
	s7LineRate = 1e9
	// s7RateBps is the WAN bottleneck under study.
	s7RateBps = 100e6
	// s7DelayNS is the default one-way propagation delay (50 ms: the
	// 100 ms RTT point the acceptance gate pins).
	s7DelayNS = int64(50e6)
	// s7QueueBytes is a deep (bufferbloat-era) bottleneck queue, ~2.4×
	// the 100 ms path's 1.25 MB BDP. The depth is load-bearing for the
	// comparison: after a loss event CUBIC's 0.7× window cut usually
	// still covers the BDP (the queue just drains a little), while
	// Reno's 0.5× cuts compound below it — and Reno then needs one
	// RTT per MSS to climb back, ~100 s at this BDP.
	s7QueueBytes = 3 << 20
	// s7GEBadProb / s7GERecoverProb: short seeded Gilbert–Elliott
	// fades (~2 wire slots ≈ 2-3 frames, a few seconds apart). The
	// fades are the periodic loss events whose *spacing* exposes the
	// growth-rate difference: several fall inside every run, so the
	// figure measures the climb between events, not one recovery.
	s7GEBadProb     = 3e-5
	s7GERecoverProb = 0.5
	// s7Seed makes every impairment stream reproducible.
	s7Seed = 2031

	// s7RTOMin is FreeBSD's 200 ms floor, as in Scenario 5.
	s7RTOMin = int64(200e6)

	// Modern-tuning knobs, sized for the 200 ms RTT point: BDP 2.5 MB
	// plus queue fits the 4 MiB buffers; shift 7 advertises up to
	// 8 MiB through the 16-bit window field.
	s7SndBuf = 4 << 20
	s7RcvBuf = 4 << 20
	s7WScale = 7

	// Environment sizing, as Scenario 5 (two 4 MiB buffers + pool).
	s7SegSize  = 24 << 20
	s7CVMMem   = 32 << 20
	s7PoolBufs = 3072

	s7Port = uint16(5701)
)

// Scenario7Config parameterizes the CC-comparison testbed.
type Scenario7Config struct {
	// CapMode runs the local stack inside a cVM with capability DMA;
	// false is the Baseline process layout.
	CapMode bool
	// Congestion selects the sender's congestion controller —
	// fstack.CCReno or fstack.CCCubic ("" = reno). Both ends share the
	// tuning; only the data sender's controller matters.
	Congestion string
	// Link is the impairment pipeline, applied symmetrically. Zero
	// values get the Scenario 7 defaults for rate, queue, loss and
	// seed; pass explicit fields to sweep delay.
	Link netem.Config
}

// s7Tuning is the modern stack configuration with a selectable
// congestion controller.
func s7Tuning(cc string) *fstack.TCPTuning {
	return &fstack.TCPTuning{
		SACK:        true,
		WindowScale: s7WScale,
		SndBufBytes: s7SndBuf,
		RcvBufBytes: s7RcvBuf,
		Congestion:  cc,
	}
}

// Setup7 is a wired Scenario 7 topology.
type Setup7 struct {
	*testbed.Bed
	Cfg Scenario7Config
}

// Link is the WAN impairment pipeline.
func (s *Setup7) Link() *netem.Link { return s.Links[0] }

// NewScenario7 builds the WAN layout: local box (process or cVM) and
// one link partner, joined by the impairment pipeline, with the
// selected congestion controller on both stacks.
func NewScenario7(clk hostos.Clock, cfg Scenario7Config) (*Setup7, error) {
	if !fstack.ValidCongestion(cfg.Congestion) {
		return nil, fmt.Errorf("core: scenario 7: unknown congestion control %q (have %v)",
			cfg.Congestion, fstack.CongestionAlgos())
	}
	if cfg.Link.RateBps == 0 {
		cfg.Link.RateBps = s7RateBps
	}
	if cfg.Link.QueueBytes == 0 {
		cfg.Link.QueueBytes = s7QueueBytes
	}
	if cfg.Link.DelayNS == 0 {
		cfg.Link.DelayNS = s7DelayNS
	}
	if cfg.Link.Seed == 0 {
		cfg.Link.Seed = s7Seed
	}
	if cfg.Link.LossRate == 0 && cfg.Link.GEBadProb == 0 {
		cfg.Link.GEBadProb = s7GEBadProb
		cfg.Link.GERecoverProb = s7GERecoverProb
	}
	stack := testbed.StackSpec{RTOMinNS: s7RTOMin, Tuning: s7Tuning(cfg.Congestion)}
	name := "proc"
	if cfg.CapMode {
		name = "cvm1"
	}
	bed, err := testbed.Build(testbed.Spec{
		Clk: clk,
		Machine: testbed.MachineSpec{
			Name: "morello", Ports: 1, LineRateBps: s7LineRate, CapDMA: cfg.CapMode,
		},
		Compartments: []testbed.CompartmentSpec{
			{
				Name: name, CVM: cfg.CapMode,
				CVMBytes: s7CVMMem, SegBytes: s7SegSize, PoolBufs: s7PoolBufs,
				Ifs:   []testbed.IfSpec{{Port: 0}},
				Stack: stack,
			},
		},
		Peers: []testbed.PeerSpec{
			{
				Port: 0, LineRateBps: s7LineRate,
				SegBytes: s7SegSize, PoolBufs: s7PoolBufs,
				Link:  testbed.SymmetricLink(cfg.Link),
				Stack: stack,
			},
		},
	})
	if err != nil {
		return nil, err
	}
	return &Setup7{Bed: bed, Cfg: cfg}, nil
}

// Scenario7Result is one measured (RTT, congestion control) point.
// Goodput is measured at the receiver behind the impaired path.
type Scenario7Result struct {
	CapMode    bool
	Congestion string
	Link       netem.Config
	Mbps       float64
	// Stats are the sending stack's counters.
	Stats fstack.StackStats
	// Fwd is the data direction's link accounting.
	Fwd netem.DirStats
}

// RTTms is the path round-trip time implied by the link config.
func (r Scenario7Result) RTTms() float64 { return float64(2*r.Link.DelayNS) / 1e6 }

// Utilization is goodput as a fraction of the bottleneck rate.
func (r Scenario7Result) Utilization() float64 { return r.Mbps * 1e6 / r.Link.RateBps }

// ccName renders the effective controller name.
func ccName(cc string) string {
	if cc == "" {
		return fstack.CCReno
	}
	return cc
}

// Scenario7Bandwidth sends one flow through the impaired link for
// durationNS of virtual traffic time.
func Scenario7Bandwidth(s *Setup7, durationNS int64) (Scenario7Result, error) {
	clk, ok := s.Clk.(*sim.VClock)
	if !ok {
		return Scenario7Result{}, fmt.Errorf("core: scenario 7 runs need the virtual clock")
	}
	res := Scenario7Result{
		CapMode: s.Cfg.CapMode, Congestion: ccName(s.Cfg.Congestion), Link: s.Link().Config(),
	}

	cli := iperf.NewClient(peerIP(0), s7Port, durationNS)
	attachInLoop(s.Envs[0], cli.Step)
	srv := iperf.NewServer(fstack.IPv4Addr{}, s7Port)
	attachInLoop(s.Peers[0].Env, srv.Step)

	done := func() bool { return cli.Done() && srv.Done() }
	deadline := durationNS + 8_000e6 + 200*2*s.Link().Config().DelayNS
	if err := runVirtualUntil(clk, s.Bed, nil, timedOf([]*iperf.Client{cli}, []*iperf.Server{srv}), done, deadline); err != nil {
		return res, err
	}
	if cli.Err() != 0 {
		return res, fmt.Errorf("core: scenario 7 client failed: %v", cli.Err())
	}
	if srv.Err() != 0 {
		return res, fmt.Errorf("core: scenario 7 server failed: %v", srv.Err())
	}
	res.Mbps = srv.Report().Mbps()
	s.Envs[0].Stk.Lock()
	res.Stats = s.Envs[0].Stk.Stats()
	s.Envs[0].Stk.Unlock()
	res.Fwd = s.Link().Stats(0)
	return res, nil
}

// DefaultScenario7Duration is the per-measurement traffic time: long
// enough that several fade epochs fit and CUBIC's ~K-second cubic
// epochs (K ≈ 9 s at this BDP) can play out, so the growth slopes —
// not one recovery — decide the figure.
const DefaultScenario7Duration = int64(30_000e6)

// RunScenario7 measures one configuration on a fresh virtual testbed.
func RunScenario7(cfg Scenario7Config, durationNS int64) (Scenario7Result, error) {
	s, err := NewScenario7(sim.NewVClock(), cfg)
	if err != nil {
		return Scenario7Result{}, err
	}
	return Scenario7Bandwidth(s, durationNS)
}

// RunScenario7RTTSweep measures goodput vs RTT: for every delay point,
// each congestion controller in ccs, in both Baseline and capability
// mode, at equal seeded link settings.
func RunScenario7RTTSweep(delaysNS []int64, ccs []string, rateBps float64, durationNS int64) ([]Scenario7Result, error) {
	var cells []Scenario7Config
	for _, d := range delaysNS {
		for _, capMode := range []bool{false, true} {
			for _, cc := range ccs {
				cells = append(cells, Scenario7Config{
					CapMode: capMode, Congestion: cc,
					Link: netem.Config{DelayNS: d, RateBps: rateBps},
				})
			}
		}
	}
	return RunCells(Parallelism(), len(cells), func(i int) (Scenario7Result, error) {
		cfg := cells[i]
		r, err := RunScenario7(cfg, durationNS)
		if err != nil {
			return r, fmt.Errorf("delay=%dms cap=%v cc=%s: %w",
				cfg.Link.DelayNS/1e6, cfg.CapMode, ccName(cfg.Congestion), err)
		}
		return r, nil
	})
}

// FormatScenario7 renders a sweep with per-row utilization and, where
// both controllers ran the same point, CUBIC's gain over Reno.
func FormatScenario7(results []Scenario7Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SCENARIO 7 — WAN utilization vs congestion control\n")
	if len(results) > 0 {
		l := results[0].Link
		loss := l.LossRate
		kind := "i.i.d."
		if l.GEBadProb > 0 {
			loss = l.GEBadProb / (l.GEBadProb + l.GERecoverProb) * l.GELossBad
			kind = "bursty"
		}
		fmt.Fprintf(&b, "(%.0f Mbit/s bottleneck, %.1f MiB queue, %.3f%% %s loss, one flow, SACK+WS on)\n",
			l.RateBps/1e6, float64(l.QueueBytes)/(1<<20), loss*100, kind)
	}
	// Reno baselines per (mode, RTT) for the gain column.
	reno := map[string]float64{}
	key := func(r Scenario7Result) string {
		return fmt.Sprintf("%v/%.0f", r.CapMode, r.RTTms())
	}
	for _, r := range results {
		if r.Congestion == fstack.CCReno {
			reno[key(r)] = r.Mbps
		}
	}
	fmt.Fprintf(&b, "  %-9s %-6s %8s %10s %6s %8s  %s\n",
		"Mode", "CC", "RTT(ms)", "Mbit/s", "Util", "vs reno", "recovery breakdown")
	for _, r := range results {
		mode := "baseline"
		if r.CapMode {
			mode = "cheri"
		}
		gain := "-"
		if base := reno[key(r)]; base > 0 && r.Congestion != fstack.CCReno {
			gain = fmt.Sprintf("%.2fx", r.Mbps/base)
		}
		fmt.Fprintf(&b, "  %-9s %-6s %8.0f %10.1f %5.0f%% %8s  %s\n",
			mode, r.Congestion, r.RTTms(), r.Mbps, r.Utilization()*100, gain, r.Stats.RecoverySummary())
	}
	return b.String()
}
