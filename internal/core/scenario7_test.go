package core

import (
	"strings"
	"testing"

	"repro/internal/fstack"
	"repro/internal/netem"
	"repro/internal/sim"
)

// TestScenario7CubicGate is the tentpole acceptance gate: on the
// seeded 100 Mbit/s × 100 ms RTT default path, CUBIC must deliver at
// least twice Reno's goodput AND at least 70% of the bottleneck, in
// both Baseline and capability mode. The default Scenario 7 link and
// duration are exactly the gated configuration, so this is the same
// table `cherinet scenario7` prints.
func TestScenario7CubicGate(t *testing.T) {
	skipUnderRace(t) // deterministic lockstep run; too slow under the detector
	for _, capMode := range []bool{false, true} {
		reno, err := RunScenario7(Scenario7Config{CapMode: capMode, Congestion: fstack.CCReno},
			DefaultScenario7Duration)
		if err != nil {
			t.Fatalf("cap=%v reno: %v", capMode, err)
		}
		cubic, err := RunScenario7(Scenario7Config{CapMode: capMode, Congestion: fstack.CCCubic},
			DefaultScenario7Duration)
		if err != nil {
			t.Fatalf("cap=%v cubic: %v", capMode, err)
		}
		t.Logf("cap=%v: reno %.1f Mbit/s (util %.0f%%), cubic %.1f Mbit/s (util %.0f%%), %.2fx",
			capMode, reno.Mbps, reno.Utilization()*100, cubic.Mbps, cubic.Utilization()*100,
			cubic.Mbps/reno.Mbps)
		if cubic.Mbps < 2*reno.Mbps {
			t.Fatalf("cap=%v: cubic %.1f Mbit/s < 2x reno %.1f Mbit/s", capMode, cubic.Mbps, reno.Mbps)
		}
		if cubic.Utilization() < 0.70 {
			t.Fatalf("cap=%v: cubic utilization %.0f%% < 70%%", capMode, cubic.Utilization()*100)
		}
		// The comparison must be about growth between loss events, not
		// about recovery style: both runs ride the same seeded fades
		// and neither may collapse into timeout territory.
		if reno.Fwd.LostBurst == 0 || cubic.Fwd.LostBurst == 0 {
			t.Fatalf("cap=%v: seeded fades never fired (reno %d, cubic %d)",
				capMode, reno.Fwd.LostBurst, cubic.Fwd.LostBurst)
		}
	}
}

// TestScenario7Validation pins the constructor's error paths and the
// config defaulting.
func TestScenario7Validation(t *testing.T) {
	if _, err := NewScenario7(sim.NewVClock(), Scenario7Config{Congestion: "vegas"}); err == nil {
		t.Fatal("unknown congestion control accepted")
	}
	s, err := NewScenario7(sim.NewVClock(), Scenario7Config{Congestion: fstack.CCCubic})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Cfg.Link
	if cfg.RateBps != s7RateBps || cfg.QueueBytes != s7QueueBytes ||
		cfg.DelayNS != s7DelayNS || cfg.GEBadProb != s7GEBadProb || cfg.Seed != s7Seed {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
	// Both stacks got the cubic tuning.
	if s.Envs[0].Stk.TCPTuning().Congestion != fstack.CCCubic ||
		s.Peers[0].Env.Stk.TCPTuning().Congestion != fstack.CCCubic {
		t.Fatal("congestion tuning not applied to both ends")
	}
}

// TestScenario7FormatGain pins the summary's gain column: cubic rows
// report their speedup over the reno row of the same mode and RTT.
func TestScenario7FormatGain(t *testing.T) {
	link := netem.Config{RateBps: s7RateBps, QueueBytes: s7QueueBytes, DelayNS: s7DelayNS,
		GEBadProb: s7GEBadProb, GERecoverProb: s7GERecoverProb, GELossBad: 1}
	results := []Scenario7Result{
		{Congestion: fstack.CCReno, Mbps: 30, Link: link},
		{Congestion: fstack.CCCubic, Mbps: 75, Link: link},
	}
	out := FormatScenario7(results)
	if !strings.Contains(out, "2.50x") {
		t.Fatalf("gain column missing 2.50x:\n%s", out)
	}
	if !strings.Contains(out, "cubic") || !strings.Contains(out, "reno") {
		t.Fatalf("controller names missing:\n%s", out)
	}
}
