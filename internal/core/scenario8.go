package core

import (
	"fmt"
	"strings"

	"repro/internal/churn"
	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Scenario 8 — connection churn storm. Scenarios 4-7 measure the
// datapath: long flows, bytes per second. This scenario measures the
// connection plane the connscale work rebuilt: the timing wheel (no
// per-conn timer scans), the ready list (poll visits only conns with
// due work), the SYN cache (half-open handshakes cost a pooled entry,
// not a conn), the conn/socket arena (steady-state churn allocates
// nothing) and lazy socket buffers (an idle conn reserves no segment
// memory). The workload is the canonical front-end-box profile: a
// large population of idle connections held open while rate-paced
// short request flows churn — connect, one small write, close — with
// the client closing first so TIME_WAIT pressure lands on the client
// stack. Reported per point: achieved accepts/sec against the offered
// rate, connect-latency quantiles, and the idle population's segment
// and heap cost per connection, in Baseline and capability mode.

const (
	// s8LineRate / s8RxFifoBytes / s8RingSize: the scenario-4 fast
	// multi-queue port, so the connection plane — not the wire — is the
	// variable under test.
	s8LineRate    = 4e9
	s8RxFifoBytes = 512 << 10
	s8RingSize    = 256

	// s8Ports is the listen-port spread per flow class (preload and
	// churn); the varying client source ports scatter connections
	// across the RSS shards.
	s8Ports = 4
	// s8Backlog is every listener's accept-queue bound, comfortably
	// above the client's handshake concurrency so the sweep measures
	// throughput, not configured-in drops.
	s8Backlog = 512
	// s8PreloadPort / s8ChurnPort are the two listen ranges.
	s8PreloadPort = uint16(5801)
	s8ChurnPort   = uint16(5901)

	// s8BufBytes sizes both socket buffers. Short 64-byte flows need
	// nothing more, and small rings keep the lazily-backed segment
	// footprint of the churn population bounded.
	s8BufBytes = 8 << 10
	// s8SynCache bounds each shard's half-open cache.
	s8SynCache = 4096

	// Environment sizing: the segment carries the mbuf pool plus the
	// lazily-backed buffers of the active churn population (TIME_WAIT
	// holds a closed conn's buffers until the arena recycles them,
	// ~rate × 2MSL conns on the client side). Idle preload conns never
	// move data, so lazy buffers keep them out of this budget entirely.
	// Peers run on the default 64 MiB machine, so the segment must fit
	// under that; the local machine is sized explicitly for the cVM
	// window.
	s8SegSize  = 48 << 20
	s8CVMMem   = 56 << 20
	s8MemBytes = 160 << 20
	s8PoolBufs = 3072
)

// Scenario8Config parameterizes the churn testbed.
type Scenario8Config struct {
	// Shards is the server-side stack shard / NIC queue-pair count.
	Shards int
	// CapMode runs the server stack inside a cVM with capability DMA.
	CapMode bool
	// Conns is the idle connection population established and held
	// before the churn phase.
	Conns int
	// Rate is the offered churn load, short flows per second.
	Rate float64
	// DurationNS is the churn phase's virtual length.
	DurationNS int64
}

// s8Tuning is the connection-plane stack configuration.
func s8Tuning() *fstack.TCPTuning {
	return &fstack.TCPTuning{
		SndBufBytes:  s8BufBytes,
		RcvBufBytes:  s8BufBytes,
		LazyBuffers:  true,
		SynCacheSize: s8SynCache,
	}
}

// NewScenario8 builds the churn layout: a sharded server box (process
// or cVM) on a fast RSS port, one link partner as the load generator.
func NewScenario8(clk hostos.Clock, cfg Scenario8Config) (*testbed.Bed, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("core: scenario 8 needs at least one shard")
	}
	return testbed.Build(testbed.Spec{
		Clk: clk,
		Machine: testbed.MachineSpec{
			Name: "morello", MemBytes: s8MemBytes, Ports: 1,
			LineRateBps: s8LineRate, RxFifoBytes: s8RxFifoBytes,
			CapDMA: cfg.CapMode,
		},
		Compartments: []testbed.CompartmentSpec{
			{
				Name: "s8", CVM: cfg.CapMode, CVMName: "cvm1",
				CVMBytes: s8CVMMem, SegBytes: s8SegSize,
				PoolBufs: s8PoolBufs, PoolName: "s8-pkt",
				Ifs: []testbed.IfSpec{{Port: 0}},
				Stack: testbed.StackSpec{
					Shards: cfg.Shards, RingSize: s8RingSize,
					Tuning: s8Tuning(),
				},
			},
		},
		Peers: []testbed.PeerSpec{
			{
				Port: 0, LineRateBps: s8LineRate,
				SegBytes: s8SegSize, PoolBufs: s8PoolBufs,
				Stack: testbed.StackSpec{Tuning: s8Tuning()},
			},
		},
	})
}

// Scenario8Result is one measured churn point.
type Scenario8Result struct {
	Shards  int
	CapMode bool
	Conns   int
	Rate    float64

	// Completed short flows and the churn phase's virtual length.
	Completed uint64
	ChurnNS   int64
	// Deferred counts pace slots the client could not offer because its
	// handshake-concurrency cap was already outstanding (overload).
	Deferred uint64
	// ConnectP50NS / ConnectP99NS are churn-flow connect latencies.
	ConnectP50NS int64
	ConnectP99NS int64
	// SegPerConn / HeapPerConn are the idle population's cost: server
	// segment bytes per conn (lazy buffers should hold this at zero)
	// and process heap bytes per conn (both endpoints of each pair live
	// in this process).
	SegPerConn  float64
	HeapPerConn float64
	// Stats are the server shards' aggregated counters.
	Stats fstack.StackStats
}

// AcceptsPerSec is the achieved short-flow completion rate.
func (r Scenario8Result) AcceptsPerSec() float64 {
	if r.ChurnNS <= 0 {
		return 0
	}
	return float64(r.Completed) / (float64(r.ChurnNS) / 1e9)
}

// Scenario8Churn drives the two-phase storm on a built bed: establish
// and hold the idle population (measuring its cost), then churn.
func Scenario8Churn(s *testbed.Bed, cfg Scenario8Config) (Scenario8Result, error) {
	clk, ok := s.Clk.(*sim.VClock)
	if !ok {
		return Scenario8Result{}, fmt.Errorf("core: scenario 8 runs need the virtual clock")
	}
	res := Scenario8Result{Shards: cfg.Shards, CapMode: cfg.CapMode, Conns: cfg.Conns, Rate: cfg.Rate}

	srv := churn.NewServer(fstack.IPv4Addr{}, s8PreloadPort, s8ChurnPort, s8Ports, s8Backlog)
	api := s.Sharded.API()
	appSteppers := []func(now int64){func(now int64) { srv.Step(api, now) }}

	cli, err := churn.NewClient(localIP(0), s8PreloadPort, s8ChurnPort, s8Ports, cfg.Conns, cfg.Rate, cfg.DurationNS)
	if err != nil {
		return res, err
	}
	papi := s.Peers[0].Env.Loop.Locked()
	s.Peers[0].Env.Loop.OnLoop = func(now int64) bool {
		cli.Step(papi, now)
		return true
	}
	timed := []deadliner{cli, srv}
	fail := func(stage string) error {
		if cli.Err() != hostos.OK {
			return fmt.Errorf("core: scenario 8 client failed (%s): %v", stage, cli.Err())
		}
		if srv.Err() != hostos.OK {
			return fmt.Errorf("core: scenario 8 server failed (%s): %v", stage, srv.Err())
		}
		return nil
	}

	// Phase A: establish and hold the idle population.
	segBefore := s.Envs[0].Seg.Used()
	heapBefore := retainedBytes(s)
	preloaded := func() bool {
		return cli.PreloadDone() || cli.Err() != hostos.OK || srv.Err() != hostos.OK
	}
	if err := runVirtualUntil(clk, s, appSteppers, timed, preloaded, 8_000e6); err != nil {
		return res, err
	}
	if err := fail("preload"); err != nil {
		return res, err
	}
	if cfg.Conns > 0 {
		res.SegPerConn = float64(s.Envs[0].Seg.Used()-segBefore) / float64(cfg.Conns)
		res.HeapPerConn = float64(int64(retainedBytes(s))-int64(heapBefore)) / float64(cfg.Conns)
	}

	// Phase B: the rate-paced storm, over the held population.
	cli.StartChurn(clk.Now())
	churned := func() bool {
		if cli.Err() != hostos.OK || srv.Err() != hostos.OK {
			return true
		}
		return cli.Done() && srv.Served() >= cli.Completed()
	}
	if err := runVirtualUntil(clk, s, appSteppers, timed, churned, cfg.DurationNS+8_000e6); err != nil {
		return res, err
	}
	if err := fail("churn"); err != nil {
		return res, err
	}

	res.Completed = cli.Completed()
	res.ChurnNS = cli.ChurnNS()
	res.Deferred = cli.Deferred()
	res.ConnectP50NS = cli.Hist.Quantile(0.50)
	res.ConnectP99NS = cli.Hist.Quantile(0.99)
	res.Stats = s.Sharded.Stats()
	return res, nil
}

// retainedBytes sums the connection-plane heap accounting of every
// stack in the bed — the server shards plus each peer's single stack,
// since both endpoints of every preloaded pair live in this process.
// The preload delta therefore measures retained connection state
// deterministically: unlike a runtime.MemStats sample, it cannot see
// the allocations of sweep cells running concurrently on other host
// cores, so the report is byte-identical at any -parallel value.
func retainedBytes(s *testbed.Bed) uint64 {
	b := s.Sharded.RetainedBytes()
	for _, p := range s.Peers {
		b += p.Env.Stk.RetainedBytes()
	}
	return b
}

// DefaultScenario8Duration is the churn phase's virtual length.
const DefaultScenario8Duration = int64(1_000e6)

// RunScenario8 measures one configuration on a fresh virtual testbed.
func RunScenario8(cfg Scenario8Config) (Scenario8Result, error) {
	s, err := NewScenario8(sim.NewVClock(), cfg)
	if err != nil {
		return Scenario8Result{}, err
	}
	return Scenario8Churn(s, cfg)
}

// RunScenario8RateSweep measures the offered-rate ladder in both
// Baseline and capability mode at a fixed shard count and idle
// population.
func RunScenario8RateSweep(shards, conns int, rates []float64, durationNS int64) ([]Scenario8Result, error) {
	var cells []Scenario8Config
	for _, capMode := range []bool{false, true} {
		for _, rate := range rates {
			cells = append(cells, Scenario8Config{
				Shards: shards, CapMode: capMode, Conns: conns,
				Rate: rate, DurationNS: durationNS,
			})
		}
	}
	return RunCells(Parallelism(), len(cells), func(i int) (Scenario8Result, error) {
		cfg := cells[i]
		r, err := RunScenario8(cfg)
		if err != nil {
			return r, fmt.Errorf("rate=%.0f cap=%v: %w", cfg.Rate, cfg.CapMode, err)
		}
		return r, nil
	})
}

// FormatScenario8 renders a sweep. The drops column folds refused SYNs
// and accept-queue overflows; deferred marks points where the client
// itself could not sustain the offered rate.
func FormatScenario8(results []Scenario8Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SCENARIO 8 — connection churn storm: accepts/sec over an idle population\n")
	if len(results) > 0 {
		r := results[0]
		fmt.Fprintf(&b, "(port %.0f Gbit/s, %d shards, %d idle conns held, 64 B flows, client closes first)\n",
			s8LineRate/1e9, r.Shards, r.Conns)
	}
	fmt.Fprintf(&b, "  %-9s %10s %10s %9s %9s %10s %10s %7s\n",
		"Mode", "Offered/s", "Accepts/s", "p50(µs)", "p99(µs)", "seg B/idle", "heap B/idle", "drops")
	for _, r := range results {
		mode := "baseline"
		if r.CapMode {
			mode = "cheri"
		}
		note := ""
		if r.Deferred > 0 {
			note = fmt.Sprintf("  (client deferred %d)", r.Deferred)
		}
		fmt.Fprintf(&b, "  %-9s %10.0f %10.0f %9.1f %9.1f %10.1f %10.0f %7d%s\n",
			mode, r.Rate, r.AcceptsPerSec(),
			float64(r.ConnectP50NS)/1e3, float64(r.ConnectP99NS)/1e3,
			r.SegPerConn, r.HeapPerConn,
			r.Stats.SynDrops+r.Stats.AcceptOverflows, note)
	}
	return b.String()
}
