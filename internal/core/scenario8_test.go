package core

import (
	"testing"

	"repro/internal/sim"
)

// s8TestConfig is a churn point small enough for the unit-test
// budget: enough conns to spread across shards and enough flows for
// stable quantiles.
func s8TestConfig(capMode bool) Scenario8Config {
	return Scenario8Config{
		Shards: 2, CapMode: capMode, Conns: 400,
		Rate: 4000, DurationNS: 200e6,
	}
}

func TestScenario8Churn(t *testing.T) {
	r, err := RunScenario8(s8TestConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	offered := uint64(r.Rate * float64(r.ChurnNS) / 1e9)
	if r.Completed < offered*9/10 {
		t.Fatalf("completed %d of ~%d offered flows", r.Completed, offered)
	}
	if r.Stats.Accepts < uint64(r.Conns)+r.Completed {
		t.Fatalf("accepts %d < preload %d + churn %d", r.Stats.Accepts, r.Conns, r.Completed)
	}
	if r.Stats.SynDrops != 0 || r.Stats.AcceptOverflows != 0 {
		t.Fatalf("unforced drops: %d SYN, %d overflow", r.Stats.SynDrops, r.Stats.AcceptOverflows)
	}
	if r.ConnectP99NS <= 0 {
		t.Fatalf("connect p99 %d", r.ConnectP99NS)
	}
}

// TestScenario8IdleConnMemory pins the tentpole's memory claim: with
// lazy buffers, an idle accepted connection reserves no stack segment
// bytes, and its process-heap cost stays bounded (conn + socket +
// epoll bookkeeping on both endpoints, not buffer pages).
func TestScenario8IdleConnMemory(t *testing.T) {
	r, err := RunScenario8(s8TestConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if r.SegPerConn != 0 {
		t.Fatalf("idle conns reserved %.1f segment bytes each; lazy buffers should make this 0", r.SegPerConn)
	}
	// runtime.ReadMemStats deltas are approximate; the bound only has
	// to rule out eagerly-backed buffers (16 KiB per conn per side).
	if r.HeapPerConn > 8192 {
		t.Fatalf("idle conns cost %.0f heap bytes each", r.HeapPerConn)
	}
}

// TestScenario8CapGate is the acceptance gate: capability-mode accept
// throughput must stay within 2x of the baseline at the same offered
// load.
func TestScenario8CapGate(t *testing.T) {
	base, err := RunScenario8(s8TestConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	cap, err := RunScenario8(s8TestConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if base.Completed == 0 {
		t.Fatal("baseline completed no flows")
	}
	if cap.AcceptsPerSec() < base.AcceptsPerSec()/2 {
		t.Fatalf("capability mode accepts/s %.0f below half of baseline %.0f",
			cap.AcceptsPerSec(), base.AcceptsPerSec())
	}
}

// TestScenario8Deterministic pins run-to-run determinism: the churn
// workload drains epoll ready sets whose internal order is
// map-random, so any truncated visit or order dependence would show
// up as differing counters between identical runs.
func TestScenario8Deterministic(t *testing.T) {
	cfg := s8TestConfig(false)
	a, err := RunScenario8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Heap measurement is process-global and excluded.
	if a.Completed != b.Completed || a.ChurnNS != b.ChurnNS ||
		a.ConnectP50NS != b.ConnectP50NS || a.ConnectP99NS != b.ConnectP99NS ||
		a.Deferred != b.Deferred || a.Stats != b.Stats {
		t.Fatalf("identical configs diverged:\n  a: %+v stats %+v\n  b: %+v stats %+v",
			a, a.Stats, b, b.Stats)
	}
}

// TestScenario8ShardedStatsConsistency extends the sharded-stats
// invariant to the connection-plane counters: mid-churn, the
// aggregate must equal the per-shard sum (struct equality covers
// Accepts, SynDrops, AcceptOverflows and TimeWaitReuses) and the
// accept counter must be monotonic.
func TestScenario8ShardedStatsConsistency(t *testing.T) {
	cfg := s8TestConfig(false)
	s, err := NewScenario8(sim.NewVClock(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ss := s.Sharded

	checks, mismatches := 0, 0
	var prevAccepts uint64
	iter := 0
	visitHook = func(now int64, active bool) {
		iter++
		if iter%64 != 0 {
			return
		}
		checks++
		agg := ss.Stats()
		sum := ss.ShardStats(0)
		for i := 1; i < ss.NumShards(); i++ {
			sum.Add(ss.ShardStats(i))
		}
		if agg != sum {
			mismatches++
			if mismatches == 1 {
				t.Errorf("at %d ns: aggregate %+v != per-shard sum %+v", now, agg, sum)
			}
		}
		if agg.Accepts < prevAccepts {
			t.Errorf("at %d ns: accepts went backward (%d < %d)", now, agg.Accepts, prevAccepts)
		}
		prevAccepts = agg.Accepts
		if n := ss.ConnCount(); n < 0 {
			t.Errorf("at %d ns: negative conn count %d", now, n)
		}
		if d := ss.AcceptQueueDepth(); d < 0 {
			t.Errorf("at %d ns: negative accept-queue depth %d", now, d)
		}
	}
	defer func() { visitHook = nil }()

	if _, err := Scenario8Churn(s, cfg); err != nil {
		t.Fatal(err)
	}
	if checks < 10 {
		t.Fatalf("only %d mid-run checks fired; the hook did not observe the run", checks)
	}
	if mismatches > 0 {
		t.Fatalf("%d/%d mid-run aggregate mismatches", mismatches, checks)
	}
	if got := ss.ConnCount(); got != cfg.Conns {
		t.Fatalf("after the churn, %d conns remain; the %d-conn idle population should", got, cfg.Conns)
	}
}

func TestScenario8RejectsBadConfig(t *testing.T) {
	if _, err := NewScenario8(sim.NewVClock(), Scenario8Config{Shards: 0}); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := RunScenario8(Scenario8Config{Shards: 1, Conns: 300_000, Rate: 1000, DurationNS: 1e6}); err == nil {
		t.Fatal("a preload larger than the client port plan was accepted")
	}
}
