package core

import (
	"fmt"
	"strings"

	"repro/internal/app"
	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// Scenario 9 — request/response tail latency. Every other workload
// metric is bulk goodput; production traffic is RPC-shaped, many small
// exchanges where per-request p99 is the figure of merit. The workload
// is internal/app's two protocol pairs: an HTTP/1.1-style keep-alive
// exchange over TCP and a DNS-shaped query/answer over UDP, each
// driven either open-loop (offered rate swept, queueing shows up in
// the tail) or closed-loop (concurrency swept, each slot back-to-
// back). The server runs on the sharded box, baseline or capability
// mode; the client runs one worker per server shard on the peer, with
// source ports engineered through the device's steering oracle so
// worker w's flows land on shard w — per-worker latency histograms are
// merged across shards for the report, extending the paper's
// gate-crossing latency story (Figs 4-6) to realistic traffic.

const (
	// The scenario-4/8 fast multi-queue port: the application plane,
	// not the wire, is the variable under test.
	s9LineRate    = 4e9
	s9RxFifoBytes = 512 << 10
	s9RingSize    = 256

	// s9HTTPPort / s9DNSPort are the server's listen ports.
	s9HTTPPort = uint16(8080)
	s9DNSPort  = uint16(5353)
	// s9Backlog is the HTTP listener's accept-queue bound.
	s9Backlog = 512

	// s9BufBytes sizes socket buffers: a few pipelined responses fit,
	// but an overloaded open-loop point still backpressures into the
	// client's tail instead of buffering without bound.
	s9BufBytes = 32 << 10
	// s9SynCache bounds each shard's half-open cache.
	s9SynCache = 1024

	// Environment sizing, as in Scenario 8.
	s9SegSize  = 48 << 20
	s9CVMMem   = 56 << 20
	s9MemBytes = 160 << 20
	s9PoolBufs = 3072

	// s9SportBase is where the client workers' managed source-port walk
	// starts (the steering-oracle engineering picks from here up).
	s9SportBase = uint16(20000)
	// s9Seed fixes the impairment pipeline's PRNG.
	s9Seed = 9
	// s9RTOMin raises the retransmission floor when the link carries
	// ms-scale delay, as Scenario 5 does on WAN paths.
	s9RTOMin = int64(200e6)
	// s9MaxTries is the DNS client's total attempt budget per query.
	s9MaxTries = 3
)

// Scenario9Config parameterizes one request/response point.
type Scenario9Config struct {
	// Proto selects the exchange: "http" (TCP keep-alive) or "dns"
	// (UDP query/answer).
	Proto string
	// Shards is the server-side stack shard / NIC queue-pair count,
	// and the client worker count.
	Shards int
	// CapMode runs the server stack inside a cVM with capability DMA.
	CapMode bool
	// Rate, when positive, drives open-loop at that many requests per
	// second across all workers; 0 drives closed-loop.
	Rate float64
	// Conns is the HTTP keep-alive connection count (the concurrency,
	// closed-loop) or the DNS closed-loop outstanding-query count.
	Conns int
	// RespBytes is the HTTP response body size (0 = 1200).
	RespBytes int
	// Link, when non-zero, impairs the client-server path (loss,
	// delay; seeded for determinism).
	Link netem.Config
	// DurationNS is the measured phase's virtual length.
	DurationNS int64
	// TimeoutNS is the DNS retry timeout (0 = derived from the link
	// delay).
	TimeoutNS int64
	// Obs selects the observability instruments wired into the bed.
	// The zero value keeps the run byte-identical to an uninstrumented
	// one.
	Obs testbed.ObsSpec
}

func (c *Scenario9Config) applyDefaults() {
	if c.RespBytes == 0 {
		c.RespBytes = 1200
	}
	if c.TimeoutNS == 0 {
		c.TimeoutNS = 200e6 + 8*c.Link.DelayNS
	}
}

// s9Tuning is the request-plane stack configuration: modern loss
// recovery (small exchanges cannot afford go-back-N under impairment),
// sized buffers, lazy backing, a bounded SYN cache.
func s9Tuning() *fstack.TCPTuning {
	return &fstack.TCPTuning{
		SACK:         true,
		SndBufBytes:  s9BufBytes,
		RcvBufBytes:  s9BufBytes,
		LazyBuffers:  true,
		SynCacheSize: s9SynCache,
	}
}

// NewScenario9 builds the RPC layout: a sharded server box (process or
// cVM) on a fast RSS port, one peer as the load generator, optionally
// joined by an impairment pipeline.
func NewScenario9(clk hostos.Clock, cfg Scenario9Config) (*testbed.Bed, error) {
	if cfg.Proto != "http" && cfg.Proto != "dns" {
		return nil, fmt.Errorf("core: scenario 9 proto must be http or dns, not %q", cfg.Proto)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("core: scenario 9 needs at least one shard")
	}
	if cfg.Conns < 1 {
		return nil, fmt.Errorf("core: scenario 9 needs at least one connection")
	}
	cfg.applyDefaults()
	stack := testbed.StackSpec{
		Shards: cfg.Shards, RingSize: s9RingSize, Tuning: s9Tuning(),
	}
	peer := testbed.PeerSpec{
		Port: 0, LineRateBps: s9LineRate,
		SegBytes: s9SegSize, PoolBufs: s9PoolBufs,
		Stack: testbed.StackSpec{Tuning: s9Tuning()},
	}
	if cfg.Link != (netem.Config{}) {
		link := cfg.Link
		if link.Seed == 0 {
			link.Seed = s9Seed
		}
		peer.Link = testbed.SymmetricLink(link)
	}
	if cfg.Link.DelayNS >= 1e6 {
		// ms-scale RTTs: raise the RTO floor on both ends so queueing
		// jitter cannot fire spurious retransmissions (DESIGN.md §7).
		stack.RTOMinNS = s9RTOMin
		peer.Stack.RTOMinNS = s9RTOMin
	}
	return testbed.Build(testbed.Spec{
		Clk: clk,
		Machine: testbed.MachineSpec{
			Name: "morello", MemBytes: s9MemBytes, Ports: 1,
			LineRateBps: s9LineRate, RxFifoBytes: s9RxFifoBytes,
			CapDMA: cfg.CapMode,
		},
		Compartments: []testbed.CompartmentSpec{
			{
				Name: "s9", CVM: cfg.CapMode, CVMName: "cvm1",
				CVMBytes: s9CVMMem, SegBytes: s9SegSize,
				PoolBufs: s9PoolBufs, PoolName: "s9-pkt",
				Ifs:   []testbed.IfSpec{{Port: 0}},
				Stack: stack,
			},
		},
		Peers: []testbed.PeerSpec{peer},
		Obs:   cfg.Obs,
	})
}

// Scenario9Result is one measured request/response point.
type Scenario9Result struct {
	Proto   string
	Shards  int
	CapMode bool
	Rate    float64 // offered rate (open-loop); 0 = closed-loop
	Conns   int

	// Issued / Completed are requests sent and responses fully
	// received, summed over the workers; RunNS the longest worker's
	// measured phase.
	Issued    uint64
	Completed uint64
	RunNS     int64
	// Deferred counts open-loop pace slots skipped at the outstanding
	// cap (the load the client could not offer).
	Deferred uint64
	// Timeouts / Failed are DNS expirations and abandoned queries.
	Timeouts uint64
	Failed   uint64
	// P50NS/P99NS/P999NS are per-request latency quantiles, merged
	// across the workers (one per server shard).
	P50NS  int64
	P99NS  int64
	P999NS int64
	// Stats are the server shards' aggregated counters.
	Stats fstack.StackStats
	// Obs carries the run's instruments when cfg.Obs enabled them.
	Obs *obs.Obs
}

// CompletedPerSec is the achieved request completion rate.
func (r Scenario9Result) CompletedPerSec() float64 {
	if r.RunNS <= 0 {
		return 0
	}
	return float64(r.Completed) / (float64(r.RunNS) / 1e9)
}

// Drops folds the server-side refusal counters relevant to the
// request plane: refused SYNs, accept-queue overflows, and full UDP
// datagram queues.
func (r Scenario9Result) Drops() uint64 {
	return r.Stats.SynDrops + r.Stats.AcceptOverflows + r.Stats.UdpQueueDrops
}

// s9Sports walks the managed port range for n source ports whose
// inbound tuples the device steers to the wanted queue, so worker w's
// flows land on shard w. The cursor is shared across workers to keep
// every port distinct.
func s9Sports(s *testbed.Bed, proto uint8, dport uint16, want, n int, cursor *uint16) []uint16 {
	out := make([]uint16, 0, n)
	for guard := 0; len(out) < n && guard < 1<<17; guard++ {
		p := *cursor
		*cursor++
		if *cursor < s9SportBase {
			*cursor = s9SportBase
		}
		if s.Dev.RxQueueOf(peerIP(0), localIP(0), proto, p, dport) == want {
			out = append(out, p)
		}
	}
	return out
}

// s9Deadliners adapts the per-worker clients to the driver's deadline
// interface.
type s9Worker interface {
	deadliner
	Done() bool
	Err() hostos.Errno
}

// Scenario9Run drives one point on a built bed.
func Scenario9Run(s *testbed.Bed, cfg Scenario9Config) (res Scenario9Result, err error) {
	clk, ok := s.Clk.(*sim.VClock)
	if !ok {
		return res, fmt.Errorf("core: scenario 9 runs need the virtual clock")
	}
	cfg.applyDefaults()
	res = Scenario9Result{
		Proto: cfg.Proto, Shards: cfg.Shards, CapMode: cfg.CapMode,
		Rate: cfg.Rate, Conns: cfg.Conns,
	}

	// One client worker per server shard (never more workers than
	// connection slots), each with its own latency histogram.
	workers := cfg.Shards
	if workers > cfg.Conns {
		workers = cfg.Conns
	}
	share := func(total, w int) int { // worker w's slice of total slots
		n := total / workers
		if w < total%workers {
			n++
		}
		return n
	}

	api := s.Sharded.API()
	papi := s.Peers[0].Env.Loop.Locked()
	cursor := s9SportBase
	var (
		steppers []func(now int64)
		timed    []deadliner
		checks   []s9Worker
		hists    []*stats.Histogram
	)
	var srvErr func() hostos.Errno

	switch cfg.Proto {
	case "http":
		srv := app.NewHTTPServer(fstack.IPv4Addr{}, s9HTTPPort, s9Backlog, cfg.RespBytes)
		steppers = append(steppers, func(now int64) { srv.Step(api, now) })
		timed = append(timed, srv)
		srvErr = srv.Err
		var clis []*app.HTTPClient
		for w := 0; w < workers; w++ {
			conns := share(cfg.Conns, w)
			sports := s9Sports(s, fstack.ProtoTCP, s9HTTPPort, w, conns, &cursor)
			if len(sports) < conns {
				return res, fmt.Errorf("core: scenario 9 found no steered source ports for shard %d", w)
			}
			rate := cfg.Rate * float64(conns) / float64(cfg.Conns)
			cli, err := app.NewHTTPClient(localIP(0), s9HTTPPort, conns, sports, rate, cfg.DurationNS)
			if err != nil {
				return res, err
			}
			if s.Obs != nil && s.Obs.Trace != nil {
				cli.Trace, cli.Src = s.Obs.Trace, uint16(192+w)
			}
			clis = append(clis, cli)
			timed = append(timed, cli)
			checks = append(checks, cli)
			hists = append(hists, &cli.Hist)
		}
		s.Peers[0].Env.Loop.OnLoop = func(now int64) bool {
			for _, c := range clis {
				c.Step(papi, now)
			}
			return true
		}
		defer func() {
			for _, c := range clis {
				res.Issued += c.Issued()
				res.Completed += c.Completed()
				res.Deferred += c.Deferred()
				if c.RunNS() > res.RunNS {
					res.RunNS = c.RunNS()
				}
			}
		}()

	case "dns":
		srv := app.NewDNSServer(fstack.IPv4Addr{}, s9DNSPort)
		steppers = append(steppers, func(now int64) { srv.Step(api, now) })
		timed = append(timed, srv)
		srvErr = srv.Err
		var clis []*app.DNSClient
		for w := 0; w < workers; w++ {
			conc := share(cfg.Conns, w)
			sports := s9Sports(s, fstack.ProtoUDP, s9DNSPort, w, 1, &cursor)
			if len(sports) < 1 {
				return res, fmt.Errorf("core: scenario 9 found no steered source port for shard %d", w)
			}
			rate := cfg.Rate / float64(workers)
			if cfg.Rate <= 0 {
				rate = 0
			}
			cli, err := app.NewDNSClient(localIP(0), s9DNSPort, sports[0], rate, conc, cfg.DurationNS, cfg.TimeoutNS, s9MaxTries)
			if err != nil {
				return res, err
			}
			if s.Obs != nil && s.Obs.Trace != nil {
				cli.Trace, cli.Src = s.Obs.Trace, uint16(192+w)
			}
			clis = append(clis, cli)
			timed = append(timed, cli)
			checks = append(checks, cli)
			hists = append(hists, &cli.Hist)
		}
		s.Peers[0].Env.Loop.OnLoop = func(now int64) bool {
			for _, c := range clis {
				c.Step(papi, now)
			}
			return true
		}
		defer func() {
			for _, c := range clis {
				res.Issued += c.Issued()
				res.Completed += c.Completed()
				res.Deferred += c.Deferred()
				res.Timeouts += c.Timeouts()
				res.Failed += c.Failed()
				if c.RunNS() > res.RunNS {
					res.RunNS = c.RunNS()
				}
			}
		}()

	default:
		return res, fmt.Errorf("core: scenario 9 proto must be http or dns, not %q", cfg.Proto)
	}

	done := func() bool {
		if srvErr() != hostos.OK {
			return true
		}
		for _, c := range checks {
			if !c.Done() && c.Err() == hostos.OK {
				return false
			}
		}
		return true
	}
	// Budget: the measured phase plus generous handshake/drain/retry
	// slack (DNS abandons after MaxTries timeouts).
	slack := int64(8_000e6) + int64(s9MaxTries+1)*cfg.TimeoutNS
	if err = runVirtualUntil(clk, s, steppers, timed, done, cfg.DurationNS+slack); err != nil {
		return res, err
	}
	if errno := srvErr(); errno != hostos.OK {
		return res, fmt.Errorf("core: scenario 9 server failed: %v", errno)
	}
	for i, c := range checks {
		if errno := c.Err(); errno != hostos.OK {
			return res, fmt.Errorf("core: scenario 9 worker %d failed: %v", i, errno)
		}
	}

	// Merge the per-worker (per-shard) histograms for the report.
	var merged stats.Histogram
	for _, h := range hists {
		merged.Merge(h)
	}
	res.P50NS = merged.Quantile(0.50)
	res.P99NS = merged.Quantile(0.99)
	res.P999NS = merged.Quantile(0.999)
	res.Stats = s.Sharded.Stats()
	res.Obs = s.Obs
	if err = s.CloseObs(); err != nil {
		return res, err
	}
	return res, nil
}

// DefaultScenario9Duration is the measured phase's virtual length.
const DefaultScenario9Duration = int64(500e6)

// RunScenario9 measures one configuration on a fresh virtual testbed.
func RunScenario9(cfg Scenario9Config) (Scenario9Result, error) {
	s, err := NewScenario9(sim.NewVClock(), cfg)
	if err != nil {
		return Scenario9Result{}, err
	}
	return Scenario9Run(s, cfg)
}

// RunScenario9RateSweep measures the open-loop offered-rate ladder in
// both Baseline and capability mode.
func RunScenario9RateSweep(proto string, shards, conns int, rates []float64, link netem.Config, durationNS int64) ([]Scenario9Result, error) {
	var cells []Scenario9Config
	for _, capMode := range []bool{false, true} {
		for _, rate := range rates {
			cells = append(cells, Scenario9Config{
				Proto: proto, Shards: shards, CapMode: capMode,
				Rate: rate, Conns: conns, Link: link, DurationNS: durationNS,
			})
		}
	}
	return RunCells(Parallelism(), len(cells), func(i int) (Scenario9Result, error) {
		cfg := cells[i]
		r, err := RunScenario9(cfg)
		if err != nil {
			return r, fmt.Errorf("%s rate=%.0f cap=%v: %w", cfg.Proto, cfg.Rate, cfg.CapMode, err)
		}
		return r, nil
	})
}

// RunScenario9ConcurrencySweep measures the closed-loop concurrency
// ladder in both Baseline and capability mode.
func RunScenario9ConcurrencySweep(proto string, shards int, concs []int, link netem.Config, durationNS int64) ([]Scenario9Result, error) {
	var cells []Scenario9Config
	for _, capMode := range []bool{false, true} {
		for _, conc := range concs {
			cells = append(cells, Scenario9Config{
				Proto: proto, Shards: shards, CapMode: capMode,
				Conns: conc, Link: link, DurationNS: durationNS,
			})
		}
	}
	return RunCells(Parallelism(), len(cells), func(i int) (Scenario9Result, error) {
		cfg := cells[i]
		r, err := RunScenario9(cfg)
		if err != nil {
			return r, fmt.Errorf("%s conc=%d cap=%v: %w", cfg.Proto, cfg.Conns, cfg.CapMode, err)
		}
		return r, nil
	})
}

// FormatScenario9 renders a sweep: per-request latency quantiles
// against offered load, the drops column folding refused SYNs,
// accept-queue overflows and full UDP queues.
func FormatScenario9(title string, results []Scenario9Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SCENARIO 9 — request/response tail latency: %s\n", title)
	if len(results) > 0 {
		r := results[0]
		fmt.Fprintf(&b, "(port %.0f Gbit/s, %d shards, per-request latency merged across shards)\n",
			s9LineRate/1e9, r.Shards)
	}
	fmt.Fprintf(&b, "  %-9s %-14s %9s %9s %9s %9s %5s %6s\n",
		"Mode", "Load", "Done/s", "p50(µs)", "p99(µs)", "p999(µs)", "tmo", "drops")
	for _, r := range results {
		mode := "baseline"
		if r.CapMode {
			mode = "cheri"
		}
		load := fmt.Sprintf("closed ×%d", r.Conns)
		if r.Rate > 0 {
			load = fmt.Sprintf("open %.0f/s", r.Rate)
		}
		note := ""
		if r.Deferred > 0 {
			note = fmt.Sprintf("  (client deferred %d)", r.Deferred)
		}
		if r.Failed > 0 {
			note += fmt.Sprintf("  (%d failed)", r.Failed)
		}
		fmt.Fprintf(&b, "  %-9s %-14s %9.0f %9.1f %9.1f %9.1f %5d %6d%s\n",
			mode, load, r.CompletedPerSec(),
			float64(r.P50NS)/1e3, float64(r.P99NS)/1e3, float64(r.P999NS)/1e3,
			r.Timeouts, r.Drops(), note)
	}
	return b.String()
}
