package core

import (
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

// s9TestConfig is a moderate-load point: well under the port and
// server capacity, so every drop or timeout is unforced and the
// zero-drop gates below are meaningful.
func s9TestConfig(proto string, capMode bool) Scenario9Config {
	return Scenario9Config{
		Proto: proto, Shards: 2, CapMode: capMode,
		Rate: 4000, Conns: 8, DurationNS: 200e6,
	}
}

// requireClean asserts the moderate-load acceptance gate: zero
// unforced drops or timeouts, and every issued request completed.
func requireClean(t *testing.T, r Scenario9Result) {
	t.Helper()
	if r.Completed == 0 {
		t.Fatalf("completed no requests: %+v", r)
	}
	if r.Completed != r.Issued {
		t.Fatalf("issued %d but completed %d", r.Issued, r.Completed)
	}
	if r.Timeouts != 0 || r.Failed != 0 {
		t.Fatalf("unforced timeouts %d / failures %d", r.Timeouts, r.Failed)
	}
	if r.Drops() != 0 {
		t.Fatalf("unforced server drops: %d SYN, %d overflow, %d udp-queue",
			r.Stats.SynDrops, r.Stats.AcceptOverflows, r.Stats.UdpQueueDrops)
	}
	if r.P50NS <= 0 || r.P99NS < r.P50NS || r.P999NS < r.P99NS {
		t.Fatalf("implausible quantiles p50=%d p99=%d p999=%d", r.P50NS, r.P99NS, r.P999NS)
	}
}

func TestScenario9HTTPOpenLoop(t *testing.T) {
	r, err := RunScenario9(s9TestConfig("http", false))
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, r)
	offered := uint64(r.Rate * float64(r.RunNS) / 1e9)
	if r.Completed < offered*9/10 {
		t.Fatalf("completed %d of ~%d offered requests", r.Completed, offered)
	}
	if r.Deferred != 0 {
		t.Fatalf("moderate load deferred %d pace slots", r.Deferred)
	}
}

func TestScenario9HTTPClosedLoop(t *testing.T) {
	cfg := s9TestConfig("http", false)
	cfg.Rate = 0 // closed-loop: each connection back-to-back
	r, err := RunScenario9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, r)
	// Eight always-busy connections must beat the open-loop trickle.
	if r.CompletedPerSec() < 4000 {
		t.Fatalf("closed-loop completed only %.0f req/s", r.CompletedPerSec())
	}
}

func TestScenario9DNSOpenLoop(t *testing.T) {
	r, err := RunScenario9(s9TestConfig("dns", false))
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, r)
	offered := uint64(r.Rate * float64(r.RunNS) / 1e9)
	if r.Completed < offered*9/10 {
		t.Fatalf("completed %d of ~%d offered queries", r.Completed, offered)
	}
}

func TestScenario9DNSClosedLoop(t *testing.T) {
	cfg := s9TestConfig("dns", false)
	cfg.Rate = 0
	cfg.Conns = 4 // four outstanding queries per the two workers
	r, err := RunScenario9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, r)
	if r.CompletedPerSec() < 4000 {
		t.Fatalf("closed-loop completed only %.0f query/s", r.CompletedPerSec())
	}
}

// TestScenario9DNSLossRecovery pins the retry machinery: on a lossy
// link some queries must time out and be retransmitted, yet the
// attempt budget keeps abandonment rare and the run still completes
// the bulk of the offered load.
func TestScenario9DNSLossRecovery(t *testing.T) {
	cfg := s9TestConfig("dns", false)
	cfg.Rate = 2000
	cfg.Link = netem.Config{LossRate: 0.05, Seed: s9Seed}
	cfg.TimeoutNS = 50e6
	r, err := RunScenario9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Timeouts == 0 {
		t.Fatalf("5%% loss produced no timeouts (issued %d)", r.Issued)
	}
	if r.Completed < r.Issued*8/10 {
		t.Fatalf("retries recovered only %d of %d queries (%d abandoned)",
			r.Completed, r.Issued, r.Failed)
	}
}

// TestScenario9CapGate is the acceptance gate: capability-mode p99
// must stay within 2x of the baseline p99 at the same moderate load,
// for both protocols.
func TestScenario9CapGate(t *testing.T) {
	for _, proto := range []string{"http", "dns"} {
		base, err := RunScenario9(s9TestConfig(proto, false))
		if err != nil {
			t.Fatal(err)
		}
		capr, err := RunScenario9(s9TestConfig(proto, true))
		if err != nil {
			t.Fatal(err)
		}
		requireClean(t, capr)
		if capr.P99NS > 2*base.P99NS {
			t.Fatalf("%s capability-mode p99 %dns above 2x baseline %dns",
				proto, capr.P99NS, base.P99NS)
		}
	}
}

// TestScenario9Deterministic pins run-to-run determinism for both
// protocols: the clients drain epoll ready sets and shard scans whose
// internal order is map-random, so any order dependence shows up as
// diverging counters or quantiles between identical runs.
func TestScenario9Deterministic(t *testing.T) {
	for _, proto := range []string{"http", "dns"} {
		cfg := s9TestConfig(proto, false)
		cfg.Link = netem.Config{LossRate: 0.02, DelayNS: 2e6}
		a, err := RunScenario9(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunScenario9(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%s: identical configs diverged:\n  a: %+v\n  b: %+v", proto, a, b)
		}
	}
}

// TestScenario9ShardedStatsConsistency extends the sharded-stats
// invariant to the request plane: mid-run, the aggregate must equal
// the per-shard sum (struct equality automatically covers every
// counter, UdpQueueDrops included).
func TestScenario9ShardedStatsConsistency(t *testing.T) {
	for _, proto := range []string{"http", "dns"} {
		cfg := s9TestConfig(proto, false)
		s, err := NewScenario9(sim.NewVClock(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		ss := s.Sharded

		checks, mismatches := 0, 0
		iter := 0
		visitHook = func(now int64, active bool) {
			iter++
			if iter%64 != 0 {
				return
			}
			checks++
			want := ss.Stats()
			got := ss.ShardStats(0)
			for i := 1; i < ss.NumShards(); i++ {
				got.Add(ss.ShardStats(i))
			}
			if got != want {
				mismatches++
			}
		}
		defer func() { visitHook = nil }()

		r, err := Scenario9Run(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		visitHook = nil
		if checks == 0 {
			t.Fatal("visit hook never sampled")
		}
		if mismatches != 0 {
			t.Fatalf("%s: %d of %d samples saw aggregate != per-shard sum", proto, mismatches, checks)
		}
		if r.Completed == 0 {
			t.Fatalf("%s: completed no requests", proto)
		}
	}
}

func TestScenario9RejectsBadConfig(t *testing.T) {
	cases := []Scenario9Config{
		{Proto: "smtp", Shards: 2, Conns: 8, DurationNS: 1e6},
		{Proto: "http", Shards: 0, Conns: 8, DurationNS: 1e6},
		{Proto: "dns", Shards: 2, Conns: 0, DurationNS: 1e6},
	}
	for i, cfg := range cases {
		if _, err := NewScenario9(sim.NewVClock(), cfg); err == nil {
			t.Fatalf("case %d: bad config accepted: %+v", i, cfg)
		}
	}
}
