package core

import (
	"fmt"

	"repro/internal/hostos"
	"repro/internal/testbed"
)

// The paper's topologies, each as a declarative spec. The constructor
// names survive as one-line aliases so drivers, examples and tests read
// the same, but every axis (sizing, capability mode, gates, peers) is a
// spec field rather than a dedicated constructor.

// NewBaselineDual builds the Baseline of §III-A as compared against
// Scenario 1: two non-CHERI processes, each owning one port of the
// shared 82576.
func NewBaselineDual(clk hostos.Clock) (*Setup, error) {
	return testbed.Build(testbed.Spec{
		Clk:     clk,
		Machine: testbed.MachineSpec{Name: "morello", Ports: 2, BusLimited: true},
		Compartments: []testbed.CompartmentSpec{
			{Name: "proc1", Ifs: []testbed.IfSpec{{Port: 0}}},
			{Name: "proc2", Ifs: []testbed.IfSpec{{Port: 1}}},
		},
		Peers: []testbed.PeerSpec{{Port: 0}, {Port: 1}},
	})
}

// NewScenario1 builds Scenario 1: two cVMs, each containing the whole
// application + F-Stack + DPDK stack on its own dedicated port, in
// hybrid (capability) mode.
func NewScenario1(clk hostos.Clock) (*Setup, error) {
	return testbed.Build(testbed.Spec{
		Clk:     clk,
		Machine: testbed.MachineSpec{Name: "morello", Ports: 2, BusLimited: true, CapDMA: true},
		Compartments: []testbed.CompartmentSpec{
			{Name: "cvm1", CVM: true, Ifs: []testbed.IfSpec{{Port: 0}}},
			{Name: "cvm2", CVM: true, Ifs: []testbed.IfSpec{{Port: 1}}},
		},
		Peers: []testbed.PeerSpec{{Port: 0}, {Port: 1}},
	})
}

// NewBaselineSingle builds the Baseline compared against Scenario 2:
// one non-CHERI process owning one port, application in-process.
func NewBaselineSingle(clk hostos.Clock) (*Setup, error) {
	return testbed.Build(testbed.Spec{
		Clk:     clk,
		Machine: testbed.MachineSpec{Name: "morello", Ports: 2, BusLimited: true},
		Compartments: []testbed.CompartmentSpec{
			{Name: "proc", Ifs: []testbed.IfSpec{{Port: 0}}},
		},
		Peers: []testbed.PeerSpec{{Port: 0}},
	})
}

// NewScenario2 builds Scenario 2: cVM1 runs F-Stack + DPDK on one port;
// apps application cVMs (1 = uncontended, 2 = contended) reach it
// through cross-compartment gates.
func NewScenario2(clk hostos.Clock, apps int) (*Setup, error) {
	if apps < 1 || apps > 2 {
		return nil, fmt.Errorf("core: scenario 2 supports 1 or 2 application cVMs")
	}
	return testbed.Build(testbed.Spec{
		Clk:     clk,
		Machine: testbed.MachineSpec{Name: "morello", Ports: 2, BusLimited: true, CapDMA: true},
		Compartments: []testbed.CompartmentSpec{
			{
				Name: "cvm1", CVM: true,
				Ifs:     []testbed.IfSpec{{Port: 0}},
				APIGate: true,
				AppCVMs: []string{"cvm2", "cvm3"}[:apps],
			},
		},
		Peers: []testbed.PeerSpec{{Port: 0}},
	})
}

// NewScenario3 builds the future-work layout (§VI): cVM1 = DPDK only,
// cVM2 = F-Stack + application, one port, sealed gates on the datapath
// between them.
func NewScenario3(clk hostos.Clock) (*Setup, error) {
	return testbed.Build(testbed.Spec{
		Clk:     clk,
		Machine: testbed.MachineSpec{Name: "morello", Ports: 2, BusLimited: true, CapDMA: true},
		Compartments: []testbed.CompartmentSpec{
			{
				Name: "cvm2", CVM: true, CVMName: "cvm2-fstack",
				PoolName:   "fstack-pkt",
				Ifs:        []testbed.IfSpec{{Port: 0}},
				DeviceGate: true, DevCVMName: "cvm1-dpdk",
			},
		},
		Peers: []testbed.PeerSpec{{Port: 0}},
	})
}
