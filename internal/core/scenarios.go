package core

import (
	"fmt"

	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/intravisor"
)

// Setup is a fully wired experiment topology: the local Morello-like
// box with its environments, plus one remote link partner per active
// port.
type Setup struct {
	Clk   hostos.Clock
	Local *Machine
	// Envs are the local network environments, one per "cVM"/"process"
	// that owns NIC ports (two in Baseline-dual and Scenario 1, one in
	// the single-port layouts).
	Envs []*Env
	// Apps are application compartments without NIC ports (Scenario 2's
	// cVM2/cVM3) and their gated API views.
	Apps []*GatedAPI
	// Peers are the remote machines, indexed by local port.
	Peers []*Peer
	// Gates is non-nil in Scenario 2.
	Gates *StackGates
}

// Loops lists every main loop in the setup (local first, then peers).
func (s *Setup) Loops() []*fstack.Loop {
	var out []*fstack.Loop
	for _, e := range s.Envs {
		out = append(out, e.Loop)
	}
	for _, p := range s.Peers {
		out = append(out, p.Env.Loop)
	}
	return out
}

// addPeers wires one link partner per port in ports.
func (s *Setup) addPeers(ports []int) error {
	for _, port := range ports {
		p, err := NewPeer(fmt.Sprintf("peer%d", port), s.Clk,
			s.Local.Card.Port(port), peerIP(port), mask24, byte(0x80+port))
		if err != nil {
			return err
		}
		s.Peers = append(s.Peers, p)
	}
	return nil
}

// NewBaselineDual builds the Baseline of §III-A as compared against
// Scenario 1: two non-CHERI processes, each owning one port of the
// shared 82576.
func NewBaselineDual(clk hostos.Clock) (*Setup, error) {
	local, err := NewMachine(MachineConfig{
		Name: "morello", Clk: clk, Ports: 2, BusLimited: true, MACLast: 1,
	})
	if err != nil {
		return nil, err
	}
	s := &Setup{Clk: clk, Local: local}
	for i := 0; i < 2; i++ {
		env, err := local.NewBaselineEnv(fmt.Sprintf("proc%d", i+1), []IfCfg{
			{Port: i, Name: fmt.Sprintf("eth%d", i), IP: localIP(i), Mask: mask24},
		})
		if err != nil {
			return nil, err
		}
		s.Envs = append(s.Envs, env)
	}
	if err := s.addPeers([]int{0, 1}); err != nil {
		return nil, err
	}
	return s, nil
}

// NewScenario1 builds Scenario 1: two cVMs, each containing the whole
// application + F-Stack + DPDK stack on its own dedicated port, in
// hybrid (capability) mode.
func NewScenario1(clk hostos.Clock) (*Setup, error) {
	local, err := NewMachine(MachineConfig{
		Name: "morello", Clk: clk, Ports: 2, BusLimited: true, CapDMA: true, MACLast: 1,
	})
	if err != nil {
		return nil, err
	}
	s := &Setup{Clk: clk, Local: local}
	for i := 0; i < 2; i++ {
		env, err := local.NewCVMEnv(fmt.Sprintf("cvm%d", i+1), []IfCfg{
			{Port: i, Name: fmt.Sprintf("eth%d", i), IP: localIP(i), Mask: mask24},
		})
		if err != nil {
			return nil, err
		}
		s.Envs = append(s.Envs, env)
	}
	if err := s.addPeers([]int{0, 1}); err != nil {
		return nil, err
	}
	return s, nil
}

// NewBaselineSingle builds the Baseline compared against Scenario 2:
// one non-CHERI process owning one port, application in-process.
func NewBaselineSingle(clk hostos.Clock) (*Setup, error) {
	local, err := NewMachine(MachineConfig{
		Name: "morello", Clk: clk, Ports: 2, BusLimited: true, MACLast: 1,
	})
	if err != nil {
		return nil, err
	}
	s := &Setup{Clk: clk, Local: local}
	env, err := local.NewBaselineEnv("proc", []IfCfg{
		{Port: 0, Name: "eth0", IP: localIP(0), Mask: mask24},
	})
	if err != nil {
		return nil, err
	}
	s.Envs = append(s.Envs, env)
	if err := s.addPeers([]int{0}); err != nil {
		return nil, err
	}
	return s, nil
}

// NewScenario2 builds Scenario 2: cVM1 runs F-Stack + DPDK on one port;
// apps application cVMs (1 = uncontended, 2 = contended) reach it
// through cross-compartment gates.
func NewScenario2(clk hostos.Clock, apps int) (*Setup, error) {
	if apps < 1 || apps > 2 {
		return nil, fmt.Errorf("core: scenario 2 supports 1 or 2 application cVMs")
	}
	local, err := NewMachine(MachineConfig{
		Name: "morello", Clk: clk, Ports: 2, BusLimited: true, CapDMA: true, MACLast: 1,
	})
	if err != nil {
		return nil, err
	}
	s := &Setup{Clk: clk, Local: local}
	stackEnv, err := local.NewCVMEnv("cvm1", []IfCfg{
		{Port: 0, Name: "eth0", IP: localIP(0), Mask: mask24},
	})
	if err != nil {
		return nil, err
	}
	s.Envs = append(s.Envs, stackEnv)
	gates, err := NewStackGates(local.IV, stackEnv)
	if err != nil {
		return nil, err
	}
	s.Gates = gates
	for i := 0; i < apps; i++ {
		app, err := local.NewCVM(fmt.Sprintf("cvm%d", i+2))
		if err != nil {
			return nil, err
		}
		s.Apps = append(s.Apps, NewGatedAPI(gates, app, local.K.Mem))
	}
	if err := s.addPeers([]int{0}); err != nil {
		return nil, err
	}
	return s, nil
}

// AppCVM returns the i-th application compartment (Scenario 2).
func (s *Setup) AppCVM(i int) *intravisor.CVM { return s.Apps[i].App }
