package core

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
)

// Table1Row is the Table I analog: how much of the TCP/IP library had
// to change to carry capabilities.
type Table1Row struct {
	Library    string
	CapLines   int     // lines carrying capability-integration code
	TotalLines int     // library size
	Percent    float64 // CapLines / TotalLines
	PaperLines int     // the paper's count (152 for F-Stack)
	PaperPct   float64 // the paper's percentage (0.99)
}

// String renders the row.
func (r Table1Row) String() string {
	return fmt.Sprintf("%-8s %5d / %6d LoC = %.2f%%  (paper: %d = %.2f%%)",
		r.Library, r.CapLines, r.TotalLines, r.Percent, r.PaperLines, r.PaperPct)
}

// capLinePattern matches the capability-integration idioms of this
// port: capability types and the checked-access entry points (the Go
// equivalents of the `__capability` qualifiers and the modified API
// signatures of §III-B).
var capLinePattern = regexp.MustCompile(
	`cheri\.(Cap|TMem)|WriteCap|ReadCap|writeFromCap|readIntoCap|CheckedSlice|CapMode|capMode|stageCap|DeriveBuf`)

// fstackDir locates the fstack sources relative to this file.
func fstackDir() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("core: cannot locate sources")
	}
	return filepath.Join(filepath.Dir(file), "..", "fstack"), nil
}

// RunTable1 counts the capability-integration lines in the fstack
// package the way Table I counts the modified lines of the F-Stack
// port. Test files are excluded, as the paper counts library code.
func RunTable1() (Table1Row, error) {
	dir, err := fstackDir()
	if err != nil {
		return Table1Row{}, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return Table1Row{}, err
	}
	row := Table1Row{Library: "F-Stack", PaperLines: 152, PaperPct: 0.99}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return Table1Row{}, err
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "//") {
				continue
			}
			row.TotalLines++
			if capLinePattern.MatchString(line) {
				row.CapLines++
			}
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return Table1Row{}, err
		}
		f.Close()
	}
	if row.TotalLines > 0 {
		row.Percent = 100 * float64(row.CapLines) / float64(row.TotalLines)
	}
	return row, nil
}
