package core

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Table2Block is one section of Table II: a scenario measured in both
// server (receiver) and client (sender) modes.
type Table2Block struct {
	Name   string
	Server []BWResult
	Client []BWResult
}

// Table2Spec enumerates the paper's five blocks in order.
var Table2Spec = []struct {
	Name  string
	Build func(clk *sim.VClock) (*Setup, error)
	// Paper holds the published Mbit/s (server, client) per endpoint.
	Paper [][2]float64
}{
	{
		Name:  "Baseline (dual-port)",
		Build: func(clk *sim.VClock) (*Setup, error) { return NewBaselineDual(clk) },
		Paper: [][2]float64{{658, 757}, {658, 757}},
	},
	{
		Name:  "Scenario 1",
		Build: func(clk *sim.VClock) (*Setup, error) { return NewScenario1(clk) },
		Paper: [][2]float64{{658, 757}, {658, 757}},
	},
	{
		Name:  "Baseline (single-port)",
		Build: func(clk *sim.VClock) (*Setup, error) { return NewBaselineSingle(clk) },
		Paper: [][2]float64{{941, 941}},
	},
	{
		Name:  "Scenario 2 (uncontended)",
		Build: func(clk *sim.VClock) (*Setup, error) { return NewScenario2(clk, 1) },
		Paper: [][2]float64{{941, 941}},
	},
	{
		Name:  "Scenario 2 (contended)",
		Build: func(clk *sim.VClock) (*Setup, error) { return NewScenario2(clk, 2) },
		Paper: [][2]float64{{470, 531}, {470, 410}},
	},
}

// RunTable2Block measures one block (a fresh setup per direction — the
// iperf endpoints are single-use, like real runs).
func RunTable2Block(i int) (Table2Block, error) {
	spec := Table2Spec[i]
	blk := Table2Block{Name: spec.Name}
	for _, dir := range []Direction{LocalIsServer, LocalIsClient} {
		s, err := spec.Build(sim.NewVClock())
		if err != nil {
			return blk, fmt.Errorf("%s: %w", spec.Name, err)
		}
		res, err := BandwidthPair(s, dir)
		if err != nil {
			return blk, fmt.Errorf("%s (%v): %w", spec.Name, dir, err)
		}
		if dir == LocalIsServer {
			blk.Server = res
		} else {
			blk.Client = res
		}
	}
	return blk, nil
}

// RunTable2 regenerates every block of Table II.
func RunTable2() ([]Table2Block, error) {
	out := make([]Table2Block, 0, len(Table2Spec))
	for i := range Table2Spec {
		blk, err := RunTable2Block(i)
		if err != nil {
			return nil, err
		}
		out = append(out, blk)
	}
	return out, nil
}

// FormatTable2 renders the blocks in the paper's layout, with the
// published values alongside.
func FormatTable2(blocks []Table2Block) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II — TCP benchmarks (Mbit/s), measured vs paper\n")
	for i, blk := range blocks {
		fmt.Fprintf(&b, "\n%s\n", blk.Name)
		fmt.Fprintf(&b, "  %-10s %18s %18s\n", "Mode", "Server (recv)", "Client (send)")
		for j := range blk.Server {
			var paperS, paperC float64
			if i < len(Table2Spec) && j < len(Table2Spec[i].Paper) {
				paperS, paperC = Table2Spec[i].Paper[j][0], Table2Spec[i].Paper[j][1]
			}
			label := strings.TrimSuffix(blk.Server[j].Label, " Server")
			fmt.Fprintf(&b, "  %-10s %6.0f (paper %3.0f) %6.0f (paper %3.0f)\n",
				label, blk.Server[j].Mbps, paperS, blk.Client[j].Mbps, paperC)
		}
	}
	return b.String()
}
