package core

import "testing"

func TestScenario1MatchesBaselineDual(t *testing.T) {
	blk, err := RunTable2Block(1) // Scenario 1
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range append(blk.Server, blk.Client...) {
		t.Logf("%v", r)
	}
	// Paper: CHERI costs no bandwidth — Scenario 1 equals Baseline:
	// ~658 server, ~757 client per cVM.
	for _, r := range blk.Server {
		if r.Mbps < 630 || r.Mbps > 680 {
			t.Errorf("%s = %.0f Mbit/s, want ≈658", r.Label, r.Mbps)
		}
	}
	for _, r := range blk.Client {
		if r.Mbps < 730 || r.Mbps > 780 {
			t.Errorf("%s = %.0f Mbit/s, want ≈757", r.Label, r.Mbps)
		}
	}
}

func TestScenario2Uncontended(t *testing.T) {
	blk, err := RunTable2Block(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range append(blk.Server, blk.Client...) {
		t.Logf("%v", r)
	}
	// Paper: 941/941 — the gates cost no bandwidth either.
	for _, r := range append(blk.Server, blk.Client...) {
		if r.Mbps < 920 || r.Mbps > 950 {
			t.Errorf("%s = %.0f Mbit/s, want ≈941", r.Label, r.Mbps)
		}
	}
}

func TestScenario2Contended(t *testing.T) {
	blk, err := RunTable2Block(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range append(blk.Server, blk.Client...) {
		t.Logf("%v", r)
	}
	// Paper: the two flows share the full port (470+470 server,
	// 531+410 client — unevenly, from the missing fairness control).
	// The virtual-time run must at least saturate the port in sum.
	sumS := blk.Server[0].Mbps + blk.Server[1].Mbps
	sumC := blk.Client[0].Mbps + blk.Client[1].Mbps
	if sumS < 900 || sumS > 960 {
		t.Errorf("contended server sum %.0f, want ≈941", sumS)
	}
	if sumC < 900 || sumC > 960 {
		t.Errorf("contended client sum %.0f, want ≈941", sumC)
	}
}
