// Package dpdk is a Data Plane Development Kit analog: user-space packet
// I/O over the simulated 82576 NIC, bypassing the host kernel entirely
// after boot (§II-C of the paper).
//
// The structure follows DPDK's:
//
//   - MemSeg: a hugepage-like memory segment (granted to the process or
//     cVM at boot) from which all packet memory is carved. In capability
//     mode every access to the segment goes through a bounded capability
//     — this is the ported DPDK of the paper, whose allocations carry
//     "the correct permission flags" (§III-B).
//   - Mempool / Mbuf: fixed-size packet buffers with headroom, allocated
//     from a segment.
//   - EthDev: the ethdev API (configure / start / RxBurst / TxBurst /
//     Stats) implemented by an igb-class poll-mode driver that programs
//     the 82576 register file directly. The kernel's only involvement is
//     the one-time PCI unbind that hands the device to user space.
//
// Polling mode: there are no interrupts anywhere; RxBurst and TxBurst
// advance the device model themselves, so whoever polls pays the cost —
// exactly the DPDK execution model the paper relies on.
package dpdk
