package dpdk

import (
	"bytes"
	"testing"

	"repro/internal/cheri"
	"repro/internal/hostos"
	"repro/internal/nic"
	"repro/internal/sim"
)

// rig is a two-machine test rig: two single-port cards wired together
// over one shared memory (single-threaded test, so sharing is fine).
type rig struct {
	mem  *cheri.TMem
	clk  *sim.VClock
	pci  *hostos.PCI
	segA *MemSeg
	segB *MemSeg
	devA *EthDev
	devB *EthDev
	popA *Mempool
	popB *Mempool
}

func newRig(t *testing.T, capMode bool) *rig {
	t.Helper()
	return newRigQueues(t, capMode, 1)
}

// newRigQueues builds the rig with nq RX/TX queue pairs on devA (the
// device under test); devB stays single-queue.
func newRigQueues(t *testing.T, capMode bool, nq int) *rig {
	t.Helper()
	mem := cheri.NewTMem(8 << 20)
	clk := sim.NewVClock()
	pci := hostos.NewPCI()

	mkCard := func(bdf string, mac byte) *nic.Card {
		c, err := nic.New(nic.Config{
			BDFBase: bdf, Ports: 1, LineRateBps: 1e9,
			MAC: [6]byte{2, 0, 0, 0, 0, mac}, Clk: clk, Mem: mem, CapDMA: capMode,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RegisterPCI(pci); err != nil {
			t.Fatal(err)
		}
		return c
	}
	ca := mkCard("0000:03:00", 1)
	cb := mkCard("0000:04:00", 2)
	nic.Connect(ca.Port(0), cb.Port(0))

	mkSeg := func(base uint64) *MemSeg {
		var c cheri.Cap
		if capMode {
			var err error
			c, err = mem.Root().SetAddr(base).SetBounds(2 << 20)
			if err != nil {
				t.Fatal(err)
			}
			c, err = c.AndPerms(cheri.PermData)
			if err != nil {
				t.Fatal(err)
			}
		}
		seg, err := NewMemSeg(mem, base, 2<<20, c, capMode)
		if err != nil {
			t.Fatal(err)
		}
		return seg
	}
	r := &rig{mem: mem, clk: clk, pci: pci, segA: mkSeg(0x100000), segB: mkSeg(0x400000)}

	for _, bdf := range []string{"0000:03:00.0", "0000:04:00.0"} {
		if errno := pci.Unbind(bdf); errno != hostos.OK {
			t.Fatal(errno)
		}
	}
	var err error
	r.popA, err = NewMempool(r.segA, "a", 512, DefaultDataroom)
	if err != nil {
		t.Fatal(err)
	}
	r.popB, err = NewMempool(r.segB, "b", 512, DefaultDataroom)
	if err != nil {
		t.Fatal(err)
	}
	r.devA, err = Probe(pci, "0000:03:00.0", r.segA)
	if err != nil {
		t.Fatal(err)
	}
	r.devB, err = Probe(pci, "0000:04:00.0", r.segB)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.devA.ConfigureQueues(nq, 64, 64, r.popA); err != nil {
		t.Fatal(err)
	}
	if err := r.devA.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.devB.Configure(64, 64, r.popB); err != nil {
		t.Fatal(err)
	}
	if err := r.devB.Start(); err != nil {
		t.Fatal(err)
	}
	return r
}

// makeFrame builds a TX mbuf carrying the given payload.
func makeFrame(t *testing.T, pool *Mempool, payload []byte) *Mbuf {
	t.Helper()
	m, ok := pool.Get()
	if !ok {
		t.Fatal("pool exhausted")
	}
	dst, err := m.Append(len(payload))
	if err != nil {
		t.Fatal(err)
	}
	copy(dst, payload)
	return m
}

// pump advances virtual time while polling both devices.
func (r *rig) pump(ticks int) {
	for i := 0; i < ticks; i++ {
		r.devA.Poll()
		r.devB.Poll()
		r.clk.Advance(5000)
	}
}

func TestProbeRequiresUnbind(t *testing.T) {
	mem := cheri.NewTMem(1 << 20)
	clk := sim.NewVClock()
	pci := hostos.NewPCI()
	card, err := nic.New(nic.Config{
		BDFBase: "0000:03:00", Ports: 1, LineRateBps: 1e9,
		MAC: [6]byte{2, 0, 0, 0, 0, 1}, Clk: clk, Mem: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := card.RegisterPCI(pci); err != nil {
		t.Fatal(err)
	}
	seg, _ := NewMemSeg(mem, 0x10000, 1<<16, cheri.NullCap, false)
	if _, err := Probe(pci, "0000:03:00.0", seg); err == nil {
		t.Fatal("probe of a kernel-bound device must fail")
	}
}

func TestTxRxRoundTrip(t *testing.T) {
	for _, capMode := range []bool{false, true} {
		name := "raw"
		if capMode {
			name = "cheri"
		}
		t.Run(name, func(t *testing.T) {
			r := newRig(t, capMode)
			payload := bytes.Repeat([]byte{0x5A}, 300)
			payload[0] = 0xFF
			m := makeFrame(t, r.popA, payload)
			if n := r.devA.TxBurst([]*Mbuf{m}); n != 1 {
				t.Fatalf("TxBurst accepted %d", n)
			}
			r.pump(10)
			out := make([]*Mbuf, 8)
			n := r.devB.RxBurst(out)
			if n != 1 {
				t.Fatalf("RxBurst returned %d frames", n)
			}
			got, err := out[0].BytesRO()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("payload mismatch: %x...", got[:8])
			}
			out[0].Free()
			if r.popB.Avail() != r.popB.Total()-64 {
				// 64 descriptors hold pool buffers; the harvested one
				// was freed back.
				t.Fatalf("pool accounting: avail=%d", r.popB.Avail())
			}
		})
	}
}

func TestBurstOfMany(t *testing.T) {
	r := newRig(t, false)
	const total = 200
	sent := 0
	received := 0
	out := make([]*Mbuf, 32)
	for iter := 0; iter < 4000 && received < total; iter++ {
		for sent < total {
			m := makeFrame(t, r.popA, []byte{byte(sent), byte(sent >> 8), 3, 4})
			if r.devA.TxBurst([]*Mbuf{m}) == 0 {
				m.Free()
				break
			}
			sent++
		}
		r.pump(1)
		n := r.devB.RxBurst(out)
		for i := 0; i < n; i++ {
			out[i].Free()
		}
		received += n
	}
	if received != total {
		t.Fatalf("received %d of %d", received, total)
	}
	// All mbufs must eventually return home.
	r.pump(50)
	r.devA.Poll()
	if got := r.popA.Avail(); got != r.popA.Total()-64 {
		t.Fatalf("sender pool leaked: avail %d of %d", got, r.popA.Total())
	}
}

func TestTxBackpressure(t *testing.T) {
	r := newRig(t, false)
	// Without pumping time, the 64-deep TX ring plus serializer window
	// must eventually refuse frames.
	accepted := 0
	for i := 0; i < 200; i++ {
		m := makeFrame(t, r.popA, make([]byte, 1200))
		if r.devA.TxBurst([]*Mbuf{m}) == 0 {
			m.Free()
			break
		}
		accepted++
	}
	if accepted >= 200 {
		t.Fatal("TX never exerted backpressure")
	}
	if accepted < 32 {
		t.Fatalf("TX refused too early: %d", accepted)
	}
}

func TestStatsCounters(t *testing.T) {
	r := newRig(t, false)
	m := makeFrame(t, r.popA, make([]byte, 500))
	r.devA.TxBurst([]*Mbuf{m})
	r.pump(10)
	out := make([]*Mbuf, 4)
	if n := r.devB.RxBurst(out); n != 1 {
		t.Fatalf("rx %d", n)
	}
	out[0].Free()
	sa, sb := r.devA.Stats(), r.devB.Stats()
	if sa.OPackets != 1 || sa.OBytes != 500 {
		t.Fatalf("tx stats %+v", sa)
	}
	if sb.IPackets != 1 || sb.IBytes != 500 {
		t.Fatalf("rx stats %+v", sb)
	}
}

func TestMempoolExhaustion(t *testing.T) {
	mem := cheri.NewTMem(1 << 20)
	seg, err := NewMemSeg(mem, 0x1000, 1<<18, cheri.NullCap, false)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewMempool(seg, "tiny", 4, DefaultDataroom)
	if err != nil {
		t.Fatal(err)
	}
	var taken []*Mbuf
	for {
		m, ok := p.Get()
		if !ok {
			break
		}
		taken = append(taken, m)
	}
	if len(taken) != 4 {
		t.Fatalf("got %d mbufs from a 4-pool", len(taken))
	}
	for _, m := range taken {
		m.Free()
	}
	if p.Avail() != 4 {
		t.Fatalf("avail %d after freeing all", p.Avail())
	}
}

func TestMbufEditing(t *testing.T) {
	mem := cheri.NewTMem(1 << 20)
	seg, _ := NewMemSeg(mem, 0x1000, 1<<18, cheri.NullCap, false)
	p, _ := NewMempool(seg, "edit", 2, DefaultDataroom)
	m, _ := p.Get()

	if m.Headroom() != MbufHeadroom || m.Len() != 0 {
		t.Fatalf("fresh mbuf: headroom=%d len=%d", m.Headroom(), m.Len())
	}
	body, err := m.Append(100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range body {
		body[i] = byte(i)
	}
	hdr, err := m.Prepend(14)
	if err != nil {
		t.Fatal(err)
	}
	copy(hdr, bytes.Repeat([]byte{0xEE}, 14))
	if m.Len() != 114 {
		t.Fatalf("len after prepend = %d", m.Len())
	}
	if err := m.Adj(14); err != nil {
		t.Fatal(err)
	}
	if err := m.Trim(50); err != nil {
		t.Fatal(err)
	}
	got, _ := m.BytesRO()
	if len(got) != 50 || got[0] != 0 || got[49] != 49 {
		t.Fatalf("payload after adj+trim: len=%d", len(got))
	}
	// Guards.
	if _, err := m.Prepend(MbufHeadroom + 1); err == nil {
		t.Fatal("prepend beyond headroom must fail")
	}
	if err := m.Adj(51); err == nil {
		t.Fatal("adj beyond length must fail")
	}
	if err := m.Trim(51); err == nil {
		t.Fatal("trim beyond length must fail")
	}
	if _, err := m.Append(1 << 16); err == nil {
		t.Fatal("append beyond tailroom must fail")
	}
}

func TestMempoolDoubleFreePanics(t *testing.T) {
	mem := cheri.NewTMem(1 << 20)
	seg, _ := NewMemSeg(mem, 0x1000, 1<<18, cheri.NullCap, false)
	p, _ := NewMempool(seg, "dbl", 2, DefaultDataroom)
	m, _ := p.Get()
	m.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	m.Free()
}

func TestSegExhaustion(t *testing.T) {
	mem := cheri.NewTMem(1 << 20)
	seg, _ := NewMemSeg(mem, 0x1000, 1<<14, cheri.NullCap, false)
	if _, err := seg.Alloc(1<<13, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := seg.Alloc(1<<13+64, 64); err == nil {
		t.Fatal("over-allocation must fail")
	}
	if _, err := seg.Alloc(0, 1); err == nil {
		t.Fatal("zero alloc must fail")
	}
	if _, err := NewMempool(seg, "nofit", 100000, DefaultDataroom); err == nil {
		t.Fatal("mempool larger than segment must fail")
	}
}

func TestCapModeSegRejectsForeignAccess(t *testing.T) {
	mem := cheri.NewTMem(1 << 20)
	c, err := mem.Root().SetAddr(0x10000).SetBounds(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	c, _ = c.AndPerms(cheri.PermData)
	seg, err := NewMemSeg(mem, 0x10000, 0x1000, c, true)
	if err != nil {
		t.Fatal(err)
	}
	// In-bounds works.
	if _, err := seg.Slice(0x10000, 16); err != nil {
		t.Fatal(err)
	}
	// Outside the capability: fault.
	if _, err := seg.Slice(0x20000, 16); err == nil {
		t.Fatal("out-of-capability slice must fault")
	}
	// A capability that does not cover the claimed range is rejected.
	if _, err := NewMemSeg(mem, 0x40000, 0x1000, c, true); err == nil {
		t.Fatal("mismatched capability must be rejected")
	}
}
