package dpdk

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/hostos"
	"repro/internal/nic"
	"repro/internal/obs"
)

// steppable is the "hardware runs" hook of the simulated device; the
// poll-mode driver advances the device from its own burst calls.
type steppable interface{ Step() }

// txDrainer is the optional TX-only drain surface of the simulated
// device: transmit everything the line will admit on queues 0..maxQ in
// queue-index order, without touching the RX path or the conduit.
type txDrainer interface{ DrainTXThrough(maxQ int) bool }

// Stats mirrors rte_eth_stats.
type Stats struct {
	IPackets uint64 // received packets
	OPackets uint64 // transmitted packets
	IBytes   uint64 // received bytes
	OBytes   uint64 // transmitted bytes
	IMissed  uint64 // RX drops at the device (ring/FIFO full)
}

// add accumulates other into s.
func (s *Stats) add(other Stats) {
	s.IPackets += other.IPackets
	s.OPackets += other.OPackets
	s.IBytes += other.IBytes
	s.OBytes += other.OBytes
	s.IMissed += other.IMissed
}

// rxQueue is one RX descriptor ring and its software state.
type rxQueue struct {
	base  uint64
	n     uint32
	mbufs []*Mbuf
	next  uint32 // next descriptor to harvest
	tail  uint32 // software copy of RDT
	stats Stats  // software per-queue counters (harvested frames)
}

// txQueue is one TX descriptor ring and its software state.
type txQueue struct {
	base    uint64
	n       uint32
	mbufs   []*Mbuf
	next    uint32 // next descriptor to program
	reclaim uint32 // next descriptor to reclaim
	free    uint32 // free descriptors
	stats   Stats  // software per-queue counters (accepted frames)
}

// EthDev is one bound Ethernet port driven in user space (rte_ethdev +
// igb PMD in one type). It exposes up to nic.MaxQueues RX/TX queue
// pairs; the queue-less API (Configure/RxBurst/TxBurst/Poll) is the
// single-queue view over queue 0, so existing callers are unchanged.
type EthDev struct {
	dev     hostos.PCIDevice
	step    func()
	drainTX func(int) bool
	seg     *MemSeg
	pool    *Mempool
	mac     [6]byte

	rxqs []rxQueue
	txqs []txQueue

	rssKey [nic.RSSKeyLen]byte
	reta   [nic.RetaEntries]byte
	rssOn  bool

	configured bool
	started    bool

	// Flight-recorder hooks (nil = observability off, zero cost). The
	// device has no clock of its own, so the wiring supplies one.
	obsTr  *obs.Trace
	obsNow func() int64
	obsSrc uint16
}

// SetObs attaches a flight recorder to the driver's burst paths. now
// supplies virtual time (the device itself is clockless); src tags the
// emitted events with this device's identity. Call before traffic.
func (d *EthDev) SetObs(tr *obs.Trace, now func() int64, src uint16) {
	d.obsTr, d.obsNow, d.obsSrc = tr, now, src
}

// Probe claims the unbound PCI device at bdf and wraps it in an EthDev
// using seg for all descriptor and packet memory.
func Probe(pci *hostos.PCI, bdf string, seg *MemSeg) (*EthDev, error) {
	dev, errno := pci.Claim(bdf)
	if errno != hostos.OK {
		return nil, fmt.Errorf("dpdk: claiming %s: %v (unbind the kernel driver first)", bdf, errno)
	}
	if dev.VendorID() != 0x8086 || dev.DeviceID() != 0x10C9 {
		return nil, fmt.Errorf("dpdk: %s is %04x:%04x, not an 82576", bdf, dev.VendorID(), dev.DeviceID())
	}
	st, ok := dev.(steppable)
	if !ok {
		return nil, fmt.Errorf("dpdk: device %s cannot be polled", bdf)
	}
	d := &EthDev{dev: dev, step: st.Step, seg: seg}
	if td, ok := dev.(txDrainer); ok {
		d.drainTX = td.DrainTXThrough
	}
	ral := dev.RegRead32(nic.RegRAL0)
	rah := dev.RegRead32(nic.RegRAH0)
	d.mac = [6]byte{byte(ral), byte(ral >> 8), byte(ral >> 16), byte(ral >> 24), byte(rah), byte(rah >> 8)}
	// In capability-DMA mode, grant the device its IOMMU window over the
	// segment.
	if p, ok := dev.(*nic.Port); ok && seg.CapMode() {
		p.SetDMACap(seg.Cap())
	}
	return d, nil
}

// MAC returns the port's hardware address.
func (d *EthDev) MAC() [6]byte { return d.mac }

// faultInjector is the optional fault-injection surface of the bound
// device (nic.Port implements it); the fault plane reaches hardware
// faults through the driver so app code never touches a raw port.
type faultInjector interface {
	SetQueueStall(q int, stalled bool)
	InjectDMAFaults(n int64)
}

// SetQueueStall freezes or thaws one of the bound device's queue
// pairs; reports false when the device has no fault surface.
func (d *EthDev) SetQueueStall(q int, stalled bool) bool {
	fi, ok := d.dev.(faultInjector)
	if ok {
		fi.SetQueueStall(q, stalled)
	}
	return ok
}

// InjectDMAFaults arms a burst of n DMA master aborts on the bound
// device; reports false when the device has no fault surface.
func (d *EthDev) InjectDMAFaults(n int64) bool {
	fi, ok := d.dev.(faultInjector)
	if ok {
		fi.InjectDMAFaults(n)
	}
	return ok
}

// Configure allocates one nrx/ntx descriptor ring pair from the segment
// and programs the device — the single-queue setup every pre-RSS caller
// uses. pool supplies RX buffers.
func (d *EthDev) Configure(nrx, ntx uint32, pool *Mempool) error {
	return d.ConfigureQueues(1, nrx, ntx, pool)
}

// ConfigureQueues allocates nq RX/TX queue pairs of nrx/ntx descriptors
// each and programs the device's per-queue register banks. With nq > 1,
// Start additionally programs the RSS engine (symmetric Toeplitz key +
// identity redirection table) so inbound flows spread over the queues.
func (d *EthDev) ConfigureQueues(nq int, nrx, ntx uint32, pool *Mempool) error {
	if d.configured {
		return fmt.Errorf("dpdk: device already configured")
	}
	if nq < 1 || nq > nic.MaxQueues {
		return fmt.Errorf("dpdk: queue count %d outside 1..%d", nq, nic.MaxQueues)
	}
	if nrx < 8 || ntx < 8 {
		return fmt.Errorf("dpdk: ring sizes %d/%d too small", nrx, ntx)
	}
	d.pool = pool
	d.rxqs = make([]rxQueue, nq)
	d.txqs = make([]txQueue, nq)
	for q := 0; q < nq; q++ {
		rxBase, err := d.seg.Alloc(uint64(nrx)*nic.DescSize, 128)
		if err != nil {
			return err
		}
		txBase, err := d.seg.Alloc(uint64(ntx)*nic.DescSize, 128)
		if err != nil {
			return err
		}
		d.rxqs[q] = rxQueue{base: rxBase, n: nrx, mbufs: make([]*Mbuf, nrx)}
		d.txqs[q] = txQueue{base: txBase, n: ntx, mbufs: make([]*Mbuf, ntx), free: ntx - 1}

		d.dev.RegWrite32(nic.RegRDBALQ(q), uint32(rxBase))
		d.dev.RegWrite32(nic.RegRDBAHQ(q), uint32(rxBase>>32))
		d.dev.RegWrite32(nic.RegRDLENQ(q), nrx*nic.DescSize)
		d.dev.RegWrite32(nic.RegRDHQ(q), 0)
		d.dev.RegWrite32(nic.RegRDTQ(q), 0)
		d.dev.RegWrite32(nic.RegTDBALQ(q), uint32(txBase))
		d.dev.RegWrite32(nic.RegTDBAHQ(q), uint32(txBase>>32))
		d.dev.RegWrite32(nic.RegTDLENQ(q), ntx*nic.DescSize)
		d.dev.RegWrite32(nic.RegTDHQ(q), 0)
		d.dev.RegWrite32(nic.RegTDTQ(q), 0)
	}
	d.configured = true
	return nil
}

// NumRxQueues reports the configured queue-pair count.
func (d *EthDev) NumRxQueues() int { return len(d.rxqs) }

// writeDesc programs one descriptor (through the segment, so it is a
// checked store in capability mode).
func (d *EthDev) writeDesc(descAddr, bufAddr uint64, length uint16, cmd byte) error {
	s, err := d.seg.Slice(descAddr, nic.DescSize)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(s[0:8], bufAddr)
	binary.LittleEndian.PutUint16(s[8:10], length)
	s[10] = 0
	s[11] = cmd
	s[12] = 0 // status
	s[13] = 0
	binary.LittleEndian.PutUint16(s[14:16], 0)
	return nil
}

// descStatus reads a descriptor's status byte and length.
func (d *EthDev) descStatus(descAddr uint64) (status byte, length uint16, err error) {
	s, err := d.seg.SliceRO(descAddr, nic.DescSize)
	if err != nil {
		return 0, 0, err
	}
	return s[12], binary.LittleEndian.Uint16(s[8:10]), nil
}

// programRSS installs the Toeplitz key, an identity-modulo redirection
// table over the configured queues, and enables the engine (the hash
// itself is flow-symmetric via canonical endpoint ordering).
func (d *EthDev) programRSS() {
	nq := len(d.rxqs)
	d.rssKey = nic.DefaultRSSKey()
	for i := 0; i < nic.RSSKeyLen; i += 4 {
		d.dev.RegWrite32(nic.RegRSSRK+uint64(i), binary.LittleEndian.Uint32(d.rssKey[i:i+4]))
	}
	for i := range d.reta {
		d.reta[i] = byte(i % nq)
	}
	for i := 0; i < nic.RetaEntries; i += 4 {
		d.dev.RegWrite32(nic.RegRETA+uint64(i), binary.LittleEndian.Uint32(d.reta[i:i+4]))
	}
	d.dev.RegWrite32(nic.RegMRQC, nic.MRQCEnable|uint32(nq)<<nic.MRQCQueueShift)
	d.rssOn = true
}

// Start posts every RX ring and enables the device. Multi-queue
// configurations also get the RSS engine programmed here.
func (d *EthDev) Start() error {
	if !d.configured {
		return fmt.Errorf("dpdk: start before configure")
	}
	if d.started {
		return fmt.Errorf("dpdk: device already started")
	}
	for q := range d.rxqs {
		rq := &d.rxqs[q]
		// Post a buffer in EVERY slot; RDT=n-1 leaves a one-descriptor
		// gap for the hardware's full/empty disambiguation. The gap slot
		// still holds a valid buffer, so the window can slide over it
		// safely.
		for i := uint32(0); i < rq.n; i++ {
			m, ok := d.pool.Get()
			if !ok {
				return fmt.Errorf("dpdk: pool %q exhausted while filling RX ring %d", d.pool.Name(), q)
			}
			rq.mbufs[i] = m
			if err := d.writeDesc(rq.base+uint64(i)*nic.DescSize, m.DataAddr(), 0, 0); err != nil {
				return err
			}
		}
		rq.tail = rq.n - 1
		d.dev.RegWrite32(nic.RegRDTQ(q), rq.tail)
	}
	if len(d.rxqs) > 1 {
		d.programRSS()
	}
	d.dev.RegWrite32(nic.RegRCTL, nic.RctlEN)
	d.dev.RegWrite32(nic.RegTCTL, nic.TctlEN)
	d.started = true
	return nil
}

// RxBurst polls the device and harvests up to len(out) received frames
// from queue 0. Each returned mbuf's payload is the raw Ethernet frame.
func (d *EthDev) RxBurst(out []*Mbuf) int { return d.RxBurstQ(0, out) }

// RxBurstQ harvests up to len(out) received frames from queue q.
func (d *EthDev) RxBurstQ(q int, out []*Mbuf) int {
	if !d.started || q >= len(d.rxqs) {
		return 0
	}
	d.step()
	return d.rxHarvestQ(q, out)
}

// RxBurstQNoStep is RxBurstQ without advancing the device: it only
// harvests descriptors the hardware already completed. The parallel
// shard runner uses it so concurrent shards never step the (shared)
// port; the runner steps the device itself at the sequential phase
// boundaries (see StepDevice).
func (d *EthDev) RxBurstQNoStep(q int, out []*Mbuf) int {
	if !d.started || q >= len(d.rxqs) {
		return 0
	}
	return d.rxHarvestQ(q, out)
}

// rxHarvestQ collects queue q's completed descriptors into out,
// refilling the ring as it goes.
func (d *EthDev) rxHarvestQ(q int, out []*Mbuf) int {
	rq := &d.rxqs[q]
	n := 0
	for n < len(out) {
		descAddr := rq.base + uint64(rq.next)*nic.DescSize
		status, length, err := d.descStatus(descAddr)
		if err != nil || status&nic.StatDD == 0 {
			break
		}
		// Refill first: if the pool is dry, stop harvesting (the frame
		// stays until a buffer is available).
		repl, ok := d.pool.Get()
		if !ok {
			break
		}
		m := rq.mbufs[rq.next]
		m.off = MbufHeadroom
		if err := m.SetLen(int(length)); err != nil {
			// Oversized: drop.
			repl.Free()
			m.reset()
			repl = m
		}

		rq.mbufs[rq.next] = repl
		if err := d.writeDesc(descAddr, repl.DataAddr(), 0, 0); err != nil {
			break
		}
		if m != repl {
			out[n] = m
			n++
			rq.stats.IPackets++
			rq.stats.IBytes += uint64(length)
		}
		rq.next = (rq.next + 1) % rq.n
		rq.tail = (rq.tail + 1) % rq.n
		d.dev.RegWrite32(nic.RegRDTQ(q), rq.tail)
	}
	if n > 0 && d.obsTr != nil {
		d.obsTr.Record(d.obsNow(), obs.EvDevRxBurst, d.obsSrc, int64(n), 0, int64(q))
	}
	return n
}

// reclaimTX frees mbufs whose descriptors the device completed on
// queue q.
func (d *EthDev) reclaimTX(q int) {
	tq := &d.txqs[q]
	for tq.free < tq.n-1 {
		descAddr := tq.base + uint64(tq.reclaim)*nic.DescSize
		status, _, err := d.descStatus(descAddr)
		if err != nil || status&nic.StatDD == 0 {
			return
		}
		if m := tq.mbufs[tq.reclaim]; m != nil {
			m.Free()
			tq.mbufs[tq.reclaim] = nil
		}
		tq.reclaim = (tq.reclaim + 1) % tq.n
		tq.free++
	}
}

// TxBurst enqueues up to len(bufs) frames on queue 0 and returns how
// many were accepted; ownership of accepted mbufs passes to the driver
// (they return to the pool after the device sends them).
func (d *EthDev) TxBurst(bufs []*Mbuf) int { return d.TxBurstQ(0, bufs) }

// TxBurstQ enqueues up to len(bufs) frames on queue q.
func (d *EthDev) TxBurstQ(q int, bufs []*Mbuf) int {
	if !d.started || q >= len(d.txqs) {
		return 0
	}
	d.step() // push earlier frames, complete descriptors
	n := d.txEnqueueQ(q, bufs)
	if n > 0 {
		d.step()
		if d.obsTr != nil {
			d.obsTr.Record(d.obsNow(), obs.EvDevTxBurst, d.obsSrc, int64(n), 0, int64(q))
		}
	}
	return n
}

// TxBurstQNoStep is TxBurstQ without advancing the device: descriptors
// are programmed and the tail register written, but the frames leave
// only when the runner next calls StepDevice. Queue tails are drained
// in queue-index order there — the same order sequential shard loops
// submit in — so the line serializer books the identical schedule.
func (d *EthDev) TxBurstQNoStep(q int, bufs []*Mbuf) int {
	if !d.started || q >= len(d.txqs) {
		return 0
	}
	n := d.txEnqueueQ(q, bufs)
	if n > 0 && d.obsTr != nil {
		d.obsTr.Record(d.obsNow(), obs.EvDevTxBurst, d.obsSrc, int64(n), 0, int64(q))
	}
	return n
}

// txEnqueueQ reclaims queue q's completed descriptors, programs new
// ones for bufs and advances the tail register.
func (d *EthDev) txEnqueueQ(q int, bufs []*Mbuf) int {
	d.reclaimTX(q)
	tq := &d.txqs[q]
	n := 0
	for _, m := range bufs {
		if tq.free == 0 {
			break
		}
		descAddr := tq.base + uint64(tq.next)*nic.DescSize
		if err := d.writeDesc(descAddr, m.DataAddr(), uint16(m.Len()), nic.TxCmdEOP|nic.TxCmdRS); err != nil {
			break
		}
		tq.mbufs[tq.next] = m
		tq.next = (tq.next + 1) % tq.n
		tq.free--
		tq.stats.OPackets++
		tq.stats.OBytes += uint64(m.Len())
		n++
	}
	if n > 0 {
		d.dev.RegWrite32(nic.RegTDTQ(q), tq.next)
	}
	return n
}

// Poll advances the device without transferring mbufs (keeps TX
// draining while the application is idle) and reclaims completed
// transmissions on every queue.
func (d *EthDev) Poll() {
	if !d.started {
		return
	}
	d.step()
	for q := range d.txqs {
		d.reclaimTX(q)
	}
}

// PollQ advances the device and reclaims queue q's completed
// transmissions only — the per-shard poll, so shards do not touch each
// other's software ring state.
func (d *EthDev) PollQ(q int) {
	if !d.started || q >= len(d.txqs) {
		return
	}
	d.step()
	d.reclaimTX(q)
}

// PollQNoStep reclaims queue q's completed transmissions without
// advancing the device (the parallel shard runner's per-shard poll).
func (d *EthDev) PollQNoStep(q int) {
	if !d.started || q >= len(d.txqs) {
		return
	}
	d.reclaimTX(q)
}

// StepDevice advances the underlying hardware once: drain armed TX
// rings onto the wire (queue-index order), pump the attached conduit,
// and fill armed RX rings from the FIFOs. The parallel shard runner
// calls this at the sequential phase boundaries that bracket the
// concurrent no-step bursts; everything the sequential driver would
// have done inline happens here instead, in the same order.
func (d *EthDev) StepDevice() {
	if d.started {
		d.step()
	}
}

// SupportsTxDrain reports whether the underlying device exposes the
// TX-only drain surface DrainTXThrough needs.
func (d *EthDev) SupportsTxDrain() bool { return d.drainTX != nil }

// DrainTXThrough transmits everything the line will currently admit on
// queues 0..maxQ in queue-index order and reports whether queue maxQ's
// ring head advanced. The parallel shard runner calls it when a shard
// working between phase boundaries fills its TX descriptor ring: the
// drain reproduces, at the same frozen instant and in the same order,
// the ring reclaims the sequential driver's inline device steps would
// have performed, so descriptor-ring backpressure surfaces to the
// stack at exactly the sequential stall points.
func (d *EthDev) DrainTXThrough(maxQ int) bool {
	if !d.started || d.drainTX == nil {
		return false
	}
	return d.drainTX(maxQ)
}

// NextDeadline reports the earliest virtual instant this device could
// make progress: immediately when a received frame already sits in a
// descriptor the driver has not harvested, otherwise whenever the
// underlying port (FIFOs, line serializer, attached conduit) next has
// work. math.MaxInt64 means the device is fully quiescent. The
// event-driven simulation driver aggregates these to leap the clock
// over provably empty poll iterations.
func (d *EthDev) NextDeadline(now int64) int64 {
	if !d.started {
		return math.MaxInt64
	}
	for q := range d.rxqs {
		rq := &d.rxqs[q]
		status, _, err := d.descStatus(rq.base + uint64(rq.next)*nic.DescSize)
		if err == nil && status&nic.StatDD != 0 {
			return now // harvestable frame waiting in the ring
		}
	}
	if dl, ok := d.dev.(interface{ NextDeadline(now int64) int64 }); ok {
		return dl.NextDeadline(now)
	}
	// Unknown PCI device (hostos.PCIDevice is a foreign interface we
	// cannot extend here): report "work now", which disables leaping
	// over this device entirely — slower, never wrong. Silence in the
	// other direction (MaxInt64) would let the driver skip frames a
	// forgetful wrapper holds.
	return now
}

// Stats reads the device counters (whole-port aggregates).
func (d *EthDev) Stats() Stats {
	return Stats{
		IPackets: uint64(d.dev.RegRead32(nic.RegGPRC)),
		OPackets: uint64(d.dev.RegRead32(nic.RegGPTC)),
		IBytes:   uint64(d.dev.RegRead32(nic.RegGORCL)) | uint64(d.dev.RegRead32(nic.RegGORCH))<<32,
		OBytes:   uint64(d.dev.RegRead32(nic.RegGOTCL)) | uint64(d.dev.RegRead32(nic.RegGOTCH))<<32,
		IMissed:  uint64(d.dev.RegRead32(nic.RegMPC)),
	}
}

// QueueStats returns queue q's software counters: frames the driver
// harvested (RX) and frames it handed to the device (TX).
func (d *EthDev) QueueStats(q int) Stats {
	if q >= len(d.rxqs) {
		return Stats{}
	}
	st := d.rxqs[q].stats
	st.add(d.txqs[q].stats)
	return st
}

// QueueStatsSum aggregates the software counters over every queue.
func (d *EthDev) QueueStatsSum() Stats {
	var st Stats
	for q := range d.rxqs {
		st.add(d.QueueStats(q))
	}
	return st
}

// RxQueueOf reports which RX queue the device's RSS classifier would
// select for an inbound IPv4 packet with the given flow tuple — the
// steering oracle a sharded stack uses to place locally initiated
// connections on the shard their return traffic will reach.
func (d *EthDev) RxQueueOf(src, dst [4]byte, proto byte, sport, dport uint16) int {
	if !d.rssOn {
		return 0
	}
	h := nic.RSSHashTuple(d.rssKey[:], src, dst, proto, sport, dport)
	q := int(d.reta[h&(nic.RetaEntries-1)])
	if q >= len(d.rxqs) {
		return 0
	}
	return q
}
