package dpdk

import (
	"encoding/binary"
	"fmt"

	"repro/internal/hostos"
	"repro/internal/nic"
)

// steppable is the "hardware runs" hook of the simulated device; the
// poll-mode driver advances the device from its own burst calls.
type steppable interface{ Step() }

// Stats mirrors rte_eth_stats.
type Stats struct {
	IPackets uint64 // received packets
	OPackets uint64 // transmitted packets
	IBytes   uint64 // received bytes
	OBytes   uint64 // transmitted bytes
	IMissed  uint64 // RX drops at the device (ring/FIFO full)
}

// EthDev is one bound Ethernet port driven in user space (rte_ethdev +
// igb PMD in one type).
type EthDev struct {
	dev  hostos.PCIDevice
	step func()
	seg  *MemSeg
	pool *Mempool
	mac  [6]byte

	nRX, nTX  uint32
	rxBase    uint64
	txBase    uint64
	rxMbufs   []*Mbuf
	txMbufs   []*Mbuf
	rxNext    uint32 // next RX descriptor to harvest
	rxTail    uint32 // software copy of RDT
	txNext    uint32 // next TX descriptor to program
	txReclaim uint32 // next TX descriptor to reclaim
	txFree    uint32 // free TX descriptors

	configured bool
	started    bool
}

// Probe claims the unbound PCI device at bdf and wraps it in an EthDev
// using seg for all descriptor and packet memory.
func Probe(pci *hostos.PCI, bdf string, seg *MemSeg) (*EthDev, error) {
	dev, errno := pci.Claim(bdf)
	if errno != hostos.OK {
		return nil, fmt.Errorf("dpdk: claiming %s: %v (unbind the kernel driver first)", bdf, errno)
	}
	if dev.VendorID() != 0x8086 || dev.DeviceID() != 0x10C9 {
		return nil, fmt.Errorf("dpdk: %s is %04x:%04x, not an 82576", bdf, dev.VendorID(), dev.DeviceID())
	}
	st, ok := dev.(steppable)
	if !ok {
		return nil, fmt.Errorf("dpdk: device %s cannot be polled", bdf)
	}
	d := &EthDev{dev: dev, step: st.Step, seg: seg}
	ral := dev.RegRead32(nic.RegRAL0)
	rah := dev.RegRead32(nic.RegRAH0)
	d.mac = [6]byte{byte(ral), byte(ral >> 8), byte(ral >> 16), byte(ral >> 24), byte(rah), byte(rah >> 8)}
	// In capability-DMA mode, grant the device its IOMMU window over the
	// segment.
	if p, ok := dev.(*nic.Port); ok && seg.CapMode() {
		p.SetDMACap(seg.Cap())
	}
	return d, nil
}

// MAC returns the port's hardware address.
func (d *EthDev) MAC() [6]byte { return d.mac }

// Configure allocates nrx/ntx descriptor rings from the segment and
// programs the device. pool supplies RX buffers.
func (d *EthDev) Configure(nrx, ntx uint32, pool *Mempool) error {
	if d.configured {
		return fmt.Errorf("dpdk: device already configured")
	}
	if nrx < 8 || ntx < 8 {
		return fmt.Errorf("dpdk: ring sizes %d/%d too small", nrx, ntx)
	}
	var err error
	d.rxBase, err = d.seg.Alloc(uint64(nrx)*nic.DescSize, 128)
	if err != nil {
		return err
	}
	d.txBase, err = d.seg.Alloc(uint64(ntx)*nic.DescSize, 128)
	if err != nil {
		return err
	}
	d.nRX, d.nTX = nrx, ntx
	d.pool = pool
	d.rxMbufs = make([]*Mbuf, nrx)
	d.txMbufs = make([]*Mbuf, ntx)
	d.txFree = ntx - 1 // one slot kept open to distinguish full/empty

	d.dev.RegWrite32(nic.RegRDBAL, uint32(d.rxBase))
	d.dev.RegWrite32(nic.RegRDBAH, uint32(d.rxBase>>32))
	d.dev.RegWrite32(nic.RegRDLEN, nrx*nic.DescSize)
	d.dev.RegWrite32(nic.RegRDH, 0)
	d.dev.RegWrite32(nic.RegRDT, 0)
	d.dev.RegWrite32(nic.RegTDBAL, uint32(d.txBase))
	d.dev.RegWrite32(nic.RegTDBAH, uint32(d.txBase>>32))
	d.dev.RegWrite32(nic.RegTDLEN, ntx*nic.DescSize)
	d.dev.RegWrite32(nic.RegTDH, 0)
	d.dev.RegWrite32(nic.RegTDT, 0)
	d.configured = true
	return nil
}

// writeDesc programs one descriptor (through the segment, so it is a
// checked store in capability mode).
func (d *EthDev) writeDesc(descAddr, bufAddr uint64, length uint16, cmd byte) error {
	s, err := d.seg.Slice(descAddr, nic.DescSize)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(s[0:8], bufAddr)
	binary.LittleEndian.PutUint16(s[8:10], length)
	s[10] = 0
	s[11] = cmd
	s[12] = 0 // status
	s[13] = 0
	binary.LittleEndian.PutUint16(s[14:16], 0)
	return nil
}

// descStatus reads a descriptor's status byte and length.
func (d *EthDev) descStatus(descAddr uint64) (status byte, length uint16, err error) {
	s, err := d.seg.SliceRO(descAddr, nic.DescSize)
	if err != nil {
		return 0, 0, err
	}
	return s[12], binary.LittleEndian.Uint16(s[8:10]), nil
}

// Start posts the RX ring and enables both queues.
func (d *EthDev) Start() error {
	if !d.configured {
		return fmt.Errorf("dpdk: start before configure")
	}
	if d.started {
		return fmt.Errorf("dpdk: device already started")
	}
	// Post a buffer in EVERY slot; RDT=nRX-1 leaves a one-descriptor gap
	// for the hardware's full/empty disambiguation. The gap slot still
	// holds a valid buffer, so the window can slide over it safely.
	for i := uint32(0); i < d.nRX; i++ {
		m, ok := d.pool.Get()
		if !ok {
			return fmt.Errorf("dpdk: pool %q exhausted while filling RX ring", d.pool.Name())
		}
		d.rxMbufs[i] = m
		if err := d.writeDesc(d.rxBase+uint64(i)*nic.DescSize, m.DataAddr(), 0, 0); err != nil {
			return err
		}
	}
	d.rxTail = d.nRX - 1
	d.dev.RegWrite32(nic.RegRDT, d.rxTail)
	d.dev.RegWrite32(nic.RegRCTL, nic.RctlEN)
	d.dev.RegWrite32(nic.RegTCTL, nic.TctlEN)
	d.started = true
	return nil
}

// RxBurst polls the device and harvests up to len(out) received frames.
// Each returned mbuf's payload is the raw Ethernet frame.
func (d *EthDev) RxBurst(out []*Mbuf) int {
	if !d.started {
		return 0
	}
	d.step()
	n := 0
	for n < len(out) {
		descAddr := d.rxBase + uint64(d.rxNext)*nic.DescSize
		status, length, err := d.descStatus(descAddr)
		if err != nil || status&nic.StatDD == 0 {
			break
		}
		// Refill first: if the pool is dry, stop harvesting (the frame
		// stays until a buffer is available).
		repl, ok := d.pool.Get()
		if !ok {
			break
		}
		m := d.rxMbufs[d.rxNext]
		m.off = MbufHeadroom
		if err := m.SetLen(int(length)); err != nil {
			// Oversized: drop.
			repl.Free()
			m.reset()
			repl = m
		}

		d.rxMbufs[d.rxNext] = repl
		if err := d.writeDesc(descAddr, repl.DataAddr(), 0, 0); err != nil {
			break
		}
		if m != repl {
			out[n] = m
			n++
		}
		d.rxNext = (d.rxNext + 1) % d.nRX
		d.rxTail = (d.rxTail + 1) % d.nRX
		d.dev.RegWrite32(nic.RegRDT, d.rxTail)
	}
	return n
}

// reclaimTX frees mbufs whose descriptors the device completed.
func (d *EthDev) reclaimTX() {
	for d.txFree < d.nTX-1 {
		descAddr := d.txBase + uint64(d.txReclaim)*nic.DescSize
		status, _, err := d.descStatus(descAddr)
		if err != nil || status&nic.StatDD == 0 {
			return
		}
		if m := d.txMbufs[d.txReclaim]; m != nil {
			m.Free()
			d.txMbufs[d.txReclaim] = nil
		}
		d.txReclaim = (d.txReclaim + 1) % d.nTX
		d.txFree++
	}
}

// TxBurst enqueues up to len(bufs) frames for transmission and returns
// how many were accepted; ownership of accepted mbufs passes to the
// driver (they return to the pool after the device sends them).
func (d *EthDev) TxBurst(bufs []*Mbuf) int {
	if !d.started {
		return 0
	}
	d.step() // push earlier frames, complete descriptors
	d.reclaimTX()
	n := 0
	for _, m := range bufs {
		if n >= len(bufs) || d.txFree == 0 {
			break
		}
		descAddr := d.txBase + uint64(d.txNext)*nic.DescSize
		if err := d.writeDesc(descAddr, m.DataAddr(), uint16(m.Len()), nic.TxCmdEOP|nic.TxCmdRS); err != nil {
			break
		}
		d.txMbufs[d.txNext] = m
		d.txNext = (d.txNext + 1) % d.nTX
		d.txFree--
		n++
	}
	if n > 0 {
		d.dev.RegWrite32(nic.RegTDT, d.txNext)
		d.step()
	}
	return n
}

// Poll advances the device without transferring mbufs (keeps TX draining
// while the application is idle) and reclaims completed transmissions.
func (d *EthDev) Poll() {
	if d.started {
		d.step()
		d.reclaimTX()
	}
}

// Stats reads the device counters.
func (d *EthDev) Stats() Stats {
	return Stats{
		IPackets: uint64(d.dev.RegRead32(nic.RegGPRC)),
		OPackets: uint64(d.dev.RegRead32(nic.RegGPTC)),
		IBytes:   uint64(d.dev.RegRead32(nic.RegGORCL)) | uint64(d.dev.RegRead32(nic.RegGORCH))<<32,
		OBytes:   uint64(d.dev.RegRead32(nic.RegGOTCL)) | uint64(d.dev.RegRead32(nic.RegGOTCH))<<32,
		IMissed:  uint64(d.dev.RegRead32(nic.RegMPC)),
	}
}
