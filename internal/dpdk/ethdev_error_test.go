package dpdk

import (
	"testing"

	"repro/internal/cheri"
	"repro/internal/hostos"
	"repro/internal/nic"
	"repro/internal/sim"
)

func claimedDev(t *testing.T) (*EthDev, *Mempool) {
	t.Helper()
	mem := cheri.NewTMem(4 << 20)
	clk := sim.NewVClock()
	pci := hostos.NewPCI()
	card, err := nic.New(nic.Config{
		BDFBase: "0000:03:00", Ports: 1, LineRateBps: 1e9,
		MAC: [6]byte{2, 0, 0, 0, 0, 1}, Clk: clk, Mem: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := card.RegisterPCI(pci); err != nil {
		t.Fatal(err)
	}
	pci.Unbind("0000:03:00.0")
	seg, err := NewMemSeg(mem, 0x100000, 2<<20, cheri.NullCap, false)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewMempool(seg, "p", 256, DefaultDataroom)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := Probe(pci, "0000:03:00.0", seg)
	if err != nil {
		t.Fatal(err)
	}
	return dev, pool
}

func TestEthDevMisuse(t *testing.T) {
	dev, pool := claimedDev(t)
	// Start before configure.
	if err := dev.Start(); err == nil {
		t.Fatal("start before configure accepted")
	}
	// Burst before start.
	if n := dev.RxBurst(make([]*Mbuf, 4)); n != 0 {
		t.Fatal("rx before start returned frames")
	}
	if n := dev.TxBurst(nil); n != 0 {
		t.Fatal("tx before start accepted frames")
	}
	dev.Poll() // must be harmless
	// Undersized rings.
	if err := dev.Configure(4, 4, pool); err == nil {
		t.Fatal("tiny rings accepted")
	}
	if err := dev.Configure(64, 64, pool); err != nil {
		t.Fatal(err)
	}
	// Double configure.
	if err := dev.Configure(64, 64, pool); err == nil {
		t.Fatal("double configure accepted")
	}
	if err := dev.Start(); err != nil {
		t.Fatal(err)
	}
	// Double start.
	if err := dev.Start(); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestEthDevStartFailsOnTinyPool(t *testing.T) {
	dev, _ := claimedDev(t)
	mem := cheri.NewTMem(2 << 20)
	seg, _ := NewMemSeg(mem, 0x1000, 1<<20, cheri.NullCap, false)
	tiny, err := NewMempool(seg, "tiny", 8, DefaultDataroom)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Configure(64, 64, tiny); err != nil {
		t.Fatal(err)
	}
	// 64 RX descriptors need 64 buffers; the pool has 8.
	if err := dev.Start(); err == nil {
		t.Fatal("start with an exhausted pool accepted")
	}
}
