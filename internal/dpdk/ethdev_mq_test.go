package dpdk

import (
	"encoding/binary"
	"testing"
)

// udpFrame crafts a minimal Ethernet/IPv4/UDP frame for the classifier
// (checksums are not validated below the stack).
func udpFrame(src, dst [4]byte, sport, dport uint16, payload int) []byte {
	f := make([]byte, 14+20+8+payload)
	binary.BigEndian.PutUint16(f[12:14], 0x0800)
	f[14] = 0x45
	binary.BigEndian.PutUint16(f[16:18], uint16(20+8+payload))
	f[22] = 64 // TTL
	f[23] = 17 // UDP
	copy(f[26:30], src[:])
	copy(f[30:34], dst[:])
	binary.BigEndian.PutUint16(f[34:36], sport)
	binary.BigEndian.PutUint16(f[36:38], dport)
	binary.BigEndian.PutUint16(f[38:40], uint16(8+payload))
	return f
}

// TestMultiQueueSteering sends flows with distinct tuples from devB and
// checks every frame is harvested from exactly the queue RxQueueOf
// predicts — the contract the sharded stack's correctness rests on.
func TestMultiQueueSteering(t *testing.T) {
	const nq = 4
	r := newRigQueues(t, false, nq)
	src := [4]byte{10, 0, 0, 2}
	dst := [4]byte{10, 0, 0, 1}

	queueUsed := make([]bool, nq)
	for f := 0; f < 32; f++ {
		sport := uint16(41000 + 53*f)
		dport := uint16(5301 + f%4)
		want := r.devA.RxQueueOf(src, dst, 17, sport, dport)
		if want < 0 || want >= nq {
			t.Fatalf("RxQueueOf out of range: %d", want)
		}
		queueUsed[want] = true

		m := makeFrame(t, r.popB, udpFrame(src, dst, sport, dport, 64))
		if r.devB.TxBurst([]*Mbuf{m}) != 1 {
			t.Fatal("tx refused")
		}
		r.pump(5)

		var burst [8]*Mbuf
		for q := 0; q < nq; q++ {
			n := r.devA.RxBurstQ(q, burst[:])
			if q == want {
				if n != 1 {
					t.Fatalf("flow %d: queue %d returned %d frames, want 1", f, q, n)
				}
				got, err := burst[0].BytesRO()
				if err != nil || binary.BigEndian.Uint16(got[34:36]) != sport {
					t.Fatalf("flow %d: wrong frame on queue %d", f, q)
				}
				burst[0].Free()
			} else if n != 0 {
				t.Fatalf("flow %d: unexpected frame on queue %d (want %d)", f, q, want)
			}
		}
	}
	used := 0
	for _, u := range queueUsed {
		if u {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("test tuples exercised only %d queue(s)", used)
	}
}

// TestMultiQueueNonIPToQueueZero: ARP (and any non-IPv4 traffic) must
// land on queue 0, where every sharded deployment keeps a stack.
func TestMultiQueueNonIPToQueueZero(t *testing.T) {
	const nq = 4
	r := newRigQueues(t, false, nq)
	arp := make([]byte, 64)
	binary.BigEndian.PutUint16(arp[12:14], 0x0806)
	m := makeFrame(t, r.popB, arp)
	if r.devB.TxBurst([]*Mbuf{m}) != 1 {
		t.Fatal("tx refused")
	}
	r.pump(5)
	var burst [4]*Mbuf
	for q := 1; q < nq; q++ {
		if n := r.devA.RxBurstQ(q, burst[:]); n != 0 {
			t.Fatalf("non-IP frame on queue %d", q)
		}
	}
	if n := r.devA.RxBurstQ(0, burst[:]); n != 1 {
		t.Fatalf("queue 0 returned %d frames, want 1", n)
	}
	burst[0].Free()
}

// TestMultiQueueStatsSum: per-queue software counters must sum to the
// aggregate, and agree with the device's own frame counter.
func TestMultiQueueStatsSum(t *testing.T) {
	const nq = 4
	r := newRigQueues(t, false, nq)
	src := [4]byte{10, 0, 0, 2}
	dst := [4]byte{10, 0, 0, 1}
	const frames = 24
	for f := 0; f < frames; f++ {
		m := makeFrame(t, r.popB, udpFrame(src, dst, uint16(41000+211*f), 5301, 64))
		if r.devB.TxBurst([]*Mbuf{m}) != 1 {
			t.Fatal("tx refused")
		}
	}
	r.pump(20)
	var burst [8]*Mbuf
	total := 0
	for q := 0; q < nq; q++ {
		for {
			n := r.devA.RxBurstQ(q, burst[:])
			for i := 0; i < n; i++ {
				burst[i].Free()
			}
			total += n
			if n < len(burst) {
				break
			}
		}
	}
	if total != frames {
		t.Fatalf("harvested %d frames, want %d", total, frames)
	}
	var sum Stats
	for q := 0; q < nq; q++ {
		sum.add(r.devA.QueueStats(q))
	}
	agg := r.devA.QueueStatsSum()
	if sum != agg {
		t.Fatalf("per-queue sum %+v != aggregate %+v", sum, agg)
	}
	if sum.IPackets != frames {
		t.Fatalf("software RX count %d, want %d", sum.IPackets, frames)
	}
	if dev := r.devA.Stats(); dev.IPackets != frames {
		t.Fatalf("device RX count %d, want %d", dev.IPackets, frames)
	}
}
