package dpdk

import (
	"fmt"
	"sync"
)

// MbufHeadroom is the reserved space before packet data
// (RTE_PKTMBUF_HEADROOM); protocol layers prepend headers into it.
const MbufHeadroom = 128

// DefaultDataroom fits an MTU-1500 Ethernet frame plus headroom.
const DefaultDataroom = 2048 + MbufHeadroom

// Mbuf is a single-segment packet buffer. Chained (multi-segment) mbufs
// are not modelled: the dataroom exceeds the 1514-byte maximum frame, so
// the stack never needs chaining.
type Mbuf struct {
	pool *Mempool
	buf  uint64 // base address of the data room
	room uint16 // data room size

	off uint16 // data offset from buf
	len uint16 // data length

	// Port is the receiving port id, set by RxBurst.
	Port int
}

// DataAddr returns the address of the first payload byte.
func (m *Mbuf) DataAddr() uint64 { return m.buf + uint64(m.off) }

// Len returns the payload length.
func (m *Mbuf) Len() int { return int(m.len) }

// Headroom returns the unused space before the payload.
func (m *Mbuf) Headroom() int { return int(m.off) }

// Tailroom returns the unused space after the payload.
func (m *Mbuf) Tailroom() int { return int(m.room - m.off - m.len) }

// reset rewinds the mbuf to headroom-only, zero length.
func (m *Mbuf) reset() {
	m.off = MbufHeadroom
	m.len = 0
	m.Port = 0
}

// Append grows the payload by n bytes at the tail and returns a writable
// view of the new region (capability-checked in CHERI mode).
func (m *Mbuf) Append(n int) ([]byte, error) {
	if n < 0 || n > m.Tailroom() {
		return nil, fmt.Errorf("dpdk: append %d exceeds tailroom %d", n, m.Tailroom())
	}
	addr := m.buf + uint64(m.off+m.len)
	m.len += uint16(n)
	return m.pool.seg.Slice(addr, n)
}

// Prepend grows the payload by n bytes at the head (header push) and
// returns a writable view of the new region.
func (m *Mbuf) Prepend(n int) ([]byte, error) {
	if n < 0 || n > int(m.off) {
		return nil, fmt.Errorf("dpdk: prepend %d exceeds headroom %d", n, m.off)
	}
	m.off -= uint16(n)
	m.len += uint16(n)
	return m.pool.seg.Slice(m.buf+uint64(m.off), n)
}

// Adj strips n bytes from the head (header pull).
func (m *Mbuf) Adj(n int) error {
	if n < 0 || n > int(m.len) {
		return fmt.Errorf("dpdk: adj %d exceeds length %d", n, m.len)
	}
	m.off += uint16(n)
	m.len -= uint16(n)
	return nil
}

// Trim strips n bytes from the tail.
func (m *Mbuf) Trim(n int) error {
	if n < 0 || n > int(m.len) {
		return fmt.Errorf("dpdk: trim %d exceeds length %d", n, m.len)
	}
	m.len -= uint16(n)
	return nil
}

// SetLen forces the payload length (used by RX harvest: the device wrote
// the bytes already).
func (m *Mbuf) SetLen(n int) error {
	if n < 0 || n > int(m.room-m.off) {
		return fmt.Errorf("dpdk: length %d exceeds room", n)
	}
	m.len = uint16(n)
	return nil
}

// Bytes returns a read-write view of the whole payload.
func (m *Mbuf) Bytes() ([]byte, error) {
	return m.pool.seg.Slice(m.DataAddr(), m.Len())
}

// BytesRO returns a read-only view of the whole payload.
func (m *Mbuf) BytesRO() ([]byte, error) {
	return m.pool.seg.SliceRO(m.DataAddr(), m.Len())
}

// Free returns the mbuf to its pool.
func (m *Mbuf) Free() { m.pool.put(m) }

// Mempool is a fixed-population mbuf allocator over a memory segment.
type Mempool struct {
	seg  *MemSeg
	name string
	room uint16

	mu    sync.Mutex
	free  []*Mbuf
	total int
}

// NewMempool carves n mbufs of the given dataroom out of seg.
func NewMempool(seg *MemSeg, name string, n int, dataroom uint16) (*Mempool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dpdk: mempool %q needs a positive population", name)
	}
	if dataroom < MbufHeadroom+64 {
		return nil, fmt.Errorf("dpdk: mempool %q dataroom %d too small", name, dataroom)
	}
	p := &Mempool{seg: seg, name: name, room: dataroom, total: n}
	base, err := p.seg.Alloc(uint64(n)*uint64(dataroom), 64)
	if err != nil {
		return nil, fmt.Errorf("dpdk: mempool %q: %w", name, err)
	}
	p.free = make([]*Mbuf, 0, n)
	for i := 0; i < n; i++ {
		m := &Mbuf{pool: p, buf: base + uint64(i)*uint64(dataroom), room: dataroom}
		m.reset()
		p.free = append(p.free, m)
	}
	return p, nil
}

// Name returns the pool's name.
func (p *Mempool) Name() string { return p.name }

// Get allocates an mbuf; ok is false when the pool is exhausted.
func (p *Mempool) Get() (*Mbuf, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		return nil, false
	}
	m := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return m, true
}

// put returns an mbuf to the pool.
func (p *Mempool) put(m *Mbuf) {
	m.reset()
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) >= p.total {
		panic(fmt.Sprintf("dpdk: mempool %q double free", p.name))
	}
	p.free = append(p.free, m)
}

// Avail reports free mbufs.
func (p *Mempool) Avail() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Total reports the pool population.
func (p *Mempool) Total() int { return p.total }
