package dpdk

import (
	"fmt"
	"sync"

	"repro/internal/cheri"
)

// MemSeg is a contiguous packet-memory segment (DPDK's hugepage memseg).
// The owner received it at boot: a Baseline process simply mmaps it; a
// cVM is granted a capability over it by the Intravisor.
type MemSeg struct {
	mem  *cheri.TMem
	base uint64
	size uint64

	// capMode selects checked (CHERI) or raw (Baseline) access.
	capMode bool
	cap     cheri.Cap

	mu   sync.Mutex
	next uint64 // bump pointer
}

// NewMemSeg wraps [base, base+size) of mem. In capability mode, access
// is bounded by the provided capability (which must cover the range).
func NewMemSeg(mem *cheri.TMem, base, size uint64, c cheri.Cap, capMode bool) (*MemSeg, error) {
	if capMode {
		if !c.Tag() || !c.InBounds(base, 1) || !c.InBounds(base+size-1, 1) {
			return nil, fmt.Errorf("dpdk: capability %v does not cover segment [%#x,+%#x)", c, base, size)
		}
	}
	return &MemSeg{mem: mem, base: base, size: size, capMode: capMode, cap: c}, nil
}

// Base returns the segment's base address.
func (s *MemSeg) Base() uint64 { return s.base }

// Size returns the segment's size.
func (s *MemSeg) Size() uint64 { return s.size }

// CapMode reports whether the segment enforces capability checks.
func (s *MemSeg) CapMode() bool { return s.capMode }

// Cap returns the segment capability (null in raw mode). Devices get
// their IOMMU window derived from it.
func (s *MemSeg) Cap() cheri.Cap { return s.cap }

// Mem returns the underlying tagged memory.
func (s *MemSeg) Mem() *cheri.TMem { return s.mem }

// Alloc carves n bytes (aligned) out of the segment. Segment memory is
// never returned — DPDK pools live for the process lifetime.
func (s *MemSeg) Alloc(n, align uint64) (uint64, error) {
	if n == 0 {
		return 0, fmt.Errorf("dpdk: zero-length allocation")
	}
	if align == 0 {
		align = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	off := (s.next + align - 1) &^ (align - 1)
	if off+n > s.size || off+n < off {
		return 0, fmt.Errorf("dpdk: segment exhausted (%d of %d used, want %d)", s.next, s.size, n)
	}
	s.next = off + n
	return s.base + off, nil
}

// Used reports allocated bytes.
func (s *MemSeg) Used() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Slice maps [addr, addr+n) read-write. In capability mode the access is
// bounds- and permission-checked through the segment capability; these
// checks are the CHERI datapath cost.
func (s *MemSeg) Slice(addr uint64, n int) ([]byte, error) {
	if s.capMode {
		return s.mem.CheckedSlice(s.cap.SetAddr(addr), addr, n)
	}
	return s.mem.RawSlice(addr, n)
}

// SliceRO maps [addr, addr+n) read-only.
func (s *MemSeg) SliceRO(addr uint64, n int) ([]byte, error) {
	if s.capMode {
		return s.mem.CheckedSliceRO(s.cap.SetAddr(addr), addr, n)
	}
	return s.mem.RawSlice(addr, n)
}
