// Package faultplane is the deterministic fault-injection and recovery
// subsystem. It has two halves:
//
//   - Plane: a pre-computed schedule of fault events on the virtual
//     timeline (link carrier flaps, NIC queue stalls, DMA-fault bursts,
//     injected capability faults). Each event is a closure fired at an
//     exact virtual instant; the schedule participates in the driver's
//     event-driven leaping through NextDeadline, so a fault lands on the
//     same nanosecond every run regardless of host parallelism.
//
//   - Supervisor: the Intravisor-side restart policy over trapped
//     compartments (the paper's Fig. 3 recovery arc). It polls its
//     targets, schedules a restart after an exponential backoff, and
//     gives up after a bounded number of retries — counting restarts,
//     give-ups, and per-fault downtime along the way.
//
// Everything here runs in virtual time on the driver's thread; there is
// no wall-clock, no goroutine, and no randomness at run time (schedules
// are materialized up front from a seed).
package faultplane

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/obs"
)

// Event is one scheduled fault: Fire runs exactly once, at the first
// step whose virtual time reaches At.
type Event struct {
	At   int64
	Fire func(now int64)
}

// Plane replays a fault schedule against virtual time.
type Plane struct {
	evs []Event
	idx int
}

// NewPlane orders the schedule. Events at equal instants keep their
// given order (stable), so co-scheduled faults fire deterministically.
func NewPlane(evs []Event) *Plane {
	s := make([]Event, len(evs))
	copy(s, evs)
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
	return &Plane{evs: s}
}

// Step fires every event due at or before now. Nil-safe: a bed without
// a fault schedule steps a nil plane for free.
func (p *Plane) Step(now int64) {
	if p == nil {
		return
	}
	for p.idx < len(p.evs) && p.evs[p.idx].At <= now {
		p.evs[p.idx].Fire(now)
		p.idx++
	}
}

// NextDeadline reports the next scheduled instant, or MaxInt64 when the
// schedule is exhausted (or the plane is nil).
func (p *Plane) NextDeadline(now int64) int64 {
	if p == nil || p.idx >= len(p.evs) {
		return math.MaxInt64
	}
	return p.evs[p.idx].At
}

// Remaining reports how many events have not fired yet.
func (p *Plane) Remaining() int { return len(p.evs) - p.idx }

// Policy is the supervisor's restart discipline.
type Policy struct {
	// BackoffNS is the delay before the first restart attempt.
	BackoffNS int64
	// MaxBackoffNS caps the exponential growth.
	MaxBackoffNS int64
	// MaxRetries bounds restarts per target; a fault beyond it is a
	// give-up — the compartment stays dead and is counted.
	MaxRetries int
}

// DefaultPolicy matches the scenario defaults: 50 ms initial backoff
// doubling to a 1 s cap, 16 restarts before giving up.
func DefaultPolicy() Policy {
	return Policy{BackoffNS: 50e6, MaxBackoffNS: 1e9, MaxRetries: 16}
}

// backoff computes the delay before restart attempt n (0-based).
func (p Policy) backoff(n int) int64 {
	d := p.BackoffNS
	for i := 0; i < n; i++ {
		d *= 2
		if d >= p.MaxBackoffNS {
			return p.MaxBackoffNS
		}
	}
	if d > p.MaxBackoffNS {
		d = p.MaxBackoffNS
	}
	return d
}

// Target is a restartable compartment. Trapped is the poll predicate;
// Restart re-creates the compartment's world (cVM window, gates, stack
// state, listeners) at the given virtual instant.
type Target interface {
	Name() string
	Trapped() bool
	Restart(now int64) error
}

// supTarget is the supervisor's per-target state machine: running
// (restartAt == 0, not trapped) -> backing off (restartAt set) ->
// running again, or dead (gaveUp).
type supTarget struct {
	t         Target
	src       uint16
	retries   int
	trappedAt int64
	restartAt int64
	gaveUp    bool
}

// Supervisor applies a Policy over a set of targets. Step it from the
// driver's app phase; it detects traps the instant they occur (fault
// events run in the same virtual step) and schedules restarts on the
// timeline via NextDeadline.
type Supervisor struct {
	pol     Policy
	targets []*supTarget

	// Restarts counts completed restarts; GiveUps counts targets
	// abandoned after MaxRetries.
	Restarts int
	GiveUps  int

	tr *obs.Trace
}

// NewSupervisor builds a supervisor with the given policy.
func NewSupervisor(pol Policy) *Supervisor {
	return &Supervisor{pol: pol}
}

// SetTrace attaches a flight recorder. Call before traffic.
func (s *Supervisor) SetTrace(tr *obs.Trace) { s.tr = tr }

// Watch registers a target; src labels its trace events.
func (s *Supervisor) Watch(t Target, src uint16) {
	s.targets = append(s.targets, &supTarget{t: t, src: src})
}

// Step advances every target's state machine to now. Nil-safe.
func (s *Supervisor) Step(now int64) {
	if s == nil {
		return
	}
	for _, st := range s.targets {
		if st.gaveUp {
			continue
		}
		if st.restartAt != 0 {
			if now < st.restartAt {
				continue
			}
			if err := st.t.Restart(now); err != nil {
				// A restart that cannot complete is terminal.
				st.gaveUp = true
				s.GiveUps++
				st.restartAt = 0
				continue
			}
			s.Restarts++
			s.tr.Record(now, obs.EvRestart, st.src, int64(st.retries), now-st.trappedAt, 0)
			st.restartAt = 0
			continue
		}
		if !st.t.Trapped() {
			continue
		}
		if st.retries >= s.pol.MaxRetries {
			st.gaveUp = true
			s.GiveUps++
			continue
		}
		st.trappedAt = now
		st.restartAt = now + s.pol.backoff(st.retries)
		st.retries++
		s.tr.Record(now, obs.EvFault, st.src, obs.FaultCap, int64(st.retries), 0)
	}
}

// NextDeadline reports the earliest pending restart instant, or
// MaxInt64 when every target is running (or abandoned). Nil-safe.
func (s *Supervisor) NextDeadline(now int64) int64 {
	d := int64(math.MaxInt64)
	if s == nil {
		return d
	}
	for _, st := range s.targets {
		if st.restartAt != 0 && st.restartAt < d {
			d = st.restartAt
		}
	}
	return d
}

// LastTrapAt reports the instant of the last trap of the target labeled
// src — the MTTR numerator's left edge. Zero when it never trapped.
func (s *Supervisor) LastTrapAt(src uint16) int64 {
	for _, st := range s.targets {
		if st.src == src {
			return st.trappedAt
		}
	}
	return 0
}

// GaveUp reports whether the target labeled src was abandoned.
func (s *Supervisor) GaveUp(src uint16) bool {
	for _, st := range s.targets {
		if st.src == src {
			return st.gaveUp
		}
	}
	return false
}

// ExpSchedule materializes a Poisson fault-arrival process: instants in
// (startNS, endNS) with exponentially distributed gaps of mean mtbfNS,
// drawn from the seed. The draw happens once, up front — run-time
// behavior is a pure replay.
func ExpSchedule(seed int64, mtbfNS, startNS, endNS int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	var out []int64
	t := startNS
	for {
		t += int64(rng.ExpFloat64() * float64(mtbfNS))
		if t >= endNS {
			return out
		}
		out = append(out, t)
	}
}
