package faultplane

import (
	"errors"
	"math"
	"testing"

	"repro/internal/obs"
)

func TestPlaneFiresInOrder(t *testing.T) {
	var got []int
	mk := func(id int, at int64) Event {
		return Event{At: at, Fire: func(now int64) {
			if now < at {
				t.Errorf("event %d fired at %d, before its instant %d", id, now, at)
			}
			got = append(got, id)
		}}
	}
	// Deliberately unsorted, with a tie (2 and 3 at t=50) whose given
	// order must survive the sort.
	p := NewPlane([]Event{mk(1, 100), mk(2, 50), mk(3, 50), mk(4, 200)})

	if d := p.NextDeadline(0); d != 50 {
		t.Fatalf("NextDeadline = %d, want 50", d)
	}
	p.Step(49)
	if len(got) != 0 {
		t.Fatalf("fired early: %v", got)
	}
	p.Step(120)
	if len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("order after t=120: %v, want [2 3 1]", got)
	}
	if d := p.NextDeadline(120); d != 200 {
		t.Fatalf("NextDeadline = %d, want 200", d)
	}
	p.Step(200)
	if p.Remaining() != 0 || p.NextDeadline(200) != math.MaxInt64 {
		t.Fatalf("schedule not exhausted: remaining=%d", p.Remaining())
	}
}

// fakeTarget scripts a compartment: trap on demand, optionally refuse
// to come back.
type fakeTarget struct {
	name      string
	trapped   bool
	restarts  int
	restartAt []int64
	fail      bool
}

func (f *fakeTarget) Name() string  { return f.name }
func (f *fakeTarget) Trapped() bool { return f.trapped }
func (f *fakeTarget) Restart(now int64) error {
	if f.fail {
		return errors.New("loader refused")
	}
	f.trapped = false
	f.restarts++
	f.restartAt = append(f.restartAt, now)
	return nil
}

func TestSupervisorBackoffDoubles(t *testing.T) {
	pol := Policy{BackoffNS: 100, MaxBackoffNS: 400, MaxRetries: 10}
	sup := NewSupervisor(pol)
	ft := &fakeTarget{name: "stack0"}
	sup.Watch(ft, 7)

	// Trap -> restart cycle four times; expected backoffs 100, 200,
	// 400, 400 (capped).
	now := int64(1000)
	wantBackoff := []int64{100, 200, 400, 400}
	for i, b := range wantBackoff {
		ft.trapped = true
		sup.Step(now)
		if d := sup.NextDeadline(now); d != now+b {
			t.Fatalf("fault %d: restart scheduled at %d, want %d (+%d)", i, d, now+b, b)
		}
		sup.Step(now + b - 1)
		if !ft.trapped {
			t.Fatalf("fault %d: restarted before the backoff elapsed", i)
		}
		sup.Step(now + b)
		if ft.trapped {
			t.Fatalf("fault %d: not restarted at the deadline", i)
		}
		now += b + 1000
	}
	if sup.Restarts != 4 || sup.GiveUps != 0 {
		t.Fatalf("Restarts=%d GiveUps=%d", sup.Restarts, sup.GiveUps)
	}
	if d := sup.NextDeadline(now); d != math.MaxInt64 {
		t.Fatalf("idle supervisor NextDeadline = %d", d)
	}
}

func TestSupervisorGivesUp(t *testing.T) {
	sup := NewSupervisor(Policy{BackoffNS: 10, MaxBackoffNS: 10, MaxRetries: 2})
	ft := &fakeTarget{name: "stack0"}
	sup.Watch(ft, 1)

	for i := 0; i < 2; i++ {
		ft.trapped = true
		sup.Step(int64(1000 * (i + 1)))
		sup.Step(int64(1000*(i+1)) + 10)
	}
	ft.trapped = true
	sup.Step(5000)
	if !sup.GaveUp(1) || sup.GiveUps != 1 {
		t.Fatalf("GaveUp=%v GiveUps=%d, want abandoned after MaxRetries=2", sup.GaveUp(1), sup.GiveUps)
	}
	// Abandoned targets are inert: no deadline, no further restarts.
	if d := sup.NextDeadline(5000); d != math.MaxInt64 {
		t.Fatalf("abandoned target still scheduled: %d", d)
	}
	sup.Step(10000)
	if ft.restarts != 2 {
		t.Fatalf("restarts = %d, want 2", ft.restarts)
	}
}

func TestSupervisorFailedRestartIsTerminal(t *testing.T) {
	sup := NewSupervisor(Policy{BackoffNS: 10, MaxBackoffNS: 10, MaxRetries: 5})
	ft := &fakeTarget{name: "stack0", fail: true}
	sup.Watch(ft, 1)
	ft.trapped = true
	sup.Step(100)
	sup.Step(110)
	if sup.GiveUps != 1 || sup.Restarts != 0 || !sup.GaveUp(1) {
		t.Fatalf("GiveUps=%d Restarts=%d", sup.GiveUps, sup.Restarts)
	}
}

func TestSupervisorTraceEvents(t *testing.T) {
	tr := obs.NewTrace(16)
	sup := NewSupervisor(Policy{BackoffNS: 100, MaxBackoffNS: 100, MaxRetries: 5})
	sup.SetTrace(tr)
	ft := &fakeTarget{name: "stack0"}
	sup.Watch(ft, 3)

	ft.trapped = true
	sup.Step(1000)
	sup.Step(1100)

	evs := tr.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want fault+restart", len(evs))
	}
	if evs[0].Type != obs.EvFault || evs[0].TS != 1000 || evs[0].Src != 3 ||
		evs[0].A != obs.FaultCap || evs[0].B != 1 {
		t.Fatalf("fault event = %+v", evs[0])
	}
	if evs[1].Type != obs.EvRestart || evs[1].TS != 1100 || evs[1].Src != 3 ||
		evs[1].B != 100 {
		t.Fatalf("restart event = %+v (want downtime B=100)", evs[1])
	}
	if at := sup.LastTrapAt(3); at != 1000 {
		t.Fatalf("LastTrapAt = %d", at)
	}
}

func TestExpScheduleDeterministicAndBounded(t *testing.T) {
	a := ExpSchedule(42, 1e6, 1000, 50e6)
	b := ExpSchedule(42, 1e6, 1000, 50e6)
	if len(a) == 0 {
		t.Fatal("empty schedule for 50 MTBFs of span")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
	prev := int64(1000)
	for _, at := range a {
		if at <= prev || at >= 50e6 {
			t.Fatalf("instant %d out of order or bounds (prev %d)", at, prev)
		}
		prev = at
	}
	if c := ExpSchedule(43, 1e6, 1000, 50e6); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical schedules")
		}
	}
}
