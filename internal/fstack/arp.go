package fstack

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// ARP opcodes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARPPacketLen is the size of an IPv4-over-Ethernet ARP packet.
const ARPPacketLen = 28

// ARPPacket is an Ethernet/IPv4 ARP payload.
type ARPPacket struct {
	Op        uint16
	SenderMAC MACAddr
	SenderIP  IPv4Addr
	TargetMAC MACAddr
	TargetIP  IPv4Addr
}

// PutARPPacket marshals p into b (len >= ARPPacketLen).
func PutARPPacket(b []byte, p ARPPacket) {
	binary.BigEndian.PutUint16(b[0:2], 1) // hardware: Ethernet
	binary.BigEndian.PutUint16(b[2:4], EtherTypeIPv4)
	b[4] = 6 // MAC length
	b[5] = 4 // IPv4 length
	binary.BigEndian.PutUint16(b[6:8], p.Op)
	copy(b[8:14], p.SenderMAC[:])
	copy(b[14:18], p.SenderIP[:])
	copy(b[18:24], p.TargetMAC[:])
	copy(b[24:28], p.TargetIP[:])
}

// ParseARPPacket unmarshals an ARP payload.
func ParseARPPacket(b []byte) (ARPPacket, error) {
	if len(b) < ARPPacketLen {
		return ARPPacket{}, fmt.Errorf("fstack: short ARP packet (%d bytes)", len(b))
	}
	if binary.BigEndian.Uint16(b[0:2]) != 1 ||
		binary.BigEndian.Uint16(b[2:4]) != EtherTypeIPv4 ||
		b[4] != 6 || b[5] != 4 {
		return ARPPacket{}, fmt.Errorf("fstack: unsupported ARP binding")
	}
	var p ARPPacket
	p.Op = binary.BigEndian.Uint16(b[6:8])
	copy(p.SenderMAC[:], b[8:14])
	copy(p.SenderIP[:], b[14:18])
	copy(p.TargetMAC[:], b[18:24])
	copy(p.TargetIP[:], b[24:28])
	return p, nil
}

// arpEntry is one cache binding.
type arpEntry struct {
	mac     MACAddr
	expires int64
}

// arpCacheTTL is how long a binding stays valid (ns). Point-to-point
// links never churn, so the value only matters for the expiry test.
const arpCacheTTL = 600e9

// arpPendingMax bounds the packets parked per unresolved address
// (FreeBSD holds a small queue; one slot is not enough when two flows
// race the same next hop).
const arpPendingMax = 8

// arpCache maps IPv4 addresses to MACs, with a short pending packet
// queue per unresolved address. A sharded stack shares one cache across
// every shard's view of the interface (neighbor state is read-mostly
// and not flow-affine — ARP replies always land on queue 0), so the
// cache carries its own lock; per-stack caches simply never contend.
type arpCache struct {
	mu      sync.Mutex
	entries map[IPv4Addr]arpEntry
	pending map[IPv4Addr][]*pendingPacket
}

// pendingPacket is a packet parked while its next hop resolves.
type pendingPacket struct {
	payload []byte // IP packet bytes (copied)
	proto   uint16
}

func newARPCache() *arpCache {
	return &arpCache{
		entries: make(map[IPv4Addr]arpEntry),
		pending: make(map[IPv4Addr][]*pendingPacket),
	}
}

// lookup returns the binding if present and fresh.
func (c *arpCache) lookup(ip IPv4Addr, now int64) (MACAddr, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[ip]
	if !ok || now > e.expires {
		return MACAddr{}, false
	}
	return e.mac, true
}

// insert installs a binding and returns the packets parked on it.
func (c *arpCache) insert(ip IPv4Addr, mac MACAddr, now int64) []*pendingPacket {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[ip] = arpEntry{mac: mac, expires: now + arpCacheTTL}
	p := c.pending[ip]
	delete(c.pending, ip)
	return p
}

// reset forgets every binding and parked packet — the compartment that
// learned them crashed; its successor re-resolves from scratch.
func (c *arpCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.entries)
	clear(c.pending)
}

// park queues a packet waiting for ip to resolve, dropping the oldest
// beyond the queue bound.
func (c *arpCache) park(ip IPv4Addr, payload []byte, proto uint16) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := make([]byte, len(payload))
	copy(cp, payload)
	q := c.pending[ip]
	if len(q) >= arpPendingMax {
		q = q[1:]
	}
	c.pending[ip] = append(q, &pendingPacket{payload: cp, proto: proto})
}
