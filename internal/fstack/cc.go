package fstack

import (
	"fmt"
	"math"
)

// The congestion-control seam. tcpconn.go used to smear cwnd/ssthresh
// arithmetic across every ACK- and loss-event site (init,
// fast-retransmit entry, NewReno inflation, partial-ACK deflation,
// full-ACK exit, slow start, AIMD, RTO collapse); adding a second
// algorithm meant touching all of them. Now the connection reports
// *events* and a CongestionController owns the window state: the conn
// keeps the transport mechanics (what is in flight, what was SACKed,
// when recovery starts and ends) and asks the controller how much the
// network can carry. State lives in the controller, not the conn, so
// an algorithm can keep whatever bookkeeping it needs (CUBIC's epoch
// clock and W_max history) without widening tcpConn.

// Registered congestion-control algorithm names, the values
// TCPTuning.Congestion accepts (net.inet.tcp.cc.algorithm analog).
const (
	// CCReno is the extracted default: RFC 5681 slow start + AIMD with
	// the RFC 6582 NewReno recovery adjustments. The empty string means
	// CCReno, which is what keeps the paper's scenarios byte-identical.
	CCReno = "reno"
	// CCCubic is RFC 8312 CUBIC: cubic window growth in time, a
	// TCP-friendly region, fast convergence, and a 0.7 multiplicative
	// decrease.
	CCCubic = "cubic"
)

// CongestionAlgos lists the registered algorithm names.
func CongestionAlgos() []string { return []string{CCReno, CCCubic} }

// ValidCongestion reports whether name selects a registered algorithm
// ("" selects the default).
func ValidCongestion(name string) bool {
	return name == "" || name == CCReno || name == CCCubic
}

// effectiveCC resolves a tuning name to the registered algorithm name
// it selects ("" means the default). The conn arena compares this
// against a pooled controller's Name() to decide reuse.
func effectiveCC(name string) string {
	if name == "" {
		return CCReno
	}
	return name
}

// CongestionController is the pluggable congestion-control interface.
// The connection drives it from its ACK/loss-event sites and reads
// back Cwnd (how many unacknowledged bytes may be outstanding) and
// Ssthresh (the slow-start/congestion-avoidance boundary). All byte
// quantities are bytes, all times stack-clock nanoseconds.
type CongestionController interface {
	// Name returns the registered algorithm name.
	Name() string
	// OnInit seeds the window state at connection creation. mss is the
	// segment payload size before option negotiation; unboundedSS
	// reports that slow start should probe past the unscaled 64 KiB
	// window regime (window scaling offered, RFC 5681 §3.1).
	OnInit(mss int, unboundedSS bool)
	// SetMSS updates the segment size after MSS option negotiation.
	SetMSS(mss int)
	// OnAck processes a cumulative ACK of dataAcked new bytes outside
	// recovery. now is the stack clock; srtt is the smoothed RTT (0
	// before the first sample).
	OnAck(dataAcked int, now, srtt int64)
	// OnDupAck processes a duplicate ACK during recovery without a SACK
	// scoreboard — the RFC 6582 window-inflation site. (With SACK the
	// pipe estimate replaces inflation and no event is reported.)
	OnDupAck()
	// OnEnterRecovery starts loss recovery off the third duplicate ACK.
	// pipe is the RFC 6675 in-network byte estimate at the loss event;
	// sackOK reports scoreboard-driven recovery (no inflation needed).
	OnEnterRecovery(pipe int, sackOK bool, now int64)
	// OnPartialAck processes a partial ACK during non-SACK recovery
	// (the RFC 6582 deflation site).
	OnPartialAck(dataAcked int)
	// OnExitRecovery processes the full ACK at or past the recovery
	// point.
	OnExitRecovery(now int64)
	// OnRTO processes a retransmission timeout. pipe is the RFC 6675
	// estimate at the timeout.
	OnRTO(pipe int, now int64)
	// Cwnd is the congestion window in bytes.
	Cwnd() int
	// Ssthresh is the slow-start threshold in bytes.
	Ssthresh() int
}

// newCongestionController builds the controller tuning selects.
func newCongestionController(name string) (CongestionController, error) {
	switch name {
	case "", CCReno:
		return &renoCC{}, nil
	case CCCubic:
		return &cubicCC{}, nil
	default:
		return nil, fmt.Errorf("fstack: unknown congestion-control algorithm %q (have %v)",
			name, CongestionAlgos())
	}
}

// --- Reno / NewReno (the extracted paper-stack default) ---

// renoCC is the pre-seam congestion control moved verbatim: RFC 5681
// slow start and AIMD with the RFC 6582 NewReno recovery adjustments.
// Every constant and every formula is the one tcpconn.go used inline,
// so the Scenario 1-6 goldens and Table II pin this implementation
// byte-identical to the pre-refactor stack.
type renoCC struct {
	mss      int
	cwnd     int
	ssthresh int
}

func (r *renoCC) Name() string { return CCReno }

func (r *renoCC) OnInit(mss int, unboundedSS bool) {
	r.mss = mss
	r.cwnd = 10 * mss
	r.ssthresh = 256 * 1024
	if unboundedSS {
		// A scaled window is bounded by the receive buffer, so slow
		// start must be allowed to probe past the unscaled 64 KiB
		// regime; modern stacks start ssthresh effectively unbounded
		// (RFC 5681 §3.1).
		r.ssthresh = 1 << 30
	}
}

func (r *renoCC) SetMSS(mss int) { r.mss = mss }

func (r *renoCC) OnAck(dataAcked int, now, srtt int64) {
	if r.cwnd < r.ssthresh {
		r.cwnd += min(dataAcked, r.mss) // slow start
	} else {
		r.cwnd += max(1, r.mss*r.mss/r.cwnd) // AIMD
	}
}

func (r *renoCC) OnDupAck() { r.cwnd += r.mss } // NewReno window inflation

func (r *renoCC) OnEnterRecovery(pipe int, sackOK bool, now int64) {
	r.ssthresh = max(pipe/2, 2*r.mss)
	if sackOK {
		r.cwnd = r.ssthresh
	} else {
		r.cwnd = r.ssthresh + 3*r.mss
	}
}

func (r *renoCC) OnPartialAck(dataAcked int) {
	// Partial ACK (RFC 6582): deflate instead of grow.
	r.cwnd = max(r.cwnd-dataAcked+r.mss, 2*r.mss)
}

func (r *renoCC) OnExitRecovery(now int64) { r.cwnd = r.ssthresh }

func (r *renoCC) OnRTO(pipe int, now int64) {
	r.ssthresh = max(pipe/2, 2*r.mss)
	r.cwnd = r.mss
}

func (r *renoCC) Cwnd() int     { return r.cwnd }
func (r *renoCC) Ssthresh() int { return r.ssthresh }

// --- CUBIC (RFC 8312) ---

// CUBIC constants (RFC 8312 §4.1, §4.5).
const (
	// cubicBeta is the multiplicative decrease factor: on a loss event
	// the window shrinks to 0.7·cwnd (vs Reno's 0.5).
	cubicBeta = 0.7
	// cubicC scales the cubic growth function (segments/second³).
	cubicC = 0.4
)

// cubicFriendlyGain is the per-RTT segment growth of the TCP-friendly
// estimate, 3·(1-β)/(1+β) (RFC 8312 §4.2) — the average AIMD rate of a
// Reno flow that backs off by β instead of ½.
var cubicFriendlyGain = 3 * (1 - cubicBeta) / (1 + cubicBeta)

// cubicCC implements RFC 8312. Window growth in congestion avoidance
// follows the cubic W(t) = C·(t-K)³ + W_max around the last loss
// event's window W_max, which makes the growth rate a function of
// *time since the loss* rather than of RTTs elapsed — the property
// that recovers the utilization Reno's one-MSS-per-RTT slope leaves on
// the table at 100 ms RTTs (Scenario 7). Window units inside are
// segments (as in the RFC); Cwnd converts to bytes.
type cubicCC struct {
	mss      int
	cwnd     int
	ssthresh int

	// wMax is the congestion window (segments) at the last loss event
	// — the plateau the cubic function saturates toward. wLastMax
	// remembers the previous plateau for fast convergence (§4.6).
	wMax     float64
	wLastMax float64
	// k is the period (seconds) the cubic function takes to grow back
	// to wMax: K = cbrt(wMax·(1-β)/C) (§4.1).
	k float64
	// epochStart is the stack-clock origin of the current congestion
	// avoidance epoch; 0 means the epoch starts at the next ACK.
	epochStart int64
}

func (c *cubicCC) Name() string { return CCCubic }

func (c *cubicCC) OnInit(mss int, unboundedSS bool) {
	// Full reset: OnInit is also the arena-reuse path, where the struct
	// carries a previous connection's epoch state.
	*c = cubicCC{mss: mss, cwnd: 10 * mss, ssthresh: 256 * 1024}
	if unboundedSS {
		c.ssthresh = 1 << 30
	}
}

func (c *cubicCC) SetMSS(mss int) { c.mss = mss }

func (c *cubicCC) OnAck(dataAcked int, now, srtt int64) {
	if c.cwnd < c.ssthresh {
		c.cwnd += min(dataAcked, c.mss) // standard slow start (§4.8)
		return
	}
	if dataAcked <= 0 {
		return
	}
	mss := float64(c.mss)
	cwndSeg := float64(c.cwnd) / mss
	if c.epochStart == 0 {
		c.epochStart = now
		if c.wMax < cwndSeg {
			// No loss yet (or the window already outgrew the old
			// plateau): the cubic origin is the current window, K = 0,
			// and growth starts in the convex region immediately
			// (§4.8) — a computed K here would freeze the window for
			// cbrt(wMax·0.3/C) seconds below a plateau it already
			// holds.
			c.wMax = cwndSeg
			c.k = 0
		} else {
			c.k = math.Cbrt(c.wMax * (1 - cubicBeta) / cubicC)
		}
	}
	t := float64(now-c.epochStart) / 1e9
	rtt := float64(srtt) / 1e9
	if rtt > 0 {
		// TCP-friendly region (§4.2): where an AIMD flow with β=0.7
		// would already be larger, track it instead of the flat early
		// cubic plateau. Tracking is paced per ACK like the cubic
		// region below — W_est is a function of wall time, so after an
		// ACK-free interval (a zero-window stall, an app-limited lull)
		// assigning it directly would burst the whole accrued estimate
		// into the queue in one window.
		wEst := c.wMax*cubicBeta + cubicFriendlyGain*(t/rtt)
		wCubic := c.wMax + cubicC*math.Pow(t-c.k, 3)
		if wCubic < wEst {
			if wEst > cwndSeg {
				c.cwnd += int(math.Min((wEst-cwndSeg)*mss, mss))
			}
			return
		}
	}
	// Concave/convex region (§4.3, §4.4): grow toward the window the
	// cubic function predicts one RTT ahead, spreading the increase
	// over the ACKs of this window; each ACK adds at most one MSS so
	// the convex exploration cannot burst line-rate spikes.
	target := c.wMax + cubicC*math.Pow(t+rtt-c.k, 3)
	if target > cwndSeg {
		inc := (target - cwndSeg) / cwndSeg * mss
		c.cwnd += int(math.Min(inc, mss))
	}
}

func (c *cubicCC) OnDupAck() { c.cwnd += c.mss } // NewReno inflation, as in renoCC

// onLoss is the shared §4.5/§4.6 congestion-event bookkeeping: record
// the plateau (shrunk further when plateaus are declining — fast
// convergence), reset the epoch, and cut ssthresh to β·cwnd.
func (c *cubicCC) onLoss() {
	cwndSeg := float64(c.cwnd) / float64(c.mss)
	c.epochStart = 0
	if cwndSeg < c.wLastMax {
		c.wLastMax = cwndSeg
		c.wMax = cwndSeg * (1 + cubicBeta) / 2 // fast convergence (§4.6)
	} else {
		c.wLastMax = cwndSeg
		c.wMax = cwndSeg
	}
	c.ssthresh = max(int(math.Round(float64(c.cwnd)*cubicBeta)), 2*c.mss)
}

func (c *cubicCC) OnEnterRecovery(pipe int, sackOK bool, now int64) {
	c.onLoss()
	c.cwnd = c.ssthresh
	if !sackOK {
		c.cwnd += 3 * c.mss // the three dup-ACKed segments left the net
	}
}

func (c *cubicCC) OnPartialAck(dataAcked int) {
	c.cwnd = max(c.cwnd-dataAcked+c.mss, 2*c.mss)
}

func (c *cubicCC) OnExitRecovery(now int64) { c.cwnd = c.ssthresh }

func (c *cubicCC) OnRTO(pipe int, now int64) {
	c.onLoss()
	c.cwnd = c.mss // RFC 5681 restart; slow start climbs back to ssthresh
}

func (c *cubicCC) Cwnd() int     { return c.cwnd }
func (c *cubicCC) Ssthresh() int { return c.ssthresh }
