package fstack

import (
	"math"
	"testing"
)

// TestRenoTraceMatchesPreRefactor replays a recorded ACK/loss event
// sequence against renoCC and checks every cwnd/ssthresh value against
// the numbers the pre-refactor inline arithmetic produced (each
// expectation below is hand-computed from the formulas that lived in
// tcpconn.go: init 10·MSS / 256 KiB, slow start += min(acked, MSS),
// AIMD += max(1, MSS²/cwnd), enterRecovery ssthresh = max(pipe/2,
// 2·MSS) with the +3·MSS NewReno inflation, partial-ACK deflation,
// exit cwnd = ssthresh, RTO collapse to one MSS). The seam must not
// change a single value, which is what keeps the Scenario 1-6 goldens
// and Table II byte-identical.
func TestRenoTraceMatchesPreRefactor(t *testing.T) {
	const mss = 1448
	cc := &renoCC{}
	steps := []struct {
		name        string
		event       func()
		cwnd, ssthr int
	}{
		{"init", func() { cc.OnInit(mss, false) }, 14480, 262144},
		{"slow start full ack", func() { cc.OnAck(1448, 1, 0) }, 15928, 262144},
		{"slow start capped at one MSS", func() { cc.OnAck(4000, 2, 0) }, 17376, 262144},
		{"slow start partial segment", func() { cc.OnAck(100, 3, 0) }, 17476, 262144},
		{"enter recovery (no SACK)", func() { cc.OnEnterRecovery(20000, false, 4) }, 14344, 10000},
		{"dup-ack inflation", func() { cc.OnDupAck() }, 15792, 10000},
		{"dup-ack inflation again", func() { cc.OnDupAck() }, 17240, 10000},
		{"partial-ack deflation", func() { cc.OnPartialAck(2896) }, 15792, 10000},
		{"full ack exits recovery", func() { cc.OnExitRecovery(5) }, 10000, 10000},
		{"AIMD at ssthresh", func() { cc.OnAck(1448, 6, 0) }, 10209, 10000},
		{"RTO collapse", func() { cc.OnRTO(5000, 7) }, 1448, 2896},
		{"slow start restart", func() { cc.OnAck(1448, 8, 0) }, 2896, 2896},
		{"AIMD after restart", func() { cc.OnAck(1448, 9, 0) }, 3620, 2896},
		{"enter recovery (SACK: no inflation)", func() { cc.OnEnterRecovery(7000, true, 10) }, 3500, 3500},
	}
	for _, s := range steps {
		s.event()
		if cc.Cwnd() != s.cwnd || cc.Ssthresh() != s.ssthr {
			t.Fatalf("%s: cwnd=%d ssthresh=%d, want %d/%d",
				s.name, cc.Cwnd(), cc.Ssthresh(), s.cwnd, s.ssthr)
		}
	}
}

// TestRenoUnboundedSlowStart pins the window-scaling init: ssthresh
// starts effectively unbounded (RFC 5681 §3.1) exactly as the old
// inline code did.
func TestRenoUnboundedSlowStart(t *testing.T) {
	cc := &renoCC{}
	cc.OnInit(1448, true)
	if cc.Ssthresh() != 1<<30 {
		t.Fatalf("unbounded ssthresh = %d, want %d", cc.Ssthresh(), 1<<30)
	}
}

const cubicMSS = 1448

// cubicInCA puts a cubicCC into congestion avoidance with the given
// window (segments) as its last loss plateau: a loss event at wSeg
// followed by the recovery exit.
func cubicInCA(wSeg int) *cubicCC {
	cc := &cubicCC{}
	cc.OnInit(cubicMSS, false)
	cc.cwnd = wSeg * cubicMSS
	cc.OnEnterRecovery(wSeg*cubicMSS, true, 0)
	cc.OnExitRecovery(0)
	return cc
}

// TestCubicK checks the epoch period against RFC 8312 §4.1's formula:
// K = cbrt(W_max·(1-β)/C). For W_max = 100 segments, K =
// cbrt(100·0.3/0.4) = cbrt(75) ≈ 4.217 s.
func TestCubicK(t *testing.T) {
	cc := cubicInCA(100)
	// First congestion-avoidance ACK opens the epoch and computes K.
	cc.OnAck(cubicMSS, 1e9, 100e6)
	want := math.Cbrt(100 * (1 - cubicBeta) / cubicC)
	if math.Abs(cc.k-want) > 1e-9 {
		t.Fatalf("K = %.6f s, want %.6f s", cc.k, want)
	}
	if math.Abs(want-4.2172) > 1e-3 {
		t.Fatalf("reference K moved: %.4f", want) // guards the test itself
	}
	// At the plateau (t = K) the cubic target is W_max again: after K
	// seconds the window must have grown back to ~W_max but not far
	// past it (concave approach, RFC 8312 §4.3).
	epoch := cc.epochStart
	cc.cwnd = 90 * cubicMSS // below the plateau, inside the concave region
	now := epoch + int64(cc.k*1e9)
	cc.OnAck(cubicMSS, now, 100e6)
	target := float64(cc.wMax + cubicC*math.Pow(cc.k+0.1-cc.k, 3)) // W_cubic(t+RTT) at t=K
	if got := float64(cc.cwnd) / cubicMSS; got > target+1 {
		t.Fatalf("window overshot the plateau: %.1f segs, cubic target %.1f", got, target)
	}
}

// TestCubicTCPFriendlyRegion checks the §4.2 crossover: with a small
// W_max the early cubic curve sits below the AIMD estimate W_est(t) =
// W_max·β + 3(1-β)/(1+β)·t/RTT, and cwnd must track W_est instead of
// the flat cubic plateau; with a large W_max the cubic curve is above
// W_est and growth follows the cubic target.
func TestCubicTCPFriendlyRegion(t *testing.T) {
	const rttNS = 100e6
	// Small plateau: W_max = 10. At t = 1 s, W_cubic ≈ 9.65 while
	// W_est = 7 + 0.529·10 ≈ 12.3 — friendly region, but the tracking
	// is paced: one ACK moves cwnd at most one MSS toward W_est, so an
	// ACK-free second cannot burst the accrued estimate at once.
	cc := cubicInCA(10)
	cc.OnAck(cubicMSS, 1e9, rttNS) // open the epoch
	before := cc.cwnd
	cc.OnAck(cubicMSS, 2e9, rttNS) // t = 1 s into it, far below W_est
	if inc := cc.cwnd - before; inc != cubicMSS {
		t.Fatalf("friendly region: per-ACK increment %d, want one MSS", inc)
	}
	// Repeated ACKs converge on W_est and stop there.
	wantEst := 10*cubicBeta + cubicFriendlyGain*(1.0/0.1)
	for i := 0; i < 20; i++ {
		cc.OnAck(cubicMSS, 2e9, rttNS)
	}
	got := float64(cc.cwnd) / cubicMSS
	if got < wantEst-0.1 || got > wantEst+1 {
		t.Fatalf("friendly region: cwnd %.2f segs did not converge on W_est %.2f", got, wantEst)
	}

	// Large plateau: W_max = 1000. At t = 1 s, W_cubic ≈ 1000 -
	// 0.4·(K-1)³ ≈ 788 while W_est ≈ 705 — cubic region, so growth is
	// the bounded per-ACK climb toward the target, not a jump to W_est.
	cc = cubicInCA(1000)
	cc.OnAck(cubicMSS, 1e9, rttNS)
	before = cc.cwnd
	cc.OnAck(cubicMSS, 2e9, rttNS)
	inc := cc.cwnd - before
	if inc <= 0 || inc > cubicMSS {
		t.Fatalf("cubic region: per-ACK increment %d outside (0, MSS]", inc)
	}
}

// TestCubicFastConvergence checks §4.6: when loss events arrive with a
// declining window (a competitor took bandwidth), the recorded plateau
// is shrunk below the current window — W_max = cwnd·(1+β)/2 — so the
// flow releases its share faster. A loss at a grown window records the
// plateau verbatim instead.
func TestCubicFastConvergence(t *testing.T) {
	cc := &cubicCC{}
	cc.OnInit(cubicMSS, false)
	cc.cwnd = 1000 * cubicMSS
	cc.OnEnterRecovery(0, true, 0)
	if cc.wMax != 1000 || cc.wLastMax != 1000 {
		t.Fatalf("first loss: wMax=%.0f wLastMax=%.0f, want 1000/1000", cc.wMax, cc.wLastMax)
	}
	if cc.Ssthresh() != int(1000*cubicMSS*cubicBeta) {
		t.Fatalf("ssthresh = %d, want 0.7 cwnd = %d", cc.Ssthresh(), int(1000*cubicMSS*cubicBeta))
	}
	// Second loss below the last plateau: fast convergence shrinks.
	cc.cwnd = 700 * cubicMSS
	cc.OnEnterRecovery(0, true, 1)
	wantWMax := 700 * (1 + cubicBeta) / 2
	if math.Abs(cc.wMax-wantWMax) > 1e-9 || cc.wLastMax != 700 {
		t.Fatalf("declining loss: wMax=%.2f wLastMax=%.0f, want %.2f/700", cc.wMax, cc.wLastMax, wantWMax)
	}
	// A loss at a window that grew past the plateau records it as-is.
	cc.cwnd = 900 * cubicMSS
	cc.OnEnterRecovery(0, true, 2)
	if cc.wMax != 900 || cc.wLastMax != 900 {
		t.Fatalf("grown loss: wMax=%.0f wLastMax=%.0f, want 900/900", cc.wMax, cc.wLastMax)
	}
}

// TestCubicRTOCollapse pins the timeout path: window to one MSS,
// ssthresh to β·cwnd, epoch reset so the next avoidance ACK restarts
// the clock.
func TestCubicRTOCollapse(t *testing.T) {
	cc := cubicInCA(100)
	cc.OnAck(cubicMSS, 1e9, 100e6) // open an epoch
	if cc.epochStart == 0 {
		t.Fatal("epoch never opened")
	}
	cc.cwnd = 80 * cubicMSS
	cc.OnRTO(0, 2e9)
	if cc.Cwnd() != cubicMSS {
		t.Fatalf("post-RTO cwnd = %d, want one MSS", cc.Cwnd())
	}
	if cc.Ssthresh() != int(80*cubicMSS*cubicBeta) {
		t.Fatalf("post-RTO ssthresh = %d, want %d", cc.Ssthresh(), int(80*cubicMSS*cubicBeta))
	}
	if cc.epochStart != 0 {
		t.Fatal("epoch not reset by the RTO")
	}
}

// TestCubicConvexStartWithoutLoss pins §4.8's no-loss case: when
// congestion avoidance begins by crossing ssthresh (no congestion
// event yet), the cubic origin is the current window with K = 0, so
// growth starts in the convex region immediately — a computed K would
// freeze the window for seconds below a plateau it already holds.
func TestCubicConvexStartWithoutLoss(t *testing.T) {
	cc := &cubicCC{}
	cc.OnInit(cubicMSS, false) // ssthresh 256 KiB, never any loss
	cc.cwnd = cc.ssthresh      // slow start just crossed into avoidance
	cc.OnAck(cubicMSS, 1e9, 100e6)
	if cc.k != 0 {
		t.Fatalf("no-loss epoch computed K = %.3f s, want 0", cc.k)
	}
	before := cc.cwnd
	cc.OnAck(cubicMSS, 2e9, 100e6) // one second into the epoch
	if cc.cwnd <= before {
		t.Fatalf("window frozen after a loss-free avoidance entry (cwnd %d)", cc.cwnd)
	}
}

// TestCongestionControllerRegistry pins name resolution: the empty
// string and "reno" select the extracted default, "cubic" selects RFC
// 8312, anything else is an error surfaced before a connection exists.
func TestCongestionControllerRegistry(t *testing.T) {
	for _, name := range []string{"", CCReno} {
		cc, err := newCongestionController(name)
		if err != nil || cc.Name() != CCReno {
			t.Fatalf("%q: got %v, %v", name, cc, err)
		}
	}
	cc, err := newCongestionController(CCCubic)
	if err != nil || cc.Name() != CCCubic {
		t.Fatalf("cubic: got %v, %v", cc, err)
	}
	if _, err := newCongestionController("vegas"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if ValidCongestion("vegas") || !ValidCongestion("") || !ValidCongestion(CCCubic) {
		t.Fatal("ValidCongestion disagrees with the registry")
	}
}
