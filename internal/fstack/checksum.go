package fstack

// Checksum computes the RFC 1071 internet checksum of data.
func Checksum(data []byte) uint16 {
	return finishChecksum(sumBytes(0, data))
}

// sumBytes accumulates 16-bit big-endian words into a running sum.
func sumBytes(sum uint32, data []byte) uint32 {
	n := len(data) &^ 1
	for i := 0; i < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	return sum
}

// finishChecksum folds the carries and complements.
func finishChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum starts a TCP/UDP checksum with the IPv4 pseudo header.
func pseudoHeaderSum(src, dst IPv4Addr, proto uint8, length int) uint32 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// transportChecksum computes the TCP/UDP checksum over header+payload.
func transportChecksum(src, dst IPv4Addr, proto uint8, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	return finishChecksum(sumBytes(sum, segment))
}
