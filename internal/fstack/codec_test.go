package fstack

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2, checksum 220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Fatalf("checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	if got := Checksum([]byte{0xFF}); got != ^uint16(0xFF00) {
		t.Fatalf("odd checksum = %#04x", got)
	}
}

func TestChecksumSelfVerifies(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) < 2 || len(data)%2 == 1 {
			return true // the verify-to-zero property needs 16-bit alignment
		}
		cs := Checksum(data)
		// Appending the checksum makes the total sum verify to zero.
		withCS := append(append([]byte{}, data...), byte(cs>>8), byte(cs))
		return Checksum(withCS) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEthHeaderRoundTrip(t *testing.T) {
	h := EthHeader{
		Dst:  MACAddr{1, 2, 3, 4, 5, 6},
		Src:  MACAddr{7, 8, 9, 10, 11, 12},
		Type: EtherTypeIPv4,
	}
	b := make([]byte, EthHeaderLen)
	PutEthHeader(b, h)
	got, err := ParseEthHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
	if _, err := ParseEthHeader(b[:10]); err == nil {
		t.Fatal("short frame must fail")
	}
}

func TestMACString(t *testing.T) {
	m := MACAddr{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Fatalf("MAC string = %s", m)
	}
	if IP4(10, 0, 0, 1).String() != "10.0.0.1" {
		t.Fatalf("IP string = %s", IP4(10, 0, 0, 1))
	}
}

func TestIPv4HeaderRoundTrip(t *testing.T) {
	h := IPv4Header{
		TOS: 0, TotalLen: 120, ID: 42, Flags: flagDontFragment,
		TTL: 64, Proto: ProtoTCP,
		Src: IP4(10, 0, 0, 1), Dst: IP4(10, 0, 0, 2),
	}
	b := make([]byte, 120)
	PutIPv4Header(b, h)
	got, ihl, err := ParseIPv4Header(b)
	if err != nil {
		t.Fatal(err)
	}
	if ihl != IPv4HeaderLen {
		t.Fatalf("ihl = %d", ihl)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.Proto != h.Proto || got.TotalLen != h.TotalLen {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
}

func TestIPv4HeaderCorruptionDetected(t *testing.T) {
	h := IPv4Header{TotalLen: 60, TTL: 64, Proto: ProtoUDP, Src: IP4(1, 2, 3, 4), Dst: IP4(5, 6, 7, 8)}
	b := make([]byte, 60)
	PutIPv4Header(b, h)
	b[9]++ // flip the protocol
	if _, _, err := ParseIPv4Header(b); err == nil {
		t.Fatal("corrupted header must fail the checksum")
	}
}

func TestIPv4RejectsFragments(t *testing.T) {
	h := IPv4Header{TotalLen: 20, TTL: 64, Proto: ProtoUDP, FragOff: 8, Src: IP4(1, 2, 3, 4), Dst: IP4(5, 6, 7, 8)}
	b := make([]byte, 20)
	PutIPv4Header(b, h)
	if _, _, err := ParseIPv4Header(b); err == nil {
		t.Fatal("fragments are unsupported and must be rejected")
	}
}

func TestARPRoundTrip(t *testing.T) {
	p := ARPPacket{
		Op:        ARPRequest,
		SenderMAC: MACAddr{1, 2, 3, 4, 5, 6},
		SenderIP:  IP4(10, 0, 0, 1),
		TargetIP:  IP4(10, 0, 0, 2),
	}
	b := make([]byte, ARPPacketLen)
	PutARPPacket(b, p)
	got, err := ParseARPPacket(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip: %+v != %+v", got, p)
	}
}

func TestARPCache(t *testing.T) {
	c := newARPCache()
	ip := IP4(10, 0, 0, 9)
	if _, ok := c.lookup(ip, 0); ok {
		t.Fatal("empty cache hit")
	}
	c.park(ip, []byte{1, 2, 3}, EtherTypeIPv4)
	c.park(ip, []byte{4, 5, 6}, EtherTypeIPv4)
	mac := MACAddr{9, 9, 9, 9, 9, 9}
	pend := c.insert(ip, mac, 1000)
	if len(pend) != 2 || !bytes.Equal(pend[0].payload, []byte{1, 2, 3}) ||
		!bytes.Equal(pend[1].payload, []byte{4, 5, 6}) {
		t.Fatal("pending packets lost")
	}
	if got := c.insert(ip, mac, 1000); len(got) != 0 {
		t.Fatal("pending queue not cleared")
	}
	if got, ok := c.lookup(ip, 2000); !ok || got != mac {
		t.Fatal("binding missing")
	}
	// Expiry.
	if _, ok := c.lookup(ip, 1000+arpCacheTTL+1); ok {
		t.Fatal("binding survived TTL")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	src, dst := IP4(10, 0, 0, 1), IP4(10, 0, 0, 2)
	payload := []byte("telemetry")
	b := make([]byte, UDPHeaderLen+len(payload))
	copy(b[UDPHeaderLen:], payload)
	PutUDPHeader(b, UDPHeader{SrcPort: 1000, DstPort: 2000, Length: uint16(len(b))}, src, dst)
	h, err := ParseUDPHeader(b, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if h.SrcPort != 1000 || h.DstPort != 2000 || int(h.Length) != len(b) {
		t.Fatalf("header: %+v", h)
	}
	b[UDPHeaderLen]++ // corrupt payload
	if _, err := ParseUDPHeader(b, src, dst); err == nil {
		t.Fatal("corruption must fail the checksum")
	}
}

func TestICMPEchoRoundTrip(t *testing.T) {
	b := make([]byte, ICMPHeaderLen+8)
	copy(b[ICMPHeaderLen:], "pingdata")
	PutICMPEcho(b, ICMPEcho{Type: ICMPEchoRequest, ID: 7, Seq: 3})
	h, err := ParseICMPEcho(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != ICMPEchoRequest || h.ID != 7 || h.Seq != 3 {
		t.Fatalf("header: %+v", h)
	}
}

func TestTCPHeaderRoundTrip(t *testing.T) {
	src, dst := IP4(10, 0, 0, 1), IP4(10, 0, 0, 2)
	payload := []byte("segment payload")
	h := TCPHeader{
		SrcPort: 5001, DstPort: 46000,
		Seq: 0xDEADBEEF, Ack: 0x01020304,
		Flags: TCPAck | TCPPsh, Window: 65535,
		MSS: MSSDefault, HasTS: true, TSVal: 123456, TSEcr: 654321,
	}
	b := make([]byte, h.encodedLen()+len(payload))
	copy(b[h.encodedLen():], payload)
	hl := PutTCPHeader(b, h, src, dst, len(b))
	if hl != TCPHeaderLen+4+tsOptionLen {
		t.Fatalf("header length %d", hl)
	}
	got, gotHL, err := ParseTCPHeader(b, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if gotHL != hl {
		t.Fatalf("parsed hl %d != %d", gotHL, hl)
	}
	if got.Seq != h.Seq || got.Ack != h.Ack || got.Flags != h.Flags ||
		got.MSS != h.MSS || !got.HasTS || got.TSVal != h.TSVal || got.TSEcr != h.TSEcr {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
	if !bytes.Equal(b[gotHL:], payload) {
		t.Fatal("payload moved")
	}
}

func TestTCPChecksumDetectsCorruption(t *testing.T) {
	src, dst := IP4(10, 0, 0, 1), IP4(10, 0, 0, 2)
	h := TCPHeader{SrcPort: 1, DstPort: 2, HasTS: true}
	b := make([]byte, h.encodedLen()+4)
	PutTCPHeader(b, h, src, dst, len(b))
	b[len(b)-1] ^= 0x80
	if _, _, err := ParseTCPHeader(b, src, dst); err == nil {
		t.Fatal("corruption must fail the checksum")
	}
	// Also: wrong pseudo-header (spoofed address) fails.
	b[len(b)-1] ^= 0x80
	if _, _, err := ParseTCPHeader(b, IP4(9, 9, 9, 9), dst); err == nil {
		t.Fatal("pseudo-header mismatch must fail")
	}
}

func TestTCPHeaderQuickRoundTrip(t *testing.T) {
	src, dst := IP4(10, 0, 0, 1), IP4(10, 0, 0, 2)
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, wnd uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		h := TCPHeader{
			SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: flags &^ 0xC0, Window: wnd, HasTS: true,
		}
		b := make([]byte, h.encodedLen()+len(payload))
		copy(b[h.encodedLen():], payload)
		PutTCPHeader(b, h, src, dst, len(b))
		got, hl, err := ParseTCPHeader(b, src, dst)
		if err != nil {
			return false
		}
		return got.SrcPort == sp && got.DstPort == dp && got.Seq == seq &&
			got.Ack == ack && got.Window == wnd && hl == h.encodedLen()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqArithmetic(t *testing.T) {
	cases := []struct {
		a, b uint32
		lt   bool
	}{
		{0, 1, true},
		{1, 0, false},
		{0xFFFFFFFF, 0, true}, // wraparound
		{0, 0xFFFFFFFF, false},
		{0x7FFFFFFF, 0x80000000, true},
	}
	for _, tc := range cases {
		if seqLT(tc.a, tc.b) != tc.lt {
			t.Errorf("seqLT(%#x,%#x) != %v", tc.a, tc.b, tc.lt)
		}
		if seqGE(tc.a, tc.b) == tc.lt {
			t.Errorf("seqGE(%#x,%#x) == %v", tc.a, tc.b, tc.lt)
		}
	}
	if seqMax(5, 3) != 5 || seqMax(3, 5) != 5 {
		t.Fatal("seqMax")
	}
	if !seqLE(7, 7) || !seqGE(7, 7) || seqGT(7, 7) {
		t.Fatal("equality comparisons")
	}
}

func TestMSSConstantsMatchGigabitGoodput(t *testing.T) {
	// The whole Table II calibration hangs on these: 1448 payload bytes
	// per 1538 wire bytes = 941.48 Mbit/s at line rate.
	if MSSDefault != 1460 || MaxSegData != 1448 {
		t.Fatalf("MSS constants: %d/%d", MSSDefault, MaxSegData)
	}
	frame := EthHeaderLen + IPv4HeaderLen + TCPHeaderLen + tsOptionLen + MaxSegData
	if frame != 1514 {
		t.Fatalf("full frame = %d, want 1514", frame)
	}
	goodput := 1000.0 * float64(MaxSegData) / float64(frame+24)
	if goodput < 941 || goodput > 942 {
		t.Fatalf("theoretical goodput %.2f, want ≈941.5", goodput)
	}
}
