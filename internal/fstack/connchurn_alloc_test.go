//go:build !race

package fstack

import "testing"

// TestConnChurnZeroAllocs pins the conn-arena hard constraint: at
// steady state a full connection lifecycle — TIME_WAIT tuple reuse,
// SYN-cache handshake, graduation, accept, both-sides close back into
// the arena — must not allocate. A regression here means some part of
// setup or teardown (conn, socket, buffers, wheel entries, syncache
// entries) fell off its free list.
//
// Skipped under the race detector, whose instrumentation allocates.
func TestConnChurnZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	res := testing.Benchmark(BenchmarkConnChurn)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("connection churn allocates %d allocs/op at steady state, want 0", a)
	}
}
