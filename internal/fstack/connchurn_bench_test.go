package fstack

import (
	"testing"

	"repro/internal/hostos"
)

// BenchmarkConnChurn measures the full connection lifecycle at steady
// state: connect over a tuple whose previous incarnation sits in
// TIME_WAIT (exercising the reuse path), SYN-cache handshake,
// graduation onto the accept queue, accept, and a both-sides close
// back into the conn/socket arena. The allocs/op figure is what the
// arena exists for: after warm-up, setup + teardown must not allocate.
//
// The body deliberately avoids closures and helpers that build func
// values per cycle — they would count as allocations of the harness,
// not the stack.
func BenchmarkConnChurn(b *testing.B) {
	e := newEnv(b, false)
	e.stkA.SetTCPTuning(TCPTuning{SndBufBytes: 16384, RcvBufBytes: 16384})
	e.stkB.SetTCPTuning(TCPTuning{SndBufBytes: 16384, RcvBufBytes: 16384})
	lfd, errno := e.stkB.Socket(SockStream)
	if errno != hostos.OK {
		b.Fatal(errno)
	}
	e.stkB.Bind(lfd, IPv4Addr{}, 9100)
	e.stkB.Listen(lfd, 8)

	// Arena, descriptor maps, rings and ARP state reach steady state
	// during warm-up; from then on every cycle recycles what the
	// previous one released.
	for i := 0; i < 32; i++ {
		churnCycle(b, e, lfd)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		churnCycle(b, e, lfd)
	}
}

// churnCycle runs one connect/accept/close/close round over a fixed
// 4-tuple (source port 25000), leaving the client's conn in TIME_WAIT
// for the next cycle to reuse.
func churnCycle(b *testing.B, e *testEnv, lfd int) {
	cfd, errno := e.stkA.Socket(SockStream)
	if errno != hostos.OK {
		b.Fatal(errno)
	}
	if errno := e.stkA.Bind(cfd, IPv4Addr{}, 25000); errno != hostos.OK {
		b.Fatal(errno)
	}
	if errno := e.stkA.Connect(cfd, IP4(10, 0, 0, 2), 9100); errno != hostos.EINPROGRESS {
		b.Fatal(errno)
	}
	afd := -1
	for tick := 0; tick < 8000 && afd < 0; tick++ {
		e.tick()
		if fd, _, _, errno := e.stkB.Accept(lfd); errno == hostos.OK {
			afd = fd
		}
	}
	if afd < 0 {
		b.Fatal("handshake never completed")
	}
	for tick := 0; e.stkA.ConnState(cfd) != "ESTABLISHED"; tick++ {
		if tick >= 8000 {
			b.Fatal("client never established")
		}
		e.tick()
	}
	e.stkA.Close(cfd)
	for tick := 0; e.stkB.ConnState(afd) != "CLOSE_WAIT"; tick++ {
		if tick >= 8000 {
			b.Fatal("server never saw the FIN")
		}
		e.tick()
	}
	e.stkB.Close(afd)
	// Steady state: the server side fully recycled, the client's conn
	// alone in TIME_WAIT.
	for tick := 0; e.stkB.ConnCount() != 0 || e.stkA.ConnCount() != 1; tick++ {
		if tick >= 8000 {
			b.Fatal("teardown never drained")
		}
		e.tick()
	}
}
