// Package connscale holds the connection-scale machinery of the stack:
// a hierarchical timing wheel (O(1) timer arm/disarm, next-deadline
// queries that never scan idle connections) and the SYN-cache entry
// pool. It is deliberately free of TCP knowledge — fstack owns the
// protocol; this package owns the data structures that keep 100k
// connections cheap.
package connscale

import "math"

// Wheel geometry. Three levels of 256 slots each; with the default
// tick of 1<<16 ns (~65.5 µs) the levels span ~16.8 ms, ~4.3 s and
// ~1100 s — delayed ACKs and RTO floors land in level 0, initial RTOs
// and TIME_WAIT in level 1, and only pathological backoffs reach
// level 2. Deadlines past the top level are parked in its last slot
// and re-sorted as the cursor approaches (cascading keeps firing
// exact regardless).
const (
	slotBits  = 8
	numSlots  = 1 << slotBits
	slotMask  = numSlots - 1
	numLevels = 3
)

// DefaultTickShift is the tick granularity fstack uses: 1<<16 ns.
const DefaultTickShift = 16

// Handle names one inserted entry, for O(1) Remove. Handles are
// recycled after the entry fires or is removed; a held handle is valid
// exactly until then.
type Handle int32

// None is the null Handle.
const None Handle = -1

// item is one timer entry: slice-backed so the wheel allocates only
// when it grows past its high-water mark, never in steady state.
// prev/next link the entry into its slot's doubly-linked list by
// index; slot is the flattened level*numSlots+slot it lives in, or -1
// when the item is on the free list.
type item[T any] struct {
	deadline   int64
	value      T
	prev, next Handle
	slot       int32
}

// Wheel is a hierarchical timing wheel over an int64 nanosecond clock.
// Insert and Remove are O(1); Advance is bounded by the slots crossed
// (at most 256 per level) plus the entries actually due; NextDeadline
// is O(1) while the cached minimum holds and recomputes in at most
// numLevels*numSlots slot probes when it does not. Firing is exact:
// entries carry their precise deadline, and Advance only fires those
// with deadline <= now — the tick merely buckets them.
//
// Not safe for concurrent use; fstack drives it under the stack mutex.
type Wheel[T any] struct {
	shift   uint
	start   int64
	curTick int64

	slots [numLevels * numSlots]Handle
	items []item[T]
	free  Handle

	size      int
	levelSize [numLevels]int

	// minCache is the exact earliest deadline while minValid; Insert
	// keeps it current, and removing or firing an entry at (or below)
	// it invalidates for a lazy recompute.
	minCache int64
	minValid bool
}

// New builds a wheel whose tick is 1<<tickShift nanoseconds, with the
// tick origin at startNS (deadlines before it are treated as due
// immediately).
func New[T any](startNS int64, tickShift uint) *Wheel[T] {
	w := &Wheel[T]{shift: tickShift, start: startNS, free: None}
	for i := range w.slots {
		w.slots[i] = None
	}
	return w
}

// Len returns the number of live entries.
func (w *Wheel[T]) Len() int { return w.size }

// tickOf maps an instant to its tick index (clamped to the cursor so
// past deadlines land in the current slot and fire on the next
// Advance).
func (w *Wheel[T]) tickOf(at int64) int64 {
	t := (at - w.start) >> w.shift
	if t < w.curTick {
		t = w.curTick
	}
	return t
}

// Insert registers a deadline and returns its handle.
func (w *Wheel[T]) Insert(deadline int64, v T) Handle {
	h := w.alloc()
	it := &w.items[h]
	it.deadline = deadline
	it.value = v
	w.place(h, deadline)
	w.size++
	if w.minValid && deadline < w.minCache {
		w.minCache = deadline
	}
	return h
}

// Remove unregisters a live entry. The handle must be one returned by
// Insert that has neither fired nor been removed.
func (w *Wheel[T]) Remove(h Handle) {
	it := &w.items[h]
	if it.slot < 0 {
		panic("connscale: Remove of dead timer handle")
	}
	w.unlink(h)
	w.dropMin(it.deadline)
	w.size--
	w.levelSize[it.slot/numSlots]--
	w.freeItem(h)
}

// Advance moves the wheel to now, calling fire for every entry whose
// deadline has arrived (deadline <= now). Firing order is
// deterministic (slot order, then reverse insertion order within a
// slot). The callback may Insert new entries — they are not visited
// by this Advance — but must not Remove other entries; the common
// pattern is a callback that only records the fired value.
func (w *Wheel[T]) Advance(now int64, fire func(T)) {
	old := w.curTick
	t := (now - w.start) >> w.shift
	if t < old {
		t = old
	}
	w.curTick = t
	if w.size == 0 {
		return
	}
	// Level 0 first, before cascades repopulate its slots: the slot
	// the cursor left (it can still hold mid-tick deadlines from the
	// previous visit), the crossed slots, and the new current slot,
	// each entry checked against its exact deadline — a deadline later
	// within the current tick stays parked until a later Advance
	// passes it.
	if n := t - old; n >= numSlots {
		for s := 0; s < numSlots; s++ {
			w.expire(s, now, fire)
		}
	} else {
		for i := int64(0); i <= n; i++ {
			w.expire(int((old+i)&slotMask), now, fire)
		}
	}
	// Upper levels: every slot the level cursor crossed is emptied and
	// its entries either fire (due) or cascade down to their exact
	// lower-level position relative to the new cursor.
	for k := 1; k < numLevels; k++ {
		if w.levelSize[k] == 0 {
			continue
		}
		shift := uint(slotBits * k)
		cOld, cNew := old>>shift, t>>shift
		if n := cNew - cOld; n >= numSlots {
			for s := 0; s < numSlots; s++ {
				w.cascade(k, s, now, fire)
			}
		} else {
			for i := int64(1); i <= n; i++ {
				w.cascade(k, int((cOld+i)&slotMask), now, fire)
			}
		}
	}
}

// NextDeadline returns the exact earliest deadline held, or
// math.MaxInt64 when the wheel is empty.
func (w *Wheel[T]) NextDeadline() int64 {
	if w.size == 0 {
		return math.MaxInt64
	}
	if !w.minValid {
		w.recomputeMin()
	}
	return w.minCache
}

// place buckets a live item by its deadline relative to the current
// cursor: the first level whose 256-slot window reaches the deadline's
// tick, with the top level's last slot catching everything farther.
func (w *Wheel[T]) place(h Handle, deadline int64) {
	t := w.tickOf(deadline)
	for k := 0; k < numLevels; k++ {
		shift := uint(slotBits * k)
		cursor := w.curTick >> shift
		v := t >> shift
		if v < cursor+numSlots || k == numLevels-1 {
			if v >= cursor+numSlots {
				v = cursor + numSlots - 1
			}
			w.push(k*numSlots+int(v&slotMask), h)
			w.levelSize[k]++
			return
		}
	}
}

// expire fires the due entries of one level-0 slot, leaving not-yet-due
// entries (same tick, later instant) in place.
func (w *Wheel[T]) expire(slot int, now int64, fire func(T)) {
	h := w.slots[slot]
	for h != None {
		it := &w.items[h]
		next := it.next
		if it.deadline <= now {
			v := it.value
			w.unlink(h)
			w.dropMin(it.deadline)
			w.size--
			w.levelSize[0]--
			w.freeItem(h)
			fire(v)
		}
		h = next
	}
}

// cascade empties one upper-level slot: due entries fire, the rest are
// re-placed relative to the new cursor (dropping to a lower level).
func (w *Wheel[T]) cascade(level, slot int, now int64, fire func(T)) {
	idx := level*numSlots + slot
	h := w.slots[idx]
	w.slots[idx] = None
	for h != None {
		it := &w.items[h]
		next := it.next
		w.levelSize[level]--
		if it.deadline <= now {
			v := it.value
			w.dropMin(it.deadline)
			w.size--
			w.freeItem(h)
			fire(v)
		} else {
			it.prev, it.next = None, None
			w.place(h, it.deadline)
		}
		h = next
	}
}

// recomputeMin rebuilds the cached minimum. Within one level, slots
// scanned outward from the cursor hold strictly increasing ticks, so
// the first non-empty slot contains that level's minimum; levels
// overlap in time near their boundaries, so the global minimum is the
// min across the per-level minima.
func (w *Wheel[T]) recomputeMin() {
	m := int64(math.MaxInt64)
	for k := 0; k < numLevels; k++ {
		if w.levelSize[k] == 0 {
			continue
		}
		shift := uint(slotBits * k)
		cursor := w.curTick >> shift
		for i := int64(0); i < numSlots; i++ {
			idx := k*numSlots + int((cursor+i)&slotMask)
			h := w.slots[idx]
			if h == None {
				continue
			}
			for ; h != None; h = w.items[h].next {
				if d := w.items[h].deadline; d < m {
					m = d
				}
			}
			break
		}
	}
	w.minCache = m
	w.minValid = true
}

// dropMin invalidates the cached minimum when an entry at (or below)
// it leaves the wheel.
func (w *Wheel[T]) dropMin(deadline int64) {
	if w.minValid && deadline <= w.minCache {
		w.minValid = false
	}
}

// alloc takes an item off the free list, growing the backing slice
// only past its high-water mark.
func (w *Wheel[T]) alloc() Handle {
	if w.free != None {
		h := w.free
		w.free = w.items[h].next
		w.items[h].prev, w.items[h].next = None, None
		return h
	}
	w.items = append(w.items, item[T]{prev: None, next: None, slot: -1})
	return Handle(len(w.items) - 1)
}

// freeItem returns an item to the free list, dropping its value so a
// pooled pointer cannot pin the referent.
func (w *Wheel[T]) freeItem(h Handle) {
	it := &w.items[h]
	var zero T
	it.value = zero
	it.slot = -1
	it.prev = None
	it.next = w.free
	w.free = h
}

// push links an item at the head of a slot list.
func (w *Wheel[T]) push(idx int, h Handle) {
	it := &w.items[h]
	it.prev = None
	it.next = w.slots[idx]
	if it.next != None {
		w.items[it.next].prev = h
	}
	w.slots[idx] = h
	it.slot = int32(idx)
}

// unlink detaches an item from its slot list.
func (w *Wheel[T]) unlink(h Handle) {
	it := &w.items[h]
	if it.prev != None {
		w.items[it.prev].next = it.next
	} else {
		w.slots[it.slot] = it.next
	}
	if it.next != None {
		w.items[it.next].prev = it.prev
	}
}
