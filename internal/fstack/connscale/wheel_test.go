package connscale

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// collect drains due entries at now into a slice.
func collect(w *Wheel[int], now int64) []int {
	var got []int
	w.Advance(now, func(v int) { got = append(got, v) })
	return got
}

func TestWheelFiresExactly(t *testing.T) {
	w := New[int](0, DefaultTickShift)
	w.Insert(1_000_000, 1) // 1 ms: level 0
	w.Insert(100_000_000, 2)
	w.Insert(100_000_000, 3) // same instant
	w.Insert(5_000_000_000, 4)

	if d := w.NextDeadline(); d != 1_000_000 {
		t.Fatalf("NextDeadline = %d, want 1e6", d)
	}
	if got := collect(w, 999_999); len(got) != 0 {
		t.Fatalf("fired %v one ns early", got)
	}
	if got := collect(w, 1_000_000); len(got) != 1 || got[0] != 1 {
		t.Fatalf("at deadline fired %v, want [1]", got)
	}
	if d := w.NextDeadline(); d != 100_000_000 {
		t.Fatalf("NextDeadline after first fire = %d, want 1e8", d)
	}
	got := collect(w, 200_000_000) // leap across many level-0 revolutions
	sort.Ints(got)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("leap fired %v, want [2 3]", got)
	}
	if got := collect(w, 5_000_000_001); len(got) != 1 || got[0] != 4 {
		t.Fatalf("level-2 entry fired %v, want [4]", got)
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d after all fired", w.Len())
	}
	if d := w.NextDeadline(); d != math.MaxInt64 {
		t.Fatalf("empty NextDeadline = %d", d)
	}
}

func TestWheelRemove(t *testing.T) {
	w := New[int](0, DefaultTickShift)
	h1 := w.Insert(1_000_000, 1)
	w.Insert(2_000_000, 2)
	w.Remove(h1)
	if d := w.NextDeadline(); d != 2_000_000 {
		t.Fatalf("NextDeadline after Remove = %d, want 2e6", d)
	}
	if got := collect(w, 3_000_000); len(got) != 1 || got[0] != 2 {
		t.Fatalf("fired %v, want [2]", got)
	}
}

func TestWheelPastDeadline(t *testing.T) {
	w := New[int](0, DefaultTickShift)
	w.Advance(1_000_000_000, func(int) {})
	w.Insert(5, 1) // long past: due immediately
	if d := w.NextDeadline(); d != 5 {
		t.Fatalf("NextDeadline = %d, want the past instant 5", d)
	}
	if got := collect(w, 1_000_000_000); len(got) != 1 || got[0] != 1 {
		t.Fatalf("past deadline fired %v, want [1]", got)
	}
}

func TestWheelFarDeadlineClamp(t *testing.T) {
	w := New[int](0, DefaultTickShift)
	far := int64(1) << 62 // beyond the top level's span
	w.Insert(far, 1)
	if d := w.NextDeadline(); d != far {
		t.Fatalf("NextDeadline = %d, want %d", d, far)
	}
	if got := collect(w, far-1); len(got) != 0 {
		t.Fatalf("clamped entry fired early: %v", got)
	}
	if got := collect(w, far); len(got) != 1 {
		t.Fatalf("clamped entry fired %v, want [1]", got)
	}
}

// TestWheelRandomized cross-checks the wheel against a sorted list
// model under random insert/remove/advance traffic.
func TestWheelRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := New[int](0, DefaultTickShift)
	type ref struct {
		deadline int64
		h        Handle
	}
	live := map[int]ref{}
	now, nextID := int64(0), 0
	for step := 0; step < 20000; step++ {
		switch r := rng.Intn(10); {
		case r < 5: // insert at a mixed-scale future offset
			var off int64
			switch rng.Intn(3) {
			case 0:
				off = rng.Int63n(1 << 20) // within level 0
			case 1:
				off = rng.Int63n(1 << 28) // level 1 territory
			default:
				off = rng.Int63n(1 << 34) // level 2 territory
			}
			d := now + off
			live[nextID] = ref{deadline: d, h: w.Insert(d, nextID)}
			nextID++
		case r < 6: // remove a random live entry
			for id, rf := range live {
				w.Remove(rf.h)
				delete(live, id)
				break
			}
		default: // advance by a random leap
			now += rng.Int63n(1 << 24)
			fired := map[int]bool{}
			w.Advance(now, func(id int) { fired[id] = true })
			for id, rf := range live {
				if rf.deadline <= now && !fired[id] {
					t.Fatalf("step %d: entry %d (deadline %d) not fired at %d", step, id, rf.deadline, now)
				}
				if rf.deadline > now && fired[id] {
					t.Fatalf("step %d: entry %d (deadline %d) fired early at %d", step, id, rf.deadline, now)
				}
				if fired[id] {
					delete(live, id)
				}
			}
		}
		if w.Len() != len(live) {
			t.Fatalf("step %d: Len %d != model %d", step, w.Len(), len(live))
		}
		wantMin := int64(math.MaxInt64)
		for _, rf := range live {
			if rf.deadline < wantMin {
				wantMin = rf.deadline
			}
		}
		if got := w.NextDeadline(); got != wantMin {
			t.Fatalf("step %d: NextDeadline %d != model %d", step, got, wantMin)
		}
	}
}

// TestWheelSteadyStateNoGrowth pins the zero-alloc property the conn
// timer path relies on: once the free list is primed, insert/fire
// cycles reuse items instead of growing the backing slice.
func TestWheelSteadyStateNoGrowth(t *testing.T) {
	w := New[int](0, DefaultTickShift)
	for i := 0; i < 64; i++ {
		w.Insert(int64(i+1)*1e6, i)
	}
	w.Advance(65e6, func(int) {})
	high := len(w.items)
	now := int64(65e6)
	for round := 0; round < 1000; round++ {
		for i := 0; i < 64; i++ {
			w.Insert(now+int64(i+1)*1e5, i)
		}
		now += 1e7
		w.Advance(now, func(int) {})
	}
	if len(w.items) != high {
		t.Fatalf("items grew from %d to %d in steady state", high, len(w.items))
	}
}
