package fstack

import (
	"testing"

	"repro/internal/hostos"
)

// Satellite coverage for the connection-scale subsystem as seen from
// the stack: poll-order determinism, listen-backlog enforcement, the
// SYN cache's graduation / retransmission / overflow behavior,
// TIME_WAIT reuse on both the active and passive side, and ephemeral
// port exhaustion.

// establish opens one client connection from A to B:port with an
// optional fixed source port (0 = ephemeral), returning the client
// and accepted fds.
func establish(e *testEnv, lfd int, port, sport uint16) (int, int) {
	e.t.Helper()
	cfd, errno := e.stkA.Socket(SockStream)
	if errno != hostos.OK {
		e.t.Fatal(errno)
	}
	if sport != 0 {
		if errno := e.stkA.Bind(cfd, IPv4Addr{}, sport); errno != hostos.OK {
			e.t.Fatal(errno)
		}
	}
	if errno := e.stkA.Connect(cfd, IP4(10, 0, 0, 2), port); errno != hostos.EINPROGRESS {
		e.t.Fatalf("connect: %v", errno)
	}
	afd := -1
	e.pumpUntil(8000, "accept", func() bool {
		fd, _, _, errno := e.stkB.Accept(lfd)
		if errno == hostos.OK {
			afd = fd
			return true
		}
		return false
	})
	e.pumpUntil(8000, "client established", func() bool {
		return e.stkA.ConnState(cfd) == "ESTABLISHED"
	})
	return cfd, afd
}

// fullClose closes first the client then the server side and waits
// for the client's conn to reach TIME_WAIT (active close) and the
// server's table to drain.
func fullClose(e *testEnv, cfd, afd int) {
	e.t.Helper()
	e.stkA.Close(cfd)
	e.pumpUntil(8000, "server sees FIN", func() bool {
		return e.stkB.ConnState(afd) == "CLOSE_WAIT"
	})
	e.stkB.Close(afd)
	e.pumpUntil(8000, "client reaches TIME_WAIT", func() bool {
		e.stkA.Lock()
		tw := false
		for _, c := range e.stkA.conns {
			tw = tw || c.state == tcpTimeWait
		}
		e.stkA.Unlock()
		return tw
	})
}

// warmARP resolves the A<->B MAC addresses with a throwaway
// connection, then strips both tables clean — so tests that freeze
// one stack mid-handshake are not stalled on ARP instead.
func warmARP(e *testEnv) {
	e.t.Helper()
	lfd, _ := e.stkB.Socket(SockStream)
	e.stkB.Bind(lfd, IPv4Addr{}, 6999)
	e.stkB.Listen(lfd, 4)
	cfd, afd := establish(e, lfd, 6999, 0)
	for _, pr := range []struct {
		s  *Stack
		fd int
	}{{e.stkA, cfd}, {e.stkB, afd}, {e.stkB, lfd}} {
		pr.s.Lock()
		for _, c := range pr.s.conns {
			pr.s.removeConn(c)
		}
		delete(pr.s.socks, pr.fd)
		pr.s.Unlock()
	}
}

// TestPollVisitOrderIsCreationOrder pins the determinism contract of
// the ready-list poll: connections marked ready in any order are
// visited in creation order. The probe is the wire — three receivers
// with closed windows drain their buffers in reverse creation order,
// all three then owe a window-update ACK at A's next poll, and the
// ACKs must leave in creation order (remote ports 6001, 6002, 6003),
// not drain order.
func TestPollVisitOrderIsCreationOrder(t *testing.T) {
	e := newEnv(t, false)
	e.stkA.SetTCPTuning(TCPTuning{RcvBufBytes: 16384})
	type pair struct {
		cfd, afd int
		port     uint16
	}
	var ps []pair
	for _, port := range []uint16{6001, 6002, 6003} {
		cfd, afd := e.connectPair(port)
		ps = append(ps, pair{cfd, afd, port})
	}
	// Overfill each A-side receive buffer so its advertised window
	// closes; a full drain then owes a window update.
	payload := make([]byte, 32<<10)
	for _, p := range ps {
		if n, errno := e.stkB.Write(p.afd, payload); errno != hostos.OK || n != len(payload) {
			t.Fatalf("fill write: n=%d errno=%v", n, errno)
		}
	}
	for i := 0; i < 4000; i++ {
		e.tick()
	}
	// Drain in reverse creation order; the window updates go out on the
	// next poll, in creation order.
	buf := make([]byte, 64<<10)
	for i := len(ps) - 1; i >= 0; i-- {
		for {
			n, errno := e.stkA.Read(ps[i].cfd, buf)
			if errno != hostos.OK || n == 0 {
				break
			}
		}
	}
	var w pcapBuffer
	pw, err := NewPcapWriter(&w)
	if err != nil {
		t.Fatal(err)
	}
	e.stkA.SetTap(pw)
	e.stkA.PollOnce()
	e.stkA.SetTap(nil)

	var order []uint16
	for _, frame := range parsePcap(t, w.Bytes()) {
		eth, err := ParseEthHeader(frame)
		if err != nil || eth.Type != EtherTypeIPv4 {
			continue
		}
		ip, ihl, err := ParseIPv4Header(frame[EthHeaderLen:])
		if err != nil || ip.Proto != ProtoTCP {
			continue
		}
		tcp, _, err := ParseTCPHeader(frame[EthHeaderLen+ihl:], ip.Src, ip.Dst)
		if err != nil {
			continue
		}
		order = append(order, tcp.DstPort)
	}
	if len(order) < 3 {
		t.Fatalf("expected 3 window updates, captured %d TCP frames: %v", len(order), order)
	}
	for i, want := range []uint16{6001, 6002, 6003} {
		if order[i] != want {
			t.Fatalf("visit order %v: ACKs must leave in creation order 6001,6002,6003", order)
		}
	}
}

// pcapBuffer is a minimal in-memory io.Writer for the tap.
type pcapBuffer struct{ b []byte }

func (p *pcapBuffer) Write(d []byte) (int, error) { p.b = append(p.b, d...); return len(d), nil }
func (p *pcapBuffer) Bytes() []byte               { return p.b }

// TestListenBacklogSilentDrop is the backlog-enforcement regression:
// with backlog 2 and nobody accepting, at most two handshakes may be
// in flight or pending, and further SYNs are silently dropped and
// counted.
func TestListenBacklogSilentDrop(t *testing.T) {
	e := newEnv(t, false)
	lfd, _ := e.stkB.Socket(SockStream)
	e.stkB.Bind(lfd, IPv4Addr{}, 7001)
	if errno := e.stkB.Listen(lfd, 2); errno != hostos.OK {
		t.Fatal(errno)
	}
	var cfds []int
	for i := 0; i < 6; i++ {
		cfd, _ := e.stkA.Socket(SockStream)
		if errno := e.stkA.Connect(cfd, IP4(10, 0, 0, 2), 7001); errno != hostos.EINPROGRESS {
			t.Fatalf("connect %d: %v", i, errno)
		}
		cfds = append(cfds, cfd)
	}
	for i := 0; i < 4000; i++ {
		e.tick()
	}
	est := 0
	for _, cfd := range cfds {
		if e.stkA.ConnState(cfd) == "ESTABLISHED" {
			est++
		}
	}
	st := e.stkB.Stats()
	if est != 2 {
		t.Fatalf("%d clients established past a backlog of 2", est)
	}
	if st.SynDrops == 0 {
		t.Fatalf("no SYN drops counted; stats %+v", st)
	}
	if got := e.stkB.AcceptQueueDepth(); got != 2 {
		t.Fatalf("accept-queue depth %d, want 2", got)
	}
	// Draining the queue reopens the backlog: the starved clients'
	// retransmitted SYNs eventually land.
	for i := 0; i < 2; i++ {
		if fd, _, _, errno := e.stkB.Accept(lfd); errno != hostos.OK || fd < 0 {
			t.Fatalf("accept %d: %v", i, errno)
		}
	}
	e.pumpUntil(400_000, "starved clients retry in", func() bool {
		n := 0
		for _, cfd := range cfds {
			if e.stkA.ConnState(cfd) == "ESTABLISHED" {
				n++
			}
		}
		return n >= 4
	})
}

// TestListenBacklogRST flips the SynRST knob: refused SYNs are
// answered with a RST, so overflowing clients fail fast instead of
// retrying into silence.
func TestListenBacklogRST(t *testing.T) {
	e := newEnv(t, false)
	e.stkB.SetTCPTuning(TCPTuning{SynRST: true})
	lfd, _ := e.stkB.Socket(SockStream)
	e.stkB.Bind(lfd, IPv4Addr{}, 7001)
	e.stkB.Listen(lfd, 2)
	var cfds []int
	for i := 0; i < 6; i++ {
		cfd, _ := e.stkA.Socket(SockStream)
		e.stkA.Connect(cfd, IP4(10, 0, 0, 2), 7001)
		cfds = append(cfds, cfd)
	}
	reset := 0
	e.pumpUntil(8000, "overflow clients reset", func() bool {
		reset = 0
		for _, cfd := range cfds {
			if _, errno := e.stkA.Read(cfd, make([]byte, 4)); errno == hostos.ECONNRESET {
				reset++
			}
		}
		return reset == 4
	})
	if st := e.stkB.Stats(); st.SynDrops != 4 {
		t.Fatalf("SynDrops %d, want 4; stats %+v", st.SynDrops, st)
	}
}

// TestSynCacheGraduation pins the half-open lifecycle: after the SYN
// lands the server holds a syncache entry and no connection; only the
// handshake's final ACK graduates the entry into a conn on the accept
// queue.
func TestSynCacheGraduation(t *testing.T) {
	e := newEnv(t, false)
	warmARP(e)
	accepts0 := e.stkB.Stats().Accepts
	lfd, _ := e.stkB.Socket(SockStream)
	e.stkB.Bind(lfd, IPv4Addr{}, 7001)
	e.stkB.Listen(lfd, 8)
	cfd, _ := e.stkA.Socket(SockStream)
	e.stkA.Connect(cfd, IP4(10, 0, 0, 2), 7001)
	// Freeze mid-handshake: A emits its SYN, B ingests it, but A never
	// sees the SYN|ACK.
	e.stkA.PollOnce()
	e.clk.Advance(5000)
	e.stkB.PollOnce()
	e.clk.Advance(5000)
	e.stkB.PollOnce()
	if got := e.stkB.HalfOpenCount(); got != 1 {
		t.Fatalf("half-open %d after SYN, want 1", got)
	}
	if got := e.stkB.ConnCount(); got != 0 {
		t.Fatalf("conns %d before the final ACK, want 0", got)
	}
	if got := e.stkB.AcceptQueueDepth(); got != 0 {
		t.Fatalf("accept queue %d before the final ACK, want 0", got)
	}
	// Resume: the handshake completes and the entry graduates.
	e.pumpUntil(8000, "graduation", func() bool {
		return e.stkB.ConnCount() == 1 && e.stkB.HalfOpenCount() == 0
	})
	if got := e.stkB.AcceptQueueDepth(); got != 1 {
		t.Fatalf("accept queue %d after graduation, want 1", got)
	}
	if st := e.stkB.Stats(); st.Accepts-accepts0 != 1 {
		t.Fatalf("accepts %d, want 1", st.Accepts-accepts0)
	}
}

// TestSynCacheRetransmitAndGiveUp starves a half-open entry of its
// final ACK: the SYN|ACK must be retransmitted with backoff and the
// entry dropped (backlog slot released) after synRetries resends.
func TestSynCacheRetransmitAndGiveUp(t *testing.T) {
	e := newEnv(t, false)
	warmARP(e)
	lfd, _ := e.stkB.Socket(SockStream)
	e.stkB.Bind(lfd, IPv4Addr{}, 7001)
	e.stkB.Listen(lfd, 8)
	cfd, _ := e.stkA.Socket(SockStream)
	e.stkA.Connect(cfd, IP4(10, 0, 0, 2), 7001)
	e.stkA.PollOnce() // the SYN leaves; A is never polled again
	e.clk.Advance(5000)
	e.stkB.PollOnce()
	e.clk.Advance(5000)
	e.stkB.PollOnce()
	if got := e.stkB.HalfOpenCount(); got != 1 {
		t.Fatalf("half-open %d, want 1", got)
	}
	tx0 := e.stkB.Stats().TxFrames
	// 100ms, 200, 400, 800, 1000 of backoff ≈ 2.5 s; give it 5 s.
	for i := 0; i < 5000 && e.stkB.HalfOpenCount() > 0; i++ {
		e.stkB.PollOnce()
		e.clk.Advance(1e6)
	}
	if got := e.stkB.HalfOpenCount(); got != 0 {
		t.Fatalf("half-open %d after the retry budget, want 0", got)
	}
	resent := e.stkB.Stats().TxFrames - tx0
	if resent != synRetries {
		t.Fatalf("%d SYN|ACK retransmissions, want %d", resent, synRetries)
	}
	if got := e.stkB.ConnCount(); got != 0 {
		t.Fatalf("conns %d, want 0 — the abandoned handshake must not cost a conn", got)
	}
}

// TestSynCacheOverflow bounds the half-open population: with a
// 2-entry cache, a 5-SYN burst leaves 2 half-open and drops 3,
// counted.
func TestSynCacheOverflow(t *testing.T) {
	e := newEnv(t, false)
	warmARP(e)
	e.stkB.SetTCPTuning(TCPTuning{SynCacheSize: 2})
	lfd, _ := e.stkB.Socket(SockStream)
	e.stkB.Bind(lfd, IPv4Addr{}, 7001)
	e.stkB.Listen(lfd, 64)
	for i := 0; i < 5; i++ {
		cfd, _ := e.stkA.Socket(SockStream)
		e.stkA.Connect(cfd, IP4(10, 0, 0, 2), 7001)
	}
	e.stkA.PollOnce() // all five SYNs leave together
	e.clk.Advance(5000)
	e.stkB.PollOnce()
	e.clk.Advance(5000)
	e.stkB.PollOnce()
	if got := e.stkB.HalfOpenCount(); got != 2 {
		t.Fatalf("half-open %d, want the cache cap 2", got)
	}
	if st := e.stkB.Stats(); st.SynDrops != 3 {
		t.Fatalf("SynDrops %d, want 3", st.SynDrops)
	}
}

// TestTimeWaitActiveReuse reconnects the same 4-tuple while the
// client's previous incarnation sits in TIME_WAIT: connect must
// retire the old conn (RFC 1122 reuse) instead of failing, and count
// it.
func TestTimeWaitActiveReuse(t *testing.T) {
	e := newEnv(t, false)
	lfd, _ := e.stkB.Socket(SockStream)
	e.stkB.Bind(lfd, IPv4Addr{}, 7001)
	e.stkB.Listen(lfd, 8)
	for round := 0; round < 3; round++ {
		cfd, afd := establish(e, lfd, 7001, 23456)
		fullClose(e, cfd, afd)
	}
	if st := e.stkA.Stats(); st.TimeWaitReuses != 2 {
		t.Fatalf("client TimeWaitReuses %d, want 2", st.TimeWaitReuses)
	}
}

// TestTimeWaitPassiveReuse puts TIME_WAIT on the server (server
// closes first) and reconnects the same tuple: the fresh SYN's higher
// ISS must retire the old incarnation and start a new handshake.
func TestTimeWaitPassiveReuse(t *testing.T) {
	e := newEnv(t, false)
	lfd, _ := e.stkB.Socket(SockStream)
	e.stkB.Bind(lfd, IPv4Addr{}, 7001)
	e.stkB.Listen(lfd, 8)

	cfd, afd := establish(e, lfd, 7001, 23456)
	e.stkB.Close(afd) // passive side closes first: TIME_WAIT lands on B
	e.pumpUntil(8000, "client sees FIN", func() bool {
		return e.stkA.ConnState(cfd) == "CLOSE_WAIT"
	})
	e.stkA.Close(cfd)
	e.pumpUntil(8000, "server reaches TIME_WAIT and client drains", func() bool {
		e.stkB.Lock()
		tw := false
		for _, c := range e.stkB.conns {
			tw = tw || c.state == tcpTimeWait
		}
		e.stkB.Unlock()
		return tw && e.stkA.ConnCount() == 0
	})

	cfd2, _ := establish(e, lfd, 7001, 23456)
	if st := e.stkB.Stats(); st.TimeWaitReuses != 1 {
		t.Fatalf("server TimeWaitReuses %d, want 1", st.TimeWaitReuses)
	}
	if e.stkA.ConnState(cfd2) != "ESTABLISHED" {
		t.Fatal("reconnect over the TIME_WAIT tuple did not establish")
	}
}

// TestTimeWaitExpiry is the 2MSL clock: an unreused TIME_WAIT conn
// leaves the table after timeWaitDur without being counted as reused.
func TestTimeWaitExpiry(t *testing.T) {
	e := newEnv(t, false)
	lfd, _ := e.stkB.Socket(SockStream)
	e.stkB.Bind(lfd, IPv4Addr{}, 7001)
	e.stkB.Listen(lfd, 8)
	cfd, afd := establish(e, lfd, 7001, 0)
	fullClose(e, cfd, afd)
	// 2MSL is 50 ms; 12000 ticks of 5 µs = 60 ms.
	e.pumpUntil(12000, "expiry", func() bool {
		return e.stkA.ConnCount() == 0
	})
	if st := e.stkA.Stats(); st.TimeWaitReuses != 0 {
		t.Fatalf("TimeWaitReuses %d on plain expiry, want 0", st.TimeWaitReuses)
	}
}

// TestTimeWaitFlood holds many TIME_WAIT conns at once (rapid churn
// over distinct source ports) and confirms they all expire on the
// 2MSL clock without leaking conns, ports or timers.
func TestTimeWaitFlood(t *testing.T) {
	e := newEnv(t, false)
	// Small rings keep 40 concurrent TIME_WAIT conns inside the 8 MiB
	// test segment.
	e.stkA.SetTCPTuning(TCPTuning{SndBufBytes: 16384, RcvBufBytes: 16384})
	e.stkB.SetTCPTuning(TCPTuning{SndBufBytes: 16384, RcvBufBytes: 16384})
	lfd, _ := e.stkB.Socket(SockStream)
	e.stkB.Bind(lfd, IPv4Addr{}, 7001)
	e.stkB.Listen(lfd, 64)
	const flood = 40
	for i := 0; i < flood; i++ {
		cfd, afd := establish(e, lfd, 7001, uint16(20000+i))
		fullClose(e, cfd, afd)
	}
	e.stkA.Lock()
	tw := 0
	for _, c := range e.stkA.conns {
		if c.state == tcpTimeWait {
			tw++
		}
	}
	e.stkA.Unlock()
	if tw < flood/2 {
		t.Fatalf("only %d/%d conns in TIME_WAIT; the flood never accumulated", tw, flood)
	}
	e.pumpUntil(30000, "flood expires", func() bool {
		return e.stkA.ConnCount() == 0 && e.stkB.ConnCount() == 0
	})
	// The wheel must be empty too: nothing left to fire.
	e.stkA.Lock()
	n := e.stkA.wheel.Len()
	e.stkA.Unlock()
	if n != 0 {
		t.Fatalf("timer wheel still holds %d entries after all conns expired", n)
	}
}

// TestEphemeralPortExhaustion fills the ephemeral range and expects
// connect to fail with EADDRNOTAVAIL, not spin or panic.
func TestEphemeralPortExhaustion(t *testing.T) {
	e := newEnv(t, false)
	e.stkA.Lock()
	e.stkA.portRefs = make([]uint32, 65536-ephemeralBase)
	for i := range e.stkA.portRefs {
		e.stkA.portRefs[i] = 1
	}
	e.stkA.Unlock()
	cfd, _ := e.stkA.Socket(SockStream)
	if errno := e.stkA.Connect(cfd, IP4(10, 0, 0, 2), 7001); errno != hostos.EADDRNOTAVAIL {
		t.Fatalf("connect with no free ephemeral ports: %v, want EADDRNOTAVAIL", errno)
	}
}
