package fstack

import (
	"cmp"
	"slices"

	"repro/internal/hostos"
)

// Crash models the stack compartment dying mid-run (a capability fault
// trapped its cVM): every in-flight connection is aborted with
// ECONNRESET, listeners and bound UDP endpoints latch ENETDOWN, epoll
// interest sets are dropped, the SYN cache and ARP state vanish, and
// the stack goes down — poll is a no-op and NextDeadline reports
// quiescence until Restart. Nothing is transmitted: a crashed stack is
// silent; peers discover the death when the restarted stack answers
// their retransmits with RSTs.
//
// File descriptors stay valid so the application sees the failure the
// way a real one would: blocked Accept/Read/RecvFrom return the
// latched errno instead of EAGAIN, and the app closes the stale fds
// itself (which is what returns RetainedBytes to its pre-fault level).
func (s *Stack) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return
	}
	s.down = true

	// Abort every live connection in creation order, so the trace
	// events and counter folds this emits are identical run to run
	// (map order is not).
	order := make([]*tcpConn, 0, len(s.conns))
	for _, c := range s.conns {
		order = append(order, c)
	}
	slices.SortFunc(order, func(a, b *tcpConn) int {
		return cmp.Compare(a.seq, b.seq)
	})
	for _, c := range order {
		c.abort(hostos.ECONNRESET)
	}

	// Listeners: the accept queues' conns were aborted above; release
	// their queue slots, latch the errno and unbind. The listener
	// struct stays reachable through its socket so a pending Accept
	// returns ENETDOWN, not EAGAIN.
	for ep, l := range s.listeners {
		for i := l.head; i < len(l.pending); i++ {
			c := l.pending[i]
			l.pending[i] = nil
			c.inPending = false
			s.maybeRecycleConn(c)
		}
		l.pending = l.pending[:0]
		l.head = 0
		l.halfOpen = 0
		l.err = hostos.ENETDOWN
		delete(s.listeners, ep)
	}

	// UDP endpoints: queued datagrams are lost, the binding latches.
	for ep, u := range s.udps {
		for u.queued() > 0 {
			s.freeDgramBuf(u.popDgram().data)
		}
		u.err = hostos.ENETDOWN
		delete(s.udps, ep)
	}

	// Epoll: registrations are fully dropped — a restarted application
	// re-registers from scratch. The instances (and their fds) remain.
	for _, ep := range s.epolls {
		clear(ep.interest)
	}

	// Half-open connections die silently; freeing every entry empties
	// the SYN wheel (order-free: nothing observable is emitted).
	for _, e := range s.syncache {
		s.synFreeEntry(e)
	}

	// Pending-work scratch: the conns are all detached, drop the flags.
	for i, c := range s.ready {
		s.ready[i] = nil
		c.onReady = false
	}
	s.ready = s.ready[:0]
	for i, c := range s.visit {
		s.visit[i] = nil
		c.queued = false
	}
	s.visit = s.visit[:0]

	// Neighbor state is gone with the compartment — ARP is re-learned
	// from scratch after the restart.
	for _, nif := range s.nifs {
		nif.arp.reset()
	}
	s.wantPoll = false
}

// Restart brings a crashed stack back up. Crash already tore the
// connection plane down to empty, so coming back is just clearing the
// down flag: the first poll re-harvests whatever accumulated in the
// device rings during the outage (stale segments draw RSTs, which is
// how peers' dead connections get reset), and the application
// re-creates its sockets and listeners through the normal API.
func (s *Stack) Restart() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.down {
		return
	}
	s.down = false
	s.wantPoll = true // harvest the backlog on the next iteration
}

// Down reports whether the stack is crashed (compartment-state gauge).
func (s *Stack) Down() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down
}
