package fstack

import (
	"testing"

	"repro/internal/hostos"
)

// TestCrashLatchesErrnos pins the socket-layer semantics of a stack
// crash: in-flight connections latch ECONNRESET, listeners and UDP
// bindings latch ENETDOWN, and the latched errno — not EAGAIN — is
// what every blocked entry point returns afterward.
func TestCrashLatchesErrnos(t *testing.T) {
	e := newEnv(t, false)
	_, afd := e.connectPair(8080)

	// A UDP binding on the victim stack, alongside the TCP plane.
	ufd, errno := e.stkB.Socket(SockDgram)
	if errno != hostos.OK {
		t.Fatal(errno)
	}
	if errno := e.stkB.Bind(ufd, IPv4Addr{}, 5353); errno != hostos.OK {
		t.Fatal(errno)
	}

	e.stkB.Crash()

	if _, errno := e.stkB.Read(afd, make([]byte, 64)); errno != hostos.ECONNRESET {
		t.Fatalf("Read on crashed conn: %v, want ECONNRESET", errno)
	}
	if _, errno := e.stkB.Write(afd, []byte("x")); errno != hostos.ECONNRESET {
		t.Fatalf("Write on crashed conn: %v, want ECONNRESET", errno)
	}
	// The listener fd is 3 (first descriptor B created in connectPair).
	if _, _, _, errno := e.stkB.Accept(3); errno != hostos.ENETDOWN {
		t.Fatalf("Accept on crashed listener: %v, want ENETDOWN", errno)
	}
	if _, _, _, errno := e.stkB.RecvFrom(ufd, make([]byte, 64)); errno != hostos.ENETDOWN {
		t.Fatalf("RecvFrom on crashed UDP sock: %v, want ENETDOWN", errno)
	}
	if _, errno := e.stkB.SendTo(ufd, []byte("x"), IP4(10, 0, 0, 1), 53); errno != hostos.ENETDOWN {
		t.Fatalf("SendTo on crashed UDP sock: %v, want ENETDOWN", errno)
	}
	if !e.stkB.Down() {
		t.Fatal("Down() must report the crash")
	}
}

// TestCrashDropsEpollRegistrations: after a crash the interest sets
// are empty (re-adding an fd succeeds where a duplicate add would
// EINVAL), and a re-registered stale fd reports EPOLLERR.
func TestCrashDropsEpollRegistrations(t *testing.T) {
	e := newEnv(t, false)
	_, afd := e.connectPair(8080)
	epfd := e.stkB.EpollCreate()
	if errno := e.stkB.EpollCtl(epfd, EpollCtlAdd, afd, EPOLLIN); errno != hostos.OK {
		t.Fatal(errno)
	}

	e.stkB.Crash()

	evs := make([]Event, 8)
	if n, errno := e.stkB.EpollWait(epfd, evs); errno != hostos.OK || n != 0 {
		t.Fatalf("EpollWait after crash: n=%d errno=%v, want 0 events", n, errno)
	}
	// A fresh Add succeeds — proof the registration was fully dropped,
	// not just masked.
	if errno := e.stkB.EpollCtl(epfd, EpollCtlAdd, afd, EPOLLIN); errno != hostos.OK {
		t.Fatalf("re-Add after crash: %v (interest set not dropped?)", errno)
	}
	n, _ := e.stkB.EpollWait(epfd, evs)
	if n != 1 || evs[0].FD != afd || evs[0].Events&EPOLLERR == 0 {
		t.Fatalf("stale fd readiness: n=%d evs=%+v, want EPOLLERR on %d", n, evs[0], afd)
	}
}

// TestRestartServesAgain walks the whole recovery arc: crash, restart,
// listener re-established on the same port, the peer's stale
// connection reset by the restarted stack's RST, and a fresh
// connection served.
func TestRestartServesAgain(t *testing.T) {
	e := newEnv(t, false)
	cfd, _ := e.connectPair(8080)

	e.stkB.Crash()
	// An outage with the peer alive: B's poll is a no-op throughout.
	for i := 0; i < 20; i++ {
		e.tick()
	}
	e.stkB.Restart()

	// The supervisor re-runs the server's socket path: same port, new
	// fd — the old binding died with the crash.
	lfd, errno := e.stkB.Socket(SockStream)
	if errno != hostos.OK {
		t.Fatal(errno)
	}
	if errno := e.stkB.Bind(lfd, IPv4Addr{}, 8080); errno != hostos.OK {
		t.Fatalf("re-bind after restart: %v", errno)
	}
	if errno := e.stkB.Listen(lfd, 8); errno != hostos.OK {
		t.Fatal(errno)
	}

	// The peer discovers the death on its next transmission: the
	// restarted stack knows nothing of the tuple and answers RST.
	if _, errno := e.stkA.Write(cfd, []byte("ping")); errno != hostos.OK {
		t.Fatalf("client write: %v", errno)
	}
	e.pumpUntil(4000, "stale client conn reset", func() bool {
		_, errno := e.stkA.Read(cfd, make([]byte, 64))
		return errno == hostos.ECONNRESET
	})
	if errno := e.stkA.Close(cfd); errno != hostos.OK {
		t.Fatal(errno)
	}

	// A fresh connection works end to end.
	cfd2, errno := e.stkA.Socket(SockStream)
	if errno != hostos.OK {
		t.Fatal(errno)
	}
	if errno := e.stkA.Connect(cfd2, IP4(10, 0, 0, 2), 8080); errno != hostos.EINPROGRESS {
		t.Fatal(errno)
	}
	e.pumpUntil(4000, "post-restart accept", func() bool {
		_, _, _, errno := e.stkB.Accept(lfd)
		return errno == hostos.OK
	})
}

// TestRetainedBytesRecoverAcrossRestart: once the application closes
// its stale fds, the connection plane's retained memory returns to the
// pre-fault level — a crash/restart cycle leaks nothing from the
// arenas.
func TestRetainedBytesRecoverAcrossRestart(t *testing.T) {
	e := newEnv(t, false)

	// Warm the arenas with one full connect/close cycle so the
	// baseline includes the recycled structs. The client closes first
	// so B's side runs CLOSE_WAIT -> LAST_ACK -> closed and recycles
	// (closing B first would park its conn in TIME_WAIT instead).
	cfd, afd := e.connectPair(8080)
	e.stkA.Close(cfd)
	e.pumpUntil(4000, "peer FIN", func() bool {
		_, errno := e.stkB.Read(afd, make([]byte, 64))
		return errno == hostos.OK // EOF: n=0, errno OK
	})
	e.stkB.Close(afd)
	e.stkB.Close(3) // listener fd
	for i := 0; i < 400; i++ {
		e.tick()
	}
	base := e.stkB.RetainedBytes()

	// Fault cycle: same shape, but the teardown is a crash.
	cfd, afd = e.connectPair(8080)
	lfd := afd - 1 // connectPair's listener is the fd before the accept
	_ = cfd
	e.stkB.Crash()
	e.stkB.Restart()
	e.stkB.Close(afd)
	e.stkB.Close(lfd)
	for i := 0; i < 400; i++ {
		e.tick()
	}
	if got := e.stkB.RetainedBytes(); got != base {
		t.Fatalf("retained bytes after crash cycle: %d, want pre-fault %d", got, base)
	}
}
