//go:build !race

package fstack

import "testing"

// TestDatapathFrameZeroAllocs pins the observability hard constraint:
// with every obs hook left nil (the zero ObsSpec), the steady-state
// datapath must not allocate per frame. A regression here means a hook
// heap-allocates on the hot path even when disabled.
//
// Skipped under the race detector, whose instrumentation allocates.
func TestDatapathFrameZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	res := testing.Benchmark(BenchmarkDatapathFrame)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("datapath allocates %d allocs/op with observability disabled, want 0", a)
	}
}
