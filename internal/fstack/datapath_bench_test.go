package fstack

import (
	"testing"

	"repro/internal/hostos"
)

// BenchmarkDatapathFrame measures the per-frame cost of the full
// simulated datapath: one MSS of payload written on stack A travels
// A's socket buffer → TCP output → mbuf → TX descriptor ring → NIC
// serializer → wire → B's RX FIFO → RX descriptor DMA → B's TCP input
// → receive buffer, and the ACK makes the same trip back. The
// allocs/op figure is the one the frame arena exists for: the steady
// state must not allocate per frame.
func BenchmarkDatapathFrame(b *testing.B) {
	e := newEnv(b, false)
	cfd, afd := e.connectPair(9000)

	payload := make([]byte, MaxSegData)
	for i := range payload {
		payload[i] = byte(i)
	}
	sink := make([]byte, MaxSegData)

	// One warm-up round trip so ring/FIFO slices and ARP state reach
	// steady state before counting.
	roundTrip := func() {
		if n, errno := e.stkA.Write(cfd, payload); errno != hostos.OK || n != len(payload) {
			b.Fatalf("write: n=%d errno=%v", n, errno)
		}
		got := 0
		for tick := 0; tick < 4000; tick++ {
			e.stkA.PollOnce()
			e.stkB.PollOnce()
			if n, errno := e.stkB.Read(afd, sink); errno == hostos.OK {
				got += n
			}
			// Done when B has the payload and A's ACK came back (send
			// buffer drained), so the next iteration starts clean.
			if got == len(payload) && e.stkA.ConnState(cfd) == "ESTABLISHED" && e.sndBufLen(cfd) == 0 {
				return
			}
			e.clk.Advance(5000)
		}
		b.Fatalf("round trip stalled: got %d of %d bytes", got, len(payload))
	}
	roundTrip()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip()
	}
}

// sndBufLen peeks a connection's send-buffer occupancy (bench hook).
func (e *testEnv) sndBufLen(fd int) int {
	e.stkA.mu.Lock()
	defer e.stkA.mu.Unlock()
	sk, ok := e.stkA.socks[fd]
	if !ok || sk.conn == nil {
		return -1
	}
	return sk.conn.sndBuf.Len()
}
