// Package fstack is a user-space TCP/IP stack over DPDK, modelled on
// F-Stack (the FreeBSD-derived stack the paper ports to CheriBSD,
// §II-C/§III-B).
//
// Architecture, following F-Stack's:
//
//   - The stack is owned by a single poll-mode main loop (Loop): every
//     iteration drains the NIC RX rings, runs protocol input, fires
//     timers, flushes TX, and invokes a user callback. There are no
//     interrupts and no kernel involvement after boot.
//
//   - Applications use the ff_* socket API (Socket, Bind, Listen,
//     Accept, Connect, Read, Write, Close) plus an epoll-style event
//     API. All calls are non-blocking; readiness is reported through
//     epoll, which is how the paper's iperf3 port works after its
//     select->epoll conversion (§III-B).
//
//   - API calls and the main loop are serialized by one stack mutex.
//     In Baseline and Scenario 1 the application runs inside the loop
//     callback, so the mutex is uncontended; in Scenario 2 separate
//     application compartments call through cross-cVM gates and contend
//     on it — the effect Fig. 6 measures.
//
//   - The multi-core escape from that mutex is ShardedStack: N Stack
//     instances, each bound to one NIC RX/TX queue pair, with symmetric
//     RSS steering keeping both directions of every flow on one shard.
//     Connection, socket and listener tables plus timers are
//     shard-local; ARP state is shared (read-mostly); listening sockets
//     are cloned per shard so a SYN is accepted wherever RSS lands it.
//     ShardedAPI is the application view: cloned listeners, pinned
//     connections, and outbound source-port engineering that
//     round-robins new connections over the shards. Scenario 4
//     measures the resulting aggregate-goodput scaling.
//
//   - In capability mode (the CHERI port) socket buffers and all packet
//     memory live in a bounded memory segment and every copy is a
//     checked capability access; ff_write takes a `__capability` buffer
//     argument exactly like the modified API in the paper (§III-B).
//
//   - The connection plane is built for count and churn, not just
//     bulk flows: timers live on hierarchical timing wheels
//     (fstack/connscale — O(1) arm/disarm, exact firing), the poll
//     visits only connections with pending work (idle conns cost
//     nothing per iteration), inbound handshakes go through a
//     FreeBSD-style SYN cache (a half-open costs one pooled entry,
//     not a conn; backlog/cache overflow is counted and traced, with
//     a SynRST knob choosing RST over silent drop), and setup and
//     teardown recycle conns, sockets, syncache entries and timer
//     items through arenas — a full connect/accept/close/close cycle
//     is zero-alloc at steady state (BenchmarkConnChurn pins it).
//     TIME_WAIT holds tuples for 2MSL with both BSD reuse paths
//     (active reconnect and forward-sequence fresh SYN) counted in
//     StackStats; ephemeral-port exhaustion returns EADDRNOTAVAIL.
//
//   - The datagram plane is bounded and pooled: each UDP socket holds
//     a head-indexed receive ring (256 datagrams deep) whose overflow
//     sheds into the dedicated StackStats.UdpQueueDrops counter and an
//     EvUDPDrop trace event — distinct from the datapath's RxDropped —
//     and payload buffers come from a per-stack arena recycled on
//     RecvFrom and Close, so a steady-state query/answer round trip is
//     zero-alloc (BenchmarkUDPRoundTrip pins it). ShardedAPI extends
//     SendTo/RecvFrom with the same RSS steering as TCP: an
//     unbound-socket SendTo auto-binds an ephemeral source port, and
//     bound sockets are cloned per shard so a datagram is delivered
//     wherever RSS lands it.
//
// Protocols: Ethernet II, ARP, IPv4 (no fragmentation — the MSS never
// exceeds the MTU), ICMP echo, UDP, and TCP with the features the
// evaluation exercises: 3-way handshake, sliding window, timestamp
// options (12 bytes, giving the canonical 1448-byte MSS payload and the
// 941 Mbit/s GbE goodput ceiling), delayed ACKs, fast retransmit, RTO
// with exponential backoff, and a persist timer probing zero receive
// windows so a lost window update cannot stall a connection.
//
// With the zero-value TCPTuning the stack reproduces the paper
// exactly: no SACK (loss recovery is go-back-N — out-of-order segments
// are not queued), no window scaling (64 KiB windows), Reno congestion
// control. Stack.SetTCPTuning opts into the modern machinery per
// stack: RFC 2018 SACK with an RFC 6675 pipe-driven sender scoreboard
// (RFC 6582 NewReno as the non-SACK fallback), RFC 7323 window
// scaling, sized socket buffers, and a pluggable congestion controller
// (cc.go: the extracted renoCC default or RFC 8312 cubicCC, selected
// by TCPTuning.Congestion). The connection reports ACK/loss events
// through the CongestionController seam and reads back cwnd/ssthresh;
// DESIGN.md §2 and §7 discuss both layers, and why stacks on paths
// with ms-scale queueing must raise the retransmission-timer floor
// (SetRTOMin).
package fstack
