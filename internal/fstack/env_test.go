package fstack

import (
	"testing"

	"repro/internal/cheri"
	"repro/internal/dpdk"
	"repro/internal/hostos"
	"repro/internal/nic"
	"repro/internal/sim"
)

// testEnv is a two-machine rig: stack A (10.0.0.1) and stack B
// (10.0.0.2) wired back-to-back at 1 Gbit/s, driven in virtual time.
type testEnv struct {
	t    testing.TB
	clk  *sim.VClock
	stkA *Stack
	stkB *Stack
}

// buildMachine makes one machine: memory, card, segment, pool, ethdev,
// stack.
func buildMachine(t testing.TB, clk *sim.VClock, bdf string, macLast byte, ip IPv4Addr, capMode bool) (*Stack, *nic.Card) {
	t.Helper()
	mem := cheri.NewTMem(16 << 20)
	pci := hostos.NewPCI()
	card, err := nic.New(nic.Config{
		BDFBase: bdf, Ports: 1, LineRateBps: 1e9,
		MAC: [6]byte{2, 0, 0, 0, 0, macLast}, Clk: clk, Mem: mem, CapDMA: capMode,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := card.RegisterPCI(pci); err != nil {
		t.Fatal(err)
	}
	if errno := pci.Unbind(bdf + ".0"); errno != hostos.OK {
		t.Fatal(errno)
	}
	var segCap cheri.Cap
	const segBase, segSize = 0x100000, 8 << 20
	if capMode {
		segCap, err = mem.Root().SetAddr(segBase).SetBounds(segSize)
		if err != nil {
			t.Fatal(err)
		}
		segCap, err = segCap.AndPerms(cheri.PermData)
		if err != nil {
			t.Fatal(err)
		}
	}
	seg, err := dpdk.NewMemSeg(mem, segBase, segSize, segCap, capMode)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := dpdk.NewMempool(seg, "pkt", 1024, dpdk.DefaultDataroom)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := dpdk.Probe(pci, bdf+".0", seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Configure(256, 256, pool); err != nil {
		t.Fatal(err)
	}
	if err := dev.Start(); err != nil {
		t.Fatal(err)
	}
	stk := NewStack(seg, pool, clk)
	stk.AddNetIF("eth0", dev, ip, IP4(255, 255, 255, 0))
	return stk, card
}

// newEnv builds the rig.
func newEnv(t testing.TB, capMode bool) *testEnv {
	t.Helper()
	clk := sim.NewVClock()
	stkA, cardA := buildMachine(t, clk, "0000:03:00", 1, IP4(10, 0, 0, 1), capMode)
	stkB, cardB := buildMachine(t, clk, "0000:04:00", 2, IP4(10, 0, 0, 2), capMode)
	nic.Connect(cardA.Port(0), cardB.Port(0))
	return &testEnv{t: t, clk: clk, stkA: stkA, stkB: stkB}
}

// tick runs one poll iteration on both stacks and advances 5 µs.
func (e *testEnv) tick() {
	e.stkA.PollOnce()
	e.stkB.PollOnce()
	e.clk.Advance(5000)
}

// pumpUntil ticks until cond is true, failing after maxTicks.
func (e *testEnv) pumpUntil(maxTicks int, what string, cond func() bool) {
	e.t.Helper()
	for i := 0; i < maxTicks; i++ {
		if cond() {
			return
		}
		e.tick()
	}
	e.t.Fatalf("condition %q not reached after %d ticks (%.1f ms virtual)",
		what, maxTicks, float64(e.clk.Now())/1e6)
}

// connectPair establishes a TCP connection: B listens on port, A
// connects; returns (client fd on A, accepted fd on B).
func (e *testEnv) connectPair(port uint16) (int, int) {
	e.t.Helper()
	lfd, errno := e.stkB.Socket(SockStream)
	if errno != hostos.OK {
		e.t.Fatal(errno)
	}
	if errno := e.stkB.Bind(lfd, IPv4Addr{}, port); errno != hostos.OK {
		e.t.Fatal(errno)
	}
	if errno := e.stkB.Listen(lfd, 8); errno != hostos.OK {
		e.t.Fatal(errno)
	}
	cfd, errno := e.stkA.Socket(SockStream)
	if errno != hostos.OK {
		e.t.Fatal(errno)
	}
	if errno := e.stkA.Connect(cfd, IP4(10, 0, 0, 2), port); errno != hostos.EINPROGRESS {
		e.t.Fatalf("connect: %v", errno)
	}
	afd := -1
	e.pumpUntil(4000, "accept", func() bool {
		fd, _, _, errno := e.stkB.Accept(lfd)
		if errno == hostos.OK {
			afd = fd
			return true
		}
		return false
	})
	e.pumpUntil(4000, "client established", func() bool {
		return e.stkA.ConnState(cfd) == "ESTABLISHED"
	})
	return cfd, afd
}
