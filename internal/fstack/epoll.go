package fstack

import "repro/internal/hostos"

// Epoll event bits (Linux values; musl callers expect them).
const (
	EPOLLIN  uint32 = 0x001
	EPOLLOUT uint32 = 0x004
	EPOLLERR uint32 = 0x008
	EPOLLHUP uint32 = 0x010
)

// Epoll ctl operations.
const (
	EpollCtlAdd = 1
	EpollCtlDel = 2
	EpollCtlMod = 3
)

// Event is one readiness report.
type Event struct {
	FD     int
	Events uint32
}

// epollInstance is a level-triggered readiness poller over the stack's
// sockets. The paper's iperf3 port replaced select with this mechanism
// (§III-B); in a poll-mode stack Wait never blocks — the main loop is
// the thing that makes progress.
type epollInstance struct {
	interest map[int]uint32
}

// EpollCreate makes an epoll descriptor.
func (s *Stack) EpollCreate() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epollCreateLocked()
}

func (s *Stack) epollCreateLocked() int {
	fd := s.nextFD
	s.nextFD++
	s.epolls[fd] = &epollInstance{interest: make(map[int]uint32)}
	return fd
}

// EpollCtl manipulates the interest set.
func (s *Stack) EpollCtl(epfd, op, fd int, events uint32) hostos.Errno {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epollCtlLocked(epfd, op, fd, events)
}

func (s *Stack) epollCtlLocked(epfd, op, fd int, events uint32) hostos.Errno {
	ep, ok := s.epolls[epfd]
	if !ok {
		return hostos.EBADF
	}
	if _, ok := s.socks[fd]; !ok {
		return hostos.EBADF
	}
	switch op {
	case EpollCtlAdd:
		if _, dup := ep.interest[fd]; dup {
			return hostos.EINVAL
		}
		ep.interest[fd] = events
	case EpollCtlMod:
		if _, ok := ep.interest[fd]; !ok {
			return hostos.ENOENT
		}
		ep.interest[fd] = events
	case EpollCtlDel:
		delete(ep.interest, fd)
	default:
		return hostos.EINVAL
	}
	return hostos.OK
}

// EpollWait collects ready events (non-blocking).
func (s *Stack) EpollWait(epfd int, evs []Event) (int, hostos.Errno) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epollWaitLocked(epfd, evs)
}

func (s *Stack) epollWaitLocked(epfd int, evs []Event) (int, hostos.Errno) {
	ep, ok := s.epolls[epfd]
	if !ok {
		return -1, hostos.EBADF
	}
	n := 0
	for fd, want := range ep.interest {
		if n >= len(evs) {
			break
		}
		got := s.readiness(fd) & (want | EPOLLERR | EPOLLHUP)
		if got != 0 {
			evs[n] = Event{FD: fd, Events: got}
			n++
		}
	}
	return n, hostos.OK
}

// readiness computes the level-triggered event set of a socket.
func (s *Stack) readiness(fd int) uint32 {
	sk, ok := s.socks[fd]
	if !ok {
		return EPOLLERR
	}
	var r uint32
	switch {
	case sk.lst != nil:
		if sk.lst.err != hostos.OK {
			r |= EPOLLERR
		}
		if sk.lst.pendingCount() > 0 {
			r |= EPOLLIN
		}
	case sk.conn != nil:
		c := sk.conn
		if c.rcvBuf.Len() > 0 || c.finRcvd {
			r |= EPOLLIN
		}
		switch c.state {
		case tcpEstablished, tcpCloseWait:
			if c.sndBuf.Free() > 0 {
				r |= EPOLLOUT
			}
		case tcpClosed:
			r |= EPOLLHUP
		}
		if c.sockErr != hostos.OK {
			r |= EPOLLERR
		}
	case sk.udp != nil:
		if sk.udp.err != hostos.OK {
			r |= EPOLLERR
		}
		if sk.udp.queued() > 0 {
			r |= EPOLLIN
		}
		r |= EPOLLOUT // UDP is always writable (best effort)
	}
	return r
}
