package fstack

import (
	"encoding/binary"
	"fmt"
)

// MACAddr is an Ethernet hardware address.
type MACAddr [6]byte

// String formats the address in colon notation.
func (m MACAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// BroadcastMAC is ff:ff:ff:ff:ff:ff.
var BroadcastMAC = MACAddr{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

// IPv4Addr is a dotted-quad address.
type IPv4Addr [4]byte

// String formats the address in dotted-quad notation.
func (a IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IP4 builds an address from octets.
func IP4(a, b, c, d byte) IPv4Addr { return IPv4Addr{a, b, c, d} }

// EtherType values.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
)

// EthHeaderLen is the Ethernet II header size.
const EthHeaderLen = 14

// MTU is the Ethernet payload limit (no jumbo frames, like the paper's
// 82576 setup).
const MTU = 1500

// EthHeader is an Ethernet II header.
type EthHeader struct {
	Dst  MACAddr
	Src  MACAddr
	Type uint16
}

// PutEthHeader marshals h into b (len >= EthHeaderLen).
func PutEthHeader(b []byte, h EthHeader) {
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.Type)
}

// ParseEthHeader unmarshals an Ethernet II header.
func ParseEthHeader(b []byte) (EthHeader, error) {
	if len(b) < EthHeaderLen {
		return EthHeader{}, fmt.Errorf("fstack: ethernet frame of %d bytes", len(b))
	}
	var h EthHeader
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.Type = binary.BigEndian.Uint16(b[12:14])
	return h, nil
}
