package fstack

import (
	"testing"
	"testing/quick"
)

// These property tests feed arbitrary bytes into every wire-format
// parser: none may panic, and any accepted parse must be internally
// consistent. This is the input surface a hostile link partner controls
// — precisely what the paper's threat model worries about.

func TestQuickParseEthNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		h, err := ParseEthHeader(b)
		if err != nil {
			return true
		}
		return h.Type == uint16(b[12])<<8|uint16(b[13])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseIPv4NeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		h, ihl, err := ParseIPv4Header(b)
		if err != nil {
			return true
		}
		// Accepted packets must be self-consistent.
		return ihl >= IPv4HeaderLen && int(h.TotalLen) >= ihl && int(h.TotalLen) <= len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseARPNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		p, err := ParseARPPacket(b)
		if err != nil {
			return true
		}
		return p.Op == ARPRequest || p.Op == ARPReply || p.Op > 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseTCPNeverPanics(t *testing.T) {
	src, dst := IP4(10, 0, 0, 1), IP4(10, 0, 0, 2)
	f := func(b []byte) bool {
		h, hl, err := ParseTCPHeader(b, src, dst)
		if err != nil {
			return true
		}
		_ = h
		return hl >= TCPHeaderLen && hl <= len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseUDPICMPNeverPanic(t *testing.T) {
	src, dst := IP4(10, 0, 0, 1), IP4(10, 0, 0, 2)
	f := func(b []byte) bool {
		if h, err := ParseUDPHeader(b, src, dst); err == nil {
			if int(h.Length) > len(b) {
				return false
			}
		}
		if _, err := ParseICMPEcho(b); err == nil && len(b) < ICMPHeaderLen {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestMalformedTCPOptionTruncation covers the specific option-walk edge
// cases: zero-length options, truncated options, option padding.
func TestMalformedTCPOptionTruncation(t *testing.T) {
	src, dst := IP4(10, 0, 0, 1), IP4(10, 0, 0, 2)
	base := TCPHeader{SrcPort: 1, DstPort: 2}
	cases := []struct {
		name    string
		mutate  func(b []byte)
		wantErr bool
	}{
		{"zero-length option", func(b []byte) { b[TCPHeaderLen] = 3; b[TCPHeaderLen+1] = 0 }, true},
		{"length beyond header", func(b []byte) { b[TCPHeaderLen] = 8; b[TCPHeaderLen+1] = 200 }, true},
		// Kind 2 with length 3 is a well-formed walk but not a valid MSS
		// option: the parser must skip it without taking an MSS value.
		{"short MSS ignored", func(b []byte) { b[TCPHeaderLen] = 2; b[TCPHeaderLen+1] = 3 }, false},
	}
	for _, tc := range cases {
		b := make([]byte, TCPHeaderLen+8)
		b[12] = byte((TCPHeaderLen + 8) / 4 << 4)
		PutTCPHeader(b, base, src, dst, len(b)) // writes data offset 20; force options area
		b[12] = byte((TCPHeaderLen + 8) / 4 << 4)
		tc.mutate(b)
		// Recompute checksum so the parser reaches the option walk.
		b[16], b[17] = 0, 0
		cs := transportChecksum(src, dst, ProtoTCP, b)
		b[16], b[17] = byte(cs>>8), byte(cs)
		h, _, err := ParseTCPHeader(b, src, dst)
		if tc.wantErr && err == nil {
			t.Fatalf("%s accepted: % x", tc.name, b[TCPHeaderLen:])
		}
		if !tc.wantErr {
			if err != nil {
				t.Fatalf("%s rejected: %v", tc.name, err)
			}
			if h.MSS != 0 {
				t.Fatalf("%s produced MSS=%d", tc.name, h.MSS)
			}
		}
	}
}

// TestHostileFramesDoNotCrashStack blasts random garbage frames at a
// live stack: nothing may panic; the stack drops and counts them.
func TestHostileFramesDoNotCrashStack(t *testing.T) {
	e := newEnv(t, false)
	// Build garbage directly in the peer's TX path by sending UDP with
	// random payloads AND raw frames crafted via the peer's stack mbufs.
	f := func(payload []byte, dstPort uint16) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		fd, _ := e.stkA.Socket(SockDgram)
		e.stkA.SendTo(fd, payload, IP4(10, 0, 0, 2), dstPort)
		e.stkA.Close(fd)
		for i := 0; i < 5; i++ {
			e.tick()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	if e.stkB.Stats().RxDropped == 0 {
		t.Log("note: all hostile datagrams happened to hit open ports")
	}
}
