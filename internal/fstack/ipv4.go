package fstack

import (
	"encoding/binary"
	"fmt"
)

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// IPv4HeaderLen is the header size without options (we emit none).
const IPv4HeaderLen = 20

// IPv4Header is an IPv4 header (options unsupported on output; ignored
// on input).
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // upper 3 bits of the fragment word
	FragOff  uint16
	TTL      uint8
	Proto    uint8
	Src      IPv4Addr
	Dst      IPv4Addr
}

// flagDontFragment is the DF bit.
const flagDontFragment = 0x2

// PutIPv4Header marshals h into b (len >= IPv4HeaderLen) and writes the
// header checksum.
func PutIPv4Header(b []byte, h IPv4Header) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(h.Flags)<<13|h.FragOff&0x1FFF)
	b[8] = h.TTL
	b[9] = h.Proto
	b[10], b[11] = 0, 0
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	cs := Checksum(b[:IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[10:12], cs)
}

// ParseIPv4Header unmarshals and validates an IPv4 header, returning the
// header, its length (IHL), and an error for malformed or corrupt
// headers.
func ParseIPv4Header(b []byte) (IPv4Header, int, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4Header{}, 0, fmt.Errorf("fstack: short IPv4 header (%d bytes)", len(b))
	}
	if b[0]>>4 != 4 {
		return IPv4Header{}, 0, fmt.Errorf("fstack: IP version %d", b[0]>>4)
	}
	ihl := int(b[0]&0xF) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return IPv4Header{}, 0, fmt.Errorf("fstack: bad IHL %d", ihl)
	}
	if Checksum(b[:ihl]) != 0 {
		return IPv4Header{}, 0, fmt.Errorf("fstack: IPv4 header checksum mismatch")
	}
	var h IPv4Header
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	frag := binary.BigEndian.Uint16(b[6:8])
	h.Flags = uint8(frag >> 13)
	h.FragOff = frag & 0x1FFF
	h.TTL = b[8]
	h.Proto = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if int(h.TotalLen) < ihl || int(h.TotalLen) > len(b) {
		return IPv4Header{}, 0, fmt.Errorf("fstack: IPv4 total length %d outside frame", h.TotalLen)
	}
	if h.FragOff != 0 || h.Flags&0x1 != 0 { // MF set or offset nonzero
		return IPv4Header{}, 0, fmt.Errorf("fstack: fragmented packet unsupported")
	}
	return h, ihl, nil
}
