package fstack

import (
	"repro/internal/cheri"
	"repro/internal/hostos"
)

// The LockedAPI methods mirror the Stack API one-for-one but assume the
// caller already holds the stack mutex — i.e. it is running inside the
// main loop's user callback (Baseline / Scenario 1, where application
// and stack share a compartment) or inside a Scenario 2 gate target.

// Socket creates a descriptor.
func (a LockedAPI) Socket(typ int) (int, hostos.Errno) { return a.S.socketLocked(typ) }

// Bind attaches a local address.
func (a LockedAPI) Bind(fd int, ip IPv4Addr, port uint16) hostos.Errno {
	return a.S.bindLocked(fd, ip, port)
}

// Listen makes a stream socket passive.
func (a LockedAPI) Listen(fd, backlog int) hostos.Errno { return a.S.listenLocked(fd, backlog) }

// Accept dequeues an established connection.
func (a LockedAPI) Accept(fd int) (int, IPv4Addr, uint16, hostos.Errno) {
	return a.S.acceptLocked(fd)
}

// Connect starts an active open.
func (a LockedAPI) Connect(fd int, ip IPv4Addr, port uint16) hostos.Errno {
	return a.S.connectLocked(fd, ip, port)
}

// Read consumes received bytes.
func (a LockedAPI) Read(fd int, dst []byte) (int, hostos.Errno) { return a.S.readLocked(fd, dst) }

// Write stores bytes for transmission.
func (a LockedAPI) Write(fd int, src []byte) (int, hostos.Errno) { return a.S.writeLocked(fd, src) }

// ReadCap is the capability-buffer read.
func (a LockedAPI) ReadCap(fd int, mem *cheri.TMem, buf cheri.Cap, n int) (int, hostos.Errno) {
	return a.S.readCapLocked(fd, mem, buf, n)
}

// WriteCap is the capability-buffer write.
func (a LockedAPI) WriteCap(fd int, mem *cheri.TMem, buf cheri.Cap, n int) (int, hostos.Errno) {
	return a.S.writeCapLocked(fd, mem, buf, n)
}

// Close shuts a descriptor down.
func (a LockedAPI) Close(fd int) hostos.Errno { return a.S.closeLocked(fd) }

// SendTo transmits one datagram.
func (a LockedAPI) SendTo(fd int, data []byte, ip IPv4Addr, port uint16) (int, hostos.Errno) {
	return a.S.sendToLocked(fd, data, ip, port)
}

// RecvFrom pops one datagram.
func (a LockedAPI) RecvFrom(fd int, dst []byte) (int, IPv4Addr, uint16, hostos.Errno) {
	return a.S.recvFromLocked(fd, dst)
}

// EpollCreate makes an epoll descriptor.
func (a LockedAPI) EpollCreate() int { return a.S.epollCreateLocked() }

// EpollCtl manipulates an interest set.
func (a LockedAPI) EpollCtl(epfd, op, fd int, events uint32) hostos.Errno {
	return a.S.epollCtlLocked(epfd, op, fd, events)
}

// EpollWait collects ready events.
func (a LockedAPI) EpollWait(epfd int, evs []Event) (int, hostos.Errno) {
	return a.S.epollWaitLocked(epfd, evs)
}
