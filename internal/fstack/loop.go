package fstack

import (
	"runtime"
	"sync/atomic"
)

// Loop is the F-Stack main loop: after an initialization phase, a
// poll-mode iteration runs forever — "(i) process the ring buffers of
// the DPDK Ethernet driver; and (ii) execute a user-defined function
// where calls to F-Stack API functions can be made" (§III-B).
type Loop struct {
	Stk *Stack
	// OnLoop is the user-defined function, called every iteration while
	// the stack mutex is held (the app and the stack share a compartment
	// in Baseline and Scenario 1). It may call the *Locked API variants
	// freely. Returning false stops Run.
	OnLoop func(now int64) bool
	// Yield inserts a scheduler yield between iterations. The paper's
	// testbed pins each busy loop to its own core; on a smaller host the
	// yield emulates that by letting the other compartments' loops run
	// every iteration instead of every preemption quantum.
	Yield bool

	iterations atomic.Uint64
	stopped    atomic.Bool
}

// RunOnce executes one locked iteration: drain RX rings, run protocol
// input and timers, flush TX, then the user callback.
func (l *Loop) RunOnce() bool {
	s := l.Stk
	s.mu.Lock()
	s.poll()
	cont := true
	if l.OnLoop != nil {
		cont = l.OnLoop(s.now())
	}
	s.mu.Unlock()
	l.iterations.Add(1)
	return cont
}

// Run spins until the callback returns false or Stop is called. This is
// the busy-polling DPDK main loop — it never sleeps, by design ("DPDK
// also operates in polling mode to reduce the latency caused by
// interrupt-triggered context switches", §II-C).
func (l *Loop) Run() {
	l.stopped.Store(false)
	for !l.stopped.Load() {
		if !l.RunOnce() {
			return
		}
		if l.Yield {
			runtime.Gosched()
		}
	}
}

// Stop makes Run return after the current iteration.
func (l *Loop) Stop() { l.stopped.Store(true) }

// NextDeadline reports the earliest virtual instant at which this
// loop's next iteration could do anything: a connection timer firing,
// a frame becoming harvestable, a serializer freeing up. A value <=
// now means the loop has work right now; math.MaxInt64 means it is
// fully quiescent. Event-driven drivers aggregate this over every loop
// (and the applications they host) to leap the virtual clock over
// iterations that would provably be no-ops.
func (l *Loop) NextDeadline(now int64) int64 {
	return l.Stk.NextDeadline(now)
}

// Iterations reports completed loop iterations.
func (l *Loop) Iterations() uint64 { return l.iterations.Load() }

// LockedAPI exposes the *Locked API variants to code that already holds
// the stack mutex (the OnLoop callback and Scenario 2's gate targets).
// It exists to make call sites explicit about their locking context.
type LockedAPI struct{ S *Stack }

// Locked returns the in-loop API view.
func (l *Loop) Locked() LockedAPI { return LockedAPI{S: l.Stk} }
