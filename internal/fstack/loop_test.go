package fstack

import (
	"sync"
	"testing"
)

func TestLoopRunOnceCountsIterations(t *testing.T) {
	e := newEnv(t, false)
	l := &Loop{Stk: e.stkA}
	calls := 0
	l.OnLoop = func(now int64) bool {
		calls++
		return calls < 5
	}
	for l.RunOnce() {
	}
	if calls != 5 {
		t.Fatalf("callback ran %d times", calls)
	}
	if l.Iterations() != 5 {
		t.Fatalf("iterations = %d", l.Iterations())
	}
}

func TestLoopStopTerminatesRun(t *testing.T) {
	e := newEnv(t, false)
	l := &Loop{Stk: e.stkA, Yield: true}
	var wg sync.WaitGroup
	wg.Add(1)
	started := make(chan struct{})
	l.OnLoop = func(now int64) bool {
		select {
		case <-started:
		default:
			close(started)
		}
		return true
	}
	go func() {
		defer wg.Done()
		l.Run()
	}()
	<-started
	l.Stop()
	wg.Wait() // must return
	if l.Iterations() == 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestLoopCallbackSeesMonotonicTime(t *testing.T) {
	e := newEnv(t, false)
	l := &Loop{Stk: e.stkA}
	var last int64 = -1
	ok := true
	l.OnLoop = func(now int64) bool {
		if now < last {
			ok = false
		}
		last = now
		return false
	}
	for i := 0; i < 10; i++ {
		l.RunOnce()
		e.clk.Advance(1000)
	}
	if !ok {
		t.Fatal("time went backwards inside the loop")
	}
}

func TestLockedAPIMatchesStackAPI(t *testing.T) {
	// The LockedAPI surface must behave identically to the exported
	// locking API for a basic socket round trip.
	e := newEnv(t, false)
	api := LockedAPI{S: e.stkA}
	e.stkA.Lock()
	fd, errno := api.Socket(SockStream)
	if errno != 0 {
		t.Fatal(errno)
	}
	if errno := api.Bind(fd, IPv4Addr{}, 8080); errno != 0 {
		t.Fatal(errno)
	}
	if errno := api.Listen(fd, 2); errno != 0 {
		t.Fatal(errno)
	}
	ep := api.EpollCreate()
	if errno := api.EpollCtl(ep, EpollCtlAdd, fd, EPOLLIN); errno != 0 {
		t.Fatal(errno)
	}
	var evs [2]Event
	if n, errno := api.EpollWait(ep, evs[:]); errno != 0 || n != 0 {
		t.Fatalf("wait: n=%d errno=%v", n, errno)
	}
	if errno := api.Close(fd); errno != 0 {
		t.Fatal(errno)
	}
	e.stkA.Unlock()
}
