package fstack

import (
	"io"

	"repro/internal/obs"
)

// TapDir tells a Tap which way a frame crossed the interface.
type TapDir int

const (
	// TapRx marks frames the stack received.
	TapRx TapDir = iota
	// TapTx marks frames the stack transmitted.
	TapTx
)

// Tap observes every frame entering or leaving a stack (tcpdump for the
// simulated world). Taps run under the stack mutex and must not call
// back into the stack.
type Tap interface {
	Frame(dir TapDir, tsNS int64, data []byte)
}

// SetTap installs (or, with nil, removes) the stack's frame observer.
func (s *Stack) SetTap(t Tap) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tap = t
}

// pcap format constants, kept here for the tests that parse captures.
// The writer itself lives in internal/obs (it was promoted from this
// package to serve link-level taps too); these mirror its header.
const (
	pcapMagic    = 0xa1b2c3d4
	pcapEthernet = 1
)

// PcapWriter adapts the shared capture writer (internal/obs) to the
// stack's Tap interface, so SetTap keeps producing libpcap files
// readable by tcpdump and Wireshark. It is safe for concurrent use
// (taps from multiple stacks may share one file).
type PcapWriter struct {
	*obs.PcapWriter
}

// NewPcapWriter writes the global header and returns the writer.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	pw, err := obs.NewPcapWriter(w)
	if err != nil {
		return nil, err
	}
	return &PcapWriter{pw}, nil
}

// Frame implements Tap: every observed frame becomes a capture record
// (both directions).
func (p *PcapWriter) Frame(_ TapDir, tsNS int64, data []byte) {
	_ = p.WritePacket(tsNS, data) // sticky error surfaces via Err
}

var _ Tap = (*PcapWriter)(nil)
