package fstack

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// TapDir tells a Tap which way a frame crossed the interface.
type TapDir int

const (
	// TapRx marks frames the stack received.
	TapRx TapDir = iota
	// TapTx marks frames the stack transmitted.
	TapTx
)

// Tap observes every frame entering or leaving a stack (tcpdump for the
// simulated world). Taps run under the stack mutex and must not call
// back into the stack.
type Tap interface {
	Frame(dir TapDir, tsNS int64, data []byte)
}

// SetTap installs (or, with nil, removes) the stack's frame observer.
func (s *Stack) SetTap(t Tap) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tap = t
}

// pcap file constants (libpcap classic format, microsecond timestamps).
const (
	pcapMagic    = 0xa1b2c3d4
	pcapVerMajor = 2
	pcapVerMinor = 4
	pcapSnaplen  = 65535
	pcapEthernet = 1
)

// PcapWriter streams frames into a libpcap capture readable by tcpdump
// and Wireshark. It is safe for concurrent use (taps from multiple
// stacks may share one file).
type PcapWriter struct {
	mu  sync.Mutex
	w   io.Writer
	err error
	n   int
}

// NewPcapWriter writes the global header and returns the writer.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVerMajor)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVerMinor)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:], pcapSnaplen)
	binary.LittleEndian.PutUint32(hdr[20:], pcapEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("fstack: pcap header: %w", err)
	}
	return &PcapWriter{w: w}, nil
}

// WritePacket appends one captured frame with the given timestamp.
func (p *PcapWriter) WritePacket(tsNS int64, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	n := len(data)
	if n > pcapSnaplen {
		n = pcapSnaplen
	}
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(tsNS/1e9))
	binary.LittleEndian.PutUint32(rec[4:], uint32(tsNS%1e9/1e3))
	binary.LittleEndian.PutUint32(rec[8:], uint32(n))
	binary.LittleEndian.PutUint32(rec[12:], uint32(len(data)))
	if _, err := p.w.Write(rec[:]); err != nil {
		p.err = err
		return err
	}
	if _, err := p.w.Write(data[:n]); err != nil {
		p.err = err
		return err
	}
	p.n++
	return nil
}

// Count returns the packets written so far.
func (p *PcapWriter) Count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Frame implements Tap: every observed frame becomes a capture record
// (both directions).
func (p *PcapWriter) Frame(_ TapDir, tsNS int64, data []byte) {
	_ = p.WritePacket(tsNS, data) // sticky error surfaces via Err
}

// Err reports the writer's sticky error.
func (p *PcapWriter) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

var _ Tap = (*PcapWriter)(nil)
