package fstack

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/hostos"
)

// parsePcap decodes a classic libpcap stream back into frames.
func parsePcap(t *testing.T, raw []byte) [][]byte {
	t.Helper()
	if len(raw) < 24 {
		t.Fatal("capture shorter than the global header")
	}
	if binary.LittleEndian.Uint32(raw) != pcapMagic {
		t.Fatalf("bad magic %#x", binary.LittleEndian.Uint32(raw))
	}
	if binary.LittleEndian.Uint32(raw[20:]) != pcapEthernet {
		t.Fatal("wrong link type")
	}
	var frames [][]byte
	off := 24
	for off < len(raw) {
		if off+16 > len(raw) {
			t.Fatal("truncated record header")
		}
		incl := int(binary.LittleEndian.Uint32(raw[off+8:]))
		orig := int(binary.LittleEndian.Uint32(raw[off+12:]))
		if incl > orig || off+16+incl > len(raw) {
			t.Fatal("corrupt record")
		}
		frames = append(frames, raw[off+16:off+16+incl])
		off += 16 + incl
	}
	return frames
}

func TestPcapWriterFormat(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(1_500_000_123, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(2_000_000_000, bytes.Repeat([]byte{0xAB}, 100)); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 2 || w.Err() != nil {
		t.Fatalf("count=%d err=%v", w.Count(), w.Err())
	}
	frames := parsePcap(t, buf.Bytes())
	if len(frames) != 2 || len(frames[0]) != 4 || len(frames[1]) != 100 {
		t.Fatalf("frames: %d", len(frames))
	}
	// Timestamp of the first record: 1 s, 500000 µs.
	raw := buf.Bytes()[24:]
	if binary.LittleEndian.Uint32(raw) != 1 || binary.LittleEndian.Uint32(raw[4:]) != 500000 {
		t.Fatal("timestamp encoding wrong")
	}
}

func TestStackTapCapturesTraffic(t *testing.T) {
	e := newEnv(t, false)
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e.stkA.SetTap(w)
	cfd, afd := e.connectPair(5001)
	msg := bytes.Repeat([]byte{0x33}, 4000)
	e.stkA.Write(cfd, msg)
	got := 0
	rd := make([]byte, 8192)
	e.pumpUntil(8000, "transfer", func() bool {
		n, errno := e.stkB.Read(afd, rd)
		if errno == hostos.OK {
			got += n
		}
		return got >= len(msg)
	})
	e.stkA.SetTap(nil)
	if w.Count() < 6 {
		t.Fatalf("capture too small: %d frames", w.Count())
	}
	frames := parsePcap(t, buf.Bytes())
	// The capture must contain the ARP exchange and parseable TCP/IPv4
	// frames carrying our payload bytes.
	sawARP, sawTCPData := false, false
	for _, f := range frames {
		eth, err := ParseEthHeader(f)
		if err != nil {
			t.Fatalf("unparseable captured frame: %v", err)
		}
		switch eth.Type {
		case EtherTypeARP:
			sawARP = true
		case EtherTypeIPv4:
			if bytes.Contains(f, bytes.Repeat([]byte{0x33}, 64)) {
				sawTCPData = true
			}
		}
	}
	if !sawARP || !sawTCPData {
		t.Fatalf("capture incomplete: arp=%v data=%v", sawARP, sawTCPData)
	}
	// After removing the tap, the count freezes.
	n := w.Count()
	e.tick()
	e.tick()
	if w.Count() != n {
		t.Fatal("tap still active after removal")
	}
}
