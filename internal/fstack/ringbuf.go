package fstack

import (
	"fmt"

	"repro/internal/cheri"
	"repro/internal/dpdk"
)

// sockBuf is a byte ring in stack segment memory, used for socket send
// and receive buffers. Copies in and out go through the segment, so in
// capability mode they are checked accesses — ff_write's measured work.
//
// Counters are absolute (never wrap in practice: uint64); for the send
// buffer the read counter is advanced by ACKs while peek serves
// (re)transmission, giving retention-until-acknowledged for free.
type sockBuf struct {
	seg    *dpdk.MemSeg
	base   uint64
	size   int // power of two
	r, w   uint64
	backed bool // segment memory reserved (false only under LazyBuffers)
}

// newSockBuf allocates a ring of the given power-of-two size.
func newSockBuf(seg *dpdk.MemSeg, size int) (*sockBuf, error) {
	if size <= 0 || size&(size-1) != 0 {
		return nil, fmt.Errorf("fstack: socket buffer size %d not a power of two", size)
	}
	base, err := seg.Alloc(uint64(size), 64)
	if err != nil {
		return nil, err
	}
	return &sockBuf{seg: seg, base: base, size: size, backed: true}, nil
}

// newLazySockBuf builds a ring whose segment memory is reserved only
// on first write (the LazyBuffers tuning knob). An idle accepted
// connection that never moves data then costs no segment bytes — the
// per-idle-conn figure Scenario 8 measures.
func newLazySockBuf(seg *dpdk.MemSeg, size int) (*sockBuf, error) {
	if size <= 0 || size&(size-1) != 0 {
		return nil, fmt.Errorf("fstack: socket buffer size %d not a power of two", size)
	}
	return &sockBuf{seg: seg, size: size}, nil
}

// back reserves the segment memory of a lazily-built ring. Idempotent;
// called from the write paths (reads of an unbacked ring see Len()==0
// and never touch the segment).
func (b *sockBuf) back() error {
	if b.backed {
		return nil
	}
	base, err := b.seg.Alloc(uint64(b.size), 64)
	if err != nil {
		return err
	}
	b.base = base
	b.backed = true
	return nil
}

// Len returns buffered bytes.
func (b *sockBuf) Len() int { return int(b.w - b.r) }

// Free returns remaining space.
func (b *sockBuf) Free() int { return b.size - b.Len() }

// writeFrom appends up to len(src) bytes from a plain slice, returning
// the count stored.
func (b *sockBuf) writeFrom(src []byte) (int, error) {
	if err := b.back(); err != nil {
		return 0, err
	}
	n := min(len(src), b.Free())
	written := 0
	for written < n {
		off := int(b.w % uint64(b.size))
		chunk := min(n-written, b.size-off)
		dst, err := b.seg.Slice(b.base+uint64(off), chunk)
		if err != nil {
			return written, err
		}
		copy(dst, src[written:written+chunk])
		b.w += uint64(chunk)
		written += chunk
	}
	return written, nil
}

// writeFromCap appends up to n bytes loaded through the caller's
// capability (the `const void * __capability buf` of ff_write). The
// load is checked against cap; the store is checked against the
// segment.
func (b *sockBuf) writeFromCap(mem *cheri.TMem, cap cheri.Cap, n int) (int, error) {
	if err := b.back(); err != nil {
		return 0, err
	}
	n = min(n, b.Free())
	written := 0
	addr := cap.Addr()
	for written < n {
		off := int(b.w % uint64(b.size))
		chunk := min(n-written, b.size-off)
		src, err := mem.CheckedSliceRO(cap.SetAddr(addr+uint64(written)), addr+uint64(written), chunk)
		if err != nil {
			return written, err
		}
		dst, err := b.seg.Slice(b.base+uint64(off), chunk)
		if err != nil {
			return written, err
		}
		copy(dst, src)
		b.w += uint64(chunk)
		written += chunk
	}
	return written, nil
}

// readInto consumes up to len(dst) bytes into a plain slice.
func (b *sockBuf) readInto(dst []byte) (int, error) {
	n := min(len(dst), b.Len())
	read := 0
	for read < n {
		off := int(b.r % uint64(b.size))
		chunk := min(n-read, b.size-off)
		src, err := b.seg.SliceRO(b.base+uint64(off), chunk)
		if err != nil {
			return read, err
		}
		copy(dst[read:read+chunk], src)
		b.r += uint64(chunk)
		read += chunk
	}
	return read, nil
}

// readIntoCap consumes up to n bytes, storing them through the caller's
// capability (ff_read with a __capability buffer).
func (b *sockBuf) readIntoCap(mem *cheri.TMem, cap cheri.Cap, n int) (int, error) {
	n = min(n, b.Len())
	read := 0
	addr := cap.Addr()
	for read < n {
		off := int(b.r % uint64(b.size))
		chunk := min(n-read, b.size-off)
		src, err := b.seg.SliceRO(b.base+uint64(off), chunk)
		if err != nil {
			return read, err
		}
		dst, err := mem.CheckedSlice(cap.SetAddr(addr+uint64(read)), addr+uint64(read), chunk)
		if err != nil {
			return read, err
		}
		copy(dst, src)
		b.r += uint64(chunk)
		read += chunk
	}
	return read, nil
}

// peek copies up to len(dst) bytes starting at logical offset off past
// the read point, without consuming (transmission and retransmission).
func (b *sockBuf) peek(off int, dst []byte) (int, error) {
	if off < 0 || off > b.Len() {
		return 0, fmt.Errorf("fstack: peek offset %d outside buffer of %d", off, b.Len())
	}
	n := min(len(dst), b.Len()-off)
	read := 0
	pos := b.r + uint64(off)
	for read < n {
		o := int(pos % uint64(b.size))
		chunk := min(n-read, b.size-o)
		src, err := b.seg.SliceRO(b.base+uint64(o), chunk)
		if err != nil {
			return read, err
		}
		copy(dst[read:read+chunk], src)
		pos += uint64(chunk)
		read += chunk
	}
	return read, nil
}

// consume drops n bytes from the front (ACK advancing snd.una).
func (b *sockBuf) consume(n int) error {
	if n < 0 || n > b.Len() {
		return fmt.Errorf("fstack: consume %d of %d buffered", n, b.Len())
	}
	b.r += uint64(n)
	return nil
}
