package fstack

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/cheri"
	"repro/internal/dpdk"
)

func testSeg(t *testing.T, capMode bool) (*dpdk.MemSeg, *cheri.TMem) {
	t.Helper()
	mem := cheri.NewTMem(4 << 20)
	var c cheri.Cap
	if capMode {
		var err error
		c, err = mem.Root().SetAddr(0x1000).SetBounds(2 << 20)
		if err != nil {
			t.Fatal(err)
		}
		c, err = c.AndPerms(cheri.PermData)
		if err != nil {
			t.Fatal(err)
		}
	}
	seg, err := dpdk.NewMemSeg(mem, 0x1000, 2<<20, c, capMode)
	if err != nil {
		t.Fatal(err)
	}
	return seg, mem
}

func TestSockBufBasics(t *testing.T) {
	seg, _ := testSeg(t, false)
	b, err := newSockBuf(seg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 || b.Free() != 1024 {
		t.Fatal("fresh buffer not empty")
	}
	n, err := b.writeFrom([]byte("hello world"))
	if err != nil || n != 11 {
		t.Fatalf("writeFrom: %d, %v", n, err)
	}
	dst := make([]byte, 5)
	if n, _ := b.readInto(dst); n != 5 || string(dst) != "hello" {
		t.Fatalf("readInto: %q", dst)
	}
	if b.Len() != 6 {
		t.Fatalf("len after partial read: %d", b.Len())
	}
}

func TestSockBufWrapAround(t *testing.T) {
	seg, _ := testSeg(t, false)
	b, _ := newSockBuf(seg, 64)
	// Fill, drain, refill across the wrap point repeatedly.
	pattern := []byte("0123456789abcdefghijklmnopqrstuv") // 32 bytes
	for round := 0; round < 20; round++ {
		n, err := b.writeFrom(pattern)
		if err != nil || n != len(pattern) {
			t.Fatalf("round %d write: %d %v", round, n, err)
		}
		got := make([]byte, len(pattern))
		if n, _ := b.readInto(got); n != len(pattern) {
			t.Fatalf("round %d read: %d", round, n)
		}
		if !bytes.Equal(got, pattern) {
			t.Fatalf("round %d corrupted: %q", round, got)
		}
	}
}

func TestSockBufFillsExactly(t *testing.T) {
	seg, _ := testSeg(t, false)
	b, _ := newSockBuf(seg, 128)
	big := make([]byte, 200)
	n, err := b.writeFrom(big)
	if err != nil || n != 128 {
		t.Fatalf("overfill stored %d, %v", n, err)
	}
	if b.Free() != 0 {
		t.Fatal("buffer should be full")
	}
	if n, _ := b.writeFrom([]byte{1}); n != 0 {
		t.Fatal("write into full buffer must store nothing")
	}
}

func TestSockBufPeekAndConsume(t *testing.T) {
	seg, _ := testSeg(t, false)
	b, _ := newSockBuf(seg, 256)
	b.writeFrom([]byte("abcdefghij"))
	dst := make([]byte, 4)
	if n, err := b.peek(2, dst); err != nil || n != 4 || string(dst) != "cdef" {
		t.Fatalf("peek: %q %v", dst[:n], err)
	}
	// Peek does not consume.
	if b.Len() != 10 {
		t.Fatal("peek consumed")
	}
	if err := b.consume(3); err != nil {
		t.Fatal(err)
	}
	if n, _ := b.peek(0, dst); n != 4 || string(dst) != "defg" {
		t.Fatalf("peek after consume: %q", dst)
	}
	if err := b.consume(100); err == nil {
		t.Fatal("over-consume accepted")
	}
	if _, err := b.peek(100, dst); err == nil {
		t.Fatal("peek beyond buffer accepted")
	}
}

func TestSockBufRejectsBadSize(t *testing.T) {
	seg, _ := testSeg(t, false)
	if _, err := newSockBuf(seg, 1000); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := newSockBuf(seg, 0); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestSockBufCapCopies(t *testing.T) {
	seg, mem := testSeg(t, true)
	b, err := newSockBuf(seg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// An "application buffer" elsewhere in memory with its own capability.
	const appBase = 0x300000
	appCap, err := mem.Root().SetAddr(appBase).SetBounds(64)
	if err != nil {
		t.Fatal(err)
	}
	appCap, _ = appCap.AndPerms(cheri.PermData)
	msg := []byte("capability transfer!")
	if err := mem.Store(mem.Root(), appBase, msg); err != nil {
		t.Fatal(err)
	}
	n, err := b.writeFromCap(mem, appCap, len(msg))
	if err != nil || n != len(msg) {
		t.Fatalf("writeFromCap: %d %v", n, err)
	}
	// Read back through a second capability window.
	outCap := appCap.SetAddr(appBase + 32)
	if _, err := b.readIntoCap(mem, outCap, len(msg)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := mem.Load(mem.Root(), appBase+32, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("cap round trip: %q", got)
	}
}

func TestSockBufCapOutOfBoundsFaults(t *testing.T) {
	seg, mem := testSeg(t, true)
	b, _ := newSockBuf(seg, 1024)
	small, err := mem.Root().SetAddr(0x300000).SetBounds(8)
	if err != nil {
		t.Fatal(err)
	}
	small, _ = small.AndPerms(cheri.PermData)
	// Asking to write 16 bytes through an 8-byte capability faults after
	// the in-bounds prefix.
	if _, err := b.writeFromCap(mem, small, 16); err == nil {
		t.Fatal("out-of-bounds capability load accepted")
	}
}

// Property: interleaved writes and reads preserve the byte stream (FIFO
// order, no loss, no duplication).
func TestQuickSockBufStreamIntegrity(t *testing.T) {
	seg, _ := testSeg(t, false)
	b, err := newSockBuf(seg, 4096)
	if err != nil {
		t.Fatal(err)
	}
	var expect []byte // modelled contents
	next := byte(0)
	f := func(ops []uint16) bool {
		for _, op := range ops {
			if op%2 == 0 { // write op%97 bytes
				n := int(op % 97)
				src := make([]byte, n)
				for i := range src {
					src[i] = next
					next++
				}
				w, err := b.writeFrom(src)
				if err != nil {
					return false
				}
				expect = append(expect, src[:w]...)
				// bytes beyond w are lost from the model: rewind next
				next -= byte(n - w)
			} else { // read op%73 bytes
				dst := make([]byte, int(op%73))
				r, err := b.readInto(dst)
				if err != nil {
					return false
				}
				if !bytes.Equal(dst[:r], expect[:r]) {
					return false
				}
				expect = expect[r:]
			}
			if b.Len() != len(expect) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
