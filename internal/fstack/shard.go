package fstack

import (
	"fmt"

	"repro/internal/dpdk"
	"repro/internal/hostos"
)

// This file is the multi-core answer to the single stack mutex the
// paper inherits from F-Stack (§III-A, Scenario 2): instead of one
// Stack serializing every compartment, a ShardedStack owns N Stack
// instances, each bound to one NIC RX/TX queue pair. The device's RSS
// classifier uses a symmetric flow hash, so both directions of a TCP
// connection arrive on the same queue and a connection's entire
// lifecycle — SYN, data, timers, FIN — runs on exactly one shard. The
// connection table, socket table, listeners and timers are all
// shard-local; only ARP/neighbor state is shared (read-mostly, and ARP
// traffic always lands on queue 0). Shards therefore never take each
// other's mutex on the datapath, which is what real F-Stack achieves by
// pinning one stack process per core.

// MultiQueueDevice is the N-queue packet I/O surface a ShardedStack
// drives. *dpdk.EthDev implements it directly.
type MultiQueueDevice interface {
	RxBurstQ(q int, out []*dpdk.Mbuf) int
	TxBurstQ(q int, bufs []*dpdk.Mbuf) int
	PollQ(q int)
	NumRxQueues() int
	MAC() [6]byte
	QueueStats(q int) dpdk.Stats
	// RxQueueOf is the steering oracle: which RX queue the device's RSS
	// hash sends an inbound packet with this flow tuple to.
	RxQueueOf(src, dst [4]byte, proto byte, sport, dport uint16) int
	// NextDeadline mirrors EthDevice's hook (compile-enforced for the
	// same reason: a forgetful wrapper must not silently read as
	// quiescent to the event-driven clock).
	NextDeadline(now int64) int64
}

// DeferredStepDevice is the optional no-step surface of a
// MultiQueueDevice: burst variants that move descriptors without
// advancing the simulated hardware, plus the explicit device step. A
// parallel shard runner needs it to run shards concurrently — stepping
// the device touches port state every queue shares, so the runner does
// it alone at the sequential phase boundaries while the concurrent
// bursts stay within their shard's own ring. *dpdk.EthDev implements
// it.
type DeferredStepDevice interface {
	RxBurstQNoStep(q int, out []*dpdk.Mbuf) int
	TxBurstQNoStep(q int, bufs []*dpdk.Mbuf) int
	PollQNoStep(q int)
	StepDevice()
}

// queueDev is one shard's single-queue view of a multi-queue device; it
// satisfies EthDevice so a Stack drives its queue pair unchanged. While
// the owning ShardedStack has deferred stepping on, every burst routes
// to the device's no-step variant.
type queueDev struct {
	ss  *ShardedStack
	dev MultiQueueDevice
	ns  DeferredStepDevice // non-nil iff dev supports deferred stepping
	q   int
}

func (d queueDev) RxBurst(out []*dpdk.Mbuf) int {
	if d.ns != nil && d.ss.deferSteps {
		return d.ns.RxBurstQNoStep(d.q, out)
	}
	return d.dev.RxBurstQ(d.q, out)
}

func (d queueDev) TxBurst(bufs []*dpdk.Mbuf) int {
	if d.ns != nil && d.ss.deferSteps {
		// The no-step burst can only reclaim descriptors the device has
		// already completed; without the inline device steps the
		// sequential path gets, a -parallel shard saturating its TX ring
		// would hit ring-full backpressure earlier than the sequential
		// run and the reports would diverge. On a short write, ask the
		// runner's stall handler to drain the wire for us (it does so
		// only once every lower-numbered shard has finished the instant,
		// preserving the sequential line-booking order) and retry until
		// the handler reports the line refused too — which is exactly
		// when the sequential stack would have seen the shortfall.
		n := d.ns.TxBurstQNoStep(d.q, bufs)
		for n < len(bufs) {
			h := d.ss.onTxStall
			if h == nil || !h(d.q) {
				break
			}
			m := d.ns.TxBurstQNoStep(d.q, bufs[n:])
			if m == 0 {
				break
			}
			n += m
		}
		return n
	}
	return d.dev.TxBurstQ(d.q, bufs)
}

func (d queueDev) Poll() {
	if d.ns != nil && d.ss.deferSteps {
		d.ns.PollQNoStep(d.q)
		return
	}
	d.dev.PollQ(d.q)
}

func (d queueDev) MAC() [6]byte      { return d.dev.MAC() }
func (d queueDev) Stats() dpdk.Stats { return d.dev.QueueStats(d.q) }

// NextDeadline delegates to the whole device. The port-wide answer is
// conservative — another queue's frame may wake this shard for a
// no-op iteration — which costs a visit, never a missed event.
func (d queueDev) NextDeadline(now int64) int64 { return d.dev.NextDeadline(now) }

// ShardedStack is N independent Stacks over one multi-queue device.
type ShardedStack struct {
	shards []*Stack
	loops  []*Loop
	devs   []MultiQueueDevice

	// deferSteps routes every shard's bursts to the device's no-step
	// variants (DeferredStepDevice); the parallel shard runner owns the
	// device steps then. Toggled only while no shard loop is running —
	// the runner's fork/join provides the ordering.
	deferSteps bool

	// onTxStall, when set, is consulted by a shard whose TX ring fills
	// while deferred stepping is on. It must drain completed frames onto
	// the wire (in a way that preserves the sequential booking order) and
	// report whether the stalled queue made progress; false means the
	// shard should surface the shortfall to its stack, exactly as the
	// sequential path would. Called from shard worker goroutines — the
	// handler owns its own synchronization.
	onTxStall func(q int) bool
}

// NewShardedStack builds n shards over the given segment, buffer pool
// and clock. Each shard gets a disjoint ephemeral-port range so two
// shards can never mint the same four-tuple.
func NewShardedStack(n int, seg *dpdk.MemSeg, pool *dpdk.Mempool, clk hostos.Clock) (*ShardedStack, error) {
	if n < 1 {
		return nil, fmt.Errorf("fstack: sharded stack needs at least one shard")
	}
	ss := &ShardedStack{}
	for i := 0; i < n; i++ {
		s := NewStack(seg, pool, clk)
		s.ephemeral = uint16(32768 + i*2048)
		ss.shards = append(ss.shards, s)
		ss.loops = append(ss.loops, &Loop{Stk: s})
	}
	return ss, nil
}

// AddNetIF binds a started multi-queue device: shard i drives queue
// pair i, and every shard shares one ARP cache for the interface. wrap,
// when non-nil, decorates each shard's queue view (a CPU model, a
// gated proxy, ...).
func (ss *ShardedStack) AddNetIF(name string, dev MultiQueueDevice, ip, mask IPv4Addr, wrap func(shard int, dev EthDevice) EthDevice) error {
	if dev.NumRxQueues() < len(ss.shards) {
		return fmt.Errorf("fstack: device has %d RX queues for %d shards", dev.NumRxQueues(), len(ss.shards))
	}
	arp := newARPCache()
	ns, _ := dev.(DeferredStepDevice)
	for i, s := range ss.shards {
		var ed EthDevice = queueDev{ss: ss, dev: dev, ns: ns, q: i}
		if wrap != nil {
			ed = wrap(i, ed)
		}
		nif := s.AddNetIF(name, ed, ip, mask)
		nif.arp = arp
	}
	ss.devs = append(ss.devs, dev)
	return nil
}

// SupportsDeferredSteps reports whether every bound device offers the
// no-step burst surface (DeferredStepDevice) a parallel shard runner
// needs. False with no device bound.
func (ss *ShardedStack) SupportsDeferredSteps() bool {
	if len(ss.devs) == 0 {
		return false
	}
	for _, d := range ss.devs {
		if _, ok := d.(DeferredStepDevice); !ok {
			return false
		}
	}
	return true
}

// SetDeferDeviceSteps switches every shard's bursts between the normal
// (self-stepping) and no-step device variants. Callers toggle it only
// from the sequential phases of a fork/join schedule, never while a
// shard loop runs.
func (ss *ShardedStack) SetDeferDeviceSteps(on bool) { ss.deferSteps = on }

// SetTxStallHandler installs (or clears, with nil) the deferred-mode
// TX ring-full handler. Set it before any deferred-stepping run and
// clear it when the runner shuts down; it is never consulted while
// deferred stepping is off.
func (ss *ShardedStack) SetTxStallHandler(h func(q int) bool) { ss.onTxStall = h }

// StepDevices advances every bound device once — the sequential phase
// boundary of the parallel shard runner's schedule.
func (ss *ShardedStack) StepDevices() {
	for _, d := range ss.devs {
		if ns, ok := d.(DeferredStepDevice); ok {
			ns.StepDevice()
		}
	}
}

// NumShards reports the shard count.
func (ss *ShardedStack) NumShards() int { return len(ss.shards) }

// Shard returns shard i's Stack.
func (ss *ShardedStack) Shard(i int) *Stack { return ss.shards[i] }

// Loops returns one main loop per shard (each would be pinned to its
// own core on real hardware).
func (ss *ShardedStack) Loops() []*Loop { return ss.loops }

// ShardStats returns shard i's counters.
func (ss *ShardedStack) ShardStats(i int) StackStats {
	s := ss.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Stats()
}

// Stats aggregates the counters over every shard.
func (ss *ShardedStack) Stats() StackStats {
	var total StackStats
	for i := range ss.shards {
		total.Add(ss.ShardStats(i))
	}
	return total
}

// ConnCount sums established-or-later connections over every shard.
func (ss *ShardedStack) ConnCount() int {
	n := 0
	for _, s := range ss.shards {
		n += s.ConnCount()
	}
	return n
}

// RetainedBytes sums the shards' deterministic connection-plane heap
// accounting (see Stack.RetainedBytes).
func (ss *ShardedStack) RetainedBytes() uint64 {
	var b uint64
	for _, s := range ss.shards {
		b += s.RetainedBytes()
	}
	return b
}

// AcceptQueueDepth sums not-yet-accepted connections over every shard.
func (ss *ShardedStack) AcceptQueueDepth() int {
	n := 0
	for _, s := range ss.shards {
		n += s.AcceptQueueDepth()
	}
	return n
}

// SetTCPTuning applies the TCP feature configuration to every shard
// (connections are shard-local, so the knob simply fans out).
func (ss *ShardedStack) SetTCPTuning(t TCPTuning) {
	for _, s := range ss.shards {
		s.SetTCPTuning(t)
	}
}

// localIPFor reports the interface address the stack would source
// packets to dst from.
func (s *Stack) localIPFor(dst IPv4Addr) IPv4Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	nif := s.nifForDst(dst)
	if nif == nil {
		return IPv4Addr{}
	}
	return nif.IP
}

// --- sharded application API ---

// sfKind distinguishes the logical descriptor flavors.
type sfKind int

const (
	sfSocket   sfKind = iota // created, not yet placed on a shard
	sfListener               // cloned across every shard
	sfConn                   // pinned to one shard
	sfEpoll                  // cloned across every shard
)

// shardedFD is one logical descriptor of the ShardedAPI.
type shardedFD struct {
	kind  sfKind
	typ   int
	shard int   // sfConn: owning shard
	fd    int   // sfConn: descriptor on that shard
	sub   []int // cloned kinds: descriptor per shard
	bound struct {
		ip   IPv4Addr
		port uint16
	}
}

// ShardedAPI is the application's view of a ShardedStack: the same ff_*
// surface as a single stack, with descriptors fanned out underneath.
// Listening sockets are cloned on every shard, so a SYN is accepted on
// whichever shard RSS steers it to; established connections are pinned
// to their shard; locally initiated connections pick their source port
// first, ask the device's steering oracle which queue the return
// traffic will hit, and are created on that shard. Calls lock only the
// shard(s) they touch.
type ShardedAPI struct {
	ss     *ShardedStack
	nextFD int
	fds    map[int]*shardedFD
	rev    []map[int]int // per shard: shard fd -> logical fd
	eph    uint16
	rr     int     // round-robin shard target for outbound connections
	tmp    []Event // EpollWait per-shard scratch, sized to the caller's buffer
}

// API returns a sharded application view. Like a single Stack's
// descriptor table it is not itself thread-safe: one application
// driver uses one ShardedAPI.
func (ss *ShardedStack) API() *ShardedAPI {
	rev := make([]map[int]int, len(ss.shards))
	for i := range rev {
		rev[i] = make(map[int]int)
	}
	return &ShardedAPI{ss: ss, nextFD: 3, fds: make(map[int]*shardedFD), rev: rev, eph: 40000}
}

// alloc registers a logical descriptor.
func (a *ShardedAPI) alloc(f *shardedFD) int {
	fd := a.nextFD
	a.nextFD++
	a.fds[fd] = f
	return fd
}

// Socket creates a descriptor. It exists on every shard until Listen or
// Connect decides whether it is cloned or pinned.
func (a *ShardedAPI) Socket(typ int) (int, hostos.Errno) {
	f := &shardedFD{kind: sfSocket, typ: typ, shard: -1, sub: make([]int, len(a.ss.shards))}
	for i, s := range a.ss.shards {
		fd, errno := s.Socket(typ)
		if errno != hostos.OK {
			for j := 0; j < i; j++ {
				a.ss.shards[j].Close(f.sub[j])
			}
			return -1, errno
		}
		f.sub[i] = fd
	}
	lfd := a.alloc(f)
	for i := range a.ss.shards {
		a.rev[i][f.sub[i]] = lfd
	}
	return lfd, hostos.OK
}

// Bind attaches a local address on every shard.
func (a *ShardedAPI) Bind(fd int, ip IPv4Addr, port uint16) hostos.Errno {
	f, ok := a.fds[fd]
	if !ok {
		return hostos.EBADF
	}
	if f.kind != sfSocket {
		return hostos.EINVAL
	}
	for i, s := range a.ss.shards {
		if errno := s.Bind(f.sub[i], ip, port); errno != hostos.OK {
			return errno
		}
	}
	f.bound.ip, f.bound.port = ip, port
	return hostos.OK
}

// Listen clones the listener across every shard.
func (a *ShardedAPI) Listen(fd, backlog int) hostos.Errno {
	f, ok := a.fds[fd]
	if !ok {
		return hostos.EBADF
	}
	if f.kind != sfSocket || f.typ != SockStream {
		return hostos.EINVAL
	}
	for i, s := range a.ss.shards {
		if errno := s.Listen(f.sub[i], backlog); errno != hostos.OK {
			return errno
		}
	}
	f.kind = sfListener
	return hostos.OK
}

// Accept dequeues an established connection from whichever shard has
// one; the returned descriptor is pinned to that shard.
func (a *ShardedAPI) Accept(fd int) (int, IPv4Addr, uint16, hostos.Errno) {
	f, ok := a.fds[fd]
	if !ok {
		return -1, IPv4Addr{}, 0, hostos.EBADF
	}
	if f.kind != sfListener {
		return -1, IPv4Addr{}, 0, hostos.EINVAL
	}
	for i, s := range a.ss.shards {
		nfd, ip, port, errno := s.Accept(f.sub[i])
		if errno == hostos.EAGAIN {
			continue
		}
		if errno != hostos.OK {
			return -1, IPv4Addr{}, 0, errno
		}
		lfd := a.alloc(&shardedFD{kind: sfConn, typ: SockStream, shard: i, fd: nfd})
		a.rev[i][nfd] = lfd
		return lfd, ip, port, hostos.OK
	}
	return -1, IPv4Addr{}, 0, hostos.EAGAIN
}

// Connect starts an active open on the shard the flow's return traffic
// will reach. An unbound socket gets its source port picked by the
// steering oracle so consecutive connections round-robin the shards
// (the ephemeral-port engineering sharded clients do in practice); an
// explicitly bound port pins the connection to wherever that tuple
// actually hashes. Either way the clones on the other shards are
// discarded and inbound segments need no cross-shard hand-off.
func (a *ShardedAPI) Connect(fd int, ip IPv4Addr, port uint16) hostos.Errno {
	f, ok := a.fds[fd]
	if !ok {
		return hostos.EBADF
	}
	if f.kind != sfSocket || f.typ != SockStream {
		return hostos.EINVAL
	}
	if len(a.ss.devs) == 0 {
		return hostos.EINVAL
	}
	localIP := f.bound.ip
	if localIP == (IPv4Addr{}) {
		localIP = a.ss.shards[0].localIPFor(ip)
	}
	dev := a.ss.devs[0]
	sport := f.bound.port
	if sport == 0 {
		// Inbound segments of this flow will carry src=(ip,port),
		// dst=(local,sport): walk the ephemeral range until the tuple
		// hashes to the round-robin target shard.
		want := a.rr % len(a.ss.shards)
		a.rr++
		for try := 0; try < 512; try++ {
			p := a.eph
			a.eph++
			if a.eph < 40000 {
				a.eph = 40000
			}
			if dev.RxQueueOf(ip, localIP, ProtoTCP, port, p) == want {
				sport = p
				break
			}
		}
		if sport == 0 { // no hit in the window: take the next port as-is
			sport = a.eph
			a.eph++
		}
	}
	shard := dev.RxQueueOf(ip, localIP, ProtoTCP, port, sport)
	s := a.ss.shards[shard]
	sfd := f.sub[shard]
	// Bind and connect on the target shard BEFORE discarding the other
	// shards' clones: on failure the logical descriptor stays a plain
	// socket with every clone intact, so the caller can retry or close
	// it normally.
	if f.bound.port == 0 {
		if errno := s.Bind(sfd, f.bound.ip, sport); errno != hostos.OK {
			return errno
		}
	}
	errno := s.Connect(sfd, ip, port)
	if errno != hostos.OK && errno != hostos.EINPROGRESS {
		return errno
	}
	for i, other := range a.ss.shards {
		if i == shard {
			continue
		}
		other.Close(f.sub[i])
		delete(a.rev[i], f.sub[i])
	}
	f.kind, f.shard, f.fd, f.sub = sfConn, shard, sfd, nil
	return errno
}

// conn resolves a pinned descriptor.
func (a *ShardedAPI) conn(fd int) (*Stack, *shardedFD, hostos.Errno) {
	f, ok := a.fds[fd]
	if !ok {
		return nil, nil, hostos.EBADF
	}
	if f.kind != sfConn {
		return nil, nil, hostos.ENOTCONN
	}
	return a.ss.shards[f.shard], f, hostos.OK
}

// Read consumes received bytes from the connection's shard.
func (a *ShardedAPI) Read(fd int, dst []byte) (int, hostos.Errno) {
	s, f, errno := a.conn(fd)
	if errno != hostos.OK {
		return -1, errno
	}
	return s.Read(f.fd, dst)
}

// Write stores bytes for transmission on the connection's shard.
func (a *ShardedAPI) Write(fd int, src []byte) (int, hostos.Errno) {
	s, f, errno := a.conn(fd)
	if errno != hostos.OK {
		return -1, errno
	}
	return s.Write(f.fd, src)
}

// SendTo transmits one datagram. A bound UDP socket stays cloned across
// every shard (Bind fans out), so datagrams are received wherever RSS
// steers them; transmission goes through the shard whose RX queue the
// flow's return traffic will hit, keeping both directions of a
// query/answer exchange on one shard the way pinned TCP connections are.
func (a *ShardedAPI) SendTo(fd int, data []byte, ip IPv4Addr, port uint16) (int, hostos.Errno) {
	f, ok := a.fds[fd]
	if !ok {
		return -1, hostos.EBADF
	}
	if f.kind != sfSocket || f.typ != SockDgram {
		return -1, hostos.EINVAL
	}
	if f.bound.port == 0 {
		// Auto-bind one ephemeral port on every shard, like a single
		// stack's SendTo: answers are then queued on whichever shard RSS
		// picks and RecvFrom scans them all.
		p := a.eph
		a.eph++
		if a.eph < 40000 {
			a.eph = 40000
		}
		if errno := a.Bind(fd, IPv4Addr{}, p); errno != hostos.OK {
			return -1, errno
		}
	}
	shard := 0
	if len(a.ss.devs) > 0 {
		localIP := f.bound.ip
		if localIP == (IPv4Addr{}) {
			localIP = a.ss.shards[0].localIPFor(ip)
		}
		shard = a.ss.devs[0].RxQueueOf(ip, localIP, ProtoUDP, port, f.bound.port)
	}
	return a.ss.shards[shard].SendTo(f.sub[shard], data, ip, port)
}

// RecvFrom pops the oldest queued datagram, scanning shards in shard
// order (deterministic under the fixed RSS steering).
func (a *ShardedAPI) RecvFrom(fd int, dst []byte) (int, IPv4Addr, uint16, hostos.Errno) {
	f, ok := a.fds[fd]
	if !ok {
		return -1, IPv4Addr{}, 0, hostos.EBADF
	}
	if f.kind != sfSocket || f.typ != SockDgram || f.bound.port == 0 {
		return -1, IPv4Addr{}, 0, hostos.EINVAL
	}
	for i, s := range a.ss.shards {
		n, ip, port, errno := s.RecvFrom(f.sub[i], dst)
		if errno == hostos.OK {
			return n, ip, port, hostos.OK
		}
		if errno != hostos.EAGAIN {
			return -1, IPv4Addr{}, 0, errno
		}
	}
	return -1, IPv4Addr{}, 0, hostos.EAGAIN
}

// Close shuts the logical descriptor down on every shard that holds a
// piece of it.
func (a *ShardedAPI) Close(fd int) hostos.Errno {
	f, ok := a.fds[fd]
	if !ok {
		return hostos.EBADF
	}
	delete(a.fds, fd)
	switch f.kind {
	case sfConn:
		delete(a.rev[f.shard], f.fd)
		return a.ss.shards[f.shard].Close(f.fd)
	default:
		var first hostos.Errno = hostos.OK
		for i, s := range a.ss.shards {
			delete(a.rev[i], f.sub[i])
			if errno := s.Close(f.sub[i]); errno != hostos.OK && first == hostos.OK {
				first = errno
			}
		}
		return first
	}
}

// EpollCreate makes a logical epoll descriptor cloned on every shard.
func (a *ShardedAPI) EpollCreate() int {
	f := &shardedFD{kind: sfEpoll, shard: -1, sub: make([]int, len(a.ss.shards))}
	for i, s := range a.ss.shards {
		f.sub[i] = s.EpollCreate()
	}
	return a.alloc(f)
}

// EpollCtl manipulates the interest set: pinned targets on their shard,
// cloned targets on every shard.
func (a *ShardedAPI) EpollCtl(epfd, op, fd int, events uint32) hostos.Errno {
	ep, ok := a.fds[epfd]
	if !ok || ep.kind != sfEpoll {
		return hostos.EBADF
	}
	f, ok := a.fds[fd]
	if !ok {
		return hostos.EBADF
	}
	if f.kind == sfConn {
		return a.ss.shards[f.shard].EpollCtl(ep.sub[f.shard], op, f.fd, events)
	}
	for i, s := range a.ss.shards {
		if errno := s.EpollCtl(ep.sub[i], op, f.sub[i], events); errno != hostos.OK {
			return errno
		}
	}
	return hostos.OK
}

// EpollWait collects ready events across every shard, translated back
// to logical descriptors.
func (a *ShardedAPI) EpollWait(epfd int, evs []Event) (int, hostos.Errno) {
	ep, ok := a.fds[epfd]
	if !ok || ep.kind != sfEpoll {
		return -1, hostos.EBADF
	}
	// The scratch buffer matches the caller's: a smaller one would
	// truncate a shard's ready set to a map-ordered (random) subset and
	// make busy runs nondeterministic.
	if len(a.tmp) < len(evs) {
		a.tmp = make([]Event, len(evs))
	}
	n := 0
	for i, s := range a.ss.shards {
		if n >= len(evs) {
			break
		}
		k, errno := s.EpollWait(ep.sub[i], a.tmp[:len(evs)])
		if errno != hostos.OK {
			return -1, errno
		}
		for j := 0; j < k && n < len(evs); j++ {
			lfd, ok := a.rev[i][a.tmp[j].FD]
			if !ok {
				continue // descriptor raced with Close
			}
			evs[n] = Event{FD: lfd, Events: a.tmp[j].Events}
			n++
		}
	}
	return n, hostos.OK
}

// ShardOf reports which shard a pinned descriptor lives on (-1 for
// cloned or unplaced descriptors) — a diagnostics and testing hook.
func (a *ShardedAPI) ShardOf(fd int) int {
	if f, ok := a.fds[fd]; ok {
		return f.shard
	}
	return -1
}
