package fstack

import (
	"repro/internal/cheri"
	"repro/internal/hostos"
	"repro/internal/obs"
)

// Socket types (ff_socket's type argument).
const (
	SockStream = 1
	SockDgram  = 2
)

// listener is a passive TCP socket's accept machinery. halfOpen counts
// this listener's SYN-cache entries; pending is the accept queue, run
// as a head-indexed ring over one slice so steady-state churn neither
// allocates nor shifts elements.
type listener struct {
	ep       tcpEndpoint
	backlog  int
	halfOpen int
	pending  []*tcpConn // established, awaiting Accept
	head     int        // index of the oldest pending conn

	// err is latched when the stack crashes under the listener
	// (ENETDOWN): Accept returns it instead of EAGAIN, telling a
	// supervised server to rebuild its socket from scratch.
	err hostos.Errno
}

// pendingCount is the accept-queue depth.
func (l *listener) pendingCount() int { return len(l.pending) - l.head }

// pushPending enqueues an established connection for Accept.
func (l *listener) pushPending(c *tcpConn) {
	c.inPending = true
	l.pending = append(l.pending, c)
}

// popPending dequeues the oldest pending connection, recycling the
// slice's capacity whenever the queue drains.
func (l *listener) popPending() *tcpConn {
	c := l.pending[l.head]
	l.pending[l.head] = nil
	l.head++
	if l.head == len(l.pending) {
		l.pending = l.pending[:0]
		l.head = 0
	}
	c.inPending = false
	return c
}

// dgram is one queued UDP datagram.
type dgram struct {
	src  tcpEndpoint
	data []byte // pooled buffer (udpPayloadMax cap), returned on pop
}

// udpQueueMax bounds the per-socket datagram queue.
const udpQueueMax = 256

// udpPayloadMax is the largest UDP payload the stack accepts or sends
// (no IP fragmentation), and the capacity of every pooled dgram buffer.
const udpPayloadMax = MTU - IPv4HeaderLen - UDPHeaderLen

// udpSock is a bound UDP endpoint. The datagram queue is a head-indexed
// ring like listener.pending: popped slots are cleared and the backing
// array is reused once drained, so a steady query/answer exchange never
// regrows it.
type udpSock struct {
	ep   tcpEndpoint
	q    []dgram
	head int

	// err is latched when the stack crashes under the binding
	// (ENETDOWN); SendTo/RecvFrom return it until the fd is closed.
	err hostos.Errno
}

func (u *udpSock) queued() int { return len(u.q) - u.head }

func (u *udpSock) pushDgram(d dgram) { u.q = append(u.q, d) }

// popDgram removes the oldest datagram. Caller must check queued() > 0
// and recycle d.data via freeDgramBuf when done with it.
func (u *udpSock) popDgram() dgram {
	d := u.q[u.head]
	u.q[u.head] = dgram{}
	u.head++
	if u.head == len(u.q) {
		u.q = u.q[:0]
		u.head = 0
	}
	return d
}

// allocDgramBuf takes a payload buffer off the arena (or allocates one
// at full capacity, so it is reusable for any datagram size).
func (s *Stack) allocDgramBuf() []byte {
	if n := len(s.dgramFree); n > 0 {
		b := s.dgramFree[n-1]
		s.dgramFree[n-1] = nil
		s.dgramFree = s.dgramFree[:n-1]
		return b
	}
	return make([]byte, 0, udpPayloadMax)
}

func (s *Stack) freeDgramBuf(b []byte) {
	s.dgramFree = append(s.dgramFree, b[:0])
}

// socket is one file descriptor.
type socket struct {
	fd  int
	typ int
	stk *Stack

	bound tcpEndpoint
	conn  *tcpConn  // stream, after connect/accept
	lst   *listener // stream, after listen
	udp   *udpSock  // dgram, after bind
}

// The ff_* API. All calls are non-blocking and must run under the stack
// mutex; the exported wrappers lock it (per-call), mirroring F-Stack's
// serialization against the main loop.

// Socket creates a descriptor of the given type.
func (s *Stack) Socket(typ int) (int, hostos.Errno) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.socketLocked(typ)
}

func (s *Stack) socketLocked(typ int) (int, hostos.Errno) {
	if typ != SockStream && typ != SockDgram {
		return -1, hostos.EINVAL
	}
	fd := s.nextFD
	s.nextFD++
	sk := s.allocSocket()
	sk.fd, sk.typ = fd, typ
	s.socks[fd] = sk
	return fd, hostos.OK
}

// allocSocket takes a socket struct off the arena (or allocates one),
// reset to the zero state with stk set.
func (s *Stack) allocSocket() *socket {
	if n := len(s.sockFree); n > 0 {
		sk := s.sockFree[n-1]
		s.sockFree[n-1] = nil
		s.sockFree = s.sockFree[:n-1]
		*sk = socket{stk: s}
		return sk
	}
	return &socket{stk: s}
}

// Bind attaches a local address. A zero IP binds all interfaces.
func (s *Stack) Bind(fd int, ip IPv4Addr, port uint16) hostos.Errno {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bindLocked(fd, ip, port)
}

func (s *Stack) bindLocked(fd int, ip IPv4Addr, port uint16) hostos.Errno {
	sk, ok := s.socks[fd]
	if !ok {
		return hostos.EBADF
	}
	if sk.bound.Port != 0 {
		return hostos.EINVAL
	}
	if ip != (IPv4Addr{}) && s.nifByIP(ip) == nil {
		return hostos.EINVAL
	}
	ep := tcpEndpoint{IP: ip, Port: port}
	switch sk.typ {
	case SockStream:
		if _, dup := s.listeners[ep]; dup {
			return hostos.EADDRINUSE
		}
	case SockDgram:
		if _, dup := s.udps[ep]; dup {
			return hostos.EADDRINUSE
		}
		sk.udp = &udpSock{ep: ep}
		s.udps[ep] = sk.udp
	}
	sk.bound = ep
	return hostos.OK
}

// Listen makes a bound stream socket passive.
func (s *Stack) Listen(fd, backlog int) hostos.Errno {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.listenLocked(fd, backlog)
}

func (s *Stack) listenLocked(fd, backlog int) hostos.Errno {
	sk, ok := s.socks[fd]
	if !ok {
		return hostos.EBADF
	}
	if sk.typ != SockStream || sk.bound.Port == 0 || sk.lst != nil || sk.conn != nil {
		return hostos.EINVAL
	}
	if backlog < 1 {
		backlog = 1
	}
	sk.lst = &listener{ep: sk.bound, backlog: backlog}
	s.listeners[sk.bound] = sk.lst
	return hostos.OK
}

// Accept takes one established connection off the listen queue,
// returning its new descriptor and the peer address. EAGAIN when none
// is ready.
func (s *Stack) Accept(fd int) (int, IPv4Addr, uint16, hostos.Errno) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acceptLocked(fd)
}

func (s *Stack) acceptLocked(fd int) (int, IPv4Addr, uint16, hostos.Errno) {
	sk, ok := s.socks[fd]
	if !ok {
		return -1, IPv4Addr{}, 0, hostos.EBADF
	}
	if sk.lst == nil {
		return -1, IPv4Addr{}, 0, hostos.EINVAL
	}
	if sk.lst.err != hostos.OK {
		return -1, IPv4Addr{}, 0, sk.lst.err
	}
	if sk.lst.pendingCount() == 0 {
		return -1, IPv4Addr{}, 0, hostos.EAGAIN
	}
	c := sk.lst.popPending()
	nfd := s.nextFD
	s.nextFD++
	nsk := s.allocSocket()
	nsk.fd, nsk.typ, nsk.conn, nsk.bound = nfd, SockStream, c, c.tuple.local
	c.sk = nsk
	s.socks[nfd] = nsk
	return nfd, c.tuple.remote.IP, c.tuple.remote.Port, hostos.OK
}

// Connect starts an active open. It returns EINPROGRESS; completion is
// reported by epoll writability, as with a non-blocking BSD socket.
func (s *Stack) Connect(fd int, ip IPv4Addr, port uint16) hostos.Errno {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.connectLocked(fd, ip, port)
}

func (s *Stack) connectLocked(fd int, ip IPv4Addr, port uint16) hostos.Errno {
	sk, ok := s.socks[fd]
	if !ok {
		return hostos.EBADF
	}
	if sk.typ != SockStream || sk.conn != nil || sk.lst != nil {
		return hostos.EISCONN
	}
	nif := s.nifForDst(ip)
	if nif == nil {
		return hostos.EINVAL
	}
	local := sk.bound
	if local.IP == (IPv4Addr{}) {
		local.IP = nif.IP
	}
	if local.Port == 0 {
		local.Port = s.allocEphemeral()
		if local.Port == 0 {
			return hostos.EADDRNOTAVAIL
		}
	}
	tuple := fourTuple{local: local, remote: tcpEndpoint{IP: ip, Port: port}}
	if old, dup := s.conns[tuple]; dup {
		if old.state != tcpTimeWait {
			return hostos.EADDRINUSE
		}
		// TIME_WAIT reuse on active open: the old incarnation only
		// waits out 2MSL to absorb stray segments; a fresh outgoing
		// connection may take the tuple over immediately (the new ISS
		// is far from the old sequence space).
		s.stats.TimeWaitReuses++
		old.setState(tcpClosed)
		s.removeConn(old)
	}
	c, err := s.newTCPConn(nif, tuple)
	if err != nil {
		return hostos.ENOMEM
	}
	iss := s.iss()
	c.sndUna, c.sndNxt, c.sndMax = iss, iss+1, iss+1
	c.setState(tcpSynSent)
	s.addConn(tuple, c)
	sk.conn = c
	sk.bound = local
	c.sk = sk
	c.sendSegment(TCPSyn, iss, 0, true)
	c.armRTO()
	return hostos.EINPROGRESS
}

// allocEphemeral hands out local ports, walking from the last hand-out
// with the per-port refcounts deciding availability — O(1) against the
// connection count. 0 means the whole range is in use
// (EADDRNOTAVAIL).
func (s *Stack) allocEphemeral() uint16 {
	for tries := 0; tries < 65536-ephemeralBase; tries++ {
		s.ephemeral++
		if s.ephemeral < ephemeralBase {
			s.ephemeral = ephemeralBase
		}
		if s.portRefs == nil || s.portRefs[s.ephemeral-ephemeralBase] == 0 {
			return s.ephemeral
		}
	}
	return 0
}

// connFor returns the stream connection behind fd.
func (s *Stack) connFor(fd int) (*socket, *tcpConn, hostos.Errno) {
	sk, ok := s.socks[fd]
	if !ok {
		return nil, nil, hostos.EBADF
	}
	if sk.typ != SockStream || sk.conn == nil {
		return sk, nil, hostos.ENOTCONN
	}
	return sk, sk.conn, hostos.OK
}

// Write copies from a plain byte slice into the socket send buffer
// (the Baseline's ff_write). Partial writes return the stored count;
// a full buffer returns EAGAIN.
func (s *Stack) Write(fd int, src []byte) (int, hostos.Errno) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeLocked(fd, src)
}

func (s *Stack) writeLocked(fd int, src []byte) (int, hostos.Errno) {
	_, c, errno := s.connFor(fd)
	if errno != hostos.OK {
		return -1, errno
	}
	if errno := writableState(c); errno != hostos.OK {
		return -1, errno
	}
	n, err := c.sndBuf.writeFrom(src)
	if err != nil {
		return -1, hostos.EFAULT
	}
	if n == 0 {
		return -1, hostos.EAGAIN
	}
	c.output()
	return n, hostos.OK
}

// WriteCap is the CHERI ff_write: the source buffer arrives as a
// capability (`const void * __capability buf`, §III-B) and every load
// from it is checked.
func (s *Stack) WriteCap(fd int, mem *cheri.TMem, buf cheri.Cap, n int) (int, hostos.Errno) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeCapLocked(fd, mem, buf, n)
}

func (s *Stack) writeCapLocked(fd int, mem *cheri.TMem, buf cheri.Cap, n int) (int, hostos.Errno) {
	_, c, errno := s.connFor(fd)
	if errno != hostos.OK {
		return -1, errno
	}
	if errno := writableState(c); errno != hostos.OK {
		return -1, errno
	}
	written, err := c.sndBuf.writeFromCap(mem, buf, n)
	if err != nil {
		return -1, hostos.EFAULT
	}
	if written == 0 {
		return -1, hostos.EAGAIN
	}
	c.output()
	return written, hostos.OK
}

// writableState maps connection state to a write errno.
func writableState(c *tcpConn) hostos.Errno {
	if c.sockErr != hostos.OK {
		return c.sockErr
	}
	switch c.state {
	case tcpEstablished, tcpCloseWait:
		return hostos.OK
	case tcpSynSent, tcpSynReceived:
		return hostos.EAGAIN
	default:
		return hostos.EPIPE
	}
}

// Read consumes received bytes into a plain slice. Returns 0 at EOF
// (peer FIN drained), EAGAIN when no data is buffered.
func (s *Stack) Read(fd int, dst []byte) (int, hostos.Errno) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readLocked(fd, dst)
}

func (s *Stack) readLocked(fd int, dst []byte) (int, hostos.Errno) {
	_, c, errno := s.connFor(fd)
	if errno != hostos.OK {
		return -1, errno
	}
	if c.rcvBuf.Len() == 0 {
		switch {
		case c.sockErr != hostos.OK:
			return -1, c.sockErr
		case c.finRcvd:
			return 0, hostos.OK // EOF
		case c.state == tcpSynSent || c.state == tcpSynReceived:
			return -1, hostos.EAGAIN
		case c.state == tcpClosed:
			return -1, hostos.ENOTCONN
		default:
			return -1, hostos.EAGAIN
		}
	}
	n, err := c.rcvBuf.readInto(dst)
	if err != nil {
		return -1, hostos.EFAULT
	}
	s.noteReadDrain(c)
	return n, hostos.OK
}

// noteReadDrain runs after an application read freed receive-buffer
// space: if the drain re-opens a window we advertised as (near) zero,
// the next poll's visit pass will send the window update — flag that
// pending work so the event-driven driver visits that iteration
// instead of leaping over it to the peer's (much later) persist probe,
// and put the connection in that poll's visit set.
func (s *Stack) noteReadDrain(c *tcpConn) {
	if c.needsWindowUpdate() {
		s.wantPoll = true
		s.markReady(c)
	}
}

// ReadCap is the CHERI ff_read: stores into the caller's capability
// buffer are checked.
func (s *Stack) ReadCap(fd int, mem *cheri.TMem, buf cheri.Cap, n int) (int, hostos.Errno) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readCapLocked(fd, mem, buf, n)
}

func (s *Stack) readCapLocked(fd int, mem *cheri.TMem, buf cheri.Cap, n int) (int, hostos.Errno) {
	_, c, errno := s.connFor(fd)
	if errno != hostos.OK {
		return -1, errno
	}
	if c.rcvBuf.Len() == 0 {
		switch {
		case c.sockErr != hostos.OK:
			return -1, c.sockErr
		case c.finRcvd:
			return 0, hostos.OK
		default:
			return -1, hostos.EAGAIN
		}
	}
	read, err := c.rcvBuf.readIntoCap(mem, buf, n)
	if err != nil {
		return -1, hostos.EFAULT
	}
	s.noteReadDrain(c)
	return read, hostos.OK
}

// Close shuts a descriptor down: streams FIN, listeners stop, datagram
// sockets unbind.
func (s *Stack) Close(fd int) hostos.Errno {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeLocked(fd)
}

func (s *Stack) closeLocked(fd int) hostos.Errno {
	sk, ok := s.socks[fd]
	if !ok {
		return hostos.EBADF
	}
	delete(s.socks, fd)
	for _, ep := range s.epolls {
		delete(ep.interest, fd)
	}
	switch {
	case sk.lst != nil:
		delete(s.listeners, sk.bound)
		for _, c := range sk.lst.pending[sk.lst.head:] {
			c.sendRST()
			c.abort(hostos.ECONNRESET)
			c.inPending = false
			s.maybeRecycleConn(c)
		}
	case sk.conn != nil:
		c := sk.conn
		if c.state == tcpEstablished || c.state == tcpCloseWait || c.state == tcpSynReceived {
			c.finQueued = true
			c.output()
		} else if c.state == tcpSynSent {
			c.abort(hostos.ECONNRESET)
		}
		// The application can no longer reach the connection: drop the
		// back-reference so the conn struct is recyclable once the
		// protocol is done with it (it may already be).
		c.sk = nil
		s.maybeRecycleConn(c)
	case sk.udp != nil:
		for sk.udp.queued() > 0 {
			s.freeDgramBuf(sk.udp.popDgram().data)
		}
		delete(s.udps, sk.udp.ep)
	}
	s.sockFree = append(s.sockFree, sk)
	return hostos.OK
}

// SendTo transmits one UDP datagram.
func (s *Stack) SendTo(fd int, data []byte, ip IPv4Addr, port uint16) (int, hostos.Errno) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sendToLocked(fd, data, ip, port)
}

func (s *Stack) sendToLocked(fd int, data []byte, ip IPv4Addr, port uint16) (int, hostos.Errno) {
	sk, ok := s.socks[fd]
	if !ok {
		return -1, hostos.EBADF
	}
	if sk.typ != SockDgram {
		return -1, hostos.EINVAL
	}
	if len(data) > udpPayloadMax {
		return -1, hostos.EMSGSIZE
	}
	if sk.udp != nil && sk.udp.err != hostos.OK {
		return -1, sk.udp.err
	}
	if sk.udp == nil {
		// Auto-bind an ephemeral port.
		if errno := s.bindLocked(fd, IPv4Addr{}, s.allocEphemeral()); errno != hostos.OK {
			return -1, errno
		}
	}
	nif := s.nifForDst(ip)
	if nif == nil {
		return -1, hostos.EINVAL
	}
	segLen := UDPHeaderLen + len(data)
	m, frame := s.txAlloc(nif, IPv4HeaderLen+segLen)
	if m == nil {
		return -1, hostos.EAGAIN
	}
	seg := frame[EthHeaderLen+IPv4HeaderLen:]
	copy(seg[UDPHeaderLen:], data)
	PutUDPHeader(seg, UDPHeader{
		SrcPort: sk.bound.Port,
		DstPort: port,
		Length:  uint16(segLen),
	}, nif.IP, ip)
	if !s.sendIPv4(nif, m, frame, ip, ProtoUDP, segLen) {
		return -1, hostos.EAGAIN
	}
	return len(data), hostos.OK
}

// RecvFrom pops one queued datagram.
func (s *Stack) RecvFrom(fd int, dst []byte) (int, IPv4Addr, uint16, hostos.Errno) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recvFromLocked(fd, dst)
}

func (s *Stack) recvFromLocked(fd int, dst []byte) (int, IPv4Addr, uint16, hostos.Errno) {
	sk, ok := s.socks[fd]
	if !ok {
		return -1, IPv4Addr{}, 0, hostos.EBADF
	}
	if sk.typ != SockDgram || sk.udp == nil {
		return -1, IPv4Addr{}, 0, hostos.EINVAL
	}
	if sk.udp.err != hostos.OK {
		return -1, IPv4Addr{}, 0, sk.udp.err
	}
	if sk.udp.queued() == 0 {
		return -1, IPv4Addr{}, 0, hostos.EAGAIN
	}
	d := sk.udp.popDgram()
	n := copy(dst, d.data)
	s.freeDgramBuf(d.data)
	return n, d.src.IP, d.src.Port, hostos.OK
}

// inputUDP queues a datagram on its bound socket.
func (s *Stack) inputUDP(nif *NetIF, ip IPv4Header, seg []byte) {
	h, err := ParseUDPHeader(seg, ip.Src, ip.Dst)
	if err != nil {
		s.stats.RxDropped++
		return
	}
	u, ok := s.udps[tcpEndpoint{IP: ip.Dst, Port: h.DstPort}]
	if !ok {
		u, ok = s.udps[tcpEndpoint{Port: h.DstPort}]
	}
	if !ok {
		s.stats.RxDropped++
		return
	}
	if u.queued() >= udpQueueMax {
		s.stats.UdpQueueDrops++
		if s.obsTr != nil {
			s.obsTr.Record(s.now(), obs.EvUDPDrop, s.obsSrc,
				int64(h.Length)-UDPHeaderLen, int64(u.queued()), int64(h.DstPort))
		}
		return
	}
	data := s.allocDgramBuf()[:int(h.Length)-UDPHeaderLen]
	copy(data, seg[UDPHeaderLen:h.Length])
	u.pushDgram(dgram{
		src:  tcpEndpoint{IP: ip.Src, Port: h.SrcPort},
		data: data,
	})
}

// ConnState reports the TCP state name of fd's connection (diagnostics).
func (s *Stack) ConnState(fd int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	sk, ok := s.socks[fd]
	if !ok || sk.conn == nil {
		return "NONE"
	}
	return sk.conn.state.String()
}
