package fstack

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/dpdk"
	"repro/internal/hostos"
	"repro/internal/obs"
	"repro/internal/stats"
)

// EthDevice is the packet I/O surface the stack drives — rte_ethdev in
// DPDK terms. *dpdk.EthDev implements it directly (Baseline, Scenarios
// 1-2: the driver lives in the same compartment as the stack); the
// future-work Scenario 3 substitutes a gated proxy whose every burst
// crosses into a separate DPDK compartment.
type EthDevice interface {
	RxBurst(out []*dpdk.Mbuf) int
	TxBurst(bufs []*dpdk.Mbuf) int
	Poll()
	MAC() [6]byte
	Stats() dpdk.Stats
	// NextDeadline reports the earliest virtual instant the device
	// could make progress (harvestable frame, admissible TX, conduit
	// release); math.MaxInt64 = quiescent, <= now = work right now.
	// Part of the interface — not an optional assertion — so a device
	// wrapper that forgets to forward it fails to compile instead of
	// silently reporting "never" and letting the event-driven clock
	// leap past its frames.
	NextDeadline(now int64) int64
}

// NetIF is a configured network interface: one Ethernet device plus its
// IPv4 binding ("eth0"/"eth1" in the paper's scenarios).
type NetIF struct {
	Name string
	IP   IPv4Addr
	Mask IPv4Addr
	MAC  MACAddr

	dev EthDevice
	arp *arpCache
}

// sameSubnet reports whether ip is on the interface's subnet.
func (n *NetIF) sameSubnet(ip IPv4Addr) bool {
	for i := 0; i < 4; i++ {
		if (ip[i] & n.Mask[i]) != (n.IP[i] & n.Mask[i]) {
			return false
		}
	}
	return true
}

// StackStats counts stack-level events. The retransmit breakdown makes
// recovery behavior observable in every run: Retransmit is the total,
// split into dup-ACK fast retransmits, scoreboard-guided SACK hole
// fills and timeout resends; DupAcks counts duplicate ACKs received.
type StackStats struct {
	RxFrames       uint64
	TxFrames       uint64
	RxDropped      uint64 // parse errors, no socket, bad checksum
	Retransmit     uint64
	FastRetransmit uint64 // three-dup-ACK and NewReno partial-ACK resends
	SACKRetransmit uint64 // scoreboard-guided hole fills
	RTORetransmit  uint64 // segments resent after a timeout rewind
	DupAcks        uint64 // duplicate ACKs received
	PersistProbes  uint64 // zero-window probes sent (persist timer)
	ArpTx          uint64
}

// Add accumulates another stack's counters into st — the one place
// that knows every field, so aggregators (the sharded stack) cannot
// silently drop a newly added counter.
func (st *StackStats) Add(o StackStats) {
	st.RxFrames += o.RxFrames
	st.TxFrames += o.TxFrames
	st.RxDropped += o.RxDropped
	st.Retransmit += o.Retransmit
	st.FastRetransmit += o.FastRetransmit
	st.SACKRetransmit += o.SACKRetransmit
	st.RTORetransmit += o.RTORetransmit
	st.DupAcks += o.DupAcks
	st.PersistProbes += o.PersistProbes
	st.ArpTx += o.ArpTx
}

// RecoverySummary formats the retransmit breakdown for scenario
// summaries.
func (st StackStats) RecoverySummary() string {
	return fmt.Sprintf("retx %d (fast %d, sack %d, rto %d), dup-acks %d",
		st.Retransmit, st.FastRetransmit, st.SACKRetransmit, st.RTORetransmit, st.DupAcks)
}

// TCPTuning is the stack-wide TCP feature configuration, the analog of
// FreeBSD's net.inet.tcp sysctls. The zero value reproduces the
// paper's stack exactly (no SACK, no window scaling, 64 KiB windows),
// which is what keeps Scenarios 1-4 byte-identical on the wire; lossy
// or high-BDP paths (Scenario 5) opt in per stack before traffic
// starts.
type TCPTuning struct {
	// SACK advertises SACK-permitted on SYNs and enables RFC 2018
	// selective acknowledgment both ways (net.inet.tcp.sack.enable).
	SACK bool
	// WindowScale, when nonzero, advertises that RFC 7323 window-scale
	// shift on SYNs (part of net.inet.tcp.rfc1323). Effective only if
	// the peer offers scaling too.
	WindowScale uint8
	// SndBufBytes / RcvBufBytes size new connections' socket buffers
	// (powers of two; 0 keeps the 512 KiB / 256 KiB defaults). A
	// scaled receive window is bounded by RcvBufBytes, so high-BDP
	// paths must raise it.
	SndBufBytes int
	RcvBufBytes int
	// Congestion selects the congestion-control algorithm for new
	// connections (net.inet.tcp.cc.algorithm): CCReno or CCCubic, with
	// "" meaning the CCReno default — the extracted paper-stack
	// behavior. Validate names early with ValidCongestion; an unknown
	// name makes connection creation fail.
	Congestion string
}

// Stack is a user-space TCP/IP instance: interfaces, connection tables
// and socket layer, owned by one poll loop and guarded by one mutex.
type Stack struct {
	seg  *dpdk.MemSeg
	pool *dpdk.Mempool
	clk  hostos.Clock

	// mu is THE F-Stack mutex: it serializes API calls against the main
	// loop (paper §III-A, Scenario 2). Loop.RunOnce holds it for the
	// duration of an iteration; API entry points hold it per call.
	mu sync.Mutex

	nifs  []*NetIF
	conns map[fourTuple]*tcpConn
	// connOrder lists the live connections in creation order. The poll
	// loop iterates it instead of the conns map so timer firing and
	// output interleaving are identical run to run — map iteration
	// order is randomized per process, and the goldens must not depend
	// on winning that lottery.
	connOrder []*tcpConn
	listeners map[tcpEndpoint]*listener
	udps      map[tcpEndpoint]*udpSock
	socks     map[int]*socket
	epolls    map[int]*epollInstance
	nextFD    int

	issCounter uint32
	ipID       uint16
	ephemeral  uint16
	rtoMinNS   int64 // 0 = package default (SetRTOMin)
	tuning     TCPTuning

	// wantPoll marks state-driven work an API call queued for the next
	// poll's timer pass (currently: a read re-opened a closed receive
	// window, so a window-update ACK is owed). The event-driven driver
	// must visit the next iteration rather than leap.
	wantPoll bool

	// timerMin is a conservative lower bound on the earliest armed
	// connection timer (rtxAt/persistAt/delackAt/timeWaitAt), kept
	// incrementally: arming notes the new deadline, and a stale bound
	// (a timer fired or was disarmed) is recomputed lazily the next
	// time nextDeadlineLocked crosses it. math.MaxInt64 = none armed.
	timerMin int64

	// rxBurst is the poll loop's harvest scratch. As a local it would
	// escape through the EthDevice interface call and cost one heap
	// allocation per poll — the simulator's single hottest allocation
	// site before it moved here. txOne is the same story for the
	// transmit path's one-frame bursts (one allocation per frame).
	// Both are safe as fields: all use is under the stack mutex and
	// the device never retains the slice.
	rxBurst [32]*dpdk.Mbuf
	txOne   [1]*dpdk.Mbuf

	tap   Tap
	stats StackStats

	// Flight-recorder hooks (nil = observability off, zero cost on the
	// datapath). obsSrc tags events with this stack's identity (shard
	// index in a sharded stack). Set via SetObs before traffic.
	obsTr  *obs.Trace
	obsRTT *stats.Histogram
	obsSrc uint16
}

// NewStack builds a stack over the given segment, buffer pool and clock.
func NewStack(seg *dpdk.MemSeg, pool *dpdk.Mempool, clk hostos.Clock) *Stack {
	return &Stack{
		seg:       seg,
		pool:      pool,
		clk:       clk,
		conns:     make(map[fourTuple]*tcpConn),
		listeners: make(map[tcpEndpoint]*listener),
		udps:      make(map[tcpEndpoint]*udpSock),
		socks:     make(map[int]*socket),
		epolls:    make(map[int]*epollInstance),
		nextFD:    3,
		ephemeral: 32768,
		timerMin:  math.MaxInt64,
	}
}

// addConn registers a connection in the table and the ordered list.
func (s *Stack) addConn(tuple fourTuple, c *tcpConn) {
	s.conns[tuple] = c
	s.connOrder = append(s.connOrder, c)
}

// noteTimer records a newly armed connection deadline in the cached
// minimum. Disarming needs no call: the stale bound is corrected by
// the lazy recompute in nextDeadlineLocked.
func (s *Stack) noteTimer(at int64) {
	if at < s.timerMin {
		s.timerMin = at
	}
}

// connDeadline is the earliest armed timer of one connection.
func connDeadline(c *tcpConn) int64 {
	d := int64(math.MaxInt64)
	if c.rtxAt != 0 && c.rtxAt < d {
		d = c.rtxAt
	}
	if c.persistAt != 0 && c.persistAt < d {
		d = c.persistAt
	}
	if c.delackAt != 0 && c.delackAt < d {
		d = c.delackAt
	}
	if c.state == tcpTimeWait && c.timeWaitAt < d {
		d = c.timeWaitAt
	}
	return d
}

// nextDeadlineLocked reports the stack's earliest future work: the
// cached connection-timer minimum (recomputed when stale) and whatever
// the attached devices hold. Callers hold the stack mutex.
func (s *Stack) nextDeadlineLocked(now int64) int64 {
	if s.wantPoll {
		return now
	}
	if s.timerMin <= now {
		// The bound was reached (a timer fired, or was disarmed at or
		// before it): recompute the exact minimum.
		s.timerMin = math.MaxInt64
		for _, c := range s.connOrder {
			if d := connDeadline(c); d < s.timerMin {
				s.timerMin = d
			}
		}
	}
	d := s.timerMin
	for _, nif := range s.nifs {
		if at := nif.dev.NextDeadline(now); at < d {
			d = at
		}
	}
	return d
}

// NextDeadline reports the earliest virtual instant at which this
// stack (its connection timers or its devices) could make progress;
// math.MaxInt64 means none, a value <= now means work is due already.
func (s *Stack) NextDeadline(now int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextDeadlineLocked(now)
}

// AddNetIF attaches a started ethdev with its IPv4 configuration.
func (s *Stack) AddNetIF(name string, dev EthDevice, ip, mask IPv4Addr) *NetIF {
	nif := &NetIF{
		Name: name,
		IP:   ip,
		Mask: mask,
		MAC:  MACAddr(dev.MAC()),
		dev:  dev,
		arp:  newARPCache(),
	}
	s.nifs = append(s.nifs, nif)
	return nif
}

// SetRTOMin raises the retransmission-timer floor for connections of
// this stack (net.inet.tcp.rexmit_min in F-Stack's FreeBSD heritage).
// Call it before traffic starts, on every stack of the path whose
// senders face ms-scale queueing delay.
func (s *Stack) SetRTOMin(ns int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rtoMinNS = ns
}

// rtoFloor returns the effective retransmission-timer floor.
func (s *Stack) rtoFloor() int64 {
	if s.rtoMinNS > 0 {
		return s.rtoMinNS
	}
	return rtoMin
}

// SetTCPTuning configures SACK, window scaling, socket buffer sizes
// and the congestion-control algorithm for connections created after
// the call. Like SetRTOMin it is a
// boot-time knob: set it before traffic starts, on both ends of the
// path that needs it (an un-tuned peer simply declines the options and
// the connection runs exactly as before).
func (s *Stack) SetTCPTuning(t TCPTuning) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.WindowScale > MaxWScale {
		t.WindowScale = MaxWScale
	}
	s.tuning = t
}

// TCPTuning returns the stack's current TCP feature configuration.
func (s *Stack) TCPTuning() TCPTuning {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tuning
}

// Lock acquires the F-Stack API mutex.
func (s *Stack) Lock() { s.mu.Lock() }

// Unlock releases the F-Stack API mutex.
func (s *Stack) Unlock() { s.mu.Unlock() }

// now reads the stack clock.
func (s *Stack) now() int64 { return s.clk.Now() }

// Stats returns a copy of the counters (callers hold the lock via API or
// call between loop iterations).
func (s *Stack) Stats() StackStats {
	st := s.stats
	for _, c := range s.conns {
		st.Retransmit += c.retransSegs
		st.FastRetransmit += c.fastRetrans
		st.SACKRetransmit += c.sackRetrans
		st.RTORetransmit += c.rtoRetrans
		st.DupAcks += c.dupAcksIn
		st.PersistProbes += c.persistProbes
	}
	return st
}

// SetObs attaches the flight recorder and RTT histogram to this stack's
// TCP machinery; src tags emitted events (shard index for sharded
// stacks). Call before traffic; nil detaches.
func (s *Stack) SetObs(tr *obs.Trace, rtt *stats.Histogram, src uint16) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obsTr, s.obsRTT, s.obsSrc = tr, rtt, src
}

// SumCwndPipe sums the live connections' congestion windows and
// outstanding bytes — the metrics sampler's gauge over this stack.
// Self-locking: call between loop iterations, not from inside the API.
func (s *Stack) SumCwndPipe() (cwnd, pipe int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.connOrder {
		cwnd += c.cc.Cwnd()
		pipe += c.pipe()
	}
	return cwnd, pipe
}

// nifForDst picks the outgoing interface for a destination.
func (s *Stack) nifForDst(ip IPv4Addr) *NetIF {
	for _, n := range s.nifs {
		if n.sameSubnet(ip) {
			return n
		}
	}
	if len(s.nifs) > 0 {
		return s.nifs[0]
	}
	return nil
}

// nifByIP finds the interface owning the local address (zero = first).
func (s *Stack) nifByIP(ip IPv4Addr) *NetIF {
	if ip == (IPv4Addr{}) {
		if len(s.nifs) > 0 {
			return s.nifs[0]
		}
		return nil
	}
	for _, n := range s.nifs {
		if n.IP == ip {
			return n
		}
	}
	return nil
}

// --- transmit path ---

// txAlloc grabs an mbuf and reserves a frame of EthHeaderLen+ipLen
// bytes, returning the writable frame slice.
func (s *Stack) txAlloc(nif *NetIF, ipLen int) (*dpdk.Mbuf, []byte) {
	m, ok := s.pool.Get()
	if !ok {
		return nil, nil
	}
	frame, err := m.Append(EthHeaderLen + ipLen)
	if err != nil {
		m.Free()
		return nil, nil
	}
	return m, frame
}

// sendIPv4 finishes an outgoing packet: the transport wrote its segment
// at frame[EthHeaderLen+IPv4HeaderLen:]; this fills the IP and Ethernet
// headers, resolves the next hop and transmits. Returns false when the
// frame could not be queued (caller retries later); ARP-parked packets
// count as sent.
func (s *Stack) sendIPv4(nif *NetIF, m *dpdk.Mbuf, frame []byte, dst IPv4Addr, proto uint8, segLen int) bool {
	s.ipID++
	PutIPv4Header(frame[EthHeaderLen:], IPv4Header{
		TotalLen: uint16(IPv4HeaderLen + segLen),
		ID:       s.ipID,
		Flags:    flagDontFragment,
		TTL:      64,
		Proto:    proto,
		Src:      nif.IP,
		Dst:      dst,
	})
	mac, ok := nif.arp.lookup(dst, s.now())
	if !ok {
		// Park the IP packet and ask for the binding.
		nif.arp.park(dst, frame[EthHeaderLen:], EtherTypeIPv4)
		m.Free()
		s.sendARPRequest(nif, dst)
		return true
	}
	PutEthHeader(frame, EthHeader{Dst: mac, Src: nif.MAC, Type: EtherTypeIPv4})
	return s.txSubmit(nif, m, frame)
}

// txSubmit hands a finished frame to the device, maintaining statistics
// and the capture tap. It frees the mbuf on refusal.
func (s *Stack) txSubmit(nif *NetIF, m *dpdk.Mbuf, frame []byte) bool {
	s.txOne[0] = m
	if nif.dev.TxBurst(s.txOne[:]) != 1 {
		m.Free()
		return false
	}
	s.stats.TxFrames++
	if s.tap != nil {
		s.tap.Frame(TapTx, s.now(), frame)
	}
	return true
}

// sendARPRequest broadcasts a who-has query.
func (s *Stack) sendARPRequest(nif *NetIF, target IPv4Addr) {
	m, frame := s.txAlloc(nif, ARPPacketLen)
	if m == nil {
		return
	}
	PutEthHeader(frame, EthHeader{Dst: BroadcastMAC, Src: nif.MAC, Type: EtherTypeARP})
	PutARPPacket(frame[EthHeaderLen:], ARPPacket{
		Op:        ARPRequest,
		SenderMAC: nif.MAC,
		SenderIP:  nif.IP,
		TargetIP:  target,
	})
	if s.txSubmit(nif, m, frame) {
		s.stats.ArpTx++
	}
}

// replayPending retransmits a packet that was parked on an ARP miss.
func (s *Stack) replayPending(nif *NetIF, dst IPv4Addr, mac MACAddr, p *pendingPacket) {
	m, frame := s.txAlloc(nif, len(p.payload))
	if m == nil {
		return
	}
	PutEthHeader(frame, EthHeader{Dst: mac, Src: nif.MAC, Type: p.proto})
	copy(frame[EthHeaderLen:], p.payload)
	s.txSubmit(nif, m, frame)
}

// --- receive path ---

// input demultiplexes one received frame. The mbuf is freed here.
func (s *Stack) input(nif *NetIF, m *dpdk.Mbuf) {
	defer m.Free()
	frame, err := m.BytesRO()
	if err != nil {
		s.stats.RxDropped++
		return
	}
	eth, err := ParseEthHeader(frame)
	if err != nil {
		s.stats.RxDropped++
		return
	}
	if eth.Dst != nif.MAC && eth.Dst != BroadcastMAC {
		s.stats.RxDropped++
		return
	}
	s.stats.RxFrames++
	if s.tap != nil {
		s.tap.Frame(TapRx, s.now(), frame)
	}
	payload := frame[EthHeaderLen:]
	switch eth.Type {
	case EtherTypeARP:
		s.inputARP(nif, payload)
	case EtherTypeIPv4:
		s.inputIPv4(nif, payload)
	default:
		s.stats.RxDropped++
	}
}

// inputARP handles requests (reply if we are the target) and replies
// (cache insert + pending replay).
func (s *Stack) inputARP(nif *NetIF, b []byte) {
	p, err := ParseARPPacket(b)
	if err != nil {
		s.stats.RxDropped++
		return
	}
	switch p.Op {
	case ARPRequest:
		// Opportunistically learn the sender, then answer.
		nif.arp.insert(p.SenderIP, p.SenderMAC, s.now())
		if p.TargetIP != nif.IP {
			return
		}
		m, frame := s.txAlloc(nif, ARPPacketLen)
		if m == nil {
			return
		}
		PutEthHeader(frame, EthHeader{Dst: p.SenderMAC, Src: nif.MAC, Type: EtherTypeARP})
		PutARPPacket(frame[EthHeaderLen:], ARPPacket{
			Op:        ARPReply,
			SenderMAC: nif.MAC,
			SenderIP:  nif.IP,
			TargetMAC: p.SenderMAC,
			TargetIP:  p.SenderIP,
		})
		s.txSubmit(nif, m, frame)
	case ARPReply:
		for _, pend := range nif.arp.insert(p.SenderIP, p.SenderMAC, s.now()) {
			s.replayPending(nif, p.SenderIP, p.SenderMAC, pend)
		}
	}
}

// inputIPv4 dispatches to the transport protocols.
func (s *Stack) inputIPv4(nif *NetIF, b []byte) {
	h, ihl, err := ParseIPv4Header(b)
	if err != nil || h.Dst != nif.IP {
		s.stats.RxDropped++
		return
	}
	seg := b[ihl:h.TotalLen]
	switch h.Proto {
	case ProtoICMP:
		s.inputICMP(nif, h, seg)
	case ProtoTCP:
		s.inputTCP(nif, h, seg)
	case ProtoUDP:
		s.inputUDP(nif, h, seg)
	default:
		s.stats.RxDropped++
	}
}

// inputICMP answers echo requests.
func (s *Stack) inputICMP(nif *NetIF, ip IPv4Header, seg []byte) {
	echo, err := ParseICMPEcho(seg)
	if err != nil || echo.Type != ICMPEchoRequest {
		s.stats.RxDropped++
		return
	}
	m, frame := s.txAlloc(nif, IPv4HeaderLen+len(seg))
	if m == nil {
		return
	}
	reply := frame[EthHeaderLen+IPv4HeaderLen:]
	copy(reply, seg)
	PutICMPEcho(reply, ICMPEcho{Type: ICMPEchoReply, ID: echo.ID, Seq: echo.Seq})
	s.sendIPv4(nif, m, frame, ip.Src, ProtoICMP, len(seg))
}

// inputTCP finds or creates the connection for a segment.
func (s *Stack) inputTCP(nif *NetIF, ip IPv4Header, seg []byte) {
	h, hl, err := ParseTCPHeader(seg, ip.Src, ip.Dst)
	if err != nil {
		s.stats.RxDropped++
		return
	}
	tuple := fourTuple{
		local:  tcpEndpoint{IP: ip.Dst, Port: h.DstPort},
		remote: tcpEndpoint{IP: ip.Src, Port: h.SrcPort},
	}
	payload := seg[hl:]
	if c, ok := s.conns[tuple]; ok {
		c.input(h, payload)
		return
	}
	// New flow: only a SYN to a listener is welcome.
	if h.Flags&TCPSyn != 0 && h.Flags&TCPAck == 0 {
		if l := s.findListener(tuple.local); l != nil {
			s.acceptSyn(nif, l, tuple, h)
			return
		}
	}
	if h.Flags&TCPRst == 0 {
		s.sendRSTFor(nif, ip, h, len(payload))
	}
	s.stats.RxDropped++
}

// findListener matches exact binding first, then wildcard IP.
func (s *Stack) findListener(ep tcpEndpoint) *listener {
	if l, ok := s.listeners[ep]; ok {
		return l
	}
	if l, ok := s.listeners[tcpEndpoint{Port: ep.Port}]; ok {
		return l
	}
	return nil
}

// acceptSyn creates the half-open connection and answers SYN|ACK.
func (s *Stack) acceptSyn(nif *NetIF, l *listener, tuple fourTuple, h TCPHeader) {
	if len(l.pending)+l.halfOpen >= l.backlog {
		return // silently drop: peer retries
	}
	c, err := s.newTCPConn(nif, tuple)
	if err != nil {
		return
	}
	c.setState(tcpSynReceived)
	c.rcvNxt = h.Seq + 1
	if h.HasTS {
		c.tsRecent = h.TSVal
	}
	if h.MSS != 0 {
		c.sndMSS = min(int(h.MSS)-tsOptionLen, MaxSegData)
		c.cc.SetMSS(c.sndMSS)
	}
	// Feature negotiation: only echo what the client offered AND the
	// stack's tuning enables; the SYN|ACK then carries our side of the
	// agreement (sendSegment reads offerSACK/offerWS).
	c.offerSACK = c.offerSACK && h.SACKPermitted
	c.offerWS = c.offerWS && h.HasWS
	c.sackOK = c.offerSACK
	if c.offerWS {
		c.sndWScale = h.WScale
		c.rcvWScale = s.tuning.WindowScale
	}
	iss := s.iss()
	c.sndUna, c.sndNxt, c.sndMax = iss, iss+1, iss+1
	c.sndWnd = uint32(h.Window)
	s.addConn(tuple, c)
	l.halfOpen++
	c.sendSegment(TCPSyn|TCPAck, iss, 0, true)
	c.armRTO()
}

// notifyAccept queues a completed connection on its listener.
func (s *Stack) notifyAccept(c *tcpConn) {
	l := s.findListener(c.tuple.local)
	if l == nil {
		c.sendRST()
		c.abort(hostos.ECONNRESET)
		return
	}
	if l.halfOpen > 0 {
		l.halfOpen--
	}
	l.pending = append(l.pending, c)
}

// sendRSTFor answers an unexpected segment with a reset.
func (s *Stack) sendRSTFor(nif *NetIF, ip IPv4Header, h TCPHeader, payloadLen int) {
	rst := TCPHeader{
		SrcPort: h.DstPort,
		DstPort: h.SrcPort,
		Flags:   TCPRst | TCPAck,
		Ack:     h.Seq + uint32(payloadLen),
	}
	if h.Flags&TCPSyn != 0 {
		rst.Ack++
	}
	if h.Flags&TCPAck != 0 {
		rst.Seq = h.Ack
		rst.Flags = TCPRst
	}
	hl := rst.encodedLen()
	m, frame := s.txAlloc(nif, IPv4HeaderLen+hl)
	if m == nil {
		return
	}
	PutTCPHeader(frame[EthHeaderLen+IPv4HeaderLen:], rst, ip.Dst, ip.Src, hl)
	s.sendIPv4(nif, m, frame, ip.Src, ProtoTCP, hl)
}

// removeConn drops the connection from the table.
func (s *Stack) removeConn(c *tcpConn) {
	s.stats.Retransmit += c.retransSegs
	s.stats.FastRetransmit += c.fastRetrans
	s.stats.SACKRetransmit += c.sackRetrans
	s.stats.RTORetransmit += c.rtoRetrans
	s.stats.DupAcks += c.dupAcksIn
	s.stats.PersistProbes += c.persistProbes
	c.retransSegs, c.fastRetrans, c.sackRetrans, c.rtoRetrans = 0, 0, 0, 0
	c.dupAcksIn, c.persistProbes = 0, 0
	delete(s.conns, c.tuple)
	for i, o := range s.connOrder {
		if o == c {
			s.connOrder = append(s.connOrder[:i], s.connOrder[i+1:]...)
			break
		}
	}
}

// poll is one stack iteration: drain RX, run timers, flush output.
// Callers hold the stack mutex.
func (s *Stack) poll() {
	s.wantPoll = false // the timer pass below answers any queued work
	burst := s.rxBurst[:]
	for _, nif := range s.nifs {
		for {
			n := nif.dev.RxBurst(burst)
			for i := 0; i < n; i++ {
				s.input(nif, burst[i])
			}
			if n < len(burst) {
				break
			}
		}
	}
	now := s.now()
	// Creation order, not map order: reproducible timer and output
	// interleaving. A connection that removes itself mid-iteration
	// splices the list; the element sliding into its slot is simply
	// visited on the next poll, exactly one iteration later.
	for i := 0; i < len(s.connOrder); i++ {
		c := s.connOrder[i]
		c.onTimers(now)
		c.output()
	}
	for _, nif := range s.nifs {
		nif.dev.Poll()
	}
}

// PollOnce runs one locked stack iteration (exported for tests and the
// Loop).
func (s *Stack) PollOnce() {
	s.mu.Lock()
	s.poll()
	s.mu.Unlock()
}

// String summarizes the stack.
func (s *Stack) String() string {
	return fmt.Sprintf("fstack{%d nifs, %d conns, %d socks}", len(s.nifs), len(s.conns), len(s.socks))
}

// DebugConnDump summarizes every connection's sender state (testing
// hook).
func (s *Stack) DebugConnDump() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := ""
	for _, c := range s.connOrder {
		out += fmt.Sprintf("[%s una=%d nxt=%d max=%d cwnd=%d pipe=%d wnd=%d sacked=%d rec=%v rtxAt=%d rto=%d buf=%d]",
			c.state, c.sndUna, c.sndNxt, c.sndMax, c.cc.Cwnd(), c.pipe(), c.sndWnd, len(c.sacked), c.inRecovery, c.rtxAt, c.rto, c.sndBuf.Len())
	}
	return out
}
