package fstack

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sync"
	"unsafe"

	"repro/internal/dpdk"
	"repro/internal/fstack/connscale"
	"repro/internal/hostos"
	"repro/internal/obs"
	"repro/internal/stats"
)

// EthDevice is the packet I/O surface the stack drives — rte_ethdev in
// DPDK terms. *dpdk.EthDev implements it directly (Baseline, Scenarios
// 1-2: the driver lives in the same compartment as the stack); the
// future-work Scenario 3 substitutes a gated proxy whose every burst
// crosses into a separate DPDK compartment.
type EthDevice interface {
	RxBurst(out []*dpdk.Mbuf) int
	TxBurst(bufs []*dpdk.Mbuf) int
	Poll()
	MAC() [6]byte
	Stats() dpdk.Stats
	// NextDeadline reports the earliest virtual instant the device
	// could make progress (harvestable frame, admissible TX, conduit
	// release); math.MaxInt64 = quiescent, <= now = work right now.
	// Part of the interface — not an optional assertion — so a device
	// wrapper that forgets to forward it fails to compile instead of
	// silently reporting "never" and letting the event-driven clock
	// leap past its frames.
	NextDeadline(now int64) int64
}

// NetIF is a configured network interface: one Ethernet device plus its
// IPv4 binding ("eth0"/"eth1" in the paper's scenarios).
type NetIF struct {
	Name string
	IP   IPv4Addr
	Mask IPv4Addr
	MAC  MACAddr

	dev EthDevice
	arp *arpCache
}

// sameSubnet reports whether ip is on the interface's subnet.
func (n *NetIF) sameSubnet(ip IPv4Addr) bool {
	for i := 0; i < 4; i++ {
		if (ip[i] & n.Mask[i]) != (n.IP[i] & n.Mask[i]) {
			return false
		}
	}
	return true
}

// StackStats counts stack-level events. The retransmit breakdown makes
// recovery behavior observable in every run: Retransmit is the total,
// split into dup-ACK fast retransmits, scoreboard-guided SACK hole
// fills and timeout resends; DupAcks counts duplicate ACKs received.
type StackStats struct {
	RxFrames        uint64
	TxFrames        uint64
	RxDropped       uint64 // parse errors, no socket, bad checksum
	UdpQueueDrops   uint64 // datagrams dropped: bound socket's queue full
	Retransmit      uint64
	FastRetransmit  uint64 // three-dup-ACK and NewReno partial-ACK resends
	SACKRetransmit  uint64 // scoreboard-guided hole fills
	RTORetransmit   uint64 // segments resent after a timeout rewind
	DupAcks         uint64 // duplicate ACKs received
	PersistProbes   uint64 // zero-window probes sent (persist timer)
	ArpTx           uint64
	Accepts         uint64 // connections graduated from the SYN cache
	SynDrops        uint64 // SYNs refused (backlog or SYN cache full)
	AcceptOverflows uint64 // graduations deferred/refused: accept queue full
	TimeWaitReuses  uint64 // TIME_WAIT tuples recycled for a fresh connection
}

// Add accumulates another stack's counters into st — the one place
// that knows every field, so aggregators (the sharded stack) cannot
// silently drop a newly added counter.
func (st *StackStats) Add(o StackStats) {
	st.RxFrames += o.RxFrames
	st.TxFrames += o.TxFrames
	st.RxDropped += o.RxDropped
	st.UdpQueueDrops += o.UdpQueueDrops
	st.Retransmit += o.Retransmit
	st.FastRetransmit += o.FastRetransmit
	st.SACKRetransmit += o.SACKRetransmit
	st.RTORetransmit += o.RTORetransmit
	st.DupAcks += o.DupAcks
	st.PersistProbes += o.PersistProbes
	st.ArpTx += o.ArpTx
	st.Accepts += o.Accepts
	st.SynDrops += o.SynDrops
	st.AcceptOverflows += o.AcceptOverflows
	st.TimeWaitReuses += o.TimeWaitReuses
}

// RecoverySummary formats the retransmit breakdown for scenario
// summaries.
func (st StackStats) RecoverySummary() string {
	return fmt.Sprintf("retx %d (fast %d, sack %d, rto %d), dup-acks %d",
		st.Retransmit, st.FastRetransmit, st.SACKRetransmit, st.RTORetransmit, st.DupAcks)
}

// TCPTuning is the stack-wide TCP feature configuration, the analog of
// FreeBSD's net.inet.tcp sysctls. The zero value reproduces the
// paper's stack exactly (no SACK, no window scaling, 64 KiB windows),
// which is what keeps Scenarios 1-4 byte-identical on the wire; lossy
// or high-BDP paths (Scenario 5) opt in per stack before traffic
// starts.
type TCPTuning struct {
	// SACK advertises SACK-permitted on SYNs and enables RFC 2018
	// selective acknowledgment both ways (net.inet.tcp.sack.enable).
	SACK bool
	// WindowScale, when nonzero, advertises that RFC 7323 window-scale
	// shift on SYNs (part of net.inet.tcp.rfc1323). Effective only if
	// the peer offers scaling too.
	WindowScale uint8
	// SndBufBytes / RcvBufBytes size new connections' socket buffers
	// (powers of two; 0 keeps the 512 KiB / 256 KiB defaults). A
	// scaled receive window is bounded by RcvBufBytes, so high-BDP
	// paths must raise it.
	SndBufBytes int
	RcvBufBytes int
	// Congestion selects the congestion-control algorithm for new
	// connections (net.inet.tcp.cc.algorithm): CCReno or CCCubic, with
	// "" meaning the CCReno default — the extracted paper-stack
	// behavior. Validate names early with ValidCongestion; an unknown
	// name makes connection creation fail.
	Congestion string
	// SynCacheSize bounds the half-open SYN cache
	// (net.inet.tcp.syncache.cachelimit); 0 keeps the 1024 default.
	SynCacheSize int
	// SynRST answers refused SYNs and overflowed graduations with a
	// reset instead of the default silent drop
	// (net.inet.tcp.syncache.rst_on_sock_fail flavor).
	SynRST bool
	// LazyBuffers defers socket-buffer segment backing until the first
	// write, so an idle accepted connection costs only its struct —
	// the knob that makes 100k parked connections fit in one segment.
	LazyBuffers bool
}

// Stack is a user-space TCP/IP instance: interfaces, connection tables
// and socket layer, owned by one poll loop and guarded by one mutex.
type Stack struct {
	seg  *dpdk.MemSeg
	pool *dpdk.Mempool
	clk  hostos.Clock

	// mu is THE F-Stack mutex: it serializes API calls against the main
	// loop (paper §III-A, Scenario 2). Loop.RunOnce holds it for the
	// duration of an iteration; API entry points hold it per call.
	mu sync.Mutex

	nifs      []*NetIF
	conns     map[fourTuple]*tcpConn
	listeners map[tcpEndpoint]*listener
	udps      map[tcpEndpoint]*udpSock
	socks     map[int]*socket
	epolls    map[int]*epollInstance
	nextFD    int

	// connSeq numbers connections in creation order. The poll loop
	// sorts its visit set by seq so timer firing and output
	// interleaving are identical run to run — map iteration order is
	// randomized per process, and the goldens must not depend on
	// winning that lottery.
	connSeq uint64

	// wheel holds every armed connection timer; synWheel the SYN|ACK
	// retransmit timers of half-open SYN-cache entries. Arming and
	// disarming are O(1), and NextDeadline never scans idle
	// connections — the property that makes 100k parked connections
	// free. A wheel entry may run early (a timer was disarmed or
	// re-armed later without touching the wheel); the visit then finds
	// nothing due and syncTimer re-files the exact deadline.
	wheel    *connscale.Wheel[*tcpConn]
	synWheel *connscale.Wheel[*synEntry]
	// fireConnF/fireSynF are the Advance callbacks, bound once at
	// construction — method values created per poll would allocate.
	fireConnF func(*tcpConn)
	fireSynF  func(*synEntry)

	// ready lists connections an API call or a failed transmit marked
	// for the next poll (window update owed, TX ring was full). visit
	// is the poll's scratch: fired ∪ ready, deduplicated via c.queued
	// and sorted by creation seq before the walk.
	ready []*tcpConn
	visit []*tcpConn

	// syncache holds half-open connections: a SYN costs one pooled
	// entry here, not a full tcpConn. Entries graduate to connections
	// on the final ACK and retransmit SYN|ACKs via synWheel.
	syncache map[fourTuple]*synEntry
	synFree  []*synEntry

	// connFree/sockFree recycle connection and socket structs so a
	// churn of short flows reaches zero steady-state allocations.
	// Plain per-stack free lists, not sync.Pool: the segment allocator
	// backing socket buffers never frees, so a conn dropped to the GC
	// would leak its buffers for good.
	connFree []*tcpConn
	sockFree []*socket

	// dgramFree recycles UDP payload buffers (udpPayloadMax capacity
	// each) between inputUDP and RecvFrom/Close, keeping the datagram
	// round trip allocation-free at steady state.
	dgramFree [][]byte

	// portRefs counts live connections per local ephemeral port
	// (index port-ephemeralBase), allocated on first use. It bounds
	// allocEphemeral: a full range is EADDRNOTAVAIL, not an infinite
	// loop.
	portRefs []uint32

	issCounter uint32
	ipID       uint16
	ephemeral  uint16
	rtoMinNS   int64 // 0 = package default (SetRTOMin)
	tuning     TCPTuning

	// down marks a crashed stack (see Crash/Restart in crash.go): poll
	// is a no-op and nextDeadlineLocked reports quiescence until the
	// supervisor restarts the compartment.
	down bool

	// wantPoll marks state-driven work an API call queued for the next
	// poll's timer pass (currently: a read re-opened a closed receive
	// window, so a window-update ACK is owed). The event-driven driver
	// must visit the next iteration rather than leap.
	wantPoll bool

	// rxBurst is the poll loop's harvest scratch. As a local it would
	// escape through the EthDevice interface call and cost one heap
	// allocation per poll — the simulator's single hottest allocation
	// site before it moved here. txOne is the same story for the
	// transmit path's one-frame bursts (one allocation per frame).
	// Both are safe as fields: all use is under the stack mutex and
	// the device never retains the slice.
	rxBurst [32]*dpdk.Mbuf
	txOne   [1]*dpdk.Mbuf

	tap   Tap
	stats StackStats

	// Flight-recorder hooks (nil = observability off, zero cost on the
	// datapath). obsSrc tags events with this stack's identity (shard
	// index in a sharded stack). Set via SetObs before traffic.
	obsTr  *obs.Trace
	obsRTT *stats.Histogram
	obsSrc uint16
}

// ephemeralBase is the bottom of the ephemeral port range.
const ephemeralBase = 32768

// NewStack builds a stack over the given segment, buffer pool and clock.
func NewStack(seg *dpdk.MemSeg, pool *dpdk.Mempool, clk hostos.Clock) *Stack {
	s := &Stack{
		seg:       seg,
		pool:      pool,
		clk:       clk,
		conns:     make(map[fourTuple]*tcpConn),
		listeners: make(map[tcpEndpoint]*listener),
		udps:      make(map[tcpEndpoint]*udpSock),
		socks:     make(map[int]*socket),
		epolls:    make(map[int]*epollInstance),
		syncache:  make(map[fourTuple]*synEntry),
		nextFD:    3,
		ephemeral: ephemeralBase,
		wheel:     connscale.New[*tcpConn](0, connscale.DefaultTickShift),
		synWheel:  connscale.New[*synEntry](0, connscale.DefaultTickShift),
	}
	s.fireConnF = func(c *tcpConn) {
		c.timerH = connscale.None
		s.queueVisit(c)
	}
	s.fireSynF = func(e *synEntry) {
		e.timerH = connscale.None
		s.synRetransmit(e)
	}
	return s
}

// addConn registers a connection in the table, stamping its creation
// order and pinning its local ephemeral port.
func (s *Stack) addConn(tuple fourTuple, c *tcpConn) {
	s.connSeq++
	c.seq = s.connSeq
	s.conns[tuple] = c
	if tuple.local.Port >= ephemeralBase {
		s.portAcquire(tuple.local.Port)
	}
}

// portAcquire / portRelease maintain the per-ephemeral-port refcounts.
func (s *Stack) portAcquire(p uint16) {
	if s.portRefs == nil {
		s.portRefs = make([]uint32, 65536-ephemeralBase)
	}
	s.portRefs[p-ephemeralBase]++
}

func (s *Stack) portRelease(p uint16) {
	if s.portRefs != nil && s.portRefs[p-ephemeralBase] > 0 {
		s.portRefs[p-ephemeralBase]--
	}
}

// noteTimer lowers a connection's wheel entry to a newly armed
// deadline. Arming later than the filed deadline needs no work — the
// entry fires early, the visit finds nothing due, and syncTimer
// re-files the exact minimum. Disarming likewise.
func (s *Stack) noteTimer(c *tcpConn, at int64) {
	if c.timerH != connscale.None {
		if at >= c.timerAt {
			return
		}
		s.wheel.Remove(c.timerH)
	}
	c.timerAt = at
	c.timerH = s.wheel.Insert(at, c)
}

// syncTimer reconciles a connection's wheel entry with its exact
// earliest deadline, called after every poll visit.
func (s *Stack) syncTimer(c *tcpConn) {
	if c.detached {
		return
	}
	d := connDeadline(c)
	if c.timerH != connscale.None {
		if d == c.timerAt {
			return
		}
		s.wheel.Remove(c.timerH)
		c.timerH = connscale.None
	}
	if d == math.MaxInt64 {
		return
	}
	c.timerAt = d
	c.timerH = s.wheel.Insert(d, c)
}

// markReady queues a connection for the next poll's visit set: a
// transmit failed (ring full — retry when the device drains) or an API
// call owes protocol work (window-update ACK after a read).
func (s *Stack) markReady(c *tcpConn) {
	if c.onReady || c.detached {
		return
	}
	c.onReady = true
	s.ready = append(s.ready, c)
}

// queueVisit adds a connection to this poll's visit set (deduplicated).
func (s *Stack) queueVisit(c *tcpConn) {
	if c.queued {
		return
	}
	c.queued = true
	s.visit = append(s.visit, c)
}

// connDeadline is the earliest armed timer of one connection.
func connDeadline(c *tcpConn) int64 {
	d := int64(math.MaxInt64)
	if c.rtxAt != 0 && c.rtxAt < d {
		d = c.rtxAt
	}
	if c.persistAt != 0 && c.persistAt < d {
		d = c.persistAt
	}
	if c.delackAt != 0 && c.delackAt < d {
		d = c.delackAt
	}
	if c.state == tcpTimeWait && c.timeWaitAt < d {
		d = c.timeWaitAt
	}
	return d
}

// nextDeadlineLocked reports the stack's earliest future work: the
// timing wheels' minima (O(1) — no scan of idle connections, however
// many are parked) and whatever the attached devices hold. Callers
// hold the stack mutex.
func (s *Stack) nextDeadlineLocked(now int64) int64 {
	if s.down {
		// A crashed stack holds no work: arrivals park in the device
		// rings until Restart (whose instant the supervisor's own
		// NextDeadline supplies), so reporting them here would spin the
		// leaping driver at `now` for the whole outage.
		return math.MaxInt64
	}
	if s.wantPoll {
		return now
	}
	d := s.wheel.NextDeadline()
	if sd := s.synWheel.NextDeadline(); sd < d {
		d = sd
	}
	for _, nif := range s.nifs {
		if at := nif.dev.NextDeadline(now); at < d {
			d = at
		}
	}
	return d
}

// NextDeadline reports the earliest virtual instant at which this
// stack (its connection timers or its devices) could make progress;
// math.MaxInt64 means none, a value <= now means work is due already.
func (s *Stack) NextDeadline(now int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextDeadlineLocked(now)
}

// AddNetIF attaches a started ethdev with its IPv4 configuration.
func (s *Stack) AddNetIF(name string, dev EthDevice, ip, mask IPv4Addr) *NetIF {
	nif := &NetIF{
		Name: name,
		IP:   ip,
		Mask: mask,
		MAC:  MACAddr(dev.MAC()),
		dev:  dev,
		arp:  newARPCache(),
	}
	s.nifs = append(s.nifs, nif)
	return nif
}

// SetRTOMin raises the retransmission-timer floor for connections of
// this stack (net.inet.tcp.rexmit_min in F-Stack's FreeBSD heritage).
// Call it before traffic starts, on every stack of the path whose
// senders face ms-scale queueing delay.
func (s *Stack) SetRTOMin(ns int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rtoMinNS = ns
}

// rtoFloor returns the effective retransmission-timer floor.
func (s *Stack) rtoFloor() int64 {
	if s.rtoMinNS > 0 {
		return s.rtoMinNS
	}
	return rtoMin
}

// SetTCPTuning configures SACK, window scaling, socket buffer sizes
// and the congestion-control algorithm for connections created after
// the call. Like SetRTOMin it is a
// boot-time knob: set it before traffic starts, on both ends of the
// path that needs it (an un-tuned peer simply declines the options and
// the connection runs exactly as before).
func (s *Stack) SetTCPTuning(t TCPTuning) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.WindowScale > MaxWScale {
		t.WindowScale = MaxWScale
	}
	s.tuning = t
}

// TCPTuning returns the stack's current TCP feature configuration.
func (s *Stack) TCPTuning() TCPTuning {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tuning
}

// Lock acquires the F-Stack API mutex.
func (s *Stack) Lock() { s.mu.Lock() }

// Unlock releases the F-Stack API mutex.
func (s *Stack) Unlock() { s.mu.Unlock() }

// now reads the stack clock.
func (s *Stack) now() int64 { return s.clk.Now() }

// Stats returns a copy of the counters (callers hold the lock via API or
// call between loop iterations).
func (s *Stack) Stats() StackStats {
	st := s.stats
	for _, c := range s.conns {
		st.Retransmit += c.retransSegs
		st.FastRetransmit += c.fastRetrans
		st.SACKRetransmit += c.sackRetrans
		st.RTORetransmit += c.rtoRetrans
		st.DupAcks += c.dupAcksIn
		st.PersistProbes += c.persistProbes
	}
	return st
}

// SetObs attaches the flight recorder and RTT histogram to this stack's
// TCP machinery; src tags emitted events (shard index for sharded
// stacks). Call before traffic; nil detaches.
func (s *Stack) SetObs(tr *obs.Trace, rtt *stats.Histogram, src uint16) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obsTr, s.obsRTT, s.obsSrc = tr, rtt, src
}

// SumCwndPipe sums the live connections' congestion windows and
// outstanding bytes — the metrics sampler's gauge over this stack.
// Self-locking: call between loop iterations, not from inside the API.
func (s *Stack) SumCwndPipe() (cwnd, pipe int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Map order is fine here: integer sums are order-independent.
	for _, c := range s.conns {
		cwnd += c.cc.Cwnd()
		pipe += c.pipe()
	}
	return cwnd, pipe
}

// ConnCount reports the number of live connections (metrics gauge).
func (s *Stack) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// RetainedBytes is a deterministic accounting of the heap the stack's
// connection plane holds onto: connection and socket structs (live and
// free-listed), their buffer headers, reassembly queues and SACK
// scoreboards, half-open SYN-cache entries, and recycled datagram
// buffers. Segment-backed socket buffer storage is excluded — the
// segment allocator reports that itself (MemSeg.Used).
//
// Scenario 8 measures the idle population's memory cost as a delta of
// this count, not of runtime.MemStats: the process heap is shared by
// every concurrently running sweep cell, so a ReadMemStats delta is
// garbage at -parallel > 1, while this count derives only from the
// stack's own state and is identical at any host parallelism.
func (s *Stack) RetainedBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	const (
		connSz  = uint64(unsafe.Sizeof(tcpConn{}))
		sockSz  = uint64(unsafe.Sizeof(socket{}))
		bufSz   = uint64(unsafe.Sizeof(sockBuf{}))
		synSz   = uint64(unsafe.Sizeof(synEntry{}))
		rangeSz = uint64(unsafe.Sizeof(seqRange{}))
		oooSz   = uint64(unsafe.Sizeof(oooSeg{}))
	)
	var b uint64
	conn := func(c *tcpConn) {
		b += connSz
		if c.sndBuf != nil {
			b += bufSz
		}
		if c.rcvBuf != nil {
			b += bufSz
		}
		b += uint64(cap(c.rcvOOO)) * oooSz
		b += uint64(cap(c.sacked)) * rangeSz
	}
	for _, c := range s.conns {
		conn(c)
	}
	for _, c := range s.connFree {
		conn(c)
	}
	b += uint64(len(s.socks)+len(s.sockFree)) * sockSz
	b += uint64(len(s.syncache)+len(s.synFree)) * synSz
	for _, d := range s.dgramFree {
		b += uint64(cap(d))
	}
	return b
}

// AcceptQueueDepth sums the pending (accepted, not yet Accept()ed)
// connections across listeners (metrics gauge).
func (s *Stack) AcceptQueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, l := range s.listeners {
		n += l.pendingCount()
	}
	return n
}

// HalfOpenCount reports the SYN-cache occupancy (testing hook).
func (s *Stack) HalfOpenCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.syncache)
}

// nifForDst picks the outgoing interface for a destination.
func (s *Stack) nifForDst(ip IPv4Addr) *NetIF {
	for _, n := range s.nifs {
		if n.sameSubnet(ip) {
			return n
		}
	}
	if len(s.nifs) > 0 {
		return s.nifs[0]
	}
	return nil
}

// nifByIP finds the interface owning the local address (zero = first).
func (s *Stack) nifByIP(ip IPv4Addr) *NetIF {
	if ip == (IPv4Addr{}) {
		if len(s.nifs) > 0 {
			return s.nifs[0]
		}
		return nil
	}
	for _, n := range s.nifs {
		if n.IP == ip {
			return n
		}
	}
	return nil
}

// --- transmit path ---

// txAlloc grabs an mbuf and reserves a frame of EthHeaderLen+ipLen
// bytes, returning the writable frame slice.
func (s *Stack) txAlloc(nif *NetIF, ipLen int) (*dpdk.Mbuf, []byte) {
	m, ok := s.pool.Get()
	if !ok {
		return nil, nil
	}
	frame, err := m.Append(EthHeaderLen + ipLen)
	if err != nil {
		m.Free()
		return nil, nil
	}
	return m, frame
}

// sendIPv4 finishes an outgoing packet: the transport wrote its segment
// at frame[EthHeaderLen+IPv4HeaderLen:]; this fills the IP and Ethernet
// headers, resolves the next hop and transmits. Returns false when the
// frame could not be queued (caller retries later); ARP-parked packets
// count as sent.
func (s *Stack) sendIPv4(nif *NetIF, m *dpdk.Mbuf, frame []byte, dst IPv4Addr, proto uint8, segLen int) bool {
	s.ipID++
	PutIPv4Header(frame[EthHeaderLen:], IPv4Header{
		TotalLen: uint16(IPv4HeaderLen + segLen),
		ID:       s.ipID,
		Flags:    flagDontFragment,
		TTL:      64,
		Proto:    proto,
		Src:      nif.IP,
		Dst:      dst,
	})
	mac, ok := nif.arp.lookup(dst, s.now())
	if !ok {
		// Park the IP packet and ask for the binding.
		nif.arp.park(dst, frame[EthHeaderLen:], EtherTypeIPv4)
		m.Free()
		s.sendARPRequest(nif, dst)
		return true
	}
	PutEthHeader(frame, EthHeader{Dst: mac, Src: nif.MAC, Type: EtherTypeIPv4})
	return s.txSubmit(nif, m, frame)
}

// txSubmit hands a finished frame to the device, maintaining statistics
// and the capture tap. It frees the mbuf on refusal.
func (s *Stack) txSubmit(nif *NetIF, m *dpdk.Mbuf, frame []byte) bool {
	s.txOne[0] = m
	if nif.dev.TxBurst(s.txOne[:]) != 1 {
		m.Free()
		return false
	}
	s.stats.TxFrames++
	if s.tap != nil {
		s.tap.Frame(TapTx, s.now(), frame)
	}
	return true
}

// sendARPRequest broadcasts a who-has query.
func (s *Stack) sendARPRequest(nif *NetIF, target IPv4Addr) {
	m, frame := s.txAlloc(nif, ARPPacketLen)
	if m == nil {
		return
	}
	PutEthHeader(frame, EthHeader{Dst: BroadcastMAC, Src: nif.MAC, Type: EtherTypeARP})
	PutARPPacket(frame[EthHeaderLen:], ARPPacket{
		Op:        ARPRequest,
		SenderMAC: nif.MAC,
		SenderIP:  nif.IP,
		TargetIP:  target,
	})
	if s.txSubmit(nif, m, frame) {
		s.stats.ArpTx++
	}
}

// replayPending retransmits a packet that was parked on an ARP miss.
func (s *Stack) replayPending(nif *NetIF, dst IPv4Addr, mac MACAddr, p *pendingPacket) {
	m, frame := s.txAlloc(nif, len(p.payload))
	if m == nil {
		return
	}
	PutEthHeader(frame, EthHeader{Dst: mac, Src: nif.MAC, Type: p.proto})
	copy(frame[EthHeaderLen:], p.payload)
	s.txSubmit(nif, m, frame)
}

// --- receive path ---

// input demultiplexes one received frame. The mbuf is freed here.
func (s *Stack) input(nif *NetIF, m *dpdk.Mbuf) {
	defer m.Free()
	frame, err := m.BytesRO()
	if err != nil {
		s.stats.RxDropped++
		return
	}
	eth, err := ParseEthHeader(frame)
	if err != nil {
		s.stats.RxDropped++
		return
	}
	if eth.Dst != nif.MAC && eth.Dst != BroadcastMAC {
		s.stats.RxDropped++
		return
	}
	s.stats.RxFrames++
	if s.tap != nil {
		s.tap.Frame(TapRx, s.now(), frame)
	}
	payload := frame[EthHeaderLen:]
	switch eth.Type {
	case EtherTypeARP:
		s.inputARP(nif, payload)
	case EtherTypeIPv4:
		s.inputIPv4(nif, payload)
	default:
		s.stats.RxDropped++
	}
}

// inputARP handles requests (reply if we are the target) and replies
// (cache insert + pending replay).
func (s *Stack) inputARP(nif *NetIF, b []byte) {
	p, err := ParseARPPacket(b)
	if err != nil {
		s.stats.RxDropped++
		return
	}
	switch p.Op {
	case ARPRequest:
		// Opportunistically learn the sender, then answer.
		nif.arp.insert(p.SenderIP, p.SenderMAC, s.now())
		if p.TargetIP != nif.IP {
			return
		}
		m, frame := s.txAlloc(nif, ARPPacketLen)
		if m == nil {
			return
		}
		PutEthHeader(frame, EthHeader{Dst: p.SenderMAC, Src: nif.MAC, Type: EtherTypeARP})
		PutARPPacket(frame[EthHeaderLen:], ARPPacket{
			Op:        ARPReply,
			SenderMAC: nif.MAC,
			SenderIP:  nif.IP,
			TargetMAC: p.SenderMAC,
			TargetIP:  p.SenderIP,
		})
		s.txSubmit(nif, m, frame)
	case ARPReply:
		for _, pend := range nif.arp.insert(p.SenderIP, p.SenderMAC, s.now()) {
			s.replayPending(nif, p.SenderIP, p.SenderMAC, pend)
		}
	}
}

// inputIPv4 dispatches to the transport protocols.
func (s *Stack) inputIPv4(nif *NetIF, b []byte) {
	h, ihl, err := ParseIPv4Header(b)
	if err != nil || h.Dst != nif.IP {
		s.stats.RxDropped++
		return
	}
	seg := b[ihl:h.TotalLen]
	switch h.Proto {
	case ProtoICMP:
		s.inputICMP(nif, h, seg)
	case ProtoTCP:
		s.inputTCP(nif, h, seg)
	case ProtoUDP:
		s.inputUDP(nif, h, seg)
	default:
		s.stats.RxDropped++
	}
}

// inputICMP answers echo requests.
func (s *Stack) inputICMP(nif *NetIF, ip IPv4Header, seg []byte) {
	echo, err := ParseICMPEcho(seg)
	if err != nil || echo.Type != ICMPEchoRequest {
		s.stats.RxDropped++
		return
	}
	m, frame := s.txAlloc(nif, IPv4HeaderLen+len(seg))
	if m == nil {
		return
	}
	reply := frame[EthHeaderLen+IPv4HeaderLen:]
	copy(reply, seg)
	PutICMPEcho(reply, ICMPEcho{Type: ICMPEchoReply, ID: echo.ID, Seq: echo.Seq})
	s.sendIPv4(nif, m, frame, ip.Src, ProtoICMP, len(seg))
}

// inputTCP finds or creates the connection for a segment.
func (s *Stack) inputTCP(nif *NetIF, ip IPv4Header, seg []byte) {
	h, hl, err := ParseTCPHeader(seg, ip.Src, ip.Dst)
	if err != nil {
		s.stats.RxDropped++
		return
	}
	tuple := fourTuple{
		local:  tcpEndpoint{IP: ip.Dst, Port: h.DstPort},
		remote: tcpEndpoint{IP: ip.Src, Port: h.SrcPort},
	}
	payload := seg[hl:]
	if c, ok := s.conns[tuple]; ok {
		if c.state != tcpTimeWait || h.Flags&(TCPSyn|TCPAck|TCPRst) != TCPSyn || !seqGT(h.Seq, c.rcvNxt) {
			c.input(h, payload)
			return
		}
		// TIME_WAIT reuse (RFC 1122 §4.2.2.13): a fresh SYN with a
		// sequence number beyond the old connection's recycles the
		// tuple immediately instead of making the peer wait out 2MSL.
		s.stats.TimeWaitReuses++
		c.setState(tcpClosed)
		s.removeConn(c)
		// Fall through to the listener path: the SYN starts a new flow.
	}
	if e, ok := s.syncache[tuple]; ok {
		s.synInput(e, h, payload)
		return
	}
	// New flow: only a SYN to a listener is welcome.
	if h.Flags&TCPSyn != 0 && h.Flags&TCPAck == 0 {
		if l := s.findListener(tuple.local); l != nil {
			if !s.acceptSyn(nif, l, tuple, h) && s.tuning.SynRST {
				s.sendRSTFor(nif, ip, h, len(payload))
			}
			return
		}
	}
	if h.Flags&TCPRst == 0 {
		s.sendRSTFor(nif, ip, h, len(payload))
	}
	s.stats.RxDropped++
}

// findListener matches exact binding first, then wildcard IP.
func (s *Stack) findListener(ep tcpEndpoint) *listener {
	if l, ok := s.listeners[ep]; ok {
		return l
	}
	if l, ok := s.listeners[tcpEndpoint{Port: ep.Port}]; ok {
		return l
	}
	return nil
}

// notifyAccept queues a completed connection on its listener.
func (s *Stack) notifyAccept(c *tcpConn) {
	l := s.findListener(c.tuple.local)
	if l == nil {
		c.sendRST()
		c.abort(hostos.ECONNRESET)
		return
	}
	if l.halfOpen > 0 {
		l.halfOpen--
	}
	l.pushPending(c)
	if s.obsTr != nil {
		s.obsTr.Record(s.now(), obs.EvTCPAccept, s.obsSrc,
			int64(l.pendingCount()), int64(len(s.syncache)), int64(c.tuple.local.Port))
	}
}

// sendRSTFor answers an unexpected segment with a reset.
func (s *Stack) sendRSTFor(nif *NetIF, ip IPv4Header, h TCPHeader, payloadLen int) {
	rst := TCPHeader{
		SrcPort: h.DstPort,
		DstPort: h.SrcPort,
		Flags:   TCPRst | TCPAck,
		Ack:     h.Seq + uint32(payloadLen),
	}
	if h.Flags&TCPSyn != 0 {
		rst.Ack++
	}
	if h.Flags&TCPAck != 0 {
		rst.Seq = h.Ack
		rst.Flags = TCPRst
	}
	hl := rst.encodedLen()
	m, frame := s.txAlloc(nif, IPv4HeaderLen+hl)
	if m == nil {
		return
	}
	PutTCPHeader(frame[EthHeaderLen+IPv4HeaderLen:], rst, ip.Dst, ip.Src, hl)
	s.sendIPv4(nif, m, frame, ip.Src, ProtoTCP, hl)
}

// removeConn drops the connection from the table: fold its counters,
// unfile its timer, release its port — all O(1) — and recycle the
// struct when nothing else can reach it.
func (s *Stack) removeConn(c *tcpConn) {
	if c.detached {
		return
	}
	s.stats.Retransmit += c.retransSegs
	s.stats.FastRetransmit += c.fastRetrans
	s.stats.SACKRetransmit += c.sackRetrans
	s.stats.RTORetransmit += c.rtoRetrans
	s.stats.DupAcks += c.dupAcksIn
	s.stats.PersistProbes += c.persistProbes
	c.retransSegs, c.fastRetrans, c.sackRetrans, c.rtoRetrans = 0, 0, 0, 0
	c.dupAcksIn, c.persistProbes = 0, 0
	delete(s.conns, c.tuple)
	if c.tuple.local.Port >= ephemeralBase {
		s.portRelease(c.tuple.local.Port)
	}
	if c.timerH != connscale.None {
		s.wheel.Remove(c.timerH)
		c.timerH = connscale.None
	}
	c.detached = true
	s.maybeRecycleConn(c)
}

// poll is one stack iteration: drain RX, fire due timers, then visit
// exactly the connections with pending work. Callers hold the stack
// mutex.
func (s *Stack) poll() {
	if s.down {
		return // crashed: not even the devices are stepped
	}
	s.wantPoll = false // the visit pass below answers any queued work
	burst := s.rxBurst[:]
	for _, nif := range s.nifs {
		for {
			n := nif.dev.RxBurst(burst)
			for i := 0; i < n; i++ {
				s.input(nif, burst[i])
			}
			if n < len(burst) {
				break
			}
		}
	}
	now := s.now()
	s.wheel.Advance(now, s.fireConnF)
	s.synWheel.Advance(now, s.fireSynF)
	for i, c := range s.ready {
		s.ready[i] = nil
		c.onReady = false
		s.queueVisit(c)
	}
	s.ready = s.ready[:0]
	if len(s.visit) > 0 {
		// Creation order, not wheel or map order: reproducible timer
		// and output interleaving. Visiting only this subset is
		// equivalent to the historical visit-every-connection walk —
		// onTimers and output are no-ops on a connection with no due
		// timer, no newly sendable data and no owed window update.
		slices.SortFunc(s.visit, func(a, b *tcpConn) int {
			return cmp.Compare(a.seq, b.seq)
		})
		for i := 0; i < len(s.visit); i++ {
			c := s.visit[i]
			s.visit[i] = nil
			c.queued = false
			if c.detached {
				continue
			}
			c.onTimers(now)
			c.output()
			s.syncTimer(c)
		}
		s.visit = s.visit[:0]
	}
	for _, nif := range s.nifs {
		nif.dev.Poll()
	}
}

// PollOnce runs one locked stack iteration (exported for tests and the
// Loop).
func (s *Stack) PollOnce() {
	s.mu.Lock()
	s.poll()
	s.mu.Unlock()
}

// String summarizes the stack.
func (s *Stack) String() string {
	return fmt.Sprintf("fstack{%d nifs, %d conns, %d socks}", len(s.nifs), len(s.conns), len(s.socks))
}

// DebugConnDump summarizes every connection's sender state (testing
// hook).
func (s *Stack) DebugConnDump() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	order := make([]*tcpConn, 0, len(s.conns))
	for _, c := range s.conns {
		order = append(order, c)
	}
	slices.SortFunc(order, func(a, b *tcpConn) int {
		return cmp.Compare(a.seq, b.seq)
	})
	out := ""
	for _, c := range order {
		out += fmt.Sprintf("[%s una=%d nxt=%d max=%d cwnd=%d pipe=%d wnd=%d sacked=%d rec=%v rtxAt=%d rto=%d buf=%d]",
			c.state, c.sndUna, c.sndNxt, c.sndMax, c.cc.Cwnd(), c.pipe(), c.sndWnd, len(c.sacked), c.inRecovery, c.rtxAt, c.rto, c.sndBuf.Len())
	}
	return out
}
