package fstack

import (
	"bytes"
	"testing"

	"repro/internal/hostos"
)

func TestTCPHandshake(t *testing.T) {
	for _, capMode := range []bool{false, true} {
		name := map[bool]string{false: "raw", true: "cheri"}[capMode]
		t.Run(name, func(t *testing.T) {
			e := newEnv(t, capMode)
			cfd, afd := e.connectPair(5001)
			if st := e.stkA.ConnState(cfd); st != "ESTABLISHED" {
				t.Fatalf("client state %s", st)
			}
			if st := e.stkB.ConnState(afd); st != "ESTABLISHED" {
				t.Fatalf("server state %s", st)
			}
		})
	}
}

func TestTCPDataTransfer(t *testing.T) {
	e := newEnv(t, false)
	cfd, afd := e.connectPair(5001)

	msg := bytes.Repeat([]byte("0123456789abcdef"), 512) // 8 KiB
	sent := 0
	e.pumpUntil(8000, "write all", func() bool {
		for sent < len(msg) {
			n, errno := e.stkA.Write(cfd, msg[sent:])
			if errno == hostos.EAGAIN {
				return false
			}
			if errno != hostos.OK {
				t.Fatalf("write: %v", errno)
			}
			sent += n
		}
		return true
	})
	var got []byte
	buf := make([]byte, 4096)
	e.pumpUntil(8000, "read all", func() bool {
		for {
			n, errno := e.stkB.Read(afd, buf)
			if errno == hostos.EAGAIN {
				break
			}
			if errno != hostos.OK {
				t.Fatalf("read: %v", errno)
			}
			got = append(got, buf[:n]...)
			if n == 0 {
				break
			}
		}
		return len(got) >= len(msg)
	})
	if !bytes.Equal(got, msg) {
		t.Fatalf("data corrupted: %d bytes vs %d", len(got), len(msg))
	}
}

func TestTCPBidirectional(t *testing.T) {
	e := newEnv(t, false)
	cfd, afd := e.connectPair(5001)
	// Both directions at once.
	a2b := bytes.Repeat([]byte{0xAA}, 5000)
	b2a := bytes.Repeat([]byte{0xBB}, 7000)
	e.stkA.Write(cfd, a2b)
	e.stkB.Write(afd, b2a)
	var gotB, gotA []byte
	buf := make([]byte, 2048)
	e.pumpUntil(8000, "both directions", func() bool {
		if n, errno := e.stkB.Read(afd, buf); errno == hostos.OK && n > 0 {
			gotB = append(gotB, buf[:n]...)
		}
		if n, errno := e.stkA.Read(cfd, buf); errno == hostos.OK && n > 0 {
			gotA = append(gotA, buf[:n]...)
		}
		return len(gotB) == len(a2b) && len(gotA) == len(b2a)
	})
	if !bytes.Equal(gotB, a2b) || !bytes.Equal(gotA, b2a) {
		t.Fatal("bidirectional data corrupted")
	}
}

func TestTCPLargeTransferExceedsWindow(t *testing.T) {
	// 1 MiB >> 64 KiB receive window: forces window management, delayed
	// acks, congestion control.
	e := newEnv(t, false)
	cfd, afd := e.connectPair(5001)
	const total = 1 << 20
	chunk := bytes.Repeat([]byte{0xCD}, 32768)
	sent, rcvd := 0, 0
	buf := make([]byte, 65536)
	e.pumpUntil(60000, "1MiB transfer", func() bool {
		for sent < total {
			n, errno := e.stkA.Write(cfd, chunk[:min(len(chunk), total-sent)])
			if errno == hostos.EAGAIN {
				break
			}
			if errno != hostos.OK {
				t.Fatalf("write: %v", errno)
			}
			sent += n
		}
		for {
			n, errno := e.stkB.Read(afd, buf)
			if errno != hostos.OK || n == 0 {
				break
			}
			rcvd += n
		}
		return rcvd >= total
	})
	if rcvd != total {
		t.Fatalf("received %d of %d", rcvd, total)
	}
}

func TestTCPCloseHandshake(t *testing.T) {
	e := newEnv(t, false)
	cfd, afd := e.connectPair(5001)
	if errno := e.stkA.Close(cfd); errno != hostos.OK {
		t.Fatal(errno)
	}
	// B sees EOF.
	buf := make([]byte, 16)
	e.pumpUntil(8000, "EOF at server", func() bool {
		n, errno := e.stkB.Read(afd, buf)
		return errno == hostos.OK && n == 0
	})
	if errno := e.stkB.Close(afd); errno != hostos.OK {
		t.Fatal(errno)
	}
	// Both connection tables drain (TIME_WAIT expires).
	e.pumpUntil(40000, "tables drained", func() bool {
		e.stkA.Lock()
		na := len(e.stkA.conns)
		e.stkA.Unlock()
		e.stkB.Lock()
		nb := len(e.stkB.conns)
		e.stkB.Unlock()
		return na == 0 && nb == 0
	})
}

func TestTCPConnectRefused(t *testing.T) {
	e := newEnv(t, false)
	cfd, _ := e.stkA.Socket(SockStream)
	if errno := e.stkA.Connect(cfd, IP4(10, 0, 0, 2), 9999); errno != hostos.EINPROGRESS {
		t.Fatal(errno)
	}
	// No listener on B: the SYN gets an RST.
	e.pumpUntil(4000, "reset delivered", func() bool {
		_, errno := e.stkA.Read(cfd, make([]byte, 1))
		return errno == hostos.ECONNRESET
	})
}

func TestTCPDataSurvivesLoss(t *testing.T) {
	// Stall the receiver so the RX FIFO tail-drops, then let it drain:
	// retransmission must deliver everything.
	e := newEnv(t, false)
	cfd, afd := e.connectPair(5001)
	msg := bytes.Repeat([]byte{0x42}, 200*1024)
	sent := 0
	// Phase 1: sender pumps alone past its RTO; the receiver does not
	// poll, so in-flight segments sit unacknowledged and the sender must
	// retransmit (50 µs per tick * 3000 = 150 ms > the 100 ms initial
	// RTO).
	for i := 0; i < 3000; i++ {
		if sent < len(msg) {
			if n, errno := e.stkA.Write(cfd, msg[sent:min(sent+8192, len(msg))]); errno == hostos.OK {
				sent += n
			}
		}
		e.stkA.PollOnce()
		e.clk.Advance(50000)
	}
	// Phase 2: both poll; retransmissions recover.
	rcvd := 0
	buf := make([]byte, 65536)
	e.pumpUntil(120000, "recovered transfer", func() bool {
		for sent < len(msg) {
			n, errno := e.stkA.Write(cfd, msg[sent:min(sent+8192, len(msg))])
			if errno != hostos.OK {
				break
			}
			sent += n
		}
		for {
			n, errno := e.stkB.Read(afd, buf)
			if errno != hostos.OK || n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				if buf[i] != 0x42 {
					t.Fatal("corrupted byte after recovery")
				}
			}
			rcvd += n
		}
		return sent == len(msg) && rcvd == len(msg)
	})
	st := e.stkA.Stats()
	if st.Retransmit == 0 {
		t.Fatal("expected retransmissions after receiver stall")
	}
}

func TestARPResolutionHappensOnce(t *testing.T) {
	e := newEnv(t, false)
	e.connectPair(5001)
	sa := e.stkA.Stats()
	if sa.ArpTx == 0 {
		t.Fatal("no ARP was sent")
	}
	if sa.ArpTx > 2 {
		t.Fatalf("ARP storm: %d requests", sa.ArpTx)
	}
}

func TestICMPPing(t *testing.T) {
	e := newEnv(t, false)
	// Hand-craft an echo request from A to B via the stack's TX helpers.
	e.stkA.Lock()
	nif := e.stkA.nifs[0]
	payload := []byte("abcdefgh")
	m, frame := e.stkA.txAlloc(nif, IPv4HeaderLen+ICMPHeaderLen+len(payload))
	if m == nil {
		t.Fatal("alloc failed")
	}
	seg := frame[EthHeaderLen+IPv4HeaderLen:]
	copy(seg[ICMPHeaderLen:], payload)
	PutICMPEcho(seg, ICMPEcho{Type: ICMPEchoRequest, ID: 77, Seq: 1})
	e.stkA.sendIPv4(nif, m, frame, IP4(10, 0, 0, 2), ProtoICMP, ICMPHeaderLen+len(payload))
	e.stkA.Unlock()

	// The reply raises A's RX counter with an echo-reply frame; detect it
	// by polling stats.
	e.pumpUntil(4000, "echo reply", func() bool {
		return e.stkA.Stats().RxFrames >= 1
	})
}

func TestUDPSendRecv(t *testing.T) {
	e := newEnv(t, false)
	sfd, _ := e.stkB.Socket(SockDgram)
	if errno := e.stkB.Bind(sfd, IPv4Addr{}, 14550); errno != hostos.OK {
		t.Fatal(errno)
	}
	cfd, _ := e.stkA.Socket(SockDgram)
	msg := []byte("HEARTBEAT mavlink-ish")
	if _, errno := e.stkA.SendTo(cfd, msg, IP4(10, 0, 0, 2), 14550); errno != hostos.OK {
		t.Fatal(errno)
	}
	buf := make([]byte, 256)
	var got []byte
	var from IPv4Addr
	e.pumpUntil(4000, "datagram", func() bool {
		n, src, _, errno := e.stkB.RecvFrom(sfd, buf)
		if errno == hostos.OK {
			got = append([]byte{}, buf[:n]...)
			from = src
			return true
		}
		return false
	})
	if !bytes.Equal(got, msg) || from != IP4(10, 0, 0, 1) {
		t.Fatalf("got %q from %v", got, from)
	}
}

func TestUDPOversizedRejected(t *testing.T) {
	e := newEnv(t, false)
	cfd, _ := e.stkA.Socket(SockDgram)
	big := make([]byte, MTU)
	if _, errno := e.stkA.SendTo(cfd, big, IP4(10, 0, 0, 2), 14550); errno != hostos.EMSGSIZE {
		t.Fatalf("oversized datagram: %v", errno)
	}
}

func TestEpollReadiness(t *testing.T) {
	e := newEnv(t, false)
	cfd, afd := e.connectPair(5001)
	ep := e.stkB.EpollCreate()
	if errno := e.stkB.EpollCtl(ep, EpollCtlAdd, afd, EPOLLIN|EPOLLOUT); errno != hostos.OK {
		t.Fatal(errno)
	}
	evs := make([]Event, 8)
	// Writable immediately, not readable.
	n, _ := e.stkB.EpollWait(ep, evs)
	if n != 1 || evs[0].Events&EPOLLOUT == 0 || evs[0].Events&EPOLLIN != 0 {
		t.Fatalf("initial events: %+v (n=%d)", evs[0], n)
	}
	// After data arrives: readable.
	e.stkA.Write(cfd, []byte("ping"))
	e.pumpUntil(4000, "readable", func() bool {
		n, _ := e.stkB.EpollWait(ep, evs)
		return n == 1 && evs[0].Events&EPOLLIN != 0
	})
	// Modify to OUT only.
	if errno := e.stkB.EpollCtl(ep, EpollCtlMod, afd, EPOLLOUT); errno != hostos.OK {
		t.Fatal(errno)
	}
	n, _ = e.stkB.EpollWait(ep, evs)
	if n != 1 || evs[0].Events&EPOLLIN != 0 {
		t.Fatal("mod did not mask EPOLLIN")
	}
	// Delete.
	if errno := e.stkB.EpollCtl(ep, EpollCtlDel, afd, 0); errno != hostos.OK {
		t.Fatal(errno)
	}
	if n, _ := e.stkB.EpollWait(ep, evs); n != 0 {
		t.Fatal("deleted fd still reported")
	}
}

func TestEpollListenerReadiness(t *testing.T) {
	e := newEnv(t, false)
	lfd, _ := e.stkB.Socket(SockStream)
	e.stkB.Bind(lfd, IPv4Addr{}, 6000)
	e.stkB.Listen(lfd, 4)
	ep := e.stkB.EpollCreate()
	e.stkB.EpollCtl(ep, EpollCtlAdd, lfd, EPOLLIN)
	evs := make([]Event, 4)
	if n, _ := e.stkB.EpollWait(ep, evs); n != 0 {
		t.Fatal("listener ready without connections")
	}
	cfd, _ := e.stkA.Socket(SockStream)
	e.stkA.Connect(cfd, IP4(10, 0, 0, 2), 6000)
	e.pumpUntil(4000, "accept ready", func() bool {
		n, _ := e.stkB.EpollWait(ep, evs)
		return n == 1 && evs[0].Events&EPOLLIN != 0
	})
}

func TestSocketAPIErrors(t *testing.T) {
	e := newEnv(t, false)
	s := e.stkA
	if _, errno := s.Socket(99); errno != hostos.EINVAL {
		t.Fatal("bad type accepted")
	}
	if errno := s.Bind(999, IPv4Addr{}, 80); errno != hostos.EBADF {
		t.Fatal("bind on bad fd")
	}
	fd, _ := s.Socket(SockStream)
	if errno := s.Bind(fd, IP4(192, 168, 9, 9), 80); errno != hostos.EINVAL {
		t.Fatal("bind to foreign IP accepted")
	}
	if errno := s.Listen(fd, 4); errno != hostos.EINVAL {
		t.Fatal("listen before bind accepted")
	}
	if _, errno := s.Write(fd, []byte("x")); errno != hostos.ENOTCONN {
		t.Fatal("write on unconnected socket accepted")
	}
	if _, errno := s.Read(fd, make([]byte, 1)); errno != hostos.ENOTCONN {
		t.Fatal("read on unconnected socket accepted")
	}
	if errno := s.Close(fd); errno != hostos.OK {
		t.Fatal("close failed")
	}
	if errno := s.Close(fd); errno != hostos.EBADF {
		t.Fatal("double close accepted")
	}
	// Two streams binding the same endpoint: the second bind collides
	// with the existing listener.
	a, _ := s.Socket(SockStream)
	b, _ := s.Socket(SockStream)
	s.Bind(a, IPv4Addr{}, 7100)
	s.Listen(a, 1)
	if errno := s.Bind(b, IPv4Addr{}, 7100); errno != hostos.EADDRINUSE {
		t.Fatalf("duplicate stream bind: %v", errno)
	}
}

func TestConnStateDiagnostics(t *testing.T) {
	e := newEnv(t, false)
	cfd, _ := e.connectPair(5001)
	if st := e.stkA.ConnState(cfd); st != "ESTABLISHED" {
		t.Fatal(st)
	}
	if st := e.stkA.ConnState(12345); st != "NONE" {
		t.Fatal(st)
	}
}
