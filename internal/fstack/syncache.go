package fstack

import (
	"repro/internal/fstack/connscale"
	"repro/internal/obs"
)

// The SYN cache (FreeBSD's tcp_syncache, which F-Stack inherits): a
// half-open connection costs one pooled synEntry — tuple, ISS and the
// negotiated options — instead of a full tcpConn with socket buffers.
// The entry answers the SYN with a SYN|ACK, retransmits it off the
// stack's synWheel, and graduates into a real connection only when the
// final ACK of the handshake arrives. A SYN flood therefore exhausts a
// fixed-size cache, not the connection table or the buffer segment.

// defaultSynCacheCap bounds the cache when the tuning leaves
// SynCacheSize zero.
const defaultSynCacheCap = 1024

// synEntry is one half-open connection.
type synEntry struct {
	tuple fourTuple
	nif   *NetIF

	iss      uint32 // our initial sequence number
	irs      uint32 // peer's initial sequence number (SYN's Seq)
	tsRecent uint32 // latest peer TSVal (echoed in TSEcr)
	mss      int    // negotiated send MSS; 0 = peer offered no MSS option
	sackOK   bool   // both sides agreed on SACK
	wsOK     bool   // both sides agreed on window scaling
	peerWS   uint8  // peer's window-scale shift
	wnd      uint32 // receive window our SYN|ACK advertises
	advWnd   uint32 // what that advertisement decodes to (seeds conn.advWnd)

	rto    int64 // SYN|ACK retransmit interval (doubles per resend)
	rxtN   int   // resend count
	timerH connscale.Handle
}

// synCacheCap is the configured cache bound.
func (s *Stack) synCacheCap() int {
	if s.tuning.SynCacheSize > 0 {
		return s.tuning.SynCacheSize
	}
	return defaultSynCacheCap
}

// allocSynEntry takes an entry off the pool (or allocates one).
func (s *Stack) allocSynEntry() *synEntry {
	if n := len(s.synFree); n > 0 {
		e := s.synFree[n-1]
		s.synFree[n-1] = nil
		s.synFree = s.synFree[:n-1]
		*e = synEntry{timerH: connscale.None}
		return e
	}
	return &synEntry{timerH: connscale.None}
}

// noteSynDrop counts and traces one refused SYN.
func (s *Stack) noteSynDrop(reason int64, l *listener, port uint16) {
	s.stats.SynDrops++
	if s.obsTr != nil {
		depth := int64(0)
		if l != nil {
			depth = int64(l.pendingCount())
		}
		s.obsTr.Record(s.now(), obs.EvTCPSynDrop, s.obsSrc, reason, depth, int64(port))
	}
}

// acceptSyn admits a SYN into the cache and answers SYN|ACK. Returns
// false when the SYN was refused (backlog or cache full) — the caller
// decides between the default silent drop and the SynRST knob.
func (s *Stack) acceptSyn(nif *NetIF, l *listener, tuple fourTuple, h TCPHeader) bool {
	if l.pendingCount()+l.halfOpen >= l.backlog {
		s.noteSynDrop(obs.SynDropBacklog, l, tuple.local.Port)
		return false
	}
	if len(s.syncache) >= s.synCacheCap() {
		s.noteSynDrop(obs.SynDropCache, l, tuple.local.Port)
		return false
	}
	e := s.allocSynEntry()
	e.tuple = tuple
	e.nif = nif
	e.irs = h.Seq
	if h.HasTS {
		e.tsRecent = h.TSVal
	}
	if h.MSS != 0 {
		e.mss = min(int(h.MSS)-tsOptionLen, MaxSegData)
	}
	// Feature negotiation: only echo what the client offered AND the
	// stack's tuning enables; the SYN|ACK then carries our side of the
	// agreement.
	e.sackOK = s.tuning.SACK && h.SACKPermitted
	e.wsOK = s.tuning.WindowScale > 0 && h.HasWS
	e.peerWS = h.WScale
	e.wnd = s.freshRcvWnd()
	e.advWnd = min(e.wnd, 65535) // SYN windows are never scaled
	e.iss = s.iss()
	e.rto = rtoInitial
	s.syncache[tuple] = e
	l.halfOpen++
	s.sendSynAck(e)
	e.timerH = s.synWheel.Insert(s.now()+e.rto, e)
	return true
}

// freshRcvWnd is the receive window a brand-new connection would
// advertise: its buffer is empty, so only the tuned size and the
// scaling caps apply. Must match tcpConn.rcvWnd on a fresh conn so the
// SYN|ACK is byte-identical to the one the pre-syncache stack sent.
func (s *Stack) freshRcvWnd() uint32 {
	w := rcvBufSize
	if s.tuning.RcvBufBytes > 0 {
		w = s.tuning.RcvBufBytes
	}
	if s.tuning.WindowScale == 0 {
		if w > maxRcvWnd {
			w = maxRcvWnd
		}
	} else if cap := 65535 << s.tuning.WindowScale; w > cap {
		w = cap
	}
	return uint32(w)
}

// sendSynAck emits (or re-emits) the entry's SYN|ACK.
func (s *Stack) sendSynAck(e *synEntry) {
	h := TCPHeader{
		SrcPort: e.tuple.local.Port,
		DstPort: e.tuple.remote.Port,
		Seq:     e.iss,
		Ack:     e.irs + 1,
		Flags:   TCPSyn | TCPAck,
		HasTS:   true,
		TSVal:   uint32(s.now() / 1e3),
		TSEcr:   e.tsRecent,
		Window:  uint16(min(e.wnd, 65535)),
		MSS:     MSSDefault,
	}
	if e.wsOK {
		h.HasWS = true
		h.WScale = s.tuning.WindowScale
	}
	h.SACKPermitted = e.sackOK
	hl := h.encodedLen()
	m, frame := s.txAlloc(e.nif, IPv4HeaderLen+hl)
	if m == nil {
		return // ring full: the retransmit timer is the retry path
	}
	PutTCPHeader(frame[EthHeaderLen+IPv4HeaderLen:], h, e.tuple.local.IP, e.tuple.remote.IP, hl)
	s.sendIPv4(e.nif, m, frame, e.tuple.remote.IP, ProtoTCP, hl)
}

// synRetransmit fires off the synWheel: resend the SYN|ACK with
// exponential backoff, giving up (and releasing the backlog slot)
// after synRetries resends — mirroring the SYN_RCVD RTO path
// connections used before the cache existed.
func (s *Stack) synRetransmit(e *synEntry) {
	e.rxtN++
	if e.rxtN > synRetries {
		s.synDropEntry(e)
		return
	}
	s.sendSynAck(e)
	e.rto = min(e.rto*2, int64(rtoMax))
	e.timerH = s.synWheel.Insert(s.now()+e.rto, e)
}

// synInput processes a segment addressed to a half-open entry.
func (s *Stack) synInput(e *synEntry, h TCPHeader, payload []byte) {
	if h.HasTS {
		e.tsRecent = h.TSVal
	}
	if h.Flags&TCPRst != 0 {
		s.synDropEntry(e)
		return
	}
	if h.Flags&TCPAck != 0 && h.Ack == e.iss+1 {
		s.graduate(e, h, payload)
		return
	}
	if h.Flags&TCPSyn != 0 {
		s.sendSynAck(e) // duplicate SYN: re-ack
		return
	}
	// Anything else (wrong ACK, stray data): ignore; the peer's
	// retransmissions sort it out.
}

// graduate turns a half-open entry into a real connection on the final
// ACK of the handshake, enforcing the accept-queue bound. The new conn
// is set up exactly as the pre-syncache SYN_RCVD state left it, then
// the ACK is run through the normal input path — so payload, FIN and
// window handling are byte-identical to the historical fall-through.
func (s *Stack) graduate(e *synEntry, h TCPHeader, payload []byte) {
	l := s.findListener(e.tuple.local)
	if l != nil && l.pendingCount() >= l.backlog {
		// Accept queue full. Default: keep the entry half-open (the
		// SYN|ACK retransmit re-offers graduation once the application
		// drains the queue — FreeBSD's syncache does the same); the
		// SynRST knob refuses loudly instead.
		s.stats.AcceptOverflows++
		if s.obsTr != nil {
			s.obsTr.Record(s.now(), obs.EvTCPSynDrop, s.obsSrc,
				obs.SynDropOverflow, int64(l.pendingCount()), int64(e.tuple.local.Port))
		}
		if s.tuning.SynRST {
			s.sendRSTForEntry(e)
			s.synDropEntry(e)
		}
		return
	}
	c, err := s.newTCPConn(e.nif, e.tuple)
	if err != nil {
		return // segment exhausted: keep the entry, the peer retries
	}
	c.setState(tcpSynReceived)
	c.rcvNxt = e.irs + 1
	c.tsRecent = e.tsRecent
	if e.mss != 0 {
		c.sndMSS = e.mss
		c.cc.SetMSS(c.sndMSS)
	}
	c.offerSACK, c.sackOK = e.sackOK, e.sackOK
	c.offerWS = e.wsOK
	if e.wsOK {
		c.sndWScale = e.peerWS
		c.rcvWScale = s.tuning.WindowScale
	}
	// The handshake is complete: sndUna already past the SYN.
	c.sndUna, c.sndNxt, c.sndMax = e.iss+1, e.iss+1, e.iss+1
	c.sndWnd = c.peerWnd(h)
	c.advWnd = e.advWnd
	c.rto = e.rto // carries any SYN|ACK backoff, like the conn path did
	s.addConn(e.tuple, c)
	s.stats.Accepts++
	s.synFreeEntry(e)
	c.setState(tcpEstablished)
	s.notifyAccept(c)
	if c.state == tcpClosed {
		return // listener vanished: notifyAccept already RST+aborted
	}
	c.input(h, payload)
}

// sendRSTForEntry refuses a half-open peer with a reset.
func (s *Stack) sendRSTForEntry(e *synEntry) {
	h := TCPHeader{
		SrcPort: e.tuple.local.Port,
		DstPort: e.tuple.remote.Port,
		Seq:     e.iss + 1,
		Ack:     e.irs + 1,
		Flags:   TCPRst | TCPAck,
	}
	hl := h.encodedLen()
	m, frame := s.txAlloc(e.nif, IPv4HeaderLen+hl)
	if m == nil {
		return
	}
	PutTCPHeader(frame[EthHeaderLen+IPv4HeaderLen:], h, e.tuple.local.IP, e.tuple.remote.IP, hl)
	s.sendIPv4(e.nif, m, frame, e.tuple.remote.IP, ProtoTCP, hl)
}

// synDropEntry abandons a half-open entry, releasing its listener's
// backlog slot.
func (s *Stack) synDropEntry(e *synEntry) {
	if l := s.findListener(e.tuple.local); l != nil && l.halfOpen > 0 {
		l.halfOpen--
	}
	s.synFreeEntry(e)
}

// synFreeEntry removes an entry from the cache and returns it to the
// pool.
func (s *Stack) synFreeEntry(e *synEntry) {
	if e.timerH != connscale.None {
		s.synWheel.Remove(e.timerH)
		e.timerH = connscale.None
	}
	delete(s.syncache, e.tuple)
	e.nif = nil
	s.synFree = append(s.synFree, e)
}
