package fstack

import (
	"encoding/binary"
	"fmt"
)

// TCP flag bits.
const (
	TCPFin uint8 = 1 << 0
	TCPSyn uint8 = 1 << 1
	TCPRst uint8 = 1 << 2
	TCPPsh uint8 = 1 << 3
	TCPAck uint8 = 1 << 4
)

// TCPHeaderLen is the option-less header size.
const TCPHeaderLen = 20

// tsOptionLen is the timestamps option including the two NOPs that align
// it: 1+1+10 = 12 bytes. Carrying it on every segment is what turns the
// 1460-byte MSS into 1448 bytes of payload per frame — and the
// 941 Mbit/s goodput ceiling the paper's Table II reports for a
// saturated single port.
const tsOptionLen = 12

// MSSDefault is the MSS we advertise: MTU minus IP and TCP base headers.
const MSSDefault = MTU - IPv4HeaderLen - TCPHeaderLen // 1460

// MaxSegData is the real payload per segment once timestamps are on.
const MaxSegData = MSSDefault - tsOptionLen // 1448

// MaxSACKBlocks is how many SACK blocks fit next to the timestamps
// option: 40 bytes of option space minus 12 (TS) minus 4 (2 NOPs +
// kind/len) leaves room for exactly three 8-byte blocks, which is the
// RFC 2018 arithmetic every timestamp-enabled stack lands on.
const MaxSACKBlocks = 3

// MaxWScale caps the window-scale shift (RFC 7323 §2.3).
const MaxWScale = 14

// SACKBlock is one [Start, End) received run reported in a SACK option.
type SACKBlock struct {
	Start uint32
	End   uint32
}

// TCPHeader is a TCP header with the options this stack uses: MSS,
// window scale and SACK-permitted on SYNs; timestamps and SACK blocks
// afterwards.
type TCPHeader struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16

	// MSS option (SYN segments only); zero = absent.
	MSS uint16
	// Window-scale option (SYN segments only); HasWS controls presence.
	HasWS  bool
	WScale uint8
	// SACK-permitted option (SYN segments only).
	SACKPermitted bool
	// SACK option: up to MaxSACKBlocks received runs (pure ACKs only —
	// a full-MSS data segment has no option space left for them).
	SACK []SACKBlock
	// Timestamps option; HasTS controls presence.
	HasTS bool
	TSVal uint32
	TSEcr uint32
}

// encodedLen returns the header length including options, padded to 4.
func (h *TCPHeader) encodedLen() int {
	n := TCPHeaderLen
	if h.MSS != 0 {
		n += 4
	}
	if h.HasWS {
		n += 4 // NOP + kind(3) len(3) shift
	}
	if h.SACKPermitted {
		n += 4 // NOP NOP + kind(4) len(2)
	}
	if h.HasTS {
		n += tsOptionLen
	}
	if len(h.SACK) > 0 {
		n += 4 + 8*len(h.SACK) // NOP NOP + kind(5) len + blocks
	}
	return n
}

// PutTCPHeader marshals h into b (which must already hold the payload at
// b[h.encodedLen():length]) and computes the checksum over b[:length].
// It returns the header length.
func PutTCPHeader(b []byte, h TCPHeader, src, dst IPv4Addr, length int) int {
	hl := h.encodedLen()
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	b[12] = uint8(hl/4) << 4
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	b[16], b[17] = 0, 0 // checksum
	b[18], b[19] = 0, 0 // urgent
	off := TCPHeaderLen
	if h.MSS != 0 {
		b[off] = 2 // kind MSS
		b[off+1] = 4
		binary.BigEndian.PutUint16(b[off+2:off+4], h.MSS)
		off += 4
	}
	if h.HasWS {
		b[off] = 1   // NOP
		b[off+1] = 3 // kind window scale
		b[off+2] = 3
		b[off+3] = h.WScale
		off += 4
	}
	if h.SACKPermitted {
		b[off] = 1 // NOP
		b[off+1] = 1
		b[off+2] = 4 // kind SACK-permitted
		b[off+3] = 2
		off += 4
	}
	if h.HasTS {
		b[off] = 1 // NOP
		b[off+1] = 1
		b[off+2] = 8 // kind timestamps
		b[off+3] = 10
		binary.BigEndian.PutUint32(b[off+4:off+8], h.TSVal)
		binary.BigEndian.PutUint32(b[off+8:off+12], h.TSEcr)
		off += tsOptionLen
	}
	if len(h.SACK) > 0 {
		b[off] = 1 // NOP
		b[off+1] = 1
		b[off+2] = 5 // kind SACK
		b[off+3] = uint8(2 + 8*len(h.SACK))
		off += 4
		for _, blk := range h.SACK {
			binary.BigEndian.PutUint32(b[off:off+4], blk.Start)
			binary.BigEndian.PutUint32(b[off+4:off+8], blk.End)
			off += 8
		}
	}
	cs := transportChecksum(src, dst, ProtoTCP, b[:length])
	binary.BigEndian.PutUint16(b[16:18], cs)
	return hl
}

// ParseTCPHeader unmarshals and validates a TCP segment, returning the
// header and the data offset.
func ParseTCPHeader(b []byte, src, dst IPv4Addr) (TCPHeader, int, error) {
	if len(b) < TCPHeaderLen {
		return TCPHeader{}, 0, fmt.Errorf("fstack: short TCP segment (%d bytes)", len(b))
	}
	hl := int(b[12]>>4) * 4
	if hl < TCPHeaderLen || hl > len(b) {
		return TCPHeader{}, 0, fmt.Errorf("fstack: bad TCP data offset %d", hl)
	}
	if transportChecksum(src, dst, ProtoTCP, b) != 0 {
		return TCPHeader{}, 0, fmt.Errorf("fstack: TCP checksum mismatch")
	}
	var h TCPHeader
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Seq = binary.BigEndian.Uint32(b[4:8])
	h.Ack = binary.BigEndian.Uint32(b[8:12])
	h.Flags = b[13]
	h.Window = binary.BigEndian.Uint16(b[14:16])

	// Options.
	opts := b[TCPHeaderLen:hl]
	for len(opts) > 0 {
		switch opts[0] {
		case 0: // end of options
			opts = nil
		case 1: // NOP
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				return TCPHeader{}, 0, fmt.Errorf("fstack: malformed TCP option")
			}
			body := opts[:opts[1]]
			switch body[0] {
			case 2: // MSS
				if len(body) == 4 {
					h.MSS = binary.BigEndian.Uint16(body[2:4])
				}
			case 3: // window scale
				if len(body) == 3 {
					h.HasWS = true
					h.WScale = min(body[2], MaxWScale)
				}
			case 4: // SACK-permitted
				if len(body) == 2 {
					h.SACKPermitted = true
				}
			case 5: // SACK blocks
				for rest := body[2:]; len(rest) >= 8; rest = rest[8:] {
					h.SACK = append(h.SACK, SACKBlock{
						Start: binary.BigEndian.Uint32(rest[0:4]),
						End:   binary.BigEndian.Uint32(rest[4:8]),
					})
				}
			case 8: // timestamps
				if len(body) == 10 {
					h.HasTS = true
					h.TSVal = binary.BigEndian.Uint32(body[2:6])
					h.TSEcr = binary.BigEndian.Uint32(body[6:10])
				}
			}
			opts = opts[opts[1]:]
		}
	}
	return h, hl, nil
}

// Sequence-number arithmetic (RFC 793 modular comparison).

func seqLT(a, b uint32) bool { return int32(a-b) < 0 }
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }
func seqGT(a, b uint32) bool { return int32(a-b) > 0 }
func seqGE(a, b uint32) bool { return int32(a-b) >= 0 }
func seqMax(a, b uint32) uint32 {
	if seqGT(a, b) {
		return a
	}
	return b
}
