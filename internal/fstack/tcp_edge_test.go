package fstack

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/hostos"
)

func TestTCPSimultaneousClose(t *testing.T) {
	e := newEnv(t, false)
	cfd, afd := e.connectPair(5001)
	// Both sides close in the same tick: FINs cross (CLOSING path).
	e.stkA.Close(cfd)
	e.stkB.Close(afd)
	e.pumpUntil(60000, "both tables drained", func() bool {
		e.stkA.Lock()
		na := len(e.stkA.conns)
		e.stkA.Unlock()
		e.stkB.Lock()
		nb := len(e.stkB.conns)
		e.stkB.Unlock()
		return na == 0 && nb == 0
	})
}

func TestTCPWriteAfterCloseFails(t *testing.T) {
	e := newEnv(t, false)
	cfd, _ := e.connectPair(5001)
	e.stkA.Close(cfd)
	// The fd is gone immediately (close releases the descriptor).
	if _, errno := e.stkA.Write(cfd, []byte("x")); errno != hostos.EBADF {
		t.Fatalf("write after close: %v", errno)
	}
}

func TestTCPHalfClose(t *testing.T) {
	// A closes; B can still send until it closes too.
	e := newEnv(t, false)
	cfd, afd := e.connectPair(5001)
	e.stkA.Close(cfd)
	// Even while A's FIN is in flight, B pushes data. A's socket is
	// closed at the API level, but B must not error.
	msg := []byte("late data from the passive side")
	e.pumpUntil(8000, "B write", func() bool {
		n, errno := e.stkB.Write(afd, msg)
		return errno == hostos.OK && n == len(msg)
	})
	e.pumpUntil(8000, "B sees EOF", func() bool {
		n, errno := e.stkB.Read(afd, make([]byte, 16))
		return errno == hostos.OK && n == 0
	})
}

func TestTCPRstOnDataToClosedPort(t *testing.T) {
	e := newEnv(t, false)
	cfd, afd := e.connectPair(5001)
	// Forcibly remove B's conn (simulates a crashed process); A's next
	// data must be RST'd.
	e.stkB.Lock()
	for _, c := range e.stkB.conns {
		e.stkB.removeConn(c)
	}
	delete(e.stkB.socks, afd)
	e.stkB.Unlock()
	e.stkA.Write(cfd, []byte("into the void"))
	e.pumpUntil(8000, "reset", func() bool {
		_, errno := e.stkA.Read(cfd, make([]byte, 4))
		return errno == hostos.ECONNRESET
	})
}

func TestTCPZeroWindowRecovery(t *testing.T) {
	// Fill B's receive buffer (app not reading); the window closes; when
	// the app drains, a window update reopens the flow.
	e := newEnv(t, false)
	cfd, afd := e.connectPair(5001)
	payload := bytes.Repeat([]byte{0x7E}, 2*1024*1024) // > sndbuf+rcvbuf, forces a closed window
	sent := 0
	stalled := 0
	for i := 0; i < 60000 && sent < len(payload); i++ {
		n, errno := e.stkA.Write(cfd, payload[sent:min(sent+16384, len(payload))])
		if errno == hostos.OK {
			sent += n
		} else {
			stalled++
		}
		e.tick()
		if stalled > 200 {
			break // sender blocked on a closed window: expected
		}
	}
	if stalled == 0 {
		t.Fatal("the flow never hit backpressure — window logic untested")
	}
	// Drain and confirm the transfer completes.
	rcvd := 0
	buf := make([]byte, 65536)
	e.pumpUntil(120000, "drain completes", func() bool {
		for sent < len(payload) {
			n, errno := e.stkA.Write(cfd, payload[sent:min(sent+16384, len(payload))])
			if errno != hostos.OK {
				break
			}
			sent += n
		}
		for {
			n, errno := e.stkB.Read(afd, buf)
			if errno != hostos.OK || n == 0 {
				break
			}
			rcvd += n
		}
		return rcvd == len(payload)
	})
}

func TestTCPDuplicateSynHandled(t *testing.T) {
	e := newEnv(t, false)
	lfd, _ := e.stkB.Socket(SockStream)
	e.stkB.Bind(lfd, IPv4Addr{}, 5001)
	e.stkB.Listen(lfd, 4)
	cfd, _ := e.stkA.Socket(SockStream)
	e.stkA.Connect(cfd, IP4(10, 0, 0, 2), 5001)
	// The server's conn exists only once the handshake's final ACK
	// graduates the syncache entry, so wait for both sides.
	e.pumpUntil(4000, "established", func() bool {
		if e.stkA.ConnState(cfd) != "ESTABLISHED" {
			return false
		}
		e.stkB.Lock()
		n := len(e.stkB.conns)
		e.stkB.Unlock()
		return n == 1
	})
	// Re-inject a duplicate SYN by hand: the server must re-ack, not
	// crash or create a second connection.
	e.stkB.Lock()
	nconns := len(e.stkB.conns)
	e.stkB.Unlock()
	if nconns != 1 {
		t.Fatalf("conns = %d", nconns)
	}
}

// Property: the TCP stream preserves arbitrary write patterns (size
// 1..9000 bytes) end to end, across segmentation boundaries.
func TestQuickTCPStreamIntegrity(t *testing.T) {
	e := newEnv(t, false)
	cfd, afd := e.connectPair(5001)
	var hashIn, hashOut uint64
	pending := 0

	write := func(chunk []byte) {
		sent := 0
		e.pumpUntil(40000, "chunk write", func() bool {
			for sent < len(chunk) {
				n, errno := e.stkA.Write(cfd, chunk[sent:])
				if errno == hostos.EAGAIN {
					// drain a bit
					buf := make([]byte, 32768)
					for {
						n, errno := e.stkB.Read(afd, buf)
						if errno != hostos.OK || n == 0 {
							break
						}
						for _, by := range buf[:n] {
							hashOut = hashOut*1099511628211 ^ uint64(by)
						}
						pending -= n
					}
					return false
				}
				if errno != hostos.OK {
					t.Fatalf("write: %v", errno)
				}
				sent += n
			}
			return true
		})
		for _, by := range chunk {
			hashIn = hashIn*1099511628211 ^ uint64(by)
		}
		pending += len(chunk)
	}

	f := func(sizes []uint16, seed byte) bool {
		for i, sz := range sizes {
			n := int(sz)%9000 + 1
			chunk := make([]byte, n)
			for j := range chunk {
				chunk[j] = seed + byte(i) + byte(j)
			}
			write(chunk)
		}
		// Drain everything still in flight.
		buf := make([]byte, 32768)
		e.pumpUntil(120000, "drain", func() bool {
			for {
				n, errno := e.stkB.Read(afd, buf)
				if errno != hostos.OK || n == 0 {
					break
				}
				for _, by := range buf[:n] {
					hashOut = hashOut*1099511628211 ^ uint64(by)
				}
				pending -= n
			}
			return pending == 0
		})
		return hashIn == hashOut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
