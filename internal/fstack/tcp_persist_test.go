package fstack

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/hostos"
	"repro/internal/netem"
	"repro/internal/sim"
)

// parsePureAckWindow decodes an Ethernet/IPv4/TCP frame far enough to
// report the advertised window and whether the segment carries
// payload. ok is false for anything that is not a plain TCP frame.
func parsePureAckWindow(data []byte) (wnd uint16, payloadLen int, ok bool) {
	if len(data) < 54 || binary.BigEndian.Uint16(data[12:14]) != 0x0800 {
		return 0, 0, false
	}
	ip := data[14:]
	if ip[9] != 6 { // not TCP
		return 0, 0, false
	}
	ihl := int(ip[0]&0x0f) * 4
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	tcp := ip[ihl:]
	dataOff := int(tcp[12]>>4) * 4
	return binary.BigEndian.Uint16(tcp[14:16]), totalLen - ihl - dataOff, true
}

// TestPersistTimerRecoversLostWindowUpdate is the deterministic
// zero-window deadlock regression: the receiver advertises a zero
// window, reopens it, and the hook destroys exactly that one window
// update. Before the persist timer this stalled the connection
// forever — the receiver's update logic fires once (it tracks the
// advertised window it already sent), and the sender had no timer
// running because nothing was in flight. The sender's zero-window
// probe must force a byte through and elicit a fresh ACK carrying the
// open window.
func TestPersistTimerRecoversLostWindowUpdate(t *testing.T) {
	sawZero, droppedUpdate := false, false
	e := newHookedEnv(t, func(from int, data []byte, _ int64) (int64, bool) {
		if from != 1 { // only watch receiver -> sender ACKs
			return 0, false
		}
		wnd, payload, ok := parsePureAckWindow(data)
		if !ok || payload != 0 {
			return 0, false
		}
		if wnd == 0 {
			sawZero = true
		} else if sawZero && !droppedUpdate {
			droppedUpdate = true
			return 0, true // the window update: lose it
		}
		return 0, false
	})
	// An 8 KiB receive buffer makes the window trivial to slam shut.
	e.stkB.SetTCPTuning(TCPTuning{RcvBufBytes: 8192})
	cfd, afd := e.connectPair(5001)

	payload := bytes.Repeat([]byte{0x5A}, 24*1024)
	sent := 0
	for sent < len(payload) {
		n, errno := e.stkA.Write(cfd, payload[sent:])
		if errno != hostos.OK {
			break
		}
		sent += n
	}
	// Let the transfer fill the receiver's buffer and stall: the
	// receiver application reads nothing.
	e.pumpUntil(20000, "zero window advertised", func() bool { return sawZero })

	// Drain the receiver; its single window update is destroyed by the
	// hook, so only the persist probe can restart the sender.
	var got []byte
	buf := make([]byte, 65536)
	e.pumpUntil(400000, "transfer completes past the lost update", func() bool {
		for sent < len(payload) {
			n, errno := e.stkA.Write(cfd, payload[sent:])
			if errno != hostos.OK || n == 0 {
				break
			}
			sent += n
		}
		for {
			n, errno := e.stkB.Read(afd, buf)
			if errno != hostos.OK || n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		return len(got) == len(payload)
	})
	if !bytes.Equal(got, payload) {
		t.Fatal("stream corrupted across the zero-window stall")
	}
	if !droppedUpdate {
		t.Fatal("the window update was never dropped — test is vacuous")
	}
	e.stkA.Lock()
	st := e.stkA.Stats()
	e.stkA.Unlock()
	if st.PersistProbes == 0 {
		t.Fatalf("no zero-window probes sent: %+v", st)
	}
	t.Logf("recovered via %d persist probe(s)", st.PersistProbes)
}

// TestPersistSurvivesSqueezedAckChannel is the ConnectAsym version of
// the deadlock: the reverse (ACK) channel is squeezed to a few hundred
// bytes of queue at modem rates, so window updates race the backlog of
// ordinary ACKs and some are tail-dropped. A slow reader then opens
// and closes the window repeatedly; every lost update is a would-be
// deadlock that only the persist timer clears. The forward direction
// is clean, so any stall is the reverse path's doing.
func TestPersistSurvivesSqueezedAckChannel(t *testing.T) {
	clk := sim.NewVClock()
	stkA, cardA := buildMachine(t, clk, "0000:03:00", 1, IP4(10, 0, 0, 1), false)
	stkB, cardB := buildMachine(t, clk, "0000:04:00", 2, IP4(10, 0, 0, 2), false)
	netem.ConnectAsym(clk, cardA.Port(0), cardB.Port(0),
		netem.Config{}, // clean data direction
		netem.Config{RateBps: 100e3, QueueBytes: 150, Seed: 7})
	// Slow-ACK serialization means ms-scale ACK delays; keep the RTO
	// off the sender's back so the reverse path is the only villain.
	stkA.SetRTOMin(100e6)
	stkB.SetRTOMin(100e6)
	stkB.SetTCPTuning(TCPTuning{RcvBufBytes: 8192})
	e := &testEnv{t: t, clk: clk, stkA: stkA, stkB: stkB}
	cfd, afd := e.connectPair(5001)

	payload := bytes.Repeat([]byte{0xC3}, 64*1024)
	sent := 0
	var got []byte
	buf := make([]byte, 65536)
	probesSeen := uint64(0)
	probes := func() uint64 {
		e.stkA.Lock()
		defer e.stkA.Unlock()
		return e.stkA.Stats().PersistProbes
	}
	e.pumpUntil(3_000_000, "transfer completes over the squeezed ACK channel", func() bool {
		for sent < len(payload) {
			n, errno := e.stkA.Write(cfd, payload[sent:])
			if errno != hostos.OK || n == 0 {
				break
			}
			sent += n
		}
		// The receiver reads only once the sender has been driven to a
		// zero-window probe: at that instant the probe's rejection ACK
		// is still serializing through the squeezed channel, so the
		// window update the read triggers meets a full queue and is
		// tail-dropped — the deadlock the next probe must clear. The
		// last buffer-full of the stream drains freely: the sender is
		// out of data there, so no probe can announce it.
		p := probes()
		if p > probesSeen || len(payload)-len(got) <= 8192 {
			probesSeen = p
			for {
				n, errno := e.stkB.Read(afd, buf)
				if errno != hostos.OK || n == 0 {
					break
				}
				got = append(got, buf[:n]...)
			}
		}
		return len(got) == len(payload)
	})
	if !bytes.Equal(got, payload) {
		t.Fatal("stream corrupted over the squeezed ACK channel")
	}
	e.stkA.Lock()
	st := e.stkA.Stats()
	e.stkA.Unlock()
	t.Logf("sender: %s, %d persist probes", st.RecoverySummary(), st.PersistProbes)
	if st.PersistProbes == 0 {
		t.Fatalf("squeezed ACK channel never exercised the persist timer: %+v", st)
	}
}
