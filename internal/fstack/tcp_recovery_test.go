package fstack

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hostos"
	"repro/internal/netem"
	"repro/internal/nic"
	"repro/internal/sim"
)

// hookWire is a test conduit: a transparent cable whose per-direction
// hook may drop or delay each frame. It stands in for nic.Connect so
// recovery tests can lose exactly the segment they mean to.
type hookWire struct {
	ends [2]*nic.Port
	// hook returns (extraDelayNS, drop). nil passes through.
	hook func(from int, data []byte, readyAt int64) (int64, bool)
}

func connectHooked(a, b *nic.Port, hook func(from int, data []byte, readyAt int64) (int64, bool)) *hookWire {
	w := &hookWire{ends: [2]*nic.Port{a, b}, hook: hook}
	a.Attach(w, 0)
	b.Attach(w, 1)
	return w
}

func (w *hookWire) Send(from int, data []byte, readyAt int64) {
	if w.hook != nil {
		extra, drop := w.hook(from, data, readyAt)
		if drop {
			return
		}
		readyAt += extra
	}
	w.ends[1-from].DeliverFrame(data, readyAt)
}

func (w *hookWire) Pump(int64) {}

// NextDeadline implements nic.Conduit: the hook delays frames via
// readyAt, so held work already shows up as far-FIFO deadlines.
func (w *hookWire) NextDeadline(int64) int64 { return math.MaxInt64 }

// newHookedEnv is newEnv with a hookWire instead of a plain cable.
func newHookedEnv(t *testing.T, hook func(from int, data []byte, readyAt int64) (int64, bool)) *testEnv {
	t.Helper()
	clk := sim.NewVClock()
	stkA, cardA := buildMachine(t, clk, "0000:03:00", 1, IP4(10, 0, 0, 1), false)
	stkB, cardB := buildMachine(t, clk, "0000:04:00", 2, IP4(10, 0, 0, 2), false)
	connectHooked(cardA.Port(0), cardB.Port(0), hook)
	return &testEnv{t: t, clk: clk, stkA: stkA, stkB: stkB}
}

// isDataFrame filters for TCP segments with a real payload (the
// handshake, ACKs and ARP stay under ~90 bytes on this stack).
func isDataFrame(data []byte) bool { return len(data) > 200 }

// sendAll pushes payload through cfd, draining afd, until the receiver
// holds everything; returns the received bytes.
func sendAll(e *testEnv, cfd, afd int, payload []byte, maxTicks int) []byte {
	e.t.Helper()
	var got []byte
	sent := 0
	buf := make([]byte, 65536)
	e.pumpUntil(maxTicks, "transfer completes", func() bool {
		for sent < len(payload) {
			n, errno := e.stkA.Write(cfd, payload[sent:min(sent+16384, len(payload))])
			if errno != hostos.OK {
				break
			}
			sent += n
		}
		for {
			n, errno := e.stkB.Read(afd, buf)
			if errno != hostos.OK || n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		return len(got) == len(payload)
	})
	return got
}

// TestFastRetransmitOnThreeDupAcks drops exactly one data segment;
// recovery must complete via the dup-ACK fast path, without an RTO.
func TestFastRetransmitOnThreeDupAcks(t *testing.T) {
	dataSeen, dropped := 0, false
	e := newHookedEnv(t, func(from int, data []byte, _ int64) (int64, bool) {
		if from != 0 || !isDataFrame(data) {
			return 0, false
		}
		dataSeen++
		if dataSeen == 5 && !dropped {
			dropped = true
			return 0, true
		}
		return 0, false
	})
	cfd, afd := e.connectPair(5001)
	payload := bytes.Repeat([]byte{0xA5}, 128*1024)
	got := sendAll(e, cfd, afd, payload, 60000)
	if !bytes.Equal(got, payload) {
		t.Fatal("stream corrupted across fast retransmit")
	}
	if !dropped {
		t.Fatal("the drop hook never fired — test is vacuous")
	}
	e.stkA.Lock()
	st := e.stkA.Stats()
	e.stkA.Unlock()
	if st.FastRetransmit == 0 {
		t.Fatalf("no fast retransmit recorded: %+v", st)
	}
	if st.RTORetransmit != 0 {
		t.Fatalf("single loss needed an RTO (%d): dup-ACK path broken", st.RTORetransmit)
	}
	if st.DupAcks < 3 {
		t.Fatalf("sender saw %d dup-ACKs, want >= 3", st.DupAcks)
	}
}

// TestRTOBackoffExponential is the regression test for RFC 6298 §5.5:
// on repeated timeouts of the same segment the retransmission gaps
// must double, capped at rtoMax, not tick at a fixed rtoMin cadence.
func TestRTOBackoffExponential(t *testing.T) {
	blackhole := false
	var attempts []int64
	e := newHookedEnv(t, func(from int, data []byte, readyAt int64) (int64, bool) {
		if from == 0 && isDataFrame(data) && blackhole {
			attempts = append(attempts, readyAt)
			return 0, true
		}
		return 0, false
	})
	cfd, afd := e.connectPair(5001)
	// Warm the RTT estimator so rto sits at the floor before the loss.
	warm := bytes.Repeat([]byte{1}, 8192)
	if got := sendAll(e, cfd, afd, warm, 20000); len(got) != len(warm) {
		t.Fatal("warmup transfer failed")
	}
	blackhole = true
	if _, errno := e.stkA.Write(cfd, bytes.Repeat([]byte{2}, 1000)); errno != hostos.OK {
		t.Fatalf("write: %v", errno)
	}
	// ~4 s of virtual time: enough for the doubling series to hit the
	// 1 s rtoMax cap at least once.
	for i := 0; i < 800_000 && len(attempts) < 14; i++ {
		e.tick()
	}
	if len(attempts) < 6 {
		t.Fatalf("only %d retransmission attempts observed", len(attempts))
	}
	var gaps []int64
	for i := 1; i < len(attempts); i++ {
		gaps = append(gaps, attempts[i]-attempts[i-1])
	}
	t.Logf("retransmit gaps (ns): %v", gaps)
	capped := 0
	for i := 1; i < len(gaps); i++ {
		if gaps[i-1] >= rtoMax {
			// Once at the cap, stay at the cap.
			if gaps[i] < rtoMax || gaps[i] > rtoMax+rtoMax/4 {
				t.Fatalf("gap %d = %d ns: cap at rtoMax=%d not held", i, gaps[i], int64(rtoMax))
			}
			capped++
			continue
		}
		ratio := float64(gaps[i]) / float64(gaps[i-1])
		if ratio < 1.7 || ratio > 2.4 {
			t.Fatalf("gap %d/%d ratio %.2f: backoff is not exponential (gaps %v)", i, i-1, ratio, gaps)
		}
	}
	if capped == 0 {
		t.Fatalf("backoff never reached the rtoMax cap (gaps %v)", gaps)
	}
}

// TestSpuriousRTONearRTOMin stalls the ACK channel just long enough to
// fire a premature timeout while the data was actually delivered; the
// late ACKs then land past sndNxt and the connection must skip ahead
// and carry on intact.
func TestSpuriousRTONearRTOMin(t *testing.T) {
	var stallUntil int64
	e := newHookedEnv(t, func(from int, data []byte, readyAt int64) (int64, bool) {
		if from == 1 && readyAt < stallUntil {
			// Hold the receiver's ACKs back to the end of the stall.
			return stallUntil - readyAt, false
		}
		return 0, false
	})
	cfd, afd := e.connectPair(5001)
	warm := bytes.Repeat([]byte{1}, 8192)
	if got := sendAll(e, cfd, afd, warm, 20000); len(got) != len(warm) {
		t.Fatal("warmup transfer failed")
	}
	// Stall ACKs for 20 ms — ten times the 2 ms rtoMin the estimator
	// has converged near.
	stallUntil = e.clk.Now() + 20e6
	payload := bytes.Repeat([]byte{3}, 256*1024)
	got := sendAll(e, cfd, afd, payload, 120000)
	if !bytes.Equal(got, payload) {
		t.Fatal("stream corrupted across a spurious RTO")
	}
	e.stkA.Lock()
	st := e.stkA.Stats()
	e.stkA.Unlock()
	if st.RTORetransmit == 0 {
		t.Fatalf("the stall never provoked an RTO: %+v (test is vacuous)", st)
	}
	if state := e.stkA.ConnState(cfd); state != "ESTABLISHED" {
		t.Fatalf("connection state %s after spurious RTO", state)
	}
}

// TestSACKRecoveryOverLossyLink runs a seeded 2 % loss link with SACK
// and window scaling on: the stream must survive intact and recovery
// must be scoreboard-driven.
func TestSACKRecoveryOverLossyLink(t *testing.T) {
	clk := sim.NewVClock()
	stkA, cardA := buildMachine(t, clk, "0000:03:00", 1, IP4(10, 0, 0, 1), false)
	stkB, cardB := buildMachine(t, clk, "0000:04:00", 2, IP4(10, 0, 0, 2), false)
	netem.Connect(clk, cardA.Port(0), cardB.Port(0), netem.Config{Seed: 11, LossRate: 0.02})
	tune := TCPTuning{SACK: true, WindowScale: 4, SndBufBytes: 1 << 20, RcvBufBytes: 1 << 20}
	stkA.SetTCPTuning(tune)
	stkB.SetTCPTuning(tune)
	e := &testEnv{t: t, clk: clk, stkA: stkA, stkB: stkB}
	cfd, afd := e.connectPair(5001)

	e.stkA.Lock()
	conn := e.stkA.socks[cfd].conn
	e.stkA.Unlock()
	if !conn.sackOK || conn.sndWScale != 4 || conn.rcvWScale != 4 {
		t.Fatalf("negotiation failed: sackOK=%v snd<<%d rcv<<%d", conn.sackOK, conn.sndWScale, conn.rcvWScale)
	}

	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	got := sendAll(e, cfd, afd, payload, 400_000)
	if !bytes.Equal(got, payload) {
		t.Fatal("stream corrupted across SACK recovery")
	}
	e.stkA.Lock()
	st := e.stkA.Stats()
	e.stkA.Unlock()
	t.Logf("sender recovery: %s", st.RecoverySummary())
	if st.SACKRetransmit == 0 {
		t.Fatalf("2%% loss never exercised the scoreboard: %+v", st)
	}
}

// TestTuningOffKeepsWireIdentical pins the negotiation default: with
// zero tuning neither SYN carries the new options and nothing is
// scaled, so Scenarios 1-4 stay byte-identical.
func TestTuningOffKeepsWireIdentical(t *testing.T) {
	e := newEnv(t, false)
	cfd, _ := e.connectPair(5001)
	e.stkA.Lock()
	conn := e.stkA.socks[cfd].conn
	sackOK, sndWS, rcvWS := conn.sackOK, conn.sndWScale, conn.rcvWScale
	e.stkA.Unlock()
	if sackOK || sndWS != 0 || rcvWS != 0 {
		t.Fatalf("default tuning negotiated features: sack=%v ws=%d/%d", sackOK, sndWS, rcvWS)
	}
}

// Property: whatever out-of-order soup arrives, the generated SACK
// blocks stay within the receive window, never overlap, never cover
// rcvNxt, and lead with the most recent arrival (RFC 2018 §4).
func TestQuickSACKBlocksValid(t *testing.T) {
	e := newEnv(t, false)
	// SACK generation is receiver-local state; flip it on directly.
	cfd, afd := e.connectPair(5001)
	_ = cfd
	e.stkB.Lock()
	conn := e.stkB.socks[afd].conn
	conn.sackOK = true
	e.stkB.Unlock()

	f := func(offsets []uint16, sizes []uint8) bool {
		e.stkB.Lock()
		defer e.stkB.Unlock()
		conn.rcvOOO = nil
		for i, off := range offsets {
			size := 1
			if i < len(sizes) {
				size = int(sizes[i])%2048 + 1
			}
			seq := conn.rcvNxt + 1 + uint32(off) // never at rcvNxt: always a hole
			payload := make([]byte, size)
			conn.oooInsert(seq, payload)
			conn.lastOOO = seqRange{start: seq, end: seq + uint32(len(payload))}
		}
		blocks := conn.sackBlocks()
		if len(blocks) > MaxSACKBlocks {
			return false
		}
		wndEnd := conn.rcvNxt + uint32(conn.rcvBuf.Free())
		for i, b := range blocks {
			if !seqLT(b.Start, b.End) {
				return false // empty or inverted
			}
			if seqLE(b.Start, conn.rcvNxt) || seqGT(b.End, wndEnd) {
				return false // outside the receive window
			}
			for j, o := range blocks {
				if i == j {
					continue
				}
				if seqLT(b.Start, o.End) && seqLT(o.Start, b.End) {
					return false // overlap
				}
			}
		}
		// First block reports the most recent arrival's run, whenever
		// that run survived the insert budget.
		if len(blocks) > 0 {
			for _, s := range conn.rcvOOO {
				end := s.seq + uint32(len(s.data))
				if seqLE(s.seq, conn.lastOOO.start) && seqLT(conn.lastOOO.start, end) {
					if !(seqLE(blocks[0].Start, conn.lastOOO.start) && seqLT(conn.lastOOO.start, blocks[0].End)) {
						return false
					}
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
