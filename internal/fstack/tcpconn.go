package fstack

import (
	"repro/internal/hostos"
)

// tcpState is the RFC 793 connection state.
type tcpState int

const (
	tcpClosed tcpState = iota
	tcpSynSent
	tcpSynReceived
	tcpEstablished
	tcpFinWait1
	tcpFinWait2
	tcpCloseWait
	tcpClosing
	tcpLastAck
	tcpTimeWait
)

var tcpStateNames = map[tcpState]string{
	tcpClosed: "CLOSED", tcpSynSent: "SYN_SENT", tcpSynReceived: "SYN_RCVD",
	tcpEstablished: "ESTABLISHED", tcpFinWait1: "FIN_WAIT_1", tcpFinWait2: "FIN_WAIT_2",
	tcpCloseWait: "CLOSE_WAIT", tcpClosing: "CLOSING", tcpLastAck: "LAST_ACK",
	tcpTimeWait: "TIME_WAIT",
}

func (s tcpState) String() string { return tcpStateNames[s] }

// Timer constants (ns).
const (
	// rtoMin is the default retransmission-timer floor. 2 ms is far
	// above the simulated wire RTT and fast enough for tests; stacks
	// whose path includes ms-scale queueing (Scenario 4's CPU-budgeted
	// shards buffer several ms of frames under overload) must raise it
	// via Stack.SetRTOMin or every sender spuriously times out and
	// go-back-N floods the queue it is waiting on.
	rtoMin        = 2e6
	rtoMax        = 1e9   // 1 s
	rtoInitial    = 100e6 // 100 ms before the first RTT sample
	delackTimeout = 500e3 // 500 µs, scaled to the simulated RTTs
	timeWaitDur   = 50e6  // 50 ms (2MSL stand-in)
	synRetries    = 5
)

// Buffer sizes (bytes, powers of two). 512 KiB send / 256 KiB receive
// mirror F-Stack's defaults closely enough; the receive window is capped
// at 64 KiB anyway (no window scaling).
const (
	sndBufSize = 512 * 1024
	rcvBufSize = 256 * 1024
	// maxRcvWnd is just below the port's 64 KiB RX packet buffer: the
	// in-flight cap then regulates the bus-limited case by queueing
	// rather than by tail drops (F-Stack tunes the window the same way
	// on window-scaling-less paths).
	maxRcvWnd = 56 * 1024
)

// tcpEndpoint is one side of a connection.
type tcpEndpoint struct {
	IP   IPv4Addr
	Port uint16
}

// fourTuple keys the connection table.
type fourTuple struct {
	local  tcpEndpoint
	remote tcpEndpoint
}

// tcpConn is a TCP connection.
type tcpConn struct {
	stk   *Stack
	nif   *NetIF
	tuple fourTuple
	state tcpState

	// send state
	sndBuf    *sockBuf // buf.r position corresponds to sequence sndUna
	sndUna    uint32
	sndNxt    uint32
	sndMax    uint32 // highest sequence ever sent (survives go-back-N rewinds)
	sndWnd    uint32 // peer's advertised window
	sndMSS    int    // payload bytes per segment (after options)
	finQueued bool   // Close called: FIN after all buffered data
	finSent   bool   // FIN is currently in flight (cleared by a rewind)
	finEver   bool   // FIN has been transmitted at least once
	finSeq    uint32 // sequence number the FIN occupies (valid when finEver)
	finAcked  bool

	// receive state
	rcvBuf    *sockBuf
	rcvOOO    []oooSeg // out-of-order reassembly queue (sorted by seq)
	rcvNxt    uint32
	finRcvd   bool   // peer's FIN has been sequenced into rcvNxt
	advWnd    uint32 // last advertised window
	tsRecent  uint32 // latest peer TSVal (echoed in TSEcr)
	delackCnt int
	delackAt  int64 // 0 = no pending delayed ack

	// congestion control (RFC 5681 style)
	cwnd     int
	ssthresh int
	dupAcks  int

	// RTT estimation (RFC 6298 via timestamps)
	srtt   int64
	rttvar int64
	rto    int64
	rtxAt  int64 // retransmission deadline; 0 = off
	rtxN   int   // consecutive backoffs

	// lifecycle
	timeWaitAt int64
	sockErr    hostos.Errno // sticky error (ECONNRESET etc.)

	// counters (exposed via stack stats)
	retransSegs uint64
}

// newTCPConn builds a connection in the given state with buffers from
// the stack's segment.
func (s *Stack) newTCPConn(nif *NetIF, tuple fourTuple) (*tcpConn, error) {
	snd, err := newSockBuf(s.seg, sndBufSize)
	if err != nil {
		return nil, err
	}
	rcv, err := newSockBuf(s.seg, rcvBufSize)
	if err != nil {
		return nil, err
	}
	c := &tcpConn{
		stk:      s,
		nif:      nif,
		tuple:    tuple,
		state:    tcpClosed,
		sndBuf:   snd,
		rcvBuf:   rcv,
		sndMSS:   MaxSegData,
		cwnd:     10 * MaxSegData,
		ssthresh: 256 * 1024,
		rto:      rtoInitial,
	}
	return c, nil
}

// iss generates the initial send sequence number.
func (s *Stack) iss() uint32 {
	s.issCounter += 64009 // arbitrary odd stride
	return s.issCounter
}

// nowUS is the timestamp-option clock (µs, truncated).
func (c *tcpConn) nowUS() uint32 { return uint32(c.stk.now() / 1e3) }

// rcvWnd computes the window to advertise.
func (c *tcpConn) rcvWnd() uint32 {
	w := c.rcvBuf.Free()
	if w > maxRcvWnd {
		w = maxRcvWnd
	}
	return uint32(w)
}

// --- output ---

// sendSegment emits one segment with the given flags and payload taken
// from sndBuf at sequence seq.
func (c *tcpConn) sendSegment(flags uint8, seq uint32, payloadLen int, withMSS bool) bool {
	h := TCPHeader{
		SrcPort: c.tuple.local.Port,
		DstPort: c.tuple.remote.Port,
		Seq:     seq,
		Ack:     c.rcvNxt,
		Flags:   flags,
		Window:  uint16(c.rcvWnd()),
		HasTS:   true,
		TSVal:   c.nowUS(),
		TSEcr:   c.tsRecent,
	}
	if withMSS {
		h.MSS = MSSDefault
	}
	hl := h.encodedLen()
	total := hl + payloadLen
	m, frame := c.stk.txAlloc(c.nif, IPv4HeaderLen+total)
	if m == nil {
		return false // pool or ring exhausted; retry next loop
	}
	tcpSeg := frame[EthHeaderLen+IPv4HeaderLen:]
	if payloadLen > 0 {
		off := int(seq - c.sndUna)
		if _, err := c.sndBuf.peek(off, tcpSeg[hl:hl+payloadLen]); err != nil {
			m.Free()
			return false
		}
	}
	PutTCPHeader(tcpSeg, h, c.tuple.local.IP, c.tuple.remote.IP, total)
	ok := c.stk.sendIPv4(c.nif, m, frame, c.tuple.remote.IP, ProtoTCP, total)
	if ok {
		c.advWnd = uint32(h.Window)
	}
	return ok
}

// sendAckNow emits a bare ACK.
func (c *tcpConn) sendAckNow() {
	c.delackCnt = 0
	c.delackAt = 0
	c.sendSegment(TCPAck, c.sndNxt, 0, false)
}

// armRTO (re)arms the retransmission timer.
func (c *tcpConn) armRTO() {
	c.rtxAt = c.stk.now() + c.rto
}

// inflight returns un-acknowledged bytes.
func (c *tcpConn) inflight() int { return int(c.sndNxt - c.sndUna) }

// output transmits whatever the windows allow. Called from the loop and
// after API writes.
func (c *tcpConn) output() {
	switch c.state {
	case tcpEstablished, tcpCloseWait, tcpFinWait1, tcpClosing, tcpLastAck:
	default:
		return
	}
	wnd := min(int(c.sndWnd), c.cwnd)
	for {
		avail := c.sndBuf.Len() - int(c.sndNxt-c.sndUna) // bytes not yet sent
		if c.finSent && !c.finAcked {
			avail = 0
		}
		space := wnd - c.inflight()
		n := min(min(avail, space), c.sndMSS)
		if n <= 0 {
			break
		}
		flags := TCPAck
		if avail == n { // last segment of what we have: push
			flags |= TCPPsh
		}
		if !c.sendSegment(flags, c.sndNxt, n, false) {
			break
		}
		c.sndNxt += uint32(n)
		c.sndMax = seqMax(c.sndMax, c.sndNxt)
		c.delackCnt = 0
		c.delackAt = 0
		if c.rtxAt == 0 {
			c.armRTO()
		}
	}
	// FIN, once all data is out.
	if c.finQueued && !c.finSent &&
		int(c.sndNxt-c.sndUna) == c.sndBuf.Len() &&
		c.inflight() <= wnd {
		if c.sendSegment(TCPFin|TCPAck, c.sndNxt, 0, false) {
			if !c.finEver {
				c.finEver = true
				c.finSeq = c.sndNxt
			}
			c.sndNxt++
			c.sndMax = seqMax(c.sndMax, c.sndNxt)
			c.finSent = true
			if c.rtxAt == 0 {
				c.armRTO()
			}
			switch c.state {
			case tcpEstablished:
				c.state = tcpFinWait1
			case tcpCloseWait:
				c.state = tcpLastAck
			}
		}
	}
}

// --- input ---

// rttSample updates SRTT/RTTVAR/RTO from a sample (ns).
func (c *tcpConn) rttSample(sample int64) {
	if sample <= 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		d := c.srtt - sample
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if floor := c.stk.rtoFloor(); c.rto < floor {
		c.rto = floor
	}
	if c.rto > rtoMax {
		c.rto = rtoMax
	}
}

// handleAck processes an acceptable ACK.
func (c *tcpConn) handleAck(h TCPHeader) {
	ack := h.Ack
	if seqLE(ack, c.sndUna) {
		if ack == c.sndUna && c.inflight() > 0 && h.Window == uint16(c.sndWnd) {
			c.dupAcks++
			if c.dupAcks == 3 {
				c.fastRetransmit()
			}
		}
		if seqGE(ack, c.sndUna) {
			c.sndWnd = uint32(h.Window)
		}
		return
	}
	if seqGT(ack, c.sndMax) {
		c.sendAckNow() // acking data we never sent: tell them where we are
		return
	}
	// New data acknowledged.
	acked := int(ack - c.sndUna)
	dataAcked := acked
	if c.finEver && seqGT(ack, c.finSeq) {
		// The FIN consumed one sequence number.
		dataAcked--
		c.finAcked = true
		c.finSent = true
	}
	if dataAcked > 0 {
		if err := c.sndBuf.consume(dataAcked); err != nil {
			c.abort(hostos.EINVAL)
			return
		}
	}
	c.sndUna = ack
	// After a go-back-N rewind the peer may acknowledge past sndNxt:
	// skip ahead rather than resending what it already has.
	if seqGT(ack, c.sndNxt) {
		c.sndNxt = ack
	}
	c.sndWnd = uint32(h.Window)
	c.dupAcks = 0
	c.rtxN = 0
	if h.HasTS && h.TSEcr != 0 {
		c.rttSample((int64(c.nowUS()) - int64(h.TSEcr)) * 1e3)
	}
	// Congestion control.
	if c.cwnd < c.ssthresh {
		c.cwnd += min(dataAcked, c.sndMSS) // slow start
	} else {
		c.cwnd += max(1, c.sndMSS*c.sndMSS/c.cwnd) // AIMD
	}
	if c.inflight() == 0 {
		c.rtxAt = 0
	} else {
		c.armRTO()
	}
	// State transitions driven by our FIN being acked.
	if c.finAcked {
		switch c.state {
		case tcpFinWait1:
			c.state = tcpFinWait2
		case tcpClosing:
			c.enterTimeWait()
		case tcpLastAck:
			c.setState(tcpClosed)
			c.stk.removeConn(c)
		}
	}
}

// fastRetransmit resends the first unacked segment and halves the
// window.
func (c *tcpConn) fastRetransmit() {
	c.ssthresh = max(c.inflight()/2, 2*c.sndMSS)
	c.cwnd = c.ssthresh + 3*c.sndMSS
	n := min(min(c.sndBuf.Len(), c.sndMSS), int(c.sndNxt-c.sndUna))
	if n > 0 {
		c.sendSegment(TCPAck, c.sndUna, n, false)
		c.retransSegs++
	}
	c.armRTO()
}

// onRTO fires when the retransmission timer expires: go-back-N.
func (c *tcpConn) onRTO() {
	if c.state == tcpSynSent || c.state == tcpSynReceived {
		c.rtxN++
		if c.rtxN > synRetries {
			c.abort(hostos.ETIMEDOUT)
			return
		}
		flags := TCPSyn
		if c.state == tcpSynReceived {
			flags |= TCPAck
		}
		c.sendSegment(flags, c.sndUna, 0, true)
		c.rto = min(c.rto*2, int64(rtoMax))
		c.armRTO()
		return
	}
	if c.inflight() == 0 && !(c.finSent && !c.finAcked) {
		c.rtxAt = 0
		return
	}
	c.ssthresh = max(c.inflight()/2, 2*c.sndMSS)
	c.cwnd = c.sndMSS
	c.dupAcks = 0
	// Go-back-N: rewind and let output() resend.
	c.sndNxt = c.sndUna
	if c.finSent && !c.finAcked {
		c.finSent = false // FIN will be requeued by output()
	}
	c.retransSegs++
	c.rto = min(c.rto*2, int64(rtoMax))
	c.rtxN++
	c.armRTO()
	c.output()
}

// oooSeg is one out-of-order segment held for reassembly.
type oooSeg struct {
	seq  uint32
	data []byte
}

// Reassembly bounds (FreeBSD's net.inet.tcp.reass analog): at most this
// many segments / bytes parked per connection.
const (
	oooMaxSegs  = 128
	oooMaxBytes = 192 * 1024
)

// oooBytes returns the bytes parked in the reassembly queue.
func (c *tcpConn) oooBytes() int {
	t := 0
	for _, s := range c.rcvOOO {
		t += len(s.data)
	}
	return t
}

// oooInsert parks an out-of-order segment, keeping the queue sorted and
// non-overlapping (new data loses on overlap — the copy we already hold
// is as good).
func (c *tcpConn) oooInsert(seq uint32, payload []byte) {
	if len(c.rcvOOO) >= oooMaxSegs || c.oooBytes()+len(payload) > oooMaxBytes {
		return // reassembly budget exhausted: drop, sender retransmits
	}
	// Beyond what we could ever buffer: drop.
	if seqGT(seq+uint32(len(payload)), c.rcvNxt+uint32(c.rcvBuf.Free())) {
		return
	}
	pos := 0
	for pos < len(c.rcvOOO) && seqLT(c.rcvOOO[pos].seq, seq) {
		pos++
	}
	// Trim against predecessor.
	if pos > 0 {
		prev := c.rcvOOO[pos-1]
		prevEnd := prev.seq + uint32(len(prev.data))
		if seqGE(prevEnd, seq+uint32(len(payload))) {
			return // fully contained
		}
		if seqGT(prevEnd, seq) {
			payload = payload[prevEnd-seq:]
			seq = prevEnd
		}
	}
	// Trim against successor.
	if pos < len(c.rcvOOO) {
		next := c.rcvOOO[pos]
		if seqLE(next.seq, seq) {
			return
		}
		if seqGT(seq+uint32(len(payload)), next.seq) {
			payload = payload[:next.seq-seq]
		}
	}
	if len(payload) == 0 {
		return
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	c.rcvOOO = append(c.rcvOOO, oooSeg{})
	copy(c.rcvOOO[pos+1:], c.rcvOOO[pos:])
	c.rcvOOO[pos] = oooSeg{seq: seq, data: cp}
}

// oooDrain moves now-in-order segments from the reassembly queue into
// the receive buffer.
func (c *tcpConn) oooDrain() {
	for len(c.rcvOOO) > 0 {
		s := c.rcvOOO[0]
		end := s.seq + uint32(len(s.data))
		if seqGT(s.seq, c.rcvNxt) {
			return // still a hole
		}
		if seqLE(end, c.rcvNxt) {
			c.rcvOOO = c.rcvOOO[1:] // stale
			continue
		}
		data := s.data[c.rcvNxt-s.seq:]
		if len(data) > c.rcvBuf.Free() {
			return // no room; keep parked
		}
		if _, err := c.rcvBuf.writeFrom(data); err != nil {
			c.abort(hostos.ENOMEM)
			return
		}
		c.rcvNxt = end
		c.rcvOOO = c.rcvOOO[1:]
	}
}

// acceptData sequences payload into the receive buffer, parking
// out-of-order segments for reassembly.
func (c *tcpConn) acceptData(h TCPHeader, payload []byte) {
	if len(payload) == 0 {
		return
	}
	if h.Seq != c.rcvNxt {
		if seqGT(h.Seq, c.rcvNxt) {
			c.oooInsert(h.Seq, payload)
		} else if seqGT(h.Seq+uint32(len(payload)), c.rcvNxt) {
			// Partial overlap with delivered data: take the new tail.
			tail := payload[c.rcvNxt-h.Seq:]
			n := min(len(tail), c.rcvBuf.Free())
			if n > 0 {
				if _, err := c.rcvBuf.writeFrom(tail[:n]); err != nil {
					c.abort(hostos.ENOMEM)
					return
				}
				c.rcvNxt += uint32(n)
				c.oooDrain()
			}
		}
		// A gap (or duplicate) demands an immediate dup-ack.
		c.sendAckNow()
		return
	}
	n := min(len(payload), c.rcvBuf.Free())
	if n > 0 {
		if _, err := c.rcvBuf.writeFrom(payload[:n]); err != nil {
			c.abort(hostos.ENOMEM)
			return
		}
		c.rcvNxt += uint32(n)
	}
	if n < len(payload) {
		// Window overrun: ack what fit.
		c.sendAckNow()
		return
	}
	filled := len(c.rcvOOO) > 0
	c.oooDrain()
	if filled {
		// Filling a hole: ack immediately so the sender exits recovery.
		c.sendAckNow()
		return
	}
	// Delayed ACK: every second segment, or on timeout.
	c.delackCnt++
	if c.delackCnt >= 2 {
		c.sendAckNow()
	} else if c.delackAt == 0 {
		c.delackAt = c.stk.now() + delackTimeout
	}
}

// enterTimeWait parks the connection for 2MSL.
func (c *tcpConn) enterTimeWait() {
	c.setState(tcpTimeWait)
	c.timeWaitAt = c.stk.now() + timeWaitDur
	c.rtxAt = 0
}

// setState transitions the connection.
func (c *tcpConn) setState(s tcpState) { c.state = s }

// abort kills the connection with a sticky error.
func (c *tcpConn) abort(errno hostos.Errno) {
	c.sockErr = errno
	c.setState(tcpClosed)
	c.rtxAt = 0
	c.stk.removeConn(c)
}

// sendRST emits a reset for this connection.
func (c *tcpConn) sendRST() {
	c.sendSegment(TCPRst|TCPAck, c.sndNxt, 0, false)
}

// input processes one inbound segment for this connection.
func (c *tcpConn) input(h TCPHeader, payload []byte) {
	if h.HasTS {
		c.tsRecent = h.TSVal
	}
	if h.Flags&TCPRst != 0 {
		if c.state == tcpSynSent && (h.Flags&TCPAck == 0 || h.Ack != c.sndNxt) {
			return // RST not for our SYN
		}
		c.abort(hostos.ECONNRESET)
		return
	}
	switch c.state {
	case tcpSynSent:
		if h.Flags&TCPSyn == 0 || h.Flags&TCPAck == 0 || h.Ack != c.sndNxt {
			return
		}
		c.rcvNxt = h.Seq + 1
		c.sndUna = h.Ack
		c.sndWnd = uint32(h.Window)
		if h.MSS != 0 {
			c.sndMSS = min(int(h.MSS)-tsOptionLen, MaxSegData)
		}
		c.setState(tcpEstablished)
		c.rtxAt = 0
		c.rtxN = 0
		c.sendAckNow()
		c.output()
		return

	case tcpSynReceived:
		if h.Flags&TCPAck != 0 && h.Ack == c.sndNxt {
			c.sndUna = h.Ack
			c.sndWnd = uint32(h.Window)
			c.setState(tcpEstablished)
			c.rtxAt = 0
			c.rtxN = 0
			c.stk.notifyAccept(c)
			// Fall through to normal processing of any payload.
		} else if h.Flags&TCPSyn != 0 {
			// Duplicate SYN: re-ack.
			c.sendSegment(TCPSyn|TCPAck, c.sndUna, 0, true)
			return
		} else {
			return
		}
	}

	// Established-and-later processing.
	if h.Flags&TCPAck != 0 {
		c.handleAck(h)
		if c.state == tcpClosed {
			return
		}
	}
	c.acceptData(h, payload)
	if h.Flags&TCPFin != 0 && h.Seq+uint32(len(payload)) == c.rcvNxt && !c.finRcvd {
		c.finRcvd = true
		c.rcvNxt++
		c.sendAckNow()
		switch c.state {
		case tcpEstablished, tcpSynReceived:
			c.setState(tcpCloseWait)
		case tcpFinWait1:
			if c.finAcked {
				c.enterTimeWait()
			} else {
				c.setState(tcpClosing)
			}
		case tcpFinWait2:
			c.enterTimeWait()
		}
	}
	// Push out anything the new window allows.
	c.output()
}

// onTimers runs the connection's timers; called from the loop.
func (c *tcpConn) onTimers(now int64) {
	if c.rtxAt != 0 && now >= c.rtxAt {
		c.onRTO()
	}
	if c.delackAt != 0 && now >= c.delackAt {
		c.sendAckNow()
	}
	if c.state == tcpTimeWait && now >= c.timeWaitAt {
		c.setState(tcpClosed)
		c.stk.removeConn(c)
	}
	// Window update: if we advertised (near) zero and space opened, tell
	// the peer.
	if c.state == tcpEstablished || c.state == tcpFinWait1 || c.state == tcpFinWait2 {
		if c.advWnd < uint32(c.sndMSS) && c.rcvWnd() >= uint32(2*c.sndMSS) {
			c.sendAckNow()
		}
	}
}
