package fstack

import (
	"repro/internal/fstack/connscale"
	"repro/internal/hostos"
	"repro/internal/obs"
)

// tcpState is the RFC 793 connection state.
type tcpState int

const (
	tcpClosed tcpState = iota
	tcpSynSent
	tcpSynReceived
	tcpEstablished
	tcpFinWait1
	tcpFinWait2
	tcpCloseWait
	tcpClosing
	tcpLastAck
	tcpTimeWait
)

var tcpStateNames = map[tcpState]string{
	tcpClosed: "CLOSED", tcpSynSent: "SYN_SENT", tcpSynReceived: "SYN_RCVD",
	tcpEstablished: "ESTABLISHED", tcpFinWait1: "FIN_WAIT_1", tcpFinWait2: "FIN_WAIT_2",
	tcpCloseWait: "CLOSE_WAIT", tcpClosing: "CLOSING", tcpLastAck: "LAST_ACK",
	tcpTimeWait: "TIME_WAIT",
}

func (s tcpState) String() string { return tcpStateNames[s] }

// Timer constants (ns).
const (
	// rtoMin is the default retransmission-timer floor. 2 ms is far
	// above the simulated wire RTT and fast enough for tests; stacks
	// whose path includes ms-scale queueing (Scenario 4's CPU-budgeted
	// shards buffer several ms of frames under overload) must raise it
	// via Stack.SetRTOMin or every sender spuriously times out and
	// go-back-N floods the queue it is waiting on.
	rtoMin        = 2e6
	rtoMax        = 1e9   // 1 s
	rtoInitial    = 100e6 // 100 ms before the first RTT sample
	delackTimeout = 500e3 // 500 µs, scaled to the simulated RTTs
	timeWaitDur   = 50e6  // 50 ms (2MSL stand-in)
	synRetries    = 5
)

// Buffer sizes (bytes, powers of two). 512 KiB send / 256 KiB receive
// mirror F-Stack's defaults closely enough; without window scaling the
// receive window is capped at 64 KiB regardless. High-BDP paths
// override both via Stack.SetTCPTuning.
const (
	sndBufSize = 512 * 1024
	rcvBufSize = 256 * 1024
	// maxRcvWnd is just below the port's 64 KiB RX packet buffer: the
	// in-flight cap then regulates the bus-limited case by queueing
	// rather than by tail drops (F-Stack tunes the window the same way
	// on window-scaling-less paths). It only binds when window scaling
	// is off — a scaled window is bounded by the receive buffer alone.
	maxRcvWnd = 56 * 1024
)

// seqRange is one [start, end) range of sequence space.
type seqRange struct {
	start, end uint32
}

// tcpEndpoint is one side of a connection.
type tcpEndpoint struct {
	IP   IPv4Addr
	Port uint16
}

// fourTuple keys the connection table.
type fourTuple struct {
	local  tcpEndpoint
	remote tcpEndpoint
}

// tcpConn is a TCP connection.
type tcpConn struct {
	stk   *Stack
	nif   *NetIF
	tuple fourTuple
	state tcpState

	// send state
	sndBuf    *sockBuf // buf.r position corresponds to sequence sndUna
	sndUna    uint32
	sndNxt    uint32
	sndMax    uint32 // highest sequence ever sent (survives go-back-N rewinds)
	sndWnd    uint32 // peer's advertised window
	sndMSS    int    // payload bytes per segment (after options)
	finQueued bool   // Close called: FIN after all buffered data
	finSent   bool   // FIN is currently in flight (cleared by a rewind)
	finEver   bool   // FIN has been transmitted at least once
	finSeq    uint32 // sequence number the FIN occupies (valid when finEver)
	finAcked  bool

	// receive state
	rcvBuf    *sockBuf
	rcvOOO    []oooSeg // out-of-order reassembly queue (sorted by seq)
	rcvNxt    uint32
	finRcvd   bool   // peer's FIN has been sequenced into rcvNxt
	advWnd    uint32 // last advertised window
	tsRecent  uint32 // latest peer TSVal (echoed in TSEcr)
	delackCnt int
	delackAt  int64 // 0 = no pending delayed ack
	oooCap    int   // reassembly byte budget (scales with rcvBuf)

	// SACK + window scaling (RFC 2018 / RFC 7323), negotiated on the
	// SYN; all zero on a stack with default tuning, which keeps the
	// wire behavior of the paper's scenarios bit-identical.
	offerSACK bool  // we advertise SACK-permitted on our SYN/SYN|ACK
	offerWS   bool  // we advertise window scaling on our SYN/SYN|ACK
	sackOK    bool  // both sides agreed on SACK
	sndWScale uint8 // shift applied to windows the peer advertises
	rcvWScale uint8 // shift applied to windows we advertise

	// receiver SACK generation: the most recently arrived
	// out-of-order run leads the block list (RFC 2018 §4).
	lastOOO seqRange

	// sender scoreboard: disjoint sorted ranges the peer has SACKed,
	// all within (sndUna, sndMax].
	sacked     []seqRange
	inRecovery bool
	recoverPt  uint32 // sndMax when recovery began (RFC 6582 "recover")
	rtxNxt     uint32 // next hole-fill candidate during SACK recovery

	// congestion control: the connection reports ACK/loss events and
	// the controller owns cwnd/ssthresh (see cc.go).
	cc      CongestionController
	dupAcks int

	// persist timer (zero-window probing): armed when a zero peer
	// window with data waiting leaves nothing in flight, so a lost
	// window update cannot stall the connection forever.
	persistAt int64 // probe deadline; 0 = off
	persistN  int   // consecutive probe backoffs

	// RTT estimation (RFC 6298 via timestamps)
	srtt   int64
	rttvar int64
	rto    int64
	rtxAt  int64 // retransmission deadline; 0 = off
	rtxN   int   // consecutive backoffs

	// lifecycle
	timeWaitAt int64
	sockErr    hostos.Errno // sticky error (ECONNRESET etc.)

	// obsCwnd is the last congestion window the flight recorder saw
	// (noteCwnd), so the trace only carries changes.
	obsCwnd int

	// connection-scale plumbing (stack.go): seq stamps creation order
	// for the poll visit sort; timerH/timerAt file the earliest armed
	// timer on the stack's timing wheel; queued/onReady deduplicate
	// visit-set membership; detached means removeConn ran; sk is the
	// owning socket (nil before accept / after close) and inPending
	// marks residence on a listener's accept queue — together they
	// gate recycling the struct through the conn arena.
	seq       uint64
	timerH    connscale.Handle
	timerAt   int64
	queued    bool
	onReady   bool
	detached  bool
	sk        *socket
	inPending bool

	// counters (exposed via stack stats)
	retransSegs   uint64 // total retransmitted segments
	fastRetrans   uint64 // dup-ACK fast retransmits (incl. NewReno partial-ACK resends)
	sackRetrans   uint64 // scoreboard-guided hole fills
	rtoRetrans    uint64 // segments resent after a timeout rewind
	dupAcksIn     uint64 // duplicate ACKs received
	persistProbes uint64 // zero-window probes sent
}

// newTCPConn builds a connection in the given state with buffers from
// the stack's segment, sized and featured per the stack's TCP tuning.
// A recycled struct from the conn arena is preferred when its buffers
// and congestion controller match the current tuning — the path that
// makes connection churn allocation-free at steady state.
func (s *Stack) newTCPConn(nif *NetIF, tuple fourTuple) (*tcpConn, error) {
	sndSize, rcvSize := sndBufSize, rcvBufSize
	if s.tuning.SndBufBytes > 0 {
		sndSize = s.tuning.SndBufBytes
	}
	if s.tuning.RcvBufBytes > 0 {
		rcvSize = s.tuning.RcvBufBytes
	}
	if n := len(s.connFree); n > 0 {
		c := s.connFree[n-1]
		s.connFree[n-1] = nil
		s.connFree = s.connFree[:n-1]
		// A pooled conn whose buffer sizes or CC algorithm no longer
		// match the tuning (a boot-time change) is simply dropped.
		if c.sndBuf.size == sndSize && c.rcvBuf.size == rcvSize &&
			c.cc.Name() == effectiveCC(s.tuning.Congestion) {
			s.resetConn(c, nif, tuple, rcvSize)
			return c, nil
		}
	}
	snd, err := s.newTunedSockBuf(sndSize)
	if err != nil {
		return nil, err
	}
	rcv, err := s.newTunedSockBuf(rcvSize)
	if err != nil {
		return nil, err
	}
	cc, err := newCongestionController(s.tuning.Congestion)
	if err != nil {
		return nil, err
	}
	c := &tcpConn{
		stk:       s,
		nif:       nif,
		tuple:     tuple,
		state:     tcpClosed,
		sndBuf:    snd,
		rcvBuf:    rcv,
		oooCap:    max(oooMaxBytes, rcvSize),
		sndMSS:    MaxSegData,
		cc:        cc,
		rto:       rtoInitial,
		offerSACK: s.tuning.SACK,
		offerWS:   s.tuning.WindowScale > 0,
		timerH:    connscale.None,
	}
	c.cc.OnInit(c.sndMSS, c.offerWS)
	return c, nil
}

// newTunedSockBuf allocates one socket buffer, deferring segment
// backing when the LazyBuffers tuning is on.
func (s *Stack) newTunedSockBuf(size int) (*sockBuf, error) {
	if s.tuning.LazyBuffers {
		return newLazySockBuf(s.seg, size)
	}
	return newSockBuf(s.seg, size)
}

// resetConn reinitializes a pooled connection struct to fresh-conn
// state, retaining its (reset) buffers, reassembly/scoreboard slices
// and congestion controller. The struct literal zeroes every field not
// explicitly carried over, so a newly added field cannot leak state
// between incarnations.
func (s *Stack) resetConn(c *tcpConn, nif *NetIF, tuple fourTuple, rcvSize int) {
	snd, rcv, cc := c.sndBuf, c.rcvBuf, c.cc
	snd.r, snd.w = 0, 0
	rcv.r, rcv.w = 0, 0
	*c = tcpConn{
		stk:       s,
		nif:       nif,
		tuple:     tuple,
		state:     tcpClosed,
		sndBuf:    snd,
		rcvBuf:    rcv,
		rcvOOO:    c.rcvOOO[:0],
		sacked:    c.sacked[:0],
		oooCap:    max(oooMaxBytes, rcvSize),
		sndMSS:    MaxSegData,
		cc:        cc,
		rto:       rtoInitial,
		offerSACK: s.tuning.SACK,
		offerWS:   s.tuning.WindowScale > 0,
		timerH:    connscale.None,
	}
	c.cc.OnInit(c.sndMSS, c.offerWS)
}

// maybeRecycleConn returns a detached connection struct to the arena
// once nothing else can reach it: no socket, no accept-queue slot, no
// poll visit-set or ready-list membership.
func (s *Stack) maybeRecycleConn(c *tcpConn) {
	if !c.detached || c.inPending || c.sk != nil || c.queued || c.onReady {
		return
	}
	s.connFree = append(s.connFree, c)
}

// iss generates the initial send sequence number.
func (s *Stack) iss() uint32 {
	s.issCounter += 64009 // arbitrary odd stride
	return s.issCounter
}

// nowUS is the timestamp-option clock (µs, truncated).
func (c *tcpConn) nowUS() uint32 { return uint32(c.stk.now() / 1e3) }

// rcvWnd computes the window to advertise. Without window scaling the
// historical 56 KiB cap applies; with it, the receive buffer is the
// only bound (the advertised field still truncates to 16 bits after
// the shift).
func (c *tcpConn) rcvWnd() uint32 {
	w := c.rcvBuf.Free()
	if c.rcvWScale == 0 {
		if w > maxRcvWnd {
			w = maxRcvWnd
		}
	} else if cap := 65535 << c.rcvWScale; w > cap {
		w = cap // the largest value the shifted 16-bit field can carry
	}
	return uint32(w)
}

// peerWnd decodes the peer's advertised window: scaled except on SYN
// segments (RFC 7323 §2.2).
func (c *tcpConn) peerWnd(h TCPHeader) uint32 {
	if h.Flags&TCPSyn != 0 {
		return uint32(h.Window)
	}
	return uint32(h.Window) << c.sndWScale
}

// --- output ---

// sendSegment emits one segment with the given flags and payload taken
// from sndBuf at sequence seq.
func (c *tcpConn) sendSegment(flags uint8, seq uint32, payloadLen int, withMSS bool) bool {
	h := TCPHeader{
		SrcPort: c.tuple.local.Port,
		DstPort: c.tuple.remote.Port,
		Seq:     seq,
		Ack:     c.rcvNxt,
		Flags:   flags,
		HasTS:   true,
		TSVal:   c.nowUS(),
		TSEcr:   c.tsRecent,
	}
	wnd := c.rcvWnd()
	if flags&TCPSyn != 0 {
		// SYN windows are never scaled; SYNs also carry the feature
		// offers (MSS is the caller's withMSS, below).
		h.Window = uint16(min(wnd, 65535))
		if c.offerWS {
			h.HasWS = true
			h.WScale = c.stk.tuning.WindowScale
		}
		h.SACKPermitted = c.offerSACK
	} else {
		h.Window = uint16(wnd >> c.rcvWScale)
		// SACK blocks ride pure ACKs only: a full-MSS data segment has
		// no option space left.
		if c.sackOK && payloadLen == 0 && flags&TCPRst == 0 {
			h.SACK = c.sackBlocks()
		}
	}
	if withMSS {
		h.MSS = MSSDefault
	}
	hl := h.encodedLen()
	total := hl + payloadLen
	m, frame := c.stk.txAlloc(c.nif, IPv4HeaderLen+total)
	if m == nil {
		// Pool or ring exhausted: mark ready so the next poll's visit
		// set includes this connection and the send is retried.
		c.stk.markReady(c)
		return false
	}
	tcpSeg := frame[EthHeaderLen+IPv4HeaderLen:]
	if payloadLen > 0 {
		off := int(seq - c.sndUna)
		if _, err := c.sndBuf.peek(off, tcpSeg[hl:hl+payloadLen]); err != nil {
			m.Free()
			c.stk.markReady(c)
			return false
		}
	}
	PutTCPHeader(tcpSeg, h, c.tuple.local.IP, c.tuple.remote.IP, total)
	ok := c.stk.sendIPv4(c.nif, m, frame, c.tuple.remote.IP, ProtoTCP, total)
	if ok {
		shift := c.rcvWScale
		if flags&TCPSyn != 0 {
			shift = 0
		}
		c.advWnd = uint32(h.Window) << shift
	} else {
		c.stk.markReady(c)
	}
	return ok
}

// sendAckNow emits a bare ACK.
func (c *tcpConn) sendAckNow() {
	c.delackCnt = 0
	c.delackAt = 0
	c.sendSegment(TCPAck, c.sndNxt, 0, false)
}

// armRTO (re)arms the retransmission timer.
func (c *tcpConn) armRTO() {
	c.rtxAt = c.stk.now() + c.rto
	c.stk.noteTimer(c, c.rtxAt)
}

// inflight returns un-acknowledged bytes.
func (c *tcpConn) inflight() int { return int(c.sndNxt - c.sndUna) }

// lostBytes estimates bytes presumed lost and not yet refilled: the
// holes between rtxNxt and the scoreboard top (RFC 6675's IsLost,
// applied to the whole SACKed region). Holes below rtxNxt have been
// retransmitted and are back in flight. Like sackedBytesBelow it only
// counts sequence space below sndNxt, so a timeout rewind cannot turn
// the whole scoreboard into send budget.
func (c *tcpConn) lostBytes() int {
	if len(c.sacked) == 0 {
		return 0
	}
	top := c.sacked[len(c.sacked)-1].end
	if seqGT(top, c.sndNxt) {
		top = c.sndNxt
	}
	seq := c.rtxNxt
	if seqLT(seq, c.sndUna) {
		seq = c.sndUna
	}
	if !seqLT(seq, top) {
		return 0
	}
	lost := int(top - seq)
	for _, r := range c.sacked {
		s, e := r.start, r.end
		if seqLT(s, seq) {
			s = seq
		}
		if seqGT(e, top) {
			e = top
		}
		if seqLT(s, e) {
			lost -= int(e - s)
		}
	}
	return max(lost, 0)
}

// pipe estimates bytes actually in the network: unacknowledged, minus
// what the peer already holds per its SACK blocks, minus un-refilled
// holes presumed lost (RFC 6675 §4). Without a scoreboard it is plain
// in-flight. Only scoreboard state below sndNxt counts, so after a
// timeout rewind (sndNxt back at sndUna, scoreboard retained) the
// pipe reads 0 and the resend pass is paced by cwnd's one-MSS slow
// start restart instead of bursting the whole lost window.
func (c *tcpConn) pipe() int {
	return c.inflight() - c.sackedBytesBelow(c.sndNxt) - c.lostBytes()
}

// output transmits whatever the windows allow. Called from the loop and
// after API writes.
func (c *tcpConn) output() {
	switch c.state {
	case tcpEstablished, tcpCloseWait, tcpFinWait1, tcpClosing, tcpLastAck:
	default:
		return
	}
	wnd := min(int(c.sndWnd), c.cc.Cwnd())
	for {
		// After a timeout rewind sndNxt sits below sndMax; the
		// scoreboard lets the resend pass skip runs the peer already
		// holds instead of go-back-N'ing through them.
		retransmitting := seqLT(c.sndNxt, c.sndMax)
		limit := c.sndMSS
		if retransmitting {
			c.sndNxt, limit = c.nextUnsacked(c.sndNxt, c.sndMSS)
			retransmitting = seqLT(c.sndNxt, c.sndMax)
		}
		avail := c.sndBuf.Len() - int(c.sndNxt-c.sndUna) // bytes not yet sent
		if c.finSent && !c.finAcked {
			avail = 0
		}
		space := wnd - c.pipe()
		n := min(min(avail, space), limit)
		if n <= 0 {
			break
		}
		flags := TCPAck
		if avail == n { // last segment of what we have: push
			flags |= TCPPsh
		}
		if !c.sendSegment(flags, c.sndNxt, n, false) {
			break
		}
		if retransmitting {
			c.retransSegs++
			c.rtoRetrans++
			c.noteRetx(obs.RetxRTO, c.sndNxt)
		}
		c.sndNxt += uint32(n)
		c.sndMax = seqMax(c.sndMax, c.sndNxt)
		c.delackCnt = 0
		c.delackAt = 0
		if c.rtxAt == 0 {
			c.armRTO()
		}
	}
	// FIN, once all data is out.
	if c.finQueued && !c.finSent &&
		int(c.sndNxt-c.sndUna) == c.sndBuf.Len() &&
		c.inflight() <= wnd {
		if c.sendSegment(TCPFin|TCPAck, c.sndNxt, 0, false) {
			if !c.finEver {
				c.finEver = true
				c.finSeq = c.sndNxt
			}
			c.sndNxt++
			c.sndMax = seqMax(c.sndMax, c.sndNxt)
			c.finSent = true
			if c.rtxAt == 0 {
				c.armRTO()
			}
			switch c.state {
			case tcpEstablished:
				c.setState(tcpFinWait1)
			case tcpCloseWait:
				c.setState(tcpLastAck)
			}
		}
	}
	// Persist timer: a zero peer window with data waiting and nothing
	// in flight means the peer's window update is the only event that
	// can restart this sender — and a lost update would stall the
	// connection forever. Arm the zero-window probe (RFC 9293
	// §3.8.6.1); the top-of-function state switch already restricted
	// this path to the sending states.
	if c.persistAt == 0 && c.rtxAt == 0 && c.sndWnd == 0 &&
		c.inflight() == 0 && c.sndBuf.Len() > 0 {
		c.persistN = 0
		c.persistAt = c.stk.now() + c.persistInterval()
		c.stk.noteTimer(c, c.persistAt)
	}
}

// persistInterval is the current zero-window probe backoff: the RTO
// doubled per unanswered probe, capped like the RTO itself.
func (c *tcpConn) persistInterval() int64 {
	return min(c.rto<<uint(min(c.persistN, 10)), int64(rtoMax))
}

// onPersist fires when the persist timer expires: force one byte past
// the zero window. The peer must answer any in-window-or-not segment
// with an ACK carrying its current window, which repairs a lost window
// update. The probe byte rides at sndUna so repeated probes stay
// idempotent; the first probe advances sndNxt over it so a peer that
// has room can accept it.
func (c *tcpConn) onPersist() {
	c.persistAt = 0
	if c.sndWnd > 0 || c.sndBuf.Len() == 0 {
		c.persistN = 0 // window opened (or data drained) while pending
		c.output()
		return
	}
	switch c.state {
	case tcpEstablished, tcpCloseWait, tcpFinWait1, tcpClosing, tcpLastAck:
	default:
		c.persistN = 0
		return
	}
	if c.sendSegment(TCPAck, c.sndUna, 1, false) {
		c.persistProbes++
		if c.sndNxt == c.sndUna {
			c.sndNxt++
			c.sndMax = seqMax(c.sndMax, c.sndNxt)
		}
	}
	if c.persistN < 16 {
		c.persistN++
	}
	c.persistAt = c.stk.now() + c.persistInterval()
	c.stk.noteTimer(c, c.persistAt)
}

// --- input ---

// rttSample updates SRTT/RTTVAR/RTO from a sample (ns).
func (c *tcpConn) rttSample(sample int64) {
	if sample <= 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		d := c.srtt - sample
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if floor := c.stk.rtoFloor(); c.rto < floor {
		c.rto = floor
	}
	if c.rto > rtoMax {
		c.rto = rtoMax
	}
}

// --- sender scoreboard (RFC 2018) ---

// sackUpdate merges the peer's SACK blocks into the scoreboard,
// ignoring anything outside (sndUna, sndMax].
func (c *tcpConn) sackUpdate(blocks []SACKBlock) {
	for _, b := range blocks {
		if !seqLT(b.Start, b.End) || seqLE(b.End, c.sndUna) || seqGT(b.End, c.sndMax) {
			continue
		}
		r := seqRange{start: b.Start, end: b.End}
		if seqLT(r.start, c.sndUna) {
			r.start = c.sndUna
		}
		pos := 0
		for pos < len(c.sacked) && seqLT(c.sacked[pos].start, r.start) {
			pos++
		}
		c.sacked = append(c.sacked, seqRange{})
		copy(c.sacked[pos+1:], c.sacked[pos:])
		c.sacked[pos] = r
		// Merge overlapping and adjacent neighbors back into a
		// disjoint sorted list.
		merged := c.sacked[:1]
		for _, s := range c.sacked[1:] {
			last := &merged[len(merged)-1]
			if seqLE(s.start, last.end) {
				last.end = seqMax(last.end, s.end)
			} else {
				merged = append(merged, s)
			}
		}
		c.sacked = merged
	}
}

// sackPrune drops scoreboard state the cumulative ACK has overtaken.
func (c *tcpConn) sackPrune() {
	keep := c.sacked[:0]
	for _, r := range c.sacked {
		if seqLE(r.end, c.sndUna) {
			continue
		}
		if seqLT(r.start, c.sndUna) {
			r.start = c.sndUna
		}
		keep = append(keep, r)
	}
	c.sacked = keep
	if seqLT(c.rtxNxt, c.sndUna) {
		c.rtxNxt = c.sndUna
	}
}

// sackedBytes sums the scoreboard.
func (c *tcpConn) sackedBytes() int {
	t := 0
	for _, r := range c.sacked {
		t += int(r.end - r.start)
	}
	return t
}

// sackedBytesBelow sums the scoreboard under a ceiling — after a
// timeout rewind only the part below sndNxt may offset the pipe, or
// the whole lost window would be resent in one burst.
func (c *tcpConn) sackedBytesBelow(ceil uint32) int {
	t := 0
	for _, r := range c.sacked {
		e := r.end
		if seqGT(e, ceil) {
			e = ceil
		}
		if seqLT(r.start, e) {
			t += int(e - r.start)
		}
	}
	return t
}

// nextUnsacked skips seq past any SACKed run it falls into and caps a
// segment at want bytes so it cannot overlap the next SACKed run.
func (c *tcpConn) nextUnsacked(seq uint32, want int) (uint32, int) {
	for _, r := range c.sacked {
		if seqGE(seq, r.start) && seqLT(seq, r.end) {
			seq = r.end
			continue
		}
		if seqLT(seq, r.start) {
			if gap := int(r.start - seq); gap < want {
				want = gap
			}
			break
		}
	}
	return seq, want
}

// retransmitHead resends one segment at the front of the unacked data,
// the RFC 6582 partial-ACK / three-dup-ACK retransmission for peers
// without SACK.
func (c *tcpConn) retransmitHead() {
	n := min(min(c.sndMSS, c.sndBuf.Len()), int(c.sndNxt-c.sndUna))
	if n > 0 && c.sendSegment(TCPAck, c.sndUna, n, false) {
		c.retransSegs++
		c.fastRetrans++
		c.noteRetx(obs.RetxFast, c.sndUna)
	}
	c.armRTO()
}

// sackFill transmits whatever the pipe has room for during recovery
// (RFC 6675's NextSeg loop): hole fills below the scoreboard top
// first, then new data. Called on every ACK while in recovery — a
// multi-loss window fills all its holes within one round trip instead
// of one per returning ACK.
func (c *tcpConn) sackFill() {
	for len(c.sacked) > 0 && c.pipe() < c.cc.Cwnd() {
		top := c.sacked[len(c.sacked)-1].end
		seq := c.rtxNxt
		if seqLT(seq, c.sndUna) {
			seq = c.sndUna
		}
		seq, limit := c.nextUnsacked(seq, c.sndMSS)
		if !seqLT(seq, top) {
			break // no hole left below the scoreboard top
		}
		n := min(min(limit, c.sndBuf.Len()-int(seq-c.sndUna)), int(top-seq))
		if n <= 0 {
			break
		}
		if !c.sendSegment(TCPAck, seq, n, false) {
			return // TX ring full: the next ACK retries
		}
		c.retransSegs++
		c.sackRetrans++
		c.noteRetx(obs.RetxSACK, seq)
		c.rtxNxt = seq + uint32(n)
		c.armRTO()
	}
	// Pipe room left over goes to new data (the limited-transmit
	// generalization); output() shares the same pipe arithmetic.
	c.output()
}

// enterRecovery starts loss recovery off the third duplicate ACK:
// scoreboard-guided when SACK is negotiated, RFC 6582 NewReno
// otherwise.
func (c *tcpConn) enterRecovery() {
	c.inRecovery = true
	c.recoverPt = c.sndMax
	// The pipe estimate reads rtxNxt (via lostBytes), so it must be
	// taken before the hole-fill cursor resets — the order the
	// pre-refactor inline code used.
	pipe := c.pipe()
	c.rtxNxt = c.sndUna
	c.cc.OnEnterRecovery(pipe, c.sackOK, c.stk.now())
	c.noteCwnd()
	if c.sackOK {
		c.sackFill()
	} else {
		c.retransmitHead()
	}
}

// handleAck processes an acceptable ACK.
func (c *tcpConn) handleAck(h TCPHeader) {
	ack := h.Ack
	if c.sackOK && len(h.SACK) > 0 {
		c.sackUpdate(h.SACK)
	}
	if seqLE(ack, c.sndUna) {
		// A zero-window probe's rejection echoes ack == sndUna with the
		// same (zero) window; while the persist timer runs those are
		// probe answers, not loss signals.
		if ack == c.sndUna && c.inflight() > 0 && c.peerWnd(h) == c.sndWnd &&
			c.persistAt == 0 {
			c.dupAcks++
			c.dupAcksIn++
			switch {
			case c.dupAcks == 3 && !c.inRecovery:
				c.enterRecovery()
			case c.inRecovery && c.sackOK:
				c.sackFill()
			case c.inRecovery:
				c.cc.OnDupAck() // NewReno window inflation
				c.output()
			}
		}
		if seqGE(ack, c.sndUna) {
			c.sndWnd = c.peerWnd(h)
			if c.persistAt != 0 && c.sndWnd > 0 {
				// The window update the probes were fishing for: leave
				// persist and disown any probe byte still unacked
				// (sndMax too, so the in-order resend is fresh data to
				// the stats, not a phantom RTO retransmit). If the
				// peer did take the byte, the resend is a partial
				// overlap its receiver already handles.
				c.persistAt = 0
				c.persistN = 0
				c.sndNxt = c.sndUna
				c.sndMax = c.sndUna
			}
		}
		return
	}
	if seqGT(ack, c.sndMax) {
		c.sendAckNow() // acking data we never sent: tell them where we are
		return
	}
	// New data acknowledged.
	acked := int(ack - c.sndUna)
	dataAcked := acked
	if c.finEver && seqGT(ack, c.finSeq) {
		// The FIN consumed one sequence number.
		dataAcked--
		c.finAcked = true
		c.finSent = true
	}
	if dataAcked > 0 {
		if err := c.sndBuf.consume(dataAcked); err != nil {
			c.abort(hostos.EINVAL)
			return
		}
	}
	c.sndUna = ack
	// After a timeout rewind the peer may acknowledge past sndNxt:
	// skip ahead rather than resending what it already has.
	if seqGT(ack, c.sndNxt) {
		c.sndNxt = ack
	}
	c.sackPrune()
	c.sndWnd = c.peerWnd(h)
	c.dupAcks = 0
	c.rtxN = 0
	c.persistAt = 0 // forward progress: the probe cycle (if any) is over
	c.persistN = 0
	if h.HasTS && h.TSEcr != 0 {
		sample := (int64(c.nowUS()) - int64(h.TSEcr)) * 1e3
		c.rttSample(sample)
		if c.stk.obsRTT != nil && sample > 0 {
			c.stk.obsRTT.Record(sample)
		}
	}
	// Congestion control: classify the ACK and report the event.
	switch {
	case c.inRecovery && seqLT(ack, c.recoverPt) && c.sackOK:
		// Partial ACK with SACK: keep cwnd pinned at ssthresh and let
		// the pipe govern what the scoreboard refills (RFC 6675 §5).
		c.sackFill()
	case c.inRecovery && seqLT(ack, c.recoverPt):
		// Partial ACK (RFC 6582): the next hole starts at the new
		// sndUna; resend it immediately, deflate instead of grow.
		c.retransmitHead()
		c.cc.OnPartialAck(dataAcked)
	case c.inRecovery:
		// Full ACK at or past the recovery point: done.
		c.inRecovery = false
		c.cc.OnExitRecovery(c.stk.now())
	default:
		c.cc.OnAck(dataAcked, c.stk.now(), c.srtt) // slow start / avoidance
	}
	c.noteCwnd()
	if c.inflight() == 0 {
		c.rtxAt = 0
	} else {
		c.armRTO()
	}
	// State transitions driven by our FIN being acked.
	if c.finAcked {
		switch c.state {
		case tcpFinWait1:
			c.setState(tcpFinWait2)
		case tcpClosing:
			c.enterTimeWait()
		case tcpLastAck:
			c.setState(tcpClosed)
			c.stk.removeConn(c)
		}
	}
}

// onRTO fires when the retransmission timer expires: rewind and resend
// with exponential backoff (RFC 6298 §5). With SACK negotiated the
// scoreboard survives the timeout (RFC 2018 §8), so the resend pass in
// output() skips runs the peer already holds; without it this is plain
// go-back-N.
func (c *tcpConn) onRTO() {
	if c.state == tcpSynSent || c.state == tcpSynReceived {
		c.rtxN++
		if c.rtxN > synRetries {
			c.abort(hostos.ETIMEDOUT)
			return
		}
		flags := TCPSyn
		if c.state == tcpSynReceived {
			flags |= TCPAck
		}
		c.sendSegment(flags, c.sndUna, 0, true)
		c.rto = min(c.rto*2, int64(rtoMax))
		c.armRTO()
		return
	}
	if c.inflight() == 0 && !(c.finSent && !c.finAcked) {
		c.rtxAt = 0
		return
	}
	c.cc.OnRTO(c.pipe(), c.stk.now())
	c.noteCwnd()
	c.dupAcks = 0
	c.inRecovery = false
	// Rewind and let output() resend (it classifies the resends and
	// skips SACKed runs).
	c.sndNxt = c.sndUna
	if c.finSent && !c.finAcked {
		c.finSent = false // FIN will be requeued by output()
	}
	c.rto = min(c.rto*2, int64(rtoMax))
	c.rtxN++
	c.armRTO()
	c.output()
}

// oooSeg is one out-of-order segment held for reassembly.
type oooSeg struct {
	seq  uint32
	data []byte
}

// Reassembly bounds (FreeBSD's net.inet.tcp.reass analog): at most this
// many segments / bytes parked per connection. The byte budget grows
// with the receive buffer (tcpConn.oooCap) — a window-scaled high-BDP
// flow can legitimately park most of a window behind one hole.
const (
	oooMaxSegs  = 128
	oooMaxBytes = 192 * 1024
)

// oooSegCap derives the segment-count budget from the byte budget.
func (c *tcpConn) oooSegCap() int {
	return max(oooMaxSegs, c.oooCap/MaxSegData)
}

// sackBlocks builds the SACK option content: the run holding the most
// recent arrival first (RFC 2018 §4), then the remaining runs in
// sequence order, capped at what fits beside the timestamps option.
func (c *tcpConn) sackBlocks() []SACKBlock {
	if len(c.rcvOOO) == 0 {
		return nil
	}
	var runs []SACKBlock
	for _, s := range c.rcvOOO {
		end := s.seq + uint32(len(s.data))
		if n := len(runs); n > 0 && runs[n-1].End == s.seq {
			runs[n-1].End = end
		} else {
			runs = append(runs, SACKBlock{Start: s.seq, End: end})
		}
	}
	first := 0
	for i, r := range runs {
		if seqLE(r.Start, c.lastOOO.start) && seqLT(c.lastOOO.start, r.End) {
			first = i
			break
		}
	}
	out := make([]SACKBlock, 0, min(len(runs), MaxSACKBlocks))
	out = append(out, runs[first])
	for i := 0; i < len(runs) && len(out) < MaxSACKBlocks; i++ {
		if i != first {
			out = append(out, runs[i])
		}
	}
	return out
}

// oooBytes returns the bytes parked in the reassembly queue.
func (c *tcpConn) oooBytes() int {
	t := 0
	for _, s := range c.rcvOOO {
		t += len(s.data)
	}
	return t
}

// oooInsert parks an out-of-order segment, keeping the queue sorted and
// non-overlapping (new data loses on overlap — the copy we already hold
// is as good).
func (c *tcpConn) oooInsert(seq uint32, payload []byte) {
	if len(c.rcvOOO) >= c.oooSegCap() || c.oooBytes()+len(payload) > c.oooCap {
		return // reassembly budget exhausted: drop, sender retransmits
	}
	// Beyond what we could ever buffer: drop.
	if seqGT(seq+uint32(len(payload)), c.rcvNxt+uint32(c.rcvBuf.Free())) {
		return
	}
	pos := 0
	for pos < len(c.rcvOOO) && seqLT(c.rcvOOO[pos].seq, seq) {
		pos++
	}
	// Trim against predecessor.
	if pos > 0 {
		prev := c.rcvOOO[pos-1]
		prevEnd := prev.seq + uint32(len(prev.data))
		if seqGE(prevEnd, seq+uint32(len(payload))) {
			return // fully contained
		}
		if seqGT(prevEnd, seq) {
			payload = payload[prevEnd-seq:]
			seq = prevEnd
		}
	}
	// Trim against successor.
	if pos < len(c.rcvOOO) {
		next := c.rcvOOO[pos]
		if seqLE(next.seq, seq) {
			return
		}
		if seqGT(seq+uint32(len(payload)), next.seq) {
			payload = payload[:next.seq-seq]
		}
	}
	if len(payload) == 0 {
		return
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	c.rcvOOO = append(c.rcvOOO, oooSeg{})
	copy(c.rcvOOO[pos+1:], c.rcvOOO[pos:])
	c.rcvOOO[pos] = oooSeg{seq: seq, data: cp}
}

// oooDrain moves now-in-order segments from the reassembly queue into
// the receive buffer.
func (c *tcpConn) oooDrain() {
	for len(c.rcvOOO) > 0 {
		s := c.rcvOOO[0]
		end := s.seq + uint32(len(s.data))
		if seqGT(s.seq, c.rcvNxt) {
			return // still a hole
		}
		if seqLE(end, c.rcvNxt) {
			c.rcvOOO = c.rcvOOO[1:] // stale
			continue
		}
		data := s.data[c.rcvNxt-s.seq:]
		if len(data) > c.rcvBuf.Free() {
			return // no room; keep parked
		}
		if _, err := c.rcvBuf.writeFrom(data); err != nil {
			c.abort(hostos.ENOMEM)
			return
		}
		c.rcvNxt = end
		c.rcvOOO = c.rcvOOO[1:]
	}
}

// acceptData sequences payload into the receive buffer, parking
// out-of-order segments for reassembly.
func (c *tcpConn) acceptData(h TCPHeader, payload []byte) {
	if len(payload) == 0 {
		return
	}
	if h.Seq != c.rcvNxt {
		if seqGT(h.Seq, c.rcvNxt) {
			c.oooInsert(h.Seq, payload)
			// The dup-ACK below leads its SACK list with this run.
			c.lastOOO = seqRange{start: h.Seq, end: h.Seq + uint32(len(payload))}
		} else if seqGT(h.Seq+uint32(len(payload)), c.rcvNxt) {
			// Partial overlap with delivered data: take the new tail.
			tail := payload[c.rcvNxt-h.Seq:]
			n := min(len(tail), c.rcvBuf.Free())
			if n > 0 {
				if _, err := c.rcvBuf.writeFrom(tail[:n]); err != nil {
					c.abort(hostos.ENOMEM)
					return
				}
				c.rcvNxt += uint32(n)
				c.oooDrain()
			}
		}
		// A gap (or duplicate) demands an immediate dup-ack.
		c.sendAckNow()
		return
	}
	n := min(len(payload), c.rcvBuf.Free())
	if n > 0 {
		if _, err := c.rcvBuf.writeFrom(payload[:n]); err != nil {
			c.abort(hostos.ENOMEM)
			return
		}
		c.rcvNxt += uint32(n)
	}
	if n < len(payload) {
		// Window overrun: ack what fit.
		c.sendAckNow()
		return
	}
	filled := len(c.rcvOOO) > 0
	c.oooDrain()
	if filled {
		// Filling a hole: ack immediately so the sender exits recovery.
		c.sendAckNow()
		return
	}
	// Delayed ACK: every second segment, or on timeout.
	c.delackCnt++
	if c.delackCnt >= 2 {
		c.sendAckNow()
	} else if c.delackAt == 0 {
		c.delackAt = c.stk.now() + delackTimeout
		c.stk.noteTimer(c, c.delackAt)
	}
}

// enterTimeWait parks the connection for 2MSL.
func (c *tcpConn) enterTimeWait() {
	c.setState(tcpTimeWait)
	c.timeWaitAt = c.stk.now() + timeWaitDur
	c.stk.noteTimer(c, c.timeWaitAt)
	c.rtxAt = 0
	c.persistAt = 0
}

// setState transitions the connection. Every state change goes through
// here so the flight recorder sees the complete transition sequence.
func (c *tcpConn) setState(s tcpState) {
	if tr := c.stk.obsTr; tr != nil && s != c.state {
		tr.Record(c.stk.now(), obs.EvTCPState, c.stk.obsSrc,
			int64(c.state), int64(s), int64(c.tuple.local.Port))
	}
	c.state = s
}

// noteRetx records one retransmission event (kind is obs.RetxRTO /
// RetxFast / RetxSACK). The counters above remain the source of truth
// for stats; the event adds when and which sequence to the trace.
func (c *tcpConn) noteRetx(kind int64, seq uint32) {
	if tr := c.stk.obsTr; tr != nil {
		tr.Record(c.stk.now(), obs.EvTCPRetransmit, c.stk.obsSrc,
			kind, int64(seq), int64(c.tuple.local.Port))
	}
}

// noteCwnd emits a cwnd counter sample when the congestion window moved
// since the last note — called after every congestion-control decision
// point, so the exported trace draws the full cwnd curve.
func (c *tcpConn) noteCwnd() {
	tr := c.stk.obsTr
	if tr == nil {
		return
	}
	if w := c.cc.Cwnd(); w != c.obsCwnd {
		c.obsCwnd = w
		tr.Record(c.stk.now(), obs.EvTCPCwnd, c.stk.obsSrc,
			int64(w), 0, int64(c.tuple.local.Port))
	}
}

// abort kills the connection with a sticky error.
func (c *tcpConn) abort(errno hostos.Errno) {
	c.sockErr = errno
	c.setState(tcpClosed)
	c.rtxAt = 0
	c.persistAt = 0
	c.stk.removeConn(c)
}

// sendRST emits a reset for this connection.
func (c *tcpConn) sendRST() {
	c.sendSegment(TCPRst|TCPAck, c.sndNxt, 0, false)
}

// input processes one inbound segment for this connection.
func (c *tcpConn) input(h TCPHeader, payload []byte) {
	if h.HasTS {
		c.tsRecent = h.TSVal
	}
	if h.Flags&TCPRst != 0 {
		if c.state == tcpSynSent && (h.Flags&TCPAck == 0 || h.Ack != c.sndNxt) {
			return // RST not for our SYN
		}
		c.abort(hostos.ECONNRESET)
		return
	}
	switch c.state {
	case tcpSynSent:
		if h.Flags&TCPSyn == 0 || h.Flags&TCPAck == 0 || h.Ack != c.sndNxt {
			return
		}
		c.rcvNxt = h.Seq + 1
		c.sndUna = h.Ack
		c.sndWnd = c.peerWnd(h)
		if h.MSS != 0 {
			c.sndMSS = min(int(h.MSS)-tsOptionLen, MaxSegData)
			c.cc.SetMSS(c.sndMSS)
		}
		// Feature negotiation: each option is on only if both sides
		// offered it (RFC 7323 §2.2, RFC 2018 §3).
		c.sackOK = c.offerSACK && h.SACKPermitted
		if c.offerWS && h.HasWS {
			c.sndWScale = h.WScale
			c.rcvWScale = c.stk.tuning.WindowScale
		}
		c.setState(tcpEstablished)
		c.rtxAt = 0
		c.rtxN = 0
		c.sendAckNow()
		c.output()
		return

	case tcpSynReceived:
		if h.Flags&TCPAck != 0 && h.Ack == c.sndNxt {
			c.sndUna = h.Ack
			c.sndWnd = c.peerWnd(h)
			c.setState(tcpEstablished)
			c.rtxAt = 0
			c.rtxN = 0
			c.stk.notifyAccept(c)
			// Fall through to normal processing of any payload.
		} else if h.Flags&TCPSyn != 0 {
			// Duplicate SYN: re-ack.
			c.sendSegment(TCPSyn|TCPAck, c.sndUna, 0, true)
			return
		} else {
			return
		}
	}

	// Established-and-later processing.
	if h.Flags&TCPAck != 0 {
		c.handleAck(h)
		if c.state == tcpClosed {
			return
		}
	}
	c.acceptData(h, payload)
	if h.Flags&TCPFin != 0 && h.Seq+uint32(len(payload)) == c.rcvNxt && !c.finRcvd {
		c.finRcvd = true
		c.rcvNxt++
		c.sendAckNow()
		switch c.state {
		case tcpEstablished, tcpSynReceived:
			c.setState(tcpCloseWait)
		case tcpFinWait1:
			if c.finAcked {
				c.enterTimeWait()
			} else {
				c.setState(tcpClosing)
			}
		case tcpFinWait2:
			c.enterTimeWait()
		}
	}
	// Push out anything the new window allows.
	c.output()
}

// onTimers runs the connection's timers; called from the loop.
func (c *tcpConn) onTimers(now int64) {
	if c.rtxAt != 0 && now >= c.rtxAt {
		c.onRTO()
	}
	if c.persistAt != 0 && now >= c.persistAt {
		c.onPersist()
	}
	if c.delackAt != 0 && now >= c.delackAt {
		c.sendAckNow()
	}
	if c.state == tcpTimeWait && now >= c.timeWaitAt {
		c.setState(tcpClosed)
		c.stk.removeConn(c)
	}
	// Window update: if we advertised (near) zero and space opened, tell
	// the peer.
	if c.needsWindowUpdate() {
		c.sendAckNow()
	}
}

// needsWindowUpdate reports whether the timer pass owes the peer a
// window update: we advertised (near) zero and buffer space has since
// opened. ONE predicate shared between onTimers (which sends the
// update) and Stack.noteReadDrain (which tells the event-driven driver
// to visit that iteration) — if the two drifted apart, the leap driver
// could skip exactly the iteration the update is due in.
func (c *tcpConn) needsWindowUpdate() bool {
	switch c.state {
	case tcpEstablished, tcpFinWait1, tcpFinWait2:
		return c.advWnd < uint32(c.sndMSS) && c.rcvWnd() >= uint32(2*c.sndMSS)
	}
	return false
}
