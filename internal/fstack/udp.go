package fstack

import (
	"encoding/binary"
	"fmt"
)

// UDPHeaderLen is the UDP header size.
const UDPHeaderLen = 8

// UDPHeader is a UDP header.
type UDPHeader struct {
	SrcPort uint16
	DstPort uint16
	Length  uint16
}

// PutUDPHeader marshals h into b and computes the checksum over the
// complete segment b (header + payload) with the pseudo header.
func PutUDPHeader(b []byte, h UDPHeader, src, dst IPv4Addr) {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], h.Length)
	b[6], b[7] = 0, 0
	cs := transportChecksum(src, dst, ProtoUDP, b[:h.Length])
	if cs == 0 {
		cs = 0xFFFF // RFC 768: zero means "no checksum"
	}
	binary.BigEndian.PutUint16(b[6:8], cs)
}

// ParseUDPHeader unmarshals and validates a UDP segment.
func ParseUDPHeader(b []byte, src, dst IPv4Addr) (UDPHeader, error) {
	if len(b) < UDPHeaderLen {
		return UDPHeader{}, fmt.Errorf("fstack: short UDP segment (%d bytes)", len(b))
	}
	var h UDPHeader
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = binary.BigEndian.Uint16(b[4:6])
	if int(h.Length) < UDPHeaderLen || int(h.Length) > len(b) {
		return UDPHeader{}, fmt.Errorf("fstack: UDP length %d outside segment", h.Length)
	}
	if cs := binary.BigEndian.Uint16(b[6:8]); cs != 0 {
		if transportChecksum(src, dst, ProtoUDP, b[:h.Length]) != 0 {
			return UDPHeader{}, fmt.Errorf("fstack: UDP checksum mismatch")
		}
	}
	return h, nil
}

// ICMP types.
const (
	ICMPEchoReply   uint8 = 0
	ICMPEchoRequest uint8 = 8
)

// ICMPHeaderLen is the echo header size.
const ICMPHeaderLen = 8

// ICMPEcho is an ICMP echo request/reply.
type ICMPEcho struct {
	Type uint8
	ID   uint16
	Seq  uint16
}

// PutICMPEcho marshals h into b (which already contains the payload
// after the header) and computes the checksum over all of b.
func PutICMPEcho(b []byte, h ICMPEcho) {
	b[0] = h.Type
	b[1] = 0
	b[2], b[3] = 0, 0
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], h.Seq)
	cs := Checksum(b)
	binary.BigEndian.PutUint16(b[2:4], cs)
}

// ParseICMPEcho unmarshals and validates an ICMP echo message.
func ParseICMPEcho(b []byte) (ICMPEcho, error) {
	if len(b) < ICMPHeaderLen {
		return ICMPEcho{}, fmt.Errorf("fstack: short ICMP message (%d bytes)", len(b))
	}
	if Checksum(b) != 0 {
		return ICMPEcho{}, fmt.Errorf("fstack: ICMP checksum mismatch")
	}
	var h ICMPEcho
	h.Type = b[0]
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.Seq = binary.BigEndian.Uint16(b[6:8])
	return h, nil
}
