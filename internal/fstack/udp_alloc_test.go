//go:build !race

package fstack

import "testing"

// TestUDPRoundTripZeroAllocs pins the pooled datagram arena: with
// observability off, a steady-state UDP query/answer round trip must
// not allocate — inputUDP draws payload buffers from the stack's free
// list and RecvFrom/Close return them.
//
// Skipped under the race detector, whose instrumentation allocates.
func TestUDPRoundTripZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	res := testing.Benchmark(BenchmarkUDPRoundTrip)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("UDP round trip allocates %d allocs/op, want 0", a)
	}
}
