package fstack

import (
	"testing"

	"repro/internal/hostos"
)

// BenchmarkUDPRoundTrip measures one datagram query/answer exchange —
// the Scenario 9 DNS shape: A sends a datagram to B's bound socket, B
// receives it and answers, A receives the answer. The allocs/op figure
// pins the pooled payload arena: at steady state inputUDP recycles
// RecvFrom-returned buffers instead of allocating per datagram.
func BenchmarkUDPRoundTrip(b *testing.B) {
	e := newEnv(b, false)
	sfd, _ := e.stkB.Socket(SockDgram)
	if errno := e.stkB.Bind(sfd, IPv4Addr{}, 9053); errno != hostos.OK {
		b.Fatal(errno)
	}
	cfd, _ := e.stkA.Socket(SockDgram)
	if errno := e.stkA.Bind(cfd, IPv4Addr{}, 9054); errno != hostos.OK {
		b.Fatal(errno)
	}

	query := make([]byte, 64)
	answer := make([]byte, 256)
	bufA := make([]byte, 512)
	bufB := make([]byte, 512)

	roundTrip := func() {
		if _, errno := e.stkA.SendTo(cfd, query, IP4(10, 0, 0, 2), 9053); errno != hostos.OK {
			b.Fatalf("send: %v", errno)
		}
		answered := false
		for tick := 0; tick < 4000; tick++ {
			e.stkA.PollOnce()
			e.stkB.PollOnce()
			if !answered {
				if _, src, sport, errno := e.stkB.RecvFrom(sfd, bufB); errno == hostos.OK {
					if _, errno := e.stkB.SendTo(sfd, answer, src, sport); errno != hostos.OK {
						b.Fatalf("answer: %v", errno)
					}
					answered = true
				}
			}
			if n, _, _, errno := e.stkA.RecvFrom(cfd, bufA); errno == hostos.OK {
				if n != len(answer) {
					b.Fatalf("answer truncated: %d of %d bytes", n, len(answer))
				}
				return
			}
			e.clk.Advance(5000)
		}
		b.Fatal("round trip stalled")
	}
	// Warm-up round trips: ARP resolution, ring/FIFO slices and the
	// dgram payload arena reach steady state before counting.
	roundTrip()
	roundTrip()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip()
	}
}
