package fstack

import (
	"testing"

	"repro/internal/hostos"
	"repro/internal/obs"
)

// TestUDPQueueOverflowDrops pins the bounded-queue accounting: past
// udpQueueMax undrained datagrams, the socket sheds load into the
// dedicated UdpQueueDrops counter (not the datapath's RxDropped) and
// emits one EvUDPDrop trace event per shed datagram, while the queue
// itself never exceeds its bound.
func TestUDPQueueOverflowDrops(t *testing.T) {
	e := newEnv(t, false)
	tr := obs.NewTrace(4096)
	e.stkB.SetObs(tr, nil, 7)

	sfd, _ := e.stkB.Socket(SockDgram)
	if errno := e.stkB.Bind(sfd, IPv4Addr{}, 14550); errno != hostos.OK {
		t.Fatal(errno)
	}
	cfd, _ := e.stkA.Socket(SockDgram)

	// Warm the ARP cache so the flood is not shed on the sender while
	// resolution is pending.
	if _, errno := e.stkA.SendTo(cfd, []byte("warmup"), IP4(10, 0, 0, 2), 14550); errno != hostos.OK {
		t.Fatal(errno)
	}
	warm := make([]byte, 64)
	e.pumpUntil(4000, "warmup datagram", func() bool {
		_, _, _, errno := e.stkB.RecvFrom(sfd, warm)
		return errno == hostos.OK
	})

	// Offer well past the bound; nobody reads. A few datagrams per
	// tick stays inside the client's TX ring.
	const offered = udpQueueMax + 64
	msg := []byte("flood")
	for i := 0; i < offered; i += 4 {
		for j := 0; j < 4 && i+j < offered; j++ {
			if _, errno := e.stkA.SendTo(cfd, msg, IP4(10, 0, 0, 2), 14550); errno != hostos.OK {
				t.Fatal(errno)
			}
		}
		e.tick()
	}
	// Everything offered either sits in the (full) queue or was shed.
	e.pumpUntil(4000, "all in-flight datagrams resolved", func() bool {
		return e.stkB.Stats().UdpQueueDrops == offered-udpQueueMax
	})

	st := e.stkB.Stats()
	if st.RxDropped != 0 {
		t.Fatalf("queue overflow leaked into RxDropped (%d); want the dedicated counter", st.RxDropped)
	}
	// Drain: exactly the bound survived, everything else was counted.
	buf := make([]byte, 2048)
	drained := 0
	for {
		if _, _, _, errno := e.stkB.RecvFrom(sfd, buf); errno != hostos.OK {
			break
		}
		drained++
	}
	if drained != udpQueueMax {
		t.Fatalf("drained %d datagrams; the queue bound is %d", drained, udpQueueMax)
	}
	if got := st.UdpQueueDrops + uint64(drained); got != offered {
		t.Fatalf("drops %d + drained %d != offered %d", st.UdpQueueDrops, drained, offered)
	}

	var traced uint64
	for _, ev := range tr.Snapshot() {
		if ev.Type == obs.EvUDPDrop {
			traced++
			if ev.Src != 7 || ev.A != int64(len(msg)) || ev.C != 14550 {
				t.Fatalf("drop event fields: %+v", ev)
			}
		}
	}
	if traced != st.UdpQueueDrops {
		t.Fatalf("traced %d drop events, counter says %d", traced, st.UdpQueueDrops)
	}
}

// TestEpollListenerAcceptReadiness pins the accept edge: a listener is
// not readable until a completed connection waits in its accept queue,
// and goes quiet again once accepted.
func TestEpollListenerAcceptReadiness(t *testing.T) {
	e := newEnv(t, false)
	lfd, _ := e.stkB.Socket(SockStream)
	if errno := e.stkB.Bind(lfd, IPv4Addr{}, 5001); errno != hostos.OK {
		t.Fatal(errno)
	}
	if errno := e.stkB.Listen(lfd, 8); errno != hostos.OK {
		t.Fatal(errno)
	}
	ep := e.stkB.EpollCreate()
	if errno := e.stkB.EpollCtl(ep, EpollCtlAdd, lfd, EPOLLIN); errno != hostos.OK {
		t.Fatal(errno)
	}
	evs := make([]Event, 8)
	if n, _ := e.stkB.EpollWait(ep, evs); n != 0 {
		t.Fatalf("idle listener reported ready: %+v", evs[:n])
	}

	cfd, _ := e.stkA.Socket(SockStream)
	if errno := e.stkA.Connect(cfd, IP4(10, 0, 0, 2), 5001); errno != hostos.EINPROGRESS {
		t.Fatalf("connect: %v", errno)
	}
	e.pumpUntil(4000, "listener readable", func() bool {
		n, _ := e.stkB.EpollWait(ep, evs)
		return n == 1 && evs[0].FD == lfd && evs[0].Events == EPOLLIN
	})
	if fd, _, _, errno := e.stkB.Accept(lfd); errno != hostos.OK {
		t.Fatal(errno)
	} else if errno := e.stkB.EpollCtl(ep, EpollCtlAdd, fd, 0); errno != hostos.OK {
		t.Fatal(errno)
	}
	if n, _ := e.stkB.EpollWait(ep, evs); n != 0 {
		t.Fatalf("drained listener still ready: %+v", evs[:n])
	}
}

// TestEpollUDPReadiness pins the datagram edge: a bound socket
// registered for EPOLLIN only reports nothing while the queue is empty
// (its permanent writability must not leak through the mask), becomes
// readable when a datagram lands, and goes quiet once drained.
func TestEpollUDPReadiness(t *testing.T) {
	e := newEnv(t, false)
	sfd, _ := e.stkB.Socket(SockDgram)
	if errno := e.stkB.Bind(sfd, IPv4Addr{}, 14550); errno != hostos.OK {
		t.Fatal(errno)
	}
	ep := e.stkB.EpollCreate()
	if errno := e.stkB.EpollCtl(ep, EpollCtlAdd, sfd, EPOLLIN); errno != hostos.OK {
		t.Fatal(errno)
	}
	evs := make([]Event, 8)
	if n, _ := e.stkB.EpollWait(ep, evs); n != 0 {
		t.Fatalf("empty dgram socket reported ready: %+v", evs[:n])
	}

	cfd, _ := e.stkA.Socket(SockDgram)
	if _, errno := e.stkA.SendTo(cfd, []byte("ping"), IP4(10, 0, 0, 2), 14550); errno != hostos.OK {
		t.Fatal(errno)
	}
	e.pumpUntil(4000, "datagram readable", func() bool {
		n, _ := e.stkB.EpollWait(ep, evs)
		return n == 1 && evs[0].FD == sfd && evs[0].Events == EPOLLIN
	})
	buf := make([]byte, 256)
	if _, _, _, errno := e.stkB.RecvFrom(sfd, buf); errno != hostos.OK {
		t.Fatal(errno)
	}
	if n, _ := e.stkB.EpollWait(ep, evs); n != 0 {
		t.Fatalf("drained dgram socket still ready: %+v", evs[:n])
	}
	// Registered for EPOLLOUT too, the socket is always writable.
	if errno := e.stkB.EpollCtl(ep, EpollCtlMod, sfd, EPOLLIN|EPOLLOUT); errno != hostos.OK {
		t.Fatal(errno)
	}
	if n, _ := e.stkB.EpollWait(ep, evs); n != 1 || evs[0].Events != EPOLLOUT {
		t.Fatalf("dgram EPOLLOUT registration: %+v (n=%d)", evs[0], n)
	}
}

// TestEpollOutRearmAfterZeroWindowReopen pins the flow-control edge
// the HTTP client leans on: when the peer's window slams shut and the
// send buffer fills, EPOLLOUT must disappear; when the reader drains
// and the window update arrives, the same level-triggered wait must
// report EPOLLOUT again without any re-registration.
func TestEpollOutRearmAfterZeroWindowReopen(t *testing.T) {
	e := newEnv(t, false)
	// A small receive buffer makes the window trivial to slam shut.
	e.stkB.SetTCPTuning(TCPTuning{RcvBufBytes: 8192})
	cfd, afd := e.connectPair(5001)
	ep := e.stkA.EpollCreate()
	if errno := e.stkA.EpollCtl(ep, EpollCtlAdd, cfd, EPOLLOUT); errno != hostos.OK {
		t.Fatal(errno)
	}
	evs := make([]Event, 8)

	// Fill until nothing moves: write to EAGAIN, give the stacks time
	// to drain in-flight data into B's (unread) receive buffer, and
	// stop once a full round of ticks unblocked nothing.
	chunk := make([]byte, 1024)
	for {
		wrote := 0
		for {
			n, errno := e.stkA.Write(cfd, chunk)
			if errno == hostos.EAGAIN {
				break
			}
			if errno != hostos.OK {
				t.Fatal(errno)
			}
			wrote += n
		}
		for i := 0; i < 200; i++ {
			e.tick()
		}
		if wrote == 0 {
			break
		}
	}
	if n, _ := e.stkA.EpollWait(ep, evs); n != 0 {
		t.Fatalf("full send buffer over a closed window still reports: %+v", evs[:n])
	}

	// Reader drains; the window reopens; the sender flushes.
	buf := make([]byte, 65536)
	e.pumpUntil(40000, "EPOLLOUT re-armed", func() bool {
		for {
			if _, errno := e.stkB.Read(afd, buf); errno != hostos.OK {
				break
			}
		}
		n, _ := e.stkA.EpollWait(ep, evs)
		return n == 1 && evs[0].FD == cfd && evs[0].Events&EPOLLOUT != 0
	})
}

// TestEpollReadinessAfterClose pins the teardown edge: Close removes
// the descriptor from every interest set, so a later wait reports
// nothing for it (no phantom readiness) and re-registering the dead fd
// fails with EBADF.
func TestEpollReadinessAfterClose(t *testing.T) {
	e := newEnv(t, false)
	cfd, afd := e.connectPair(5001)
	ep := e.stkB.EpollCreate()
	if errno := e.stkB.EpollCtl(ep, EpollCtlAdd, afd, EPOLLIN); errno != hostos.OK {
		t.Fatal(errno)
	}
	// Make the fd ready before closing: readiness must die with it.
	if _, errno := e.stkA.Write(cfd, []byte("last words")); errno != hostos.OK {
		t.Fatal(errno)
	}
	e.pumpUntil(4000, "payload queued at the receiver", func() bool {
		evs := make([]Event, 8)
		n, _ := e.stkB.EpollWait(ep, evs)
		return n == 1 && evs[0].Events&EPOLLIN != 0
	})
	if errno := e.stkB.Close(afd); errno != hostos.OK {
		t.Fatal(errno)
	}
	evs := make([]Event, 8)
	if n, _ := e.stkB.EpollWait(ep, evs); n != 0 {
		t.Fatalf("closed fd still reported: %+v", evs[:n])
	}
	if errno := e.stkB.EpollCtl(ep, EpollCtlMod, afd, EPOLLIN); errno != hostos.EBADF {
		t.Fatalf("re-arming a closed fd: %v, want EBADF", errno)
	}
}
