package hostos

import "time"

// Clock identifiers (FreeBSD numbering for the ones we implement).
const (
	// ClockMonotonic is CLOCK_MONOTONIC.
	ClockMonotonic = 4
	// ClockMonotonicRaw is the evaluation's CLOCK_MONOTONIC_RAW
	// (non-adjusted monotonic time).
	ClockMonotonicRaw = 11
)

// Clock provides monotonic time in nanoseconds since boot. The network
// simulator substitutes a virtual clock in deterministic tests; the
// evaluation binaries use the real clock so latency figures are genuine
// measurements.
type Clock interface {
	Now() int64
}

// RealClock reads the host's monotonic clock.
type RealClock struct {
	boot time.Time
}

// NewRealClock boots a monotonic clock at the current instant.
func NewRealClock() *RealClock { return &RealClock{boot: time.Now()} }

// Now returns nanoseconds since boot.
func (c *RealClock) Now() int64 { return int64(time.Since(c.boot)) }
