// Package hostos is a minimal CheriBSD-like host kernel substrate.
//
// The paper runs its compartmentalized stack on CheriBSD: the Intravisor
// is a host process, cVMs are its threads, and every cVM syscall is
// proxied by the Intravisor to the host kernel. This package provides the
// kernel services that data path actually touches:
//
//   - a CLOCK_MONOTONIC_RAW clock (used by the evaluation's
//     clock_gettime timing probes),
//   - umtx, FreeBSD's user-space synchronization primitive (the paper's
//     Intravisor translates musl's futex calls into umtx, §III-B),
//   - page-granular memory reservations carved from the machine's tagged
//     memory (the hugepage-like segments DPDK allocates at boot),
//   - a PCI registry with kernel-driver unbind, which is how DPDK
//     detaches the NIC from the kernel and maps its registers into user
//     space.
//
// The kernel is deliberately small — DPDK and F-Stack run entirely in
// user space and interact with the kernel "only at boot time" (§III-B),
// so boot-time services plus clock/umtx are the whole required surface.
package hostos
