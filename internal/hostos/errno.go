package hostos

import "fmt"

// Errno is a FreeBSD-style error number returned by syscalls. OK (0)
// means success.
type Errno int

// Errno values (numerically aligned with FreeBSD where it matters).
const (
	OK            Errno = 0
	EPERM         Errno = 1
	ENOENT        Errno = 2
	EINTR         Errno = 4
	EBADF         Errno = 9
	ENOMEM        Errno = 12
	EFAULT        Errno = 14
	EBUSY         Errno = 16
	EINVAL        Errno = 22
	EPIPE         Errno = 32
	EAGAIN        Errno = 35
	EINPROGRESS   Errno = 36
	EMSGSIZE      Errno = 40
	EADDRINUSE    Errno = 48
	EADDRNOTAVAIL Errno = 49
	ENETDOWN      Errno = 50
	ECONNRESET    Errno = 54
	EISCONN       Errno = 56
	ENOTCONN      Errno = 57
	ETIMEDOUT     Errno = 60
	ECONNREFUSED  Errno = 61
	ENOSYS        Errno = 78
)

var errnoNames = map[Errno]string{
	OK:            "OK",
	EPERM:         "EPERM",
	ENOENT:        "ENOENT",
	EINTR:         "EINTR",
	EBADF:         "EBADF",
	ENOMEM:        "ENOMEM",
	EFAULT:        "EFAULT",
	EBUSY:         "EBUSY",
	EINVAL:        "EINVAL",
	ENOSYS:        "ENOSYS",
	EAGAIN:        "EAGAIN",
	ETIMEDOUT:     "ETIMEDOUT",
	EPIPE:         "EPIPE",
	EINPROGRESS:   "EINPROGRESS",
	EMSGSIZE:      "EMSGSIZE",
	EADDRINUSE:    "EADDRINUSE",
	EADDRNOTAVAIL: "EADDRNOTAVAIL",
	ENETDOWN:      "ENETDOWN",
	ECONNRESET:    "ECONNRESET",
	EISCONN:       "EISCONN",
	ENOTCONN:      "ENOTCONN",
	ECONNREFUSED:  "ECONNREFUSED",
}

// String returns the symbolic name.
func (e Errno) String() string {
	if s, ok := errnoNames[e]; ok {
		return s
	}
	return fmt.Sprintf("Errno(%d)", int(e))
}

// Error satisfies error for non-zero errnos.
func (e Errno) Error() string { return e.String() }
