package hostos

import (
	"sync"
	"testing"
	"time"
)

func TestClockMonotonic(t *testing.T) {
	c := NewRealClock()
	a := c.Now()
	b := c.Now()
	if b < a {
		t.Fatalf("clock went backwards: %d then %d", a, b)
	}
}

func TestKernelClockGettime(t *testing.T) {
	k, err := NewKernel(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	s0, n0, errno := k.Syscall(SysClockGettime, Args{ClockMonotonicRaw})
	if errno != OK {
		t.Fatalf("clock_gettime: %v", errno)
	}
	if n0 >= 1e9 {
		t.Fatalf("nsec field out of range: %d", n0)
	}
	time.Sleep(2 * time.Millisecond)
	s1, n1, errno := k.Syscall(SysClockGettime, Args{ClockMonotonicRaw})
	if errno != OK {
		t.Fatal(errno)
	}
	t0 := int64(s0)*1e9 + int64(n0)
	t1 := int64(s1)*1e9 + int64(n1)
	if t1 <= t0 {
		t.Fatalf("time did not advance: %d -> %d", t0, t1)
	}
	if _, _, errno := k.Syscall(SysClockGettime, Args{999}); errno != EINVAL {
		t.Fatalf("bad clock id: got %v, want EINVAL", errno)
	}
}

func TestKernelUnknownSyscall(t *testing.T) {
	k, _ := NewKernel(1 << 20)
	if _, _, errno := k.Syscall(SysNo(123456), Args{}); errno != ENOSYS {
		t.Fatalf("unknown syscall: got %v, want ENOSYS", errno)
	}
}

func TestPageAllocBasic(t *testing.T) {
	p, err := NewPageAlloc(PageSize, 16*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	a, errno := p.Alloc(100) // rounds to one page
	if errno != OK {
		t.Fatal(errno)
	}
	if a%PageSize != 0 {
		t.Fatalf("unaligned allocation %#x", a)
	}
	b, errno := p.Alloc(PageSize * 2)
	if errno != OK {
		t.Fatal(errno)
	}
	if b == a {
		t.Fatal("overlapping allocations")
	}
	if errno := p.Free(a, PageSize); errno != OK {
		t.Fatal(errno)
	}
	if errno := p.Free(a, PageSize); errno != EINVAL {
		t.Fatalf("double free: got %v, want EINVAL", errno)
	}
	if errno := p.Free(b, 2*PageSize); errno != OK {
		t.Fatal(errno)
	}
	if got := p.FreeBytes(); got != 16*PageSize {
		t.Fatalf("free bytes after full release = %d, want %d", got, 16*PageSize)
	}
}

func TestPageAllocExhaustion(t *testing.T) {
	p, err := NewPageAlloc(PageSize, 4*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, errno := p.Alloc(5 * PageSize); errno != ENOMEM {
		t.Fatalf("oversized alloc: got %v, want ENOMEM", errno)
	}
	for i := 0; i < 4; i++ {
		if _, errno := p.Alloc(PageSize); errno != OK {
			t.Fatalf("alloc %d: %v", i, errno)
		}
	}
	if _, errno := p.Alloc(PageSize); errno != ENOMEM {
		t.Fatalf("exhausted alloc: got %v, want ENOMEM", errno)
	}
}

func TestPageAllocCoalesce(t *testing.T) {
	p, _ := NewPageAlloc(PageSize, 8*PageSize)
	a, _ := p.Alloc(2 * PageSize)
	b, _ := p.Alloc(2 * PageSize)
	c, _ := p.Alloc(2 * PageSize)
	_ = c
	// Free in an order that requires coalescing a..b.
	if errno := p.Free(b, 2*PageSize); errno != OK {
		t.Fatal(errno)
	}
	if errno := p.Free(a, 2*PageSize); errno != OK {
		t.Fatal(errno)
	}
	// A 4-page allocation must now fit in the coalesced hole.
	d, errno := p.Alloc(4 * PageSize)
	if errno != OK {
		t.Fatalf("coalesced alloc: %v", errno)
	}
	if d != a {
		t.Fatalf("coalesced alloc at %#x, want %#x", d, a)
	}
}

func TestUmtxWaitValueMismatchReturnsImmediately(t *testing.T) {
	k, _ := NewKernel(1 << 20)
	addr := uint64(PageSize)
	s, _ := k.Mem.RawSlice(addr, 4)
	s[0] = 1 // *addr = 1
	if errno := k.Umtx.WaitUint(addr, 0, 0); errno != OK {
		t.Fatalf("mismatched wait: got %v, want immediate OK", errno)
	}
}

func TestUmtxWaitWake(t *testing.T) {
	k, _ := NewKernel(1 << 20)
	addr := uint64(PageSize)
	var wg sync.WaitGroup
	woken := make(chan Errno, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		woken <- k.Umtx.WaitUint(addr, 0, 0)
	}()
	// Give the waiter time to park, then wake it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := k.Umtx.Wake(addr, 1); n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	wg.Wait()
	if errno := <-woken; errno != OK {
		t.Fatalf("woken waiter: got %v, want OK", errno)
	}
}

func TestUmtxTimeout(t *testing.T) {
	k, _ := NewKernel(1 << 20)
	addr := uint64(PageSize)
	start := time.Now()
	errno := k.Umtx.WaitUint(addr, 0, 5*time.Millisecond)
	if errno != ETIMEDOUT {
		t.Fatalf("timed wait: got %v, want ETIMEDOUT", errno)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("returned before timeout")
	}
}

func TestUmtxWakeWithoutWaiters(t *testing.T) {
	k, _ := NewKernel(1 << 20)
	if n := k.Umtx.Wake(PageSize, 10); n != 0 {
		t.Fatalf("wake with no waiters woke %d", n)
	}
}

func TestUmtxViaSyscall(t *testing.T) {
	k, _ := NewKernel(1 << 20)
	addr := uint64(PageSize)
	done := make(chan struct{})
	go func() {
		k.Syscall(SysUmtxOp, Args{addr, UmtxOpWaitUint, 0, 0})
		close(done)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n, _, errno := k.Syscall(SysUmtxOp, Args{addr, UmtxOpWake, 1})
		if errno != OK {
			t.Fatal(errno)
		}
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("syscall waiter never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	<-done
	if _, _, errno := k.Syscall(SysUmtxOp, Args{addr, 999, 0}); errno != EINVAL {
		t.Fatalf("bad umtx op: got %v, want EINVAL", errno)
	}
}

type fakeDev struct{ bdf string }

func (d *fakeDev) BDF() string               { return d.bdf }
func (d *fakeDev) VendorID() uint16          { return 0x8086 }
func (d *fakeDev) DeviceID() uint16          { return 0x10C9 }
func (d *fakeDev) RegRead32(uint64) uint32   { return 0 }
func (d *fakeDev) RegWrite32(uint64, uint32) {}

func TestPCIRegisterUnbindClaim(t *testing.T) {
	p := NewPCI()
	dev := &fakeDev{bdf: "0000:03:00.0"}
	if err := p.Register(dev); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(dev); err == nil {
		t.Fatal("duplicate register must fail")
	}
	// Claiming while kernel-bound fails.
	if _, errno := p.Claim(dev.BDF()); errno != EBUSY {
		t.Fatalf("claim while bound: got %v, want EBUSY", errno)
	}
	if errno := p.Unbind(dev.BDF()); errno != OK {
		t.Fatal(errno)
	}
	if errno := p.Unbind(dev.BDF()); errno != EBUSY {
		t.Fatalf("double unbind: got %v, want EBUSY", errno)
	}
	got, errno := p.Claim(dev.BDF())
	if errno != OK || got != dev {
		t.Fatalf("claim: %v, %v", got, errno)
	}
	if errno := p.Unbind("nope"); errno != ENOENT {
		t.Fatalf("unbind unknown: got %v, want ENOENT", errno)
	}
	if len(p.Devices()) != 1 {
		t.Fatalf("devices = %v", p.Devices())
	}
}

func TestMmapSyscall(t *testing.T) {
	k, _ := NewKernel(1 << 20)
	addr, _, errno := k.Syscall(SysMmap, Args{3 * PageSize})
	if errno != OK {
		t.Fatal(errno)
	}
	if addr%PageSize != 0 || addr == 0 {
		t.Fatalf("mmap addr %#x", addr)
	}
	if _, _, errno := k.Syscall(SysMunmap, Args{addr, 3 * PageSize}); errno != OK {
		t.Fatal(errno)
	}
}
