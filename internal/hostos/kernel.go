package hostos

import (
	"time"

	"repro/internal/cheri"
)

// SysNo is a syscall number.
type SysNo int

// Syscall numbers (FreeBSD numbering where one exists).
const (
	// SysClockGettime returns the time of the clock in a0; r0=sec,
	// r1=nsec.
	SysClockGettime SysNo = 232
	// SysUmtxOp performs the umtx operation a1 on address a0 with value
	// a2 and timeout a3 (ns; 0 = infinite). r0 = woken count for wake.
	SysUmtxOp SysNo = 454
	// SysMmap reserves a0 bytes of page memory; r0 = base address.
	SysMmap SysNo = 477
	// SysMunmap releases the reservation [a0, a0+a1).
	SysMunmap SysNo = 73
	// SysNanosleep sleeps for a0 nanoseconds.
	SysNanosleep SysNo = 240
)

// Args carries up to six syscall arguments.
type Args [6]uint64

// Kernel is the host OS instance: one per simulated machine.
type Kernel struct {
	Mem   *cheri.TMem
	Clk   Clock
	Umtx  *Umtx
	Pages *PageAlloc
	PCI   *PCI
}

// NewKernel boots a host kernel over memSize bytes of tagged memory. The
// first page is reserved (null page); the rest is the mmap arena.
func NewKernel(memSize uint64) (*Kernel, error) {
	mem := cheri.NewTMem(memSize)
	pages, err := NewPageAlloc(PageSize, mem.Size()-PageSize)
	if err != nil {
		return nil, err
	}
	return &Kernel{
		Mem:   mem,
		Clk:   NewRealClock(),
		Umtx:  NewUmtx(mem),
		Pages: pages,
		PCI:   NewPCI(),
	}, nil
}

// Syscall dispatches a host syscall. It is the single entry point the
// Intravisor proxies into (and that Baseline code calls directly).
func (k *Kernel) Syscall(num SysNo, a Args) (r0, r1 uint64, errno Errno) {
	switch num {
	case SysClockGettime:
		switch a[0] {
		case ClockMonotonic, ClockMonotonicRaw:
			ns := k.Clk.Now()
			return uint64(ns / 1e9), uint64(ns % 1e9), OK
		default:
			return 0, 0, EINVAL
		}
	case SysUmtxOp:
		switch a[1] {
		case UmtxOpWaitUint:
			return 0, 0, k.Umtx.WaitUint(a[0], uint32(a[2]), time.Duration(a[3]))
		case UmtxOpWake:
			n := k.Umtx.Wake(a[0], int(a[2]))
			return uint64(n), 0, OK
		default:
			return 0, 0, EINVAL
		}
	case SysMmap:
		addr, errno := k.Pages.Alloc(a[0])
		return addr, 0, errno
	case SysMunmap:
		return 0, 0, k.Pages.Free(a[0], a[1])
	case SysNanosleep:
		time.Sleep(time.Duration(a[0]))
		return 0, 0, OK
	default:
		return 0, 0, ENOSYS
	}
}

// NowNS returns kernel monotonic time; convenience for in-kernel code.
func (k *Kernel) NowNS() int64 { return k.Clk.Now() }
