package hostos

import (
	"fmt"
	"sort"
	"sync"
)

// PageSize is the allocation granule for memory reservations.
const PageSize = 4096

// PageAlloc hands out page-aligned reservations from a fixed arena, in
// the role of the kernel's mmap for the Intravisor and DPDK's
// hugepage-like segments.
type PageAlloc struct {
	mu   sync.Mutex
	base uint64
	size uint64
	free []span // sorted by addr, coalesced
}

type span struct {
	addr uint64
	size uint64
}

// NewPageAlloc manages [base, base+size), both page aligned.
func NewPageAlloc(base, size uint64) (*PageAlloc, error) {
	if base%PageSize != 0 || size%PageSize != 0 || size == 0 {
		return nil, fmt.Errorf("hostos: page arena [%#x,+%#x) not page aligned", base, size)
	}
	return &PageAlloc{
		base: base,
		size: size,
		free: []span{{addr: base, size: size}},
	}, nil
}

// Alloc reserves n bytes (rounded up to pages) and returns the base
// address. First fit.
func (p *PageAlloc) Alloc(n uint64) (uint64, Errno) {
	if n == 0 {
		return 0, EINVAL
	}
	n = (n + PageSize - 1) &^ (PageSize - 1)
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.free {
		if p.free[i].size >= n {
			addr := p.free[i].addr
			p.free[i].addr += n
			p.free[i].size -= n
			if p.free[i].size == 0 {
				p.free = append(p.free[:i], p.free[i+1:]...)
			}
			return addr, OK
		}
	}
	return 0, ENOMEM
}

// Free returns a reservation. Freeing memory that is not currently
// allocated (double free, out-of-arena) yields EINVAL.
func (p *PageAlloc) Free(addr, n uint64) Errno {
	if n == 0 || addr%PageSize != 0 || n%PageSize != 0 {
		return EINVAL
	}
	if addr < p.base || addr+n > p.base+p.size || addr+n < addr {
		return EINVAL
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// Reject overlap with existing free spans.
	for _, s := range p.free {
		if addr < s.addr+s.size && s.addr < addr+n {
			return EINVAL
		}
	}
	p.free = append(p.free, span{addr: addr, size: n})
	sort.Slice(p.free, func(i, j int) bool { return p.free[i].addr < p.free[j].addr })
	// Coalesce.
	out := p.free[:1]
	for _, s := range p.free[1:] {
		last := &out[len(out)-1]
		if last.addr+last.size == s.addr {
			last.size += s.size
		} else {
			out = append(out, s)
		}
	}
	p.free = out
	return OK
}

// FreeBytes reports the total unreserved size.
func (p *PageAlloc) FreeBytes() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var t uint64
	for _, s := range p.free {
		t += s.size
	}
	return t
}
