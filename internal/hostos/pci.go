package hostos

import (
	"fmt"
	"sync"
)

// PCIDevice is the device side of the PCI registry. The simulated Intel
// 82576 NIC implements it; DPDK's poll-mode driver talks to it through
// the register interface after unbinding the kernel driver.
type PCIDevice interface {
	// BDF returns the bus/device/function address ("0000:03:00.0").
	BDF() string
	// VendorID and DeviceID identify the silicon (0x8086/0x10C9 for the
	// 82576).
	VendorID() uint16
	DeviceID() uint16
	// RegRead32 and RegWrite32 access the device register block (BAR0).
	RegRead32(off uint64) uint32
	RegWrite32(off uint64, v uint32)
}

type pciSlot struct {
	dev         PCIDevice
	kernelBound bool
}

// PCI is the host's PCI registry: device discovery, kernel-driver
// binding state, and user-space pass-through.
type PCI struct {
	mu    sync.Mutex
	slots map[string]*pciSlot
}

// NewPCI creates an empty registry.
func NewPCI() *PCI { return &PCI{slots: make(map[string]*pciSlot)} }

// Register adds a device; it starts bound to the kernel driver, like a
// NIC owned by the in-kernel network stack at boot.
func (p *PCI) Register(dev PCIDevice) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.slots[dev.BDF()]; dup {
		return fmt.Errorf("hostos: PCI device %s already registered", dev.BDF())
	}
	p.slots[dev.BDF()] = &pciSlot{dev: dev, kernelBound: true}
	return nil
}

// Unbind detaches the kernel driver from the device so user space can
// claim it (DPDK's igb_uio/nic_uio step, §II-C).
func (p *PCI) Unbind(bdf string) Errno {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.slots[bdf]
	if !ok {
		return ENOENT
	}
	if !s.kernelBound {
		return EBUSY
	}
	s.kernelBound = false
	return OK
}

// Claim returns the pass-through handle for an unbound device.
func (p *PCI) Claim(bdf string) (PCIDevice, Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.slots[bdf]
	if !ok {
		return nil, ENOENT
	}
	if s.kernelBound {
		return nil, EBUSY
	}
	return s.dev, OK
}

// Devices lists registered BDFs (unordered).
func (p *PCI) Devices() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.slots))
	for bdf := range p.slots {
		out = append(out, bdf)
	}
	return out
}
