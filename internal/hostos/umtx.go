package hostos

import (
	"encoding/binary"
	"sync"
	"time"

	"repro/internal/cheri"
)

// umtx operation codes (subset of FreeBSD's _umtx_op).
const (
	// UmtxOpWake wakes up to val waiters blocked on obj.
	UmtxOpWake = 3
	// UmtxOpWaitUint blocks while *obj == val.
	UmtxOpWaitUint = 11
)

// Umtx implements FreeBSD's address-based sleep/wake primitive. musl's
// futex calls are translated onto it by the Intravisor proxy, exactly as
// the paper's modified Intravisor does (§III-B).
type Umtx struct {
	mem *cheri.TMem

	mu      sync.Mutex
	waiters map[uint64][]chan struct{}
}

// NewUmtx creates the umtx table over the machine's memory.
func NewUmtx(mem *cheri.TMem) *Umtx {
	return &Umtx{mem: mem, waiters: make(map[uint64][]chan struct{})}
}

// loadU32 reads the word at addr with kernel privilege.
func (u *Umtx) loadU32(addr uint64) (uint32, Errno) {
	s, err := u.mem.RawSlice(addr, 4)
	if err != nil {
		return 0, EFAULT
	}
	return binary.LittleEndian.Uint32(s), OK
}

// WaitUint blocks the caller while the uint32 at addr equals expected.
// timeout <= 0 waits forever. Returns ETIMEDOUT on expiry, OK on wake or
// when the value already differs.
func (u *Umtx) WaitUint(addr uint64, expected uint32, timeout time.Duration) Errno {
	u.mu.Lock()
	v, errno := u.loadU32(addr)
	if errno != OK {
		u.mu.Unlock()
		return errno
	}
	if v != expected {
		u.mu.Unlock()
		return OK
	}
	ch := make(chan struct{})
	u.waiters[addr] = append(u.waiters[addr], ch)
	u.mu.Unlock()

	if timeout <= 0 {
		<-ch
		return OK
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-ch:
		return OK
	case <-t.C:
		u.remove(addr, ch)
		return ETIMEDOUT
	}
}

// remove deletes ch from addr's wait queue if a wake has not already
// consumed it.
func (u *Umtx) remove(addr uint64, ch chan struct{}) {
	u.mu.Lock()
	defer u.mu.Unlock()
	q := u.waiters[addr]
	for i, c := range q {
		if c == ch {
			u.waiters[addr] = append(q[:i], q[i+1:]...)
			return
		}
	}
	// Already woken: drain the signal so the waker's close is harmless.
	select {
	case <-ch:
	default:
	}
}

// Wake releases up to n waiters blocked on addr and returns how many it
// released.
func (u *Umtx) Wake(addr uint64, n int) int {
	u.mu.Lock()
	defer u.mu.Unlock()
	q := u.waiters[addr]
	woken := 0
	for woken < n && len(q) > 0 {
		close(q[0])
		q = q[1:]
		woken++
	}
	if len(q) == 0 {
		delete(u.waiters, addr)
	} else {
		u.waiters[addr] = q
	}
	return woken
}
