package intravisor

import (
	"fmt"
	"sync"

	"repro/internal/cheri"
)

// State is a cVM lifecycle state.
type State int

const (
	// StateCreated: configured but not yet started.
	StateCreated State = iota
	// StateRunning: executing as a thread of the Intravisor.
	StateRunning
	// StateTrapped: terminated by a capability fault (paper Fig. 3).
	StateTrapped
	// StateStopped: shut down cleanly.
	StateStopped
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StateTrapped:
		return "trapped"
	case StateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// CVM is a capability-VM: an isolated component running as a thread of
// the Intravisor, confined to the DDC window it was granted.
type CVM struct {
	Name string
	ID   int

	iv    *Intravisor
	base  uint64
	size  uint64
	ddc   cheri.Cap
	entry cheri.EntryPair // sealed entry into the Intravisor
	ctx   cheri.Context

	mu    sync.Mutex
	state State
	trap  *cheri.Fault
}

// Base returns the base address of the cVM's memory window.
func (c *CVM) Base() uint64 { return c.base }

// Size returns the size of the cVM's memory window.
func (c *CVM) Size() uint64 { return c.size }

// DDC returns the cVM's default data capability.
func (c *CVM) DDC() cheri.Cap { return c.ddc }

// State returns the lifecycle state.
func (c *CVM) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Start marks the cVM running.
func (c *CVM) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == StateCreated || c.state == StateStopped {
		c.state = StateRunning
	}
}

// Stop marks the cVM cleanly stopped.
func (c *CVM) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == StateRunning {
		c.state = StateStopped
	}
}

// Trap records a capability fault and terminates the cVM, as CheriBSD's
// SIGPROT delivery does for the paper's Fig. 3 experiment.
func (c *CVM) Trap(f *cheri.Fault) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state = StateTrapped
	c.trap = f
}

// Trapped reports whether the cVM is dead from a capability fault (the
// supervisor's poll predicate).
func (c *CVM) Trapped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state == StateTrapped
}

// Restart revives a trapped cVM in place. Intravisor restarts a crashed
// compartment by re-entering its loader over the same memory window
// (pages are never returned to the host), so the model re-derives the
// DDC and register template from the root rather than re-allocating:
// the window, ID and name survive; every capability the old incarnation
// held is dead because new gates must be sealed over the fresh DDC.
func (c *CVM) Restart() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateTrapped {
		return fmt.Errorf("intravisor: restart of cVM %q in state %v", c.Name, c.state)
	}
	ddc, err := c.iv.root.SetAddr(c.base).SetBounds(c.size)
	if err != nil {
		return err
	}
	ddc, err = ddc.AndPerms(cheri.PermData)
	if err != nil {
		return err
	}
	pcc, err := c.iv.codeCap.AndPerms(cheri.PermCode)
	if err != nil {
		return err
	}
	c.ddc = ddc
	c.ctx = cheri.Context{DDC: ddc, PCC: pcc}
	c.trap = nil
	c.state = StateRunning
	return nil
}

// TrapFault returns the fault that terminated the cVM, if any.
func (c *CVM) TrapFault() *cheri.Fault {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.trap
}

// faultOf converts an error to *cheri.Fault when it is one.
func faultOf(err error) (*cheri.Fault, bool) {
	f, ok := err.(*cheri.Fault)
	return f, ok
}

// Load performs a hybrid-mode load through the cVM's DDC. A capability
// violation traps the cVM (the access is the compartment's own code
// touching memory it should not).
func (c *CVM) Load(addr uint64, dst []byte) error {
	if err := c.iv.K.Mem.Load(c.ddc, addr, dst); err != nil {
		if f, ok := faultOf(err); ok {
			c.Trap(f)
		}
		return err
	}
	return nil
}

// Store performs a hybrid-mode store through the cVM's DDC, trapping the
// cVM on a capability violation.
func (c *CVM) Store(addr uint64, src []byte) error {
	if err := c.iv.K.Mem.Store(c.ddc, addr, src); err != nil {
		if f, ok := faultOf(err); ok {
			c.Trap(f)
		}
		return err
	}
	return nil
}

// DeriveBuf derives a bounded capability over [addr, addr+n) of the
// cVM's window, the way pure-capability code materializes a buffer
// argument before passing it to an API that takes a `void * __capability`.
func (c *CVM) DeriveBuf(addr uint64, n uint64) (cheri.Cap, error) {
	b, err := c.ddc.SetAddr(addr).SetBounds(n)
	if err != nil {
		if f, ok := faultOf(err); ok {
			c.Trap(f)
		}
		return cheri.NullCap, err
	}
	return b, nil
}

// Mem gives the cVM's view of machine memory. All checked accesses the
// network stack performs inside this cVM go through capabilities derived
// from the DDC.
func (c *CVM) Mem() *cheri.TMem { return c.iv.K.Mem }
