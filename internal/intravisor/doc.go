// Package intravisor implements the CAP-VM Intravisor of Sartakov et
// al. (OSDI'22) as adapted by the paper (§II-B, §III-B): a privileged
// manager that creates capability-VMs (cVMs), distributes memory
// capabilities to them, and mediates every interaction between a cVM and
// the host OS.
//
// A cVM is an isolated software component confined to a DDC window of
// the machine's tagged memory. cVMs cannot issue host syscalls: their
// (modified musl) libc replaces each svc instruction with a trampoline
// that saves the register state, clears volatile capability registers,
// and enters the Intravisor through a sealed entry pair (CInvoke / blrs
// on Morello). The Intravisor proxy translates musl-flavoured syscalls
// to their CheriBSD equivalents (futex -> umtx, Linux clock ids ->
// FreeBSD clock ids), validates that every address the cVM passed lies
// inside that cVM's DDC, performs the host syscall, and returns through
// the saved frame.
//
// The same mechanism implements the cross-compartment call gates used by
// Scenario 2, where an application cVM invokes F-Stack API wrappers that
// jump into the network-stack cVM.
//
// The per-crossing cost — two frame copies, register clearing, the
// sealed-pair CInvoke checks — is the overhead the paper measures at
// ~125 ns (Fig. 4); it is a genuine cost of this implementation too,
// not a modelled constant.
package intravisor
