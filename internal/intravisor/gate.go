package intravisor

import (
	"repro/internal/cheri"
	"repro/internal/hostos"
	"repro/internal/obs"
)

// GateFunc is the target of a cross-compartment call: code that runs
// inside the owning cVM's world. args carries scalar arguments (fd,
// lengths, flags); buf carries at most one capability argument — the
// `void * __capability` buffer of the modified F-Stack API (§III-B).
type GateFunc func(caller *CVM, args hostos.Args, buf cheri.Cap) (r0 uint64, errno hostos.Errno)

// Gate is a sealed entry point into a cVM. Scenario 2 registers one gate
// per wrapped F-Stack API function (ff_write, ff_read, ...); application
// cVMs hold only the sealed pair, so they can reach exactly the exported
// entry points of the stack compartment and nothing else.
type Gate struct {
	iv    *Intravisor
	owner *CVM
	pair  cheri.EntryPair
	fn    GateFunc
}

// NewGate exports fn from the owner cVM as a callable gate.
func (iv *Intravisor) NewGate(owner *CVM, fn GateFunc) (*Gate, error) {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	pair, err := iv.sealPair(owner.ddc)
	if err != nil {
		return nil, err
	}
	return &Gate{iv: iv, owner: owner, pair: pair, fn: fn}, nil
}

// Owner returns the cVM the gate enters.
func (g *Gate) Owner() *CVM { return g.owner }

// Call performs the cross-compartment invocation from caller into the
// gate's owner: validate the capability argument, save and scrub the
// caller's register state, CInvoke through the sealed pair, run the
// target, and cross back. This is the jump the paper's Scenario 2
// wrappers execute around every F-Stack API call.
func (g *Gate) Call(caller *CVM, args hostos.Args, buf cheri.Cap) (uint64, hostos.Errno) {
	// The buffer capability the caller passes must be derived from the
	// caller's own authority: re-validate it against the caller's DDC
	// (CBuildCap), so a forged or stolen capability cannot cross.
	if buf.Tag() {
		checked, err := cheri.BuildCap(caller.ddc, buf)
		if err != nil {
			if f, ok := faultOf(err); ok {
				caller.Trap(f)
			}
			return 0, hostos.EFAULT
		}
		buf = checked
	}
	// Per-thread register file, seeded from the caller's template (the
	// same rule as the syscall trampoline).
	ctx := caller.ctx
	frame := ctx.Save()
	ctx.ClearVolatile()
	if err := ctx.CInvoke(g.pair); err != nil {
		if f, ok := faultOf(err); ok {
			caller.Trap(f)
		}
		ctx.Restore(frame)
		return 0, hostos.EFAULT
	}
	r0, errno := g.fn(caller, args, buf)
	ctx.ClearVolatile()
	ctx.Restore(frame)
	crossings := g.iv.Crossings.Add(1)
	if g.iv.obsTr != nil {
		g.iv.obsTr.Record(g.iv.obsNow(), obs.EvGateCrossing, uint16(caller.ID), int64(crossings), 0, 0)
	}
	return r0, errno
}
