package intravisor

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cheri"
	"repro/internal/hostos"
	"repro/internal/obs"
)

// Intravisor manages cVMs on one host kernel. It holds the memory root
// capability (received at boot) and the sealing authority from which all
// entry pairs are derived.
type Intravisor struct {
	K *hostos.Kernel

	root    cheri.Cap // full-memory root (Intravisor privilege)
	sealer  cheri.Cap // sealing authority, cursor selects otype
	codeCap cheri.Cap // executable window for entry points

	mu        sync.Mutex
	cvms      map[string]*CVM
	nextOType uint64
	nextID    int

	// Crossings counts completed domain crossings (trampolines + gates).
	Crossings atomic.Uint64

	// Flight-recorder hook (nil = observability off). The Intravisor is
	// clockless, so the wiring supplies virtual time.
	obsTr  *obs.Trace
	obsNow func() int64
}

// SetTrace attaches a flight recorder to the gate path; now supplies
// virtual time. Call before traffic.
func (iv *Intravisor) SetTrace(tr *obs.Trace, now func() int64) {
	iv.obsTr, iv.obsNow = tr, now
}

// codeWindow is the size of the synthetic executable region entry points
// live in. The model does not interpret instructions; the window exists
// so PCC capabilities have real bounds.
const codeWindow = 1 << 20

// New boots an Intravisor on the kernel. It mints the memory root, a
// sealing root, and the executable window for entry points.
func New(k *hostos.Kernel) (*Intravisor, error) {
	codeBase, errno := k.Pages.Alloc(codeWindow)
	if errno != hostos.OK {
		return nil, fmt.Errorf("intravisor: allocating code window: %v", errno)
	}
	root := k.Mem.Root()
	sealer, err := root.SetAddr(uint64(cheri.OTypeFirst)).SetBounds(uint64(cheri.OTypeLast))
	if err != nil {
		return nil, fmt.Errorf("intravisor: deriving sealer: %v", err)
	}
	sealer, err = sealer.AndPerms(cheri.PermSeal | cheri.PermUnseal)
	if err != nil {
		return nil, err
	}
	codeCap, err := root.SetAddr(codeBase).SetBounds(codeWindow)
	if err != nil {
		return nil, err
	}
	codeCap, err = codeCap.AndPerms(cheri.PermCode | cheri.PermInvoke)
	if err != nil {
		return nil, err
	}
	return &Intravisor{
		K:         k,
		root:      root,
		sealer:    sealer,
		codeCap:   codeCap,
		cvms:      make(map[string]*CVM),
		nextOType: uint64(cheri.OTypeFirst),
	}, nil
}

// allocOType reserves a fresh object type.
func (iv *Intravisor) allocOType() uint64 {
	ot := iv.nextOType
	iv.nextOType++
	return ot
}

// sealPair builds a sealed entry pair targeting the given data window
// with a fresh otype. Callers hold iv.mu.
func (iv *Intravisor) sealPair(data cheri.Cap) (cheri.EntryPair, error) {
	if !data.Perms().Has(cheri.PermInvoke) {
		// Re-derive over the same window with PermInvoke added; the
		// Intravisor has the authority (monotone w.r.t. the root).
		d, err := iv.root.SetAddr(data.Base()).SetBounds(data.Len())
		if err != nil {
			return cheri.EntryPair{}, err
		}
		d, err = d.AndPerms(data.Perms() | cheri.PermInvoke)
		if err != nil {
			return cheri.EntryPair{}, err
		}
		data = d
	}
	ot := iv.allocOType()
	return cheri.SealEntryPair(iv.codeCap, data, iv.sealer.SetAddr(ot))
}

// CreateCVM allocates a memory window of size bytes and constructs an
// isolated cVM around it. The cVM receives a DDC confined to its window
// (without system, seal or unseal rights) and a sealed entry pair into
// the Intravisor for syscall proxying.
func (iv *Intravisor) CreateCVM(name string, size uint64) (*CVM, error) {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	if _, dup := iv.cvms[name]; dup {
		return nil, fmt.Errorf("intravisor: cVM %q already exists", name)
	}
	base, errno := iv.K.Pages.Alloc(size)
	if errno != hostos.OK {
		return nil, fmt.Errorf("intravisor: allocating %d bytes for cVM %q: %v", size, name, errno)
	}
	ddc, err := iv.root.SetAddr(base).SetBounds(size)
	if err != nil {
		return nil, err
	}
	ddc, err = ddc.AndPerms(cheri.PermData)
	if err != nil {
		return nil, err
	}
	// Entry pair into the Intravisor: the data half covers all memory
	// (the Intravisor "has access to all cVM memory regions", §II-B).
	ivData, err := iv.root.AndPerms(cheri.PermData | cheri.PermInvoke | cheri.PermSystem)
	if err != nil {
		return nil, err
	}
	entry, err := iv.sealPair(ivData)
	if err != nil {
		return nil, err
	}
	c := &CVM{
		Name:  name,
		ID:    iv.nextID,
		iv:    iv,
		base:  base,
		size:  size,
		ddc:   ddc,
		entry: entry,
		state: StateCreated,
	}
	c.ctx.DDC = ddc
	pcc, err := iv.codeCap.AndPerms(cheri.PermCode)
	if err != nil {
		return nil, err
	}
	c.ctx.PCC = pcc
	iv.nextID++
	iv.cvms[name] = c
	return c, nil
}

// CVMs returns the cVMs by name.
func (iv *Intravisor) CVMs() map[string]*CVM {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	out := make(map[string]*CVM, len(iv.cvms))
	for k, v := range iv.cvms {
		out[k] = v
	}
	return out
}

// Mem returns the machine's tagged memory (Intravisor privilege).
func (iv *Intravisor) Mem() *cheri.TMem { return iv.K.Mem }

// Root returns the Intravisor's memory root capability. Only the
// scenario builder uses it, to hand device queues their DMA windows.
func (iv *Intravisor) Root() cheri.Cap { return iv.root }
