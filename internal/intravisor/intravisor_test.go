package intravisor

import (
	"testing"
	"time"

	"repro/internal/cheri"
	"repro/internal/hostos"
)

func newIV(t *testing.T) *Intravisor {
	t.Helper()
	k, err := hostos.NewKernel(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	return iv
}

func TestCreateCVMWindows(t *testing.T) {
	iv := newIV(t)
	a, err := iv.CreateCVM("cvm1", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := iv.CreateCVM("cvm2", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := iv.CreateCVM("cvm1", 1<<20); err == nil {
		t.Fatal("duplicate cVM name must fail")
	}
	// Windows must be disjoint.
	if a.Base() < b.Base()+b.Size() && b.Base() < a.Base()+a.Size() {
		t.Fatalf("overlapping windows: [%#x,+%#x) and [%#x,+%#x)",
			a.Base(), a.Size(), b.Base(), b.Size())
	}
	// DDC confined to the window, without privileged permissions.
	if a.DDC().Base() != a.Base() || a.DDC().Len() != a.Size() {
		t.Fatalf("DDC %v does not match window", a.DDC())
	}
	for _, p := range []cheri.Perm{cheri.PermSystem, cheri.PermSeal, cheri.PermUnseal, cheri.PermExecute} {
		if a.DDC().Perms().Has(p) {
			t.Fatalf("cVM DDC carries privileged perm %v", p)
		}
	}
	if len(iv.CVMs()) != 2 {
		t.Fatalf("CVMs() = %d entries", len(iv.CVMs()))
	}
}

func TestCVMIsolation(t *testing.T) {
	iv := newIV(t)
	a, _ := iv.CreateCVM("a", 1<<20)
	b, _ := iv.CreateCVM("b", 1<<20)

	// a writes inside its own window: fine.
	if err := a.Store(a.Base()+64, []byte("mine")); err != nil {
		t.Fatalf("own-window store: %v", err)
	}
	// a reaches into b's window: capability out-of-bounds, a traps.
	err := a.Store(b.Base()+64, []byte("attack"))
	if !cheri.IsFault(err, cheri.FaultBounds) {
		t.Fatalf("cross-window store: got %v, want bounds fault", err)
	}
	if a.State() != StateTrapped {
		t.Fatalf("attacker state = %v, want trapped", a.State())
	}
	if a.TrapFault() == nil || a.TrapFault().Kind != cheri.FaultBounds {
		t.Fatalf("trap fault = %v", a.TrapFault())
	}
	// The victim is unaffected (paper Fig. 3: other cVMs keep running).
	if b.State() == StateTrapped {
		t.Fatal("victim cVM must be unaffected")
	}
	got := make([]byte, 6)
	if err := b.Load(b.Base()+64, got); err != nil {
		t.Fatalf("victim load: %v", err)
	}
	if string(got) == "attack" {
		t.Fatal("attacker's bytes landed in the victim window")
	}
}

func TestCVMLifecycle(t *testing.T) {
	iv := newIV(t)
	c, _ := iv.CreateCVM("c", 1<<20)
	if c.State() != StateCreated {
		t.Fatalf("fresh state = %v", c.State())
	}
	c.Start()
	if c.State() != StateRunning {
		t.Fatalf("after Start: %v", c.State())
	}
	c.Stop()
	if c.State() != StateStopped {
		t.Fatalf("after Stop: %v", c.State())
	}
	if s := c.State().String(); s != "stopped" {
		t.Fatalf("state string = %q", s)
	}
}

func TestCVMRestart(t *testing.T) {
	iv := newIV(t)
	c, _ := iv.CreateCVM("c", 1<<20)
	c.Start()
	if err := c.Restart(); err == nil {
		t.Fatal("Restart of a running cVM must fail")
	}
	// An out-of-window load traps the compartment.
	if err := c.Load(c.Base()+c.Size(), make([]byte, 8)); err == nil {
		t.Fatal("out-of-window load must fault")
	}
	if !c.Trapped() || c.TrapFault() == nil {
		t.Fatalf("after fault: state=%v fault=%v", c.State(), c.TrapFault())
	}
	if err := c.Restart(); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateRunning || c.Trapped() || c.TrapFault() != nil {
		t.Fatalf("after restart: state=%v fault=%v", c.State(), c.TrapFault())
	}
	// Same window, working DDC: in-window accesses go through again.
	if c.DDC().Base() != c.Base() || c.DDC().Len() != c.Size() || !c.DDC().Tag() {
		t.Fatalf("restarted DDC %v does not cover window", c.DDC())
	}
	if err := c.Store(c.Base(), []byte{1, 2, 3, 4}); err != nil {
		t.Fatalf("in-window store after restart: %v", err)
	}
}

func TestTrampolineClockGettime(t *testing.T) {
	iv := newIV(t)
	c, _ := iv.CreateCVM("c", 1<<20)
	t0 := c.NowNS()
	if t0 < 0 {
		t.Fatal("NowNS failed")
	}
	time.Sleep(time.Millisecond)
	t1 := c.NowNS()
	if t1 <= t0 {
		t.Fatalf("cVM clock did not advance: %d -> %d", t0, t1)
	}
	if iv.Crossings.Load() < 2 {
		t.Fatalf("crossings = %d, want >= 2", iv.Crossings.Load())
	}
	// Unknown clock id propagates EINVAL.
	if _, _, errno := c.Syscall(MuslClockGettime, hostos.Args{77}); errno != hostos.EINVAL {
		t.Fatalf("bad clock: got %v, want EINVAL", errno)
	}
}

func TestTrampolineUnknownSyscall(t *testing.T) {
	iv := newIV(t)
	c, _ := iv.CreateCVM("c", 1<<20)
	if _, _, errno := c.Syscall(MuslSysNo(9999), hostos.Args{}); errno != hostos.ENOSYS {
		t.Fatalf("unknown musl syscall: got %v, want ENOSYS", errno)
	}
}

func TestTrampolinePreservesContext(t *testing.T) {
	iv := newIV(t)
	c, _ := iv.CreateCVM("c", 1<<20)
	before := c.ctx.DDC
	c.ctx.Regs[7], _ = c.DDC().SetAddr(c.Base()).SetBounds(64)
	reg := c.ctx.Regs[7]
	c.NowNS()
	if c.ctx.DDC != before {
		t.Fatalf("DDC changed across trampoline: %v -> %v", before, c.ctx.DDC)
	}
	if c.ctx.Regs[7] != reg {
		t.Fatalf("register state changed across trampoline")
	}
}

func TestFutexTranslation(t *testing.T) {
	iv := newIV(t)
	c, _ := iv.CreateCVM("c", 1<<20)
	word := c.Base() // first word of the window
	if err := c.Store(word, []byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	done := make(chan hostos.Errno, 1)
	go func() { done <- c.FutexWait(word, 0) }()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := c.FutexWake(word, 1); n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("futex waiter never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if errno := <-done; errno != hostos.OK {
		t.Fatalf("futex wait: %v", errno)
	}
}

func TestFutexAddressValidation(t *testing.T) {
	iv := newIV(t)
	a, _ := iv.CreateCVM("a", 1<<20)
	b, _ := iv.CreateCVM("b", 1<<20)
	// a tries to futex-wait on a word inside b's window: the proxy must
	// refuse (EFAULT), not touch the foreign memory.
	if errno := a.FutexWait(b.Base(), 0); errno != hostos.EFAULT {
		t.Fatalf("foreign futex: got %v, want EFAULT", errno)
	}
	// The private flag is masked, not rejected.
	_, _, errno := a.Syscall(MuslFutex,
		hostos.Args{a.Base(), LinuxFutexWake | linuxFutexPrivateFlag, 1})
	if errno != hostos.OK {
		t.Fatalf("private-flag wake: %v", errno)
	}
	// Unknown futex op.
	if _, _, errno := a.Syscall(MuslFutex, hostos.Args{a.Base(), 42, 0}); errno != hostos.EINVAL {
		t.Fatalf("bad futex op: got %v, want EINVAL", errno)
	}
}

func TestGateCrossCompartmentCall(t *testing.T) {
	iv := newIV(t)
	stack, _ := iv.CreateCVM("stack", 1<<20)
	app, _ := iv.CreateCVM("app", 1<<20)

	var gotLen uint64
	gate, err := iv.NewGate(stack, func(caller *CVM, args hostos.Args, buf cheri.Cap) (uint64, hostos.Errno) {
		// The stack compartment reads the app's buffer through the
		// passed capability.
		data := make([]byte, args[1])
		if err := iv.K.Mem.Load(buf, buf.Addr(), data); err != nil {
			return 0, hostos.EFAULT
		}
		gotLen = uint64(len(data))
		return uint64(len(data)), hostos.OK
	})
	if err != nil {
		t.Fatal(err)
	}

	// The app derives a buffer capability over its own data.
	msg := []byte("telemetry")
	if err := app.Store(app.Base()+128, msg); err != nil {
		t.Fatal(err)
	}
	buf, err := app.DeriveBuf(app.Base()+128, uint64(len(msg)))
	if err != nil {
		t.Fatal(err)
	}
	n, errno := gate.Call(app, hostos.Args{3, uint64(len(msg))}, buf)
	if errno != hostos.OK || n != uint64(len(msg)) {
		t.Fatalf("gate call: n=%d errno=%v", n, errno)
	}
	if gotLen != uint64(len(msg)) {
		t.Fatalf("gate target saw %d bytes", gotLen)
	}
	if gate.Owner() != stack {
		t.Fatal("gate owner wrong")
	}
}

func TestGateRejectsForgedCapability(t *testing.T) {
	iv := newIV(t)
	stack, _ := iv.CreateCVM("stack", 1<<20)
	app, _ := iv.CreateCVM("app", 1<<20)
	victim, _ := iv.CreateCVM("victim", 1<<20)

	gate, err := iv.NewGate(stack, func(caller *CVM, args hostos.Args, buf cheri.Cap) (uint64, hostos.Errno) {
		return 1, hostos.OK
	})
	if err != nil {
		t.Fatal(err)
	}
	// A "forged" capability over the victim's window: the gate must
	// refuse it, because it is not derivable from the app's DDC.
	forged := cheri.NewRoot(victim.Base(), 64, cheri.PermData)
	if _, errno := gate.Call(app, hostos.Args{}, forged); errno != hostos.EFAULT {
		t.Fatalf("forged capability: got %v, want EFAULT", errno)
	}
	if app.State() != StateTrapped {
		t.Fatalf("caller state = %v, want trapped", app.State())
	}
}

func TestGateNullBufferAllowed(t *testing.T) {
	iv := newIV(t)
	stack, _ := iv.CreateCVM("stack", 1<<20)
	app, _ := iv.CreateCVM("app", 1<<20)
	gate, err := iv.NewGate(stack, func(caller *CVM, args hostos.Args, buf cheri.Cap) (uint64, hostos.Errno) {
		if buf.Tag() {
			return 0, hostos.EINVAL
		}
		return args[0] + 1, hostos.OK
	})
	if err != nil {
		t.Fatal(err)
	}
	r, errno := gate.Call(app, hostos.Args{41}, cheri.NullCap)
	if errno != hostos.OK || r != 42 {
		t.Fatalf("null-buffer call: r=%d errno=%v", r, errno)
	}
}

func TestDeriveBufOutOfWindowTraps(t *testing.T) {
	iv := newIV(t)
	app, _ := iv.CreateCVM("app", 1<<20)
	if _, err := app.DeriveBuf(app.Base()+app.Size(), 16); err == nil {
		t.Fatal("deriving beyond the window must fail")
	}
	if app.State() != StateTrapped {
		t.Fatalf("state = %v, want trapped", app.State())
	}
}

func TestMmapThroughProxy(t *testing.T) {
	iv := newIV(t)
	c, _ := iv.CreateCVM("c", 1<<20)
	addr, _, errno := c.Syscall(MuslMmap, hostos.Args{hostos.PageSize * 2})
	if errno != hostos.OK || addr == 0 {
		t.Fatalf("mmap: addr=%#x errno=%v", addr, errno)
	}
	if _, _, errno := c.Syscall(MuslMunmap, hostos.Args{addr, hostos.PageSize * 2}); errno != hostos.OK {
		t.Fatalf("munmap: %v", errno)
	}
}
