package intravisor

import (
	"time"

	"repro/internal/hostos"
)

// MuslSysNo is a musl-libc (Linux aarch64) syscall number. cVMs link
// against a modified musl whose svc instructions were replaced by
// trampoline calls carrying these numbers (§III-B).
type MuslSysNo int

// The musl syscalls the compartmentalized stack issues.
const (
	// MuslClockGettime is Linux clock_gettime(2).
	MuslClockGettime MuslSysNo = 113
	// MuslFutex is Linux futex(2); the proxy translates it to umtx.
	MuslFutex MuslSysNo = 98
	// MuslNanosleep is Linux nanosleep(2).
	MuslNanosleep MuslSysNo = 101
	// MuslMmap is Linux mmap(2).
	MuslMmap MuslSysNo = 222
	// MuslMunmap is Linux munmap(2).
	MuslMunmap MuslSysNo = 215
)

// Linux clock ids as used by musl callers.
const (
	LinuxClockMonotonic    = 1
	LinuxClockMonotonicRaw = 4
)

// Linux futex ops (FUTEX_PRIVATE_FLAG masked off by the proxy).
const (
	LinuxFutexWait = 0
	LinuxFutexWake = 1

	linuxFutexPrivateFlag = 128
)

// Syscall is the musl trampoline: the only road from a cVM to the host
// kernel. It performs the full domain crossing — frame save, volatile
// register clearing, sealed-pair CInvoke into the Intravisor, proxy
// translation, host syscall, return crossing — and therefore carries the
// per-crossing cost the paper measures.
func (c *CVM) Syscall(num MuslSysNo, a hostos.Args) (r0, r1 uint64, errno hostos.Errno) {
	// Each cVM thread has its own register file (cVMs run as threads of
	// the Intravisor); the trampoline operates on this thread's context,
	// seeded from the cVM's template.
	ctx := c.ctx
	// Trampoline entry: preserve the caller's register state and make
	// sure no live capability leaks into the Intravisor's world.
	frame := ctx.Save()
	ctx.ClearVolatile()
	if err := ctx.CInvoke(c.entry); err != nil {
		// A broken entry pair is a capability fault against the cVM.
		if f, ok := faultOf(err); ok {
			c.Trap(f)
		}
		ctx.Restore(frame)
		return 0, 0, hostos.EFAULT
	}
	r0, r1, errno = c.iv.proxy(c, num, a)
	// Return crossing: scrub and restore.
	ctx.ClearVolatile()
	ctx.Restore(frame)
	c.iv.Crossings.Add(1)
	return r0, r1, errno
}

// proxy translates a musl syscall into its CheriBSD equivalent and
// performs it. Addresses supplied by the cVM are validated against the
// cVM's DDC before they reach the kernel: the Intravisor "correctly
// handles the capabilities and mediates the access to the OS" (§II-B).
func (iv *Intravisor) proxy(c *CVM, num MuslSysNo, a hostos.Args) (r0, r1 uint64, errno hostos.Errno) {
	switch num {
	case MuslClockGettime:
		var clk uint64
		switch a[0] {
		case LinuxClockMonotonic:
			clk = hostos.ClockMonotonic
		case LinuxClockMonotonicRaw:
			clk = hostos.ClockMonotonicRaw
		default:
			return 0, 0, hostos.EINVAL
		}
		return iv.K.Syscall(hostos.SysClockGettime, hostos.Args{clk})

	case MuslFutex:
		addr := a[0]
		op := a[1] &^ linuxFutexPrivateFlag
		val := a[2]
		timeout := a[3]
		// The futex word must lie inside the calling cVM's window.
		if err := c.ddc.CheckLoad(addr, 4); err != nil {
			return 0, 0, hostos.EFAULT
		}
		switch op {
		case LinuxFutexWait:
			return iv.K.Syscall(hostos.SysUmtxOp,
				hostos.Args{addr, hostos.UmtxOpWaitUint, val, timeout})
		case LinuxFutexWake:
			return iv.K.Syscall(hostos.SysUmtxOp,
				hostos.Args{addr, hostos.UmtxOpWake, val})
		default:
			return 0, 0, hostos.EINVAL
		}

	case MuslNanosleep:
		return iv.K.Syscall(hostos.SysNanosleep, hostos.Args{a[0]})

	case MuslMmap:
		// Length only; the proxy allocates inside the host arena. The
		// region is NOT added to the cVM's DDC automatically — the
		// Intravisor distributes capabilities explicitly.
		return iv.K.Syscall(hostos.SysMmap, hostos.Args{a[0]})

	case MuslMunmap:
		return iv.K.Syscall(hostos.SysMunmap, hostos.Args{a[0], a[1]})

	default:
		return 0, 0, hostos.ENOSYS
	}
}

// NowNS reads CLOCK_MONOTONIC_RAW through the trampoline, the way the
// paper's measurement probes do from inside a cVM ("we can't directly
// access the timers of the system", §IV). The returned value includes
// the crossing cost by construction.
func (c *CVM) NowNS() int64 {
	s, ns, errno := c.Syscall(MuslClockGettime, hostos.Args{LinuxClockMonotonicRaw})
	if errno != hostos.OK {
		return -1
	}
	return int64(s)*int64(time.Second) + int64(ns)
}

// FutexWait parks the caller while the word at addr equals val.
func (c *CVM) FutexWait(addr uint64, val uint32) hostos.Errno {
	_, _, errno := c.Syscall(MuslFutex, hostos.Args{addr, LinuxFutexWait, uint64(val), 0})
	return errno
}

// FutexWake wakes up to n waiters parked on addr and returns the count.
func (c *CVM) FutexWake(addr uint64, n int) int {
	woken, _, errno := c.Syscall(MuslFutex, hostos.Args{addr, LinuxFutexWake, uint64(n)})
	if errno != hostos.OK {
		return 0
	}
	return int(woken)
}
