// Package iperf is an iperf3 analog over the fstack ff_* API: the
// network benchmark application of the paper's evaluation ("we selected
// iperf3 [31] as an application ... iperf3 allows to define a
// server-client connection to measure the maximum bandwidth achievable",
// §II-C).
//
// Like the paper's port, the application is epoll-driven (the original
// select() call was replaced, §III-B) and runs in poll mode: Step() is
// called from the stack's main-loop callback (Baseline / Scenario 1) or
// from an application compartment through cross-cVM gates (Scenario 2).
//
// A Client saturates one TCP connection toward a Server and reports the
// achieved goodput in Mbit/s, measured on the receiver and the sender
// sides exactly as Table II does ("both server (receiver) and client
// (sender) modes").
package iperf
