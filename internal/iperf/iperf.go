package iperf

import (
	"fmt"
	"math"

	"repro/internal/fstack"
	"repro/internal/hostos"
)

// API is the slice of the ff_* surface iperf needs. Both
// fstack.LockedAPI (application inside the loop callback — Baseline and
// Scenario 1) and the Scenario 2 gate wrappers satisfy it, so the same
// benchmark binary runs in every compartmentalization layout, exactly
// like the paper's single iperf3 port.
type API interface {
	Socket(typ int) (int, hostos.Errno)
	Bind(fd int, ip fstack.IPv4Addr, port uint16) hostos.Errno
	Listen(fd, backlog int) hostos.Errno
	Accept(fd int) (int, fstack.IPv4Addr, uint16, hostos.Errno)
	Connect(fd int, ip fstack.IPv4Addr, port uint16) hostos.Errno
	Read(fd int, dst []byte) (int, hostos.Errno)
	Write(fd int, src []byte) (int, hostos.Errno)
	Close(fd int) hostos.Errno
	EpollCreate() int
	EpollCtl(epfd, op, fd int, events uint32) hostos.Errno
	EpollWait(epfd int, evs []fstack.Event) (int, hostos.Errno)
}

// Interval is one reporting window.
type Interval struct {
	StartNS int64
	EndNS   int64
	Bytes   uint64
}

// Mbps returns the interval's goodput in Mbit/s.
func (iv Interval) Mbps() float64 {
	d := iv.EndNS - iv.StartNS
	if d <= 0 {
		return 0
	}
	return float64(iv.Bytes) * 8 / float64(d) * 1e3
}

// Report is the final result of a client or server run.
type Report struct {
	Bytes     uint64
	StartNS   int64
	EndNS     int64
	Intervals []Interval
}

// Mbps returns the whole-run goodput in Mbit/s.
func (r Report) Mbps() float64 {
	return Interval{StartNS: r.StartNS, EndNS: r.EndNS, Bytes: r.Bytes}.Mbps()
}

// Efficiency returns goodput over the theoretical line maximum, as
// Table II's "Efficiency" column (1 Gbit/s per port).
func (r Report) Efficiency(lineMbps float64) float64 {
	return r.Mbps() / lineMbps
}

// String formats the report iperf3-style.
func (r Report) String() string {
	return fmt.Sprintf("%d bytes in %.3f s = %.0f Mbit/s",
		r.Bytes, float64(r.EndNS-r.StartNS)/1e9, r.Mbps())
}

// writeChunk is the application write size (iperf3's default 128 KiB).
const writeChunk = 128 * 1024

// readChunk is the server's read size.
const readChunk = 64 * 1024

// state machines

type clientState int

const (
	clientInit clientState = iota
	clientConnecting
	clientRunning
	clientDone
)

// Client is the sender ("client (sender) mode" of Table II).
type Client struct {
	ServerIP   fstack.IPv4Addr
	ServerPort uint16
	DurationNS int64
	IntervalNS int64 // 0 = no interval reports
	// LocalPort, when nonzero, binds the connection's source port
	// (iperf3's --cport). Load generators against RSS-sharded receivers
	// engineer source ports to cover every queue.
	LocalPort uint16

	state     clientState
	fd, epfd  int
	buf       []byte
	report    Report
	ivStartNS int64
	ivBytes   uint64
	failure   hostos.Errno
	// wantStep marks a state transition whose follow-up work happens
	// on the NEXT Step call (the first write after connecting): the
	// event-driven driver must visit that iteration rather than wait
	// for a network event. Cleared by the next running Step, after
	// which the client is provably blocked on stack events (its write
	// loop always runs the socket buffer to EAGAIN or a short write).
	wantStep bool
}

// NewClient prepares a sender toward ip:port running for duration ns.
func NewClient(ip fstack.IPv4Addr, port uint16, durationNS int64) *Client {
	buf := make([]byte, writeChunk)
	for i := range buf {
		buf[i] = byte(i) // incompressible-ish pattern; content is irrelevant
	}
	return &Client{ServerIP: ip, ServerPort: port, DurationNS: durationNS, buf: buf}
}

// Done reports completion.
func (c *Client) Done() bool { return c.state == clientDone }

// NextDeadline reports the next virtual instant at which Step would do
// something on its own clock rather than in reaction to stack events:
// the transfer-duration end and the next interval-report boundary. All
// other client activity (connecting, refilling the socket buffer) is
// unblocked by stack events, which the testbed's own deadlines cover.
// math.MaxInt64 = no timed work pending.
func (c *Client) NextDeadline(now int64) int64 {
	if c.wantStep {
		return now
	}
	if c.state != clientRunning {
		return math.MaxInt64
	}
	d := c.report.StartNS + c.DurationNS
	if c.IntervalNS > 0 {
		if iv := c.ivStartNS + c.IntervalNS; iv < d {
			d = iv
		}
	}
	return d
}

// Err returns the sticky failure, if any.
func (c *Client) Err() hostos.Errno { return c.failure }

// Report returns the result (valid once Done).
func (c *Client) Report() Report { return c.report }

// fail terminates the run.
func (c *Client) fail(errno hostos.Errno) {
	c.failure = errno
	c.state = clientDone
}

// Step advances the client; call it once per loop iteration (or gate
// slot) with the current time. It never blocks.
func (c *Client) Step(api API, now int64) {
	switch c.state {
	case clientInit:
		fd, errno := api.Socket(fstack.SockStream)
		if errno != hostos.OK {
			c.fail(errno)
			return
		}
		c.fd = fd
		c.epfd = api.EpollCreate()
		if errno := api.EpollCtl(c.epfd, fstack.EpollCtlAdd, c.fd, fstack.EPOLLOUT); errno != hostos.OK {
			c.fail(errno)
			return
		}
		if c.LocalPort != 0 {
			if errno := api.Bind(c.fd, fstack.IPv4Addr{}, c.LocalPort); errno != hostos.OK {
				c.fail(errno)
				return
			}
		}
		if errno := api.Connect(c.fd, c.ServerIP, c.ServerPort); errno != hostos.EINPROGRESS && errno != hostos.OK {
			c.fail(errno)
			return
		}
		c.state = clientConnecting

	case clientConnecting:
		var evs [4]fstack.Event
		n, errno := api.EpollWait(c.epfd, evs[:])
		if errno != hostos.OK {
			c.fail(errno)
			return
		}
		for i := 0; i < n; i++ {
			if evs[i].FD != c.fd {
				continue
			}
			if evs[i].Events&(fstack.EPOLLERR|fstack.EPOLLHUP) != 0 {
				c.fail(hostos.ECONNREFUSED)
				return
			}
			if evs[i].Events&fstack.EPOLLOUT != 0 {
				c.state = clientRunning
				c.report.StartNS = now
				c.ivStartNS = now
				c.wantStep = true // first write happens next Step
			}
		}

	case clientRunning:
		c.wantStep = false
		if now-c.report.StartNS >= c.DurationNS {
			c.finish(api, now)
			return
		}
		for {
			n, errno := api.Write(c.fd, c.buf)
			if errno == hostos.EAGAIN {
				break
			}
			if errno != hostos.OK {
				c.fail(errno)
				return
			}
			c.report.Bytes += uint64(n)
			c.ivBytes += uint64(n)
			if n < len(c.buf) {
				break
			}
		}
		if c.IntervalNS > 0 && now-c.ivStartNS >= c.IntervalNS {
			c.report.Intervals = append(c.report.Intervals, Interval{
				StartNS: c.ivStartNS, EndNS: now, Bytes: c.ivBytes,
			})
			c.ivStartNS = now
			c.ivBytes = 0
		}
	}
}

// finish closes the connection and seals the report.
func (c *Client) finish(api API, now int64) {
	if c.IntervalNS > 0 && c.ivBytes > 0 {
		c.report.Intervals = append(c.report.Intervals, Interval{
			StartNS: c.ivStartNS, EndNS: now, Bytes: c.ivBytes,
		})
	}
	c.report.EndNS = now
	api.Close(c.fd)
	c.state = clientDone
}

type serverState int

const (
	serverInit serverState = iota
	serverAccepting
	serverRunning
	serverDone
)

// Server is the receiver ("server (receiver) mode" of Table II). It
// serves exactly one connection and finishes at EOF.
type Server struct {
	ListenIP   fstack.IPv4Addr
	ListenPort uint16

	state    serverState
	lfd      int
	cfd      int
	epfd     int
	buf      []byte
	report   Report
	failure  hostos.Errno
	haveData bool
	// wantStep mirrors Client.wantStep: the first read after accepting
	// happens on the next Step call and must not be leapt over.
	wantStep bool
}

// NewServer prepares a receiver on ip:port (zero IP = all interfaces).
func NewServer(ip fstack.IPv4Addr, port uint16) *Server {
	return &Server{ListenIP: ip, ListenPort: port, buf: make([]byte, readChunk)}
}

// Done reports completion.
func (s *Server) Done() bool { return s.state == serverDone }

// NextDeadline implements the same hook as Client's: a server is
// event-driven (it reacts to accepted connections and received data),
// so apart from the post-accept catch-up step it never holds timed
// work.
func (s *Server) NextDeadline(now int64) int64 {
	if s.wantStep {
		return now
	}
	return math.MaxInt64
}

// Err returns the sticky failure, if any.
func (s *Server) Err() hostos.Errno { return s.failure }

// Report returns the result (valid once Done).
func (s *Server) Report() Report { return s.report }

func (s *Server) fail(errno hostos.Errno) {
	s.failure = errno
	s.state = serverDone
}

// Step advances the server; call once per loop iteration.
func (s *Server) Step(api API, now int64) {
	switch s.state {
	case serverInit:
		fd, errno := api.Socket(fstack.SockStream)
		if errno != hostos.OK {
			s.fail(errno)
			return
		}
		s.lfd = fd
		if errno := api.Bind(s.lfd, s.ListenIP, s.ListenPort); errno != hostos.OK {
			s.fail(errno)
			return
		}
		if errno := api.Listen(s.lfd, 8); errno != hostos.OK {
			s.fail(errno)
			return
		}
		s.epfd = api.EpollCreate()
		if errno := api.EpollCtl(s.epfd, fstack.EpollCtlAdd, s.lfd, fstack.EPOLLIN); errno != hostos.OK {
			s.fail(errno)
			return
		}
		s.state = serverAccepting

	case serverAccepting:
		var evs [4]fstack.Event
		n, errno := api.EpollWait(s.epfd, evs[:])
		if errno != hostos.OK {
			s.fail(errno)
			return
		}
		for i := 0; i < n; i++ {
			if evs[i].FD != s.lfd || evs[i].Events&fstack.EPOLLIN == 0 {
				continue
			}
			cfd, _, _, errno := api.Accept(s.lfd)
			if errno == hostos.EAGAIN {
				continue
			}
			if errno != hostos.OK {
				s.fail(errno)
				return
			}
			s.cfd = cfd
			if errno := api.EpollCtl(s.epfd, fstack.EpollCtlAdd, s.cfd, fstack.EPOLLIN); errno != hostos.OK {
				s.fail(errno)
				return
			}
			s.state = serverRunning
			s.wantStep = true // first read happens next Step
		}

	case serverRunning:
		s.wantStep = false
		for {
			n, errno := api.Read(s.cfd, s.buf)
			if errno == hostos.EAGAIN {
				break
			}
			if errno != hostos.OK {
				s.fail(errno)
				return
			}
			if n == 0 { // EOF: sender is done
				s.report.EndNS = now
				api.Close(s.cfd)
				api.Close(s.lfd)
				s.state = serverDone
				return
			}
			if !s.haveData {
				s.haveData = true
				s.report.StartNS = now
			}
			s.report.Bytes += uint64(n)
			s.report.EndNS = now
		}
	}
}
