package iperf_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/iperf"
	"repro/internal/sim"
)

func TestIntervalMath(t *testing.T) {
	iv := iperf.Interval{StartNS: 0, EndNS: 1e9, Bytes: 125_000_000}
	if got := iv.Mbps(); got < 999 || got > 1001 {
		t.Fatalf("1 Gbit/s interval computed as %.1f", got)
	}
	if (iperf.Interval{}).Mbps() != 0 {
		t.Fatal("degenerate interval")
	}
}

func TestReportMath(t *testing.T) {
	r := iperf.Report{Bytes: 125_000_000, StartNS: 0, EndNS: 2e9}
	if got := r.Mbps(); got < 499 || got > 501 {
		t.Fatalf("rate %.1f", got)
	}
	if e := r.Efficiency(1000); e < 0.499 || e > 0.501 {
		t.Fatalf("efficiency %.3f", e)
	}
	if r.String() == "" {
		t.Fatal("empty string")
	}
}

// TestClientServerOverStack runs a full iperf pair over the simulated
// network in virtual time with interval reporting.
func TestClientServerOverStack(t *testing.T) {
	clk := sim.NewVClock()
	s, err := core.NewBaselineSingle(clk)
	if err != nil {
		t.Fatal(err)
	}
	srv := iperf.NewServer(fstack.IPv4Addr{}, 5201)
	// Server runs on the peer, client on the local box.
	papi := s.Peers[0].Env.Loop.Locked()
	s.Peers[0].Env.Loop.OnLoop = func(now int64) bool {
		srv.Step(papi, now)
		return true
	}
	cli := iperf.NewClient(fstack.IP4(10, 0, 0, 2), 5201, 100e6 /* 100 ms */)
	cli.IntervalNS = 20e6 // 20 ms windows
	lapi := s.Envs[0].Loop.Locked()
	s.Envs[0].Loop.OnLoop = func(now int64) bool {
		cli.Step(lapi, now)
		return true
	}
	loops := s.Loops()
	for i := 0; i < 200_000 && !(cli.Done() && srv.Done()); i++ {
		for _, l := range loops {
			l.RunOnce()
		}
		clk.Advance(5000)
	}
	if !cli.Done() || !srv.Done() {
		t.Fatal("run did not converge")
	}
	if cli.Err() != hostos.OK || srv.Err() != hostos.OK {
		t.Fatalf("errors: cli=%v srv=%v", cli.Err(), srv.Err())
	}
	cr, sr := cli.Report(), srv.Report()
	if sr.Bytes == 0 || cr.Bytes < sr.Bytes {
		t.Fatalf("byte accounting: client %d server %d", cr.Bytes, sr.Bytes)
	}
	if sr.Mbps() < 850 || sr.Mbps() > 950 {
		t.Fatalf("server rate %.0f Mbit/s, want near line rate", sr.Mbps())
	}
	if len(cr.Intervals) < 3 {
		t.Fatalf("interval reports: %d", len(cr.Intervals))
	}
	var ivBytes uint64
	for _, iv := range cr.Intervals {
		ivBytes += iv.Bytes
		if iv.EndNS <= iv.StartNS {
			t.Fatal("inverted interval")
		}
	}
	if ivBytes != cr.Bytes {
		t.Fatalf("interval bytes %d != total %d", ivBytes, cr.Bytes)
	}
}

// TestClientConnectionRefused checks failure reporting when no server
// listens.
func TestClientConnectionRefused(t *testing.T) {
	clk := sim.NewVClock()
	s, err := core.NewBaselineSingle(clk)
	if err != nil {
		t.Fatal(err)
	}
	cli := iperf.NewClient(fstack.IP4(10, 0, 0, 2), 9999, 50e6)
	lapi := s.Envs[0].Loop.Locked()
	s.Envs[0].Loop.OnLoop = func(now int64) bool {
		cli.Step(lapi, now)
		return true
	}
	loops := s.Loops()
	for i := 0; i < 100_000 && !cli.Done(); i++ {
		for _, l := range loops {
			l.RunOnce()
		}
		clk.Advance(5000)
	}
	if !cli.Done() {
		t.Fatal("client never finished")
	}
	if cli.Err() == hostos.OK {
		t.Fatal("client should have failed against a closed port")
	}
}
