// Per-direction (asymmetric) link tests. They live in an external test
// package so the TCP-level assertions can build a full topology through
// internal/testbed, which itself imports netem.
package netem_test

import (
	"testing"

	"repro/internal/fstack"
	"repro/internal/iperf"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// collector is a frame sink endpoint recording delivery instants.
type collector struct {
	frames int
	lastAt int64
}

func (c *collector) DeliverFrame(data []byte, readyAt int64) {
	c.frames++
	c.lastAt = readyAt
}

// TestAsymmetricLossIsDirectional: loss configured on the a-to-b
// direction only must destroy a-to-b frames at the configured rate and
// deliver every b-to-a frame untouched.
func TestAsymmetricLossIsDirectional(t *testing.T) {
	clk := sim.NewVClock()
	a, b := &collector{}, &collector{}
	l := netem.NewAsym(clk, a, b,
		netem.Config{Seed: 7, LossRate: 0.3},
		netem.Config{}) // reverse pristine
	const n = 4000
	payload := make([]byte, 100)
	for i := 0; i < n; i++ {
		l.Send(0, payload, clk.Now())
		l.Send(1, payload, clk.Now())
		clk.Advance(10_000)
	}
	fwd, rev := l.Stats(0), l.Stats(1)
	if rev.Lost() != 0 || b.frames == n {
		t.Fatalf("asymmetry broken: fwd lost %d (b got %d), rev lost %d (a got %d)",
			fwd.Lost(), b.frames, rev.Lost(), a.frames)
	}
	if a.frames != n {
		t.Fatalf("pristine reverse dropped frames: %d of %d delivered", a.frames, n)
	}
	rate := float64(fwd.Lost()) / n
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("forward loss rate %.3f, want ≈0.30", rate)
	}
}

// TestAsymmetricDelayIsDirectional: a delay configured on the reverse
// direction only must postpone reverse deliveries and leave forward
// timing untouched.
func TestAsymmetricDelayIsDirectional(t *testing.T) {
	clk := sim.NewVClock()
	a, b := &collector{}, &collector{}
	const delay = int64(3e6)
	l := netem.NewAsym(clk, a, b,
		netem.Config{},
		netem.Config{DelayNS: delay})
	clk.Advance(1000)
	now := clk.Now()
	l.Send(0, make([]byte, 100), now)
	l.Send(1, make([]byte, 100), now)
	if b.frames != 1 || b.lastAt != now {
		t.Fatalf("pristine forward frame not delivered instantly (got %d at %d, want at %d)", b.frames, b.lastAt, now)
	}
	if a.frames != 0 {
		t.Fatal("delayed reverse frame delivered early")
	}
	clk.Advance(delay)
	l.Pump(clk.Now())
	if a.frames != 1 || a.lastAt != now+delay {
		t.Fatalf("reverse frame at %d (delivered=%d), want %d", a.lastAt, a.frames, now+delay)
	}
}

// runForwardTransfer builds a minimal topology through the testbed spec
// layer — one process, one peer, the given per-direction link — and
// drives a single 200 ms iperf transfer toward the peer, returning the
// receiver-side goodput in Mbit/s.
func runForwardTransfer(t *testing.T, link *testbed.LinkSpec) float64 {
	t.Helper()
	clk := sim.NewVClock()
	bed, err := testbed.Build(testbed.Spec{
		Clk:     clk,
		Machine: testbed.MachineSpec{Name: "morello", Ports: 1},
		Compartments: []testbed.CompartmentSpec{
			{Name: "proc", Ifs: []testbed.IfSpec{{Port: 0}}},
		},
		Peers: []testbed.PeerSpec{{Port: 0, Link: link}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// WAN RTTs need a WAN RTO floor, or queue-induced RTT bumps fire
	// spurious timeouts.
	bed.Envs[0].Stk.SetRTOMin(200e6)
	bed.Peers[0].Env.Stk.SetRTOMin(200e6)

	const port = 5601
	cli := iperf.NewClient(testbed.PeerIP(0), port, 200e6)
	api := bed.Envs[0].Loop.Locked()
	bed.Envs[0].Loop.OnLoop = func(now int64) bool { cli.Step(api, now); return true }
	srv := iperf.NewServer(fstack.IPv4Addr{}, port)
	papi := bed.Peers[0].Env.Loop.Locked()
	bed.Peers[0].Env.Loop.OnLoop = func(now int64) bool { srv.Step(papi, now); return true }

	loops := bed.Loops()
	for i := 0; i < 2_000_000 && !(cli.Done() && srv.Done()); i++ {
		for _, l := range loops {
			l.RunOnce()
		}
		clk.Advance(5000)
	}
	if !cli.Done() || !srv.Done() {
		t.Fatal("transfer did not finish")
	}
	if cli.Err() != 0 || srv.Err() != 0 {
		t.Fatalf("transfer failed: cli %v, srv %v", cli.Err(), srv.Err())
	}
	return srv.Report().Mbps()
}

// TestReverseDelayThrottlesForwardGoodput is the impaired-ACK-path
// assertion: inflating only the reverse direction's delay stretches the
// RTT the forward window must cover, so forward goodput drops, even
// though the data direction's config is untouched.
func TestReverseDelayThrottlesForwardGoodput(t *testing.T) {
	fwd := netem.Config{RateBps: 100e6, DelayNS: 5e6}
	fast := runForwardTransfer(t, &testbed.LinkSpec{
		ToPeer:  fwd,
		ToLocal: netem.Config{DelayNS: 5e6},
	})
	slow := runForwardTransfer(t, &testbed.LinkSpec{
		ToPeer:  fwd,
		ToLocal: netem.Config{DelayNS: 45e6},
	})
	t.Logf("10 ms RTT: %.1f Mbit/s; 50 ms RTT via ACK path alone: %.1f Mbit/s", fast, slow)
	// 64 KiB windows cap at ~52 Mbit/s over 10 ms and ~10.5 over 50 ms.
	if slow > fast/3 {
		t.Fatalf("reverse-path delay did not throttle: %.1f vs %.1f Mbit/s", slow, fast)
	}
	if slow < 5 || fast < 30 {
		t.Fatalf("goodput implausibly low: %.1f / %.1f Mbit/s", slow, fast)
	}
}

// TestReverseRateThrottlesForwardGoodput squeezes only the ACK
// channel's rate: a 200 kbit/s reverse bottleneck with a shallow queue
// delays and thins the ACK clock until the forward window starves,
// far below the clean-reverse run.
func TestReverseRateThrottlesForwardGoodput(t *testing.T) {
	fwd := netem.Config{RateBps: 100e6, DelayNS: 5e6}
	clean := runForwardTransfer(t, &testbed.LinkSpec{
		ToPeer:  fwd,
		ToLocal: netem.Config{DelayNS: 5e6},
	})
	squeezed := runForwardTransfer(t, &testbed.LinkSpec{
		ToPeer:  fwd,
		ToLocal: netem.Config{DelayNS: 5e6, RateBps: 200e3, QueueBytes: 8 << 10},
	})
	t.Logf("clean ACK path: %.1f Mbit/s; 200 kbit/s ACK path: %.1f Mbit/s", clean, squeezed)
	if squeezed > clean/2 {
		t.Fatalf("reverse-path rate limit did not throttle: %.1f vs %.1f Mbit/s", squeezed, clean)
	}
}
