package netem

import (
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestCarrierFlapDropsWhileDown pins the primitive's core semantics:
// frames offered during a down window are dropped at enqueue and
// counted distinctly from the loss models, frames outside it pass, and
// the accessor tracks the schedule.
func TestCarrierFlapDropsWhileDown(t *testing.T) {
	clk := sim.NewVClock()
	var a, b recorder
	l := New(clk, &a, &b, Config{})
	// Down [100µs, 300µs), up again after.
	l.SetCarrierSchedule(0, []int64{100_000, 300_000})

	l.Send(0, []byte("before"), 50_000)
	l.Send(0, []byte("during"), 200_000)
	l.Send(0, []byte("after"), 400_000)

	if len(b.frames) != 2 {
		t.Fatalf("deliveries: %d, want 2 (during-window frame dropped)", len(b.frames))
	}
	st := l.Stats(0)
	if st.Sent != 3 || st.Delivered != 2 || st.DroppedCarrier != 1 || st.Lost() != 1 {
		t.Fatalf("stats: %v", st)
	}
	if st.LostRandom != 0 || st.LostBurst != 0 || st.DroppedQueue != 0 {
		t.Fatalf("carrier drop leaked into loss-model counters: %v", st)
	}
	if !l.Carrier(0, 400_000) {
		t.Fatalf("carrier should be back up at 400µs")
	}
	// The untouched reverse direction never flaps.
	l.Send(1, []byte("reverse"), 200_000)
	if len(a.frames) != 1 {
		t.Fatalf("reverse direction affected by dir-0 schedule")
	}
}

// TestCarrierFlapOnImpairedLink checks the flap applies before the
// loss models and the bottleneck on a non-pristine config, and that
// held frames already past the enqueue still deliver ("down =
// enqueue→drop", not a delivery gate).
func TestCarrierFlapOnImpairedLink(t *testing.T) {
	clk := sim.NewVClock()
	var b recorder
	l := New(clk, &recorder{}, &b, Config{DelayNS: 500_000})
	l.SetCarrierSchedule(0, []int64{100_000})

	// Enqueued while up at t=0; due at t=500µs — inside the down
	// window — and must still deliver.
	l.Send(0, []byte("inflight"), 0)
	// Offered while down: dropped, never enters the delay line.
	l.Send(0, []byte("dead"), 200_000)

	clk.Advance(600_000)
	l.Pump(clk.Now())
	if len(b.frames) != 1 || b.frames[0].at != 500_000 {
		t.Fatalf("in-flight frame lost or retimed: %+v", b.frames)
	}
	if st := l.Stats(0); st.DroppedCarrier != 1 || st.Delivered != 1 {
		t.Fatalf("stats: %v", st)
	}
}

// TestCarrierNextDeadlineAndTrace pins the leaping-driver contract
// (every pending toggle instant is a deadline) and the EvLinkCarrier /
// DropCarrier trace records.
func TestCarrierNextDeadlineAndTrace(t *testing.T) {
	clk := sim.NewVClock()
	var b recorder
	l := New(clk, &recorder{}, &b, Config{})
	tr := obs.NewTrace(64)
	l.SetTrace(tr, 40)
	l.SetCarrierSchedule(0, []int64{1_000_000, 2_000_000})

	if d := l.NextDeadline(0); d != 1_000_000 {
		t.Fatalf("NextDeadline before first toggle: %d", d)
	}
	l.Pump(1_500_000) // consume the down edge
	if d := l.NextDeadline(0); d != 2_000_000 {
		t.Fatalf("NextDeadline between toggles: %d", d)
	}
	l.Send(0, []byte("x"), 1_600_000) // dropped: carrier down
	l.Pump(2_500_000)                 // consume the up edge
	if d := l.NextDeadline(0); d != math.MaxInt64 {
		t.Fatalf("NextDeadline after schedule exhausted: %d", d)
	}

	var edges, drops int
	for _, ev := range tr.Snapshot() {
		switch ev.Type {
		case obs.EvLinkCarrier:
			if ev.Src != 40 {
				t.Fatalf("carrier event src %d, want 40", ev.Src)
			}
			wantUp := int64(0)
			if edges == 1 {
				wantUp = 1
			}
			wantTS := []int64{1_000_000, 2_000_000}[edges]
			if ev.A != wantUp || ev.TS != wantTS {
				t.Fatalf("edge %d: up=%d ts=%d", edges, ev.A, ev.TS)
			}
			edges++
		case obs.EvNetemDrop:
			if ev.B != obs.DropCarrier {
				t.Fatalf("drop kind %d, want DropCarrier", ev.B)
			}
			drops++
		}
	}
	if edges != 2 || drops != 1 {
		t.Fatalf("edges=%d drops=%d, want 2 and 1", edges, drops)
	}
}

// TestCarrierSchedulelessLinkUnchanged guards the zero-cost path: a
// link without a schedule reports carrier up forever and its String()
// carries no carrier term.
func TestCarrierSchedulelessLinkUnchanged(t *testing.T) {
	clk := sim.NewVClock()
	var b recorder
	l := New(clk, &recorder{}, &b, Config{})
	if !l.Carrier(0, 1e9) || !l.Carrier(1, 1e9) {
		t.Fatalf("scheduleless link must report carrier up")
	}
	l.Send(0, []byte("x"), 0)
	if got := l.Stats(0).String(); got != "sent 1, delivered 1, lost 0 (iid 0, burst 0, queue 0), reordered 0" {
		t.Fatalf("String() drifted: %q", got)
	}
}
