// Package netem is the simulated testbed's link-impairment pipeline —
// the tc-netem/dummynet analog for the point-to-point cables of the
// nic package. A Link sits between two ports where a plain nic.Wire
// would, and applies deterministic, seeded impairments per direction:
//
//   - random loss: i.i.d. per-frame loss and/or a two-state
//     Gilbert–Elliott burst-loss process;
//   - a rate limiter with a bounded queue (tail-drop or a simple RED),
//     modelling the narrow WAN hop between two fast access links;
//   - fixed one-way delay plus uniform jitter;
//   - explicit reordering (a fraction of frames held back extra time).
//
// Everything is driven by the shared virtual clock and per-direction
// seeded PRNGs, so a run is exactly reproducible. A Link built with a
// zero Config is bit-transparent: frames pass through unchanged, with
// unchanged timing, which is what keeps Scenarios 1–4 byte-identical
// while Scenario 5 (core/scenario5.go) exercises lossy high-BDP paths.
//
// See DESIGN.md §5 for the model and its calibration against the TCP
// recovery machinery it exists to stress.
package netem
