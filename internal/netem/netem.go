package netem

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/hostos"
	"repro/internal/nic"
	"repro/internal/obs"
)

// wireOverheadBytes mirrors the per-frame on-the-wire overhead the nic
// serializers charge (preamble+SFD, FCS, inter-frame gap), so a Link's
// rate limiter and a port's line rate agree about what "100 Mbit/s"
// means.
const wireOverheadBytes = 24

// Config describes one link's impairments. The zero value is a
// pristine link: bit-transparent pass-through with unchanged timing.
// All impairments apply independently per direction, each fed by its
// own PRNG stream derived from Seed, so runs are reproducible and the
// two directions never share randomness.
type Config struct {
	// Seed drives every random impairment. Two links with equal seeds
	// and configs impair identically.
	Seed int64

	// LossRate is the i.i.d. per-frame loss probability [0, 1).
	LossRate float64

	// Gilbert–Elliott burst loss: a two-state (good/bad) Markov chain,
	// GEBadProb > 0 enables it. The chain is time-homogeneous: it
	// steps once per wire-slot (one full-size frame time at RateBps)
	// of elapsed virtual time, NOT once per frame, so a sparse flow —
	// a lone retransmission, a trickle of ACKs — sees the same outage
	// durations as a saturating one instead of being starved by a
	// per-packet chain that only advances when it has traffic to eat.
	// The stationary loss rate is GEBadProb/(GEBadProb+GERecoverProb)
	// * GELossBad (plus the good-state term), with mean outage length
	// 1/GERecoverProb slots.
	GEBadProb     float64 // P(good -> bad) per slot
	GERecoverProb float64 // P(bad -> good) per slot
	GELossGood    float64 // loss probability in the good state (usually 0)
	GELossBad     float64 // loss probability in the bad state (0 means 1)
	// GESlotNS overrides the chain's time slot; 0 derives it from
	// RateBps (one 1538-byte wire frame), or 100 µs on an unshaped
	// link.
	GESlotNS int64

	// RateBps, when positive, serializes frames through a bottleneck of
	// this many bits per second — the narrow WAN hop. QueueBytes bounds
	// the bottleneck's queue (0 = a generous 256 KiB); arrivals beyond
	// it are tail-dropped, or RED-dropped when RED is set (drop
	// probability ramps linearly from 0 at half occupancy to 1 at full).
	RateBps    float64
	QueueBytes int
	RED        bool

	// DelayNS is the fixed one-way propagation delay added to every
	// frame; JitterNS adds a uniform [0, JitterNS] extra per frame.
	// Jitter large enough to cross frame spacings reorders deliveries,
	// exactly as it does on real paths.
	DelayNS  int64
	JitterNS int64

	// ReorderProb holds back that fraction of frames by ReorderExtraNS
	// (default one DelayNS when zero), the classic netem reorder knob.
	ReorderProb    float64
	ReorderExtraNS int64
}

// GEFromStationary derives Gilbert–Elliott chain parameters from the
// two numbers experimenters actually think in: the stationary loss
// rate and the mean fade (outage) length in wire-slots. The bad state
// loses everything (GELossBad defaults to 1), so stationary loss =
// bad-state occupancy = GEBadProb/(GEBadProb+GERecoverProb).
func GEFromStationary(loss, meanFadeSlots float64) (badProb, recoverProb float64) {
	if loss <= 0 || loss >= 1 || meanFadeSlots <= 0 {
		return 0, 0
	}
	recoverProb = 1 / meanFadeSlots
	badProb = recoverProb * loss / (1 - loss)
	return badProb, recoverProb
}

// pristine reports whether the config impairs nothing.
func (c Config) pristine() bool {
	return c.LossRate == 0 && c.GEBadProb == 0 && c.RateBps == 0 &&
		c.DelayNS == 0 && c.JitterNS == 0 && c.ReorderProb == 0
}

// defaultQueueBytes bounds the bottleneck queue when the caller gave
// none: a generous WAN-router buffer.
const defaultQueueBytes = 256 * 1024

// DirStats counts one direction's fate per frame.
type DirStats struct {
	Sent           uint64 // frames offered to the link
	Delivered      uint64 // frames handed to the far port
	LostRandom     uint64 // i.i.d. loss
	LostBurst      uint64 // Gilbert–Elliott loss
	DroppedQueue   uint64 // bottleneck queue overflow (tail or RED)
	DroppedCarrier uint64 // frames offered while the carrier was down
	Reordered      uint64 // frames held back by the reorder knob
}

// Lost sums every frame the link destroyed.
func (s DirStats) Lost() uint64 {
	return s.LostRandom + s.LostBurst + s.DroppedQueue + s.DroppedCarrier
}

// String summarizes the direction. The carrier term only appears when
// flaps actually dropped frames, so flap-free reports are unchanged.
func (s DirStats) String() string {
	out := fmt.Sprintf("sent %d, delivered %d, lost %d (iid %d, burst %d, queue %d), reordered %d",
		s.Sent, s.Delivered, s.Lost(), s.LostRandom, s.LostBurst, s.DroppedQueue, s.Reordered)
	if s.DroppedCarrier > 0 {
		out += fmt.Sprintf(", carrier-dropped %d", s.DroppedCarrier)
	}
	return out
}

// Endpoint receives the frames a Link delivers. *nic.Port satisfies it.
type Endpoint interface {
	DeliverFrame(data []byte, readyAt int64)
}

// heldFrame is one frame in the link's delay line.
type heldFrame struct {
	data      []byte
	deliverAt int64
	seq       uint64 // tie-break: equal instants deliver in send order
}

// frameHeap orders held frames by (deliverAt, seq).
type frameHeap []heldFrame

func (h frameHeap) Len() int { return len(h) }
func (h frameHeap) Less(i, j int) bool {
	if h[i].deliverAt != h[j].deliverAt {
		return h[i].deliverAt < h[j].deliverAt
	}
	return h[i].seq < h[j].seq
}
func (h frameHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *frameHeap) Push(x any)   { *h = append(*h, x.(heldFrame)) }
func (h *frameHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	*h = old[:n-1]
	return f
}

// dirState is one direction's impairment pipeline.
type dirState struct {
	mu       sync.Mutex
	rng      *rand.Rand
	geBad    bool
	geAt     int64 // virtual time the GE chain has been stepped to
	nextFree int64 // bottleneck serializer: time its queue drains
	held     frameHeap
	seq      uint64
	stats    DirStats
	// Carrier flap schedule: carr holds the remaining toggle instants
	// (sorted ascending; each consumes one flip of carrUp). The carrier
	// starts up; nil carr means no schedule and zero cost — the nil
	// check is read without the lock, mirroring the tr contract, so
	// SetCarrierSchedule must be called before traffic.
	carr   []int64
	carrUp bool
	// due is the reusable scratch takeDueLocked fills — allocating a
	// fresh slice per release was one of the datapath's per-frame
	// allocation sites. It is LOANED: takeDueLocked hands it out and
	// nils the field, putDue returns it after delivery, so even
	// concurrent steppers of the two endpoints can never iterate the
	// same backing array (the loser of the race just allocates).
	due []heldFrame
}

// Link is a composable impairment pipeline between two endpoints. It
// satisfies nic.Conduit, so it slots in wherever a nic.Wire would. The
// two directions carry independent configurations (NewAsym), so slow
// ACK channels and asymmetric loss are first-class; the symmetric
// constructors simply apply one config to both.
type Link struct {
	clk  hostos.Clock
	cfg  [2]Config // per direction: 0 = a-to-b, 1 = b-to-a
	ends [2]Endpoint
	dirs [2]dirState

	// tr is the flight recorder (nil = off); direction d's events carry
	// src trSrc+d. Set before traffic via SetTrace, read without a lock
	// on the datapath — the nil check is the whole disabled-cost.
	tr    *obs.Trace
	trSrc uint16

	// arena is where dropped frames return (the sender's frame arena,
	// taken from the port at Connect time); nil falls back to the
	// package default, for links built over bare Endpoints.
	arena *nic.FrameArena
}

// freeFrame returns a dropped frame's buffer to the link's arena.
func (l *Link) freeFrame(data []byte) {
	if l.arena != nil {
		l.arena.Free(data)
		return
	}
	nic.FreeFrame(data)
}

// SetTrace installs the link's flight recorder (nil disables). Events
// from direction d (0 = a-to-b) are tagged src+d. Install before
// driving traffic.
func (l *Link) SetTrace(tr *obs.Trace, src uint16) {
	l.tr, l.trSrc = tr, src
}

// Depth reports one direction's occupancy for metrics gauges: frames
// held in the delay line and the bottleneck backlog in ns (how far
// ahead of now the serializer is booked).
func (l *Link) Depth(dir int, now int64) (frames int, backlogNS int64) {
	d := &l.dirs[dir]
	d.mu.Lock()
	defer d.mu.Unlock()
	frames = len(d.held)
	if d.nextFree > now {
		backlogNS = d.nextFree - now
	}
	return frames, backlogNS
}

// fillDefaults resolves a direction config's derived knobs.
func fillDefaults(cfg Config) Config {
	if cfg.GEBadProb > 0 && cfg.GELossBad == 0 {
		cfg.GELossBad = 1
	}
	if cfg.GEBadProb > 0 && cfg.GESlotNS == 0 {
		if cfg.RateBps > 0 {
			cfg.GESlotNS = int64((1514 + wireOverheadBytes) * 8e9 / cfg.RateBps)
		} else {
			cfg.GESlotNS = 100_000
		}
	}
	if cfg.RateBps > 0 && cfg.QueueBytes <= 0 {
		cfg.QueueBytes = defaultQueueBytes
	}
	if cfg.ReorderProb > 0 && cfg.ReorderExtraNS == 0 {
		cfg.ReorderExtraNS = cfg.DelayNS
	}
	return cfg
}

// New builds a symmetric link between two endpoints without attaching
// anything; Connect is the usual entry point for nic ports. Direction d
// carries frames from ends[d] to ends[1-d].
func New(clk hostos.Clock, a, b Endpoint, cfg Config) *Link {
	return NewAsym(clk, a, b, cfg, cfg)
}

// NewAsym builds a link whose directions impair independently: ab
// shapes frames from a to b, ba shapes frames from b to a. Each
// direction draws from its own seed-derived PRNG stream (as the
// symmetric link always has), so an impaired reverse path never
// perturbs the forward path's randomness.
func NewAsym(clk hostos.Clock, a, b Endpoint, ab, ba Config) *Link {
	l := &Link{clk: clk, cfg: [2]Config{fillDefaults(ab), fillDefaults(ba)}, ends: [2]Endpoint{a, b}}
	for d := range l.dirs {
		// Distinct, seed-derived streams per direction.
		l.dirs[d].rng = rand.New(rand.NewSource(l.cfg[d].Seed ^ (int64(d+1) * 0x6C62272E07BB0141)))
	}
	return l
}

// Connect interposes a symmetric link between two NIC ports (where
// nic.Connect would put a plain wire) and raises link-up on both.
func Connect(clk hostos.Clock, a, b *nic.Port, cfg Config) *Link {
	return ConnectAsym(clk, a, b, cfg, cfg)
}

// ConnectAsym is Connect with independent per-direction configs: ab
// impairs frames leaving port a toward b, ba the reverse path.
func ConnectAsym(clk hostos.Clock, a, b *nic.Port, ab, ba Config) *Link {
	l := NewAsym(clk, a, b, ab, ba)
	l.arena = a.Arena()
	a.Attach(l, 0)
	b.Attach(l, 1)
	return l
}

// Config returns the a-to-b direction's effective configuration
// (defaults filled) — the whole link's, when built symmetrically.
func (l *Link) Config() Config { return l.cfg[0] }

// DirConfig returns one direction's effective configuration
// (0 = a-to-b, 1 = b-to-a).
func (l *Link) DirConfig(dir int) Config { return l.cfg[dir] }

// Stats snapshots one direction's counters (0 = a-to-b, 1 = b-to-a).
func (l *Link) Stats(dir int) DirStats {
	d := &l.dirs[dir]
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// SetCarrierSchedule installs a deterministic carrier flap schedule on
// one direction: toggles are the virtual-time instants (ns, ascending)
// at which the carrier flips, starting from up. A frame offered while
// the carrier is down is dropped at enqueue (DroppedCarrier), distinct
// from the loss models; frames already in the delay line still
// deliver. Call before driving traffic, like SetTrace.
func (l *Link) SetCarrierSchedule(dir int, toggles []int64) {
	d := &l.dirs[dir]
	d.mu.Lock()
	defer d.mu.Unlock()
	sched := append([]int64(nil), toggles...)
	sort.Slice(sched, func(i, j int) bool { return sched[i] < sched[j] })
	d.carr = sched
	d.carrUp = true
}

// Carrier reports one direction's carrier state after advancing its
// flap schedule to now.
func (l *Link) Carrier(dir int, now int64) bool {
	d := &l.dirs[dir]
	d.mu.Lock()
	defer d.mu.Unlock()
	l.advanceCarrierLocked(d, dir, now)
	if d.carr == nil {
		return true
	}
	return d.carrUp
}

// advanceCarrierLocked consumes every toggle due at or before t,
// flipping the carrier and tracing each edge at its scheduled instant.
// Caller holds d.mu.
func (l *Link) advanceCarrierLocked(d *dirState, dir int, t int64) {
	for len(d.carr) > 0 && d.carr[0] <= t {
		at := d.carr[0]
		d.carr = d.carr[1:]
		d.carrUp = !d.carrUp
		if l.tr != nil {
			up := int64(0)
			if d.carrUp {
				up = 1
			}
			l.tr.Record(at, obs.EvLinkCarrier, l.trSrc+uint16(dir), up, 0, 0)
		}
	}
}

// Send implements nic.Conduit: impair one frame leaving endpoint
// `from`, and schedule (or drop) its delivery to the peer.
func (l *Link) Send(from int, data []byte, readyAt int64) {
	dst := l.ends[1-from]
	d := &l.dirs[from]
	cfg := l.cfg[from]
	// Carrier flaps apply before every other impairment — a frame
	// offered to a dead carrier never reaches the loss models or the
	// bottleneck. The nil check keeps flap-free links at zero cost.
	if d.carr != nil {
		d.mu.Lock()
		l.advanceCarrierLocked(d, from, readyAt)
		if !d.carrUp {
			d.stats.Sent++
			d.stats.DroppedCarrier++
			d.mu.Unlock()
			if l.tr != nil {
				l.tr.Record(readyAt, obs.EvNetemDrop, l.trSrc+uint16(from), int64(len(data)), obs.DropCarrier, 0)
			}
			l.freeFrame(data)
			return
		}
		d.mu.Unlock()
	}
	if cfg.pristine() {
		// Bit-transparent: same bytes, same instant, same order, and no
		// PRNG draws, so a pristine link is indistinguishable from a
		// plain wire.
		d.mu.Lock()
		d.stats.Sent++
		d.stats.Delivered++
		d.mu.Unlock()
		dst.DeliverFrame(data, readyAt)
		return
	}

	now := l.clk.Now()
	d.mu.Lock()
	d.stats.Sent++

	// Loss first: a frame destroyed on the wire never occupies the
	// bottleneck queue.
	if cfg.GEBadProb > 0 {
		d.stepGE(cfg, readyAt)
		lossP := cfg.GELossGood
		if d.geBad {
			lossP = cfg.GELossBad
		}
		if lossP > 0 && d.rng.Float64() < lossP {
			d.stats.LostBurst++
			d.mu.Unlock()
			if l.tr != nil {
				l.tr.Record(now, obs.EvNetemDrop, l.trSrc+uint16(from), int64(len(data)), obs.DropBurst, 0)
			}
			l.freeFrame(data)
			return
		}
	}
	if cfg.LossRate > 0 && d.rng.Float64() < cfg.LossRate {
		d.stats.LostRandom++
		d.mu.Unlock()
		if l.tr != nil {
			l.tr.Record(now, obs.EvNetemDrop, l.trSrc+uint16(from), int64(len(data)), obs.DropIID, 0)
		}
		l.freeFrame(data)
		return
	}

	// Bottleneck serializer with a bounded queue.
	at := readyAt
	if cfg.RateBps > 0 {
		if d.nextFree < at {
			d.nextFree = at
		}
		backlogBytes := int(float64(d.nextFree-at) * cfg.RateBps / 8e9)
		drop := false
		switch {
		case backlogBytes+len(data) > cfg.QueueBytes:
			drop = true // tail drop (and RED's hard ceiling)
		case cfg.RED:
			// Simple RED: linear ramp from 0 at half occupancy to 1 at
			// the limit.
			minTh := cfg.QueueBytes / 2
			if backlogBytes > minTh {
				p := float64(backlogBytes-minTh) / float64(cfg.QueueBytes-minTh)
				drop = d.rng.Float64() < p
			}
		}
		if drop {
			d.stats.DroppedQueue++
			d.mu.Unlock()
			if l.tr != nil {
				l.tr.Record(now, obs.EvNetemDrop, l.trSrc+uint16(from), int64(len(data)), obs.DropQueue, 0)
			}
			l.freeFrame(data)
			return
		}
		d.nextFree += int64(float64(len(data)+wireOverheadBytes) * 8e9 / cfg.RateBps)
		at = d.nextFree
	}

	// Delay, jitter, reordering.
	at += cfg.DelayNS
	if cfg.JitterNS > 0 {
		at += d.rng.Int63n(cfg.JitterNS + 1)
	}
	if cfg.ReorderProb > 0 && d.rng.Float64() < cfg.ReorderProb {
		at += cfg.ReorderExtraNS
		d.stats.Reordered++
	}

	heap.Push(&d.held, heldFrame{data: data, deliverAt: at, seq: d.seq})
	d.seq++
	held := len(d.held)
	due := d.takeDueLocked(now)
	d.mu.Unlock()
	if l.tr != nil {
		l.tr.Record(now, obs.EvNetemEnqueue, l.trSrc+uint16(from), int64(len(data)), at, int64(held))
	}
	if len(due) > 0 {
		deliverAll(dst, due)
		d.putDue(due)
	}
}

// Pump implements nic.Conduit: release every held frame that is due.
// Ports call it from each device step, so held frames drain even when
// nothing new is sent.
func (l *Link) Pump(now int64) {
	for dir := range l.dirs {
		d := &l.dirs[dir]
		d.mu.Lock()
		if d.carr != nil {
			l.advanceCarrierLocked(d, dir, now)
		}
		due := d.takeDueLocked(now)
		d.mu.Unlock()
		if len(due) > 0 {
			deliverAll(l.ends[1-dir], due)
			d.putDue(due)
		}
	}
}

// NextDeadline reports the earliest instant at which a held frame (in
// either direction) becomes due, or math.MaxInt64 when the delay lines
// are empty. The attached ports fold this into their own deadlines, so
// the event-driven driver leaps straight to the next delivery.
func (l *Link) NextDeadline(int64) int64 {
	d := int64(math.MaxInt64)
	for dir := range l.dirs {
		ds := &l.dirs[dir]
		ds.mu.Lock()
		if len(ds.held) > 0 && ds.held[0].deliverAt < d {
			d = ds.held[0].deliverAt
		}
		// Pending flap edges are deadlines too, so the leaping driver
		// visits every toggle instant (and traces it) even on an idle
		// link.
		if len(ds.carr) > 0 && ds.carr[0] < d {
			d = ds.carr[0]
		}
		ds.mu.Unlock()
	}
	return d
}

// stepGE advances the Gilbert–Elliott chain to time `at`, one
// transition per elapsed wire-slot. The chain's clock (geAt) advances
// in whole slots only, so several frames within one slot all sample
// the same state and a dense flow does not run the chain any faster
// than a sparse one. Past a few thousand idle slots the chain is at
// stationarity, so it is sampled there directly instead of walked.
func (d *dirState) stepGE(cfg Config, at int64) {
	if d.geAt == 0 {
		// First frame seeds the chain clock and draws the initial state
		// from the stationary distribution.
		d.geAt = at
		d.geBad = d.rng.Float64() < cfg.GEBadProb/(cfg.GEBadProb+cfg.GERecoverProb)
		return
	}
	if at <= d.geAt {
		return
	}
	steps := (at - d.geAt) / cfg.GESlotNS
	const stationaryAfter = 4096
	if steps > stationaryAfter {
		d.geAt = at
		d.geBad = d.rng.Float64() < cfg.GEBadProb/(cfg.GEBadProb+cfg.GERecoverProb)
		return
	}
	d.geAt += steps * cfg.GESlotNS
	for i := int64(0); i < steps; i++ {
		if d.geBad {
			if d.rng.Float64() < cfg.GERecoverProb {
				d.geBad = false
			}
		} else if d.rng.Float64() < cfg.GEBadProb {
			d.geBad = true
		}
	}
}

// takeDueLocked pops the frames due at `now`, in delivery order, into
// the direction's loaned scratch slice. A non-empty result must be
// handed back via putDue once delivered.
func (d *dirState) takeDueLocked(now int64) []heldFrame {
	if len(d.held) == 0 || d.held[0].deliverAt > now {
		return nil // fast path: nothing due, no loan
	}
	due := d.due[:0]
	d.due = nil // loaned out until putDue
	for len(d.held) > 0 && d.held[0].deliverAt <= now {
		due = append(due, heap.Pop(&d.held).(heldFrame))
		d.stats.Delivered++
	}
	return due
}

// putDue returns the delivery scratch after its frames were handed
// over. If a concurrent release already replaced it, the older slice
// is simply dropped.
func (d *dirState) putDue(due []heldFrame) {
	d.mu.Lock()
	if d.due == nil {
		d.due = due[:0]
	}
	d.mu.Unlock()
}

// deliverAll hands released frames to the endpoint outside the
// direction lock (the endpoint's FIFO has its own).
func deliverAll(dst Endpoint, due []heldFrame) {
	for _, f := range due {
		dst.DeliverFrame(f.data, f.deliverAt)
	}
}
