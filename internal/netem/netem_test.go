package netem

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// recorder is a fake Endpoint logging every delivery.
type recorder struct {
	frames []struct {
		data []byte
		at   int64
	}
}

func (r *recorder) DeliverFrame(data []byte, readyAt int64) {
	r.frames = append(r.frames, struct {
		data []byte
		at   int64
	}{data, readyAt})
}

// sendN pushes n 1000-byte frames spaced spacingNS apart into direction
// 0 of the link, pumping as the clock advances past the last send.
func sendN(clk *sim.VClock, l *Link, n int, spacingNS int64) {
	for i := 0; i < n; i++ {
		data := []byte(fmt.Sprintf("frame-%06d", i))
		data = append(data, make([]byte, 1000-len(data))...)
		l.Send(0, data, clk.Now())
		clk.Advance(spacingNS)
		l.Pump(clk.Now())
	}
}

// drain advances far enough for every held frame to come due.
func drain(clk *sim.VClock, l *Link, horizonNS int64) {
	for i := int64(0); i < horizonNS; i += 1000_000 {
		clk.Advance(1000_000)
		l.Pump(clk.Now())
	}
}

func TestPristineLinkIsTransparent(t *testing.T) {
	clk := sim.NewVClock()
	var a, b recorder
	l := New(clk, &a, &b, Config{})
	// Frames with future readyAt (the port books its serializer ahead)
	// must pass through with byte-identical data and unchanged instants,
	// in both directions, without the clock having caught up.
	payload := []byte("hello wire")
	l.Send(0, payload, 12345)
	l.Send(1, []byte("reverse"), 999)
	if len(b.frames) != 1 || len(a.frames) != 1 {
		t.Fatalf("deliveries: a=%d b=%d, want 1 and 1", len(a.frames), len(b.frames))
	}
	if !bytes.Equal(b.frames[0].data, payload) || b.frames[0].at != 12345 {
		t.Fatalf("forward frame mangled: %q at %d", b.frames[0].data, b.frames[0].at)
	}
	if a.frames[0].at != 999 {
		t.Fatalf("reverse instant changed: %d", a.frames[0].at)
	}
	if st := l.Stats(0); st.Sent != 1 || st.Delivered != 1 || st.Lost() != 0 {
		t.Fatalf("dir0 stats: %v", st)
	}
}

func TestSeededLossIsDeterministicAndCloseToRate(t *testing.T) {
	const n, p = 20000, 0.01
	run := func(seed int64) uint64 {
		clk := sim.NewVClock()
		var b recorder
		l := New(clk, &recorder{}, &b, Config{Seed: seed, LossRate: p})
		sendN(clk, l, n, 10_000)
		drain(clk, l, 10e6)
		return l.Stats(0).LostRandom
	}
	l1, l2 := run(42), run(42)
	if l1 != l2 {
		t.Fatalf("same seed, different loss: %d vs %d", l1, l2)
	}
	if l3 := run(43); l3 == l1 {
		t.Fatalf("different seeds produced identical loss %d", l1)
	}
	got := float64(l1) / n
	if math.Abs(got-p) > p/2 {
		t.Fatalf("loss rate %.4f far from configured %.4f", got, p)
	}
}

func TestGilbertElliottLossComesInBursts(t *testing.T) {
	clk := sim.NewVClock()
	var b recorder
	// Mean burst 5 frames, stationary loss ~= 0.02/(0.02+0.2) ~= 9%.
	l := New(clk, &recorder{}, &b, Config{Seed: 7, GEBadProb: 0.02, GERecoverProb: 0.2})
	const n = 20000
	sendN(clk, l, n, 10_000)
	drain(clk, l, 10e6)
	st := l.Stats(0)
	if st.LostBurst == 0 {
		t.Fatal("GE model lost nothing")
	}
	// Count loss runs from the delivered sequence numbers: bursty loss
	// must have mean run length well above 1 (i.i.d.'s mean).
	seen := make(map[int]bool)
	for _, f := range b.frames {
		var idx int
		fmt.Sscanf(string(f.data[:12]), "frame-%d", &idx)
		seen[idx] = true
	}
	runs, lost := 0, 0
	inRun := false
	for i := 0; i < n; i++ {
		if !seen[i] {
			lost++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	if runs == 0 {
		t.Fatal("no loss runs found")
	}
	meanRun := float64(lost) / float64(runs)
	if meanRun < 2 {
		t.Fatalf("mean loss-burst length %.2f, want >= 2 (bursty)", meanRun)
	}
}

func TestRateLimiterPacesAndBoundsQueue(t *testing.T) {
	clk := sim.NewVClock()
	var b recorder
	// 8 Mbit/s, 4 KiB queue: 1000-byte frames serialize in ~1.024 ms
	// (1024 wire bytes); blasting 100 at once must overflow the queue.
	l := New(clk, &recorder{}, &b, Config{Seed: 1, RateBps: 8e6, QueueBytes: 4096})
	for i := 0; i < 100; i++ {
		l.Send(0, make([]byte, 1000), clk.Now())
	}
	drain(clk, l, 300e6)
	st := l.Stats(0)
	if st.DroppedQueue == 0 {
		t.Fatal("bounded queue never dropped")
	}
	if st.Delivered == 0 {
		t.Fatal("rate limiter delivered nothing")
	}
	if st.Delivered+st.DroppedQueue != 100 {
		t.Fatalf("accounting: delivered %d + dropped %d != 100", st.Delivered, st.DroppedQueue)
	}
	// Delivered frames must be spaced at the serialization time.
	wantGap := int64(float64(1000+wireOverheadBytes) * 8e9 / 8e6)
	for i := 1; i < len(b.frames); i++ {
		if gap := b.frames[i].at - b.frames[i-1].at; gap != wantGap {
			t.Fatalf("frame %d gap %d ns, want %d", i, gap, wantGap)
		}
	}
}

func TestDelayJitterAndReorder(t *testing.T) {
	clk := sim.NewVClock()
	var b recorder
	l := New(clk, &recorder{}, &b, Config{
		Seed: 3, DelayNS: 5e6, JitterNS: 2e6, ReorderProb: 0.1, ReorderExtraNS: 10e6,
	})
	const n = 500
	sendN(clk, l, n, 100_000) // 100 µs spacing << jitter: reordering expected
	drain(clk, l, 50e6)
	st := l.Stats(0)
	if st.Delivered != n {
		t.Fatalf("delivered %d of %d", st.Delivered, n)
	}
	if st.Reordered == 0 {
		t.Fatal("reorder knob never fired")
	}
	outOfOrder := 0
	prev := -1
	minDelay := int64(math.MaxInt64)
	for i, f := range b.frames {
		var idx int
		fmt.Sscanf(string(f.data[:12]), "frame-%d", &idx)
		if idx < prev {
			outOfOrder++
		}
		prev = idx
		sentAt := int64(idx) * 100_000
		if d := f.at - sentAt; d < minDelay {
			minDelay = d
		}
		if i > 0 && f.at < b.frames[i-1].at {
			t.Fatalf("deliveries not time-ordered at %d", i)
		}
	}
	if outOfOrder == 0 {
		t.Fatal("no frame actually arrived out of order")
	}
	if minDelay < 5e6 {
		t.Fatalf("min one-way delay %d ns below the configured 5 ms", minDelay)
	}
}

// Property: whatever the impairment mix, the link never duplicates or
// corrupts a frame, and per-direction accounting always balances.
func TestQuickAccountingBalances(t *testing.T) {
	f := func(seed int64, loss, geBad, reorder uint8, rate bool) bool {
		clk := sim.NewVClock()
		var b recorder
		cfg := Config{
			Seed:          seed,
			LossRate:      float64(loss%50) / 100,
			GEBadProb:     float64(geBad%10) / 100,
			GERecoverProb: 0.3,
			ReorderProb:   float64(reorder%30) / 100,
			DelayNS:       1e6,
		}
		if rate {
			cfg.RateBps, cfg.QueueBytes = 20e6, 16<<10
		}
		l := New(clk, &recorder{}, &b, cfg)
		const n = 300
		sendN(clk, l, n, 50_000)
		drain(clk, l, 100e6)
		st := l.Stats(0)
		if st.Sent != n || st.Delivered != uint64(len(b.frames)) {
			return false
		}
		if st.Delivered+st.Lost() != st.Sent {
			return false
		}
		seen := make(map[int]bool)
		for _, fr := range b.frames {
			var idx int
			fmt.Sscanf(string(fr.data[:12]), "frame-%d", &idx)
			if seen[idx] {
				return false // duplicate
			}
			seen[idx] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
