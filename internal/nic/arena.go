package nic

import "sync"

// The frame arena recycles the per-frame byte buffers that carry
// Ethernet frames between a port's TX path and the far port's RX FIFO
// (directly over a Wire, or held in a netem delay line in between).
// Before the arena every transmitted frame cost one make([]byte) — the
// dominant allocation site of the whole simulator once the poll-loop
// scratch was fixed — and the buffers died as soon as the receiving
// port DMAed them into its descriptor ring.
//
// Ownership contract: a frame handed to Conduit.Send or
// Endpoint.DeliverFrame belongs to the receiving side. Whoever
// consumes it (the RX path after copying it into descriptor memory, an
// impairment pipeline that drops it) returns it to the arena it came
// from; nobody may retain the slice afterward. Code that needs the
// bytes past that point (taps, traces) must copy.
//
// Locality: frames never cross testbeds — a frame allocated by a bed's
// TX path is freed by the same bed's RX path or links — so each
// testbed.Bed owns a private FrameArena shared by its local machine,
// its peers and its links. Concurrent sweep cells therefore never
// contend on (or leak buffers into) one global sync.Pool shard chain,
// and within a bed every Alloc/Free site runs in the sequential device
// phases, so the pool is contention-free there too. The package-level
// AllocFrame/FreeFrame keep their signatures over a process-wide
// default arena for hand-wired tests and single-topology tools.

// FrameArena is one pool of wire-frame buffers. The zero value is not
// usable; call NewFrameArena.
type FrameArena struct {
	// pool holds *[maxFrame]byte so Get/Put move a single pointer —
	// pooling []byte directly would allocate a slice header per Put.
	pool sync.Pool
}

// NewFrameArena returns an empty arena (buffers are allocated on
// demand and recycled thereafter).
func NewFrameArena() *FrameArena {
	return &FrameArena{pool: sync.Pool{
		New: func() any { return new([maxFrame]byte) },
	}}
}

// Alloc returns an n-byte frame buffer from the arena. Buffers always
// carry cap == maxFrame, which is how Free recognizes arena frames.
func (a *FrameArena) Alloc(n int) []byte {
	if n > maxFrame {
		// Oversized (never the case for port traffic, which enforces
		// the MTU): fall back to the allocator; Free will ignore it.
		return make([]byte, n)
	}
	return a.pool.Get().(*[maxFrame]byte)[:n]
}

// Free returns a frame buffer to the arena. Foreign slices (tests
// hand-deliver their own buffers) are recognized by capacity and left
// to the garbage collector.
func (a *FrameArena) Free(b []byte) {
	if cap(b) != maxFrame {
		return
	}
	a.pool.Put((*[maxFrame]byte)(b[:maxFrame]))
}

// defaultArena backs the package-level AllocFrame/FreeFrame: the arena
// of every port not given a bed-local one.
var defaultArena = NewFrameArena()

// AllocFrame returns an n-byte frame buffer from the default arena.
func AllocFrame(n int) []byte { return defaultArena.Alloc(n) }

// FreeFrame returns a frame buffer to the default arena.
func FreeFrame(b []byte) { defaultArena.Free(b) }
