package nic

import "sync"

// The frame arena recycles the per-frame byte buffers that carry
// Ethernet frames between a port's TX path and the far port's RX FIFO
// (directly over a Wire, or held in a netem delay line in between).
// Before the arena every transmitted frame cost one make([]byte) — the
// dominant allocation site of the whole simulator once the poll-loop
// scratch was fixed — and the buffers died as soon as the receiving
// port DMAed them into its descriptor ring.
//
// Ownership contract: a frame handed to Conduit.Send or
// Endpoint.DeliverFrame belongs to the receiving side. Whoever
// consumes it (the RX path after copying it into descriptor memory, an
// impairment pipeline that drops it) calls FreeFrame; nobody may
// retain the slice afterward. Code that needs the bytes past that
// point (taps, traces) must copy.

// framePool holds *[maxFrame]byte so Get/Put move a single pointer —
// pooling []byte directly would allocate a slice header per Put.
var framePool = sync.Pool{
	New: func() any { return new([maxFrame]byte) },
}

// AllocFrame returns an n-byte frame buffer from the arena. Buffers
// always carry cap == maxFrame, which is how FreeFrame recognizes
// arena frames.
func AllocFrame(n int) []byte {
	if n > maxFrame {
		// Oversized (never the case for port traffic, which enforces
		// the MTU): fall back to the allocator; FreeFrame will ignore it.
		return make([]byte, n)
	}
	return framePool.Get().(*[maxFrame]byte)[:n]
}

// FreeFrame returns a frame buffer to the arena. Foreign slices (tests
// hand-deliver their own buffers) are recognized by capacity and left
// to the garbage collector.
func FreeFrame(b []byte) {
	if cap(b) != maxFrame {
		return
	}
	framePool.Put((*[maxFrame]byte)(b[:maxFrame]))
}
