package nic

import (
	"fmt"
	"sync"

	"repro/internal/cheri"
	"repro/internal/hostos"
	"repro/internal/sim"
)

// Config describes one NIC card.
type Config struct {
	// BDFBase is the PCI bus/device prefix; port i becomes "<BDFBase>.i".
	BDFBase string
	// Ports is the number of Ethernet ports (the 82576 has two).
	Ports int
	// LineRateBps is the per-port line rate in bits per second.
	LineRateBps float64
	// BusRateBps is the shared PCI bus budget in cost-bits per second.
	// See DESIGN.md for the calibration; <= 0 means an ideal bus (used
	// for the remote link-partner machine).
	BusRateBps float64
	// BusCostTX and BusCostRX scale the per-byte bus cost of DMA reads
	// (transmit) and DMA writes (receive). RX costs more per byte on
	// this card — descriptor write-back plus allocation traffic — which
	// is what splits Table II's 658 (RX) from 757 (TX).
	BusCostTX, BusCostRX float64
	// RxFifoBytes sizes each RX queue's slice of the receive packet
	// buffer; <= 0 means the 82576's 64 KiB. Faster parts carry larger
	// buffers (the scaling scenario models a multi-gigabit port with
	// 512 KiB per queue).
	RxFifoBytes int
	// MAC is the base hardware address; port i gets MAC with the last
	// octet incremented by i.
	MAC [6]byte
	// Clk paces the serializers (virtual in bandwidth runs, real in
	// latency runs).
	Clk hostos.Clock
	// Mem is the host memory the device DMAs into.
	Mem *cheri.TMem
	// CapDMA routes every DMA access through the port's DMA capability
	// (IOMMU-style); raw otherwise.
	CapDMA bool
	// Arena supplies the wire-frame buffers the ports transmit and
	// receive (nil = the package default). A testbed gives every
	// machine and link of one bed the same private arena so concurrent
	// beds never share pool state.
	Arena *FrameArena
}

// DefaultBusConfig returns the calibrated 82576 bus parameters.
// Calibration (DESIGN.md): cTX=1.0, cRX=1.16, B=1.66 Gbit/s reproduces
// the paper's dual-port ceiling (≈757 Mbit/s TX, ≈658 Mbit/s RX per
// port) while leaving single-port traffic line-limited.
func DefaultBusConfig() (busRateBps, costTX, costRX float64) {
	return 1.66e9, 1.0, 1.16
}

// serializerWindow is how far ahead the line/bus may be booked: a couple
// of full-size frame times (the device FIFO the serializer stands for).
const serializerWindow = 3 * 12304 // ns at 1 Gbit/s

// busActivityWindow is how long after its last DMA a port counts as an
// active bus user for the fair-share arbiter.
const busActivityWindow = 1e6 // 1 ms

// Card is one physical NIC: up to several ports sharing one PCI bus.
//
// Bus model: PCIe arbitration is round-robin per transaction; at the
// timescales of interest that is indistinguishable from an equal split
// of the bus budget among the ports with outstanding DMA. The card
// therefore gives each port a private serializer and re-divides the
// total budget B among the currently active ports (full B when one port
// works alone) — a work-conserving fair share that cannot be gamed by
// polling order.
type Card struct {
	cfg   Config
	ports []*Port

	busMu    sync.Mutex
	busShare []*sim.Serializer // per-port slice of the bus; nil = ideal
	busUse   []int64           // last admission attempt per port
	busAct   int               // ports currently counted active
}

// New builds a card and registers nothing: call RegisterPCI to make its
// functions visible to the host kernel.
func New(cfg Config) (*Card, error) {
	if cfg.Ports <= 0 {
		return nil, fmt.Errorf("nic: card needs at least one port")
	}
	if cfg.LineRateBps <= 0 {
		return nil, fmt.Errorf("nic: line rate must be positive")
	}
	if cfg.Clk == nil || cfg.Mem == nil {
		return nil, fmt.Errorf("nic: clock and memory are required")
	}
	c := &Card{cfg: cfg}
	if cfg.BusRateBps > 0 {
		c.busShare = make([]*sim.Serializer, cfg.Ports)
		c.busUse = make([]int64, cfg.Ports)
		c.busAct = 1
		for i := 0; i < cfg.Ports; i++ {
			c.busShare[i] = sim.NewSerializer(cfg.Clk, cfg.BusRateBps, serializerWindow)
			c.busUse[i] = -2 * busActivityWindow
		}
	}
	arena := cfg.Arena
	if arena == nil {
		arena = defaultArena
	}
	for i := 0; i < cfg.Ports; i++ {
		mac := cfg.MAC
		mac[5] += byte(i)
		p := &Port{
			card:  c,
			idx:   i,
			bdf:   fmt.Sprintf("%s.%d", cfg.BDFBase, i),
			mac:   mac,
			clk:   cfg.Clk,
			mem:   cfg.Mem,
			arena: arena,
			line:  sim.NewSerializer(cfg.Clk, cfg.LineRateBps, serializerWindow),
		}
		// Every RX queue gets a full packet-buffer slice; with RSS off
		// only queue 0 is used and the buffering matches the old
		// single-FIFO model exactly.
		fifoBytes := cfg.RxFifoBytes
		if fifoBytes <= 0 {
			fifoBytes = RxFifoBytes
		}
		for q := range p.fifos {
			p.fifos[q].limit = fifoBytes
			p.fifos[q].arena = arena
		}
		p.capDMA = cfg.CapDMA
		c.ports = append(c.ports, p)
	}
	return c, nil
}

// Port returns port i.
func (c *Card) Port(i int) *Port { return c.ports[i] }

// Ports returns the number of ports.
func (c *Card) Ports() int { return len(c.ports) }

// RegisterPCI registers every port as a PCI function with the host.
func (c *Card) RegisterPCI(pci *hostos.PCI) error {
	for _, p := range c.ports {
		if err := pci.Register(p); err != nil {
			return err
		}
	}
	return nil
}

// busTouch records port activity and rebalances the per-port shares
// when the active set changes. It returns the port's serializer.
func (c *Card) busTouch(port int) *sim.Serializer {
	c.busMu.Lock()
	defer c.busMu.Unlock()
	now := c.cfg.Clk.Now()
	c.busUse[port] = now
	active := 0
	for _, last := range c.busUse {
		if now-last < busActivityWindow {
			active++
		}
	}
	if active < 1 {
		active = 1
	}
	if active != c.busAct {
		c.busAct = active
		rate := c.cfg.BusRateBps / float64(active)
		for _, s := range c.busShare {
			s.SetRate(rate)
		}
	}
	return c.busShare[port]
}

// busAdmit books a DMA transfer of costBytes (already scaled) for the
// given port; ideal buses always admit.
func (c *Card) busAdmit(port, costBytes int) bool {
	if c.busShare == nil {
		return true
	}
	_, ok := c.busTouch(port).Admit(costBytes)
	return ok
}

// busCanAdmit reports whether the port's bus share has window room.
func (c *Card) busCanAdmit(port int) bool {
	if c.busShare == nil {
		return true
	}
	return c.busTouch(port).CanAdmit()
}

// busLimited reports whether the card models a finite PCI bus.
func (c *Card) busLimited() bool { return c.busShare != nil }

// BusLimited reports whether the card models a finite PCI bus. The
// fair-share arbiter of a finite bus makes polling order part of the
// machine state, so drivers that reorder device steps (the parallel
// shard runner) must check this before doing so.
func (c *Card) BusLimited() bool { return c.busLimited() }

// busNextAdmitAt reports when the port's bus share could next admit a
// transfer, WITHOUT recording activity: deadline queries are simulator
// introspection, and touching the arbiter from them would perturb the
// active-set accounting the tick-stepped reference driver produces.
func (c *Card) busNextAdmitAt(port int, now int64) int64 {
	if c.busShare == nil {
		return now
	}
	c.busMu.Lock()
	s := c.busShare[port]
	c.busMu.Unlock()
	return s.NextAdmitAt(now)
}
