// Package nic models the Intel 82576 Gigabit Ethernet controller the
// paper installs in the Morello box ("a PCI card Intel 82576 Gigabit
// Network Connection with two Ethernet ports", §III).
//
// The model is a register-level, descriptor-ring device:
//
//   - each port exposes an e1000-style MMIO register block (ring base /
//     head / tail registers, control, status, statistics) that the DPDK
//     poll-mode driver programs exactly as it would program silicon;
//   - legacy 16-byte RX/TX descriptors live in host memory; the device
//     DMAs frames between descriptor buffers and the wire;
//   - each port serializes onto a 1 Gbit/s full-duplex line, and all
//     ports of a card share one PCI bus with separate DMA-read (TX) and
//     DMA-write (RX) per-byte costs.
//
// The shared-bus model is what reproduces Table II's dual-port ceiling:
// a single port saturates its line (941 Mbit/s TCP goodput), while two
// ports running together are bus-limited to ≈66 % (RX) / ≈76 % (TX) per
// port — "the hardware limitations imposed by the PCI NIC" (§IV). The
// bus rate and the RX/TX cost factors are calibration constants
// (DefaultBusConfig) documented in DESIGN.md.
//
// DMA can run in capability mode (an IOMMU-style DMA capability bounds
// every device access to the DPDK memory region it was granted) or raw
// mode (Baseline). Frames travel over a Wire that connects two ports
// back to back with a fixed propagation delay.
//
// The device is interrupt-less: Step drains rings when called, and the
// DPDK PMD calls it from rx_burst/tx_burst — polling mode, as DPDK does.
// For the event-driven virtual clock each port also answers deadline
// queries (Port.NextDeadline): when could it next act — a FIFO head
// becoming harvestable, a pending TX descriptor becoming admissible,
// the attached conduit releasing a frame. Frame buffers crossing a
// conduit come from a sync.Pool arena (arena.go) whose ownership rules
// are documented there and in DESIGN.md §8.
//
// Beyond the paper's single-queue setup, each port carries up to
// MaxQueues RX/TX queue pairs with receive-side scaling: a symmetric
// Toeplitz hash over the flow tuple indexes a 128-entry redirection
// table that picks the RX queue (rss.go); queue 0 aliases the legacy
// register offsets and receives all non-IP traffic. This is the
// hardware half of the sharded-stack scaling scenario (DESIGN.md §3).
package nic
