package nic

import (
	"bytes"
	"math"
	"testing"
)

// TestQueueStallFreezesAndThaws pins the stall primitive: a stalled
// queue transmits nothing and fills no RX descriptors; thawing resumes
// exactly where the rings left off, losing nothing that fit the FIFO.
func TestQueueStallFreezesAndThaws(t *testing.T) {
	be := newBench(t, 0)
	payload := bytes.Repeat([]byte{0x5A}, 128)

	// Stall the receiver's queue 0: frames cross the wire but park in
	// the FIFO instead of DMAing into descriptors.
	be.b.SetQueueStall(0, true)
	if !be.b.QueueStalled(0) {
		t.Fatal("stall flag not set")
	}
	be.queueTX(t, be.a, be.atx, payload)
	step(be, 20, 2000)
	var next uint32
	if got := be.rxHarvest(t, be.b, be.brx, &next); len(got) != 0 {
		t.Fatalf("stalled queue completed %d descriptors", len(got))
	}
	if be.b.PendingRX() != 1 {
		t.Fatalf("frame should park in the FIFO, pending=%d", be.b.PendingRX())
	}

	// Thaw: the parked frame DMAs out on the next steps.
	be.b.SetQueueStall(0, false)
	step(be, 10, 2000)
	got := be.rxHarvest(t, be.b, be.brx, &next)
	if len(got) != 1 || !bytes.Equal(got[0], payload) {
		t.Fatalf("thawed queue lost the parked frame: %d", len(got))
	}

	// A stalled sender transmits nothing until thawed.
	be.a.SetQueueStall(0, true)
	be.queueTX(t, be.a, be.atx, payload)
	step(be, 20, 2000)
	if be.a.RegRead32(RegGPTC) != 1 {
		t.Fatalf("stalled TX queue transmitted: GPTC=%d", be.a.RegRead32(RegGPTC))
	}
	be.a.SetQueueStall(0, false)
	step(be, 20, 2000)
	if be.a.RegRead32(RegGPTC) != 2 {
		t.Fatalf("thawed TX queue did not resume: GPTC=%d", be.a.RegRead32(RegGPTC))
	}
}

// TestQueueStallExcludedFromDeadline guards the leaping driver: a port
// whose only work sits behind a stalled queue must report quiescence,
// not a deadline at `now` forever.
func TestQueueStallExcludedFromDeadline(t *testing.T) {
	be := newBench(t, 0)
	be.queueTX(t, be.a, be.atx, make([]byte, 64))
	be.a.SetQueueStall(0, true)
	if d := be.a.NextDeadline(be.clk.Now()); d != math.MaxInt64 {
		t.Fatalf("stalled port reports deadline %d", d)
	}
	be.a.SetQueueStall(0, false)
	if d := be.a.NextDeadline(be.clk.Now()); d == math.MaxInt64 {
		t.Fatal("thawed port with pending TX reports quiescence")
	}
}

// TestInjectedDMAFaultBurst pins the burst semantics: each armed fault
// consumes exactly one DMA mapping, the port's master-abort paths
// absorb it, and traffic is healthy again once the budget drains.
func TestInjectedDMAFaultBurst(t *testing.T) {
	be := newBench(t, 0)
	payload := bytes.Repeat([]byte{0x77}, 100)

	// Two faults: the first TX step's descriptor read aborts (frame 1
	// stays in the ring), the retry consumes the second. The third step
	// runs clean.
	be.a.InjectDMAFaults(2)
	be.queueTX(t, be.a, be.atx, payload)
	step(be, 20, 2000)
	if got := be.a.DMAFaulted(); got != 2 {
		t.Fatalf("faults fired: %d, want 2", got)
	}
	var next uint32
	got := be.rxHarvest(t, be.b, be.brx, &next)
	if len(got) != 1 || !bytes.Equal(got[0], payload) {
		t.Fatalf("frame did not survive the fault burst: %d delivered", len(got))
	}
	// Budget drained: later traffic is untouched.
	be.queueTX(t, be.a, be.atx, payload)
	step(be, 20, 2000)
	if len(be.rxHarvest(t, be.b, be.brx, &next)) != 1 {
		t.Fatal("post-burst traffic still failing")
	}
	if got := be.a.DMAFaulted(); got != 2 {
		t.Fatalf("budget kept firing: %d", got)
	}
}
