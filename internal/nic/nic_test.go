package nic

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/cheri"
	"repro/internal/hostos"
	"repro/internal/sim"
)

// ringLayout is a hand-built descriptor ring for driver-less tests.
type ringLayout struct {
	descBase uint64
	bufBase  uint64
	n        uint32
	bufSize  uint64
}

// install programs the ring's descriptors to point at its buffers.
func (r *ringLayout) install(t *testing.T, mem *cheri.TMem) {
	t.Helper()
	for i := uint32(0); i < r.n; i++ {
		s, err := mem.RawSlice(r.descBase+uint64(i)*DescSize, DescSize)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(s[0:8], r.bufBase+uint64(i)*r.bufSize)
		for j := 8; j < DescSize; j++ {
			s[j] = 0
		}
	}
}

type bench struct {
	mem  *cheri.TMem
	clk  *sim.VClock
	a, b *Port
	atx  ringLayout
	arx  ringLayout
	btx  ringLayout
	brx  ringLayout
}

func newBench(t *testing.T, busRate float64) *bench {
	t.Helper()
	mem := cheri.NewTMem(1 << 22)
	clk := sim.NewVClock()
	mk := func(bdf string, mac byte) *Card {
		c, err := New(Config{
			BDFBase:     bdf,
			Ports:       1,
			LineRateBps: 1e9,
			BusRateBps:  busRate,
			BusCostTX:   1.0,
			BusCostRX:   1.16,
			MAC:         [6]byte{2, 0, 0, 0, 0, mac},
			Clk:         clk,
			Mem:         mem,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	ca := mk("0000:03:00", 1)
	cb := mk("0000:04:00", 2)
	a, b := ca.Port(0), cb.Port(0)
	Connect(a, b)

	be := &bench{mem: mem, clk: clk, a: a, b: b}
	// Carve four rings + buffers out of memory.
	const nDesc = 64
	const bufSize = 2048
	next := uint64(0x1000)
	carve := func() ringLayout {
		r := ringLayout{descBase: next, n: nDesc, bufSize: bufSize}
		next += nDesc * DescSize
		r.bufBase = next
		next += nDesc * bufSize
		r.install(t, mem)
		return r
	}
	be.atx, be.arx, be.btx, be.brx = carve(), carve(), carve(), carve()

	program := func(p *Port, tx, rx ringLayout) {
		p.RegWrite32(RegTDBAL, uint32(tx.descBase))
		p.RegWrite32(RegTDBAH, uint32(tx.descBase>>32))
		p.RegWrite32(RegTDLEN, tx.n*DescSize)
		p.RegWrite32(RegTDH, 0)
		p.RegWrite32(RegTDT, 0)
		p.RegWrite32(RegRDBAL, uint32(rx.descBase))
		p.RegWrite32(RegRDBAH, uint32(rx.descBase>>32))
		p.RegWrite32(RegRDLEN, rx.n*DescSize)
		p.RegWrite32(RegRDH, 0)
		p.RegWrite32(RegRDT, rx.n-1) // all but one descriptor free
		p.RegWrite32(RegRCTL, RctlEN)
		p.RegWrite32(RegTCTL, TctlEN)
	}
	program(a, be.atx, be.arx)
	program(b, be.btx, be.brx)
	return be
}

// queueTX writes a frame into the sender's next TX slot and bumps TDT.
func (be *bench) queueTX(t *testing.T, p *Port, r ringLayout, payload []byte) {
	t.Helper()
	tdt := p.RegRead32(RegTDT)
	bufAddr := r.bufBase + uint64(tdt)*r.bufSize
	s, err := be.mem.RawSlice(bufAddr, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	copy(s, payload)
	d, err := be.mem.RawSlice(r.descBase+uint64(tdt)*DescSize, DescSize)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(d[0:8], bufAddr)
	binary.LittleEndian.PutUint16(d[8:10], uint16(len(payload)))
	d[11] = TxCmdEOP | TxCmdRS
	d[12] = 0
	p.RegWrite32(RegTDT, (tdt+1)%r.n)
}

// rxHarvest collects completed RX descriptors from r starting at *next.
func (be *bench) rxHarvest(t *testing.T, p *Port, r ringLayout, next *uint32) [][]byte {
	t.Helper()
	var out [][]byte
	for {
		d, err := be.mem.RawSlice(r.descBase+uint64(*next)*DescSize, DescSize)
		if err != nil {
			t.Fatal(err)
		}
		if d[12]&StatDD == 0 {
			return out
		}
		length := binary.LittleEndian.Uint16(d[8:10])
		buf, err := be.mem.RawSlice(binary.LittleEndian.Uint64(d[0:8]), int(length))
		if err != nil {
			t.Fatal(err)
		}
		cp := make([]byte, length)
		copy(cp, buf)
		out = append(out, cp)
		d[12] = 0 // recycle
		*next = (*next + 1) % r.n
		p.RegWrite32(RegRDT, (p.RegRead32(RegRDT)+1)%r.n)
	}
}

func step(be *bench, ticks int, tickNS int64) {
	for i := 0; i < ticks; i++ {
		be.a.Step()
		be.b.Step()
		be.clk.Advance(tickNS)
	}
}

func TestPCIIdentity(t *testing.T) {
	be := newBench(t, 0)
	if be.a.VendorID() != 0x8086 || be.a.DeviceID() != 0x10C9 {
		t.Fatalf("PCI ids: %04x:%04x", be.a.VendorID(), be.a.DeviceID())
	}
	if be.a.BDF() != "0000:03:00.0" {
		t.Fatalf("BDF = %s", be.a.BDF())
	}
	if be.a.RegRead32(RegSTATUS)&StatusLU == 0 {
		t.Fatal("link must be up after Connect")
	}
	// MAC is readable through RAL/RAH.
	ral, rah := be.a.RegRead32(RegRAL0), be.a.RegRead32(RegRAH0)
	mac := be.a.MAC()
	if byte(ral) != mac[0] || byte(ral>>24) != mac[3] || byte(rah) != mac[4] {
		t.Fatalf("RAL/RAH mismatch: %08x %08x vs %v", ral, rah, mac)
	}
}

func TestFrameDelivery(t *testing.T) {
	be := newBench(t, 0)
	payload := bytes.Repeat([]byte{0xAB}, 100)
	payload[0] = 1 // make it distinctive
	be.queueTX(t, be.a, be.atx, payload)
	step(be, 20, 2000) // 40 µs
	var next uint32
	got := be.rxHarvest(t, be.b, be.brx, &next)
	if len(got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(got))
	}
	if !bytes.Equal(got[0], payload) {
		t.Fatalf("payload corrupted: %x", got[0][:8])
	}
	// Statistics updated on both sides.
	if be.a.RegRead32(RegGPTC) != 1 || be.b.RegRead32(RegGPRC) != 1 {
		t.Fatalf("GPTC=%d GPRC=%d", be.a.RegRead32(RegGPTC), be.b.RegRead32(RegGPRC))
	}
	if be.a.RegRead32(RegGOTCL) != 100 || be.b.RegRead32(RegGORCL) != 100 {
		t.Fatalf("octet counters wrong")
	}
}

func TestPropagationDelay(t *testing.T) {
	be := newBench(t, 0)
	be.queueTX(t, be.a, be.atx, make([]byte, 64))
	be.a.Step() // transmit at t=0; wire time 64+24 bytes = 704 ns + 500 ns
	be.b.Step() // too early: nothing arrives at t=0
	var next uint32
	if got := be.rxHarvest(t, be.b, be.brx, &next); len(got) != 0 {
		t.Fatalf("frame arrived instantaneously")
	}
	be.clk.Advance(704 + PropagationDelayNS + 1)
	be.b.Step()
	if got := be.rxHarvest(t, be.b, be.brx, &next); len(got) != 1 {
		t.Fatal("frame did not arrive after line+propagation time")
	}
}

func TestLineRatePacing(t *testing.T) {
	be := newBench(t, 0)
	// Saturate: keep the TX ring full of 1514-byte frames for 20 ms.
	sent := 0
	var next uint32
	recv := 0
	frame := make([]byte, 1514)
	for be.clk.Now() < 20e6 {
		// Top up the ring.
		for {
			tdt := be.a.RegRead32(RegTDT)
			tdh := be.a.RegRead32(RegTDH)
			if (tdt+1)%be.atx.n == tdh {
				break
			}
			be.queueTX(t, be.a, be.atx, frame)
			sent++
			if sent > 100000 {
				t.Fatal("runaway")
			}
		}
		step(be, 1, 5000)
		recv += len(be.rxHarvest(t, be.b, be.brx, &next))
	}
	// Wire-rate ceiling: 20 ms / ((1514+24)*8ns) = 1625 frames.
	want := int(20e6) / ((1514 + wireOverhead) * 8)
	if recv < want*95/100 || recv > want {
		t.Fatalf("received %d frames in 20ms, want ≈%d (line-limited)", recv, want)
	}
}

func TestBusLimitsThroughput(t *testing.T) {
	// Bus at half the line's byte rate: delivery must be bus-limited.
	be := newBench(t, 0.5e9)
	var next uint32
	recv := 0
	frame := make([]byte, 1514)
	for be.clk.Now() < 20e6 {
		for {
			tdt := be.a.RegRead32(RegTDT)
			tdh := be.a.RegRead32(RegTDH)
			if (tdt+1)%be.atx.n == tdh {
				break
			}
			be.queueTX(t, be.a, be.atx, frame)
		}
		step(be, 1, 5000)
		recv += len(be.rxHarvest(t, be.b, be.brx, &next))
	}
	lineLimit := int(20e6) / ((1514 + wireOverhead) * 8)
	busLimit := lineLimit / 2
	if recv > busLimit*110/100 {
		t.Fatalf("received %d frames, want bus-limited ≈%d", recv, busLimit)
	}
	if recv < busLimit*80/100 {
		t.Fatalf("received %d frames, far below bus limit %d", recv, busLimit)
	}
}

func TestRxFifoTailDrop(t *testing.T) {
	be := newBench(t, 0)
	// Receiver never posts descriptors beyond the initial ones and never
	// steps: blast frames until the FIFO overflows.
	frame := make([]byte, 1514)
	for i := 0; i < 100; i++ {
		be.queueTX(t, be.a, be.atx, frame)
		be.a.Step()
		be.clk.Advance(13000)
	}
	if be.b.Missed() == 0 {
		t.Fatal("expected tail drops on a stalled receiver")
	}
	if be.b.PendingRX() > RxFifoBytes/1514+1 {
		t.Fatalf("FIFO holds %d frames, beyond its byte limit", be.b.PendingRX())
	}
	if be.b.RegRead32(RegMPC) == 0 {
		t.Fatal("MPC must report misses")
	}
}

func TestMalformedDescriptorConsumed(t *testing.T) {
	be := newBench(t, 0)
	// Zero-length descriptor: consumed without transmission.
	tdt := be.a.RegRead32(RegTDT)
	d, _ := be.mem.RawSlice(be.atx.descBase+uint64(tdt)*DescSize, DescSize)
	binary.LittleEndian.PutUint64(d[0:8], be.atx.bufBase)
	binary.LittleEndian.PutUint16(d[8:10], 0)
	d[11] = TxCmdEOP
	be.a.RegWrite32(RegTDT, (tdt+1)%be.atx.n)
	step(be, 5, 2000)
	if be.a.RegRead32(RegTDH) != (tdt+1)%be.atx.n {
		t.Fatal("malformed descriptor not consumed")
	}
	if be.a.RegRead32(RegGPTC) != 0 {
		t.Fatal("malformed descriptor counted as transmitted")
	}
	if d[12]&StatDD == 0 {
		t.Fatal("DD not written back for malformed descriptor")
	}
}

func TestDisabledQueuesIdle(t *testing.T) {
	be := newBench(t, 0)
	be.a.RegWrite32(RegTCTL, 0) // disable TX
	be.queueTX(t, be.a, be.atx, make([]byte, 64))
	step(be, 5, 2000)
	if be.a.RegRead32(RegGPTC) != 0 {
		t.Fatal("disabled TX queue transmitted")
	}
	be.a.RegWrite32(RegTCTL, TctlEN)
	step(be, 5, 2000)
	if be.a.RegRead32(RegGPTC) != 1 {
		t.Fatal("re-enabled TX queue did not transmit")
	}
}

func TestDeviceReset(t *testing.T) {
	be := newBench(t, 0)
	be.queueTX(t, be.a, be.atx, make([]byte, 64))
	step(be, 5, 2000)
	be.a.RegWrite32(RegCTRL, CtrlRST)
	if be.a.RegRead32(RegGPTC) != 0 {
		t.Fatal("reset did not clear statistics")
	}
	if be.a.RegRead32(RegTDLEN) != 0 {
		t.Fatal("reset did not clear ring registers")
	}
	if be.a.RegRead32(RegSTATUS)&StatusLU == 0 {
		t.Fatal("reset must not drop the physical link")
	}
}

func TestCapabilityDMAConfinement(t *testing.T) {
	mem := cheri.NewTMem(1 << 22)
	clk := sim.NewVClock()
	card, err := New(Config{
		BDFBase:     "0000:03:00",
		Ports:       2,
		LineRateBps: 1e9,
		MAC:         [6]byte{2, 0, 0, 0, 0, 9},
		Clk:         clk,
		Mem:         mem,
		CapDMA:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := card.Port(0), card.Port(1)
	Connect(a, b)
	// Grant port A a DMA window that does NOT include the TX ring we
	// program: the device must refuse to fetch descriptors from outside
	// its IOMMU window.
	win, err := mem.Root().SetAddr(0x100000).SetBounds(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	dcap, err := win.AndPerms(cheri.PermLoad | cheri.PermStore)
	if err != nil {
		t.Fatal(err)
	}
	a.SetDMACap(dcap)
	b.SetDMACap(dcap)

	r := ringLayout{descBase: 0x1000, bufBase: 0x2000, n: 8, bufSize: 2048}
	r.install(t, mem)
	a.RegWrite32(RegTDBAL, uint32(r.descBase))
	a.RegWrite32(RegTDLEN, r.n*DescSize)
	a.RegWrite32(RegTCTL, TctlEN)
	d, _ := mem.RawSlice(r.descBase, DescSize)
	binary.LittleEndian.PutUint64(d[0:8], r.bufBase)
	binary.LittleEndian.PutUint16(d[8:10], 64)
	d[11] = TxCmdEOP
	a.RegWrite32(RegTDT, 1)
	a.Step()
	if a.RegRead32(RegGPTC) != 0 {
		t.Fatal("device DMAed outside its capability window")
	}
}

func TestDualPortMACs(t *testing.T) {
	mem := cheri.NewTMem(1 << 20)
	clk := sim.NewVClock()
	card, err := New(Config{
		BDFBase: "0000:03:00", Ports: 2, LineRateBps: 1e9,
		MAC: [6]byte{2, 0, 0, 0, 0, 0x10}, Clk: clk, Mem: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	m0, m1 := card.Port(0).MAC(), card.Port(1).MAC()
	if m0 == m1 {
		t.Fatal("ports must have distinct MACs")
	}
	if m1[5] != m0[5]+1 {
		t.Fatalf("MAC numbering: %v %v", m0, m1)
	}
	if card.Ports() != 2 {
		t.Fatal("port count")
	}
}

func TestRegisterPCI(t *testing.T) {
	k, err := hostos.NewKernel(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	mem := cheri.NewTMem(1 << 20)
	card, err := New(Config{
		BDFBase: "0000:03:00", Ports: 2, LineRateBps: 1e9,
		MAC: [6]byte{2, 0, 0, 0, 0, 1}, Clk: sim.NewVClock(), Mem: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := card.RegisterPCI(k.PCI); err != nil {
		t.Fatal(err)
	}
	if len(k.PCI.Devices()) != 2 {
		t.Fatalf("registered %d devices", len(k.PCI.Devices()))
	}
	if errno := k.PCI.Unbind("0000:03:00.0"); errno != hostos.OK {
		t.Fatal(errno)
	}
	if _, errno := k.PCI.Claim("0000:03:00.0"); errno != hostos.OK {
		t.Fatal(errno)
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config must fail")
	}
	if _, err := New(Config{Ports: 1}); err == nil {
		t.Fatal("missing line rate must fail")
	}
	if _, err := New(Config{Ports: 1, LineRateBps: 1e9}); err == nil {
		t.Fatal("missing clock/mem must fail")
	}
}
